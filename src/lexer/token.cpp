#include "src/lexer/token.h"

#include <unordered_map>

namespace zeus {

std::string_view tokName(Tok t) {
  switch (t) {
    case Tok::Eof: return "end of input";
    case Tok::Error: return "<error>";
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::Plus: return "+";
    case Tok::Minus: return "-";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBracket: return "[";
    case Tok::RBracket: return "]";
    case Tok::LBrace: return "{";
    case Tok::RBrace: return "}";
    case Tok::Dot: return ".";
    case Tok::Comma: return ",";
    case Tok::Semicolon: return ";";
    case Tok::Colon: return ":";
    case Tok::Less: return "<";
    case Tok::LessEq: return "<=";
    case Tok::Greater: return ">";
    case Tok::GreaterEq: return ">=";
    case Tok::Equal: return "=";
    case Tok::NotEqual: return "<>";
    case Tok::Assign: return ":=";
    case Tok::Alias: return "==";
    case Tok::Range: return "..";
    case Tok::Star: return "*";
    case Tok::KwAND: return "AND";
    case Tok::KwARRAY: return "ARRAY";
    case Tok::KwBEGIN: return "BEGIN";
    case Tok::KwBIN: return "BIN";
    case Tok::KwBOTTOM: return "BOTTOM";
    case Tok::KwCLK: return "CLK";
    case Tok::KwCOMPONENT: return "COMPONENT";
    case Tok::KwCONST: return "CONST";
    case Tok::KwDIV: return "DIV";
    case Tok::KwDO: return "DO";
    case Tok::KwDOWNTO: return "DOWNTO";
    case Tok::KwELSE: return "ELSE";
    case Tok::KwELSIF: return "ELSIF";
    case Tok::KwEND: return "END";
    case Tok::KwFOR: return "FOR";
    case Tok::KwIF: return "IF";
    case Tok::KwIN: return "IN";
    case Tok::KwIS: return "IS";
    case Tok::KwLEFT: return "LEFT";
    case Tok::KwMOD: return "MOD";
    case Tok::KwNOT: return "NOT";
    case Tok::KwNUM: return "NUM";
    case Tok::KwOF: return "OF";
    case Tok::KwOR: return "OR";
    case Tok::KwORDER: return "ORDER";
    case Tok::KwOTHERWISE: return "OTHERWISE";
    case Tok::KwOTHERWISEWHEN: return "OTHERWISEWHEN";
    case Tok::KwOUT: return "OUT";
    case Tok::KwPARALLEL: return "PARALLEL";
    case Tok::KwRSET: return "RSET";
    case Tok::KwRESULT: return "RESULT";
    case Tok::KwRIGHT: return "RIGHT";
    case Tok::KwSEQUENTIAL: return "SEQUENTIAL";
    case Tok::KwSEQUENTIALLY: return "SEQUENTIALLY";
    case Tok::KwSIGNAL: return "SIGNAL";
    case Tok::KwTHEN: return "THEN";
    case Tok::KwTO: return "TO";
    case Tok::KwTOP: return "TOP";
    case Tok::KwTYPE: return "TYPE";
    case Tok::KwUSES: return "USES";
    case Tok::KwWHEN: return "WHEN";
    case Tok::KwWITH: return "WITH";
  }
  return "<bad token>";
}

Tok keywordFor(std::string_view word) {
  static const std::unordered_map<std::string_view, Tok> kMap = {
      {"AND", Tok::KwAND}, {"ARRAY", Tok::KwARRAY}, {"BEGIN", Tok::KwBEGIN},
      {"BIN", Tok::KwBIN}, {"BOTTOM", Tok::KwBOTTOM}, {"CLK", Tok::KwCLK},
      {"COMPONENT", Tok::KwCOMPONENT}, {"CONST", Tok::KwCONST},
      {"DIV", Tok::KwDIV}, {"DO", Tok::KwDO}, {"DOWNTO", Tok::KwDOWNTO},
      {"ELSE", Tok::KwELSE}, {"ELSIF", Tok::KwELSIF}, {"END", Tok::KwEND},
      {"FOR", Tok::KwFOR}, {"IF", Tok::KwIF}, {"IN", Tok::KwIN},
      {"IS", Tok::KwIS}, {"LEFT", Tok::KwLEFT}, {"MOD", Tok::KwMOD},
      {"NOT", Tok::KwNOT}, {"NUM", Tok::KwNUM}, {"OF", Tok::KwOF},
      {"OR", Tok::KwOR}, {"ORDER", Tok::KwORDER},
      {"OTHERWISE", Tok::KwOTHERWISE},
      {"OTHERWISEWHEN", Tok::KwOTHERWISEWHEN}, {"OUT", Tok::KwOUT},
      {"PARALLEL", Tok::KwPARALLEL}, {"RSET", Tok::KwRSET},
      {"RESULT", Tok::KwRESULT}, {"RIGHT", Tok::KwRIGHT},
      {"SEQUENTIAL", Tok::KwSEQUENTIAL},
      {"SEQUENTIALLY", Tok::KwSEQUENTIALLY}, {"SIGNAL", Tok::KwSIGNAL},
      {"THEN", Tok::KwTHEN}, {"TO", Tok::KwTO}, {"TOP", Tok::KwTOP},
      {"TYPE", Tok::KwTYPE}, {"USES", Tok::KwUSES}, {"WHEN", Tok::KwWHEN},
      {"WITH", Tok::KwWITH},
  };
  auto it = kMap.find(word);
  return it == kMap.end() ? Tok::Ident : it->second;
}

}  // namespace zeus

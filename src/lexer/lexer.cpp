#include "src/lexer/lexer.h"

#include <cctype>
#include <limits>

namespace zeus {

Lexer::Lexer(BufferId buffer, DiagnosticEngine& diags, Limits limits,
             ResourceUsage* usage)
    : buffer_(buffer), diags_(diags), limits_(limits), usage_(usage),
      text_(diags.sourceManager().text(buffer)) {
  if (usage_) usage_->sourceBytes = text_.size();
  if (text_.size() > limits_.maxSourceBytes) {
    diags_.error(Diag::SourceTooLarge, locAt(0),
                 "source buffer of " + std::to_string(text_.size()) +
                     " bytes exceeds the limit of " +
                     std::to_string(limits_.maxSourceBytes) + " bytes");
    pos_ = text_.size();  // scan nothing; next() returns Eof
  }
}

char Lexer::peek(size_t ahead) const {
  return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    while (!atEnd() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '<' && peek(1) == '*') {
      size_t commentStart = pos_;
      pos_ += 2;
      int depth = 1;
      while (!atEnd() && depth > 0) {
        if (peek() == '<' && peek(1) == '*') {
          depth++;
          pos_ += 2;
        } else if (peek() == '*' && peek(1) == '>') {
          depth--;
          pos_ += 2;
        } else {
          ++pos_;
        }
      }
      if (depth > 0) {
        diags_.error(Diag::UnterminatedComment, locAt(commentStart),
                     "unterminated comment");
        return;
      }
      continue;
    }
    return;
  }
}

Token Lexer::make(Tok kind, size_t begin, size_t len) {
  Token t;
  t.kind = kind;
  t.loc = locAt(begin);
  t.text = text_.substr(begin, len);
  return t;
}

Token Lexer::lexNumber() {
  size_t begin = pos_;
  while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
  bool octal = false;
  if (peek() == 'B' || peek() == 'b') {
    octal = true;
    ++pos_;
  }
  Token t = make(Tok::Number, begin, pos_ - begin);
  std::string_view digits = t.text;
  if (octal) digits.remove_suffix(1);
  int64_t value = 0;
  const int base = octal ? 8 : 10;
  for (char c : digits) {
    int d = c - '0';
    if (octal && d > 7) {
      diags_.error(Diag::InvalidOctalDigit, t.loc,
                   "digit '" + std::string(1, c) + "' not valid in octal");
      t.kind = Tok::Error;
      return t;
    }
    if (value > (std::numeric_limits<int64_t>::max() - d) / base) {
      diags_.error(Diag::NumberTooLarge, t.loc, "number literal too large");
      t.kind = Tok::Error;
      return t;
    }
    value = value * base + d;
  }
  t.number = value;
  return t;
}

Token Lexer::lexWord() {
  size_t begin = pos_;
  while (std::isalnum(static_cast<unsigned char>(peek()))) ++pos_;
  Token t = make(Tok::Ident, begin, pos_ - begin);
  t.kind = keywordFor(t.text);
  return t;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  if (atEnd()) return make(Tok::Eof, pos_, 0);

  char c = peek();
  if (std::isdigit(static_cast<unsigned char>(c))) return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(c))) return lexWord();

  size_t begin = pos_;
  auto two = [&](Tok kind) {
    pos_ += 2;
    return make(kind, begin, 2);
  };
  auto one = [&](Tok kind) {
    pos_ += 1;
    return make(kind, begin, 1);
  };

  switch (c) {
    case '+': return one(Tok::Plus);
    case '-': return one(Tok::Minus);
    case '(': return one(Tok::LParen);
    case ')': return one(Tok::RParen);
    case '[': return one(Tok::LBracket);
    case ']': return one(Tok::RBracket);
    case '{': return one(Tok::LBrace);
    case '}': return one(Tok::RBrace);
    case ',': return one(Tok::Comma);
    case ';': return one(Tok::Semicolon);
    case '*': return one(Tok::Star);
    case '.':
      if (peek(1) == '.') return two(Tok::Range);
      return one(Tok::Dot);
    case ':':
      if (peek(1) == '=') return two(Tok::Assign);
      return one(Tok::Colon);
    case '=':
      if (peek(1) == '=') return two(Tok::Alias);
      return one(Tok::Equal);
    case '<':
      if (peek(1) == '=') return two(Tok::LessEq);
      if (peek(1) == '>') return two(Tok::NotEqual);
      return one(Tok::Less);
    case '>':
      if (peek(1) == '=') return two(Tok::GreaterEq);
      return one(Tok::Greater);
    default:
      diags_.error(Diag::InvalidCharacter, locAt(begin),
                   "invalid character '" + std::string(1, c) + "'");
      ++pos_;
      return make(Tok::Error, begin, 1);
  }
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  for (;;) {
    Token t = next();
    if (t.kind != Tok::Eof && out.size() >= limits_.maxTokens) {
      diags_.error(Diag::TooManyTokens, t.loc,
                   "token stream exceeds the limit of " +
                       std::to_string(limits_.maxTokens) + " tokens");
      out.push_back(make(Tok::Eof, pos_, 0));
      break;
    }
    out.push_back(t);
    if (t.kind == Tok::Eof) break;
  }
  if (usage_) usage_->tokens = out.size();
  return out;
}

}  // namespace zeus

// Token definitions for the Zeus vocabulary (paper §2).
//
// Keywords are the exact upper-case words listed in the report; any other
// letter/digit word is an identifier.  Numbers may carry a trailing B/b to
// mark octal.  `<* ... *>` is the (nestable) comment bracket.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/support/source.h"

namespace zeus {

enum class Tok : uint8_t {
  // bookkeeping
  Eof,
  Error,
  // literals / names
  Ident,
  Number,
  // special symbols (§2)
  Plus,          // +
  Minus,         // -
  LParen,        // (
  RParen,        // )
  LBracket,      // [
  RBracket,      // ]
  LBrace,        // {   (layout statement list)
  RBrace,        // }
  Dot,           // .
  Comma,         // ,
  Semicolon,     // ;
  Colon,         // :
  Less,          // <
  LessEq,        // <=
  Greater,       // >
  GreaterEq,     // >=
  Equal,         // =
  NotEqual,      // <>
  Assign,        // :=
  Alias,         // ==
  Range,         // ..
  Star,          // *  (unspecified signal / multiplication)
  // keywords
  KwAND, KwARRAY, KwBEGIN, KwBIN, KwBOTTOM, KwCLK, KwCOMPONENT, KwCONST,
  KwDIV, KwDO, KwDOWNTO, KwELSE, KwELSIF, KwEND, KwFOR, KwIF, KwIN, KwIS,
  KwLEFT, KwMOD, KwNOT, KwNUM, KwOF, KwOR, KwORDER, KwOTHERWISE,
  KwOTHERWISEWHEN, KwOUT, KwPARALLEL, KwRSET, KwRESULT, KwRIGHT,
  KwSEQUENTIAL, KwSEQUENTIALLY, KwSIGNAL, KwTHEN, KwTO, KwTOP, KwTYPE,
  KwUSES, KwWHEN, KwWITH,
};

/// Human-readable spelling of a token kind, for diagnostics.
std::string_view tokName(Tok t);

/// Returns the keyword token for an exact upper-case word, or Tok::Ident.
Tok keywordFor(std::string_view word);

struct Token {
  Tok kind = Tok::Eof;
  SourceLoc loc;
  std::string_view text;  ///< slice of the source buffer
  int64_t number = 0;     ///< value when kind == Number

  [[nodiscard]] bool is(Tok k) const { return kind == k; }
};

}  // namespace zeus

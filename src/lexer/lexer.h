// The Zeus scanner (paper §2).
//
// Converts one source buffer into a token stream.  Comments `<* ... *>`
// nest and are skipped; a trailing B/b on a number marks octal.  The
// scanner is guarded by zeus::Limits: an oversized buffer or a runaway
// token stream ends the scan with a diagnostic instead of an unbounded
// allocation.
#pragma once

#include <vector>

#include "src/lexer/token.h"
#include "src/support/diagnostics.h"
#include "src/support/limits.h"

namespace zeus {

class Lexer {
 public:
  Lexer(BufferId buffer, DiagnosticEngine& diags, Limits limits = {},
        ResourceUsage* usage = nullptr);

  /// Scans the next token.  After end of input, keeps returning Eof.
  Token next();

  /// Scans the whole buffer (convenience for the parser and tests).
  /// Stops with Diag::TooManyTokens once the token budget is exhausted;
  /// the returned stream always ends in Eof.
  std::vector<Token> tokenize();

 private:
  [[nodiscard]] char peek(size_t ahead = 0) const;
  [[nodiscard]] bool atEnd() const { return pos_ >= text_.size(); }
  void skipWhitespaceAndComments();
  Token lexNumber();
  Token lexWord();
  Token make(Tok kind, size_t begin, size_t len);
  [[nodiscard]] SourceLoc locAt(size_t offset) const {
    return {buffer_, static_cast<uint32_t>(offset)};
  }

  BufferId buffer_;
  DiagnosticEngine& diags_;
  Limits limits_;
  ResourceUsage* usage_;
  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace zeus

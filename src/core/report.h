// Design inspection utilities: summary statistics, a GraphViz export of
// the semantics graph, and a hierarchical instance-tree dump.
#pragma once

#include <map>
#include <string>

#include "src/elab/design.h"
#include "src/sim/graph.h"

namespace zeus {

struct DesignStats {
  size_t nets = 0;
  size_t aliasClasses = 0;
  size_t registers = 0;
  size_t switches = 0;   ///< IF nodes
  size_t gates = 0;      ///< AND/OR/NAND/NOR/XOR/NOT/EQUAL
  size_t buffers = 0;
  size_t constants = 0;
  size_t instances = 0;  ///< materialised component instances
  uint32_t depth = 0;    ///< longest combinational path (levels)
  std::map<std::string, size_t> instancesByType;
};

DesignStats computeStats(const Design& design, const SimGraph& graph);

/// Renders the stats as an aligned text block.
std::string renderStats(const DesignStats& stats);

/// GraphViz dot of the semantics graph.  Designs beyond `maxNodes` nodes
/// are truncated with a note (dot layouts degrade anyway).
std::string exportDot(const Design& design, size_t maxNodes = 2000);

/// The materialised instance hierarchy, one line per instance.
std::string renderInstanceTree(const Design& design);

}  // namespace zeus

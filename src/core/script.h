// A tiny testbench script language for driving simulations from text —
// the `zeusc --script` surface, so designs can be exercised without
// writing C++.
//
//   # comments and blank lines are skipped
//   set <port> <value>     drive an input (decimal, or 0b... binary)
//   setx <port>            drive an input undefined
//   clear <port>           stop driving an input
//   reset <n>              hold RSET for n cycles
//   step [n]               advance n clock cycles (default 1)
//   expect <port> <value>  check an output (fails the run on mismatch)
//   expectx <port>         check that every bit of a port is UNDEF
//   print <port>           append the port's value to the log
//
// Execution stops at the first failed expectation.
#pragma once

#include <string>

#include "src/sim/simulation.h"

namespace zeus {

struct ScriptResult {
  bool ok = true;
  int failedLine = 0;       ///< 1-based line of the first failure
  std::string log;          ///< prints, failure messages, runtime errors
  int expectationsChecked = 0;
};

ScriptResult runScript(Simulation& sim, const std::string& text);

}  // namespace zeus

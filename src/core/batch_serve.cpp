#include "src/core/batch_serve.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "src/codegen/compiled.h"
#include "src/core/compiler.h"
#include "src/core/sim_farm.h"
#include "src/corpus/corpus.h"
#include "src/sim/graph.h"
#include "src/support/buildinfo.h"
#include "src/support/eventlog.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace zeus {

namespace {

metrics::Counter serveRequests("serve-requests");
metrics::Counter serveCompiles("serve-compiles");
metrics::Counter serveCacheHits("serve-cache-hits");

// -- minimal JSON ------------------------------------------------------
// Just enough for the request schema: objects, arrays, strings with the
// common escapes, non-negative integers, true/false/null.  Every failure
// is a positioned message, never an exception.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool boolean = false;
  uint64_t number = 0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

struct JsonParser {
  const std::string& text;
  size_t pos = 0;
  std::string error;

  bool fail(const std::string& what) {
    if (error.empty()) {
      error = what + " at byte " + std::to_string(pos);
    }
    return false;
  }
  void skipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool consume(char c) {
    skipWs();
    if (pos >= text.size() || text[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }
  bool parseString(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\') {
        if (pos >= text.size()) return fail("unterminated escape");
        char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: return fail("unsupported string escape");
        }
      } else {
        out += c;
      }
    }
    if (pos >= text.size()) return fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }
  bool parseValue(JsonValue& out, int depth) {
    if (depth > 32) return fail("nesting too deep");
    skipWs();
    if (pos >= text.size()) return fail("unexpected end of input");
    char c = text[pos];
    if (c == '{') {
      ++pos;
      out.kind = JsonValue::Kind::Object;
      skipWs();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        std::string key;
        if (!parseString(key)) return false;
        if (!consume(':')) return false;
        JsonValue v;
        if (!parseValue(v, depth + 1)) return false;
        out.fields[key] = std::move(v);
        skipWs();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = JsonValue::Kind::Array;
      skipWs();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        JsonValue v;
        if (!parseValue(v, depth + 1)) return false;
        out.items.push_back(std::move(v));
        skipWs();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return consume(']');
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::String;
      return parseString(out.text);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      out.kind = JsonValue::Kind::Number;
      uint64_t v = 0;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        uint64_t digit = static_cast<uint64_t>(text[pos] - '0');
        if (v > (~uint64_t{0} - digit) / 10) return fail("number too large");
        v = v * 10 + digit;
        ++pos;
      }
      out.number = v;
      return true;
    }
    if (text.compare(pos, 4, "true") == 0) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = true;
      pos += 4;
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      out.kind = JsonValue::Kind::Bool;
      pos += 5;
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      return true;
    }
    return fail("unexpected character");
  }
};

bool parseJson(const std::string& text, JsonValue& out, std::string& error) {
  JsonParser p{text, 0, {}};
  if (!p.parseValue(out, 0)) {
    error = p.error;
    return false;
  }
  p.skipWs();
  if (p.pos != text.size()) {
    error = "trailing characters at byte " + std::to_string(p.pos);
    return false;
  }
  return true;
}

// -- requests ----------------------------------------------------------

struct ServeRequest {
  std::string id;
  std::string example;  ///< corpus entry name, or ...
  std::string source;   ///< ... inline source with
  std::string top;      ///<     an explicit top
  uint64_t cycles = 0;
  size_t lanes = 0;
  size_t threads = 0;
  uint64_t seed = 0;
  int optLevel = 1;
  std::string engine;  ///< "interp" | "compiled" | "" (the serve default)
};

bool fieldString(const JsonValue& o, const char* key, std::string& out,
                 std::string& error) {
  const JsonValue* v = o.get(key);
  if (!v) return true;
  if (v->kind != JsonValue::Kind::String) {
    error = std::string("field '") + key + "' must be a string";
    return false;
  }
  out = v->text;
  return true;
}

bool fieldNumber(const JsonValue& o, const char* key, uint64_t& out,
                 std::string& error) {
  const JsonValue* v = o.get(key);
  if (!v) return true;
  if (v->kind != JsonValue::Kind::Number) {
    error = std::string("field '") + key + "' must be a non-negative integer";
    return false;
  }
  out = v->number;
  return true;
}

/// Content hash of what a compile depends on: source text, top name and
/// optimization level.  Two requests with the same hash share one
/// Compilation + elaborated Design + SimGraph.
uint64_t designKey(const std::string& source, const std::string& top,
                   int optLevel) {
  uint64_t h = 0xCBF29CE484222325ull;
  auto fold = [&h](std::string_view s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001B3ull;
    }
    h ^= 0xFF;
    h *= 0x100000001B3ull;
  };
  fold(source);
  fold(top);
  h ^= static_cast<uint64_t>(optLevel);
  h *= 0x100000001B3ull;
  return h;
}

/// One compiled design, shared across every request with the same key.
/// The Compilation owns everything the Design borrows, and the SimGraph
/// borrows the Design, so member order here is destruction order reversed.
struct CachedDesign {
  std::unique_ptr<Compilation> comp;
  std::unique_ptr<Design> design;
  std::unique_ptr<SimGraph> graph;
  std::string top;
  std::string error;  ///< non-empty = the compile failed (cached too)
  // Native-codegen artifact, loaded lazily on the first request that
  // wants the compiled engine and shared by every later one (the on-disk
  // artifact cache additionally persists it across serve batches).
  bool codegenTried = false;
  std::shared_ptr<const codegen::CompiledDesign> codegen;
  std::string codegenError;  ///< why the load failed (fallback reason)
};

CachedDesign compileDesign(const std::string& source, const std::string& top,
                           int optLevel) {
  ZEUS_TRACE_SPAN("serve-compile", "serve");
  CachedDesign c;
  c.top = top;
  c.comp = Compilation::fromSource("serve.zeus", source);
  if (!c.comp->ok()) {
    c.error = "compile failed: " + c.comp->diagnosticsText();
    return c;
  }
  c.design = c.comp->elaborate(top);
  if (!c.design) {
    c.error = "elaboration failed: " + c.comp->diagnosticsText();
    return c;
  }
  OptOptions oopts;
  oopts.level = optLevel;
  c.comp->optimize(*c.design, oopts);
  if (!c.comp->ok()) {
    c.error = "optimization failed: " + c.comp->diagnosticsText();
    return c;
  }
  c.graph = std::make_unique<SimGraph>(
      buildSimGraph(*c.design, c.comp->diags()));
  if (c.graph->hasCycle) {
    c.error = "cyclic design: " + c.graph->cycleDescription;
    c.graph.reset();
  }
  return c;
}

std::string hex(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

uint64_t elapsedUs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Per-request counter isolation: the delta of every process-wide
/// metrics::Counter across one request, as a JSON object of only the
/// counters that moved.  A long-lived serve loop reports what THIS
/// request did, not the process-cumulative totals.
std::string counterDeltaJson(
    const std::vector<std::pair<std::string, uint64_t>>& before,
    const std::vector<std::pair<std::string, uint64_t>>& after) {
  std::string out = "{";
  bool first = true;
  for (size_t i = 0; i < after.size(); ++i) {
    // Counters only register (never unregister) in a stable order, so
    // `before` is a prefix of `after` name-for-name.
    const uint64_t prev = i < before.size() ? before[i].second : 0;
    if (after[i].second == prev) continue;
    if (!first) out += ", ";
    first = false;
    out += "\"" + metrics::jsonEscape(after[i].first) +
           "\": " + std::to_string(after[i].second - prev);
  }
  out += "}";
  return out;
}

}  // namespace

std::string runServeBatch(const std::string& requestJson,
                          const ServeOptions& opts, ServeStats* stats) {
  ZEUS_TRACE_SPAN("serve-batch", "serve");
  ServeStats local;
  JsonValue root;
  std::string parseError;
  std::string out = "{\n  \"schema\": \"zeus-serve-v1\",\n";
  out += "  \"build\": " + buildinfo::renderJson() + ",\n";
  if (!parseJson(requestJson, root, parseError) ||
      root.kind != JsonValue::Kind::Object) {
    if (parseError.empty()) parseError = "top level must be an object";
    out += "  \"error\": \"" + metrics::jsonEscape(parseError) + "\",\n";
    out += "  \"requests\": 0, \"compiles\": 0, \"cache_hits\": 0, "
           "\"failures\": 1,\n";
    out += "  \"results\": []\n}\n";
    local.failures = 1;
    if (stats) *stats = local;
    return out;
  }

  const JsonValue* requests = root.get("requests");
  if (!requests || requests->kind != JsonValue::Kind::Array) {
    out += "  \"error\": \"'requests' must be an array\",\n";
    out += "  \"requests\": 0, \"compiles\": 0, \"cache_hits\": 0, "
           "\"failures\": 1,\n";
    out += "  \"results\": []\n}\n";
    local.failures = 1;
    if (stats) *stats = local;
    return out;
  }
  std::vector<const JsonValue*> entries;
  for (const JsonValue& r : requests->items) entries.push_back(&r);

  std::map<uint64_t, CachedDesign> cache;
  std::string results;
  for (size_t i = 0; i < entries.size(); ++i) {
    const JsonValue& e = *entries[i];
    const auto reqT0 = std::chrono::steady_clock::now();
    const auto countersBefore = metrics::Counter::allValues();
    ++local.requests;
    serveRequests.add();

    ServeRequest req;
    req.cycles = opts.defaultCycles;
    req.lanes = opts.defaultLanes;
    req.threads = opts.defaultThreads;
    req.seed = opts.defaultSeed;
    req.optLevel = opts.defaultOptLevel;
    std::string err;
    uint64_t lanes = req.lanes, threads = req.threads;
    uint64_t optLevel = static_cast<uint64_t>(req.optLevel);
    bool ok = e.kind == JsonValue::Kind::Object;
    if (!ok) err = "request must be an object";
    ok = ok && fieldString(e, "id", req.id, err) &&
         fieldString(e, "example", req.example, err) &&
         fieldString(e, "source", req.source, err) &&
         fieldString(e, "top", req.top, err) &&
         fieldNumber(e, "cycles", req.cycles, err) &&
         fieldNumber(e, "lanes", lanes, err) &&
         fieldNumber(e, "threads", threads, err) &&
         fieldNumber(e, "seed", req.seed, err) &&
         fieldNumber(e, "opt", optLevel, err) &&
         fieldString(e, "engine", req.engine, err);
    if (ok && optLevel > 1) {
      ok = false;
      err = "field 'opt' must be 0 or 1";
    }
    if (ok && !req.engine.empty() && req.engine != "interp" &&
        req.engine != "compiled") {
      ok = false;
      err = "field 'engine' must be \"interp\" or \"compiled\"";
    }
    if (ok && (lanes == 0 || lanes > 65536)) {
      ok = false;
      err = "field 'lanes' must be 1..65536";
    }
    if (ok && (threads == 0 || threads > 256)) {
      ok = false;
      err = "field 'threads' must be 1..256";
    }
    if (ok) {
      req.lanes = static_cast<size_t>(lanes);
      req.threads = static_cast<size_t>(threads);
      req.optLevel = static_cast<int>(optLevel);
    }
    if (req.id.empty()) req.id = "request-" + std::to_string(i);

    // Propagate the request id: every event emitted while this request
    // runs — including from inside the farm workers — carries it.
    eventlog::setRequestId(req.id);
    eventlog::emit(eventlog::Severity::Info, "serve", "request-start", {});

    // Resolve the design selector: a corpus example or inline source.
    if (ok) {
      if (!req.example.empty()) {
        if (!req.source.empty()) {
          ok = false;
          err = "give 'example' or 'source', not both";
        } else if (!corpus::instantiate(req.example, req.source, req.top)) {
          ok = false;
          err = "unknown example '" + req.example + "'";
        }
      } else if (req.source.empty()) {
        ok = false;
        err = "request needs an 'example' or 'source'";
      } else if (req.top.empty()) {
        ok = false;
        err = "inline 'source' needs a 'top'";
      }
    }

    std::string cacheState = "miss";
    CachedDesign* cached = nullptr;
    if (ok) {
      const auto cacheT0 = std::chrono::steady_clock::now();
      const uint64_t key = designKey(req.source, req.top, req.optLevel);
      auto it = cache.find(key);
      if (it == cache.end()) {
        ++local.compiles;
        serveCompiles.add();
        it = cache.emplace(key, compileDesign(req.source, req.top,
                                              req.optLevel))
                 .first;
        local.cacheMissUs.record(elapsedUs(cacheT0));
      } else {
        cacheState = "hit";
        ++local.cacheHits;
        serveCacheHits.add();
        local.cacheHitUs.record(elapsedUs(cacheT0));
      }
      cached = &it->second;
      if (!cached->error.empty()) {
        ok = false;
        err = cached->error;
      }
    }

    // Resolve the evaluation engine.  The codegen artifact is loaded once
    // per cached design (the on-disk cache makes repeat serve batches a
    // disk hit too); a failed load is remembered and reported as the
    // fallback reason on every request that wanted the compiled engine.
    const bool wantCompiled =
        ok && (req.engine == "compiled" ||
               (req.engine.empty() && opts.defaultCompiled));
    if (wantCompiled && !cached->codegenTried) {
      cached->codegenTried = true;
      codegen::CodegenOptions copts;
      copts.cacheDir = opts.codegenCacheDir;
      copts.optLevel = static_cast<uint32_t>(req.optLevel);
      cached->codegen = codegen::CompiledDesign::load(*cached->graph, copts,
                                                      cached->codegenError);
    }
    const bool useCompiled = wantCompiled && cached->codegen != nullptr;

    std::string line = "    {\"id\": \"" + metrics::jsonEscape(req.id) + "\"";
    if (ok) {
      FarmOptions fopts;
      fopts.threads = req.threads;
      fopts.lanes = req.lanes;
      fopts.cycles = req.cycles;
      fopts.seed = req.seed;
      if (useCompiled) fopts.compiled = cached->codegen;
      try {
        FarmReport fr = runFarm(*cached->graph, fopts);
        line += ", \"ok\": true";
        line += ", \"engine\": \"";
        line += useCompiled ? "compiled" : "interp";
        line += "\"";
        if (wantCompiled && !useCompiled) {
          line += ", \"engine_fallback\": \"" +
                  metrics::jsonEscape(cached->codegenError) + "\"";
        }
        line += ", \"design\": \"" + metrics::jsonEscape(cached->top) + "\"";
        line += ", \"design_hash\": \"" +
                hex(designContentHash(*cached->design)) + "\"";
        line += ", \"cache\": \"" + cacheState + "\"";
        line += ", \"cycles\": " + std::to_string(fr.cycles);
        line += ", \"lanes\": " + std::to_string(fr.lanes);
        line += ", \"blocks\": " + std::to_string(fr.blocks);
        line += ", \"threads\": " + std::to_string(fr.threads);
        line += ", \"checksum\": \"" + hex(fr.mergedChecksum()) + "\"";
        line += ", \"errors\": " + std::to_string(fr.errors.size());
        line += ", \"seconds\": " + fmt(fr.seconds);
        line += ", \"lane_cycles_per_sec\": " + fmt(fr.laneCyclesPerSec());
      } catch (const std::exception& ex) {
        ok = false;
        err = ex.what();
      }
    }
    if (!ok) {
      ++local.failures;
      line += ", \"ok\": false, \"error\": \"" + metrics::jsonEscape(err) +
              "\"";
    }
    const uint64_t reqUs = elapsedUs(reqT0);
    local.requestUs.record(reqUs);
    line += ", \"latency_us\": " + std::to_string(reqUs);
    line += ", \"counters\": " +
            counterDeltaJson(countersBefore, metrics::Counter::allValues());
    line += "}";
    if (!results.empty()) results += ",\n";
    results += line;
    eventlog::emit(eventlog::Severity::Info, "serve", "request-done",
                   {eventlog::boolean("ok", ok),
                    eventlog::str("cache", cacheState),
                    eventlog::num("latency_us", reqUs)});
  }
  eventlog::setRequestId("");
  eventlog::emit(
      eventlog::Severity::Info, "serve", "batch-done",
      {eventlog::num("requests", static_cast<uint64_t>(local.requests)),
       eventlog::num("failures", static_cast<uint64_t>(local.failures)),
       eventlog::num("cache_hits", static_cast<uint64_t>(local.cacheHits)),
       eventlog::num("request_us_p99", local.requestUs.percentile(99))});

  std::vector<histogram::Snapshot> latency;
  latency.push_back(
      histogram::snapshot(local.requestUs, "serve.request_us", "us"));
  latency.push_back(
      histogram::snapshot(local.cacheHitUs, "serve.cache_hit_us", "us"));
  latency.push_back(
      histogram::snapshot(local.cacheMissUs, "serve.cache_miss_us", "us"));
  out += "  \"latency\": " + histogram::renderLatencyBlock(latency, "  ") +
         ",\n";
  out += "  \"requests\": " + std::to_string(local.requests) +
         ", \"compiles\": " + std::to_string(local.compiles) +
         ", \"cache_hits\": " + std::to_string(local.cacheHits) +
         ", \"failures\": " + std::to_string(local.failures) + ",\n";
  out += "  \"results\": [\n" + results + (results.empty() ? "" : "\n") +
         "  ]\n}\n";
  if (stats) *stats = local;
  return out;
}

}  // namespace zeus

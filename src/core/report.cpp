#include "src/core/report.h"

#include <functional>

namespace zeus {

namespace {

void walkInstances(const InstanceData& inst,
                   const std::function<void(const InstanceData&, int)>& fn,
                   int depth) {
  fn(inst, depth);
  // Iterate the full member map: inline function-call instances are not
  // part of memberOrder.
  for (const auto& [name, member] : inst.members) {
    std::vector<const Obj*> stack{&member.obj};
    while (!stack.empty()) {
      const Obj* o = stack.back();
      stack.pop_back();
      if (o->kind == ObjKind::Array || o->kind == ObjKind::Record) {
        for (const Obj& e : o->elems) stack.push_back(&e);
      } else if (o->kind == ObjKind::Instance && o->inst) {
        walkInstances(*o->inst, fn, depth + 1);
      }
    }
  }
}

}  // namespace

DesignStats computeStats(const Design& design, const SimGraph& graph) {
  DesignStats s;
  s.nets = design.netlist.netCount();
  s.aliasClasses = graph.denseCount;
  s.depth = graph.maxLevel;
  for (const Node& n : design.netlist.nodes()) {
    switch (n.op) {
      case NodeOp::Reg: ++s.registers; break;
      case NodeOp::Switch: ++s.switches; break;
      case NodeOp::Buf: ++s.buffers; break;
      case NodeOp::Const: ++s.constants; break;
      case NodeOp::Random: ++s.gates; break;
      default: ++s.gates; break;
    }
  }
  if (design.top) {
    walkInstances(*design.top,
                  [&](const InstanceData& inst, int) {
                    ++s.instances;
                    if (inst.type) ++s.instancesByType[inst.type->name];
                  },
                  0);
  }
  return s;
}

std::string renderStats(const DesignStats& s) {
  std::string out;
  auto row = [&out](const char* label, size_t value) {
    out += label;
    out += ": ";
    out += std::to_string(value);
    out += '\n';
  };
  row("nets", s.nets);
  row("alias classes", s.aliasClasses);
  row("registers", s.registers);
  row("switches (IF nodes)", s.switches);
  row("gates", s.gates);
  row("buffers", s.buffers);
  row("constants", s.constants);
  row("instances", s.instances);
  row("combinational depth", s.depth);
  for (const auto& [type, count] : s.instancesByType) {
    out += "  " + type + ": " + std::to_string(count) + "\n";
  }
  return out;
}

std::string exportDot(const Design& design, size_t maxNodes) {
  const Netlist& nl = design.netlist;
  std::string out = "digraph zeus {\n  rankdir=LR;\n";
  size_t emitted = 0;
  for (NodeId i = 0; i < nl.nodeCount() && emitted < maxNodes; ++i) {
    const Node& n = nl.node(i);
    out += "  n" + std::to_string(i) + " [label=\"" +
           std::string(nodeOpName(n.op)) + "\" shape=" +
           (n.op == NodeOp::Reg ? "box" : "ellipse") + "];\n";
    ++emitted;
  }
  // Net names become edge labels between driver and consumer nodes.
  std::map<NetId, std::vector<NodeId>> driversOf;
  for (NodeId i = 0; i < nl.nodeCount() && i < maxNodes; ++i) {
    const Node& n = nl.node(i);
    if (n.output != kNoNet) driversOf[nl.find(n.output)].push_back(i);
  }
  for (NodeId j = 0; j < nl.nodeCount() && j < maxNodes; ++j) {
    for (NetId in : nl.node(j).inputs) {
      NetId root = nl.find(in);
      auto it = driversOf.find(root);
      if (it == driversOf.end()) continue;
      for (NodeId i : it->second) {
        out += "  n" + std::to_string(i) + " -> n" + std::to_string(j) +
               " [label=\"" + nl.net(root).name + "\"];\n";
      }
    }
  }
  if (nl.nodeCount() > maxNodes) {
    out += "  trunc [label=\"... " +
           std::to_string(nl.nodeCount() - maxNodes) +
           " more nodes\" shape=plaintext];\n";
  }
  out += "}\n";
  return out;
}

std::string renderInstanceTree(const Design& design) {
  std::string out;
  if (!design.top) return out;
  walkInstances(*design.top,
                [&](const InstanceData& inst, int depth) {
                  out.append(static_cast<size_t>(depth) * 2, ' ');
                  out += inst.path;
                  if (inst.type) {
                    out += ": ";
                    out += inst.type->name;
                  }
                  if (inst.isFunctionCall) out += " (function call)";
                  out += '\n';
                },
                0);
  return out;
}

}  // namespace zeus

// Zeus — a hardware description language for VLSI (Lieberherr & Knudsen,
// ETH Zürich report 51, 1983).  Public umbrella header.
//
// Typical use:
//
//   auto comp = zeus::Compilation::fromSource("adder.zeus", text);
//   if (!comp->ok()) { std::cerr << comp->diagnosticsText(); return 1; }
//   auto design = comp->elaborate("adder");          // top SIGNAL name
//   zeus::SimGraph graph = zeus::buildSimGraph(*design, comp->diags());
//   zeus::Simulation sim(graph);
//   sim.setInputUint("a", 3);
//   sim.setInputUint("b", 5);
//   sim.step();
//   uint64_t sum = *sim.outputUint("s");
#pragma once

#include "src/analysis/lint.h"
#include "src/core/batch_sim.h"
#include "src/core/compiler.h"
#include "src/elab/design.h"
#include "src/layout/solver.h"
#include "src/sim/simulation.h"
#include "src/sim/wave.h"
#include "src/transform/pipeline.h"

#include "src/core/script.h"

#include <sstream>
#include <vector>

namespace zeus {

namespace {

bool parseValue(const std::string& tok, uint64_t& out) {
  try {
    if (tok.rfind("0b", 0) == 0) {
      out = std::stoull(tok.substr(2), nullptr, 2);
    } else {
      out = std::stoull(tok);
    }
    return true;
  } catch (...) {
    return false;
  }
}

std::string portValueText(Simulation& sim, const std::string& port) {
  std::string bits;
  for (Logic v : sim.outputBits(port)) {
    bits += logicName(v);
    bits += ' ';
  }
  return bits;
}

}  // namespace

ScriptResult runScript(Simulation& sim, const std::string& text) {
  ScriptResult r;
  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  auto fail = [&](const std::string& message) {
    r.ok = false;
    r.failedLine = lineNo;
    r.log += "line " + std::to_string(lineNo) + ": " + message + "\n";
  };

  while (r.ok && std::getline(in, line)) {
    ++lineNo;
    if (size_t hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream ls(line);
    std::string cmd;
    if (!(ls >> cmd)) continue;

    try {
      if (cmd == "set") {
        std::string port, value;
        if (!(ls >> port >> value)) {
          fail("set needs <port> <value>");
          break;
        }
        uint64_t v;
        if (!parseValue(value, v)) {
          fail("bad value '" + value + "'");
          break;
        }
        sim.setInputUint(port, v);
      } else if (cmd == "setx") {
        std::string port;
        if (!(ls >> port)) {
          fail("setx needs <port>");
          break;
        }
        const Port* p = sim.design().findPort(port);
        if (!p) {
          fail("no port '" + port + "'");
          break;
        }
        sim.setInput(port,
                     std::vector<Logic>(p->nets.size(), Logic::Undef));
      } else if (cmd == "clear") {
        std::string port;
        if (!(ls >> port)) {
          fail("clear needs <port>");
          break;
        }
        sim.clearInput(port);
      } else if (cmd == "reset") {
        uint64_t n = 1;
        std::string tok;
        if (ls >> tok && !parseValue(tok, n)) {
          fail("bad cycle count '" + tok + "'");
          break;
        }
        sim.setRset(true);
        sim.step(n);
        sim.setRset(false);
      } else if (cmd == "step") {
        uint64_t n = 1;
        std::string tok;
        if (ls >> tok && !parseValue(tok, n)) {
          fail("bad cycle count '" + tok + "'");
          break;
        }
        sim.step(n);
      } else if (cmd == "expect") {
        std::string port, value;
        if (!(ls >> port >> value)) {
          fail("expect needs <port> <value>");
          break;
        }
        uint64_t want;
        if (!parseValue(value, want)) {
          fail("bad value '" + value + "'");
          break;
        }
        ++r.expectationsChecked;
        auto got = sim.outputUint(port);
        if (!got) {
          fail("expected " + port + " = " + value +
               ", got undefined bits: " + portValueText(sim, port));
          break;
        }
        if (*got != want) {
          fail("expected " + port + " = " + value + ", got " +
               std::to_string(*got));
          break;
        }
      } else if (cmd == "expectx") {
        std::string port;
        if (!(ls >> port)) {
          fail("expectx needs <port>");
          break;
        }
        ++r.expectationsChecked;
        for (Logic v : sim.outputBits(port)) {
          if (v != Logic::Undef) {
            fail("expected " + port + " all-UNDEF, got " +
                 portValueText(sim, port));
            break;
          }
        }
      } else if (cmd == "print") {
        std::string port;
        if (!(ls >> port)) {
          fail("print needs <port>");
          break;
        }
        r.log += port + " = " + portValueText(sim, port) + "(cycle " +
                 std::to_string(sim.cycle()) + ")\n";
      } else {
        fail("unknown command '" + cmd + "'");
        break;
      }
    } catch (const std::exception& e) {
      fail(e.what());
      break;
    }
  }

  for (const SimError& e : sim.errors()) {
    r.log += "runtime error, cycle " + std::to_string(e.cycle) + ", " +
             e.netName + ": " + e.message + "\n";
  }
  return r;
}

}  // namespace zeus

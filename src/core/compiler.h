// The compilation pipeline front door.
//
// A Compilation owns everything with compilation lifetime: source buffers,
// diagnostics, the AST, the type table (with every instantiated type and
// environment) and the checked program.  Designs elaborated from it borrow
// those structures, so keep the Compilation alive as long as its Designs.
#pragma once

#include <memory>
#include <string>

#include "src/analysis/lint.h"
#include "src/ast/ast.h"
#include "src/elab/design.h"
#include "src/elab/elaborator.h"
#include "src/sema/checker.h"
#include "src/sema/type_table.h"
#include "src/support/diagnostics.h"
#include "src/transform/pipeline.h"
#include "src/support/limits.h"
#include "src/support/source.h"

namespace zeus {

class Simulation;
class BatchSimulation;

class Compilation {
 public:
  /// Lexes, parses and checks one source buffer.  Every stage runs under
  /// the given resource limits; breaches surface as ordinary diagnostics.
  static std::unique_ptr<Compilation> fromSource(std::string name,
                                                 std::string text,
                                                 Limits limits = {});

  /// True when no errors were reported so far.
  [[nodiscard]] bool ok() const { return !diags_->hasErrors(); }
  [[nodiscard]] std::string diagnosticsText() const {
    return diags_->renderAll();
  }

  DiagnosticEngine& diags() { return *diags_; }
  SourceManager& sources() { return *sources_; }
  TypeTable& types() { return *types_; }
  [[nodiscard]] const ast::Program& program() const { return program_; }
  [[nodiscard]] const CheckedProgram& checked() const { return checked_; }
  Env& rootEnv() { return *checked_.rootEnv; }

  /// Elaborates the design whose top-level SIGNAL declaration is named
  /// `topName`.  Returns nullptr on error (see diagnosticsText()).
  std::unique_ptr<Design> elaborate(const std::string& topName);
  std::unique_ptr<Design> elaborate(const std::string& topName,
                                    Elaborator::Options options);

  /// Runs the static lint pass (src/analysis/lint.h) over an elaborated
  /// design.  Builds the semantics graph internally; findings go through
  /// this compilation's diagnostics (lint errors make ok() false) and are
  /// returned as a LintReport for text/JSON rendering.
  LintReport lint(const Design& design, const LintOptions& opts = {});

  /// Runs the optimization pipeline (src/transform/pipeline.h) in place
  /// on an elaborated design and verifies the result.  Call after lint
  /// (lint findings refer to pre-optimization structure) and before
  /// building the graph that will be simulated.  A verifier failure makes
  /// ok() false.
  OptReport optimize(Design& design, const OptOptions& opts = {});

  /// The limits this compilation runs under.
  [[nodiscard]] const Limits& limits() const { return limits_; }
  /// Snapshot of resource consumption so far, next to its budgets.
  [[nodiscard]] ResourceReport resourceReport() const {
    return {limits_, usage_};
  }
  /// Folds a simulation's cycle/event/fault counters into the report.
  void recordSimulation(const Simulation& sim);
  /// Same for a 64-lane batch run; cycles count evaluated (not lane) cycles.
  void recordSimulation(const BatchSimulation& sim);
  /// Usage sink to hand to stages (e.g. Simulation::Options::usage) that
  /// should account against this compilation's report.
  ResourceUsage* usage() { return &usage_; }

 private:
  Compilation() = default;

  std::unique_ptr<SourceManager> sources_;
  std::unique_ptr<DiagnosticEngine> diags_;
  std::unique_ptr<TypeTable> types_;
  ast::Program program_;
  CheckedProgram checked_;
  Limits limits_;
  ResourceUsage usage_;
};

}  // namespace zeus

// Multi-core simulation farm: N worker threads × 64-lane batch blocks.
//
// One compiled design, thousands of concurrent stimulus lanes.  The lane
// space [0, lanes) is cut into blocks of at most 64 lanes; each block is
// an independent BatchSimulation claimed from a shared queue by a pool of
// worker threads.  Everything a lane computes — its §8 RANDOM stream, its
// pseudo-random input stimulus, its output checksum — is a pure function
// of (root seed, global lane index[, cycle]) derived with the same
// splitmix64 used by runFaultCampaign, and never of the thread count or
// the block partition.  Consequences:
//
//   * determinism: the farm produces bit-identical results at 1, 2 or N
//     threads, and lane L matches a scalar Simulation given lane L's
//     derived seed and stimulus (runFarmScalarOracle is that oracle);
//   * canonical merge: per-block SimErrors are re-tagged with global lane
//     indices and merged in (cycle, lane, net) order, so errors() reads
//     the same no matter which thread simulated which block;
//   * resume: a FarmSnapshot (src/sim/snapshot.h) restores every lane
//     bit-identically because cycle-c stimulus can be replayed without
//     the history that produced cycles [0, c).
//
// Counters stay engine-invariant: each block's EvalStats equal a scalar
// levelized run of the same cycle count (the PR 4 guarantee), so the
// merged farm totals equal blocks × scalar — invariant in the thread
// count, which the differential tests assert.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/batch_sim.h"
#include "src/sim/snapshot.h"
#include "src/support/histogram.h"

namespace zeus {

/// RANDOM-stream seed for global lane `lane` (never 0, so no lane can sit
/// in xorshift's absorbing state).
[[nodiscard]] uint64_t farmLaneRngSeed(uint64_t rootSeed, uint64_t lane);

/// Stimulus-stream seed for (global lane, cycle); the lane's input ports
/// are filled from an xorshift run of this seed each cycle.  Stateless on
/// purpose: resuming at any cycle boundary replays the exact stimulus of
/// a straight run.
[[nodiscard]] uint64_t farmStimulusSeed(uint64_t rootSeed, uint64_t lane,
                                        uint64_t cycle);

struct FarmOptions {
  size_t threads = 1;  ///< worker threads (clamped to [1, blocks])
  size_t lanes = BatchSimulation::kMaxLanes;  ///< total lanes, all blocks
  size_t lanesPerBlock = BatchSimulation::kMaxLanes;  ///< 1..64
  uint64_t cycles = 0;
  uint64_t seed = 0xC0FFEEull;  ///< root of every derived stream
  /// Capture a FarmSnapshot when every lane has evaluated exactly this
  /// many cycles (0 = never).  Delivered via onCheckpoint after the run.
  uint64_t checkpointAtCycle = 0;
  std::function<void(const FarmSnapshot&)> onCheckpoint;
  /// Hot-loaded compiled engine (src/codegen/compiled.h): every block
  /// then runs native code instead of the interpreter, sharing the one
  /// dlopen'd artifact.  Null = interpreter.  Results are bit-identical
  /// either way (the differential tests assert it).
  std::shared_ptr<const codegen::CompiledDesign> compiled;
};

struct FarmReport {
  uint64_t cycles = 0;  ///< cycles evaluated per lane (incl. pre-resume)
  size_t lanes = 0;
  size_t blocks = 0;
  size_t threads = 0;  ///< worker threads actually used
  std::vector<uint64_t> checksums;  ///< per global lane: output history
  std::vector<uint64_t> rngStates;  ///< per global lane: final RANDOM pos
  std::vector<SimError> errors;     ///< canonical (cycle, lane, net) order
  EvalStats stats;                  ///< merged across blocks
  double seconds = 0;               ///< wall clock of the parallel section
  /// Per-block wall time (microseconds), one record per block, merged
  /// after the workers join.  The merge is per-bucket sums, so the
  /// histogram state is a pure function of the recorded values — the
  /// thread count moves the values themselves (physical time), never the
  /// merge.  Snapshot name: "farm.block_us".
  histogram::Histogram blockUs;

  /// Order-sensitive fold of the per-lane checksums: one word that equals
  /// iff every lane's full output history equals.
  [[nodiscard]] uint64_t mergedChecksum() const;
  [[nodiscard]] double laneCyclesPerSec() const;
};

/// Runs the farm.  `resume` (optional) must match the design, lane
/// geometry and seed of the snapshot; the run continues at resume->cycle
/// and the report covers the whole logical run.  Throws
/// std::invalid_argument on bad options or a mismatched snapshot.
FarmReport runFarm(const SimGraph& graph, const FarmOptions& opts,
                   const FarmSnapshot* resume = nullptr);

/// The differential oracle: the same logical run, one scalar levelized
/// Simulation per lane.  checksums / rngStates / errors compare directly
/// with runFarm; stats are the sum over lane sims (lanes × scalar run),
/// not the farm's blocks × scalar.
FarmReport runFarmScalarOracle(const SimGraph& graph,
                               const FarmOptions& opts);

/// Counter snapshot for --metrics / --stats (evaluator "farm";
/// lane_cycles = lanes × cycles of scalar-equivalent work).
[[nodiscard]] metrics::SimCounters farmMetricsCounters(const FarmReport& r);

}  // namespace zeus

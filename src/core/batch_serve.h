// Batch-request mode: many simulation requests, few compiles.
//
// `zeusc --serve-batch requests.json` reads a zeus-serve-request-v1 file,
// compiles each distinct design ONCE (keyed by a content hash of source,
// top and optimization level), fans every request across the simulation
// farm (src/core/sim_farm.h) and renders a zeus-serve-v1 response — the
// first step toward a long-lived zeusd service: N clients share one
// elaborated design and the farm's lane throughput.
//
// Request schema (all fields except the design selector optional):
//   { "requests": [
//       { "id": "r1",               // echoed in the response
//         "example": "adders",      // built-in corpus entry ...
//         "source": "TYPE ...",     // ... OR inline source
//         "top": "t",               //     (required with "source")
//         "cycles": 32, "lanes": 128, "threads": 2, "seed": 7,
//         "opt": 1 } ] }
//
// The parser is deliberately small and strict: objects, arrays, strings,
// non-negative integers, true/false/null.  Anything else is a structured
// error in the response, never a crash.
#pragma once

#include <cstdint>
#include <string>

#include "src/core/batch_sim.h"
#include "src/support/histogram.h"

namespace zeus {

struct ServeOptions {
  size_t defaultThreads = 1;
  size_t defaultLanes = BatchSimulation::kMaxLanes;
  uint64_t defaultCycles = 16;
  uint64_t defaultSeed = 0xC0FFEEull;
  int defaultOptLevel = 1;
  /// Default engine for requests without an "engine" field: true = the
  /// native codegen backend (falls back to the interpreter, with the
  /// reason in the response, when emit/compile/load fails).
  bool defaultCompiled = false;
  /// Codegen artifact cache directory ("" = ZEUS_CODEGEN_CACHE_DIR, then
  /// the system temp dir); see src/codegen/compiled.h.
  std::string codegenCacheDir;
};

/// Aggregate outcome, for the CLI summary line and the metrics latency
/// block.
struct ServeStats {
  size_t requests = 0;
  size_t failures = 0;
  size_t compiles = 0;   ///< distinct designs actually compiled
  size_t cacheHits = 0;  ///< requests served from the compile cache
  /// Latency distributions over the batch (zeus-metrics-v1 names
  /// "serve.request_us", "serve.cache_hit_us", "serve.cache_miss_us").
  histogram::Histogram requestUs;   ///< whole-request wall time
  histogram::Histogram cacheHitUs;  ///< design resolution on a cache hit
  histogram::Histogram cacheMissUs;  ///< ... on a miss (the compile)
};

/// Runs a whole request file and returns the zeus-serve-v1 response JSON.
/// Malformed input yields a response with "ok": false entries (or a
/// top-level "error" when the file itself does not parse); the function
/// itself does not throw.
[[nodiscard]] std::string runServeBatch(const std::string& requestJson,
                                        const ServeOptions& opts,
                                        ServeStats* stats = nullptr);

}  // namespace zeus

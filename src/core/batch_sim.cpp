#include "src/core/batch_sim.h"

#include <algorithm>
#include <stdexcept>

#include "src/codegen/compiled.h"
#include "src/sim/snapshot.h"

namespace zeus {

BatchSimulation::BatchSimulation(const SimGraph& graph, size_t lanes)
    : g_(graph), lanes_(lanes), eval_(graph) {
  if (g_.hasCycle) {
    throw std::runtime_error("cannot simulate a cyclic design: " +
                             g_.cycleDescription);
  }
  if (lanes_ == 0 || lanes_ > kMaxLanes) {
    throw std::invalid_argument("batch lane count must be 1..64");
  }
  laneMask_ = lanes_ == kMaxLanes ? ~uint64_t{0}
                                  : (uint64_t{1} << lanes_) - 1;
  inputValues_.assign(g_.denseCount, {});
  regValues_.assign(g_.regNodes.size(),
                    lanesBroadcast(Logic::Undef, ~uint64_t{0}));
  seedDefaults();
}

BatchSimulation::BatchSimulation(
    const SimGraph& graph, size_t lanes,
    std::shared_ptr<const codegen::CompiledDesign> compiled)
    : BatchSimulation(graph, lanes) {
  if (compiled) {
    compiled_ = std::make_unique<codegen::CompiledBatchEvaluator>(
        graph, std::move(compiled));
  }
}

BatchSimulation::~BatchSimulation() = default;

const EvalStats& BatchSimulation::stats() const {
  return compiled_ ? compiled_->stats() : eval_.stats();
}

void BatchSimulation::resetStats() {
  if (compiled_) compiled_->resetStats();
  else eval_.resetStats();
}

void BatchSimulation::seedDefaults() {
  // CLK reads as 1 while a cycle is evaluated; RSET is inactive.  Every
  // lane's RANDOM stream starts from the scalar default seed, so an
  // unseeded lane replays an unseeded scalar run.
  inputValues_[g_.dense(g_.design->clk)] =
      lanesBroadcast(Logic::One, ~uint64_t{0});
  inputValues_[g_.dense(g_.design->rset)] =
      lanesBroadcast(Logic::Zero, ~uint64_t{0});
  rngStates_.fill(kDefaultRngSeed);
}

void BatchSimulation::reset() {
  inputValues_.assign(g_.denseCount, {});
  regValues_.assign(g_.regNodes.size(),
                    lanesBroadcast(Logic::Undef, ~uint64_t{0}));
  seedDefaults();
  cycle_ = 0;
  errors_.clear();
  evaluated_ = false;
}

const Port* BatchSimulation::findPortOrThrow(const std::string& name) const {
  const Port* p = g_.design->findPort(name);
  if (!p) throw std::invalid_argument("no port named '" + name + "'");
  return p;
}

void BatchSimulation::checkLane(size_t lane) const {
  if (lane >= lanes_) {
    throw std::invalid_argument("lane " + std::to_string(lane) +
                                " out of range (batch has " +
                                std::to_string(lanes_) + " lane(s))");
  }
}

void BatchSimulation::setInput(size_t lane, const std::string& port,
                               Logic v) {
  setInput(lane, port, std::vector<Logic>{v});
}

void BatchSimulation::setInput(size_t lane, const std::string& port,
                               const std::vector<Logic>& bits) {
  checkLane(lane);
  const Port* p = findPortOrThrow(port);
  if (bits.size() != p->nets.size()) {
    throw std::invalid_argument("port '" + p->name + "' has " +
                                std::to_string(p->nets.size()) +
                                " bit(s), got " +
                                std::to_string(bits.size()));
  }
  for (size_t i = 0; i < bits.size(); ++i) {
    laneSet(inputValues_[g_.dense(p->nets[i])],
            static_cast<uint32_t>(lane), bits[i]);
  }
}

void BatchSimulation::setInputUint(size_t lane, const std::string& port,
                                   uint64_t value) {
  const Port* p = findPortOrThrow(port);
  std::vector<Logic> bits(p->nets.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    // Ports wider than 64 bits get zeros above bit 63 (shifting by >= 64
    // is undefined, not zero).
    bits[i] = logicFromBool(i < 64 && ((value >> i) & 1));
  }
  setInput(lane, port, bits);
}

void BatchSimulation::setInputAll(const std::string& port, Logic v) {
  const Port* p = findPortOrThrow(port);
  for (NetId n : p->nets) {
    inputValues_[g_.dense(n)] = lanesBroadcast(v, ~uint64_t{0});
  }
}

void BatchSimulation::clearInput(size_t lane, const std::string& port) {
  checkLane(lane);
  const Port* p = findPortOrThrow(port);
  for (NetId n : p->nets) {
    // A cleared lane carries NOINFL = (0,0): no contribution.
    laneSet(inputValues_[g_.dense(n)], static_cast<uint32_t>(lane),
            Logic::NoInfl);
  }
}

void BatchSimulation::setRset(bool active) {
  inputValues_[g_.dense(g_.design->rset)] =
      lanesBroadcast(logicFromBool(active), ~uint64_t{0});
}

void BatchSimulation::setRset(size_t lane, bool active) {
  checkLane(lane);
  laneSet(inputValues_[g_.dense(g_.design->rset)],
          static_cast<uint32_t>(lane), logicFromBool(active));
}

void BatchSimulation::setRandomSeed(size_t lane, uint64_t seed) {
  checkLane(lane);
  rngStates_[lane] = seed ? seed : 1;
}

uint64_t BatchSimulation::randomState(size_t lane) const {
  checkLane(lane);
  return rngStates_[lane];
}

void BatchSimulation::injectFault(size_t lane, const FaultSpec& fault) {
  checkLane(lane);
  if (fault.denseNet >= g_.denseCount) {
    throw std::invalid_argument("fault targets a net outside this design");
  }
  faults_.emplace_back(static_cast<uint32_t>(lane), fault);
}

void BatchSimulation::buildFaultPlan() {
  faultPlan_.resize(g_.denseCount);  // assign() clears previous cycle too
  faultPlan_.any = false;
  for (const auto& [lane, f] : faults_) {
    if (!f.activeAt(cycle_)) continue;
    uint64_t bit = uint64_t{1} << lane;
    switch (faultModeOf(f.kind)) {
      case FaultMode::Force0: faultPlan_.force0[f.denseNet] |= bit; break;
      case FaultMode::Force1: faultPlan_.force1[f.denseNet] |= bit; break;
      case FaultMode::ForceUndef:
        faultPlan_.forceUndef[f.denseNet] |= bit;
        break;
      case FaultMode::Flip: faultPlan_.flip[f.denseNet] |= bit; break;
      case FaultMode::Contend: faultPlan_.contend[f.denseNet] |= bit; break;
      case FaultMode::None: continue;
    }
    faultPlan_.any = true;
  }
}

uint64_t BatchSimulation::laneDiffMask(NetId net) const {
  if (!evaluated_) return 0;
  uint32_t dn = g_.dense(net);
  if (dn == SimGraph::kNoDense) return 0;  // dropped class: NOINFL everywhere
  const LanePlanes& p = result_.netValues[dn];
  uint64_t g0 = (p.p0 & 1) ? ~uint64_t{0} : 0;
  uint64_t g1 = (p.p1 & 1) ? ~uint64_t{0} : 0;
  return ((p.p0 ^ g0) | (p.p1 ^ g1)) & laneMask_ & ~uint64_t{1};
}

uint64_t BatchSimulation::divergedLanes() const {
  if (!evaluated_) return 0;
  uint64_t diff = 0;
  for (size_t i = 0; i < g_.denseCount; ++i) {
    const LanePlanes& p = result_.netValues[i];
    uint64_t g0 = (p.p0 & 1) ? ~uint64_t{0} : 0;
    uint64_t g1 = (p.p1 & 1) ? ~uint64_t{0} : 0;
    diff |= (p.p0 ^ g0) | (p.p1 ^ g1);
  }
  return diff & laneMask_ & ~uint64_t{1};
}

SimSnapshot BatchSimulation::saveSnapshot(size_t lane) const {
  checkLane(lane);
  SimSnapshot s;
  s.designHash = designContentHash(*g_.design);
  s.cycle = cycle_;
  s.rngState = rngStates_[lane];
  s.regValues = saveRegisters(lane);
  s.inputValues.assign(g_.denseCount, Logic::Undef);
  s.inputSet.assign(g_.denseCount, 0);
  for (size_t i = 0; i < g_.denseCount; ++i) {
    Logic v = laneValue(inputValues_[i], static_cast<uint32_t>(lane));
    if (v != Logic::NoInfl) {
      s.inputValues[i] = v;
      s.inputSet[i] = 1;
    }
  }
  for (const SimError& e : errors_) {
    if (e.lane != static_cast<int32_t>(lane)) continue;
    SimError scalar = e;
    scalar.lane = -1;  // scalar convention, so it restores anywhere
    s.errors.push_back(std::move(scalar));
  }
  return s;
}

void BatchSimulation::restoreSnapshot(size_t lane, const SimSnapshot& snap) {
  checkLane(lane);
  if (snap.designHash != 0 &&
      snap.designHash != designContentHash(*g_.design)) {
    throw std::invalid_argument(
        "snapshot was taken on a different design (content hash mismatch)");
  }
  if (snap.regValues.size() != regValues_.size() ||
      snap.inputValues.size() != g_.denseCount ||
      snap.inputSet.size() != g_.denseCount) {
    throw std::invalid_argument(
        "snapshot state sizes do not match this design");
  }
  restoreRegisters(lane, snap.regValues);
  for (size_t i = 0; i < g_.denseCount; ++i) {
    laneSet(inputValues_[i], static_cast<uint32_t>(lane),
            snap.inputSet[i] ? snap.inputValues[i] : Logic::NoInfl);
  }
  rngStates_[lane] = snap.rngState;
  cycle_ = snap.cycle;  // shared across lanes (documented)
  for (const SimError& e : snap.errors) {
    SimError tagged = e;
    tagged.lane = static_cast<int32_t>(lane);
    errors_.push_back(std::move(tagged));
  }
  evaluated_ = false;
}

std::vector<Logic> BatchSimulation::saveRegisters(size_t lane) const {
  checkLane(lane);
  std::vector<Logic> out(regValues_.size());
  for (size_t k = 0; k < regValues_.size(); ++k) {
    out[k] = laneValue(regValues_[k], static_cast<uint32_t>(lane));
  }
  return out;
}

void BatchSimulation::restoreRegisters(size_t lane,
                                       const std::vector<Logic>& state) {
  checkLane(lane);
  if (state.size() != regValues_.size()) {
    throw std::invalid_argument(
        "register snapshot has wrong size for this design");
  }
  for (size_t k = 0; k < regValues_.size(); ++k) {
    laneSet(regValues_[k], static_cast<uint32_t>(lane), state[k]);
  }
}

void BatchSimulation::runCycle(bool latch) {
  BatchSeeds seeds;
  seeds.inputValues = &inputValues_;
  seeds.regValues = &regValues_;
  seeds.rngStates = &rngStates_;
  seeds.laneMask = laneMask_;
  if (!faults_.empty()) {
    buildFaultPlan();
    if (faultPlan_.any) seeds.faults = &faultPlan_;
  }
  if (compiled_) compiled_->evaluate(seeds, result_);
  else eval_.evaluate(seeds, result_);
  evaluated_ = true;

  const Netlist& nl = g_.design->netlist;
  const size_t firstError = errors_.size();
  for (uint32_t dn : result_.collisions) {
    uint64_t mask = result_.activeMulti[dn] & laneMask_;
    for (uint32_t lane = 0; lane < lanes_; ++lane) {
      if (!((mask >> lane) & 1)) continue;
      errors_.push_back(
          {cycle_, Diag::SimContention, nl.net(g_.rootOf[dn]).name,
           "more than one (0,1,UNDEF)-assignment active in one cycle",
           static_cast<int32_t>(lane)});
    }
  }
  // Deterministic surfacing order: collisions arrive in schedule order
  // with lanes nested inside, so re-sort this cycle's records by
  // (lane, net).  Cycles are appended monotonically, which makes the
  // whole errors() vector ordered by (cycle, lane, net).
  std::sort(errors_.begin() + static_cast<ptrdiff_t>(firstError),
            errors_.end(), [](const SimError& a, const SimError& b) {
              return a.lane != b.lane ? a.lane < b.lane
                                      : a.netName < b.netName;
            });

  if (!latch) return;
  // Per-lane two-phase latch (§5.1): a lane's register keeps its value
  // when that lane saw no active assignment this cycle.
  for (size_t k = 0; k < g_.regNodes.size(); ++k) {
    const Node& reg = nl.node(g_.regNodes[k]);
    uint32_t in = g_.dense(reg.inputs[0]);
    uint64_t act = result_.activeAny[in];
    const LanePlanes& v = result_.netValues[in];
    LanePlanes& r = regValues_[k];
    r.p0 = (v.p0 & act) | (r.p0 & ~act);
    r.p1 = (v.p1 & act) | (r.p1 & ~act);
  }
  ++cycle_;
}

void BatchSimulation::step(uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) runCycle(/*latch=*/true);
}

void BatchSimulation::evaluateOnly() { runCycle(/*latch=*/false); }

Logic BatchSimulation::netValue(size_t lane, NetId net) const {
  checkLane(lane);
  if (!evaluated_) return Logic::Undef;
  uint32_t dn = g_.dense(net);
  if (dn == SimGraph::kNoDense) return Logic::NoInfl;  // dropped class
  return laneValue(result_.netValues[dn], static_cast<uint32_t>(lane));
}

Logic BatchSimulation::netValueByName(size_t lane,
                                      const std::string& name) const {
  NetId id = g_.design->netlist.findByName(name);
  if (id == kNoNet) throw std::invalid_argument("no net named '" + name + "'");
  return netValue(lane, id);
}

std::vector<Logic> BatchSimulation::outputBits(
    size_t lane, const std::string& port) const {
  const Port* p = findPortOrThrow(port);
  std::vector<Logic> out;
  out.reserve(p->nets.size());
  for (size_t i = 0; i < p->nets.size(); ++i) {
    Logic v = netValue(lane, p->nets[i]);
    // Observation of a boolean port converts NOINFL to UNDEF (§4.1).
    if (v == Logic::NoInfl && p->kinds[i] == BasicKind::Boolean)
      v = Logic::Undef;
    out.push_back(v);
  }
  return out;
}

Logic BatchSimulation::output(size_t lane, const std::string& port) const {
  std::vector<Logic> bits = outputBits(lane, port);
  if (bits.size() != 1) {
    throw std::invalid_argument("port '" + port + "' is not a single bit");
  }
  return bits[0];
}

metrics::SimCounters BatchSimulation::metricsCounters() const {
  const EvalStats& s = stats();
  metrics::SimCounters c;
  c.ran = true;
  c.evaluator = compiled_ ? "batch-compiled" : "batch";
  c.cycles = cycle_;
  c.lanes = lanes_;
  c.laneCycles = cycle_ * lanes_;
  c.nodeFirings = s.nodeFirings;
  c.inputEvents = s.inputEvents;
  c.sweeps = s.sweeps;
  c.netResolutions = s.netResolutions;
  c.shortCircuitSkips = s.shortCircuitSkips;
  c.contentionChecks = s.contentionChecks;
  c.epochResets = s.epochResets;
  c.faults = errors_.size();
  for (const SimError& e : errors_) {
    if (e.code == Diag::SimContention) ++c.contentionFaults;
  }
  return c;
}

std::optional<uint64_t> BatchSimulation::outputUint(
    size_t lane, const std::string& port) const {
  std::vector<Logic> bits = outputBits(lane, port);
  uint64_t value = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (!isDefined(bits[i])) return std::nullopt;
    if (bits[i] == Logic::One) {
      if (i >= 64) return std::nullopt;  // doesn't fit a uint64_t
      value |= uint64_t{1} << i;
    }
  }
  return value;
}

}  // namespace zeus

// 64-wide batch simulation facade over the levelized evaluator.
//
// Packs up to 64 independent stimulus vectors ("lanes") into two bit
// planes per net and evaluates all of them with one word-parallel walk of
// the levelized schedule — corpus regression sweeps and random
// differential testing run ~lanes cycles of work per evaluated cycle.
// Lane L behaves exactly like a scalar Simulation fed lane L's inputs:
// same net values, same register trajectories, same per-lane multiplex
// contention errors (SimError::lane tells the lanes apart).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/simulation.h"

namespace zeus {

namespace codegen {
class CompiledDesign;
class CompiledBatchEvaluator;
}  // namespace codegen

class BatchSimulation {
 public:
  static constexpr size_t kMaxLanes = 64;

  /// `lanes` independent stimulus streams (1..64) over one graph.
  explicit BatchSimulation(const SimGraph& graph, size_t lanes = kMaxLanes);
  /// Same facade running the hot-loaded compiled engine
  /// (src/codegen/compiled.h) instead of the interpreter; a null design
  /// falls back to the interpreter silently.
  BatchSimulation(const SimGraph& graph, size_t lanes,
                  std::shared_ptr<const codegen::CompiledDesign> compiled);
  ~BatchSimulation();  // out-of-line: compiled_ is an incomplete type

  /// True when cycles run on the compiled engine (vs the interpreter).
  [[nodiscard]] bool usingCompiled() const { return compiled_ != nullptr; }

  [[nodiscard]] size_t lanes() const { return lanes_; }

  /// Clears registers to UNDEF, inputs to unset, cycle count to 0 and the
  /// per-lane RANDOM streams to their defaults (mirrors Simulation::reset).
  void reset();

  // -- driving inputs (persist until changed) --
  void setInput(size_t lane, const std::string& port, Logic v);
  void setInput(size_t lane, const std::string& port,
                const std::vector<Logic>& bits);
  /// Sets an array port from an unsigned value; port index 1 is the LSB.
  void setInputUint(size_t lane, const std::string& port, uint64_t value);
  /// Drives the same value on every lane.
  void setInputAll(const std::string& port, Logic v);
  void clearInput(size_t lane, const std::string& port);
  void setRset(bool active);               ///< all lanes
  void setRset(size_t lane, bool active);  ///< one lane
  /// Seed for lane `lane`'s RANDOM stream: the lane then draws the same
  /// sequence as a scalar Simulation with setRandomSeed(seed).
  void setRandomSeed(size_t lane, uint64_t seed);
  /// Current position of lane `lane`'s RANDOM stream (the value a
  /// snapshot of that lane would carry).
  [[nodiscard]] uint64_t randomState(size_t lane) const;

  // -- fault injection (parallel fault simulation) --
  /// Injects a hardware fault (src/sim/fault.h) into one lane: that lane
  /// then simulates the faulty machine while other lanes are unaffected —
  /// the classic golden-lane-0 parallel fault simulation setup used by
  /// runFaultCampaign().  Faults persist across reset(); clearFaults()
  /// removes them.
  void injectFault(size_t lane, const FaultSpec& fault);
  void clearFaults() { faults_.clear(); }

  // -- divergence probes (vs the golden lane 0) --
  /// Lanes (excluding lane 0) whose raw planes differ from lane 0 on this
  /// net in the last evaluated cycle.
  [[nodiscard]] uint64_t laneDiffMask(NetId net) const;
  /// Union of laneDiffMask over every net: all lanes that diverged from
  /// lane 0 anywhere this cycle.
  [[nodiscard]] uint64_t divergedLanes() const;

  // -- checkpointing --
  /// Registers of one lane only — see the Simulation::saveRegisters
  /// contract: partial state, no RNG/cycle/inputs/errors.
  [[nodiscard]] std::vector<Logic> saveRegisters(size_t lane) const;
  void restoreRegisters(size_t lane, const std::vector<Logic>& state);

  /// Full resumable state of one lane, interchangeable with a scalar
  /// Simulation snapshot of the same design: registers, pending inputs
  /// (NOINFL lanes read as unset), the lane's RANDOM stream, the shared
  /// cycle count and the lane's SimErrors (with lane reset to -1 so they
  /// restore cleanly into a scalar run).  Evaluator counters are batch-
  /// wide, not per lane, so the snapshot's stats field is left zero.
  [[nodiscard]] SimSnapshot saveSnapshot(size_t lane) const;
  /// Restores a (scalar or per-lane) snapshot into one lane.  Sets the
  /// batch's SHARED cycle counter to the snapshot's cycle and appends the
  /// snapshot's errors tagged with this lane.  Throws
  /// std::invalid_argument on design-hash or size mismatch.
  void restoreSnapshot(size_t lane, const SimSnapshot& snap);

  /// Evaluates `n` clock cycles (evaluate + latch each) on every lane.
  void step(uint64_t n = 1);
  /// Evaluates combinationally without latching registers (inspection).
  void evaluateOnly();

  // -- observing --
  [[nodiscard]] Logic output(size_t lane, const std::string& port) const;
  [[nodiscard]] std::vector<Logic> outputBits(size_t lane,
                                              const std::string& port) const;
  [[nodiscard]] std::optional<uint64_t> outputUint(
      size_t lane, const std::string& port) const;
  [[nodiscard]] Logic netValue(size_t lane, NetId net) const;
  [[nodiscard]] Logic netValueByName(size_t lane,
                                     const std::string& name) const;

  [[nodiscard]] uint64_t cycle() const { return cycle_; }
  /// Runtime faults across all lanes, deterministically ordered by
  /// (cycle, lane, net name); SimError::lane identifies the lane.
  [[nodiscard]] const std::vector<SimError>& errors() const {
    return errors_;
  }
  [[nodiscard]] const EvalStats& stats() const;
  void resetStats();

  /// Counter snapshot of this run.  Per-evaluated-cycle counters (one
  /// word-parallel firing covers every lane), so totals compare directly
  /// with a scalar levelized run of the same cycle count; lane_cycles
  /// reports the lanes × cycles of scalar-equivalent work performed.
  [[nodiscard]] metrics::SimCounters metricsCounters() const;

  [[nodiscard]] const SimGraph& graph() const { return g_; }
  [[nodiscard]] const Design& design() const { return *g_.design; }

 private:
  const Port* findPortOrThrow(const std::string& name) const;
  void checkLane(size_t lane) const;
  void runCycle(bool latch);
  void seedDefaults();
  void buildFaultPlan();

  const SimGraph& g_;
  size_t lanes_;
  uint64_t laneMask_;
  LevelizedBatchEvaluator eval_;  ///< interpreter (also the fallback)
  std::unique_ptr<codegen::CompiledBatchEvaluator> compiled_;

  std::vector<LanePlanes> inputValues_;  ///< per dense net
  std::vector<LanePlanes> regValues_;    ///< per graph.regNodes index
  std::array<uint64_t, kMaxLanes> rngStates_;
  BatchCycleResult result_;
  uint64_t cycle_ = 0;
  std::vector<SimError> errors_;
  bool evaluated_ = false;
  std::vector<std::pair<uint32_t, FaultSpec>> faults_;  ///< (lane, fault)
  BatchFaultPlan faultPlan_;  ///< rebuilt per cycle while faults_ exists
};

}  // namespace zeus

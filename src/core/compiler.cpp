#include "src/core/compiler.h"

#include "src/core/batch_sim.h"
#include "src/parser/parser.h"
#include "src/sim/graph.h"
#include "src/sim/simulation.h"
#include "src/support/eventlog.h"
#include "src/support/trace.h"

namespace zeus {

std::unique_ptr<Compilation> Compilation::fromSource(std::string name,
                                                     std::string text,
                                                     Limits limits) {
  auto comp = std::unique_ptr<Compilation>(new Compilation());
  comp->limits_ = limits;
  comp->sources_ = std::make_unique<SourceManager>();
  BufferId buf = comp->sources_->addBuffer(std::move(name), std::move(text));
  comp->diags_ = std::make_unique<DiagnosticEngine>(*comp->sources_);
  comp->types_ =
      std::make_unique<TypeTable>(*comp->diags_, limits, &comp->usage_);

  Parser parser(buf, *comp->diags_, limits, &comp->usage_);
  comp->program_ = parser.parseProgram();

  {
    ZEUS_TRACE_SPAN("sema", "compile");
    Checker checker(*comp->diags_, *comp->types_);
    comp->checked_ = checker.check(comp->program_);
  }
  eventlog::emit(comp->ok() ? eventlog::Severity::Info
                            : eventlog::Severity::Error,
                 "compile", "front-end-done",
                 {eventlog::boolean("ok", comp->ok()),
                  eventlog::num("tokens", static_cast<uint64_t>(
                                              comp->usage_.tokens))});
  return comp;
}

std::unique_ptr<Design> Compilation::elaborate(const std::string& topName) {
  return elaborate(topName, Elaborator::Options());
}

std::unique_ptr<Design> Compilation::elaborate(const std::string& topName,
                                               Elaborator::Options options) {
  if (!ok()) return nullptr;
  if (!options.usage) {
    // Default the elaborator onto this compilation's budgets/accounting
    // unless the caller supplied their own.
    options.limits = limits_;
    options.usage = &usage_;
  }
  ZEUS_TRACE_SPAN("elab", "compile");
  Elaborator elab(*diags_, *types_, options);
  auto design = elab.elaborate(program_, *checked_.rootEnv, topName);
  eventlog::emit(
      design ? eventlog::Severity::Info : eventlog::Severity::Error,
      "compile", "elab-done",
      {eventlog::str("top", topName), eventlog::boolean("ok", !!design),
       eventlog::num("nets", static_cast<uint64_t>(
                                 design ? design->netlist.netCount() : 0)),
       eventlog::num("nodes", static_cast<uint64_t>(
                                  design ? design->netlist.nodeCount() : 0))});
  return design;
}

LintReport Compilation::lint(const Design& design, const LintOptions& opts) {
  // Reuse the diagnostic engine for the CombinationalLoop check too, but
  // only if the caller has not already built a graph — a second build
  // would duplicate the error.  has() makes the rebuild idempotent.
  if (diags_->has(Diag::CombinationalLoop)) return {};
  SimGraph graph = buildSimGraph(design, *diags_);
  ZEUS_TRACE_SPAN("lint", "compile");
  return runLint(design, graph, *diags_, opts);
}

OptReport Compilation::optimize(Design& design, const OptOptions& opts) {
  return optimizeDesign(design, *diags_, opts);
}

void Compilation::recordSimulation(const Simulation& sim) {
  usage_.simCycles = sim.cycle();
  usage_.simEvents = sim.stats().inputEvents;
  usage_.simFaults = sim.errors().size();
}

void Compilation::recordSimulation(const BatchSimulation& sim) {
  usage_.simCycles = sim.cycle();
  usage_.simEvents = sim.stats().inputEvents;
  usage_.simFaults = sim.errors().size();
}

}  // namespace zeus

#include "src/core/compiler.h"

#include "src/parser/parser.h"

namespace zeus {

std::unique_ptr<Compilation> Compilation::fromSource(std::string name,
                                                     std::string text) {
  auto comp = std::unique_ptr<Compilation>(new Compilation());
  comp->sources_ = std::make_unique<SourceManager>();
  BufferId buf = comp->sources_->addBuffer(std::move(name), std::move(text));
  comp->diags_ = std::make_unique<DiagnosticEngine>(*comp->sources_);
  comp->types_ = std::make_unique<TypeTable>(*comp->diags_);

  Parser parser(buf, *comp->diags_);
  comp->program_ = parser.parseProgram();

  Checker checker(*comp->diags_, *comp->types_);
  comp->checked_ = checker.check(comp->program_);
  return comp;
}

std::unique_ptr<Design> Compilation::elaborate(const std::string& topName) {
  return elaborate(topName, Elaborator::Options());
}

std::unique_ptr<Design> Compilation::elaborate(const std::string& topName,
                                               Elaborator::Options options) {
  if (!ok()) return nullptr;
  Elaborator elab(*diags_, *types_, options);
  return elab.elaborate(program_, *checked_.rootEnv, topName);
}

}  // namespace zeus

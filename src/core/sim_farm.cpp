#include "src/core/sim_farm.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "src/support/eventlog.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace zeus {

namespace {

metrics::Counter farmRuns("farm-runs");
metrics::Counter farmBlocks("farm-blocks");

constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ull;
constexpr uint64_t kFnvPrime = 0x100000001B3ull;

uint64_t splitmix(uint64_t x) {
  x += kGolden;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t xorshift(uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// One observable primary-output bit (same selection as runFaultCampaign:
/// every non-IN port bit, in port declaration order).
struct Observable {
  NetId net;
};

std::vector<Observable> observableOutputs(const SimGraph& g) {
  std::vector<Observable> out;
  for (const Port& p : g.design->ports) {
    for (size_t b = 0; b < p.nets.size(); ++b) {
      if (p.modes[b] == ast::ParamMode::In) continue;
      out.push_back({p.nets[b]});
    }
  }
  return out;
}

std::vector<const Port*> stimulusInputs(const SimGraph& g) {
  std::vector<const Port*> in;
  for (const Port& p : g.design->ports) {
    if (p.mode == ast::ParamMode::In) in.push_back(&p);
  }
  return in;
}

/// Fills `bits` (pre-sized to the port width) from the lane's stimulus
/// stream; shared verbatim by the farm and the scalar oracle.
void stimulusBits(uint64_t& stream, std::vector<Logic>& bits) {
  uint64_t word = 0;
  for (size_t b = 0; b < bits.size(); ++b) {
    if (b % 64 == 0) word = xorshift(stream);
    bits[b] = logicFromBool((word >> (b % 64)) & 1);
  }
}

void foldChecksum(uint64_t& h, Logic v) {
  h = (h ^ (static_cast<uint64_t>(v) + 1)) * kFnvPrime;
}

void mergeStats(EvalStats& into, const EvalStats& s) {
  into.nodeFirings += s.nodeFirings;
  into.inputEvents += s.inputEvents;
  into.sweeps += s.sweeps;
  into.netResolutions += s.netResolutions;
  into.shortCircuitSkips += s.shortCircuitSkips;
  into.contentionChecks += s.contentionChecks;
  into.epochResets += s.epochResets;
  into.watchdogMarginMin =
      std::min(into.watchdogMarginMin, s.watchdogMarginMin);
}

/// Canonical farm error order: (cycle, lane, net), then code for the
/// (unlikely) case of two distinct faults on one lane-net-cycle.
void sortCanonical(std::vector<SimError>& errors) {
  std::stable_sort(errors.begin(), errors.end(),
                   [](const SimError& a, const SimError& b) {
                     if (a.cycle != b.cycle) return a.cycle < b.cycle;
                     if (a.lane != b.lane) return a.lane < b.lane;
                     if (a.netName != b.netName) return a.netName < b.netName;
                     return a.code < b.code;
                   });
}

void validateOptions(const FarmOptions& opts) {
  if (opts.lanes == 0) {
    throw std::invalid_argument("farm needs at least one lane");
  }
  if (opts.lanesPerBlock == 0 ||
      opts.lanesPerBlock > BatchSimulation::kMaxLanes) {
    throw std::invalid_argument("farm lanes-per-block must be 1..64");
  }
  if (opts.threads == 0) {
    throw std::invalid_argument("farm needs at least one thread");
  }
}

}  // namespace

uint64_t farmLaneRngSeed(uint64_t rootSeed, uint64_t lane) {
  uint64_t s = splitmix(rootSeed ^ ((lane + 1) * kGolden));
  return s ? s : 1;
}

uint64_t farmStimulusSeed(uint64_t rootSeed, uint64_t lane, uint64_t cycle) {
  uint64_t s = splitmix(splitmix(rootSeed ^ ((lane + 1) * kGolden)) ^
                        ((cycle + 1) * 0xBF58476D1CE4E5B9ull));
  return s ? s : 1;
}

uint64_t FarmReport::mergedChecksum() const {
  uint64_t h = 0xCBF29CE484222325ull;
  for (uint64_t c : checksums) h = (h ^ c) * kFnvPrime;
  return h;
}

double FarmReport::laneCyclesPerSec() const {
  if (seconds <= 0) return 0;
  return static_cast<double>(cycles) * static_cast<double>(lanes) / seconds;
}

FarmReport runFarm(const SimGraph& graph, const FarmOptions& opts,
                   const FarmSnapshot* resume) {
  ZEUS_TRACE_SPAN("farm-run", "sim");
  validateOptions(opts);
  const size_t lanes = opts.lanes;
  const size_t perBlock = opts.lanesPerBlock;
  const size_t blocks = (lanes + perBlock - 1) / perBlock;
  const uint64_t designHash = designContentHash(*graph.design);

  uint64_t startCycle = 0;
  EvalStats baseStats;
  if (resume) {
    if (resume->designHash != designHash) {
      throw std::invalid_argument(
          "farm snapshot was taken on a different design");
    }
    if (resume->totalLanes != lanes || resume->lanesPerBlock != perBlock ||
        resume->seed != opts.seed) {
      throw std::invalid_argument(
          "farm snapshot does not match this run (lanes, block size or "
          "seed differ)");
    }
    if (resume->cycle > opts.cycles) {
      throw std::invalid_argument(
          "farm snapshot is further along than the requested cycle count");
    }
    if (resume->lanes.size() != lanes || resume->checksums.size() != lanes) {
      throw std::invalid_argument("farm snapshot lane state is incomplete");
    }
    startCycle = resume->cycle;
    baseStats = resume->stats;
  }

  const std::vector<Observable> outputs = observableOutputs(graph);
  const std::vector<const Port*> inputs = stimulusInputs(graph);
  const bool checkpointing = opts.checkpointAtCycle > startCycle &&
                             opts.checkpointAtCycle <= opts.cycles &&
                             opts.onCheckpoint;

  FarmReport report;
  report.cycles = opts.cycles;
  report.lanes = lanes;
  report.blocks = blocks;
  report.threads = std::max<size_t>(1, std::min(opts.threads, blocks));
  report.checksums.assign(lanes, 0);
  report.rngStates.assign(lanes, 0);
  if (resume) report.checksums = resume->checksums;

  eventlog::emit(eventlog::Severity::Info, "farm", "run-start",
                 {eventlog::num("lanes", static_cast<uint64_t>(lanes)),
                  eventlog::num("blocks", static_cast<uint64_t>(blocks)),
                  eventlog::num("threads",
                                static_cast<uint64_t>(report.threads)),
                  eventlog::num("cycles", opts.cycles)});

  // Per-block result slots: each worker writes only its claimed block's
  // slot (and its block's disjoint lane range), so the merge below needs
  // no locks — just the joins.
  std::vector<std::vector<SimError>> blockErrors(blocks);
  std::vector<EvalStats> blockStats(blocks);
  std::vector<uint64_t> blockWallUs(blocks, 0);
  std::vector<EvalStats> checkpointStats(checkpointing ? blocks : 0);
  std::vector<SimSnapshot> checkpointLanes(checkpointing ? lanes : 0);
  std::vector<uint64_t> checkpointSums(checkpointing ? lanes : 0);

  std::atomic<size_t> nextBlock{0};
  std::mutex failMutex;
  std::string firstFailure;

  auto runBlock = [&](size_t b) {
    const auto blockT0 = std::chrono::steady_clock::now();
    const size_t first = b * perBlock;
    const size_t n = std::min(perBlock, lanes - first);
    BatchSimulation batch(graph, n, opts.compiled);
    if (resume) {
      for (size_t l = 0; l < n; ++l) {
        batch.restoreSnapshot(l, resume->lanes[first + l]);
      }
    } else {
      for (size_t l = 0; l < n; ++l) {
        batch.setRandomSeed(l, farmLaneRngSeed(opts.seed, first + l));
      }
    }
    std::vector<uint64_t> streams(n);
    std::vector<Logic> bits;
    for (uint64_t c = startCycle; c < opts.cycles; ++c) {
      batch.setRset(c == 0);  // cycle 0 is the reset pulse
      for (size_t l = 0; l < n; ++l) {
        streams[l] = farmStimulusSeed(opts.seed, first + l, c);
      }
      for (const Port* p : inputs) {
        bits.resize(p->nets.size());
        for (size_t l = 0; l < n; ++l) {
          stimulusBits(streams[l], bits);
          batch.setInput(l, p->name, bits);
        }
      }
      batch.step(1);
      for (size_t l = 0; l < n; ++l) {
        uint64_t& h = report.checksums[first + l];
        for (const Observable& obs : outputs) {
          foldChecksum(h, batch.netValue(l, obs.net));
        }
      }
      if (checkpointing && c + 1 == opts.checkpointAtCycle) {
        checkpointStats[b] = batch.stats();
        for (size_t l = 0; l < n; ++l) {
          checkpointLanes[first + l] = batch.saveSnapshot(l);
          checkpointSums[first + l] = report.checksums[first + l];
        }
      }
    }
    for (size_t l = 0; l < n; ++l) {
      report.rngStates[first + l] = batch.randomState(l);
    }
    blockStats[b] = batch.stats();
    std::vector<SimError>& errs = blockErrors[b];
    errs = batch.errors();
    for (SimError& e : errs) {
      e.lane = static_cast<int32_t>(first) + std::max<int32_t>(e.lane, 0);
    }
    blockWallUs[b] = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - blockT0)
            .count());
    eventlog::emit(eventlog::Severity::Debug, "farm", "block-done",
                   {eventlog::num("block", static_cast<uint64_t>(b)),
                    eventlog::num("lanes", static_cast<uint64_t>(n)),
                    eventlog::num("wall_us", blockWallUs[b])});
    farmBlocks.add();
  };

  auto worker = [&]() {
    for (;;) {
      size_t b = nextBlock.fetch_add(1, std::memory_order_relaxed);
      if (b >= blocks) return;
      try {
        runBlock(b);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(failMutex);
        if (firstFailure.empty()) firstFailure = e.what();
      }
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> pool;
    pool.reserve(report.threads - 1);
    for (size_t t = 1; t < report.threads; ++t) pool.emplace_back(worker);
    worker();  // the calling thread is worker 0
    for (std::thread& t : pool) t.join();
  }
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!firstFailure.empty()) {
    throw std::runtime_error("farm block failed: " + firstFailure);
  }

  report.stats = baseStats;
  for (const EvalStats& s : blockStats) mergeStats(report.stats, s);
  size_t total = 0;
  for (const auto& errs : blockErrors) total += errs.size();
  report.errors.reserve(total);
  for (auto& errs : blockErrors) {
    report.errors.insert(report.errors.end(),
                         std::make_move_iterator(errs.begin()),
                         std::make_move_iterator(errs.end()));
  }
  sortCanonical(report.errors);
  // Merge in block order; per-bucket sums make the result independent of
  // which worker ran which block anyway.
  for (uint64_t us : blockWallUs) report.blockUs.record(us);
  farmRuns.add();
  eventlog::emit(
      eventlog::Severity::Info, "farm", "run-done",
      {eventlog::num("seconds", report.seconds),
       eventlog::num("faults", static_cast<uint64_t>(report.errors.size())),
       eventlog::num("block_us_p99", report.blockUs.percentile(99))});

  if (checkpointing) {
    FarmSnapshot snap;
    snap.designHash = designHash;
    snap.cycle = opts.checkpointAtCycle;
    snap.seed = opts.seed;
    snap.totalLanes = static_cast<uint32_t>(lanes);
    snap.lanesPerBlock = static_cast<uint32_t>(perBlock);
    snap.stats = baseStats;
    for (const EvalStats& s : checkpointStats) mergeStats(snap.stats, s);
    snap.checksums = std::move(checkpointSums);
    snap.lanes = std::move(checkpointLanes);
    opts.onCheckpoint(snap);
  }
  return report;
}

FarmReport runFarmScalarOracle(const SimGraph& graph,
                               const FarmOptions& opts) {
  ZEUS_TRACE_SPAN("farm-oracle", "sim");
  validateOptions(opts);
  const size_t lanes = opts.lanes;
  const std::vector<Observable> outputs = observableOutputs(graph);
  const std::vector<const Port*> inputs = stimulusInputs(graph);

  FarmReport report;
  report.cycles = opts.cycles;
  report.lanes = lanes;
  report.blocks = lanes;  // one scalar sim per lane
  report.threads = 1;
  report.checksums.assign(lanes, 0);
  report.rngStates.assign(lanes, 0);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Logic> bits;
  for (size_t lane = 0; lane < lanes; ++lane) {
    Simulation sim(graph, EvaluatorKind::Levelized);
    sim.setRandomSeed(farmLaneRngSeed(opts.seed, lane));
    uint64_t& h = report.checksums[lane];
    for (uint64_t c = 0; c < opts.cycles; ++c) {
      sim.setRset(c == 0);
      uint64_t stream = farmStimulusSeed(opts.seed, lane, c);
      for (const Port* p : inputs) {
        bits.resize(p->nets.size());
        stimulusBits(stream, bits);
        sim.setInput(p->name, bits);
      }
      sim.step(1);
      for (const Observable& obs : outputs) {
        foldChecksum(h, sim.netValue(obs.net));
      }
    }
    report.rngStates[lane] = sim.randomState();
    for (const SimError& e : sim.errors()) {
      SimError tagged = e;
      tagged.lane = static_cast<int32_t>(lane);
      report.errors.push_back(std::move(tagged));
    }
    mergeStats(report.stats, sim.stats());
  }
  report.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  sortCanonical(report.errors);
  return report;
}

metrics::SimCounters farmMetricsCounters(const FarmReport& r) {
  metrics::SimCounters c;
  c.ran = true;
  c.evaluator = "farm";
  c.cycles = r.cycles;
  c.lanes = r.lanes;
  c.laneCycles = r.cycles * r.lanes;
  c.nodeFirings = r.stats.nodeFirings;
  c.inputEvents = r.stats.inputEvents;
  c.sweeps = r.stats.sweeps;
  c.netResolutions = r.stats.netResolutions;
  c.shortCircuitSkips = r.stats.shortCircuitSkips;
  c.contentionChecks = r.stats.contentionChecks;
  c.epochResets = r.stats.epochResets;
  c.faults = r.errors.size();
  for (const SimError& e : r.errors) {
    if (e.code == Diag::SimContention) ++c.contentionFaults;
  }
  return c;
}

}  // namespace zeus

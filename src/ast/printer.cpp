#include "src/ast/printer.h"

namespace zeus::ast {
namespace {

const char* unOpName(UnOp op) {
  switch (op) {
    case UnOp::Plus: return "+";
    case UnOp::Minus: return "-";
    case UnOp::Not: return "NOT";
  }
  return "?";
}

const char* binOpName(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "DIV";
    case BinOp::Mod: return "MOD";
    case BinOp::And: return "AND";
    case BinOp::Or: return "OR";
    case BinOp::Eq: return "=";
    case BinOp::Ne: return "<>";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
  }
  return "?";
}

void dumpList(std::string& out, const std::vector<StmtPtr>& body);
void dumpLayoutList(std::string& out, const std::vector<LayoutStmtPtr>& body);

void dumpExpr(std::string& out, const Expr& e) {
  switch (e.kind) {
    case ExprKind::Number:
      out += std::to_string(e.number);
      break;
    case ExprKind::NameRef:
      out += e.name;
      break;
    case ExprKind::Select:
      dumpExpr(out, *e.base);
      out += '.';
      out += e.name;
      break;
    case ExprKind::Index:
      dumpExpr(out, *e.base);
      out += '[';
      if (e.numIndex) {
        out += "NUM(";
        dumpExpr(out, *e.numIndex);
        out += ')';
      } else {
        dumpExpr(out, *e.indexLo);
        if (e.indexHi) {
          out += "..";
          dumpExpr(out, *e.indexHi);
        }
      }
      out += ']';
      break;
    case ExprKind::Tuple:
      out += '(';
      for (size_t i = 0; i < e.elems.size(); ++i) {
        if (i) out += ',';
        dumpExpr(out, *e.elems[i]);
      }
      out += ')';
      break;
    case ExprKind::Call:
      out += e.name;
      if (!e.typeArgs.empty()) {
        out += '[';
        for (size_t i = 0; i < e.typeArgs.size(); ++i) {
          if (i) out += ',';
          dumpExpr(out, *e.typeArgs[i]);
        }
        out += ']';
      }
      out += '(';
      for (size_t i = 0; i < e.elems.size(); ++i) {
        if (i) out += ',';
        dumpExpr(out, *e.elems[i]);
      }
      out += ')';
      break;
    case ExprKind::Star:
      out += '*';
      if (e.base) {
        out += ':';
        dumpExpr(out, *e.base);
      }
      break;
    case ExprKind::Unary:
      out += '(';
      out += unOpName(e.unOp);
      out += ' ';
      dumpExpr(out, *e.base);
      out += ')';
      break;
    case ExprKind::Binary:
      out += '(';
      dumpExpr(out, *e.lhs);
      out += ' ';
      out += binOpName(e.binOp);
      out += ' ';
      dumpExpr(out, *e.rhs);
      out += ')';
      break;
  }
}

void dumpType(std::string& out, const TypeExpr& t) {
  switch (t.kind) {
    case TypeExprKind::Named:
      out += t.name;
      if (!t.args.empty()) {
        out += '(';
        for (size_t i = 0; i < t.args.size(); ++i) {
          if (i) out += ',';
          dumpExpr(out, *t.args[i]);
        }
        out += ')';
      }
      break;
    case TypeExprKind::Array:
      out += "ARRAY[";
      dumpExpr(out, *t.lo);
      out += "..";
      dumpExpr(out, *t.hi);
      out += "] OF ";
      dumpType(out, *t.elem);
      break;
    case TypeExprKind::Component: {
      out += "COMPONENT(";
      for (size_t i = 0; i < t.params.size(); ++i) {
        if (i) out += "; ";
        const FParam& p = t.params[i];
        if (p.mode == ParamMode::In) out += "IN ";
        if (p.mode == ParamMode::Out) out += "OUT ";
        for (size_t j = 0; j < p.names.size(); ++j) {
          if (j) out += ',';
          out += p.names[j];
        }
        out += ':';
        dumpType(out, *p.type);
      }
      out += ')';
      if (!t.headerLayout.empty()) {
        out += " {";
        dumpLayoutList(out, t.headerLayout);
        out += '}';
      }
      if (t.resultType) {
        out += ':';
        dumpType(out, *t.resultType);
      }
      if (t.hasBody) {
        out += " IS";
        if (t.hasUses) {
          out += " USES ";
          for (size_t i = 0; i < t.uses.size(); ++i) {
            if (i) out += ',';
            out += t.uses[i];
          }
          out += ';';
        }
        out += ' ';
        for (const DeclPtr& d : t.decls) out += dump(*d);
        if (!t.bodyLayout.empty()) {
          out += '{';
          dumpLayoutList(out, t.bodyLayout);
          out += "} ";
        }
        out += "BEGIN ";
        dumpList(out, t.body);
        out += " END";
      }
      break;
    }
  }
}

void dumpStmt(std::string& out, const Stmt& s) {
  switch (s.kind) {
    case StmtKind::Assign:
      dumpExpr(out, *s.lhs);
      out += s.isAlias ? " == " : " := ";
      dumpExpr(out, *s.rhs);
      break;
    case StmtKind::Connection:
      dumpExpr(out, *s.target);
      dumpExpr(out, *s.actuals);
      break;
    case StmtKind::Replication:
      out += "FOR ";
      out += s.loopVar;
      out += " := ";
      dumpExpr(out, *s.from);
      out += s.downto ? " DOWNTO " : " TO ";
      dumpExpr(out, *s.to);
      out += " DO ";
      if (s.sequentially) out += "SEQUENTIALLY ";
      dumpList(out, s.body);
      out += " END";
      break;
    case StmtKind::CondGen:
      for (size_t i = 0; i < s.arms.size(); ++i) {
        out += i == 0 ? "WHEN " : " OTHERWISEWHEN ";
        dumpExpr(out, *s.arms[i].cond);
        out += " THEN ";
        dumpList(out, s.arms[i].body);
      }
      if (!s.elseBody.empty()) {
        out += " OTHERWISE ";
        dumpList(out, s.elseBody);
      }
      out += " END";
      break;
    case StmtKind::If:
      for (size_t i = 0; i < s.arms.size(); ++i) {
        out += i == 0 ? "IF " : " ELSIF ";
        dumpExpr(out, *s.arms[i].cond);
        out += " THEN ";
        dumpList(out, s.arms[i].body);
      }
      if (!s.elseBody.empty()) {
        out += " ELSE ";
        dumpList(out, s.elseBody);
      }
      out += " END";
      break;
    case StmtKind::Result:
      out += "RESULT ";
      dumpExpr(out, *s.value);
      break;
    case StmtKind::Sequential:
      out += "SEQUENTIAL ";
      dumpList(out, s.body);
      out += " END";
      break;
    case StmtKind::Parallel:
      out += "PARALLEL ";
      dumpList(out, s.body);
      out += " END";
      break;
    case StmtKind::With:
      out += "WITH ";
      dumpExpr(out, *s.withSignal);
      out += " DO ";
      dumpList(out, s.body);
      out += " END";
      break;
    case StmtKind::Empty:
      break;
  }
}

void dumpList(std::string& out, const std::vector<StmtPtr>& body) {
  for (size_t i = 0; i < body.size(); ++i) {
    if (i) out += "; ";
    dumpStmt(out, *body[i]);
  }
}

void dumpLayout(std::string& out, const LayoutStmt& s) {
  switch (s.kind) {
    case LayoutStmtKind::Ref:
      if (!s.orientation.empty()) {
        out += s.orientation;
        out += ' ';
      }
      dumpExpr(out, *s.signal);
      break;
    case LayoutStmtKind::Replacement:
      if (!s.orientation.empty()) {
        out += s.orientation;
        out += ' ';
      }
      dumpExpr(out, *s.signal);
      out += " = ";
      dumpType(out, *s.replacementType);
      break;
    case LayoutStmtKind::Order:
      out += "ORDER ";
      out += s.direction;
      out += ' ';
      dumpLayoutList(out, s.body);
      out += " END";
      break;
    case LayoutStmtKind::Boundary:
      switch (s.side) {
        case BoundarySide::Top: out += "TOP "; break;
        case BoundarySide::Right: out += "RIGHT "; break;
        case BoundarySide::Bottom: out += "BOTTOM "; break;
        case BoundarySide::Left: out += "LEFT "; break;
      }
      dumpLayoutList(out, s.body);
      break;
    case LayoutStmtKind::For:
      out += "FOR ";
      out += s.loopVar;
      out += " := ";
      dumpExpr(out, *s.from);
      out += s.downto ? " DOWNTO " : " TO ";
      dumpExpr(out, *s.to);
      out += " DO ";
      dumpLayoutList(out, s.body);
      out += " END";
      break;
    case LayoutStmtKind::When:
      for (size_t i = 0; i < s.whenArms.size(); ++i) {
        out += i == 0 ? "WHEN " : " OTHERWISEWHEN ";
        dumpExpr(out, *s.whenArms[i].cond);
        out += " THEN ";
        dumpLayoutList(out, s.whenArms[i].body);
      }
      if (!s.otherwiseBody.empty()) {
        out += " OTHERWISE ";
        dumpLayoutList(out, s.otherwiseBody);
      }
      out += " END";
      break;
    case LayoutStmtKind::With:
      out += "WITH ";
      dumpExpr(out, *s.withSignal);
      out += " DO ";
      dumpLayoutList(out, s.body);
      out += " END";
      break;
  }
}

void dumpLayoutList(std::string& out, const std::vector<LayoutStmtPtr>& body) {
  for (size_t i = 0; i < body.size(); ++i) {
    if (i) out += "; ";
    dumpLayout(out, *body[i]);
  }
}

}  // namespace

std::string dump(const Expr& e) {
  std::string out;
  dumpExpr(out, e);
  return out;
}

std::string dump(const TypeExpr& t) {
  std::string out;
  dumpType(out, t);
  return out;
}

std::string dump(const Stmt& s) {
  std::string out;
  dumpStmt(out, s);
  return out;
}

std::string dump(const LayoutStmt& s) {
  std::string out;
  dumpLayout(out, s);
  return out;
}

std::string dump(const Decl& d) {
  std::string out;
  switch (d.kind) {
    case DeclKind::Const:
      out += "CONST ";
      out += d.name;
      out += " = ";
      out += dump(*d.constValue);
      out += "; ";
      break;
    case DeclKind::Type:
      out += "TYPE ";
      out += d.name;
      if (!d.typeFormals.empty()) {
        out += '(';
        for (size_t i = 0; i < d.typeFormals.size(); ++i) {
          if (i) out += ',';
          out += d.typeFormals[i];
        }
        out += ')';
      }
      out += " = ";
      out += dump(*d.type);
      out += "; ";
      break;
    case DeclKind::Signal:
      out += "SIGNAL ";
      for (size_t i = 0; i < d.names.size(); ++i) {
        if (i) out += ',';
        out += d.names[i];
      }
      out += ':';
      out += dump(*d.type);
      out += "; ";
      break;
  }
  return out;
}

std::string dump(const Program& p) {
  std::string out;
  for (const DeclPtr& d : p.decls) out += dump(*d);
  return out;
}

}  // namespace zeus::ast

#include "src/ast/ast.h"

namespace zeus::ast {

ExprPtr makeNumber(int64_t value, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::Number, loc);
  e->number = value;
  return e;
}

ExprPtr makeNameRef(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>(ExprKind::NameRef, loc);
  e->name = std::move(name);
  return e;
}

}  // namespace zeus::ast

// Abstract syntax tree for Zeus (paper §7, main syntax + layout syntax).
//
// Ownership: every node is owned by its parent through std::unique_ptr.
// Nodes carry the SourceLoc of their first token for diagnostics.
//
// Expressions double as constant expressions (Modula-2 style numeric
// expressions, §3.1), signal expressions and signal-constant expressions —
// which of these a node is allowed to be is decided by sema, not by the
// grammar, exactly as in the report.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/support/source.h"

namespace zeus::ast {

struct Expr;
struct Stmt;
struct TypeExpr;
struct LayoutStmt;
struct Decl;

using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;
using TypeExprPtr = std::unique_ptr<TypeExpr>;
using LayoutStmtPtr = std::unique_ptr<LayoutStmt>;
using DeclPtr = std::unique_ptr<Decl>;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  Number,   ///< numeric literal
  NameRef,  ///< identifier: constant, signal, loop variable, CLK, RSET, ...
  Select,   ///< base.field
  Index,    ///< base[e], base[lo..hi], base[NUM(sig)]
  Tuple,    ///< (e1, e2, ...): signal constants and grouped actuals
  Call,     ///< ident[typeArgs](args): function component / const function
  Star,     ///< "*" — the empty signal, optionally "*:" width
  Unary,    ///< +e, -e, NOT e (constant expressions)
  Binary,   ///< constant expression operators and relations
};

enum class UnOp { Plus, Minus, Not };
enum class BinOp { Add, Sub, Mul, Div, Mod, And, Or,
                   Eq, Ne, Lt, Le, Gt, Ge };

struct Expr {
  ExprKind kind;
  SourceLoc loc;

  // Number
  int64_t number = 0;
  // NameRef / Call / Select(field name)
  std::string name;
  // Select / Index / Unary(operand) / Star(width expr may be null)
  ExprPtr base;
  // Index: single index or range [lo..hi]; NUM-index uses numIndex instead
  ExprPtr indexLo;
  ExprPtr indexHi;    ///< non-null only for ranges
  ExprPtr numIndex;   ///< non-null for base[NUM(sig)]
  // Tuple / Call arguments
  std::vector<ExprPtr> elems;
  // Call: bracketed type actual parameters, e.g. plus[n](a,b)
  std::vector<ExprPtr> typeArgs;
  // Unary / Binary
  UnOp unOp = UnOp::Plus;
  BinOp binOp = BinOp::Add;
  ExprPtr lhs;
  ExprPtr rhs;

  explicit Expr(ExprKind k, SourceLoc l) : kind(k), loc(l) {}
};

ExprPtr makeNumber(int64_t value, SourceLoc loc);
ExprPtr makeNameRef(std::string name, SourceLoc loc);

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

enum class TypeExprKind {
  Named,      ///< ident [ (actual params) ] — includes boolean/multiplex/virtual
  Array,      ///< ARRAY [lo..hi] OF elem (multi-dim sugar expands to nesting)
  Component,  ///< COMPONENT (...) [{layout}] [[:result] IS ... END]
};

enum class ParamMode { In, Out, InOut };

/// One formal parameter group: IN a,b: boolean
struct FParam {
  ParamMode mode = ParamMode::InOut;
  std::vector<std::string> names;
  TypeExprPtr type;
  SourceLoc loc;
};

struct TypeExpr {
  TypeExprKind kind;
  SourceLoc loc;

  // Named
  std::string name;
  std::vector<ExprPtr> args;

  // Array
  ExprPtr lo;
  ExprPtr hi;
  TypeExprPtr elem;

  // Component
  std::vector<FParam> params;
  std::vector<LayoutStmtPtr> headerLayout;  ///< layout block after params
  TypeExprPtr resultType;                   ///< non-null for function components
  bool hasBody = false;
  bool hasUses = false;                     ///< USES clause present
  std::vector<std::string> uses;            ///< imported names (may be empty)
  std::vector<DeclPtr> decls;               ///< local declarations
  std::vector<LayoutStmtPtr> bodyLayout;    ///< layout block before BEGIN
  std::vector<StmtPtr> body;

  explicit TypeExpr(TypeExprKind k, SourceLoc l) : kind(k), loc(l) {}
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  Assign,      ///< signal := expr   |   signal == expr (isAlias)
  Connection,  ///< signal (actuals)
  Replication, ///< FOR i := a TO|DOWNTO b DO [SEQUENTIALLY] ... END
  CondGen,     ///< WHEN c THEN ... {OTHERWISEWHEN c THEN ...} [OTHERWISE ...] END
  If,          ///< IF c THEN ... {ELSIF ...} [ELSE ...] END
  Result,      ///< RESULT expr
  Sequential,  ///< SEQUENTIAL ... END
  Parallel,    ///< PARALLEL ... END
  With,        ///< WITH signal DO ... END
  Empty,
};

/// One (condition, body) arm of an If or CondGen statement.
struct StmtArm {
  ExprPtr cond;
  std::vector<StmtPtr> body;
};

struct Stmt {
  StmtKind kind;
  SourceLoc loc;

  // Assign
  ExprPtr lhs;
  ExprPtr rhs;
  bool isAlias = false;

  // Connection
  ExprPtr target;
  ExprPtr actuals;  ///< usually a Tuple

  // Replication
  std::string loopVar;
  ExprPtr from;
  ExprPtr to;
  bool downto = false;
  bool sequentially = false;

  // If / CondGen
  std::vector<StmtArm> arms;
  std::vector<StmtPtr> elseBody;

  // Result
  ExprPtr value;

  // With
  ExprPtr withSignal;

  // Replication / Sequential / Parallel / With bodies
  std::vector<StmtPtr> body;

  explicit Stmt(StmtKind k, SourceLoc l) : kind(k), loc(l) {}
};

// ---------------------------------------------------------------------------
// Layout language (paper §6)
// ---------------------------------------------------------------------------

enum class LayoutStmtKind {
  Ref,          ///< [orientation] signal          — places an instance
  Replacement,  ///< [orientation] signal = type   — replaces a virtual signal
  Order,        ///< ORDER direction ... END
  Boundary,     ///< TOP|RIGHT|BOTTOM|LEFT pinlist — pin side assignment
  For,          ///< FOR i := a TO|DOWNTO b DO ... END
  When,         ///< WHEN ... THEN ... OTHERWISE ... END
  With,         ///< WITH signal DO ... END
};

enum class BoundarySide { Top, Right, Bottom, Left };

struct LayoutStmt {
  LayoutStmtKind kind;
  SourceLoc loc;

  // Ref / Replacement
  std::string orientation;  ///< empty when unchanged
  ExprPtr signal;
  TypeExprPtr replacementType;

  // Order
  std::string direction;

  // Boundary
  BoundarySide side = BoundarySide::Top;

  // For
  std::string loopVar;
  ExprPtr from;
  ExprPtr to;
  bool downto = false;

  // When
  std::vector<StmtArm> arms;  ///< bodies unused; see whenArms
  struct WhenArm {
    ExprPtr cond;
    std::vector<LayoutStmtPtr> body;
  };
  std::vector<WhenArm> whenArms;
  std::vector<LayoutStmtPtr> otherwiseBody;

  // With
  ExprPtr withSignal;

  // Order / For / With bodies
  std::vector<LayoutStmtPtr> body;

  explicit LayoutStmt(LayoutStmtKind k, SourceLoc l) : kind(k), loc(l) {}
};

// ---------------------------------------------------------------------------
// Declarations and the program
// ---------------------------------------------------------------------------

enum class DeclKind { Const, Type, Signal };

struct Decl {
  DeclKind kind;
  SourceLoc loc;

  // Const: name = value
  // Type:  name (formals) = type
  // Signal: names : type
  std::vector<std::string> names;          ///< Signal may declare several
  std::string name;                        ///< Const/Type single name
  std::vector<std::string> typeFormals;    ///< Type formal parameters
  ExprPtr constValue;                      ///< Const
  TypeExprPtr type;                        ///< Type / Signal

  explicit Decl(DeclKind k, SourceLoc l) : kind(k), loc(l) {}
};

/// A Zeus "Hardware" — the whole compilation unit (grammar rule 1).
struct Program {
  std::vector<DeclPtr> decls;
};

}  // namespace zeus::ast

// Compact s-expression style dumper for the Zeus AST.
//
// Used by the parser tests to assert tree shapes without fragile pointer
// walking, and by `zeusc --dump-ast` style debugging.
#pragma once

#include <string>

#include "src/ast/ast.h"

namespace zeus::ast {

std::string dump(const Expr& e);
std::string dump(const TypeExpr& t);
std::string dump(const Stmt& s);
std::string dump(const LayoutStmt& s);
std::string dump(const Decl& d);
std::string dump(const Program& p);

}  // namespace zeus::ast

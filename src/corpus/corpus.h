// The example programs of the paper (Â§3.2, Â§4.2, Â§5, Â§10), canonicalised,
// shipped as a corpus so examples, benchmarks, tests and the zeusc CLI all
// exercise the same sources.
//
// The 1983 report's listings contain OCR-era and author-era slips; the
// versions here fix them minimally.  Every deviation is listed in
// DESIGN.md / EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace zeus::corpus {


// --- §3.2 / §10: half adder, full adder, ripple-carry adder -----------

inline const char* kAdders = R"(
TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
BEGIN
  s := XOR(a,b);
  cout := AND(a,b)
END;

fulladder = COMPONENT (IN a,b,cin: boolean; OUT cout,s: boolean) IS
  SIGNAL h1,h2: halfadder;
BEGIN
  h1(a,b,*,h2.a);
  h2(h1.s,cin,*,s);
  cout := OR(h1.cout,h2.cout)
END;

rippleCarry(length) = COMPONENT (
    IN a,b: ARRAY[1..length] OF boolean; IN cin: boolean;
    OUT cout: boolean; OUT s: ARRAY[1..length] OF boolean) IS
  SIGNAL add: ARRAY[1..length] OF fulladder;
  { ORDER lefttoright FOR i := 1 TO length DO add[i] END END }
BEGIN
  SEQUENTIAL
    add[1](a[1],b[1],cin,add[2].cin,s[1]);
    FOR i := 2 TO length-1 DO SEQUENTIALLY
      add[i](a[i],b[i],add[i-1].cout,add[i+1].cin,s[i]);
    END;
    add[length](a[length],b[length],*,cout,s[length]);
  END
END;
)";

inline const char* kAdder8 = R"(
SIGNAL adder: rippleCarry(8);
)";

// --- §3.2: the mux4 function component --------------------------------

inline const char* kMux4 = R"(
TYPE bo(n) = ARRAY[1..n] OF boolean;
mux4 = COMPONENT ( IN d: bo(4); IN a: bo(2); IN g: boolean ) : boolean IS
  CONST bit2 = ( (0,0),(0,1),(1,0),(1,1) );
  SIGNAL h: multiplex;
BEGIN
  FOR i := 1 TO 4 DO
    IF EQUAL(a,bit2[i]) THEN h := d[i] END
  END;
  RESULT AND(NOT g,h)
END;

muxtop = COMPONENT (IN d: bo(4); IN a: bo(2); IN g: boolean;
                    OUT y: boolean) IS
BEGIN
  y := mux4(d,a,g)
END;

SIGNAL m: muxtop;
)";

// --- §10: blackjack finite state machine -------------------------------

inline const char* kBlackjack = R"(
TYPE bo5 = ARRAY [1..5] OF boolean;
blackjack = COMPONENT (IN ycard: boolean; IN value: bo5;
                       OUT hit, broke, stand: boolean) IS
  CONST start = (0,0,0); read = (0,0,1); sum = (0,1,0);
        firstace = (0,1,1); test = (1,0,0); end1 = (1,0,1);
        zero5 = (0,0,0,0,0);
        ten = BIN(10,5);
  TYPE reg(n) = ARRAY [1..n] OF REG;
  SIGNAL score, card: reg(5);
         ace: REG;
         state: reg(3);
         scorelt22, scorege17: boolean;
BEGIN
  scorelt22 := lt(score.out, BIN(22,5));
  scorege17 := ge(score.out, BIN(17,5));
  IF RSET THEN state.in := start
  ELSE
    IF EQUAL(state.out,start) THEN
      score.in := zero5; ace.in := 0; state.in := read
    END;
    IF EQUAL(state.out,read) THEN
      card.in := value; hit := 1;
      IF ycard THEN state.in := sum END;
    END;
    IF EQUAL(state.out,sum) THEN
      score.in := plus(score.out,card.out);
      state.in := firstace
    END;
    IF EQUAL(state.out,firstace) THEN
      state.in := test;
      IF AND(EQUAL(card.out,BIN(1,5)), NOT ace.out) THEN
        score.in := plus(score.out,ten);
        ace.in := 1;
      END;
    END;
    IF EQUAL(state.out,test) THEN
      IF NOT scorege17 THEN state.in := read
      ELSIF scorelt22 THEN state.in := end1
      ELSIF ace.out THEN
        score.in := minus(score.out,ten);
        ace.in := 0
      ELSE state.in := end1
      END;
    END;
    IF EQUAL(state.out,end1) THEN
      IF scorelt22 THEN stand := 1 ELSE broke := 1 END;
      IF ycard THEN state.in := start ELSE state.in := end1 END;
    END;
  END
END;

SIGNAL bj: blackjack;
)";

// --- §10: binary trees ---------------------------------------------------

inline const char* kTreeIterative = R"(
TYPE q = COMPONENT (IN in: boolean; OUT out1,out2: boolean) IS
BEGIN
  out1 := in; out2 := in
END;

tree(n) = COMPONENT (IN in: boolean; OUT leaf: ARRAY[1..n] OF boolean) IS
  SIGNAL h: ARRAY[1..n-1] OF q;
BEGIN
  h[1].in := in;
  FOR i := 1 TO n DIV 2 - 1 DO
    h[i](*, h[2*i].in, h[2*i+1].in);
  END;
  FOR i := 1 TO n DIV 2 DO
    h[i + n DIV 2 - 1](*, leaf[2*i-1], leaf[2*i]);
  END;
END;
)";

inline const char* kTreeRecursive = R"(
TYPE q = COMPONENT (IN in: boolean; OUT out1,out2: boolean) IS
BEGIN
  out1 := in; out2 := in
END;

tree(n) = COMPONENT (IN in: boolean; OUT leaf: ARRAY[1..n] OF boolean) IS
  SIGNAL left, right: tree(n DIV 2);
         root: q;
  { ORDER toptobottom
      root;
      ORDER lefttoright left; right END;
    END }
BEGIN
  WHEN n > 2 THEN
    root.in := in;
    left.in := root.out1;
    right.in := root.out2;
    FOR i := 1 TO n DIV 2 DO
      leaf[i] := left.leaf[i];
      leaf[n DIV 2 + i] := right.leaf[i]
    END;
  OTHERWISE
    root.in := in;
    leaf[1] := root.out1;
    leaf[2] := root.out2
  END
END;
)";

// --- §10: the H-tree with linear layout area ----------------------------

inline const char* kHtree = R"(
TYPE htree(n) = COMPONENT (IN in: boolean; out: multiplex)
  { BOTTOM in; out } IS
  TYPE leaftype = COMPONENT (IN in: boolean; out: multiplex)
    { BOTTOM in; out } IS
  BEGIN
  END;
  SIGNAL s: ARRAY[1..4] OF htree(n DIV 4);
         leaf: leaftype;
  { ORDER lefttoright
      ORDER toptobottom s[1]; flip90 s[3] END;
      ORDER toptobottom s[2]; flip90 s[4] END;
    END }
BEGIN
  WHEN n > 1 THEN
    FOR i := 1 TO 4 DO
      s[i].in := in;
      out == s[i].out
    END
  OTHERWISE
    leaf.in := in;
    out == leaf.out
  END
END;
)";

// --- §4.2: the HISDL routing network ------------------------------------

inline const char* kRoutingNetwork = R"(
TYPE bit10 = ARRAY[1..10] OF boolean;
channel(n) = ARRAY[0..n] OF bit10;
router = COMPONENT (IN inport0,inport1: bit10;
                    OUT outport0,outport1: bit10) IS
BEGIN
  outport0 := inport0;
  outport1 := inport1
END;

routingnetwork(n) = COMPONENT (IN input: channel(n-1);
                               OUT output: channel(n-1)) IS
  SIGNAL top, bottom: routingnetwork(n DIV 2);
         c: ARRAY[0..n DIV 2 - 1] OF router;
BEGIN
  WHEN n = 2 THEN
    c[0](input[0],input[1],output[0],output[1])
  OTHERWISE
    FOR i := 0 TO n DIV 2 - 1 DO
      c[i](input[2*i],input[2*i+1],top.input[i],bottom.input[i]);
      output[i] := top.output[i];
      output[i + n DIV 2] := bottom.output[i]
    END;
  END;
END;
)";

// --- §5: RAM built from REG with NUM addressing --------------------------

inline const char* kRam = R"(
TYPE word = ARRAY[1..8] OF boolean;
memory(abits) = COMPONENT (IN addr: ARRAY[1..abits] OF boolean;
                           IN din: word; IN write: boolean;
                           OUT dout: word) IS
  CONST words = 2*2*2*2;
  SIGNAL ram: ARRAY[0..words-1] OF ARRAY[1..8] OF REG;
BEGIN
  IF write THEN
    ram[NUM(addr)].in := din
  END;
  dout := ram[NUM(addr)].out;
END;

SIGNAL mem: memory(4);
)";

// --- §10: the systolic pattern matcher -----------------------------------

inline const char* kPatternMatch = R"(
TYPE patternmatch(length) = COMPONENT (
    IN pattern, string, endofpattern, wild, resultin: boolean;
    OUT result, endout, stringout, wildout, patternout: boolean) IS
  TYPE comparator = COMPONENT (IN pin, sin: boolean;
                               OUT pout, dout, sout: boolean) IS
    SIGNAL p, s: REG;
  BEGIN
    p(pin, pout);
    s(sin, sout);
    dout := AND(1, EQUAL(p.out, s.out));
  END;

  accumulator = COMPONENT (IN d, lin, xin, rin: boolean;
                           OUT lout, xout, rout: boolean) IS
    SIGNAL tp, l, x, r: REG;
  BEGIN
    l(lin, lout);
    x(xin, xout);
    r(rin, *);
    IF RSET THEN
      tp.in := 1;
      rout := 0
    ELSIF l.out THEN
      rout := tp.out;
      tp.in := OR(d, x.out)
    ELSE
      rout := r.out;
      tp.in := AND(tp.out, OR(d, x.out))
    END;
  END;

  SIGNAL pe: ARRAY[1..length] OF
      COMPONENT (comp: comparator; acc: accumulator) IS
      BEGIN
        acc.d := comp.dout
      END;
  { ORDER lefttoright
      FOR i := 1 TO length DO
        ORDER toptobottom
          WITH pe[i] DO comp; acc END;
        END;
      END
    END }
BEGIN
  SEQUENTIAL
    WITH pe[1] DO
      comp.pin := pattern;
      acc.lin := endofpattern;
      acc.xin := wild;
      result := acc.rout;
      stringout := comp.sout;
    END;
    WITH pe[length] DO
      patternout := comp.pout;
      comp.sin := string;
      wildout := acc.xout;
      acc.rin := resultin;
      endout := acc.lout;
    END;
  END;
  FOR i := 2 TO length-1 DO
    WITH pe[i] DO
      comp(pe[i-1].comp.pout, pe[i+1].comp.sout,
           pe[i+1].comp.pin, *, pe[i-1].comp.sin);
      acc(*, pe[i-1].acc.lout, pe[i-1].acc.xout, pe[i+1].acc.rout,
          pe[i+1].acc.lin, pe[i+1].acc.xin, pe[i-1].acc.rin);
    END
  END
END;

SIGNAL match: patternmatch(3);
)";

// --- §6.4: the chessboard (virtual replacement) ---------------------------

inline const char* kChessboard = R"(
TYPE black = COMPONENT (IN top1, left1: boolean;
                        OUT bottom1, right1: boolean) IS
BEGIN
  bottom1 := top1; right1 := left1
END;
white = COMPONENT (IN top1, left1: boolean;
                   OUT bottom1, right1: boolean) IS
BEGIN
  bottom1 := left1; right1 := top1
END;

chessboard(n) = COMPONENT (IN tin: ARRAY[1..n] OF boolean;
                           IN lin: ARRAY[1..n] OF boolean;
                           OUT bout: ARRAY[1..n] OF boolean;
                           OUT rout: ARRAY[1..n] OF boolean) IS
  SIGNAL m: ARRAY[1..n,1..n] OF virtual;
  { ORDER toptobottom
      FOR i := 1 TO n DO
        ORDER lefttoright
          FOR j := 1 TO n DO
            WHEN odd(i+j) THEN m[i,j] = black
            OTHERWISE m[i,j] = white
            END;
          END;
        END;
      END;
    END }
BEGIN
  FOR i := 1 TO n DO
    FOR j := 1 TO n DO
      WHEN (i=1) AND (j=1) THEN m[i,j](tin[1], lin[1], *, *)
      OTHERWISEWHEN i=1 THEN m[i,j](tin[j], m[i,j-1].right1, *, *)
      OTHERWISEWHEN j=1 THEN m[i,j](m[i-1,j].bottom1, lin[i], *, *)
      OTHERWISE m[i,j](m[i-1,j].bottom1, m[i,j-1].right1, *, *)
      END;
    END;
  END;
  FOR j := 1 TO n DO bout[j] := m[n,j].bottom1 END;
  FOR i := 1 TO n DO rout[i] := m[i,n].right1 END;
END;

SIGNAL board: chessboard(4);
)";


}  // namespace zeus::corpus

#include "src/corpus/corpus_extra.h"

namespace zeus::corpus {

/// One entry of the built-in program corpus.
struct CorpusEntry {
  const char* name;         ///< short handle, e.g. "blackjack"
  const char* description;  ///< one line, with the paper section
  const char* source;       ///< Zeus source text (may need a SIGNAL line)
  const char* top;          ///< top-level SIGNAL name, or "" if the source
                            ///< needs an instantiation appended first
};

/// All built-in programs.
const std::vector<CorpusEntry>& all();

/// Looks up an entry by name; nullptr if unknown.
const CorpusEntry* find(const std::string& name);

/// Directly elaboratable form of an entry: `source` receives the program
/// text (with a default instantiation line appended for the parameterized
/// families) and `top` the SIGNAL to elaborate — the same defaults the
/// zeusc --example path uses.  Returns false for unknown names.
bool instantiate(const std::string& name, std::string& source,
                 std::string& top);

}  // namespace zeus::corpus

#include "src/corpus/corpus.h"

namespace zeus::corpus {

const std::vector<CorpusEntry>& all() {
  static const std::vector<CorpusEntry> kEntries = {
      {"adders",
       "half/full/ripple-carry adders (paper Fig. 3.2.2, §10 'Adders')",
       kAdders, ""},
      {"mux4", "the mux4 function component (paper §3.2)", kMux4, "m"},
      {"blackjack", "the blackjack finite state machine (paper §10)",
       kBlackjack, "bj"},
      {"tree-iterative", "iterative binary broadcast tree (paper §10)",
       kTreeIterative, ""},
      {"tree-recursive",
       "recursive binary broadcast tree with layout (paper §10)",
       kTreeRecursive, ""},
      {"htree", "the H-tree with linear layout area (paper §10)", kHtree,
       ""},
      {"routing",
       "the recursive routing network translated from HISDL (paper §4.2)",
       kRoutingNetwork, ""},
      {"ram", "a 16x8 RAM built from REG with NUM addressing (paper §5)",
       kRam, "mem"},
      {"patternmatch",
       "the systolic pattern matcher (paper §10 'Pattern Matching')",
       kPatternMatch, "match"},
      {"am2901",
       "the AM2901 4-bit bit-slice ALU/register file (paper abstract)",
       kAm2901, "alu"},
      {"systolic-stack",
       "a systolic stack after Guibas/Liang (paper abstract)",
       kSystolicStack, ""},
      {"dictionary",
       "a pipelined dictionary tree machine after Ottmann et al. (§9)",
       kDictionary, ""},
      {"snake",
       "serpentine shift chain with alternating layout directions (§6.3 "
       "Fig. Snake)",
       kSnake, ""},
      {"sorter",
       "odd-even transposition sorting networks, combinational and "
       "systolic (§9 invites describing the cited sorting circuits)",
       kSorter, ""},
      {"matvec",
       "GF(2) matrix-vector array and bit-serial dot product (systolic "
       "citations of §1/§9)",
       kMatVec, ""},
      {"chessboard",
       "the chessboard of virtual signals replaced by black/white cells "
       "(paper §6.4)",
       kChessboard, "board"},
  };
  return kEntries;
}

const CorpusEntry* find(const std::string& name) {
  for (const CorpusEntry& e : all()) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

bool instantiate(const std::string& name, std::string& source,
                 std::string& top) {
  const CorpusEntry* e = find(name);
  if (!e) return false;
  source = e->source;
  top = e->top;
  if (!top.empty()) return true;
  // Parameterized families need an instantiation; these are the defaults
  // the zeusc --example path has always used.
  if (name == "adders") {
    source += "SIGNAL adder: rippleCarry(8);\n";
    top = "adder";
  } else if (name.rfind("tree", 0) == 0) {
    source += "SIGNAL a: tree(8);\n";
    top = "a";
  } else if (name == "htree") {
    source += "SIGNAL a: htree(64);\n";
    top = "a";
  } else if (name == "routing") {
    source += "SIGNAL net: routingnetwork(8);\n";
    top = "net";
  } else if (name == "systolic-stack") {
    source += "SIGNAL st: systolicstack(8);\n";
    top = "st";
  } else if (name == "dictionary") {
    source += "SIGNAL dict: dicttree(8);\n";
    top = "dict";
  } else if (name == "snake") {
    source += "SIGNAL s: snake(4,6);\n";
    top = "s";
  } else if (name == "sorter") {
    source += "SIGNAL s: sorter(8);\n";
    top = "s";
  } else if (name == "matvec") {
    source += "SIGNAL m: matvec(4);\n";
    top = "m";
  } else {
    return false;
  }
  return true;
}

}  // namespace zeus::corpus

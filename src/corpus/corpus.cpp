#include "src/corpus/corpus.h"

namespace zeus::corpus {

const std::vector<CorpusEntry>& all() {
  static const std::vector<CorpusEntry> kEntries = {
      {"adders",
       "half/full/ripple-carry adders (paper Fig. 3.2.2, §10 'Adders')",
       kAdders, ""},
      {"mux4", "the mux4 function component (paper §3.2)", kMux4, "m"},
      {"blackjack", "the blackjack finite state machine (paper §10)",
       kBlackjack, "bj"},
      {"tree-iterative", "iterative binary broadcast tree (paper §10)",
       kTreeIterative, ""},
      {"tree-recursive",
       "recursive binary broadcast tree with layout (paper §10)",
       kTreeRecursive, ""},
      {"htree", "the H-tree with linear layout area (paper §10)", kHtree,
       ""},
      {"routing",
       "the recursive routing network translated from HISDL (paper §4.2)",
       kRoutingNetwork, ""},
      {"ram", "a 16x8 RAM built from REG with NUM addressing (paper §5)",
       kRam, "mem"},
      {"patternmatch",
       "the systolic pattern matcher (paper §10 'Pattern Matching')",
       kPatternMatch, "match"},
      {"am2901",
       "the AM2901 4-bit bit-slice ALU/register file (paper abstract)",
       kAm2901, "alu"},
      {"systolic-stack",
       "a systolic stack after Guibas/Liang (paper abstract)",
       kSystolicStack, ""},
      {"dictionary",
       "a pipelined dictionary tree machine after Ottmann et al. (§9)",
       kDictionary, ""},
      {"snake",
       "serpentine shift chain with alternating layout directions (§6.3 "
       "Fig. Snake)",
       kSnake, ""},
      {"sorter",
       "odd-even transposition sorting networks, combinational and "
       "systolic (§9 invites describing the cited sorting circuits)",
       kSorter, ""},
      {"matvec",
       "GF(2) matrix-vector array and bit-serial dot product (systolic "
       "citations of §1/§9)",
       kMatVec, ""},
      {"chessboard",
       "the chessboard of virtual signals replaced by black/white cells "
       "(paper §6.4)",
       kChessboard, "board"},
  };
  return kEntries;
}

const CorpusEntry* find(const std::string& name) {
  for (const CorpusEntry& e : all()) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

}  // namespace zeus::corpus

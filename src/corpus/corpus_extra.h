// The remaining circuits the paper's abstract says Zeus was tested on:
// the AM2901 bit-slice processor, a systolic stack (Guibas/Liang 1982,
// cited in §10's references) and a dictionary machine (Ottmann/Rosenberg/
// Stockmeyer 1982).  The paper prints no listings for these; the versions
// here are written in Zeus from the cited papers' architectures and
// exercise the language harder than the printed examples (9-bit decoded
// instructions, pure-Zeus ripple ALU with flags, bidirectional systolic
// data movement, a pipelined tree of processors).
#pragma once

namespace zeus::corpus {

// --- AM2901: the 4-bit bit-slice ALU/register file ----------------------
//
// Faithful to the Am2901 datapath at the architectural level:
//  * 16 x 4 two-port register file (REG array, NUM addressing),
//  * Q register,
//  * R/S source operand selector (8 codes: AQ AB ZQ ZB ZA DA DQ DZ),
//  * 8 ALU functions (ADD, SUBR, SUBS, OR, AND, NOTRS, EXOR, EXNOR)
//    built from an explicit ripple carry chain in Zeus (carry-in,
//    carry-out, F3 sign and F=0 flags),
//  * destination decode (QREG NOP RAMA RAMF RAMQD RAMD RAMQU RAMU) with
//    up/down shift paths and shift-in pins.
//
// The instruction i[1..9] is (LSB-first): i[1..3] = source, i[4..6] =
// function, i[7..9] = destination.
inline const char* kAm2901 = R"(
TYPE nib = ARRAY[1..4] OF boolean;

am2901 = COMPONENT (
    IN i: ARRAY[1..9] OF boolean;
    IN aaddr, baddr: ARRAY[1..4] OF boolean;
    IN d: nib;
    IN cin: boolean;
    IN ram0in, ram3in, q0in, q3in: boolean;
    OUT y: nib;
    OUT cout, f3, fzero: boolean) IS
  CONST srcAQ = (0,0,0); srcAB = (1,0,0); srcZQ = (0,1,0); srcZB = (1,1,0);
        srcZA = (0,0,1); srcDA = (1,0,1); srcDQ = (0,1,1); srcDZ = (1,1,1);
        fADD = (0,0,0); fSUBR = (1,0,0); fSUBS = (0,1,0); fOR = (1,1,0);
        fAND = (0,0,1); fNOTRS = (1,0,1); fEXOR = (0,1,1); fEXNOR = (1,1,1);
        dQREG = (0,0,0); dNOP = (1,0,0); dRAMA = (0,1,0); dRAMF = (1,1,0);
        dRAMQD = (0,0,1); dRAMD = (1,0,1); dRAMQU = (0,1,1); dRAMU = (1,1,1);
        zero4 = (0,0,0,0);
  SIGNAL ram: ARRAY[0..15] OF ARRAY[1..4] OF REG;
         q: ARRAY[1..4] OF REG;
         src, func, dest: ARRAY[1..3] OF boolean;
         adata, bdata: nib;
         r, s: ARRAY[1..4] OF multiplex;
         rsel, ssel: nib;
         radd: nib;
         carry: ARRAY[1..5] OF boolean;
         sum: nib;
         f: ARRAY[1..4] OF multiplex;
         fb: nib;
         subR, subS, arith: boolean;
BEGIN
  src := i[1..3];
  func := i[4..6];
  dest := i[7..9];

  adata := ram[NUM(aaddr)].out;
  bdata := ram[NUM(baddr)].out;

  <* R operand: A, D or 0 *>
  IF OR(EQUAL(src,srcAQ), EQUAL(src,srcAB)) THEN r := adata END;
  IF OR(EQUAL(src,srcDA), OR(EQUAL(src,srcDQ), EQUAL(src,srcDZ))) THEN
    r := d
  END;
  IF OR(EQUAL(src,srcZQ), OR(EQUAL(src,srcZB), EQUAL(src,srcZA))) THEN
    r := zero4
  END;
  rsel := r;

  <* S operand: Q, B, A or 0 *>
  IF OR(EQUAL(src,srcAQ), OR(EQUAL(src,srcZQ), EQUAL(src,srcDQ))) THEN
    s := q.out
  END;
  IF OR(EQUAL(src,srcAB), EQUAL(src,srcZB)) THEN s := bdata END;
  IF OR(EQUAL(src,srcZA), EQUAL(src,srcDA)) THEN s := adata END;
  IF EQUAL(src,srcDZ) THEN s := zero4 END;
  ssel := s;

  <* The ripple ALU: ADD rsel+ssel, SUBR ssel-rsel, SUBS rsel-ssel. *>
  subR := EQUAL(func,fSUBR);  <* invert R, i.e. ssel + NOT rsel + 1 *>
  subS := EQUAL(func,fSUBS);  <* invert S *>
  arith := OR(EQUAL(func,fADD), OR(subR, subS));
  radd := XOR(rsel, (subR,subR,subR,subR));
  carry[1] := OR(cin, OR(subR, subS));
  FOR k := 1 TO 4 DO
    sum[k] := XOR(radd[k], XOR(XOR(ssel[k], subS), carry[k]));
    carry[k+1] := OR(AND(radd[k], XOR(ssel[k], subS)),
                     AND(carry[k], XOR(radd[k], XOR(ssel[k], subS))));
  END;

  IF arith THEN f := sum END;
  IF EQUAL(func,fOR) THEN f := OR(rsel, ssel) END;
  IF EQUAL(func,fAND) THEN f := AND(rsel, ssel) END;
  IF EQUAL(func,fNOTRS) THEN f := AND(NOT rsel, ssel) END;
  IF EQUAL(func,fEXOR) THEN f := XOR(rsel, ssel) END;
  IF EQUAL(func,fEXNOR) THEN f := NOT XOR(rsel, ssel) END;
  fb := f;

  cout := AND(arith, carry[5]);
  f3 := fb[4];
  fzero := EQUAL(fb, zero4);

  <* Destination decode. *>
  <* Y output: A data for RAMA, else F. *>
  IF EQUAL(dest,dRAMA) THEN y := adata END;
  IF NOT EQUAL(dest,dRAMA) THEN y := fb END;

  <* Register file write back: F, F>>1 or F<<1 into B. *>
  IF OR(EQUAL(dest,dRAMA), OR(EQUAL(dest,dRAMF),
        OR(EQUAL(dest,dRAMQD), OR(EQUAL(dest,dRAMD),
        OR(EQUAL(dest,dRAMQU), EQUAL(dest,dRAMU)))))) THEN
    IF OR(EQUAL(dest,dRAMQD), EQUAL(dest,dRAMD)) THEN
      ram[NUM(baddr)].in := (fb[2], fb[3], fb[4], ram3in)   <* shift down *>
    ELSIF OR(EQUAL(dest,dRAMQU), EQUAL(dest,dRAMU)) THEN
      ram[NUM(baddr)].in := (ram0in, fb[1], fb[2], fb[3])   <* shift up *>
    ELSE
      ram[NUM(baddr)].in := fb
    END;
  END;

  <* Q register: load F, shift down, shift up. *>
  IF EQUAL(dest,dQREG) THEN q.in := fb END;
  IF EQUAL(dest,dRAMQD) THEN q.in := (q[2].out, q[3].out, q[4].out, q3in) END;
  IF EQUAL(dest,dRAMQU) THEN q.in := (q0in, q[1].out, q[2].out, q[3].out) END;
END;

SIGNAL alu: am2901;
)";

// --- Systolic stack (Guibas/Liang, cited by the paper) -------------------
//
// A linear array of cells; every cell talks only to its neighbours.  One
// command per cycle: push (with a data word) or pop.  On push every
// occupied cell hands its value rightward; on pop every cell hands
// leftward.  Cell 1 is the top of stack.  Overflowing values fall off the
// right end; popping an empty stack yields valid=0.
inline const char* kSystolicStack = R"(
TYPE word = ARRAY[1..4] OF boolean;

stackcell = COMPONENT (IN push, pop: boolean;
                       IN fromleft: word; IN leftocc: boolean;
                       IN fromright: word; IN rightocc: boolean;
                       OUT data: word; OUT occ: boolean) IS
  SIGNAL v: ARRAY[1..4] OF REG;
         o: REG;
BEGIN
  IF RSET THEN o.in := 0
  ELSIF push THEN
    <* take the neighbour's (or input) value if it was occupied *>
    v.in := fromleft;
    o.in := leftocc
  ELSIF pop THEN
    v.in := fromright;
    o.in := rightocc
  END;
  data := v.out;
  occ := o.out;
END;

systolicstack(n) = COMPONENT (IN push, pop: boolean; IN din: word;
                              OUT top: word; OUT valid: boolean;
                              OUT overflow: boolean) IS
  SIGNAL cell: ARRAY[1..n] OF stackcell;
  { ORDER lefttoright FOR k := 1 TO n DO cell[k] END END }
BEGIN
  cell[1](push, pop, din, push, cell[2].data, cell[2].occ, *, *);
  FOR k := 2 TO n-1 DO
    cell[k](push, pop, cell[k-1].data, cell[k-1].occ,
            cell[k+1].data, cell[k+1].occ, *, *);
  END;
  cell[n](push, pop, cell[n-1].data, cell[n-1].occ,
          (0,0,0,0), 0, *, *);
  top := cell[1].data;
  valid := cell[1].occ;
  overflow := AND(push, cell[n].occ);
END;
)";

// --- Dictionary machine (Ottmann/Rosenberg/Stockmeyer, cited in §9) ------
//
// A pipelined complete binary tree of processors holding one key per
// leaf-slot; INSERT and MEMBER instructions stream down from the root,
// one per cycle, and MEMBER answers stream back up.  This miniature
// version keeps one key per node and broadcasts queries — the tree-
// routing skeleton of the cited machine, sized by the type parameter.
inline const char* kDictionary = R"(
TYPE key = ARRAY[1..4] OF boolean;

dictnode = COMPONENT (IN ins, query: boolean; IN k: key;
                      IN leftfound, rightfound: boolean;
                      IN leftfull, rightfull: boolean;
                      OUT found, full: boolean;
                      OUT passins: boolean) IS
  SIGNAL stored: ARRAY[1..4] OF REG;
         occ: REG;
         takehere: boolean;
BEGIN
  <* Insert into this node if it is free; otherwise pass down. *>
  takehere := AND(ins, NOT occ.out);
  IF RSET THEN occ.in := 0
  ELSIF takehere THEN
    stored.in := k;
    occ.in := 1
  END;
  passins := AND(ins, occ.out);
  found := OR(AND(query, AND(occ.out, EQUAL(stored.out, k))),
              OR(leftfound, rightfound));
  full := AND(occ.out, AND(leftfull, rightfull));
END;

dicttree(n) = COMPONENT (IN ins, query: boolean; IN k: key;
                         OUT found, full: boolean) IS
  SIGNAL root: dictnode;
         left, right: dicttree(n DIV 2);
  { ORDER toptobottom root; ORDER lefttoright left; right END; END }
BEGIN
  WHEN n > 1 THEN
    <* Route passed-down inserts by the current low key bit and hand the
       children the rotated key, so every level routes by its own bit. *>
    left(AND(root.passins, NOT k[1]), query,
         (k[2], k[3], k[4], k[1]), *, *);
    right(AND(root.passins, k[1]), query,
          (k[2], k[3], k[4], k[1]), *, *);
    root(ins, query, k, left.found, right.found, left.full, right.full,
         found, full, *)
  OTHERWISE
    root(ins, query, k, 0, 0, 1, 1, found, full, *)
  END
END;
)";

// --- Snake (§6.3 "Fig. Snake", truncated in the surviving text) ----------
//
// A serpentine chain: cells wired head-to-tail, laid out row by row with
// alternating directions of separation — the natural reading of the
// figure's name, exercising layout FOR/WHEN and righttoleft.
inline const char* kSnake = R"(
TYPE cell = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL r: REG;
BEGIN
  r.in := a;
  b := r.out
END;

snake(rows, cols) = COMPONENT (IN head: boolean; OUT tail: boolean) IS
  SIGNAL c: ARRAY[1..rows, 1..cols] OF cell;
  { ORDER toptobottom
      FOR i := 1 TO rows DO
        WHEN odd(i) THEN
          ORDER lefttoright FOR j := 1 TO cols DO c[i,j] END END
        OTHERWISE
          ORDER righttoleft FOR j := 1 TO cols DO c[i,j] END END
        END;
      END;
    END }
BEGIN
  c[1,1].a := head;
  FOR i := 1 TO rows DO
    FOR j := 2 TO cols DO
      c[i,j].a := c[i,j-1].b
    END;
    WHEN i > 1 THEN
      c[i,1].a := c[i-1,cols].b
    END;
  END;
  tail := c[rows,cols].b
END;
)";

// --- Sorting network (§9 invites describing [Thompson(1981)] circuits) ---
//
// Odd-even transposition sort over n w-bit words: n columns of
// compare-exchange cells.  Two variants share the cell:
//  * `sorter` — a purely combinational network (n transposition stages),
//  * `systolicsorter` — one stage per clock with a register plane between
//    stages, the systolic pipeline of the cited VLSI sorting literature.
inline const char* kSorter = R"(
TYPE word = ARRAY[1..4] OF boolean;

cmpex = COMPONENT (IN a, b: word; OUT lo, hi: word) IS
  SIGNAL swap: boolean;
         m: word;
BEGIN
  <* Gate-level multiplexer: stays collision-free while undefined values
     flush through the systolic pipeline after power-up. *>
  swap := lt(b, a);
  m := (swap, swap, swap, swap);
  lo := OR(AND(m, b), AND(NOT m, a));
  hi := OR(AND(m, a), AND(NOT m, b))
END;

sorter(n) = COMPONENT (IN din: ARRAY[1..n] OF word;
                       OUT dout: ARRAY[1..n] OF word) IS
  SIGNAL stage: ARRAY[1..n, 1..n] OF word;
         c: ARRAY[1..n, 1..n DIV 2] OF cmpex;
BEGIN
  stage[1] := din;
  FOR s := 1 TO n-1 DO
    WHEN odd(s) THEN
      <* odd stage: compare (1,2), (3,4), ... *>
      FOR k := 1 TO n DIV 2 DO
        c[s,k](stage[s][2*k-1], stage[s][2*k],
               stage[s+1][2*k-1], stage[s+1][2*k]);
      END;
    OTHERWISE
      <* even stage: compare (2,3), (4,5), ...; ends pass through *>
      stage[s+1][1] := stage[s][1];
      FOR k := 1 TO (n-1) DIV 2 DO
        c[s,k](stage[s][2*k], stage[s][2*k+1],
               stage[s+1][2*k], stage[s+1][2*k+1]);
      END;
      WHEN n MOD 2 = 0 THEN
        stage[s+1][n] := stage[s][n];
      END;
    END;
  END;
  <* A transposition sort needs n stages; run the last one too.
     n is assumed even, so stage n is an even stage. *>
  dout[1] := stage[n][1];
  FOR k := 1 TO (n-1) DIV 2 DO
    c[n,k](stage[n][2*k], stage[n][2*k+1], dout[2*k], dout[2*k+1]);
  END;
  dout[n] := stage[n][n];
END;

systolicsorter(n) = COMPONENT (IN din: ARRAY[1..n] OF word;
                               OUT dout: ARRAY[1..n] OF word) IS
  SIGNAL plane: ARRAY[1..n, 1..n, 1..4] OF REG;
         c: ARRAY[1..n, 1..n DIV 2] OF cmpex;
BEGIN
  FOR s := 1 TO n DO
    WHEN odd(s) THEN
      FOR k := 1 TO n DIV 2 DO
        WHEN s = 1 THEN
          c[s,k](din[2*k-1], din[2*k],
                 plane[s][2*k-1].in, plane[s][2*k].in);
        OTHERWISE
          c[s,k](plane[s-1][2*k-1].out, plane[s-1][2*k].out,
                 plane[s][2*k-1].in, plane[s][2*k].in);
        END;
      END;
    OTHERWISE
      plane[s][1].in := plane[s-1][1].out;
      FOR k := 1 TO (n-1) DIV 2 DO
        c[s,k](plane[s-1][2*k].out, plane[s-1][2*k+1].out,
               plane[s][2*k].in, plane[s][2*k+1].in);
      END;
      plane[s][n].in := plane[s-1][n].out;
    END;
  END;
  FOR i := 1 TO n DO dout[i] := plane[n][i].out END;
END;
)";

// --- Systolic GF(2) matrix-vector product (§1 cites Leiserson/Saxe and
//     the systolic design methodology; §9 invites the cellular-array
//     papers) --------------------------------------------------------------
//
// y = A·x over GF(2): cell (i,j) computes y := y XOR (a AND x).  The
// systolic version pipelines one row per cycle: x words stream down, the
// accumulating y word moves with them, one result per cycle after n
// cycles of latency.
inline const char* kMatVec = R"(
TYPE gfcell = COMPONENT (IN a, x, yin: boolean; OUT yout: boolean) IS
BEGIN
  yout := XOR(yin, AND(a, x))
END;

matvec(n) = COMPONENT (IN a: ARRAY[1..n, 1..n] OF boolean;
                       IN x: ARRAY[1..n] OF boolean;
                       OUT y: ARRAY[1..n] OF boolean) IS
  SIGNAL c: ARRAY[1..n, 1..n] OF gfcell;
  { ORDER toptobottom
      FOR i := 1 TO n DO
        ORDER lefttoright FOR j := 1 TO n DO c[i,j] END END;
      END;
    END }
BEGIN
  FOR i := 1 TO n DO
    c[i,1](a[i][1], x[1], 0, *);
    FOR j := 2 TO n DO
      c[i,j](a[i][j], x[j], c[i,j-1].yout, *);
    END;
    y[i] := c[i,n].yout;
  END;
END;

sdot = COMPONENT (IN a, x, clear: boolean; OUT y: boolean) IS
  <* Bit-serial GF(2) dot product: stream (a_j, x_j) pairs one per cycle;
     raising `clear` starts a new sum and latches the finished one for
     reading at y. *>
  SIGNAL acc, done: REG;
BEGIN
  IF clear THEN
    acc.in := AND(a, x);
    done.in := acc.out
  ELSE
    acc.in := XOR(acc.out, AND(a, x))
  END;
  y := done.out;
END;
)";

}  // namespace zeus::corpus

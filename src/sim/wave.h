// Waveform capture: records watched signals every cycle and renders them
// as an ASCII table or a VCD file — used by the examples to show the
// systolic computation sequences the paper illustrates.
#pragma once

#include <string>
#include <vector>

#include "src/sim/simulation.h"

namespace zeus {

class WaveRecorder {
 public:
  explicit WaveRecorder(const Simulation& sim) : sim_(sim) {}

  /// Watches a single-bit port or an internal net by name.  An empty
  /// label defaults to the net's netlist name (or "net<N>").
  void watchPort(const std::string& port, const std::string& label = "");
  void watchNet(NetId net, const std::string& label = "");

  /// Call once per cycle after Simulation::step().
  void sample();

  /// Renders an ASCII table: one row per watched signal, one column per
  /// sampled cycle.
  [[nodiscard]] std::string renderTable() const;

  /// Renders a minimal VCD dump.
  [[nodiscard]] std::string renderVcd(const std::string& module = "zeus")
      const;

  [[nodiscard]] size_t sampleCount() const { return samples_; }

 private:
  struct Track {
    std::string label;
    std::vector<NetId> nets;  ///< one per bit
    std::vector<Logic> history;
  };
  const Simulation& sim_;
  std::vector<Track> tracks_;
  size_t samples_ = 0;
};

}  // namespace zeus

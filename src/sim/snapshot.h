// Versioned binary checkpoints for crash-safe simulation and fault
// campaigns (docs/fault-injection.md).
//
// File layout (little-endian):
//   u32 magic   "ZSNP" (0x504E535A)
//   u32 version (kSnapshotVersion)
//   u8  kind    (SnapshotKind: full sim state or campaign progress)
//   u64 design content hash
//   ... kind-specific payload ...
//
// Loading is defensive: every count is validated against the remaining
// byte budget before any allocation, so truncated, corrupt or adversarial
// files produce a structured error string — never a crash or an OOM.
// That contract is enforced by the fuzz corpus (tools/zeus_fuzz.cpp
// replays the loaders on every input).  Saving is atomic: the bytes land
// in "<path>.tmp" and std::rename() moves them into place, so a crash
// mid-write never leaves a half checkpoint at the target path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/elab/design.h"
#include "src/sim/fault.h"
#include "src/sim/simulation.h"

namespace zeus {

inline constexpr uint32_t kSnapshotMagic = 0x504E535Au;  // "ZSNP"
inline constexpr uint32_t kSnapshotVersion = 1;

enum class SnapshotKind : uint8_t {
  SimState = 0,          ///< full Simulation / per-lane BatchSimulation state
  CampaignProgress = 1,  ///< fault-campaign sweep position + outcomes
  FarmState = 2,         ///< multi-threaded SimFarm state (all lanes)
};

/// Complete SimFarm state at a cycle boundary (src/core/sim_farm.h):
/// the farm configuration plus one full SimSnapshot and one running
/// output checksum per global lane.  A farm resumed from this snapshot
/// is bit-identical to one that never stopped — for ANY worker-thread
/// count, because per-lane stimulus and RANDOM streams are pure
/// functions of (seed, lane, cycle).
struct FarmSnapshot {
  uint64_t designHash = 0;
  uint64_t cycle = 0;         ///< cycles already evaluated on every lane
  uint64_t seed = 0;          ///< root seed of the run being checkpointed
  uint32_t totalLanes = 0;
  uint32_t lanesPerBlock = 0;
  EvalStats stats;                 ///< merged block counters at save time
  std::vector<uint64_t> checksums; ///< per global lane, running
  std::vector<SimSnapshot> lanes;  ///< per global lane (scalar convention)
};

/// Order-insensitive-free structural hash of an elaborated design: nets
/// (names, kinds) and nodes (ops, connectivity, constants) in netlist
/// order, plus the top name.  Two designs share a hash iff they would
/// simulate identically, so snapshots refuse to load into the wrong
/// hardware.
[[nodiscard]] uint64_t designContentHash(const Design& design);

/// Probes the header only: magic, version and kind.  Lets callers (the
/// zeusc --resume path) dispatch on the checkpoint kind before decoding.
bool snapshotKindOfBytes(const uint8_t* data, size_t size, SnapshotKind& out,
                         std::string& error);

// -- full simulation state --
[[nodiscard]] std::vector<uint8_t> snapshotToBytes(const SimSnapshot& snap);
bool snapshotFromBytes(const uint8_t* data, size_t size, SimSnapshot& out,
                       std::string& error);
bool saveSnapshotFile(const std::string& path, const SimSnapshot& snap,
                      std::string& error);
bool loadSnapshotFile(const std::string& path, SimSnapshot& out,
                      std::string& error);

// -- farm state --
[[nodiscard]] std::vector<uint8_t> farmToBytes(const FarmSnapshot& snap);
bool farmFromBytes(const uint8_t* data, size_t size, FarmSnapshot& out,
                   std::string& error);
bool saveFarmFile(const std::string& path, const FarmSnapshot& snap,
                  std::string& error);
bool loadFarmFile(const std::string& path, FarmSnapshot& out,
                  std::string& error);

// -- fault-campaign progress --
[[nodiscard]] std::vector<uint8_t> campaignToBytes(
    const CampaignProgress& progress);
bool campaignFromBytes(const uint8_t* data, size_t size,
                       CampaignProgress& out, std::string& error);
bool saveCampaignFile(const std::string& path,
                      const CampaignProgress& progress, std::string& error);
bool loadCampaignFile(const std::string& path, CampaignProgress& out,
                      std::string& error);

}  // namespace zeus

// Versioned binary checkpoints for crash-safe simulation and fault
// campaigns (docs/fault-injection.md).
//
// File layout (little-endian):
//   u32 magic   "ZSNP" (0x504E535A)
//   u32 version (kSnapshotVersion)
//   u8  kind    (SnapshotKind: full sim state or campaign progress)
//   u64 design content hash
//   ... kind-specific payload ...
//
// Loading is defensive: every count is validated against the remaining
// byte budget before any allocation, so truncated, corrupt or adversarial
// files produce a structured error string — never a crash or an OOM.
// That contract is enforced by the fuzz corpus (tools/zeus_fuzz.cpp
// replays the loaders on every input).  Saving is atomic: the bytes land
// in "<path>.tmp" and std::rename() moves them into place, so a crash
// mid-write never leaves a half checkpoint at the target path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/elab/design.h"
#include "src/sim/fault.h"
#include "src/sim/simulation.h"

namespace zeus {

inline constexpr uint32_t kSnapshotMagic = 0x504E535Au;  // "ZSNP"
inline constexpr uint32_t kSnapshotVersion = 1;

enum class SnapshotKind : uint8_t {
  SimState = 0,          ///< full Simulation / per-lane BatchSimulation state
  CampaignProgress = 1,  ///< fault-campaign sweep position + outcomes
};

/// Order-insensitive-free structural hash of an elaborated design: nets
/// (names, kinds) and nodes (ops, connectivity, constants) in netlist
/// order, plus the top name.  Two designs share a hash iff they would
/// simulate identically, so snapshots refuse to load into the wrong
/// hardware.
[[nodiscard]] uint64_t designContentHash(const Design& design);

/// Probes the header only: magic, version and kind.  Lets callers (the
/// zeusc --resume path) dispatch on the checkpoint kind before decoding.
bool snapshotKindOfBytes(const uint8_t* data, size_t size, SnapshotKind& out,
                         std::string& error);

// -- full simulation state --
[[nodiscard]] std::vector<uint8_t> snapshotToBytes(const SimSnapshot& snap);
bool snapshotFromBytes(const uint8_t* data, size_t size, SimSnapshot& out,
                       std::string& error);
bool saveSnapshotFile(const std::string& path, const SimSnapshot& snap,
                      std::string& error);
bool loadSnapshotFile(const std::string& path, SimSnapshot& out,
                      std::string& error);

// -- fault-campaign progress --
[[nodiscard]] std::vector<uint8_t> campaignToBytes(
    const CampaignProgress& progress);
bool campaignFromBytes(const uint8_t* data, size_t size,
                       CampaignProgress& out, std::string& error);
bool saveCampaignFile(const std::string& path,
                      const CampaignProgress& progress, std::string& error);
bool loadCampaignFile(const std::string& path, CampaignProgress& out,
                      std::string& error);

}  // namespace zeus

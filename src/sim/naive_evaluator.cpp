#include "src/sim/naive_evaluator.h"

#include <cassert>

#include "src/sim/value.h"

namespace zeus {

namespace {
uint64_t xorshift(uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}
}  // namespace

NaiveEvaluator::NaiveEvaluator(const SimGraph& graph) : g_(graph) {
  nodeOut_.assign(g_.design->netlist.nodeCount(), Logic::Undef);
  netVal_.assign(g_.denseCount, Logic::NoInfl);
  active_.assign(g_.denseCount, 0);
  seedVal_.assign(g_.denseCount, Logic::NoInfl);
  seedSet_.assign(g_.denseCount, 0);
}

void NaiveEvaluator::evaluate(const CycleSeeds& seeds, CycleResult& out) {
  const Netlist& nl = g_.design->netlist;
  uint64_t rng = seeds.rngState ? seeds.rngState : kDefaultRngSeed;

  std::fill(seedSet_.begin(), seedSet_.end(), 0);
  std::fill(seedVal_.begin(), seedVal_.end(), Logic::NoInfl);
  if (seeds.inputValues) {
    for (size_t i = 0; i < g_.denseCount; ++i) {
      if (g_.nets[i].isInput && (*seeds.inputSet)[i]) {
        seedVal_[i] = (*seeds.inputValues)[i];
        seedSet_[i] = 1;
      }
    }
  }

  // Register outputs and sources are fixed for the whole cycle.
  std::fill(nodeOut_.begin(), nodeOut_.end(), Logic::Undef);
  for (size_t k = 0; k < g_.regNodes.size(); ++k) {
    nodeOut_[g_.regNodes[k]] = (*seeds.regValues)[k];
  }
  for (NodeId ni : g_.sourceNodes) {
    const Node& node = nl.node(ni);
    nodeOut_[ni] = node.op == NodeOp::Const
                       ? node.constVal
                       : logicFromBool(xorshift(rng) & 1);
  }
  std::fill(netVal_.begin(), netVal_.end(), Logic::Undef);

  const FaultPlan* faults =
      seeds.faults && seeds.faults->any ? seeds.faults : nullptr;
  auto resolveNet = [&](size_t i) -> Logic {
    Resolution r;
    if (seedSet_[i]) r.add(seedVal_[i]);
    for (uint32_t e = g_.driverStart[i]; e < g_.driverStart[i + 1]; ++e) {
      r.add(nodeOut_[g_.driverNodes[e]]);
    }
    Logic v = r.value;
    uint32_t act = static_cast<uint32_t>(r.activeCount);
    // Fault injection applies inside the sweeps too, so the faulty value
    // reaches the fixpoint exactly as it propagates in the firing rules.
    if (faults) {
      FaultMode m = faults->mode[i];
      if (m != FaultMode::None) v = applyScalarFault(m, v, act);
    }
    active_[i] = act;
    return v;
  };

  out.watchdogTripped = false;
  std::vector<Logic> scratch;
  size_t maxSweeps = nl.nodeCount() + 2;
  if (seeds.eventBudget) {
    // Honour the caller's watchdog: one sweep visits every node once.
    uint64_t perSweep = nl.nodeCount() ? nl.nodeCount() : 1;
    uint64_t cap = seeds.eventBudget / perSweep + 1;
    if (cap < maxSweeps) maxSweeps = static_cast<size_t>(cap);
  }
  size_t sweep = 0;
  bool changed = true;
  while (changed && sweep < maxSweeps) {
    changed = false;
    ++sweep;
    ++stats_.sweeps;
    // Nets from drivers.
    for (size_t i = 0; i < g_.denseCount; ++i) {
      Logic v = resolveNet(i);
      // Implicit boolean conversion happens per consumer; keep raw here.
      if (v != netVal_[i]) {
        netVal_[i] = v;
        changed = true;
      }
    }
    // Nodes from nets.
    for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
      const Node& node = nl.node(ni);
      if (node.op == NodeOp::Reg || node.op == NodeOp::Const ||
          node.op == NodeOp::Random) {
        continue;
      }
      ++stats_.nodeFirings;
      scratch.clear();
      for (NetId in : node.inputs) scratch.push_back(netVal_[g_.denseOf[in]]);
      Logic v = Logic::Undef;
      switch (node.op) {
        case NodeOp::Buf:
          v = scratch[0];
          if (v == Logic::NoInfl && g_.nets[g_.denseOf[node.output]].isBool)
            v = Logic::Undef;
          break;
        case NodeOp::Not:
        case NodeOp::And:
        case NodeOp::Or:
        case NodeOp::Nand:
        case NodeOp::Nor:
        case NodeOp::Xor:
          v = evalGate(node.op, scratch);
          break;
        case NodeOp::Equal: {
          size_t m = scratch.size() / 2;
          v = evalEqual(std::span<const Logic>(scratch.data(), m),
                        std::span<const Logic>(scratch.data() + m, m));
          break;
        }
        case NodeOp::Switch:
          v = evalSwitch(scratch[0], scratch[1]);
          break;
        default:
          break;
      }
      if (v != nodeOut_[ni]) {
        nodeOut_[ni] = v;
        changed = true;
      }
    }
  }
  // Non-convergence within the sweep bound is a watchdog fault, reported
  // as a structured SimError by the Simulation — never a silent assert.
  if (changed && sweep >= maxSweeps) out.watchdogTripped = true;

  // Final resolution + collision check, written straight into the
  // caller's buffers (no full-vector copies).
  out.collisions.clear();
  if (out.netValues.size() != g_.denseCount) {
    out.netValues.assign(g_.denseCount, Logic::Undef);
    out.activeCounts.assign(g_.denseCount, 0);
  }
  for (size_t i = 0; i < g_.denseCount; ++i) {
    out.netValues[i] = resolveNet(i);
    out.activeCounts[i] = active_[i];
    ++stats_.netResolutions;
    if (g_.nets[i].multiDriven) ++stats_.contentionChecks;
    if (active_[i] > 1) out.collisions.push_back(static_cast<uint32_t>(i));
  }
  out.rngState = rng;
}

}  // namespace zeus

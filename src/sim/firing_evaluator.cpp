#include "src/sim/firing_evaluator.h"

#include <cassert>

#include "src/sim/value.h"

namespace zeus {

namespace {
uint64_t xorshift(uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}
}  // namespace

FiringEvaluator::FiringEvaluator(const SimGraph& graph) : g_(graph) {
  const Netlist& nl = g_.design->netlist;
  value_.assign(g_.denseCount, Logic::NoInfl);
  active_.assign(g_.denseCount, 0);
  pending_.assign(g_.denseCount, 0);
  netFired_.assign(g_.denseCount, 0);
  nodeFired_.assign(nl.nodeCount(), 0);
  nodeKnown_.assign(nl.nodeCount(), 0);
  nodeZeros_.assign(nl.nodeCount(), 0);
  nodeOnes_.assign(nl.nodeCount(), 0);
  nodeUndef_.assign(nl.nodeCount(), 0);
  inputStart_.assign(nl.nodeCount() + 1, 0);
  for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
    inputStart_[ni + 1] =
        inputStart_[ni] + static_cast<uint32_t>(nl.node(ni).inputs.size());
  }
  inputVal_.assign(inputStart_.back(), Logic::Undef);
  inputKnown_.assign(inputStart_.back(), 0);
  worklist_.reserve(g_.denseCount);
}

void FiringEvaluator::contribute(uint32_t net, Logic v) {
  if (v != Logic::NoInfl) {
    if (++active_[net] == 1) value_[net] = v;
    else value_[net] = Logic::Undef;
  }
  assert(pending_[net] > 0);
  if (--pending_[net] == 0) fireNet(net, value_[net]);
}

void FiringEvaluator::fireNet(uint32_t net, Logic value) {
  assert(!netFired_[net]);
  netFired_[net] = 1;
  value_[net] = value;
  if (active_[net] > 1 && collisions_) collisions_->push_back(net);
  worklist_.push_back(net);
}

void FiringEvaluator::evaluate(const CycleSeeds& seeds, CycleResult& out) {
  const Netlist& nl = g_.design->netlist;
  uint64_t rng = seeds.rngState ? seeds.rngState : 0x9E3779B97F4A7C15ull;

  // Reset per-cycle state.
  std::fill(value_.begin(), value_.end(), Logic::NoInfl);
  std::fill(active_.begin(), active_.end(), 0u);
  std::fill(netFired_.begin(), netFired_.end(), 0);
  std::fill(nodeFired_.begin(), nodeFired_.end(), 0);
  std::fill(nodeKnown_.begin(), nodeKnown_.end(), 0u);
  std::fill(nodeZeros_.begin(), nodeZeros_.end(), 0u);
  std::fill(nodeOnes_.begin(), nodeOnes_.end(), 0u);
  std::fill(nodeUndef_.begin(), nodeUndef_.end(), 0);
  std::fill(inputKnown_.begin(), inputKnown_.end(), 0);
  worklist_.clear();
  for (size_t i = 0; i < g_.denseCount; ++i) {
    pending_[i] = g_.nets[i].nonRegDrivers;
  }
  out.collisions.clear();
  out.watchdogTripped = false;
  collisions_ = &out.collisions;
  // Watchdog: every consumer edge delivers at most one arrival event per
  // cycle, so anything past a small multiple of the edge count means the
  // evaluator is wedged — abort the cycle instead of hanging.
  uint64_t eventBudget = seeds.eventBudget
                             ? seeds.eventBudget
                             : 4 * static_cast<uint64_t>(inputStart_.back()) +
                                   g_.denseCount + 64;
  uint64_t events = 0;

  // Seed register outputs (REG drivers contribute their stored value and
  // are not counted in pending_).
  for (size_t k = 0; k < g_.regNodes.size(); ++k) {
    const Node& reg = nl.node(g_.regNodes[k]);
    uint32_t net = g_.denseOf[reg.output];
    Logic v = (*seeds.regValues)[k];
    if (v != Logic::NoInfl) {
      if (++active_[net] == 1) value_[net] = v;
      else value_[net] = Logic::Undef;
    }
  }
  // Seed primary inputs.
  if (seeds.inputValues) {
    for (size_t i = 0; i < g_.denseCount; ++i) {
      if (!g_.nets[i].isInput || !(*seeds.inputSet)[i]) continue;
      Logic v = (*seeds.inputValues)[i];
      if (v != Logic::NoInfl) {
        if (++active_[i] == 1) value_[i] = v;
        else value_[i] = Logic::Undef;
      }
    }
  }
  // Fire source nodes (Const / Random).
  for (NodeId ni : g_.sourceNodes) {
    const Node& node = nl.node(ni);
    nodeFired_[ni] = 1;
    ++stats_.nodeFirings;
    Logic v = node.op == NodeOp::Const
                  ? node.constVal
                  : logicFromBool(xorshift(rng) & 1);
    contribute(g_.denseOf[node.output], v);
  }
  // Fire all nets whose every (non-REG) driver has contributed.
  for (size_t i = 0; i < g_.denseCount; ++i) {
    if (pending_[i] == 0 && !netFired_[i]) fireNet(static_cast<uint32_t>(i),
                                                   value_[i]);
  }

  // Propagate.
  size_t cursor = 0;
  while (cursor < worklist_.size() && !out.watchdogTripped) {
    uint32_t net = worklist_[cursor++];
    Logic v = value_[net];
    for (uint32_t e = g_.consumerStart[net]; e < g_.consumerStart[net + 1];
         ++e) {
      if (++events > eventBudget) {
        out.watchdogTripped = true;
        break;
      }
      NodeId ni = g_.consumers[e];
      uint32_t idx = g_.consumerInputIdx[e];
      const Node& node = nl.node(ni);
      if (node.op == NodeOp::Reg) continue;  // latched at end of cycle
      ++stats_.inputEvents;

      uint32_t slot = inputStart_[ni] + idx;
      if (!inputKnown_[slot]) {
        inputKnown_[slot] = 1;
        inputVal_[slot] = v;
        ++nodeKnown_[ni];
        Logic gv = gateInput(v);
        if (gv == Logic::Zero) ++nodeZeros_[ni];
        else if (gv == Logic::One) ++nodeOnes_[ni];
        else nodeUndef_[ni] = 1;
      }
      if (nodeFired_[ni]) {
        // Already fired (short-circuit); later arrivals still release the
        // output net's pending count — no, the node contributed exactly
        // once when it fired.  Nothing to do.
        continue;
      }

      uint32_t total = static_cast<uint32_t>(node.inputs.size());
      Logic outV = Logic::Undef;
      bool fire = false;
      switch (node.op) {
        case NodeOp::Buf: {
          outV = v;
          // Implicit type conversion (§3.2): a boolean assignee turns a
          // disconnected multiplex value into UNDEF.
          if (outV == Logic::NoInfl &&
              g_.nets[g_.denseOf[node.output]].isBool) {
            outV = Logic::Undef;
          }
          fire = true;
          break;
        }
        case NodeOp::Not: {
          Logic in[1] = {v};
          outV = evalGate(NodeOp::Not, in);
          fire = true;
          break;
        }
        case NodeOp::And:
        case NodeOp::Nand:
        case NodeOp::Or:
        case NodeOp::Nor: {
          GateCounters c;
          c.known = nodeKnown_[ni];
          c.zeros = nodeZeros_[ni];
          c.ones = nodeOnes_[ni];
          fire = gateCanFire(node.op, c, total, outV);
          break;
        }
        case NodeOp::Xor: {
          if (nodeKnown_[ni] == total) {
            outV = nodeUndef_[ni] ? Logic::Undef
                                  : logicFromBool(nodeOnes_[ni] & 1);
            fire = true;
          }
          break;
        }
        case NodeOp::Equal: {
          uint32_t m = total / 2;
          uint32_t base = inputStart_[ni];
          // Short-circuit on a known mismatching pair.
          uint32_t partner = idx < m ? idx + m : idx - m;
          if (inputKnown_[base + partner]) {
            Logic x = gateInput(inputVal_[base + idx]);
            Logic y = gateInput(inputVal_[base + partner]);
            if (isDefined(x) && isDefined(y) && x != y) {
              outV = Logic::Zero;
              fire = true;
            }
          }
          if (!fire && nodeKnown_[ni] == total) {
            std::vector<Logic> a(inputVal_.begin() + base,
                                 inputVal_.begin() + base + m);
            std::vector<Logic> b(inputVal_.begin() + base + m,
                                 inputVal_.begin() + base + total);
            outV = evalEqual(a, b);
            fire = true;
          }
          break;
        }
        case NodeOp::Switch: {
          uint32_t base = inputStart_[ni];
          if (!inputKnown_[base]) break;  // condition still unknown
          Logic c = gateInput(inputVal_[base]);
          if (c == Logic::Zero) {
            outV = Logic::NoInfl;
            fire = true;
          } else if (c == Logic::Undef) {
            outV = Logic::Undef;
            fire = true;
          } else if (inputKnown_[base + 1]) {
            outV = inputVal_[base + 1];
            fire = true;
          }
          break;
        }
        case NodeOp::Const:
        case NodeOp::Random:
        case NodeOp::Reg:
          break;  // handled elsewhere
      }
      if (fire) {
        nodeFired_[ni] = 1;
        ++stats_.nodeFirings;
        contribute(g_.denseOf[node.output], outV);
      }
    }
  }

  // On a DAG every net fires; guard against inconsistencies anyway.
  for (size_t i = 0; i < g_.denseCount; ++i) {
    if (!netFired_[i]) value_[i] = Logic::Undef;
  }

  out.netValues = value_;
  out.activeCounts = active_;
  out.rngState = rng;
  collisions_ = nullptr;
}

}  // namespace zeus

#include "src/sim/firing_evaluator.h"

#include <cassert>

#include "src/sim/value.h"

namespace zeus {

namespace {
uint64_t xorshift(uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}
}  // namespace

FiringEvaluator::FiringEvaluator(const SimGraph& graph) : g_(graph) {
  const Netlist& nl = g_.design->netlist;
  netStamp_.assign(g_.denseCount, 0);
  nodeStamp_.assign(nl.nodeCount(), 0);
  pending_.assign(g_.denseCount, 0);
  netFired_.assign(g_.denseCount, 0);
  nodeFired_.assign(nl.nodeCount(), 0);
  nodeKnown_.assign(nl.nodeCount(), 0);
  nodeZeros_.assign(nl.nodeCount(), 0);
  nodeOnes_.assign(nl.nodeCount(), 0);
  nodeUndef_.assign(nl.nodeCount(), 0);
  inputStart_.assign(nl.nodeCount() + 1, 0);
  for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
    inputStart_[ni + 1] =
        inputStart_[ni] + static_cast<uint32_t>(nl.node(ni).inputs.size());
  }
  inputVal_.assign(inputStart_.back(), Logic::Undef);
  inputKnown_.assign(inputStart_.back(), 0);
  for (size_t i = 0; i < g_.denseCount; ++i) {
    if (g_.nets[i].isInput) inputNets_.push_back(static_cast<uint32_t>(i));
    if (g_.nets[i].nonRegDrivers == 0)
      undrivenNets_.push_back(static_cast<uint32_t>(i));
  }
  worklist_.reserve(g_.denseCount);
}

void FiringEvaluator::touchNet(uint32_t net) {
  if (netStamp_[net] == epoch_) return;
  netStamp_[net] = epoch_;
  value_[net] = Logic::NoInfl;
  active_[net] = 0;
  netFired_[net] = 0;
  pending_[net] = g_.nets[net].nonRegDrivers;
}

void FiringEvaluator::touchNode(NodeId node) {
  if (nodeStamp_[node] == epoch_) return;
  nodeStamp_[node] = epoch_;
  nodeFired_[node] = 0;
  nodeKnown_[node] = 0;
  nodeZeros_[node] = 0;
  nodeOnes_[node] = 0;
  nodeUndef_[node] = 0;
  for (uint32_t s = inputStart_[node]; s < inputStart_[node + 1]; ++s) {
    inputKnown_[s] = 0;
  }
}

void FiringEvaluator::contribute(uint32_t net, Logic v) {
  touchNet(net);
  if (v != Logic::NoInfl) {
    if (++active_[net] == 1) value_[net] = v;
    else value_[net] = Logic::Undef;
  }
  assert(pending_[net] > 0);
  if (--pending_[net] == 0) fireNet(net, value_[net]);
}

void FiringEvaluator::fireNet(uint32_t net, Logic value) {
  assert(!netFired_[net]);
  netFired_[net] = 1;
  ++firedCount_;
  ++stats_.netResolutions;
  if (g_.nets[net].multiDriven) ++stats_.contentionChecks;
  // Every net passes through here exactly once per cycle (reg-only-driven
  // nets via the undrivenNets_ loop), so this is the single injection
  // point: the faulty value propagates to all consumers and the latch.
  if (faults_) {
    FaultMode m = faults_->mode[net];
    if (m != FaultMode::None) value = applyScalarFault(m, value, active_[net]);
  }
  value_[net] = value;
  if (active_[net] > 1 && collisions_) collisions_->push_back(net);
  worklist_.push_back(net);
}

void FiringEvaluator::evaluate(const CycleSeeds& seeds, CycleResult& out) {
  const Netlist& nl = g_.design->netlist;
  uint64_t rng = seeds.rngState ? seeds.rngState : kDefaultRngSeed;

  ++epoch_;
  ++stats_.epochResets;
  if (out.netValues.size() != g_.denseCount) {
    out.netValues.assign(g_.denseCount, Logic::Undef);
    out.activeCounts.assign(g_.denseCount, 0);
  }
  value_ = out.netValues.data();
  active_ = out.activeCounts.data();
  worklist_.clear();
  firedCount_ = 0;
  out.collisions.clear();
  out.watchdogTripped = false;
  collisions_ = &out.collisions;
  faults_ = seeds.faults && seeds.faults->any ? seeds.faults : nullptr;
  // Watchdog: every consumer edge delivers at most one arrival event per
  // cycle, so anything past a small multiple of the edge count means the
  // evaluator is wedged — abort the cycle instead of hanging.
  uint64_t eventBudget = seeds.eventBudget
                             ? seeds.eventBudget
                             : 4 * static_cast<uint64_t>(inputStart_.back()) +
                                   g_.denseCount + 64;
  uint64_t events = 0;

  // Seed register outputs (REG drivers contribute their stored value and
  // are not counted in pending_).
  for (size_t k = 0; k < g_.regNodes.size(); ++k) {
    const Node& reg = nl.node(g_.regNodes[k]);
    uint32_t net = g_.denseOf[reg.output];
    touchNet(net);
    Logic v = (*seeds.regValues)[k];
    if (v != Logic::NoInfl) {
      if (++active_[net] == 1) value_[net] = v;
      else value_[net] = Logic::Undef;
    }
  }
  // Seed primary inputs.
  if (seeds.inputValues) {
    for (uint32_t i : inputNets_) {
      if (!(*seeds.inputSet)[i]) continue;
      touchNet(i);
      Logic v = (*seeds.inputValues)[i];
      if (v != Logic::NoInfl) {
        if (++active_[i] == 1) value_[i] = v;
        else value_[i] = Logic::Undef;
      }
    }
  }
  // Fire source nodes (Const / Random).
  for (NodeId ni : g_.sourceNodes) {
    const Node& node = nl.node(ni);
    touchNode(ni);
    nodeFired_[ni] = 1;
    ++stats_.nodeFirings;
    Logic v = node.op == NodeOp::Const
                  ? node.constVal
                  : logicFromBool(xorshift(rng) & 1);
    contribute(g_.denseOf[node.output], v);
  }
  // Fire all nets with no non-REG driver (everything else fires from
  // contribute() when its last driver arrives).
  for (uint32_t i : undrivenNets_) {
    touchNet(i);
    if (!netFired_[i]) fireNet(i, value_[i]);
  }

  // Propagate.
  size_t cursor = 0;
  while (cursor < worklist_.size() && !out.watchdogTripped) {
    uint32_t net = worklist_[cursor++];
    Logic v = value_[net];
    for (uint32_t e = g_.consumerStart[net]; e < g_.consumerStart[net + 1];
         ++e) {
      if (++events > eventBudget) {
        out.watchdogTripped = true;
        break;
      }
      NodeId ni = g_.consumers[e];
      uint32_t idx = g_.consumerInputIdx[e];
      const Node& node = nl.node(ni);
      if (node.op == NodeOp::Reg) continue;  // latched at end of cycle
      ++stats_.inputEvents;

      touchNode(ni);
      uint32_t slot = inputStart_[ni] + idx;
      if (!inputKnown_[slot]) {
        inputKnown_[slot] = 1;
        inputVal_[slot] = v;
        ++nodeKnown_[ni];
        Logic gv = gateInput(v);
        if (gv == Logic::Zero) ++nodeZeros_[ni];
        else if (gv == Logic::One) ++nodeOnes_[ni];
        else nodeUndef_[ni] = 1;
      }
      if (nodeFired_[ni]) {
        // Already fired (short-circuit); the node contributed exactly
        // once when it fired.  Nothing to do.
        ++stats_.shortCircuitSkips;
        continue;
      }

      uint32_t total = static_cast<uint32_t>(node.inputs.size());
      Logic outV = Logic::Undef;
      bool fire = false;
      switch (node.op) {
        case NodeOp::Buf: {
          outV = v;
          // Implicit type conversion (§3.2): a boolean assignee turns a
          // disconnected multiplex value into UNDEF.
          if (outV == Logic::NoInfl &&
              g_.nets[g_.denseOf[node.output]].isBool) {
            outV = Logic::Undef;
          }
          fire = true;
          break;
        }
        case NodeOp::Not: {
          Logic in[1] = {v};
          outV = evalGate(NodeOp::Not, in);
          fire = true;
          break;
        }
        case NodeOp::And:
        case NodeOp::Nand:
        case NodeOp::Or:
        case NodeOp::Nor: {
          GateCounters c;
          c.known = nodeKnown_[ni];
          c.zeros = nodeZeros_[ni];
          c.ones = nodeOnes_[ni];
          fire = gateCanFire(node.op, c, total, outV);
          break;
        }
        case NodeOp::Xor: {
          if (nodeKnown_[ni] == total) {
            outV = nodeUndef_[ni] ? Logic::Undef
                                  : logicFromBool(nodeOnes_[ni] & 1);
            fire = true;
          }
          break;
        }
        case NodeOp::Equal: {
          uint32_t m = total / 2;
          uint32_t base = inputStart_[ni];
          // Short-circuit on a known mismatching pair.
          uint32_t partner = idx < m ? idx + m : idx - m;
          if (inputKnown_[base + partner]) {
            Logic x = gateInput(inputVal_[base + idx]);
            Logic y = gateInput(inputVal_[base + partner]);
            if (isDefined(x) && isDefined(y) && x != y) {
              outV = Logic::Zero;
              fire = true;
            }
          }
          if (!fire && nodeKnown_[ni] == total) {
            std::vector<Logic> a(inputVal_.begin() + base,
                                 inputVal_.begin() + base + m);
            std::vector<Logic> b(inputVal_.begin() + base + m,
                                 inputVal_.begin() + base + total);
            outV = evalEqual(a, b);
            fire = true;
          }
          break;
        }
        case NodeOp::Switch: {
          uint32_t base = inputStart_[ni];
          if (!inputKnown_[base]) break;  // condition still unknown
          Logic c = gateInput(inputVal_[base]);
          if (c == Logic::Zero) {
            outV = Logic::NoInfl;
            fire = true;
          } else if (c == Logic::Undef) {
            outV = Logic::Undef;
            fire = true;
          } else if (inputKnown_[base + 1]) {
            outV = inputVal_[base + 1];
            fire = true;
          }
          break;
        }
        case NodeOp::Const:
        case NodeOp::Random:
        case NodeOp::Reg:
          break;  // handled elsewhere
      }
      if (fire) {
        nodeFired_[ni] = 1;
        ++stats_.nodeFirings;
        contribute(g_.denseOf[node.output], outV);
      }
    }
  }

  // On a consistent DAG every net fires; only a watchdog-aborted cycle
  // leaves nets behind, and then their (stale or untouched) slots read
  // UNDEF.
  if (firedCount_ < g_.denseCount) {
    for (size_t i = 0; i < g_.denseCount; ++i) {
      if (netStamp_[i] != epoch_) {
        out.netValues[i] = Logic::Undef;
        out.activeCounts[i] = 0;
      } else if (!netFired_[i]) {
        out.netValues[i] = Logic::Undef;
      }
    }
  }

  // Watchdog margin: how much of the event budget was left this cycle.
  uint64_t margin =
      out.watchdogTripped || events > eventBudget ? 0 : eventBudget - events;
  if (margin < stats_.watchdogMarginMin) stats_.watchdogMarginMin = margin;

  out.rngState = rng;
  collisions_ = nullptr;
  faults_ = nullptr;
  value_ = nullptr;
  active_ = nullptr;
}

}  // namespace zeus

#include "src/sim/fault.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "src/core/batch_sim.h"
#include "src/sim/snapshot.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace zeus {

namespace {

metrics::Counter campaignsRun("fault-campaigns");
metrics::Counter campaignBatches("fault-campaign-batches");
metrics::Counter campaignFaults("fault-campaign-faults");

/// Stateless mix for deriving independent per-batch stimulus streams from
/// (seed, batch index): resuming at a batch boundary replays the exact
/// stimulus of a straight run.
uint64_t splitmix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t xorshift(uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// One observable primary-output bit.
struct Observable {
  std::string label;  ///< "s" or "s[3]" (1-based port index)
  NetId net;
};

std::vector<Observable> observableOutputs(const SimGraph& g) {
  std::vector<Observable> out;
  for (const Port& p : g.design->ports) {
    for (size_t b = 0; b < p.nets.size(); ++b) {
      if (p.modes[b] == ast::ParamMode::In) continue;
      std::string label =
          p.nets.size() == 1 ? p.name
                             : p.name + "[" + std::to_string(b + 1) + "]";
      out.push_back({std::move(label), p.nets[b]});
    }
  }
  return out;
}

std::vector<const Port*> stimulusInputs(const SimGraph& g) {
  std::vector<const Port*> in;
  for (const Port& p : g.design->ports) {
    if (p.mode == ast::ParamMode::In) in.push_back(&p);
  }
  return in;
}

}  // namespace

std::string_view faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::StuckAt0: return "stuck-at-0";
    case FaultKind::StuckAt1: return "stuck-at-1";
    case FaultKind::StuckUndef: return "stuck-undef";
    case FaultKind::TransientFlip: return "transient-flip";
    case FaultKind::ForcedContention: return "forced-contention";
  }
  return "unknown";
}

std::string_view faultStatusName(FaultOutcome::Status s) {
  switch (s) {
    case FaultOutcome::Status::Undetected: return "undetected";
    case FaultOutcome::Status::Masked: return "masked";
    case FaultOutcome::Status::Detected: return "detected";
  }
  return "unknown";
}

FaultMode faultModeOf(FaultKind kind) {
  switch (kind) {
    case FaultKind::StuckAt0: return FaultMode::Force0;
    case FaultKind::StuckAt1: return FaultMode::Force1;
    case FaultKind::StuckUndef: return FaultMode::ForceUndef;
    case FaultKind::TransientFlip: return FaultMode::Flip;
    case FaultKind::ForcedContention: return FaultMode::Contend;
  }
  return FaultMode::None;
}

std::optional<FaultSpec> makeFault(const SimGraph& graph, FaultKind kind,
                                   const std::string& netName,
                                   uint64_t fromCycle, uint64_t toCycle) {
  NetId id = graph.design->netlist.findByName(netName);
  if (id == kNoNet) return std::nullopt;
  if (graph.dense(id) == SimGraph::kNoDense) {
    // The optimizer removed the whole class: there is no simulated state
    // to fault.  Treat like an unknown net so callers report it cleanly.
    return std::nullopt;
  }
  FaultSpec f;
  f.kind = kind;
  f.denseNet = graph.dense(id);
  f.fromCycle = fromCycle;
  f.toCycle = toCycle;
  return f;
}

std::vector<FaultSpec> defaultFaultUniverse(const SimGraph& graph) {
  std::vector<FaultSpec> u;
  u.reserve(graph.denseCount * 2);
  for (uint32_t i = 0; i < graph.denseCount; ++i) {
    u.push_back({FaultKind::StuckAt0, i, 0, ~uint64_t{0}});
    u.push_back({FaultKind::StuckAt1, i, 0, ~uint64_t{0}});
  }
  return u;
}

uint64_t FaultCampaignReport::countOf(FaultOutcome::Status s) const {
  uint64_t n = 0;
  for (const FaultOutcome& f : faults)
    if (f.status == s) ++n;
  return n;
}

double FaultCampaignReport::coverage() const {
  if (faults.empty()) return 0.0;
  return static_cast<double>(countOf(FaultOutcome::Status::Detected)) /
         static_cast<double>(faults.size());
}

std::string FaultCampaignReport::renderJson() const {
  // Deterministic by construction: every field is a pure function of
  // (design, universe, cycles, seed, lanes) — never wall-clock or
  // process-local progress — so straight and crash-resumed campaigns
  // render byte-identical documents (the crash_recovery ctest diffs them).
  std::string j = "{\n  \"zeus-faults\": 1,\n";
  j += "  \"design\": \"" + metrics::jsonEscape(design) + "\",\n";
  j += "  \"cycles\": " + std::to_string(cycles) + ",\n";
  j += "  \"seed\": " + std::to_string(seed) + ",\n";
  j += "  \"lanes\": " + std::to_string(lanes) + ",\n";
  j += "  \"batches\": " + std::to_string(totalBatches) + ",\n";
  j += "  \"total_faults\": " + std::to_string(faults.size()) + ",\n";
  j += "  \"interrupted\": ";
  j += interrupted ? "true" : "false";
  j += ",\n";
  j += "  \"detected\": " +
       std::to_string(countOf(FaultOutcome::Status::Detected)) + ",\n";
  j += "  \"masked\": " + std::to_string(countOf(FaultOutcome::Status::Masked)) +
       ",\n";
  j += "  \"undetected\": " +
       std::to_string(countOf(FaultOutcome::Status::Undetected)) + ",\n";
  char cov[32];
  std::snprintf(cov, sizeof cov, "%.6f", coverage());
  j += "  \"coverage\": " + std::string(cov) + ",\n";

  // Per-output detector tally, in port declaration order of first use.
  std::vector<std::pair<std::string, uint64_t>> det;
  for (const FaultOutcome& f : faults) {
    if (f.status != FaultOutcome::Status::Detected) continue;
    auto it = std::find_if(det.begin(), det.end(),
                           [&](const auto& d) { return d.first == f.detector; });
    if (it == det.end()) det.emplace_back(f.detector, 1);
    else ++it->second;
  }
  j += "  \"detectors\": [";
  for (size_t i = 0; i < det.size(); ++i) {
    if (i) j += ", ";
    j += "{\"output\": \"" + metrics::jsonEscape(det[i].first) +
         "\", \"faults\": " + std::to_string(det[i].second) + "}";
  }
  j += "],\n  \"faults\": [\n";
  for (size_t i = 0; i < faults.size(); ++i) {
    const FaultOutcome& f = faults[i];
    j += "    {\"net\": \"" + metrics::jsonEscape(f.net) + "\", \"kind\": \"" +
         std::string(faultKindName(f.spec.kind)) + "\", \"status\": \"" +
         std::string(faultStatusName(f.status)) +
         "\", \"first_cycle\": " + std::to_string(f.firstDetectCycle) +
         ", \"detector\": \"" + metrics::jsonEscape(f.detector) +
         "\", \"sim_errors\": " + std::to_string(f.simErrors) + "}";
    j += i + 1 < faults.size() ? ",\n" : "\n";
  }
  j += "  ]\n}\n";
  return j;
}

FaultCampaignReport runFaultCampaign(const SimGraph& graph,
                                     const FaultCampaignOptions& opts,
                                     const CampaignProgress* resume) {
  ZEUS_TRACE_SPAN("fault-campaign", "sim");
  campaignsRun.add();
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();

  const std::vector<FaultSpec> universe =
      opts.universe.empty() ? defaultFaultUniverse(graph) : opts.universe;
  const size_t lanes = std::clamp<size_t>(opts.lanes, 2, 64);
  const size_t perBatch = lanes - 1;

  FaultCampaignReport report;
  report.design = graph.design->topName;
  report.cycles = opts.cycles;
  report.seed = opts.seed;
  report.lanes = static_cast<uint32_t>(lanes);
  report.totalBatches = universe.empty() ? 0 : (universe.size() + perBatch - 1) / perBatch;

  const uint64_t designHash = designContentHash(*graph.design);
  size_t firstFault = 0;
  if (resume) {
    if (resume->cycles != opts.cycles || resume->seed != opts.seed ||
        resume->lanes != lanes || resume->totalFaults != universe.size() ||
        resume->done.size() != resume->nextFault ||
        resume->nextFault > universe.size() ||
        (resume->designHash != 0 && resume->designHash != designHash)) {
      throw std::invalid_argument(
          "campaign checkpoint does not match this campaign (design, "
          "cycles, seed, lanes or fault universe differ)");
    }
    firstFault = static_cast<size_t>(resume->nextFault);
    report.faults = resume->done;
  }

  const std::vector<Observable> outputs = observableOutputs(graph);
  const std::vector<const Port*> inputs = stimulusInputs(graph);
  const Netlist& nl = graph.design->netlist;
  auto netName = [&](uint32_t dn) { return nl.net(graph.rootOf[dn]).name; };

  auto emitCheckpoint = [&](size_t nextFault) {
    if (!opts.onCheckpoint) return;
    CampaignProgress p;
    p.designHash = designHash;
    p.cycles = opts.cycles;
    p.seed = opts.seed;
    p.lanes = static_cast<uint32_t>(lanes);
    p.totalFaults = universe.size();
    p.nextFault = nextFault;
    p.done = report.faults;
    opts.onCheckpoint(p);
  };

  uint64_t batchesDone = 0;
  for (size_t f0 = firstFault; f0 < universe.size(); f0 += perBatch) {
    const size_t n = std::min(perBatch, universe.size() - f0);
    const uint64_t batchIndex = f0 / perBatch;
    BatchSimulation batch(graph, n + 1);
    for (size_t k = 0; k < n; ++k) {
      batch.injectFault(k + 1, universe[f0 + k]);
    }

    // Stimulus: identical on every lane, derived only from (seed, batch).
    uint64_t rng = splitmix(opts.seed ^ (batchIndex * 0x9E3779B97F4A7C15ull));
    if (!rng) rng = 1;

    const uint64_t usedLanes =
        n + 1 == 64 ? ~uint64_t{1} : ((uint64_t{1} << (n + 1)) - 2);
    uint64_t divergedEver = 0, detected = 0;
    std::vector<uint64_t> firstCycle(n + 1, 0);
    std::vector<std::string> detector(n + 1);

    for (uint64_t c = 0; c < opts.cycles; ++c) {
      batch.setRset(c == 0);  // cycle 0 is the reset pulse
      for (const Port* p : inputs) {
        std::vector<Logic> bits(p->nets.size());
        uint64_t word = 0;
        for (size_t b = 0; b < bits.size(); ++b) {
          if (b % 64 == 0) word = xorshift(rng);
          bits[b] = logicFromBool((word >> (b % 64)) & 1);
        }
        for (size_t lane = 0; lane <= n; ++lane) {
          batch.setInput(lane, p->name, bits);
        }
      }
      batch.step(1);
      report.evaluatedCycles += 1;
      if (opts.onCycle) opts.onCycle(report.evaluatedCycles);

      uint64_t diff = batch.divergedLanes();
      divergedEver |= diff;
      uint64_t candidates = diff & usedLanes & ~detected;
      if (!candidates) continue;
      for (const Observable& obs : outputs) {
        uint64_t m = batch.laneDiffMask(obs.net) & candidates;
        if (!m) continue;
        Logic gv = batch.netValue(0, obs.net);
        if (!isDefined(gv)) continue;
        while (m) {
          uint32_t lane = static_cast<uint32_t>(__builtin_ctzll(m));
          m &= m - 1;
          Logic lv = batch.netValue(lane, obs.net);
          if (!isDefined(lv) || lv == gv) continue;  // not a definite diff
          detected |= uint64_t{1} << lane;
          candidates &= ~(uint64_t{1} << lane);
          firstCycle[lane] = c;
          detector[lane] = obs.label;
        }
        if (!candidates) break;
      }
    }

    std::vector<uint64_t> laneErrors(n + 1, 0);
    for (const SimError& e : batch.errors()) {
      if (e.lane >= 0 && static_cast<size_t>(e.lane) <= n)
        ++laneErrors[static_cast<size_t>(e.lane)];
    }
    for (size_t k = 0; k < n; ++k) {
      const uint32_t lane = static_cast<uint32_t>(k + 1);
      FaultOutcome o;
      o.spec = universe[f0 + k];
      o.net = netName(o.spec.denseNet);
      if ((detected >> lane) & 1) {
        o.status = FaultOutcome::Status::Detected;
        o.firstDetectCycle = firstCycle[lane];
        o.detector = detector[lane];
      } else if ((divergedEver >> lane) & 1) {
        o.status = FaultOutcome::Status::Masked;
      }
      o.simErrors = laneErrors[lane];
      report.faults.push_back(std::move(o));
    }
    campaignBatches.add();
    campaignFaults.add(n);

    ++batchesDone;
    const size_t nextFault = f0 + n;
    if (opts.checkpointEveryBatches &&
        batchesDone % opts.checkpointEveryBatches == 0) {
      emitCheckpoint(nextFault);
    }
    if (opts.maxMillis && nextFault < universe.size()) {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         Clock::now() - start)
                         .count();
      if (static_cast<uint64_t>(elapsed) >= opts.maxMillis) {
        // Budget exhausted: checkpoint what we have (even off-cadence) so
        // the campaign can resume, then stop at this batch boundary.
        emitCheckpoint(nextFault);
        report.interrupted = true;
        break;
      }
    }
  }
  return report;
}

}  // namespace zeus

#include "src/sim/levelized_evaluator.h"

#include <deque>

#include "src/sim/value.h"
#include "src/support/trace.h"

namespace zeus {

namespace {
uint64_t xorshift(uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}
}  // namespace

LevelizedEvaluator::LevelizedEvaluator(const SimGraph& graph) : g_(graph) {
  ZEUS_TRACE_SPAN("levelize", "compile");
  const Netlist& nl = g_.design->netlist;
  nodeOut_.assign(nl.nodeCount(), Logic::Undef);
  nodeStamp_.assign(nl.nodeCount(), 0);
  regIndexOf_.assign(nl.nodeCount(), kNotReg);
  for (size_t k = 0; k < g_.regNodes.size(); ++k) {
    regIndexOf_[g_.regNodes[k]] = static_cast<uint32_t>(k);
  }
  schedule_ = buildSchedule(graph);
}

std::vector<LevelizedEvaluator::Op> LevelizedEvaluator::buildSchedule(
    const SimGraph& g) {
  // Build the interleaved schedule with the same Kahn walk as
  // buildSimGraph, emitting resolve/evaluate steps as they become legal.
  // Source nodes go first in graph.sourceNodes order so RANDOM nodes draw
  // from the rng stream in the same order as the other evaluators.
  const Netlist& nl = g.design->netlist;
  std::vector<Op> schedule;
  schedule.reserve(nl.nodeCount() + g.denseCount);
  std::vector<uint32_t> netPending(g.denseCount);
  std::vector<uint32_t> nodePending(nl.nodeCount(), 0);
  for (size_t i = 0; i < g.denseCount; ++i) {
    netPending[i] = g.nets[i].nonRegDrivers;
  }
  for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
    if (nl.node(ni).op != NodeOp::Reg) {
      nodePending[ni] = static_cast<uint32_t>(nl.node(ni).inputs.size());
    }
  }
  for (NodeId ni : g.sourceNodes) {
    schedule.push_back({ni, /*isNode=*/true});
    const Node& node = nl.node(ni);
    if (node.output != kNoNet) --netPending[g.denseOf[node.output]];
  }
  std::deque<uint32_t> readyNets;
  for (size_t i = 0; i < g.denseCount; ++i) {
    if (netPending[i] == 0) readyNets.push_back(static_cast<uint32_t>(i));
  }
  while (!readyNets.empty()) {
    uint32_t net = readyNets.front();
    readyNets.pop_front();
    schedule.push_back({net, /*isNode=*/false});
    for (uint32_t e = g.consumerStart[net]; e < g.consumerStart[net + 1];
         ++e) {
      NodeId ni = g.consumers[e];
      const Node& node = nl.node(ni);
      if (node.op == NodeOp::Reg) continue;
      if (--nodePending[ni] == 0) {
        schedule.push_back({ni, /*isNode=*/true});
        if (node.output != kNoNet) {
          uint32_t on = g.denseOf[node.output];
          if (--netPending[on] == 0) readyNets.push_back(on);
        }
      }
    }
  }
  return schedule;
}

void LevelizedEvaluator::evaluate(const CycleSeeds& seeds, CycleResult& out) {
  const Netlist& nl = g_.design->netlist;
  uint64_t rng = seeds.rngState ? seeds.rngState : kDefaultRngSeed;
  ++epoch_;
  ++stats_.epochResets;

  // Every schedule step writes its slot exactly once, so nothing is
  // cleared up front; only the (cheap) collision list resets.
  if (out.netValues.size() != g_.denseCount) {
    out.netValues.assign(g_.denseCount, Logic::Undef);
    out.activeCounts.assign(g_.denseCount, 0);
  }
  out.collisions.clear();
  out.watchdogTripped = false;  // the static schedule cannot wedge
  const FaultPlan* faults =
      seeds.faults && seeds.faults->any ? seeds.faults : nullptr;

  for (const Op& op : schedule_) {
    if (!op.isNode) {
      // Resolve a net from seed + drivers (§8 strength rule).
      uint32_t i = op.index;
      ++stats_.netResolutions;
      if (g_.nets[i].multiDriven) ++stats_.contentionChecks;
      Resolution r;
      if (g_.nets[i].isInput && seeds.inputSet && (*seeds.inputSet)[i]) {
        r.add((*seeds.inputValues)[i]);
      }
      for (uint32_t e = g_.driverStart[i]; e < g_.driverStart[i + 1]; ++e) {
        NodeId d = g_.driverNodes[e];
        uint32_t ri = regIndexOf_[d];
        r.add(ri != kNotReg ? (*seeds.regValues)[ri]
                            : (nodeStamp_[d] == epoch_ ? nodeOut_[d]
                                                       : Logic::Undef));
      }
      Logic v = r.value;
      uint32_t act = static_cast<uint32_t>(r.activeCount);
      if (faults) {
        FaultMode m = faults->mode[i];
        if (m != FaultMode::None) v = applyScalarFault(m, v, act);
      }
      out.netValues[i] = v;
      out.activeCounts[i] = act;
      if (act > 1) out.collisions.push_back(i);
      continue;
    }

    NodeId ni = op.index;
    const Node& node = nl.node(ni);
    ++stats_.nodeFirings;
    Logic v = Logic::Undef;
    switch (node.op) {
      case NodeOp::Const:
        v = node.constVal;
        break;
      case NodeOp::Random:
        v = logicFromBool(xorshift(rng) & 1);
        break;
      case NodeOp::Buf:
        v = out.netValues[g_.denseOf[node.inputs[0]]];
        if (v == Logic::NoInfl && g_.nets[g_.denseOf[node.output]].isBool)
          v = Logic::Undef;
        break;
      case NodeOp::Not:
      case NodeOp::And:
      case NodeOp::Or:
      case NodeOp::Nand:
      case NodeOp::Nor:
      case NodeOp::Xor: {
        scratch_.clear();
        for (NetId in : node.inputs)
          scratch_.push_back(out.netValues[g_.denseOf[in]]);
        v = evalGate(node.op, scratch_);
        break;
      }
      case NodeOp::Equal: {
        scratch_.clear();
        for (NetId in : node.inputs)
          scratch_.push_back(out.netValues[g_.denseOf[in]]);
        size_t m = scratch_.size() / 2;
        v = evalEqual(std::span<const Logic>(scratch_.data(), m),
                      std::span<const Logic>(scratch_.data() + m, m));
        break;
      }
      case NodeOp::Switch:
        v = evalSwitch(out.netValues[g_.denseOf[node.inputs[0]]],
                       out.netValues[g_.denseOf[node.inputs[1]]]);
        break;
      case NodeOp::Reg:
        break;  // never scheduled
    }
    nodeOut_[ni] = v;
    nodeStamp_[ni] = epoch_;
  }

  out.rngState = rng;
}

// ---------------------------------------------------------------------
// Batch mode
// ---------------------------------------------------------------------

LanePlanes lanesBroadcast(Logic v, uint64_t mask) {
  switch (v) {
    case Logic::Zero: return {mask, 0};
    case Logic::One: return {0, mask};
    case Logic::Undef: return {mask, mask};
    case Logic::NoInfl: return {0, 0};
  }
  return {mask, mask};
}

Logic laneValue(const LanePlanes& p, uint32_t lane) {
  bool b0 = (p.p0 >> lane) & 1;
  bool b1 = (p.p1 >> lane) & 1;
  if (b0 && b1) return Logic::Undef;
  if (b0) return Logic::Zero;
  if (b1) return Logic::One;
  return Logic::NoInfl;
}

void laneSet(LanePlanes& planes, uint32_t lane, Logic v) {
  uint64_t bit = uint64_t{1} << lane;
  planes.p0 &= ~bit;
  planes.p1 &= ~bit;
  if (v == Logic::Zero || v == Logic::Undef) planes.p0 |= bit;
  if (v == Logic::One || v == Logic::Undef) planes.p1 |= bit;
}

namespace {

/// Gate-input conversion: NOINFL lanes (0,0) read as UNDEF (1,1) — the
/// word-parallel form of gateInput().
inline LanePlanes laneGateInput(LanePlanes c) {
  uint64_t noinfl = ~(c.p0 | c.p1);
  return {c.p0 | noinfl, c.p1 | noinfl};
}

}  // namespace

LevelizedBatchEvaluator::LevelizedBatchEvaluator(const SimGraph& graph)
    : g_(graph), scalar_(graph) {
  const Netlist& nl = g_.design->netlist;
  nodeOut_.assign(nl.nodeCount(), {});
  nodeStamp_.assign(nl.nodeCount(), 0);
}

void LevelizedBatchEvaluator::evaluate(const BatchSeeds& seeds,
                                       BatchCycleResult& out) {
  const Netlist& nl = g_.design->netlist;
  ++epoch_;
  ++stats_.epochResets;
  if (seeds.rngStates) {
    // Seed-0 normalization parity with the scalar evaluators, which
    // substitute kDefaultRngSeed for a zero rngState.  Without this a
    // lane whose stream was restored to 0 (xorshift's absorbing state)
    // would draw all-zero RANDOM bits while its scalar oracle draws the
    // default sequence.
    for (uint64_t& s : *seeds.rngStates) {
      if (s == 0) s = kDefaultRngSeed;
    }
  }
  if (out.netValues.size() != g_.denseCount) {
    out.netValues.assign(g_.denseCount, {});
    out.activeAny.assign(g_.denseCount, 0);
    out.activeMulti.assign(g_.denseCount, 0);
  }
  out.collisions.clear();

  for (const LevelizedEvaluator::Op& op : scalar_.schedule_) {
    if (!op.isNode) {
      uint32_t i = op.index;
      ++stats_.netResolutions;
      if (g_.nets[i].multiDriven) ++stats_.contentionChecks;
      // Per-lane strength resolution: first active contribution wins,
      // two or more active contributions collide to UNDEF.
      LanePlanes res;
      uint64_t seen = 0, multi = 0;
      auto contribute = [&](LanePlanes c) {
        uint64_t act = c.p0 | c.p1;
        multi |= seen & act;
        res.p0 |= c.p0 & ~seen;
        res.p1 |= c.p1 & ~seen;
        seen |= act;
      };
      if (g_.nets[i].isInput && seeds.inputValues) {
        contribute((*seeds.inputValues)[i]);
      }
      for (uint32_t e = g_.driverStart[i]; e < g_.driverStart[i + 1]; ++e) {
        NodeId d = g_.driverNodes[e];
        uint32_t ri = scalar_.regIndexOf_[d];
        if (ri != LevelizedEvaluator::kNotReg) {
          contribute((*seeds.regValues)[ri]);
        } else {
          contribute(nodeStamp_[d] == epoch_
                         ? nodeOut_[d]
                         : lanesBroadcast(Logic::Undef, ~uint64_t{0}));
        }
      }
      res.p0 |= multi;  // colliding lanes resolve to UNDEF
      res.p1 |= multi;
      // Fault overlay, mirroring applyScalarFault() per lane: force modes
      // override the resolved value and count as an active driver; Flip
      // inverts only defined lanes; Contend collides to UNDEF.  A real
      // collision on a forced lane keeps its multi bit — the fault
      // overrides the value, not the contention report.
      if (seeds.faults && seeds.faults->any) {
        const BatchFaultPlan& fp = *seeds.faults;
        uint64_t f0 = fp.force0[i], f1 = fp.force1[i], fu = fp.forceUndef[i];
        uint64_t ff = fp.flip[i], fc = fp.contend[i];
        if (f0 | f1 | fu | ff | fc) {
          uint64_t forced = f0 | f1 | fu | fc;
          res.p0 = (res.p0 & ~forced) | f0 | fu | fc;
          res.p1 = (res.p1 & ~forced) | f1 | fu | fc;
          uint64_t def = (res.p0 ^ res.p1) & ff;
          res.p0 ^= def;
          res.p1 ^= def;
          seen |= forced;
          multi |= fc;
        }
      }
      out.netValues[i] = res;
      out.activeAny[i] = seen;
      out.activeMulti[i] = multi;
      if (multi & seeds.laneMask) out.collisions.push_back(i);
      continue;
    }

    NodeId ni = op.index;
    const Node& node = nl.node(ni);
    ++stats_.nodeFirings;
    LanePlanes v;
    switch (node.op) {
      case NodeOp::Const:
        v = lanesBroadcast(node.constVal, ~uint64_t{0});
        break;
      case NodeOp::Random: {
        uint64_t bits = 0;
        for (uint32_t l = 0; l < 64; ++l) {
          bits |= (xorshift((*seeds.rngStates)[l]) & 1) << l;
        }
        v = {~bits, bits};
        break;
      }
      case NodeOp::Buf: {
        v = out.netValues[g_.denseOf[node.inputs[0]]];
        if (g_.nets[g_.denseOf[node.output]].isBool) {
          uint64_t noinfl = ~(v.p0 | v.p1);
          v.p0 |= noinfl;
          v.p1 |= noinfl;
        }
        break;
      }
      case NodeOp::Not: {
        LanePlanes in =
            laneGateInput(out.netValues[g_.denseOf[node.inputs[0]]]);
        v = {in.p1, in.p0};
        break;
      }
      case NodeOp::And:
      case NodeOp::Nand: {
        v = {0, ~uint64_t{0}};
        for (NetId in : node.inputs) {
          LanePlanes c = laneGateInput(out.netValues[g_.denseOf[in]]);
          v.p0 |= c.p0;  // any input that can be 0 allows a 0 output
          v.p1 &= c.p1;  // a 1 output needs every input able to be 1
        }
        if (node.op == NodeOp::Nand) v = {v.p1, v.p0};
        break;
      }
      case NodeOp::Or:
      case NodeOp::Nor: {
        v = {~uint64_t{0}, 0};
        for (NetId in : node.inputs) {
          LanePlanes c = laneGateInput(out.netValues[g_.denseOf[in]]);
          v.p0 &= c.p0;
          v.p1 |= c.p1;
        }
        if (node.op == NodeOp::Nor) v = {v.p1, v.p0};
        break;
      }
      case NodeOp::Xor: {
        uint64_t allDef = ~uint64_t{0}, parity = 0;
        for (NetId in : node.inputs) {
          LanePlanes c = laneGateInput(out.netValues[g_.denseOf[in]]);
          allDef &= ~(c.p0 & c.p1);
          parity ^= c.p1 & ~c.p0;
        }
        v = {(~parity & allDef) | ~allDef, (parity & allDef) | ~allDef};
        break;
      }
      case NodeOp::Equal: {
        size_t m = node.inputs.size() / 2;
        uint64_t allDef = ~uint64_t{0}, anyUneq = 0;
        for (size_t k = 0; k < m; ++k) {
          LanePlanes a =
              laneGateInput(out.netValues[g_.denseOf[node.inputs[k]]]);
          LanePlanes b =
              laneGateInput(out.netValues[g_.denseOf[node.inputs[k + m]]]);
          uint64_t defPair = ~(a.p0 & a.p1) & ~(b.p0 & b.p1);
          allDef &= defPair;
          anyUneq |= defPair & ((a.p1 & ~a.p0) ^ (b.p1 & ~b.p0));
        }
        uint64_t one = allDef & ~anyUneq;
        v = {~one, ~anyUneq};
        break;
      }
      case NodeOp::Switch: {
        LanePlanes c =
            laneGateInput(out.netValues[g_.denseOf[node.inputs[0]]]);
        LanePlanes d = out.netValues[g_.denseOf[node.inputs[1]]];
        uint64_t cone = c.p1 & ~c.p0;
        uint64_t cundef = c.p0 & c.p1;
        v = {(cone & d.p0) | cundef, (cone & d.p1) | cundef};
        break;
      }
      case NodeOp::Reg:
        break;  // never scheduled
    }
    nodeOut_[ni] = v;
    nodeStamp_[ni] = epoch_;
  }
}

}  // namespace zeus

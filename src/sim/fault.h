// Deterministic fault injection (hardware faults) and parallel fault
// simulation campaigns.
//
// A FaultSpec models a classic VLSI defect on one net of the semantics
// graph: stuck-at-0/1 (a short to a rail), stuck-UNDEF (a floating or
// metastable node), a transient bit-flip over a cycle window (a single
// event upset), or forced contention (the §8 "burning transistors" fault
// raised on demand).  Faults are injected at net-resolution time in every
// evaluator — firing, naive, levelized and the 64-lane batch engine — so
// the faulty value propagates through downstream logic and register
// latching exactly like a real defect.
//
// On top of the injection hooks sits classic *parallel fault simulation*:
// lane 0 of a BatchSimulation runs the golden (fault-free) circuit while
// each remaining lane carries one candidate fault; all lanes see identical
// stimulus and one word-parallel walk evaluates golden plus up to 63
// faulty machines per cycle.  The campaign classifies every fault as
// detected (a definite difference on a primary output), masked (the fault
// perturbed internal state but never definitely reached an output) or
// undetected (it never changed any net value at all), and renders the
// result as a stable zeus-faults-v1 JSON report
// (docs/fault-injection.md).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/graph.h"
#include "src/support/logic.h"

namespace zeus {

/// The fault taxonomy (docs/fault-injection.md).
enum class FaultKind : uint8_t {
  StuckAt0 = 0,       ///< net permanently shorted to 0
  StuckAt1 = 1,       ///< net permanently shorted to 1
  StuckUndef = 2,     ///< net permanently undefined (floating node)
  TransientFlip = 3,  ///< defined values invert inside the cycle window
  ForcedContention = 4,  ///< net driven as if >=2 active drivers collided
};
inline constexpr uint8_t kFaultKindCount = 5;

[[nodiscard]] std::string_view faultKindName(FaultKind kind);

/// One fault on one net.  `denseNet` indexes the dense (alias-class root)
/// numbering of the SimGraph; the fault is active on cycles in
/// [fromCycle, toCycle] (stuck faults default to the whole run).
struct FaultSpec {
  FaultKind kind = FaultKind::StuckAt0;
  uint32_t denseNet = 0;
  uint64_t fromCycle = 0;
  uint64_t toCycle = ~uint64_t{0};

  [[nodiscard]] bool activeAt(uint64_t cycle) const {
    return cycle >= fromCycle && cycle <= toCycle;
  }
};

/// Resolves a net name to a FaultSpec; nullopt when the name is unknown.
[[nodiscard]] std::optional<FaultSpec> makeFault(
    const SimGraph& graph, FaultKind kind, const std::string& netName,
    uint64_t fromCycle = 0, uint64_t toCycle = ~uint64_t{0});

// ---------------------------------------------------------------------
// Per-cycle injection overlays (the evaluator-facing representation)
// ---------------------------------------------------------------------

/// What to do to one net's resolved value this cycle.
enum class FaultMode : uint8_t {
  None = 0,
  Force0,      ///< value := 0, net counts as actively driven
  Force1,      ///< value := 1, net counts as actively driven
  ForceUndef,  ///< value := UNDEF, net counts as actively driven
  Flip,        ///< 0 <-> 1; UNDEF/NOINFL pass through unchanged
  Contend,     ///< value := UNDEF, reported as a SimContention collision
};

[[nodiscard]] FaultMode faultModeOf(FaultKind kind);

/// Scalar overlay: one mode per dense net for the cycle being evaluated.
/// Evaluators treat a null/empty plan as fault-free; the only hot-path
/// cost when no faults are injected is one pointer test per cycle.
struct FaultPlan {
  std::vector<FaultMode> mode;  ///< per dense net; empty = no faults
  bool any = false;
};

/// Batch overlay: per dense net, one 64-bit lane mask per fault mode.
struct BatchFaultPlan {
  std::vector<uint64_t> force0;
  std::vector<uint64_t> force1;
  std::vector<uint64_t> forceUndef;
  std::vector<uint64_t> flip;
  std::vector<uint64_t> contend;
  bool any = false;

  void resize(size_t denseCount) {
    force0.assign(denseCount, 0);
    force1.assign(denseCount, 0);
    forceUndef.assign(denseCount, 0);
    flip.assign(denseCount, 0);
    contend.assign(denseCount, 0);
  }
  void clearNet(uint32_t dn) {
    force0[dn] = force1[dn] = forceUndef[dn] = flip[dn] = contend[dn] = 0;
  }
};

/// Applies one fault mode to a resolved net value (shared by the three
/// scalar evaluators so their faulty runs stay bit-identical).  Force
/// modes make the net count as actively driven (a shorted rail drives);
/// Contend raises the active count to a colliding 2 so the §8 runtime
/// check fires.  A pre-existing real collision keeps its active count —
/// the fault overrides the value, not the contention report.
inline Logic applyScalarFault(FaultMode mode, Logic v, uint32_t& active) {
  switch (mode) {
    case FaultMode::None:
      return v;
    case FaultMode::Force0:
      if (active == 0) active = 1;
      return Logic::Zero;
    case FaultMode::Force1:
      if (active == 0) active = 1;
      return Logic::One;
    case FaultMode::ForceUndef:
      if (active == 0) active = 1;
      return Logic::Undef;
    case FaultMode::Flip:
      if (v == Logic::Zero) return Logic::One;
      if (v == Logic::One) return Logic::Zero;
      return v;
    case FaultMode::Contend:
      if (active < 2) active = 2;
      return Logic::Undef;
  }
  return v;
}

// ---------------------------------------------------------------------
// Fault-simulation campaigns
// ---------------------------------------------------------------------

/// Classification of one simulated fault.
struct FaultOutcome {
  FaultSpec spec;
  std::string net;  ///< resolved name of the faulted net
  enum class Status : uint8_t { Undetected = 0, Masked = 1, Detected = 2 };
  Status status = Status::Undetected;
  uint64_t firstDetectCycle = 0;  ///< valid when status == Detected
  std::string detector;  ///< output bit that first saw the fault, "s[3]"
  uint64_t simErrors = 0;  ///< SimError records on the fault's lane
};

[[nodiscard]] std::string_view faultStatusName(FaultOutcome::Status s);

/// Resumable campaign state: how far the fault universe has been swept
/// plus every finished classification.  Serialized by
/// src/sim/snapshot.{h,cpp} as the campaign-progress checkpoint kind.
struct CampaignProgress {
  uint64_t designHash = 0;  ///< designContentHash of the campaign's design
  uint64_t cycles = 0;
  uint64_t seed = 0;
  uint32_t lanes = 0;
  uint64_t totalFaults = 0;
  uint64_t nextFault = 0;  ///< first fault index not yet classified
  std::vector<FaultOutcome> done;
};

struct FaultCampaignOptions {
  /// Clock cycles simulated per fault batch (cycle 0 pulses RSET, the
  /// rest drive seeded pseudo-random primary-input vectors).
  uint64_t cycles = 32;
  uint64_t seed = 0xC0FFEEull;
  /// Lanes per batch (2..64): lane 0 is golden, the rest carry faults.
  size_t lanes = 64;
  /// Wall-clock budget; 0 = unlimited.  Exhaustion stops the campaign at
  /// a batch boundary with report.interrupted set (the checkpoint hook
  /// fires first, so the run can resume).
  uint64_t maxMillis = 0;
  /// Emit a CampaignProgress checkpoint every N completed batches
  /// (0 = never).  Also fired on a budget interruption.
  uint64_t checkpointEveryBatches = 0;
  std::function<void(const CampaignProgress&)> onCheckpoint;
  /// Called after every evaluated batch cycle with the cumulative count —
  /// the crash-injection hook behind `zeusc --die-at-cycle`.
  std::function<void(uint64_t evaluatedCycles)> onCycle;
  /// Faults to simulate; empty = the default universe of stuck-at-0 and
  /// stuck-at-1 on every dense net, in dense order.
  std::vector<FaultSpec> universe;
};

struct FaultCampaignReport {
  std::string design;
  uint64_t cycles = 0;
  uint64_t seed = 0;
  uint32_t lanes = 0;
  uint64_t totalBatches = 0;     ///< of the full universe
  uint64_t evaluatedCycles = 0;  ///< batch cycles run by *this* process
  bool interrupted = false;      ///< stopped by the wall-clock budget
  std::vector<FaultOutcome> faults;  ///< one per universe entry, in order

  [[nodiscard]] uint64_t countOf(FaultOutcome::Status s) const;
  /// Fault coverage: detected / total (0 when the universe is empty).
  [[nodiscard]] double coverage() const;
  /// The zeus-faults-v1 JSON document (docs/fault-injection.md).  Fully
  /// deterministic — no timestamps or process-local counters — so a
  /// resumed campaign renders byte-identically to a straight run.
  [[nodiscard]] std::string renderJson() const;
};

/// The default stuck-at universe: SA0 then SA1 on every dense net.
[[nodiscard]] std::vector<FaultSpec> defaultFaultUniverse(
    const SimGraph& graph);

/// Runs (or resumes) a parallel fault-simulation campaign.  Deterministic:
/// every batch derives its stimulus from (seed, batch index) alone, so a
/// resume from a checkpoint reproduces the straight run bit-for-bit.
/// `resume`, when given, must match the campaign parameters (cycles, seed,
/// universe size) — std::invalid_argument otherwise.
[[nodiscard]] FaultCampaignReport runFaultCampaign(
    const SimGraph& graph, const FaultCampaignOptions& opts,
    const CampaignProgress* resume = nullptr);

}  // namespace zeus

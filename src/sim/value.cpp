#include "src/sim/value.h"

#include <cassert>

namespace zeus {

Logic gateInput(Logic v) { return v == Logic::NoInfl ? Logic::Undef : v; }

Logic evalGate(NodeOp op, std::span<const Logic> inputs) {
  switch (op) {
    case NodeOp::Buf:
      assert(inputs.size() == 1);
      return inputs[0];
    case NodeOp::Not: {
      assert(inputs.size() == 1);
      Logic v = gateInput(inputs[0]);
      if (v == Logic::Zero) return Logic::One;
      if (v == Logic::One) return Logic::Zero;
      return Logic::Undef;
    }
    case NodeOp::And:
    case NodeOp::Nand: {
      bool anyZero = false, allOnes = true;
      for (Logic raw : inputs) {
        Logic v = gateInput(raw);
        if (v == Logic::Zero) anyZero = true;
        if (v != Logic::One) allOnes = false;
      }
      Logic out = anyZero  ? Logic::Zero
                  : allOnes ? Logic::One
                            : Logic::Undef;
      if (op == NodeOp::Nand && isDefined(out))
        out = out == Logic::Zero ? Logic::One : Logic::Zero;
      return out;
    }
    case NodeOp::Or:
    case NodeOp::Nor: {
      bool anyOne = false, allZeros = true;
      for (Logic raw : inputs) {
        Logic v = gateInput(raw);
        if (v == Logic::One) anyOne = true;
        if (v != Logic::Zero) allZeros = false;
      }
      Logic out = anyOne    ? Logic::One
                  : allZeros ? Logic::Zero
                             : Logic::Undef;
      if (op == NodeOp::Nor && isDefined(out))
        out = out == Logic::Zero ? Logic::One : Logic::Zero;
      return out;
    }
    case NodeOp::Xor: {
      // Parity; defined only when every input is defined (§8).
      bool parity = false;
      for (Logic raw : inputs) {
        Logic v = gateInput(raw);
        if (!isDefined(v)) return Logic::Undef;
        parity ^= (v == Logic::One);
      }
      return logicFromBool(parity);
    }
    default:
      assert(false && "not a simple gate");
      return Logic::Undef;
  }
}

Logic evalEqual(std::span<const Logic> a, std::span<const Logic> b) {
  assert(a.size() == b.size());
  bool allDefined = true;
  for (size_t i = 0; i < a.size(); ++i) {
    Logic x = gateInput(a[i]);
    Logic y = gateInput(b[i]);
    if (isDefined(x) && isDefined(y)) {
      if (x != y) return Logic::Zero;  // definitely unequal
    } else {
      allDefined = false;
    }
  }
  return allDefined ? Logic::One : Logic::Undef;
}

Logic evalSwitch(Logic cond, Logic data) {
  Logic c = gateInput(cond);
  if (c == Logic::Zero) return Logic::NoInfl;
  if (c == Logic::One) return data;
  return Logic::Undef;
}

bool gateCanFire(NodeOp op, const GateCounters& c, uint32_t total,
                 Logic& out) {
  switch (op) {
    case NodeOp::And:
    case NodeOp::Nand: {
      bool inv = op == NodeOp::Nand;
      if (c.zeros > 0) {
        out = inv ? Logic::One : Logic::Zero;
        return true;
      }
      if (c.known == total) {
        out = c.ones == total ? (inv ? Logic::Zero : Logic::One)
                              : Logic::Undef;
        return true;
      }
      return false;
    }
    case NodeOp::Or:
    case NodeOp::Nor: {
      bool inv = op == NodeOp::Nor;
      if (c.ones > 0) {
        out = inv ? Logic::Zero : Logic::One;
        return true;
      }
      if (c.known == total) {
        out = c.zeros == total ? (inv ? Logic::One : Logic::Zero)
                               : Logic::Undef;
        return true;
      }
      return false;
    }
    default:
      return false;  // other node kinds use their own firing rules
  }
}

}  // namespace zeus

#include "src/sim/snapshot.h"

#include <cstdio>
#include <cstring>

#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace zeus {

namespace {

metrics::Counter snapshotSaves("snapshot-saves");
metrics::Counter snapshotLoads("snapshot-loads");

// -- FNV-1a ------------------------------------------------------------

constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001B3ull;

void fnv(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
}

void fnvStr(uint64_t& h, const std::string& s) {
  fnv(h, s.size());
  for (unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
}

// -- byte cursor -------------------------------------------------------

struct Writer {
  std::vector<uint8_t> bytes;

  void u8(uint8_t v) { bytes.push_back(v); }
  void u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back((v >> (i * 8)) & 0xFF);
  }
  void u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back((v >> (i * 8)) & 0xFF);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes.insert(bytes.end(), s.begin(), s.end());
  }
};

/// Bounds-checked reader: every accessor fails (and records a message)
/// instead of reading past the end.  Counts are checked against the
/// remaining bytes BEFORE any allocation, so a corrupt header can never
/// request a gigabyte vector from a 40-byte file.
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;
  std::string error;

  bool fail(const char* what) {
    if (error.empty()) {
      error = std::string("corrupt snapshot: ") + what + " at byte " +
              std::to_string(pos);
    }
    return false;
  }
  bool need(size_t n) {
    if (size - pos < n) return fail("truncated data");
    return true;
  }
  bool u8(uint8_t& v) {
    if (!need(1)) return false;
    v = data[pos++];
    return true;
  }
  bool u32(uint32_t& v) {
    if (!need(4)) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t{data[pos++]} << (i * 8);
    return true;
  }
  bool u64(uint64_t& v) {
    if (!need(8)) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{data[pos++]} << (i * 8);
    return true;
  }
  /// Reads a count that predicts at least `elemSize` bytes per element.
  bool count(uint64_t& n, size_t elemSize) {
    if (!u64(n)) return false;
    if (elemSize && n > (size - pos) / elemSize) return fail("oversized count");
    return true;
  }
  bool str(std::string& s) {
    uint64_t n;
    if (!count(n, 1)) return false;
    s.assign(reinterpret_cast<const char*>(data + pos),
             static_cast<size_t>(n));
    pos += static_cast<size_t>(n);
    return true;
  }
};

void writeHeader(Writer& w, SnapshotKind kind, uint64_t designHash) {
  w.u32(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  w.u8(static_cast<uint8_t>(kind));
  w.u64(designHash);
}

bool readHeader(Reader& r, SnapshotKind expected, uint64_t& designHash) {
  uint32_t magic, version;
  uint8_t kind;
  if (!r.u32(magic)) return false;
  if (magic != kSnapshotMagic) return r.fail("bad magic (not a ZSNP file)");
  if (!r.u32(version)) return false;
  if (version != kSnapshotVersion) return r.fail("unsupported version");
  if (!r.u8(kind)) return false;
  if (kind > static_cast<uint8_t>(SnapshotKind::FarmState)) {
    return r.fail("unknown snapshot kind");
  }
  if (kind != static_cast<uint8_t>(expected)) {
    return r.fail("snapshot kind does not match this operation");
  }
  return r.u64(designHash);
}

void writeStats(Writer& w, const EvalStats& s) {
  w.u64(s.nodeFirings);
  w.u64(s.inputEvents);
  w.u64(s.sweeps);
  w.u64(s.netResolutions);
  w.u64(s.shortCircuitSkips);
  w.u64(s.contentionChecks);
  w.u64(s.epochResets);
  w.u64(s.watchdogMarginMin);
}

bool readStats(Reader& r, EvalStats& s) {
  return r.u64(s.nodeFirings) && r.u64(s.inputEvents) && r.u64(s.sweeps) &&
         r.u64(s.netResolutions) && r.u64(s.shortCircuitSkips) &&
         r.u64(s.contentionChecks) && r.u64(s.epochResets) &&
         r.u64(s.watchdogMarginMin);
}

void writeErrors(Writer& w, const std::vector<SimError>& errors) {
  w.u64(errors.size());
  for (const SimError& e : errors) {
    w.u64(e.cycle);
    w.u32(static_cast<uint32_t>(e.code));
    w.u32(static_cast<uint32_t>(e.lane));
    w.str(e.netName);
    w.str(e.message);
  }
}

bool readErrors(Reader& r, std::vector<SimError>& errors) {
  uint64_t n;
  // Each error is at least 8+4+4+8+8 bytes.
  if (!r.count(n, 32)) return false;
  errors.clear();
  errors.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    SimError e{0, Diag::SimContention, "", "", -1};
    uint32_t code, lane;
    if (!r.u64(e.cycle) || !r.u32(code) || !r.u32(lane) || !r.str(e.netName) ||
        !r.str(e.message)) {
      return false;
    }
    e.code = static_cast<Diag>(code);
    e.lane = static_cast<int32_t>(lane);
    errors.push_back(std::move(e));
  }
  return true;
}

bool validLogic(uint8_t v) { return v <= 3; }

void writeLogicVec(Writer& w, const std::vector<Logic>& v) {
  w.u64(v.size());
  for (Logic x : v) w.u8(static_cast<uint8_t>(x));
}

bool readLogicVec(Reader& r, std::vector<Logic>& v) {
  uint64_t n;
  if (!r.count(n, 1)) return false;
  v.resize(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    uint8_t b;
    if (!r.u8(b)) return false;
    if (!validLogic(b)) return r.fail("invalid logic value");
    v[i] = static_cast<Logic>(b);
  }
  return true;
}

/// Header-less SimSnapshot payload, shared between the standalone
/// SimState format and the per-lane entries of a FarmState checkpoint.
void writeSimBody(Writer& w, const SimSnapshot& snap) {
  w.u64(snap.cycle);
  w.u64(snap.rngState);
  writeStats(w, snap.stats);
  writeLogicVec(w, snap.regValues);
  writeLogicVec(w, snap.inputValues);
  w.u64(snap.inputSet.size());
  for (char c : snap.inputSet) w.u8(c ? 1 : 0);
  writeErrors(w, snap.errors);
}

bool readSimBody(Reader& r, SimSnapshot& out) {
  bool ok = r.u64(out.cycle) && r.u64(out.rngState) &&
            readStats(r, out.stats) && readLogicVec(r, out.regValues) &&
            readLogicVec(r, out.inputValues);
  if (ok) {
    uint64_t n;
    ok = r.count(n, 1);
    if (ok) {
      out.inputSet.resize(static_cast<size_t>(n));
      for (uint64_t i = 0; i < n && ok; ++i) {
        uint8_t b;
        ok = r.u8(b);
        if (ok && b > 1) ok = r.fail("invalid input-set flag");
        if (ok) out.inputSet[i] = static_cast<char>(b);
      }
    }
  }
  return ok && readErrors(r, out.errors);
}

bool writeFile(const std::string& path, const std::vector<uint8_t>& bytes,
               std::string& error) {
  // Atomic publish: write to a sibling temp file, then rename over the
  // target.  A crash mid-write leaves only the temp file behind, so a
  // reader never observes a torn checkpoint.
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    error = "cannot open '" + tmp + "' for writing";
    return false;
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = std::fflush(f) == 0 && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    error = "short write to '" + tmp + "'";
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    error = "cannot rename '" + tmp + "' to '" + path + "'";
    std::remove(tmp.c_str());
    return false;
  }
  snapshotSaves.add();
  return true;
}

bool readFile(const std::string& path, std::vector<uint8_t>& bytes,
              std::string& error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    error = "cannot open '" + path + "'";
    return false;
  }
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return true;
}

}  // namespace

uint64_t designContentHash(const Design& design) {
  const Netlist& nl = design.netlist;
  uint64_t h = kFnvOffset;
  fnvStr(h, design.topName);
  fnv(h, nl.netCount());
  for (const Net& net : nl.nets()) {
    fnvStr(h, net.name);
    fnv(h, static_cast<uint64_t>(net.kind));
  }
  fnv(h, nl.nodeCount());
  for (const Node& node : nl.nodes()) {
    fnv(h, static_cast<uint64_t>(node.op));
    fnv(h, static_cast<uint64_t>(node.constVal));
    fnv(h, node.output);
    fnv(h, node.inputs.size());
    for (NetId in : node.inputs) fnv(h, in);
  }
  // Optimized designs use different dense-net numbering, so a checkpoint
  // written at one -O level must never restore at another: fold the pass
  // pipeline's fingerprint in.  Zero (unoptimized) keeps the hash
  // backward compatible with pre-optimizer snapshots.
  if (design.optFingerprint) fnv(h, design.optFingerprint);
  return h ? h : 1;  // 0 means "don't check" in restoreSnapshot
}

bool snapshotKindOfBytes(const uint8_t* data, size_t size, SnapshotKind& out,
                         std::string& error) {
  Reader r{data, size, 0, {}};
  uint32_t magic, version;
  uint8_t kind;
  bool ok = r.u32(magic) && magic == kSnapshotMagic && r.u32(version) &&
            version == kSnapshotVersion && r.u8(kind) &&
            kind <= static_cast<uint8_t>(SnapshotKind::FarmState);
  if (!ok) {
    error = r.error.empty() ? "not a ZSNP checkpoint (bad magic, version "
                              "or kind)"
                            : r.error;
    return false;
  }
  out = static_cast<SnapshotKind>(kind);
  return true;
}

std::vector<uint8_t> snapshotToBytes(const SimSnapshot& snap) {
  ZEUS_TRACE_SPAN("checkpoint-save", "sim");
  Writer w;
  writeHeader(w, SnapshotKind::SimState, snap.designHash);
  writeSimBody(w, snap);
  return std::move(w.bytes);
}

bool snapshotFromBytes(const uint8_t* data, size_t size, SimSnapshot& out,
                       std::string& error) {
  ZEUS_TRACE_SPAN("checkpoint-load", "sim");
  Reader r{data, size, 0, {}};
  bool ok = readHeader(r, SnapshotKind::SimState, out.designHash) &&
            readSimBody(r, out);
  if (ok && r.pos != r.size) ok = r.fail("trailing bytes");
  if (!ok) {
    error = r.error.empty() ? "corrupt snapshot" : r.error;
    return false;
  }
  snapshotLoads.add();
  return true;
}

bool saveSnapshotFile(const std::string& path, const SimSnapshot& snap,
                      std::string& error) {
  return writeFile(path, snapshotToBytes(snap), error);
}

bool loadSnapshotFile(const std::string& path, SimSnapshot& out,
                      std::string& error) {
  std::vector<uint8_t> bytes;
  if (!readFile(path, bytes, error)) return false;
  return snapshotFromBytes(bytes.data(), bytes.size(), out, error);
}

std::vector<uint8_t> farmToBytes(const FarmSnapshot& snap) {
  ZEUS_TRACE_SPAN("checkpoint-save", "sim");
  Writer w;
  writeHeader(w, SnapshotKind::FarmState, snap.designHash);
  w.u64(snap.cycle);
  w.u64(snap.seed);
  w.u32(snap.totalLanes);
  w.u32(snap.lanesPerBlock);
  writeStats(w, snap.stats);
  w.u64(snap.checksums.size());
  for (uint64_t c : snap.checksums) w.u64(c);
  w.u64(snap.lanes.size());
  for (const SimSnapshot& lane : snap.lanes) writeSimBody(w, lane);
  return std::move(w.bytes);
}

bool farmFromBytes(const uint8_t* data, size_t size, FarmSnapshot& out,
                   std::string& error) {
  ZEUS_TRACE_SPAN("checkpoint-load", "sim");
  Reader r{data, size, 0, {}};
  bool ok = readHeader(r, SnapshotKind::FarmState, out.designHash) &&
            r.u64(out.cycle) && r.u64(out.seed) && r.u32(out.totalLanes) &&
            r.u32(out.lanesPerBlock) && readStats(r, out.stats);
  if (ok && out.totalLanes == 0) ok = r.fail("zero farm lanes");
  if (ok && (out.lanesPerBlock < 1 || out.lanesPerBlock > 64)) {
    ok = r.fail("bad lanes-per-block");
  }
  uint64_t n = 0;
  ok = ok && r.count(n, 8);
  if (ok && n != out.totalLanes) ok = r.fail("checksum count != lane count");
  if (ok) {
    out.checksums.resize(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n && ok; ++i) ok = r.u64(out.checksums[i]);
  }
  // Each lane body is at least 16 (cycle+rng) + 64 (stats) + 3*8 (vector
  // counts) + 8 (error count) bytes.
  ok = ok && r.count(n, 112);
  if (ok && n != out.totalLanes) ok = r.fail("lane count mismatch");
  if (ok) {
    out.lanes.clear();
    out.lanes.resize(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n && ok; ++i) {
      ok = readSimBody(r, out.lanes[i]);
      if (ok && out.lanes[i].cycle != out.cycle) {
        ok = r.fail("lane cycle disagrees with farm cycle");
      }
      if (ok) out.lanes[i].designHash = out.designHash;
    }
  }
  if (ok && r.pos != r.size) ok = r.fail("trailing bytes");
  if (!ok) {
    error = r.error.empty() ? "corrupt farm checkpoint" : r.error;
    return false;
  }
  snapshotLoads.add();
  return true;
}

bool saveFarmFile(const std::string& path, const FarmSnapshot& snap,
                  std::string& error) {
  return writeFile(path, farmToBytes(snap), error);
}

bool loadFarmFile(const std::string& path, FarmSnapshot& out,
                  std::string& error) {
  std::vector<uint8_t> bytes;
  if (!readFile(path, bytes, error)) return false;
  return farmFromBytes(bytes.data(), bytes.size(), out, error);
}

std::vector<uint8_t> campaignToBytes(const CampaignProgress& progress) {
  ZEUS_TRACE_SPAN("checkpoint-save", "sim");
  Writer w;
  writeHeader(w, SnapshotKind::CampaignProgress, progress.designHash);
  w.u64(progress.cycles);
  w.u64(progress.seed);
  w.u32(progress.lanes);
  w.u64(progress.totalFaults);
  w.u64(progress.nextFault);
  w.u64(progress.done.size());
  for (const FaultOutcome& o : progress.done) {
    w.u8(static_cast<uint8_t>(o.spec.kind));
    w.u32(o.spec.denseNet);
    w.u64(o.spec.fromCycle);
    w.u64(o.spec.toCycle);
    w.str(o.net);
    w.u8(static_cast<uint8_t>(o.status));
    w.u64(o.firstDetectCycle);
    w.str(o.detector);
    w.u64(o.simErrors);
  }
  return std::move(w.bytes);
}

bool campaignFromBytes(const uint8_t* data, size_t size,
                       CampaignProgress& out, std::string& error) {
  ZEUS_TRACE_SPAN("checkpoint-load", "sim");
  Reader r{data, size, 0, {}};
  bool ok = readHeader(r, SnapshotKind::CampaignProgress, out.designHash) &&
            r.u64(out.cycles) && r.u64(out.seed) && r.u32(out.lanes) &&
            r.u64(out.totalFaults) && r.u64(out.nextFault);
  if (ok && out.nextFault > out.totalFaults) ok = r.fail("bad fault cursor");
  if (ok && (out.lanes < 2 || out.lanes > 64)) ok = r.fail("bad lane count");
  uint64_t n = 0;
  // Each outcome is at least 1+4+8+8+8+1+8+8+8 bytes.
  ok = ok && r.count(n, 54);
  if (ok && n != out.nextFault) ok = r.fail("outcome count != fault cursor");
  if (ok) {
    out.done.clear();
    out.done.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n && ok; ++i) {
      FaultOutcome o;
      uint8_t kind, status;
      ok = r.u8(kind) && r.u32(o.spec.denseNet) && r.u64(o.spec.fromCycle) &&
           r.u64(o.spec.toCycle) && r.str(o.net) && r.u8(status) &&
           r.u64(o.firstDetectCycle) && r.str(o.detector) &&
           r.u64(o.simErrors);
      if (ok && kind >= kFaultKindCount) ok = r.fail("invalid fault kind");
      if (ok && status > 2) ok = r.fail("invalid fault status");
      if (ok) {
        o.spec.kind = static_cast<FaultKind>(kind);
        o.status = static_cast<FaultOutcome::Status>(status);
        out.done.push_back(std::move(o));
      }
    }
  }
  if (ok && r.pos != r.size) ok = r.fail("trailing bytes");
  if (!ok) {
    error = r.error.empty() ? "corrupt campaign checkpoint" : r.error;
    return false;
  }
  snapshotLoads.add();
  return true;
}

bool saveCampaignFile(const std::string& path,
                      const CampaignProgress& progress, std::string& error) {
  return writeFile(path, campaignToBytes(progress), error);
}

bool loadCampaignFile(const std::string& path, CampaignProgress& out,
                      std::string& error) {
  std::vector<uint8_t> bytes;
  if (!readFile(path, bytes, error)) return false;
  return campaignFromBytes(bytes.data(), bytes.size(), out, error);
}

}  // namespace zeus

#include "src/sim/wave.h"

#include <cctype>
#include <stdexcept>

namespace zeus {

void WaveRecorder::watchPort(const std::string& port,
                             const std::string& label) {
  const Port* p = sim_.design().findPort(port);
  if (!p) throw std::invalid_argument("no port named '" + port + "'");
  for (size_t i = 0; i < p->nets.size(); ++i) {
    Track t;
    t.label = (label.empty() ? port : label);
    if (p->nets.size() > 1) t.label += "[" + std::to_string(i + 1) + "]";
    t.nets = {p->nets[i]};
    tracks_.push_back(std::move(t));
  }
}

void WaveRecorder::watchNet(NetId net, const std::string& label) {
  Track t;
  t.label = label;
  if (t.label.empty()) {
    // Default to the netlist name so the VCD $var is never nameless.
    const Netlist& nl = sim_.design().netlist;
    if (net < nl.netCount()) t.label = nl.net(net).name;
    if (t.label.empty()) t.label = "net<" + std::to_string(net) + ">";
  }
  t.nets = {net};
  tracks_.push_back(std::move(t));
}

void WaveRecorder::sample() {
  for (Track& t : tracks_) {
    t.history.push_back(sim_.netValue(t.nets[0]));
  }
  ++samples_;
}

std::string WaveRecorder::renderTable() const {
  size_t width = 0;
  for (const Track& t : tracks_) width = std::max(width, t.label.size());
  std::string out;
  for (const Track& t : tracks_) {
    out += t.label;
    out.append(width - t.label.size() + 1, ' ');
    out += "| ";
    for (Logic v : t.history) {
      switch (v) {
        case Logic::Zero: out += '0'; break;
        case Logic::One: out += '1'; break;
        case Logic::Undef: out += 'x'; break;
        case Logic::NoInfl: out += 'z'; break;
      }
      out += ' ';
    }
    out += '\n';
  }
  return out;
}

namespace {

char vcdChar(Logic v) {
  switch (v) {
    case Logic::Zero: return '0';
    case Logic::One: return '1';
    case Logic::Undef: return 'x';
    case Logic::NoInfl: return 'z';
  }
  return 'x';
}

/// VCD reference names allow [a-zA-Z0-9_$] identifiers with an optional
/// trailing " [index]" bit-select.  Labels like "sum[1]" become
/// "sum [1]"; any other illegal character becomes '_' so gtkwave-style
/// parsers accept the file.
std::string vcdReference(const std::string& label) {
  std::string base = label;
  std::string select;
  size_t open = label.find_last_of('[');
  if (open != std::string::npos && !label.empty() &&
      label.back() == ']' && open > 0) {
    bool digits = open + 1 < label.size() - 1;
    for (size_t i = open + 1; i + 1 < label.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(label[i]))) {
        digits = false;
        break;
      }
    }
    if (digits) {
      base = label.substr(0, open);
      select = " " + label.substr(open);
    }
  }
  for (char& c : base) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '$') {
      c = '_';
    }
  }
  if (base.empty()) base = "_";
  return base + select;
}

}  // namespace

std::string WaveRecorder::renderVcd(const std::string& module) const {
  // Full VCD header (IEEE 1364 §18.2): $date / $version / $timescale.
  // The date text is fixed so two runs of the same stimulus produce
  // byte-identical files (golden tests diff the output).
  std::string out =
      "$date\n  (deterministic run)\n$end\n"
      "$version\n  Zeus WaveRecorder\n$end\n"
      "$timescale\n  1ns\n$end\n"
      "$scope module " + module + " $end\n";
  for (size_t i = 0; i < tracks_.size(); ++i) {
    out += "$var wire 1 s" + std::to_string(i) + " " +
           vcdReference(tracks_[i].label) + " $end\n";
  }
  out += "$upscope $end\n$enddefinitions $end\n";
  if (samples_ == 0) return out;
  // Initial-value block at time 0, then value *changes* only.
  out += "#0\n$dumpvars\n";
  for (size_t i = 0; i < tracks_.size(); ++i) {
    out += std::string(1, vcdChar(tracks_[i].history[0])) + "s" +
           std::to_string(i) + "\n";
  }
  out += "$end\n";
  for (size_t c = 1; c < samples_; ++c) {
    bool stamped = false;
    for (size_t i = 0; i < tracks_.size(); ++i) {
      if (tracks_[i].history[c] == tracks_[i].history[c - 1]) continue;
      if (!stamped) {
        out += "#" + std::to_string(c) + "\n";
        stamped = true;
      }
      out += std::string(1, vcdChar(tracks_[i].history[c])) + "s" +
             std::to_string(i) + "\n";
    }
  }
  return out;
}

}  // namespace zeus

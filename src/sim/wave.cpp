#include "src/sim/wave.h"

#include <stdexcept>

namespace zeus {

void WaveRecorder::watchPort(const std::string& port,
                             const std::string& label) {
  const Port* p = sim_.design().findPort(port);
  if (!p) throw std::invalid_argument("no port named '" + port + "'");
  for (size_t i = 0; i < p->nets.size(); ++i) {
    Track t;
    t.label = (label.empty() ? port : label);
    if (p->nets.size() > 1) t.label += "[" + std::to_string(i + 1) + "]";
    t.nets = {p->nets[i]};
    tracks_.push_back(std::move(t));
  }
}

void WaveRecorder::watchNet(NetId net, const std::string& label) {
  Track t;
  t.label = label;
  t.nets = {net};
  tracks_.push_back(std::move(t));
}

void WaveRecorder::sample() {
  for (Track& t : tracks_) {
    t.history.push_back(sim_.netValue(t.nets[0]));
  }
  ++samples_;
}

std::string WaveRecorder::renderTable() const {
  size_t width = 0;
  for (const Track& t : tracks_) width = std::max(width, t.label.size());
  std::string out;
  for (const Track& t : tracks_) {
    out += t.label;
    out.append(width - t.label.size() + 1, ' ');
    out += "| ";
    for (Logic v : t.history) {
      switch (v) {
        case Logic::Zero: out += '0'; break;
        case Logic::One: out += '1'; break;
        case Logic::Undef: out += 'x'; break;
        case Logic::NoInfl: out += 'z'; break;
      }
      out += ' ';
    }
    out += '\n';
  }
  return out;
}

std::string WaveRecorder::renderVcd(const std::string& module) const {
  std::string out = "$timescale 1ns $end\n$scope module " + module +
                    " $end\n";
  for (size_t i = 0; i < tracks_.size(); ++i) {
    out += "$var wire 1 s" + std::to_string(i) + " " + tracks_[i].label +
           " $end\n";
  }
  out += "$upscope $end\n$enddefinitions $end\n";
  for (size_t c = 0; c < samples_; ++c) {
    out += "#" + std::to_string(c) + "\n";
    for (size_t i = 0; i < tracks_.size(); ++i) {
      char ch = 'x';
      switch (tracks_[i].history[c]) {
        case Logic::Zero: ch = '0'; break;
        case Logic::One: ch = '1'; break;
        case Logic::Undef: ch = 'x'; break;
        case Logic::NoInfl: ch = 'z'; break;
      }
      out += std::string(1, ch) + "s" + std::to_string(i) + "\n";
    }
  }
  return out;
}

}  // namespace zeus

// Cycle-accurate simulation of an elaborated Zeus design (§5, §8).
//
// Time proceeds in discrete clock cycles.  Each step() evaluates every
// signal once (firing rules or the naive baseline), records runtime errors
// (multiple active drivers on one signal — the "burning transistors"
// check), then latches every REG: a register keeps its value when its
// input was not changed during the cycle.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/fault.h"
#include "src/sim/firing_evaluator.h"
#include "src/sim/levelized_evaluator.h"
#include "src/sim/naive_evaluator.h"
#include "src/support/diagnostics.h"
#include "src/support/limits.h"
#include "src/support/metrics.h"

namespace zeus {

namespace codegen {
class CompiledDesign;
class CompiledScalarEvaluator;
}  // namespace codegen

/// Firing: event-driven §8 firing rules (short-circuit, one pass).
/// Naive: sweep-to-fixpoint baseline (ablation partner).
/// Levelized: statically scheduled linear walk (fastest interpreter; also
/// the engine under the 64-lane BatchSimulation facade in
/// src/core/batch_sim.h).
/// Compiled: native code emitted and hot-loaded per design
/// (src/codegen/compiled.h); requires Options::compiled — falls back to
/// Levelized when none is supplied.
enum class EvaluatorKind { Firing, Naive, Levelized, Compiled };

/// A runtime fault recorded during simulation.  Faults never abort the
/// run; they accumulate in Simulation::errors() with a stable Diag code
/// (SimContention, SimWatchdog, SimWallClock) so callers and tests can
/// match on them like any other diagnostic.
struct SimError {
  uint64_t cycle;
  Diag code;
  std::string netName;  ///< empty for faults not tied to one net
  std::string message;
  int32_t lane = -1;  ///< stimulus lane (BatchSimulation); -1 = scalar

  friend bool operator==(const SimError&, const SimError&) = default;
};

/// Complete simulation state at a cycle boundary: everything needed to
/// resume a run bit-identically — registers, pending inputs, the RANDOM
/// stream, the cycle count, accumulated SimErrors, cumulative evaluator
/// counters, and a content hash of the design the state belongs to.
/// Binary (de)serialization with versioning lives in src/sim/snapshot.h;
/// this struct is the in-memory form.
struct SimSnapshot {
  uint64_t designHash = 0;  ///< designContentHash() of the source design
  uint64_t cycle = 0;
  uint64_t rngState = 0;
  EvalStats stats;                ///< cumulative counters at save time
  std::vector<Logic> regValues;   ///< per graph.regNodes index
  std::vector<Logic> inputValues; ///< per dense net (pending inputs)
  std::vector<char> inputSet;
  std::vector<SimError> errors;   ///< accumulated up to the snapshot
};

class Simulation {
 public:
  struct Options {
    EvaluatorKind evaluator = EvaluatorKind::Firing;
    /// Firing watchdog: abort a cycle after this many input-arrival
    /// events (0 = automatic, see CycleSeeds::eventBudget).
    uint64_t maxEventsPerCycle = 0;
    /// Wall-clock budget for step(); 0 = unlimited.  When exceeded the
    /// run stops early with a SimWallClock fault.
    uint64_t maxSimMillis = 0;
    /// Optional usage sink (simCycles / simEvents / simFaults).
    ResourceUsage* usage = nullptr;
    /// Per-net activity profiling (toggle counts, UNDEF/NOINFL dwell);
    /// adds one O(nets) sweep per latched cycle, so it is off by default
    /// and the only cost when off is a single branch per cycle.
    bool profileActivity = false;
    /// Hot-loaded engine for EvaluatorKind::Compiled (see
    /// codegen::CompiledDesign::load).  Null demotes Compiled to
    /// Levelized — the caller is responsible for surfacing the fallback.
    std::shared_ptr<const codegen::CompiledDesign> compiled;
  };

  explicit Simulation(const SimGraph& graph,
                      EvaluatorKind kind = EvaluatorKind::Firing);
  Simulation(const SimGraph& graph, const Options& opts);
  // Out-of-line: compiled_ points at an incomplete type.  The move
  // constructor stays (vector<Simulation> tests rely on it); declaring
  // the destructor would otherwise suppress it.
  ~Simulation();
  Simulation(Simulation&&) noexcept;

  /// Clears registers to UNDEF, inputs to unset, cycle count to 0.
  void reset();

  // -- driving inputs (persist until changed) --
  void setInput(const std::string& port, Logic v);
  void setInput(const std::string& port, const std::vector<Logic>& bits);
  /// Sets an array port from an unsigned value; port index 1 is the LSB.
  void setInputUint(const std::string& port, uint64_t value);
  void clearInput(const std::string& port);
  void setRset(bool active);
  /// Seed for RANDOM components (deterministic runs).
  void setRandomSeed(uint64_t seed);
  /// Current position of the RANDOM stream (what a snapshot would carry).
  [[nodiscard]] uint64_t randomState() const { return rngState_; }

  // -- fault injection --
  /// Injects a hardware fault (src/sim/fault.h).  The fault applies on
  /// every cycle in its [fromCycle, toCycle] window, in whichever
  /// evaluator this simulation uses; forced-contention faults surface as
  /// SimContention errors like real collisions.  Injected faults persist
  /// across reset() — clearFaults() removes them.
  void injectFault(const FaultSpec& fault);
  void clearFaults() { faults_.clear(); }
  [[nodiscard]] const std::vector<FaultSpec>& faults() const {
    return faults_;
  }

  // -- checkpointing --
  /// Captures the register state (one value per REG, in graph order).
  /// CONTRACT: this is a *partial* checkpoint.  It captures registers
  /// only — not the RANDOM stream (`rngState_`), not the cycle count, not
  /// pending inputs, not accumulated errors — so restoring it resumes a
  /// run bit-identically only for designs without RANDOM components and
  /// stimulus that does not depend on the cycle number.  For exact resume
  /// semantics use saveSnapshot()/restoreSnapshot().
  [[nodiscard]] std::vector<Logic> saveRegisters() const {
    return regValues_;
  }
  /// Restores a previously saved register state (see the saveRegisters
  /// contract: rngState_, cycle count, pending inputs and errors keep
  /// their current values and go stale relative to the saved run).
  void restoreRegisters(const std::vector<Logic>& state);

  /// Captures the complete resumable state: registers, pending inputs,
  /// RANDOM stream, cycle count, accumulated errors, evaluator counters
  /// and the design content hash.  A run restored from this snapshot is
  /// bit-identical to one that never stopped — including RANDOM draws,
  /// error accumulation and metrics counters.  (Activity-profiling state
  /// is not part of the snapshot.)
  [[nodiscard]] SimSnapshot saveSnapshot() const;
  /// Restores a snapshot taken on a Simulation of the same design (any
  /// evaluator).  Throws std::invalid_argument when the snapshot's design
  /// hash or state sizes do not match this design.
  void restoreSnapshot(const SimSnapshot& snap);

  /// Evaluates `n` clock cycles (evaluate + latch each).  Stops early —
  /// recording a SimWallClock fault — when the wall-clock budget runs out.
  void step(uint64_t n = 1);
  /// Evaluates combinationally without latching registers (inspection).
  void evaluateOnly();

  // -- observing --
  [[nodiscard]] Logic output(const std::string& port) const;
  [[nodiscard]] std::vector<Logic> outputBits(const std::string& port) const;
  /// Value of an array port as an unsigned number; nullopt when any bit is
  /// UNDEF or NOINFL.
  [[nodiscard]] std::optional<uint64_t> outputUint(
      const std::string& port) const;
  [[nodiscard]] Logic netValue(NetId net) const;
  [[nodiscard]] Logic netValueByName(const std::string& name) const;

  [[nodiscard]] uint64_t cycle() const { return cycle_; }
  [[nodiscard]] const std::vector<SimError>& errors() const {
    return errors_;
  }
  [[nodiscard]] const EvalStats& stats() const;
  void resetStats();

  /// Turns per-net activity profiling on/off mid-run (counters persist
  /// until reset()); equivalent to Options::profileActivity at start.
  void setActivityProfiling(bool on);
  /// Per-net toggle counts and UNDEF/NOINFL dwell keyed to netlist
  /// names: hottest nets by toggles, deepest cones by graph level.
  /// Empty (ran=false) unless profiling was enabled.
  [[nodiscard]] metrics::ActivityReport activityReport(
      size_t topHottest = 10, size_t topDeepest = 5) const;
  /// Counter snapshot of this run for the metrics JSON / --stats table.
  [[nodiscard]] metrics::SimCounters metricsCounters() const;

  [[nodiscard]] const SimGraph& graph() const { return g_; }
  [[nodiscard]] const Design& design() const { return *g_.design; }

 private:
  const Port* findPortOrThrow(const std::string& name) const;
  void applyPortValue(const Port& port, const std::vector<Logic>& bits);
  void runCycle(bool latch);
  void profileCycle();
  void buildFaultPlan();
  void setStatsInternal(const EvalStats& s);

  const SimGraph& g_;
  Options opts_;
  EvaluatorKind kind_;
  std::unique_ptr<FiringEvaluator> firing_;
  std::unique_ptr<NaiveEvaluator> naive_;
  std::unique_ptr<LevelizedEvaluator> levelized_;
  std::unique_ptr<codegen::CompiledScalarEvaluator> compiled_;

  std::vector<Logic> inputValues_;  ///< per dense net
  std::vector<char> inputSet_;
  std::vector<Logic> regValues_;  ///< per graph.regNodes index
  CycleResult result_;
  uint64_t cycle_ = 0;
  uint64_t rngState_ = kDefaultRngSeed;
  std::vector<SimError> errors_;
  bool evaluated_ = false;
  std::vector<FaultSpec> faults_;
  FaultPlan faultPlan_;  ///< rebuilt per cycle while faults_ is non-empty

  // Activity profiler (allocated lazily when profiling turns on).
  bool profiling_ = false;
  bool prevValid_ = false;  ///< prevValues_ holds the last profiled cycle
  uint64_t profiledCycles_ = 0;
  std::vector<Logic> prevValues_;      ///< per dense net
  std::vector<uint64_t> toggles_;      ///< per dense net
  std::vector<uint64_t> undefCycles_;  ///< per dense net
  std::vector<uint64_t> noinflCycles_;
};

}  // namespace zeus

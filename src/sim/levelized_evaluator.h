// Levelized evaluator: the cycle-compiled counterpart of the firing rules.
//
// The acyclic semantics graph is topologically levelized ONCE at
// construction into a flat schedule of interleaved net-resolution and
// node-evaluation steps.  A cycle is then one linear walk over dense
// arrays — no worklist, no per-edge arrival events, no per-cycle
// std::fill over the whole state: every slot is written before it is
// read, and the few slots that need staleness protection (node outputs
// read through driver edges) carry an epoch stamp instead of being
// re-cleared.  The results are bit-identical to the firing evaluator.
//
// On top of the same schedule sits a 64-wide batch mode: 64 independent
// stimulus lanes are packed into two 64-bit planes per net (four-valued
// logic as 2 bits per lane) and every gate evaluates all lanes with a
// handful of word-parallel boolean ops.  The §8 at-most-one-driver check
// is still per lane: contention surfaces as a bitmask of colliding lanes
// on each multiply-driven net.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/sim/firing_evaluator.h"

namespace zeus {

class LevelizedEvaluator {
 public:
  /// One schedule step: resolve a dense net from its drivers, or
  /// evaluate a node from its (already resolved) input nets.
  struct Op {
    uint32_t index;
    bool isNode;
  };

  /// NodeId -> index into graph.regNodes, or kNotReg.
  static constexpr uint32_t kNotReg = 0xFFFFFFFFu;

  explicit LevelizedEvaluator(const SimGraph& graph);

  void evaluate(const CycleSeeds& seeds, CycleResult& out);
  [[nodiscard]] const EvalStats& stats() const { return stats_; }
  void resetStats() { stats_ = {}; }
  /// Restores a previously captured counter state (snapshot resume).
  void setStats(const EvalStats& s) { stats_ = s; }

  /// Builds the interleaved resolve/evaluate schedule with the same Kahn
  /// walk as buildSimGraph.  Exposed so the codegen emitter
  /// (src/codegen/emit.h) replays exactly this order — the compiled
  /// engine's evaluation order, RANDOM draw order and stats constants all
  /// derive from it.
  [[nodiscard]] static std::vector<Op> buildSchedule(const SimGraph& graph);
  [[nodiscard]] const std::vector<Op>& schedule() const { return schedule_; }

 private:
  friend class LevelizedBatchEvaluator;

  const SimGraph& g_;
  EvalStats stats_;
  std::vector<Op> schedule_;
  std::vector<uint32_t> regIndexOf_;

  // Node outputs, epoch-stamped: an entry is valid only when its stamp
  // matches the current cycle's epoch, so nothing is re-filled per cycle.
  std::vector<Logic> nodeOut_;
  std::vector<uint64_t> nodeStamp_;
  uint64_t epoch_ = 0;
  std::vector<Logic> scratch_;
};

// ---------------------------------------------------------------------
// 64-lane batch mode
// ---------------------------------------------------------------------

/// Four-valued logic for 64 lanes in two bit-planes: p0 = "can be 0",
/// p1 = "can be 1".  Per lane: Zero=(1,0), One=(0,1), Undef=(1,1),
/// NoInfl=(0,0) — so an undriven lane contributes nothing to resolution
/// for free, and gate algebra is plain word-parallel and/or/xor.
struct LanePlanes {
  uint64_t p0 = 0;
  uint64_t p1 = 0;
};

/// Packs one scalar Logic into all lanes of `mask`.
LanePlanes lanesBroadcast(Logic v, uint64_t mask);
/// Extracts one lane's Logic value.
Logic laneValue(const LanePlanes& p, uint32_t lane);
/// Sets one lane of `planes` to `v` (other lanes untouched).
void laneSet(LanePlanes& planes, uint32_t lane, Logic v);

struct BatchSeeds {
  /// Per dense net: externally driven lanes; lanes not driving a net
  /// carry (0,0) = NOINFL and thus contribute nothing.
  const std::vector<LanePlanes>* inputValues = nullptr;
  /// Per REG node (indexed as in graph.regNodes): stored lane values.
  const std::vector<LanePlanes>* regValues = nullptr;
  /// Per-lane RANDOM streams, advanced in place (lane L draws the same
  /// sequence a scalar run seeded with rngStates[L] would).
  std::array<uint64_t, 64>* rngStates = nullptr;
  /// Lanes in use; contention is only reported for these.
  uint64_t laneMask = ~uint64_t{0};
  /// Per-lane fault-injection overlay (src/sim/fault.h); null or !any =
  /// fault-free.  Lane L of each mask mirrors what a scalar run with the
  /// same FaultMode on that net would compute.
  const BatchFaultPlan* faults = nullptr;
};

struct BatchCycleResult {
  std::vector<LanePlanes> netValues;  ///< per dense net, raw (may be NOINFL)
  std::vector<uint64_t> activeAny;    ///< lanes with >=1 active driver
  std::vector<uint64_t> activeMulti;  ///< lanes with >=2 active drivers
  std::vector<uint32_t> collisions;   ///< nets with activeMulti∩laneMask ≠ ∅
};

class LevelizedBatchEvaluator {
 public:
  explicit LevelizedBatchEvaluator(const SimGraph& graph);

  void evaluate(const BatchSeeds& seeds, BatchCycleResult& out);
  [[nodiscard]] const EvalStats& stats() const { return stats_; }
  void resetStats() { stats_ = {}; }
  /// Restores a previously captured counter state (snapshot resume).
  void setStats(const EvalStats& s) { stats_ = s; }

 private:
  const SimGraph& g_;
  LevelizedEvaluator scalar_;  ///< owns the shared schedule
  EvalStats stats_;
  std::vector<LanePlanes> nodeOut_;
  std::vector<uint64_t> nodeStamp_;
  uint64_t epoch_ = 0;
  std::vector<LanePlanes> scratch_;
};

}  // namespace zeus

#include "src/sim/simulation.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>

#include "src/codegen/compiled.h"
#include "src/sim/snapshot.h"
#include "src/support/trace.h"

namespace zeus {

Simulation::Simulation(const SimGraph& graph, EvaluatorKind kind)
    : Simulation(graph, Options{.evaluator = kind}) {}

Simulation::~Simulation() = default;
Simulation::Simulation(Simulation&&) noexcept = default;

Simulation::Simulation(const SimGraph& graph, const Options& opts)
    : g_(graph), opts_(opts), kind_(opts.evaluator) {
  if (g_.hasCycle) {
    throw std::runtime_error("cannot simulate a cyclic design: " +
                             g_.cycleDescription);
  }
  switch (kind_) {
    case EvaluatorKind::Firing:
      firing_ = std::make_unique<FiringEvaluator>(g_);
      break;
    case EvaluatorKind::Naive:
      naive_ = std::make_unique<NaiveEvaluator>(g_);
      break;
    case EvaluatorKind::Levelized:
      levelized_ = std::make_unique<LevelizedEvaluator>(g_);
      break;
    case EvaluatorKind::Compiled:
      if (opts_.compiled) {
        compiled_ = std::make_unique<codegen::CompiledScalarEvaluator>(
            g_, opts_.compiled);
      } else {
        // No loaded engine: demote to the levelized interpreter (same
        // semantics, same results) rather than failing the run.
        kind_ = EvaluatorKind::Levelized;
        levelized_ = std::make_unique<LevelizedEvaluator>(g_);
      }
      break;
  }
  inputValues_.assign(g_.denseCount, Logic::Undef);
  inputSet_.assign(g_.denseCount, 0);
  regValues_.assign(g_.regNodes.size(), Logic::Undef);
  // CLK reads as 1 while a cycle is evaluated.
  uint32_t clk = g_.dense(g_.design->clk);
  inputValues_[clk] = Logic::One;
  inputSet_[clk] = 1;
  setRset(false);
  if (opts_.profileActivity) setActivityProfiling(true);
}

void Simulation::reset() {
  std::fill(inputValues_.begin(), inputValues_.end(), Logic::Undef);
  std::fill(inputSet_.begin(), inputSet_.end(), 0);
  std::fill(regValues_.begin(), regValues_.end(), Logic::Undef);
  uint32_t clk = g_.dense(g_.design->clk);
  inputValues_[clk] = Logic::One;
  inputSet_[clk] = 1;
  setRset(false);
  cycle_ = 0;
  // Restore the RANDOM stream too: a reset simulation must replay exactly
  // like a freshly constructed one.
  rngState_ = kDefaultRngSeed;
  errors_.clear();
  evaluated_ = false;
  prevValid_ = false;
  profiledCycles_ = 0;
  std::fill(toggles_.begin(), toggles_.end(), 0);
  std::fill(undefCycles_.begin(), undefCycles_.end(), 0);
  std::fill(noinflCycles_.begin(), noinflCycles_.end(), 0);
}

void Simulation::setActivityProfiling(bool on) {
  profiling_ = on;
  if (on && toggles_.empty()) {
    prevValues_.assign(g_.denseCount, Logic::Undef);
    toggles_.assign(g_.denseCount, 0);
    undefCycles_.assign(g_.denseCount, 0);
    noinflCycles_.assign(g_.denseCount, 0);
  }
}

void Simulation::profileCycle() {
  for (size_t i = 0; i < g_.denseCount; ++i) {
    Logic v = result_.netValues[i];
    if (v == Logic::Undef) ++undefCycles_[i];
    else if (v == Logic::NoInfl) ++noinflCycles_[i];
    if (prevValid_ && v != prevValues_[i]) ++toggles_[i];
    prevValues_[i] = v;
  }
  prevValid_ = true;
  ++profiledCycles_;
}

const Port* Simulation::findPortOrThrow(const std::string& name) const {
  const Port* p = g_.design->findPort(name);
  if (!p) throw std::invalid_argument("no port named '" + name + "'");
  return p;
}

void Simulation::applyPortValue(const Port& port,
                                const std::vector<Logic>& bits) {
  if (bits.size() != port.nets.size()) {
    throw std::invalid_argument("port '" + port.name + "' has " +
                                std::to_string(port.nets.size()) +
                                " bit(s), got " +
                                std::to_string(bits.size()));
  }
  for (size_t i = 0; i < bits.size(); ++i) {
    uint32_t dn = g_.dense(port.nets[i]);
    inputValues_[dn] = bits[i];
    inputSet_[dn] = 1;
  }
}

void Simulation::setInput(const std::string& port, Logic v) {
  applyPortValue(*findPortOrThrow(port), {v});
}

void Simulation::setInput(const std::string& port,
                          const std::vector<Logic>& bits) {
  applyPortValue(*findPortOrThrow(port), bits);
}

void Simulation::setInputUint(const std::string& port, uint64_t value) {
  const Port* p = findPortOrThrow(port);
  std::vector<Logic> bits(p->nets.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    // Ports wider than 64 bits get zeros above bit 63 (shifting by >= 64
    // is undefined, not zero).
    bits[i] = logicFromBool(i < 64 && ((value >> i) & 1));
  }
  applyPortValue(*p, bits);
}

void Simulation::clearInput(const std::string& port) {
  const Port* p = findPortOrThrow(port);
  for (NetId n : p->nets) {
    uint32_t dn = g_.dense(n);
    inputSet_[dn] = 0;
    inputValues_[dn] = Logic::Undef;
  }
}

void Simulation::setRset(bool active) {
  uint32_t rset = g_.dense(g_.design->rset);
  inputValues_[rset] = logicFromBool(active);
  inputSet_[rset] = 1;
}

void Simulation::setRandomSeed(uint64_t seed) {
  rngState_ = seed ? seed : 1;
}

void Simulation::restoreRegisters(const std::vector<Logic>& state) {
  if (state.size() != regValues_.size()) {
    throw std::invalid_argument(
        "register snapshot has wrong size for this design");
  }
  regValues_ = state;
}

void Simulation::injectFault(const FaultSpec& fault) {
  if (fault.denseNet >= g_.denseCount) {
    throw std::invalid_argument("fault targets a net outside this design");
  }
  faults_.push_back(fault);
}

void Simulation::buildFaultPlan() {
  if (faultPlan_.mode.size() != g_.denseCount) {
    faultPlan_.mode.assign(g_.denseCount, FaultMode::None);
  } else {
    std::fill(faultPlan_.mode.begin(), faultPlan_.mode.end(),
              FaultMode::None);
  }
  faultPlan_.any = false;
  for (const FaultSpec& f : faults_) {
    if (!f.activeAt(cycle_)) continue;
    faultPlan_.mode[f.denseNet] = faultModeOf(f.kind);
    faultPlan_.any = true;
  }
}

void Simulation::setStatsInternal(const EvalStats& s) {
  if (firing_) firing_->setStats(s);
  else if (naive_) naive_->setStats(s);
  else if (compiled_) compiled_->setStats(s);
  else levelized_->setStats(s);
}

SimSnapshot Simulation::saveSnapshot() const {
  ZEUS_TRACE_SPAN("checkpoint-save", "sim");
  SimSnapshot s;
  s.designHash = designContentHash(*g_.design);
  s.cycle = cycle_;
  s.rngState = rngState_;
  s.stats = stats();
  s.regValues = regValues_;
  s.inputValues = inputValues_;
  s.inputSet = inputSet_;
  s.errors = errors_;
  return s;
}

void Simulation::restoreSnapshot(const SimSnapshot& snap) {
  ZEUS_TRACE_SPAN("checkpoint-load", "sim");
  if (snap.designHash != 0 &&
      snap.designHash != designContentHash(*g_.design)) {
    throw std::invalid_argument(
        "snapshot was taken on a different design (content hash mismatch)");
  }
  if (snap.regValues.size() != regValues_.size() ||
      snap.inputValues.size() != g_.denseCount ||
      snap.inputSet.size() != g_.denseCount) {
    throw std::invalid_argument(
        "snapshot state sizes do not match this design");
  }
  regValues_ = snap.regValues;
  inputValues_ = snap.inputValues;
  inputSet_.assign(snap.inputSet.begin(), snap.inputSet.end());
  cycle_ = snap.cycle;
  rngState_ = snap.rngState;
  errors_ = snap.errors;
  setStatsInternal(snap.stats);
  evaluated_ = false;
  // The activity profiler intentionally restarts: profiling counters are
  // not snapshot state (documented on saveSnapshot).
  prevValid_ = false;
}

void Simulation::runCycle(bool latch) {
  CycleSeeds seeds;
  seeds.inputValues = &inputValues_;
  seeds.inputSet = &inputSet_;
  seeds.regValues = &regValues_;
  seeds.rngState = rngState_;
  seeds.eventBudget = opts_.maxEventsPerCycle;
  if (!faults_.empty()) {
    buildFaultPlan();
    if (faultPlan_.any) seeds.faults = &faultPlan_;
  }
  if (firing_) firing_->evaluate(seeds, result_);
  else if (naive_) naive_->evaluate(seeds, result_);
  else if (compiled_) compiled_->evaluate(seeds, result_);
  else levelized_->evaluate(seeds, result_);
  rngState_ = result_.rngState;
  evaluated_ = true;

  for (uint32_t dn : result_.collisions) {
    errors_.push_back(
        {cycle_, Diag::SimContention,
         g_.design->netlist.net(g_.rootOf[dn]).name,
         "more than one (0,1,UNDEF)-assignment active in one cycle"});
  }
  if (result_.watchdogTripped) {
    errors_.push_back(
        {cycle_, Diag::SimWatchdog, "",
         "cycle evaluation aborted by the firing watchdog (event budget "
         "exhausted); net values for this cycle are unreliable"});
  }
  if (opts_.usage) {
    opts_.usage->simEvents = stats().inputEvents;
    opts_.usage->simFaults = errors_.size();
  }

  // A tripped watchdog declares this cycle's net values unreliable: do
  // not latch them into registers, and do not count the cycle — nor
  // profile it (its values would poison the toggle/dwell statistics).
  if (result_.watchdogTripped) return;
  if (!latch) return;
  if (profiling_) profileCycle();
  const Netlist& nl = g_.design->netlist;
  // Two-phase latch: every register reads its input's resolved value from
  // this cycle; "if in is not changed during a clock cycle, it keeps its
  // value" (§5.1) — no active assignment means keep.
  for (size_t k = 0; k < g_.regNodes.size(); ++k) {
    const Node& reg = nl.node(g_.regNodes[k]);
    uint32_t in = g_.dense(reg.inputs[0]);
    if (result_.activeCounts[in] > 0) {
      Logic v = result_.netValues[in];
      regValues_[k] = v == Logic::NoInfl ? Logic::Undef : v;
    }
  }
  ++cycle_;
  if (opts_.usage) opts_.usage->simCycles = cycle_;
}

void Simulation::step(uint64_t n) {
  ZEUS_TRACE_SPAN("simulate", "sim");
  using Clock = std::chrono::steady_clock;
  const bool timed = opts_.maxSimMillis > 0;
  const Clock::time_point start = timed ? Clock::now() : Clock::time_point{};
  for (uint64_t i = 0; i < n; ++i) {
    if (timed) {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                         Clock::now() - start)
                         .count();
      if (static_cast<uint64_t>(elapsed) >= opts_.maxSimMillis && i > 0) {
        errors_.push_back(
            {cycle_, Diag::SimWallClock, "",
             "simulation stopped after " + std::to_string(i) + " of " +
                 std::to_string(n) + " cycle(s): wall-clock budget of " +
                 std::to_string(opts_.maxSimMillis) + " ms exhausted"});
        if (opts_.usage) opts_.usage->simFaults = errors_.size();
        return;
      }
    }
    runCycle(/*latch=*/true);
    // A tripped watchdog means further cycles would spin on the same
    // wedged evaluation — stop the run rather than flood errors().
    if (result_.watchdogTripped) return;
  }
}

void Simulation::evaluateOnly() { runCycle(/*latch=*/false); }

Logic Simulation::netValue(NetId net) const {
  if (!evaluated_) return Logic::Undef;
  uint32_t dn = g_.dense(net);
  // A class the optimizer dropped has no per-cycle state: it is neither
  // driven nor read, so it reads NOINFL like any other undriven net.
  if (dn == SimGraph::kNoDense) return Logic::NoInfl;
  return result_.netValues[dn];
}

Logic Simulation::netValueByName(const std::string& name) const {
  NetId id = g_.design->netlist.findByName(name);
  if (id == kNoNet) throw std::invalid_argument("no net named '" + name + "'");
  return netValue(id);
}

std::vector<Logic> Simulation::outputBits(const std::string& port) const {
  const Port* p = findPortOrThrow(port);
  std::vector<Logic> out;
  out.reserve(p->nets.size());
  for (size_t i = 0; i < p->nets.size(); ++i) {
    Logic v = netValue(p->nets[i]);
    // Observation of a boolean port converts NOINFL to UNDEF (§4.1).
    if (v == Logic::NoInfl && p->kinds[i] == BasicKind::Boolean)
      v = Logic::Undef;
    out.push_back(v);
  }
  return out;
}

Logic Simulation::output(const std::string& port) const {
  std::vector<Logic> bits = outputBits(port);
  if (bits.size() != 1) {
    throw std::invalid_argument("port '" + port + "' is not a single bit");
  }
  return bits[0];
}

std::optional<uint64_t> Simulation::outputUint(
    const std::string& port) const {
  std::vector<Logic> bits = outputBits(port);
  uint64_t value = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (!isDefined(bits[i])) return std::nullopt;
    if (bits[i] == Logic::One) {
      if (i >= 64) return std::nullopt;  // doesn't fit a uint64_t
      value |= uint64_t{1} << i;
    }
  }
  return value;
}

const EvalStats& Simulation::stats() const {
  if (firing_) return firing_->stats();
  if (naive_) return naive_->stats();
  if (compiled_) return compiled_->stats();
  return levelized_->stats();
}

void Simulation::resetStats() {
  if (firing_) firing_->resetStats();
  else if (naive_) naive_->resetStats();
  else if (compiled_) compiled_->resetStats();
  else levelized_->resetStats();
}

metrics::SimCounters Simulation::metricsCounters() const {
  const EvalStats& s = stats();
  metrics::SimCounters c;
  c.ran = true;
  switch (kind_) {
    case EvaluatorKind::Firing: c.evaluator = "firing"; break;
    case EvaluatorKind::Naive: c.evaluator = "naive"; break;
    case EvaluatorKind::Levelized: c.evaluator = "levelized"; break;
    case EvaluatorKind::Compiled: c.evaluator = "compiled"; break;
  }
  c.cycles = cycle_;
  c.lanes = 1;
  c.laneCycles = cycle_;
  c.nodeFirings = s.nodeFirings;
  c.inputEvents = s.inputEvents;
  c.sweeps = s.sweeps;
  c.netResolutions = s.netResolutions;
  c.shortCircuitSkips = s.shortCircuitSkips;
  c.contentionChecks = s.contentionChecks;
  c.epochResets = s.epochResets;
  if (kind_ == EvaluatorKind::Firing &&
      s.watchdogMarginMin != ~uint64_t{0}) {
    c.watchdogMarginMin = static_cast<int64_t>(
        std::min<uint64_t>(s.watchdogMarginMin, INT64_MAX));
  }
  c.faults = errors_.size();
  for (const SimError& e : errors_) {
    if (e.code == Diag::SimContention) ++c.contentionFaults;
  }
  return c;
}

metrics::ActivityReport Simulation::activityReport(size_t topHottest,
                                                   size_t topDeepest) const {
  metrics::ActivityReport r;
  if (toggles_.empty()) return r;  // profiling never enabled
  r.ran = true;
  r.cycles = profiledCycles_;
  r.netsProfiled = g_.denseCount;
  r.totalToggles =
      std::accumulate(toggles_.begin(), toggles_.end(), uint64_t{0});

  const Netlist& nl = g_.design->netlist;
  auto entry = [&](size_t i) {
    return metrics::ActivityEntry{nl.net(g_.rootOf[i]).name, toggles_[i],
                                  undefCycles_[i], noinflCycles_[i],
                                  g_.netLevel[i]};
  };
  std::vector<uint32_t> order(g_.denseCount);
  std::iota(order.begin(), order.end(), 0);

  size_t nh = std::min(topHottest, order.size());
  std::partial_sort(order.begin(), order.begin() + nh, order.end(),
                    [&](uint32_t a, uint32_t b) {
                      return toggles_[a] != toggles_[b]
                                 ? toggles_[a] > toggles_[b]
                                 : a < b;
                    });
  for (size_t k = 0; k < nh; ++k) {
    if (toggles_[order[k]] == 0) break;  // quiet nets are not "hottest"
    r.hottest.push_back(entry(order[k]));
  }

  size_t nd = std::min(topDeepest, order.size());
  std::partial_sort(order.begin(), order.begin() + nd, order.end(),
                    [&](uint32_t a, uint32_t b) {
                      return g_.netLevel[a] != g_.netLevel[b]
                                 ? g_.netLevel[a] > g_.netLevel[b]
                                 : a < b;
                    });
  for (size_t k = 0; k < nd; ++k) r.deepest.push_back(entry(order[k]));
  return r;
}

}  // namespace zeus

#include "src/sim/graph.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "src/support/trace.h"

namespace zeus {

SimGraph buildSimGraph(const Design& design, DiagnosticEngine& diags) {
  ZEUS_TRACE_SPAN("graph-build", "compile");
  SimGraph g;
  g.design = &design;
  const Netlist& nl = design.netlist;

  // Classes referenced by any node, port, CLK or RSET keep a dense slot
  // even when flagged simDropped — dropping is only ever an optimization,
  // never a semantic change the evaluators could observe.
  std::vector<char> referenced(nl.netCount(), 0);
  for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
    const Node& node = nl.node(ni);
    if (node.output != kNoNet) referenced[nl.find(node.output)] = 1;
    for (NetId in : node.inputs) referenced[nl.find(in)] = 1;
  }
  for (const Port& p : design.ports) {
    for (NetId n : p.nets) referenced[nl.find(n)] = 1;
  }
  for (NetId special : {design.clk, design.rset}) {
    if (special != kNoNet) referenced[nl.find(special)] = 1;
  }

  // Dense numbering of class roots (dropped, unreferenced classes get the
  // kNoDense sentinel and no per-cycle state anywhere downstream).
  g.denseOf.assign(nl.netCount(), SimGraph::kNoDense);
  for (NetId i = 0; i < nl.netCount(); ++i) {
    NetId root = nl.find(i);
    if (root == i && (referenced[i] || !nl.net(i).simDropped)) {
      g.denseOf[i] = static_cast<uint32_t>(g.rootOf.size());
      g.rootOf.push_back(i);
    }
  }
  for (NetId i = 0; i < nl.netCount(); ++i) {
    g.denseOf[i] = g.denseOf[nl.find(i)];
  }
  g.denseCount = g.rootOf.size();

  // Net info: class-wide boolean-ness and input-ness.
  g.nets.assign(g.denseCount, {});
  for (NetId i = 0; i < nl.netCount(); ++i) {
    const Net& n = nl.net(i);
    uint32_t dn = g.denseOf[i];
    if (dn == SimGraph::kNoDense) continue;
    SimGraph::NetInfo& info = g.nets[dn];
    if (n.kind == BasicKind::Boolean) info.isBool = true;
    if (n.isPrimaryInput) info.isInput = true;
  }

  // Driver counts, consumer and driver edges.
  std::vector<std::vector<std::pair<NodeId, uint32_t>>> consumerLists(
      g.denseCount);
  std::vector<std::vector<NodeId>> driverLists(g.denseCount);
  for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
    const Node& node = nl.node(ni);
    if (node.output != kNoNet) {
      SimGraph::NetInfo& info = g.nets[g.denseOf[node.output]];
      if (node.op == NodeOp::Reg) info.regDriven = true;
      else info.nonRegDrivers++;
      driverLists[g.denseOf[node.output]].push_back(ni);
    }
    for (uint32_t ii = 0; ii < node.inputs.size(); ++ii) {
      consumerLists[g.denseOf[node.inputs[ii]]].push_back({ni, ii});
    }
    if (node.op == NodeOp::Reg) g.regNodes.push_back(ni);
    else if (node.inputs.empty()) g.sourceNodes.push_back(ni);
  }
  g.consumerStart.assign(g.denseCount + 1, 0);
  g.driverStart.assign(g.denseCount + 1, 0);
  for (size_t i = 0; i < g.denseCount; ++i) {
    g.consumerStart[i + 1] =
        g.consumerStart[i] + static_cast<uint32_t>(consumerLists[i].size());
    g.driverStart[i + 1] =
        g.driverStart[i] + static_cast<uint32_t>(driverLists[i].size());
  }
  g.consumers.resize(g.consumerStart.back());
  g.consumerInputIdx.resize(g.consumerStart.back());
  g.driverNodes.resize(g.driverStart.back());
  for (size_t i = 0; i < g.denseCount; ++i) {
    uint32_t base = g.consumerStart[i];
    for (size_t k = 0; k < consumerLists[i].size(); ++k) {
      g.consumers[base + k] = consumerLists[i][k].first;
      g.consumerInputIdx[base + k] = consumerLists[i][k].second;
    }
    std::copy(driverLists[i].begin(), driverLists[i].end(),
              g.driverNodes.begin() + g.driverStart[i]);
    g.nets[i].multiDriven =
        driverLists[i].size() + (g.nets[i].isInput ? 1 : 0) > 1;
  }

  // Topological sort (Kahn) over non-REG nodes; net levels on the fly.
  g.netLevel.assign(g.denseCount, 0);
  std::vector<uint32_t> netPending(g.denseCount);
  std::vector<uint32_t> nodePending(nl.nodeCount(), 0);
  for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
    const Node& node = nl.node(ni);
    if (node.op == NodeOp::Reg) continue;
    nodePending[ni] = static_cast<uint32_t>(node.inputs.size());
  }
  size_t processedNodes = 0;
  size_t nonRegNodes = 0;
  for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
    if (nl.node(ni).op != NodeOp::Reg) ++nonRegNodes;
  }
  std::vector<char> nodeDone(nl.nodeCount(), 0);
  std::vector<uint32_t> nodeLevel(nl.nodeCount(), 0);
  for (size_t i = 0; i < g.denseCount; ++i) {
    netPending[i] = g.nets[i].nonRegDrivers;
  }
  // Source nodes (Const/Random) complete immediately.
  for (NodeId ni : g.sourceNodes) {
    nodeDone[ni] = 1;
    g.topoOrder.push_back(ni);
    ++processedNodes;
    const Node& node = nl.node(ni);
    if (node.output != kNoNet) --netPending[g.denseOf[node.output]];
  }
  std::deque<uint32_t> readyNets;
  for (size_t i = 0; i < g.denseCount; ++i) {
    if (netPending[i] == 0) readyNets.push_back(static_cast<uint32_t>(i));
  }
  while (!readyNets.empty()) {
    uint32_t net = readyNets.front();
    readyNets.pop_front();
    uint32_t level = g.netLevel[net];
    g.maxLevel = std::max(g.maxLevel, level);
    for (uint32_t e = g.consumerStart[net]; e < g.consumerStart[net + 1];
         ++e) {
      NodeId ni = g.consumers[e];
      const Node& node = nl.node(ni);
      if (node.op == NodeOp::Reg) continue;  // latches at end of cycle
      nodeLevel[ni] = std::max(nodeLevel[ni], level + 1);
      if (--nodePending[ni] == 0) {
        nodeDone[ni] = 1;
        g.topoOrder.push_back(ni);
        ++processedNodes;
        if (node.output != kNoNet) {
          uint32_t on = g.denseOf[node.output];
          g.netLevel[on] = std::max(g.netLevel[on], nodeLevel[ni]);
          if (--netPending[on] == 0) readyNets.push_back(on);
        }
      }
    }
  }
  if (processedNodes < nonRegNodes) {
    g.hasCycle = true;
    // Report a user-visible signal on the loop if one exists (generated
    // gate nets are named "$...").
    NodeId report = kNoNet;
    for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
      const Node& node = nl.node(ni);
      if (node.op == NodeOp::Reg || nodeDone[ni] || node.output == kNoNet)
        continue;
      if (report == kNoNet) report = ni;
      if (nl.net(nl.find(node.output)).name[0] != '$') {
        report = ni;
        break;
      }
    }
    if (report != kNoNet) {
      const Node& node = nl.node(report);
      std::string name = nl.net(nl.find(node.output)).name;
      g.cycleDescription =
          "combinational feedback loop through signal '" + name +
          "' (feedback must lead through a register, §1)";
      diags.error(Diag::CombinationalLoop, node.loc, g.cycleDescription);
    }
  }
  return g;
}

void checkSequentialOrder(const Design& design, const SimGraph& graph,
                          DiagnosticEngine& diags) {
  if (graph.hasCycle) return;
  const Netlist& nl = design.netlist;
  for (const SeqGroups& sg : design.sequentials) {
    const auto& groups = sg.groups;
    if (groups.size() < 2) continue;
    // Budget guard: this is an O(G * E) reachability sweep.
    size_t totalNets = 0;
    for (const auto& grp : groups) totalNets += grp.size();
    if (totalNets * graph.consumers.size() > 50'000'000) continue;

    // Membership: net -> earliest group that assigns it.
    std::vector<int32_t> groupOf(graph.denseCount, -1);
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      for (NetId n : groups[gi]) {
        uint32_t dn = graph.dense(n);
        if (dn == SimGraph::kNoDense) continue;
        if (groupOf[dn] < 0) groupOf[dn] = static_cast<int32_t>(gi);
      }
    }
    // Forward BFS from each group's nets; reaching a net assigned in an
    // earlier group means the specified order is incompatible.
    for (size_t gj = 1; gj < groups.size(); ++gj) {
      std::vector<char> seen(graph.denseCount, 0);
      std::deque<uint32_t> work;
      for (NetId n : groups[gj]) {
        uint32_t dn = graph.dense(n);
        if (dn == SimGraph::kNoDense) continue;
        if (!seen[dn]) {
          seen[dn] = 1;
          work.push_back(dn);
        }
      }
      bool violated = false;
      while (!work.empty() && !violated) {
        uint32_t net = work.front();
        work.pop_front();
        for (uint32_t e = graph.consumerStart[net];
             e < graph.consumerStart[net + 1]; ++e) {
          const Node& node = nl.node(graph.consumers[e]);
          if (node.op == NodeOp::Reg || node.output == kNoNet) continue;
          uint32_t on = graph.dense(node.output);
          if (seen[on]) continue;
          seen[on] = 1;
          if (groupOf[on] >= 0 &&
              groupOf[on] < static_cast<int32_t>(gj)) {
            diags.warning(
                Diag::SequentialOrderViolated, sg.loc,
                "SEQUENTIAL annotation incompatible with data flow: "
                "statement " +
                    std::to_string(gj + 1) + " feeds signal '" +
                    nl.net(graph.rootOf[on]).name + "' assigned by statement " +
                    std::to_string(groupOf[on] + 1));
            violated = true;
            break;
          }
          work.push_back(on);
        }
      }
    }
  }
}

}  // namespace zeus

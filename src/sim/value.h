// Four-valued evaluation of the predefined components (paper §8).
//
// These functions are the single source of truth for gate semantics: the
// firing evaluator, the naive evaluator and the elaborator's constant
// folder all call them.
#pragma once

#include <span>
#include <vector>

#include "src/elab/netlist.h"
#include "src/support/logic.h"

namespace zeus {

/// Gate inputs treat NOINFL like UNDEF (§8: gates output UNDEF "in all
/// other cases", which includes disconnected inputs).
Logic gateInput(Logic v);

/// Evaluates AND/OR/NAND/NOR/XOR/NOT/BUF over fully-known inputs.
Logic evalGate(NodeOp op, std::span<const Logic> inputs);

/// EQUAL(a, b) over m-bit operands: 1 iff all pairs defined and equal,
/// 0 as soon as some pair is (0,1), UNDEF otherwise (§8).
Logic evalEqual(std::span<const Logic> a, std::span<const Logic> b);

/// IF-node semantics (§8): cond=0 -> NOINFL, cond=1 -> data,
/// cond undefined/disconnected -> UNDEF.
Logic evalSwitch(Logic cond, Logic data);

/// Partial (short-circuit) evaluation for the firing rules: given that
/// `known` of the `total` inputs are known with counters of each value,
/// returns true and sets `out` if the gate can already fire.
struct GateCounters {
  uint32_t known = 0;
  uint32_t zeros = 0;
  uint32_t ones = 0;

  void add(Logic v) {
    ++known;
    if (gateInput(v) == Logic::Zero) ++zeros;
    else if (gateInput(v) == Logic::One) ++ones;
  }
};
bool gateCanFire(NodeOp op, const GateCounters& c, uint32_t total, Logic& out);

}  // namespace zeus

// Event-driven evaluator implementing the firing rules of §8.
//
// A node fires on its exiting edge as soon as its value is determined:
// AND fires 0 on the first 0 input, an IF node fires NOINFL as soon as its
// condition is 0, and so on.  Every node fires exactly once per cycle, and
// a (multiplex) signal fires once all of its drivers have contributed —
// the "strongest signal survives" resolution with the runtime
// multiple-assignment check that guards against burning transistors.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/fault.h"
#include "src/sim/graph.h"
#include "src/support/logic.h"

namespace zeus {

struct EvalStats {
  uint64_t nodeFirings = 0;   ///< nodes that produced a value
  uint64_t inputEvents = 0;   ///< node-input arrival events processed
  uint64_t sweeps = 0;        ///< naive evaluator only
  uint64_t netResolutions = 0;     ///< nets resolved to their cycle value
  uint64_t shortCircuitSkips = 0;  ///< arrivals at an already-fired node
  uint64_t contentionChecks = 0;   ///< resolutions of multi-driven nets
  uint64_t epochResets = 0;        ///< sparse-reset epoch bumps (1/cycle)
  /// Smallest remaining event budget at the end of any cycle (firing
  /// evaluator only); ~0 until a cycle completes, 0 after a trip.
  uint64_t watchdogMarginMin = ~uint64_t{0};

  friend bool operator==(const EvalStats&, const EvalStats&) = default;
};

/// Seed of the RANDOM stream when none is set explicitly; shared by every
/// evaluator and restored by Simulation::reset().
inline constexpr uint64_t kDefaultRngSeed = 0x9E3779B97F4A7C15ull;

/// Seed values for one cycle of evaluation.
struct CycleSeeds {
  /// Per dense net: externally injected value (primary inputs); only
  /// entries with inputSet are used.
  const std::vector<Logic>* inputValues = nullptr;
  const std::vector<char>* inputSet = nullptr;
  /// Per REG node (indexed as in graph.regNodes): stored value.
  const std::vector<Logic>* regValues = nullptr;
  uint64_t rngState = 0;  ///< for RANDOM nodes
  /// Firing watchdog: abort the cycle after this many input-arrival
  /// events.  0 = automatic (a generous multiple of the edge count; on a
  /// consistent DAG every node fires exactly once, so tripping it means
  /// the evaluator — not the design — is wedged).
  uint64_t eventBudget = 0;
  /// Fault-injection overlay for this cycle (src/sim/fault.h); null or
  /// !any = fault-free.  Applied at net-resolution time by every
  /// evaluator, after the §8 strength rule and before consumers read.
  const FaultPlan* faults = nullptr;
};

/// Results of one cycle.
struct CycleResult {
  std::vector<Logic> netValues;        ///< per dense net, raw (may be NOINFL)
  std::vector<uint32_t> activeCounts;  ///< active (0/1/UNDEF) contributions
  std::vector<uint32_t> collisions;    ///< dense nets with >1 active driver
  uint64_t rngState = 0;
  bool watchdogTripped = false;  ///< cycle aborted by the firing watchdog
};

class FiringEvaluator {
 public:
  explicit FiringEvaluator(const SimGraph& graph);

  void evaluate(const CycleSeeds& seeds, CycleResult& out);
  [[nodiscard]] const EvalStats& stats() const { return stats_; }
  void resetStats() { stats_ = {}; }
  /// Restores a previously captured counter state (snapshot resume), so a
  /// resumed run's cumulative stats match an uninterrupted one.
  void setStats(const EvalStats& s) { stats_ = s; }

 private:
  void fireNet(uint32_t net, Logic value);
  void contribute(uint32_t net, Logic value);
  void touchNet(uint32_t net);
  void touchNode(NodeId node);

  const SimGraph& g_;
  EvalStats stats_;

  // Per-cycle state, epoch-stamped instead of std::fill-reset each cycle:
  // a slot's contents are valid only when its stamp equals the current
  // epoch, so untouched state stays stale instead of being re-cleared.
  // Net values and active counts live directly in the caller's
  // CycleResult (no end-of-cycle copy); value_/active_ point into it.
  uint64_t epoch_ = 0;
  std::vector<uint64_t> netStamp_;
  std::vector<uint64_t> nodeStamp_;
  Logic* value_ = nullptr;
  uint32_t* active_ = nullptr;
  std::vector<uint32_t> pending_;  ///< remaining driver contributions
  std::vector<char> netFired_;
  std::vector<char> nodeFired_;
  std::vector<uint32_t> nodeKnown_;
  std::vector<uint32_t> nodeZeros_;
  std::vector<uint32_t> nodeOnes_;
  std::vector<char> nodeUndef_;  ///< saw an UNDEF/NOINFL input
  // Per-node input storage (CSR) for EQUAL and SWITCH.
  std::vector<uint32_t> inputStart_;
  std::vector<Logic> inputVal_;
  std::vector<char> inputKnown_;
  std::vector<uint32_t> inputNets_;      ///< dense nets with isInput
  std::vector<uint32_t> undrivenNets_;   ///< nets with no non-REG driver
  std::vector<uint32_t> worklist_;
  size_t firedCount_ = 0;
  std::vector<uint32_t>* collisions_ = nullptr;
  const FaultPlan* faults_ = nullptr;  ///< active only while evaluating
};

}  // namespace zeus

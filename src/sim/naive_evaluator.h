// Baseline evaluator: full re-evaluation sweeps to a fixpoint.
//
// This is the ablation partner of the firing evaluator (DESIGN.md, E8).
// Each sweep recomputes every node from the current net values and then
// every net from its drivers' outputs (Jacobi style); on an acyclic graph
// the values at level k are correct after k sweeps, so the loop terminates
// in depth+O(1) sweeps with exactly the same results as the firing rules.
// Its cost per cycle is sweeps × (V + E), versus the firing evaluator's
// single event-driven pass — this is the measurable content of the paper's
// claim that the firing semantics "imply a simulator which is conceptually
// simpler than state-of-the-art switch-level circuit simulators".
#pragma once

#include "src/sim/firing_evaluator.h"

namespace zeus {

class NaiveEvaluator {
 public:
  explicit NaiveEvaluator(const SimGraph& graph);

  void evaluate(const CycleSeeds& seeds, CycleResult& out);
  [[nodiscard]] const EvalStats& stats() const { return stats_; }
  void resetStats() { stats_ = {}; }
  /// Restores a previously captured counter state (snapshot resume).
  void setStats(const EvalStats& s) { stats_ = s; }

 private:
  const SimGraph& g_;
  EvalStats stats_;
  std::vector<Logic> nodeOut_;
  std::vector<Logic> netVal_;
  std::vector<uint32_t> active_;
  std::vector<Logic> seedVal_;
  std::vector<char> seedSet_;
};

}  // namespace zeus

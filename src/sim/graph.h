// The semantics graph (paper §8): the canonicalised netlist prepared for
// evaluation — dense net numbering over alias-class roots, consumer edges,
// combinational-cycle detection (REG is the only cycle breaker) and a
// topological order for the naive evaluator and the SEQUENTIAL check.
#pragma once

#include <string>
#include <vector>

#include "src/elab/design.h"
#include "src/support/diagnostics.h"

namespace zeus {

struct SimGraph {
  const Design* design = nullptr;

  /// Dense slot for an alias class the optimizer dropped (Net::simDropped
  /// and unreferenced): the class has no state in any evaluator and reads
  /// NOINFL.  Callers of dense() on arbitrary NetIds must check for it.
  static constexpr uint32_t kNoDense = 0xFFFFFFFFu;

  // Dense numbering of alias-class roots.
  std::vector<uint32_t> denseOf;   ///< NetId -> dense index (via class root)
  std::vector<NetId> rootOf;       ///< dense index -> representative NetId
  size_t denseCount = 0;

  struct NetInfo {
    uint32_t nonRegDrivers = 0;  ///< driver nodes that must fire first
    bool isBool = false;         ///< class contains a boolean member
    bool isInput = false;        ///< primary input (incl. CLK/RSET)
    bool regDriven = false;      ///< some driver is a REG
    /// More than one potential contributor (drivers + primary input), so
    /// resolving this net involves a §8 contention check.  Evaluators
    /// count EvalStats::contentionChecks off this static flag, which
    /// keeps the counter identical across scalar and batch engines.
    bool multiDriven = false;
  };
  std::vector<NetInfo> nets;  ///< per dense index

  // Consumers in CSR form: for each dense net, the nodes reading it and
  // at which input position.
  std::vector<uint32_t> consumerStart;  ///< size denseCount+1
  std::vector<NodeId> consumers;
  std::vector<uint32_t> consumerInputIdx;

  // Drivers in CSR form (including REG nodes).
  std::vector<uint32_t> driverStart;  ///< size denseCount+1
  std::vector<NodeId> driverNodes;

  std::vector<NodeId> regNodes;
  std::vector<NodeId> sourceNodes;  ///< Const / Random (no net inputs)

  std::vector<NodeId> topoOrder;    ///< non-REG nodes, topological
  std::vector<uint32_t> netLevel;   ///< per dense net, longest path depth
  uint32_t maxLevel = 0;

  bool hasCycle = false;
  std::string cycleDescription;

  [[nodiscard]] uint32_t dense(NetId id) const {
    return denseOf[design->netlist.find(id)];
  }
};

/// Builds the graph.  Reports CombinationalLoop through `diags` when the
/// non-register part of the design is cyclic (then hasCycle is set and the
/// graph must not be simulated).
SimGraph buildSimGraph(const Design& design, DiagnosticEngine& diags);

/// Verifies the user's SEQUENTIAL annotations against the data dependences
/// of the graph (§4.5: the simulator checks that the specified sequence is
/// compatible).  Violations are reported as warnings.
void checkSequentialOrder(const Design& design, const SimGraph& graph,
                          DiagnosticEngine& diags);

}  // namespace zeus

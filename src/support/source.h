// Source buffer management and source locations for the Zeus toolchain.
//
// A SourceManager owns the text of every compiled buffer and hands out
// stable integer buffer ids.  SourceLoc is a lightweight (buffer, offset)
// pair that every token and AST node carries; the manager can expand it to
// a human readable line:column position on demand.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace zeus {

/// Identifies one source buffer registered with a SourceManager.
using BufferId = uint32_t;

/// A position inside a registered source buffer.
///
/// The default-constructed location is "unknown" and prints as "<unknown>".
struct SourceLoc {
  BufferId buffer = 0;
  uint32_t offset = 0;

  [[nodiscard]] bool valid() const { return buffer != 0; }
  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

/// Expanded, human-readable form of a SourceLoc.
struct LineCol {
  std::string_view bufferName;
  uint32_t line = 0;  ///< 1-based
  uint32_t col = 0;   ///< 1-based
};

/// Owns source text for the lifetime of a compilation.
class SourceManager {
 public:
  /// Registers a buffer and returns its id.  The text is copied.
  BufferId addBuffer(std::string name, std::string text);

  [[nodiscard]] std::string_view text(BufferId id) const;
  [[nodiscard]] std::string_view name(BufferId id) const;

  /// Expands a location to line/column.  Invalid locations yield {0,0}.
  [[nodiscard]] LineCol expand(SourceLoc loc) const;

  /// Formats a location as "name:line:col" (or "<unknown>").
  [[nodiscard]] std::string describe(SourceLoc loc) const;

 private:
  struct Buffer {
    std::string name;
    std::string text;
    std::vector<uint32_t> lineStarts;  ///< byte offset of each line start
  };
  std::vector<Buffer> buffers_;  ///< index = BufferId - 1
};

}  // namespace zeus

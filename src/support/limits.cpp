#include "src/support/limits.h"

namespace zeus {

namespace {

std::string line(const char* label, uint64_t used, uint64_t budget,
                 const char* zeroMeans = nullptr) {
  std::string out = label;
  if (out.size() < 22) out.append(22 - out.size(), ' ');
  out += std::to_string(used);
  out += " / ";
  if (budget == 0 && zeroMeans) {
    out += zeroMeans;
  } else {
    out += std::to_string(budget);
  }
  out += '\n';
  return out;
}

}  // namespace

std::string ResourceReport::render() const {
  std::string out;
  out += "resource usage (used / budget)\n";
  out += line("  source bytes", usage.sourceBytes, limits.maxSourceBytes);
  out += line("  tokens", usage.tokens, limits.maxTokens);
  out += line("  parse depth peak", static_cast<uint64_t>(usage.parseDepthPeak),
              static_cast<uint64_t>(limits.maxParseDepth));
  out += line("  parse errors", usage.parseErrors, limits.maxParseErrors);
  out += line("  type depth peak", static_cast<uint64_t>(usage.typeDepthPeak),
              static_cast<uint64_t>(limits.maxTypeDepth));
  out += line("  types", usage.typesInstantiated, limits.maxTypes);
  out += line("  instance depth peak",
              static_cast<uint64_t>(usage.instanceDepthPeak),
              static_cast<uint64_t>(limits.maxInstanceDepth));
  out += line("  instances", usage.instances, limits.maxInstances);
  out += line("  nets", usage.nets, limits.maxNets);
  out += line("  nodes", usage.nodes, limits.maxNets);
  out += line("  sim cycles", usage.simCycles, 0, "unbounded");
  out += line("  sim events", usage.simEvents, limits.maxEventsPerCycle,
              "auto/cycle");
  out += line("  sim faults", usage.simFaults, 0, "n/a");
  return out;
}

}  // namespace zeus

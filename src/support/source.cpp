#include "src/support/source.h"

#include <algorithm>
#include <cassert>

namespace zeus {

BufferId SourceManager::addBuffer(std::string name, std::string text) {
  Buffer buf;
  buf.name = std::move(name);
  buf.text = std::move(text);
  buf.lineStarts.push_back(0);
  for (uint32_t i = 0; i < buf.text.size(); ++i) {
    if (buf.text[i] == '\n') buf.lineStarts.push_back(i + 1);
  }
  buffers_.push_back(std::move(buf));
  return static_cast<BufferId>(buffers_.size());
}

std::string_view SourceManager::text(BufferId id) const {
  assert(id >= 1 && id <= buffers_.size());
  return buffers_[id - 1].text;
}

std::string_view SourceManager::name(BufferId id) const {
  assert(id >= 1 && id <= buffers_.size());
  return buffers_[id - 1].name;
}

LineCol SourceManager::expand(SourceLoc loc) const {
  if (!loc.valid() || loc.buffer > buffers_.size()) return {};
  const Buffer& buf = buffers_[loc.buffer - 1];
  auto it = std::upper_bound(buf.lineStarts.begin(), buf.lineStarts.end(),
                             loc.offset);
  uint32_t line = static_cast<uint32_t>(it - buf.lineStarts.begin());
  uint32_t lineStart = buf.lineStarts[line - 1];
  return {buf.name, line, loc.offset - lineStart + 1};
}

std::string SourceManager::describe(SourceLoc loc) const {
  if (!loc.valid()) return "<unknown>";
  LineCol lc = expand(loc);
  return std::string(lc.bufferName) + ":" + std::to_string(lc.line) + ":" +
         std::to_string(lc.col);
}

}  // namespace zeus

// Fixed-bucket log-scale latency histograms for the Zeus service stack.
//
// A Histogram is 64 power-of-two buckets over uint64 values (bucket i
// holds every value whose bit width is i, i.e. [2^(i-1), 2^i); bucket 0
// holds the value 0) plus exact count/sum/max.  Everything about it is
// deterministic integer arithmetic:
//
//   * record() touches one bucket — no allocation, no floating point;
//   * merge() is a per-bucket sum, so it is commutative and associative:
//     merging the same per-block histograms in ANY order (any farm thread
//     count, any block schedule) produces the same merged state — the
//     same rule that makes the PR 7 farm checksum thread-count-invariant;
//   * percentile() walks the merged buckets with integer rank math and
//     returns a bucket boundary (clamped to the recorded max), so
//     p50/p90/p99 are bit-identical wherever the merge happened.
//
// The tradeoff is resolution: a percentile is exact only up to its 2x
// bucket, which is the right fidelity for "where did the latency go"
// dashboards and exactly what makes cross-worker determinism possible.
//
// Histograms are plain values — no internal locking.  The farm records
// into per-block locals and merges after the workers join; the serve loop
// is sequential.  Concurrent record() into one instance is a data race by
// design (use one instance per thread and merge).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace zeus::histogram {

constexpr size_t kBuckets = 65;  ///< bit widths 0..64

/// Bucket index of a value: 0 for 0, otherwise the value's bit width
/// (bucket i covers [2^(i-1), 2^i)).
[[nodiscard]] constexpr size_t bucketOf(uint64_t v) {
  size_t w = 0;
  while (v) {
    ++w;
    v >>= 1;
  }
  return w;
}

/// Inclusive upper bound of a bucket (2^i - 1); the value percentile()
/// reports when the rank lands in bucket i.
[[nodiscard]] constexpr uint64_t bucketUpperBound(size_t bucket) {
  return bucket >= 64 ? ~uint64_t{0} : (uint64_t{1} << bucket) - 1;
}

class Histogram {
 public:
  void record(uint64_t value) {
    ++counts_[bucketOf(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  /// Per-bucket sum; commutative and associative, so the merged state is
  /// independent of merge order and thread count.
  void merge(const Histogram& other) {
    for (size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] uint64_t count() const { return count_; }
  [[nodiscard]] uint64_t sum() const { return sum_; }
  [[nodiscard]] uint64_t max() const { return max_; }
  [[nodiscard]] uint64_t bucketCount(size_t bucket) const {
    return bucket < kBuckets ? counts_[bucket] : 0;
  }

  /// Value at percentile p (0..100]: integer rank = ceil(count * p / 100),
  /// walked through the buckets; returns the containing bucket's upper
  /// bound clamped to the exact recorded max.  Pure integer arithmetic —
  /// bit-identical for any merge order of the same recordings.  0 when
  /// empty.
  [[nodiscard]] uint64_t percentile(unsigned p) const;

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  std::array<uint64_t, kBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

/// One named histogram ready for rendering: the stable summary quartet
/// (count/sum/max + p50/p90/p99) plus the occupied buckets.
struct Snapshot {
  std::string name;  ///< e.g. "farm.block_us"
  std::string unit;  ///< e.g. "us"
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  /// (bucket index, count) for every non-empty bucket, ascending.
  std::vector<std::pair<uint32_t, uint64_t>> buckets;
};

[[nodiscard]] Snapshot snapshot(const Histogram& h, std::string name,
                                std::string unit);

/// One snapshot as a JSON object:
///   {"unit": "us", "count": N, "sum": N, "max": N,
///    "p50": N, "p90": N, "p99": N, "buckets": [[i, n], ...]}
[[nodiscard]] std::string renderJson(const Snapshot& s);

/// The zeus-metrics-v1 "latency" block: an object keyed by histogram
/// name, one renderJson() value each.  Empty list renders as {}.
[[nodiscard]] std::string renderLatencyBlock(
    const std::vector<Snapshot>& snapshots, const std::string& indent);

}  // namespace zeus::histogram

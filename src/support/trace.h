// Zero-overhead-when-disabled tracing for the Zeus pipeline.
//
// Spans measure a phase (lex, parse, sema, elab, graph-build, levelize,
// lint, simulate) on the monotonic clock and collect into a process-wide
// buffer that renders as Chrome trace_event JSON — `zeusc --trace out.json`
// loads directly in Perfetto / chrome://tracing.
//
// Cost model:
//   * compile time: defining ZEUS_TRACE_DISABLED compiles every
//     ZEUS_TRACE_SPAN to nothing;
//   * runtime: while tracing is not enabled (the default) a span is one
//     relaxed atomic load and no clock reads — nothing is allocated and
//     nothing is locked;
//   * enabled: events append to a thread-local buffer under that buffer's
//     own (uncontended) mutex; the registry lock is taken once per thread
//     and at render/clear time.
//
// Thread-safety contract (docs/observability.md): every function here may
// be called from any thread at any time.  A span that is still open when
// clear() or setEnabled(false) runs records NOTHING when it closes — the
// buffers stay empty after a clear even if worker spans straddle it, so
// phaseTimings never sees resurrected events.
//
// Spans are deliberately phase-grained, never per-cycle or per-node: the
// simulation hot loops stay untouched (per-cycle observability is the
// counter layer in src/support/metrics.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace zeus::trace {

/// Globally enables/disables span recording.  Disabled spans cost one
/// relaxed atomic load.  Thread-safe.  Disabling drops every span still
/// open at that moment (they record nothing when they close, even if
/// tracing is re-enabled before then).
void setEnabled(bool on);
[[nodiscard]] bool enabled();

/// Discards every recorded event (all threads).  Spans still open when
/// clear() runs are dropped too: they record nothing when they close.
void clear();

/// Number of completed spans recorded so far (all threads).
[[nodiscard]] size_t eventCount();

/// One recorded span, exposed for the metrics layer: `--metrics` derives
/// its compile.phases block from the trace buffer.
struct Event {
  const char* name;      ///< static string: phase name
  const char* category;  ///< static string: "compile" / "sim" / ...
  uint64_t startUs;      ///< monotonic microseconds
  uint64_t durUs;
  uint32_t tid;
};

/// Snapshot of all recorded events, merged across threads in start order.
[[nodiscard]] std::vector<Event> snapshot();

/// Renders the Chrome trace_event JSON object:
///   {"traceEvents":[{"name":...,"cat":...,"ph":"X","ts":...,"dur":...,
///                    "pid":...,"tid":...}, ...]}
/// Complete ("X") duration events only; loads cleanly in Perfetto.
[[nodiscard]] std::string renderChromeJson();

/// RAII span: records one complete event from construction to destruction
/// when tracing is enabled.  `name` and `category` must be string
/// literals (stored by pointer).
class Span {
 public:
  Span(const char* name, const char* category);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  uint64_t startUs_;  ///< 0 = tracing was off at entry; record nothing
  uint64_t epoch_;    ///< buffer generation at entry; stale = dropped
  bool frPushed_;     ///< on the flight-recorder open-span stack
};

}  // namespace zeus::trace

#ifdef ZEUS_TRACE_DISABLED
#define ZEUS_TRACE_SPAN(name, category)
#else
#define ZEUS_TRACE_CONCAT_(a, b) a##b
#define ZEUS_TRACE_CONCAT(a, b) ZEUS_TRACE_CONCAT_(a, b)
/// Opens a span for the rest of the enclosing scope.
#define ZEUS_TRACE_SPAN(name, category)                 \
  ::zeus::trace::Span ZEUS_TRACE_CONCAT(zeusTraceSpan_, \
                                        __LINE__)(name, category)
#endif

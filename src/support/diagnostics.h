// Diagnostic engine shared by every phase of the Zeus toolchain.
//
// Phases report problems through DiagnosticEngine::report(); nothing throws
// for user errors.  Callers inspect hasErrors() / take the accumulated list.
// Each diagnostic carries a stable Diag code so tests can assert on the
// *kind* of error instead of matching message strings.
#pragma once

#include <string>
#include <vector>

#include "src/support/source.h"

namespace zeus {

/// Stable identifiers for every diagnostic the toolchain can emit.
enum class Diag {
  // Lexer
  UnterminatedComment,
  InvalidCharacter,
  InvalidOctalDigit,
  NumberTooLarge,
  SourceTooLarge,
  TooManyTokens,
  // Parser
  ExpectedToken,
  UnexpectedToken,
  ExpectedDeclaration,
  ExpectedStatement,
  ExpectedExpression,
  ExpectedType,
  SignalAfterOtherDecls,
  NestingTooDeep,
  TooManyErrors,
  // Sema / const eval
  UnknownIdentifier,
  NotAConstant,
  DivisionByZero,
  WrongArgumentCount,
  NotAType,
  NotAComponentType,
  NotAFunctionComponent,
  RecursionTooDeep,
  TypeBudgetExceeded,
  BadArrayBounds,
  DuplicateDeclaration,
  InOutBasicMustBeMultiplex,
  UnstructuredInOutMustBeBoolean,
  SubstructureInAndOut,
  ResultOutsideFunction,
  FunctionUsedAsSignal,
  RecordTypeHasBody,
  // Elaboration / static type rules (§4.7)
  WidthMismatch,
  MultipleUnconditionalAssignment,
  ConditionalAndUnconditionalAssignment,
  ConditionalAssignToBoolean,
  AliasOfBooleans,
  AliasBooleanNotException,
  AliasInsideConditional,
  MultiplexToMultiplexAssign,
  AssignToInParameter,
  AssignToOutOfInstance,
  UnusedPort,
  ConnectionRepeated,
  ConnectionOnNonComponent,
  ConditionNotSingleBit,
  CombinationalLoop,
  NumIndexNotConstantWidth,
  BadConnectionShape,
  VirtualNotReplaced,
  VirtualReplacedTwice,
  ReplacementOnNonVirtual,
  SequentialOrderViolated,
  IndexOutOfRange,
  InstanceBudgetExceeded,
  NetBudgetExceeded,
  ElabBudgetExceeded,
  // Lint (static analysis over the semantics graph, src/analysis/lint.h)
  LintContention,
  LintUndrivenNet,
  LintUnreadNet,
  LintConstantGate,
  LintDeadBranch,
  LintConstantRegister,
  LintDeepLogic,
  LintFanoutHotspot,
  // Simulation (runtime faults, carried on SimError records)
  SimContention,
  SimWatchdog,
  SimWallClock,
  // Optimizer (src/transform): the post-pass verifier found a malformed
  // graph — always an internal error in a pass, never a user error.
  OptimizerVerifyFailed,
  // Layout
  LayoutUnknownDirection,
  LayoutUnknownOrientation,
  LayoutUnknownSignal,
  // Generic
  Internal,
};

enum class Severity { Note, Warning, Error };

/// One reported problem.
struct Diagnostic {
  Diag code;
  Severity severity;
  SourceLoc loc;
  std::string message;
};

/// Collects diagnostics across all phases of one compilation.
class DiagnosticEngine {
 public:
  explicit DiagnosticEngine(const SourceManager& sm) : sm_(sm) {}

  void report(Diag code, Severity sev, SourceLoc loc, std::string message);
  void error(Diag code, SourceLoc loc, std::string message) {
    report(code, Severity::Error, loc, std::move(message));
  }
  void warning(Diag code, SourceLoc loc, std::string message) {
    report(code, Severity::Warning, loc, std::move(message));
  }

  [[nodiscard]] bool hasErrors() const { return errorCount_ > 0; }
  [[nodiscard]] size_t errorCount() const { return errorCount_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

  /// True if any diagnostic with the given code was reported.
  [[nodiscard]] bool has(Diag code) const;

  /// Renders every diagnostic as "severity loc: message", one per line.
  [[nodiscard]] std::string renderAll() const;

  /// Drops all collected diagnostics (used for speculative evaluation).
  void clear() {
    diags_.clear();
    errorCount_ = 0;
  }

  const SourceManager& sourceManager() const { return sm_; }

 private:
  const SourceManager& sm_;
  std::vector<Diagnostic> diags_;
  size_t errorCount_ = 0;
};

}  // namespace zeus

// Build-info stamp: which zeusc produced this artifact?
//
// Benchmark JSON, metrics reports, serve responses and crash dumps all
// embed the same small "build" object so a number on a dashboard can be
// traced back to the exact tree, compiler and instrumentation state that
// produced it.  The git describe string is baked in by CMake at
// configure time (see src/CMakeLists.txt); everything else comes from
// predefined compiler macros, so the stamp is consistent across every
// translation unit of one build.
#pragma once

#include <string>

namespace zeus::buildinfo {

/// `git describe --always --dirty --tags` at configure time, or
/// "unknown" outside a git checkout.
[[nodiscard]] const char* gitDescribe();

/// Compiler id + version, e.g. "gcc 13.2.0".
[[nodiscard]] const char* compiler();

/// CMAKE_BUILD_TYPE at configure time ("Release", "Debug", ...), or
/// "unspecified".
[[nodiscard]] const char* buildType();

/// True when ZEUS_TRACE_DISABLED compiled the trace spans out.
[[nodiscard]] bool traceCompiledOut();

/// The stamp as a JSON object (single line, no trailing newline):
///   {"git": "...", "compiler": "...", "build_type": "...",
///    "trace_compiled_out": false}
[[nodiscard]] std::string renderJson();

/// Human line for `zeusc --version`:
///   zeusc <git> (<compiler>, <build_type>, trace spans compiled in)
[[nodiscard]] std::string versionLine();

}  // namespace zeus::buildinfo

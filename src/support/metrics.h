// Runtime metrics for the Zeus pipeline: lock-free counters, per-phase
// timings derived from the trace buffer, per-net activity profiles and
// the stable machine-readable report behind `zeusc --metrics` (schema
// zeus-metrics-v1, documented in docs/observability.md).
//
// This layer holds plain data only — names and numbers.  The simulator
// fills SimCounters/ActivityReport (Simulation::metricsCounters(),
// Simulation::activityReport()); this header renders them, so the
// support layer stays free of sim dependencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/support/histogram.h"
#include "src/support/limits.h"

namespace zeus::metrics {

/// A process-wide named counter.  Increments go to a lock-free
/// thread-local cell (plain ++ on already-registered threads); value()
/// takes the registry lock and sums every thread's cell.  Intended for
/// coarse pipeline totals (compilations run, designs elaborated), not
/// per-cycle hot paths — those use the per-evaluator EvalStats.
class Counter {
 public:
  /// `name` must be a string literal (stored by pointer).
  explicit Counter(const char* name);

  void add(uint64_t n = 1);
  [[nodiscard]] uint64_t value() const;
  [[nodiscard]] const char* name() const { return name_; }

  /// Every registered counter with its current value, for reports.
  static std::vector<std::pair<std::string, uint64_t>> allValues();

 private:
  const char* name_;
  uint32_t id_;
};

/// Aggregated wall-clock of one pipeline phase (all spans with that name
/// in the trace buffer, category "compile" or "sim").
struct PhaseTiming {
  std::string name;
  std::string category;
  uint64_t micros = 0;
  uint64_t count = 0;  ///< spans aggregated
};

/// Folds the current trace buffer into one entry per (name, category),
/// in first-seen order.  Empty when tracing was never enabled.
[[nodiscard]] std::vector<PhaseTiming> phaseTimings();

/// Runtime counter snapshot of one simulation run (scalar or batch).
struct SimCounters {
  bool ran = false;
  std::string evaluator;  ///< "firing" / "naive" / "levelized" / "batch"
  uint64_t cycles = 0;
  uint64_t lanes = 1;
  uint64_t laneCycles = 0;  ///< cycles × active lanes
  uint64_t nodeFirings = 0;
  uint64_t inputEvents = 0;
  uint64_t sweeps = 0;
  uint64_t netResolutions = 0;
  uint64_t shortCircuitSkips = 0;
  uint64_t contentionChecks = 0;
  uint64_t epochResets = 0;
  /// Smallest remaining firing-watchdog budget seen in any cycle; -1 when
  /// the evaluator has no watchdog (naive, levelized, batch).
  int64_t watchdogMarginMin = -1;
  uint64_t faults = 0;            ///< SimError records (all codes)
  uint64_t contentionFaults = 0;  ///< SimContention subset
};

/// Per-net activity: toggle counts and UNDEF/NOINFL dwell, keyed to
/// netlist names.  Produced by Simulation::activityReport().
struct ActivityEntry {
  std::string net;
  uint64_t toggles = 0;       ///< value changes between profiled cycles
  uint64_t undefCycles = 0;   ///< cycles spent at UNDEF
  uint64_t noinflCycles = 0;  ///< cycles spent at NOINFL
  uint32_t depth = 0;         ///< combinational level (cone depth)
};

struct ActivityReport {
  bool ran = false;
  uint64_t cycles = 0;       ///< profiled (latched) cycles
  uint64_t netsProfiled = 0;
  uint64_t totalToggles = 0;
  std::vector<ActivityEntry> hottest;  ///< top by toggles, descending
  std::vector<ActivityEntry> deepest;  ///< top by depth, descending

  /// "activity: ..." human-readable block for --stats.
  [[nodiscard]] std::string renderText() const;
};

/// Everything `zeusc --metrics` writes for one run.
struct MetricsReport {
  std::string design;
  std::vector<PhaseTiming> phases;
  ResourceReport resources;
  SimCounters sim;
  ActivityReport activity;
  /// Latency histograms recorded during the run (farm block wall time,
  /// serve request latency, cache hit/miss timing...).  Additive
  /// zeus-metrics-v1 "latency" block; renders as {} when empty.
  std::vector<histogram::Snapshot> latency;

  /// zeus-metrics-v1 JSON object (docs/observability.md).
  [[nodiscard]] std::string renderJson() const;
  /// Aligned human-readable summary (the --stats table).
  [[nodiscard]] std::string renderText() const;
};

/// JSON string escaping shared by every machine-readable renderer.
[[nodiscard]] std::string jsonEscape(std::string_view s);

/// The "sim" object of the zeus-metrics-v1 schema, as one line.  Shared
/// by MetricsReport::renderJson and the bench JSON emitters so the
/// embedded metrics block in BENCH_*.json keeps the same key set.
[[nodiscard]] std::string simCountersJson(const SimCounters& c);

}  // namespace zeus::metrics

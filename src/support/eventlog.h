// Structured event log + crash flight recorder for the Zeus service
// stack (schema zeus-log-v1, documented in docs/observability.md).
//
// Every interesting moment in the pipeline — a compile phase finishing, a
// farm run starting, a serve request resolving against the compile cache,
// a budget fault — is one emit() call: monotonic timestamp, severity,
// subsystem, event name, the current request id and a handful of
// key=value fields.  Events render as JSONL (`zeusc --log out.jsonl`):
// one self-contained JSON object per line, so a service log can be
// tailed, grepped and joined on "req" without parsing state.
//
// Concurrency contract — the same one as the trace buffer
// (src/support/trace.h): emit() may run from any thread at any time.
// Serialized lines collect in per-thread buffers under the buffer's own
// (uncontended) mutex; clear()/setEnabled(false) bump a generation stamp
// so an emit racing a clear drops its line instead of resurrecting it
// into a buffer the caller believes is quiescent.  When neither the log
// sink nor the flight recorder is on, emit() costs two relaxed atomic
// loads and serializes nothing.
//
// The flight recorder (zeus::flightrec) is the part that survives a
// crash: every emitted event is also pre-serialized into a bounded
// global ring of fixed-size slots, and trace::Span keeps a per-thread
// open-span stack beside it.  arm() installs SIGSEGV/SIGABRT handlers
// that dump the ring + span stacks to a .zeus-crash.json file using only
// async-signal-safe calls (open/write on pre-serialized bytes — no
// malloc, no locks, no formatting); dumpNow() writes the same file from
// normal context on SimWatchdog/budget faults.  A dead farm worker or
// serve request leaves a post-mortem either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

namespace zeus::eventlog {

enum class Severity { Debug, Info, Warn, Error };
[[nodiscard]] const char* severityName(Severity sev);

/// One key=value field of an event.  `key` must be a string literal.
/// Build with str()/num()/boolean() so quoting is decided once, here.
struct Field {
  const char* key;
  std::string value;
  bool quoted;  ///< true: JSON-escape + quote; false: raw literal
};

[[nodiscard]] Field str(const char* key, std::string_view value);
[[nodiscard]] Field num(const char* key, uint64_t value);
[[nodiscard]] Field num(const char* key, int64_t value);
[[nodiscard]] Field num(const char* key, double value);
[[nodiscard]] Field boolean(const char* key, bool value);

/// Globally enables/disables JSONL collection.  Thread-safe.  Disabling
/// drops events emitted concurrently with the flip (generation rule).
/// The flight-recorder ring records independently of this switch.
void setEnabled(bool on);
[[nodiscard]] bool enabled();

/// Discards every collected line (all threads).  Emits racing the clear
/// drop their line (generation rule, as trace::clear()).
void clear();

/// Number of collected lines so far (all threads).
[[nodiscard]] size_t eventCount();

/// Tags every subsequent event (all threads) with this request id until
/// changed; empty clears the tag.  The serve loop sets it per request so
/// farm-worker events carry the request that caused them.
void setRequestId(std::string_view id);
[[nodiscard]] std::string requestId();

/// Records one event.  `subsystem` and `event` must be string literals
/// (e.g. "serve", "request-done").  Near-free when both the log sink and
/// the flight recorder are off.
void emit(Severity sev, const char* subsystem, const char* event,
          std::initializer_list<Field> fields = {});

/// All collected lines in timestamp order, prefixed with one zeus-log-v1
/// header line carrying the build-info stamp.  Every line is one JSON
/// object: {"v": 1, "ts_us": ..., "sev": "...", "sub": "...",
/// "ev": "...", ["req": "...",] ["fields": {...}]}.
[[nodiscard]] std::string renderJsonl();

}  // namespace zeus::eventlog

namespace zeus::flightrec {

/// Arms the recorder: every eventlog emit is mirrored into the crash
/// ring, trace spans maintain the open-span stacks, and SIGSEGV/SIGABRT
/// dump everything to `path` before the process dies.  Idempotent; the
/// latest path wins.  `path` is copied into a fixed buffer (truncated to
/// its capacity).
void arm(const char* path);
[[nodiscard]] bool armed();

/// Restores the default signal dispositions and empties the ring (for
/// tests; the CLI stays armed for its whole life).
void disarm();

/// Writes the flight-recorder dump from normal context — the
/// SimWatchdog / budget-fault path, where the process exits deliberately
/// but the post-mortem is just as useful.  `reason` must be a short
/// literal ("watchdog", "budget", ...).  Returns false when the recorder
/// is unarmed or the file cannot be written.
bool dumpNow(const char* reason);

/// Open-span bookkeeping, called by trace::Span when armed.  `name` and
/// `category` must be string literals.
void pushSpan(const char* name, const char* category);
void popSpan();

/// Events currently held in the ring (test introspection).
[[nodiscard]] size_t ringCount();

}  // namespace zeus::flightrec

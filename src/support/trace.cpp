#include "src/support/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

#include "src/support/eventlog.h"

namespace zeus::trace {

namespace {

std::atomic<bool> g_enabled{false};

/// Buffer generation: bumped by clear() and setEnabled(false).  A span
/// records only when the epoch it captured at entry is still current, so
/// spans straddling a clear/disable are dropped instead of resurrecting
/// events into a supposedly-empty buffer.
std::atomic<uint64_t> g_epoch{1};

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-thread event buffer.  The owning thread appends under `mutex`
/// (uncontended except while a snapshot/clear touches this buffer); the
/// registry mutex is taken only on a thread's first event and when the
/// set of buffers is enumerated.  Lock order: registry mutex, then buffer
/// mutex — the recording path takes only the buffer mutex.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  uint32_t tid = 0;
};

std::mutex g_registryMutex;
std::vector<ThreadBuffer*>& registry() {
  // Heap-allocated and never freed: thread buffers are reachable only
  // through this vector, which must survive static destruction for
  // LeakSanitizer's post-exit scan.
  static auto* r = new std::vector<ThreadBuffer*>;
  return *r;
}

ThreadBuffer& localBuffer() {
  thread_local ThreadBuffer* buf = [] {
    auto* b = new ThreadBuffer;  // leaked on purpose: outlives the thread
    std::lock_guard<std::mutex> lock(g_registryMutex);
    b->tid = static_cast<uint32_t>(registry().size() + 1);
    registry().push_back(b);
    return b;
  }();
  return *buf;
}

}  // namespace

void setEnabled(bool on) {
  if (!on) g_epoch.fetch_add(1, std::memory_order_seq_cst);
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void clear() {
  // Invalidate open spans FIRST: a span that loads the epoch after this
  // bump drops itself; one that loaded it before either appends while we
  // wait for its buffer mutex (and is cleared below) or re-checks under
  // the mutex after we release it and drops itself.  Either way no
  // pre-clear span survives into the emptied buffers.
  g_epoch.fetch_add(1, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(g_registryMutex);
  for (ThreadBuffer* b : registry()) {
    std::lock_guard<std::mutex> bufLock(b->mutex);
    b->events.clear();
  }
}

size_t eventCount() {
  std::lock_guard<std::mutex> lock(g_registryMutex);
  size_t n = 0;
  for (ThreadBuffer* b : registry()) {
    std::lock_guard<std::mutex> bufLock(b->mutex);
    n += b->events.size();
  }
  return n;
}

std::vector<Event> snapshot() {
  std::vector<Event> all;
  {
    std::lock_guard<std::mutex> lock(g_registryMutex);
    for (ThreadBuffer* b : registry()) {
      std::lock_guard<std::mutex> bufLock(b->mutex);
      all.insert(all.end(), b->events.begin(), b->events.end());
    }
  }
  std::sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return a.startUs < b.startUs;
  });
  return all;
}

std::string renderChromeJson() {
  std::vector<Event> all = snapshot();
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < all.size(); ++i) {
    const Event& e = all[i];
    if (i) out += ",";
    out += "\n  {\"name\":\"";
    out += e.name;
    out += "\",\"cat\":\"";
    out += e.category;
    out += "\",\"ph\":\"X\",\"ts\":" + std::to_string(e.startUs) +
           ",\"dur\":" + std::to_string(e.durUs) +
           ",\"pid\":1,\"tid\":" + std::to_string(e.tid) + "}";
  }
  out += all.empty() ? "]}\n" : "\n]}\n";
  return out;
}

Span::Span(const char* name, const char* category)
    : name_(name), category_(category), startUs_(0), epoch_(0),
      frPushed_(false) {
  // The flight recorder tracks open spans independently of whether span
  // recording is enabled: the crash dump wants "where was each thread"
  // even in a run that never asked for a trace file.
  if (flightrec::armed()) {
    flightrec::pushSpan(name, category);
    frPushed_ = true;
  }
  if (enabled()) {
    epoch_ = g_epoch.load(std::memory_order_seq_cst);
    startUs_ = nowUs();
    if (startUs_ == 0) startUs_ = 1;  // 0 means "off"; never record it
  }
}

Span::~Span() {
  if (frPushed_) flightrec::popSpan();
  if (startUs_ == 0) return;
  if (!enabled()) return;  // disabled mid-span: drop
  uint64_t end = nowUs();
  ThreadBuffer& buf = localBuffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  // Re-check under the lock: clear()/setEnabled(false) since entry means
  // this span belongs to a discarded generation.
  if (g_epoch.load(std::memory_order_seq_cst) != epoch_) return;
  buf.events.push_back(
      {name_, category_, startUs_, end > startUs_ ? end - startUs_ : 0,
       buf.tid});
}

}  // namespace zeus::trace

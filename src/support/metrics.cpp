#include "src/support/metrics.h"

#include <array>
#include <atomic>
#include <cassert>
#include <cstdio>
#include <mutex>

#include "src/support/buildinfo.h"
#include "src/support/trace.h"

namespace zeus::metrics {

namespace {

/// Fixed per-thread cell block: counter ids index into it directly, so
/// add() never allocates or locks.  256 named counters is far above what
/// the pipeline defines; the ctor asserts the cap.
constexpr size_t kMaxCounters = 256;

struct Cells {
  std::array<std::atomic<uint64_t>, kMaxCounters> v{};
};

struct Registry {
  std::mutex mutex;
  std::vector<const char*> names;
  std::vector<Cells*> threadCells;
};

Registry& registry() {
  // Heap-allocated and never freed: the registry must stay alive past
  // static destruction (worker-thread cells are reachable only through
  // it, and LeakSanitizer scans after exit teardown).
  static Registry* r = new Registry;
  return *r;
}

Cells& localCells() {
  thread_local Cells* cells = [] {
    auto* c = new Cells;  // leaked on purpose: outlives the thread
    std::lock_guard<std::mutex> lock(registry().mutex);
    registry().threadCells.push_back(c);
    return c;
  }();
  return *cells;
}

}  // namespace

Counter::Counter(const char* name) : name_(name) {
  std::lock_guard<std::mutex> lock(registry().mutex);
  assert(registry().names.size() < kMaxCounters);
  id_ = static_cast<uint32_t>(registry().names.size());
  registry().names.push_back(name);
}

void Counter::add(uint64_t n) {
  localCells().v[id_].fetch_add(n, std::memory_order_relaxed);
}

uint64_t Counter::value() const {
  std::lock_guard<std::mutex> lock(registry().mutex);
  uint64_t total = 0;
  for (Cells* c : registry().threadCells) {
    total += c->v[id_].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::pair<std::string, uint64_t>> Counter::allValues() {
  std::lock_guard<std::mutex> lock(registry().mutex);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(registry().names.size());
  for (size_t i = 0; i < registry().names.size(); ++i) {
    uint64_t total = 0;
    for (Cells* c : registry().threadCells) {
      total += c->v[i].load(std::memory_order_relaxed);
    }
    out.emplace_back(registry().names[i], total);
  }
  return out;
}

std::vector<PhaseTiming> phaseTimings() {
  std::vector<PhaseTiming> out;
  for (const trace::Event& e : trace::snapshot()) {
    PhaseTiming* slot = nullptr;
    for (PhaseTiming& p : out) {
      if (p.name == e.name && p.category == e.category) {
        slot = &p;
        break;
      }
    }
    if (!slot) {
      out.push_back({e.name, e.category, 0, 0});
      slot = &out.back();
    }
    slot->micros += e.durUs;
    ++slot->count;
  }
  return out;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string activityEntryJson(const ActivityEntry& e) {
  return "{\"net\": \"" + jsonEscape(e.net) +
         "\", \"toggles\": " + std::to_string(e.toggles) +
         ", \"undef_cycles\": " + std::to_string(e.undefCycles) +
         ", \"noinfl_cycles\": " + std::to_string(e.noinflCycles) +
         ", \"depth\": " + std::to_string(e.depth) + "}";
}

std::string entryListJson(const std::vector<ActivityEntry>& list) {
  std::string out = "[";
  for (size_t i = 0; i < list.size(); ++i) {
    out += i ? ",\n      " : "\n      ";
    out += activityEntryJson(list[i]);
  }
  if (!list.empty()) out += "\n    ";
  out += "]";
  return out;
}

std::string statLine(const char* label, const std::string& value) {
  std::string out = "  ";
  out += label;
  if (out.size() < 26) out.append(26 - out.size(), ' ');
  out += value;
  out += '\n';
  return out;
}

}  // namespace

std::string ActivityReport::renderText() const {
  if (!ran) return "";
  std::string out = "activity: " + std::to_string(cycles) + " cycle(s), " +
                    std::to_string(netsProfiled) + " net(s), " +
                    std::to_string(totalToggles) + " toggle(s)\n";
  if (!hottest.empty()) {
    out += "  hottest nets (toggles / undef / noinfl / depth)\n";
    for (const ActivityEntry& e : hottest) {
      std::string name = "    " + e.net;
      if (name.size() < 30) name.append(30 - name.size(), ' ');
      out += name + " " + std::to_string(e.toggles) + " / " +
             std::to_string(e.undefCycles) + " / " +
             std::to_string(e.noinflCycles) + " / " +
             std::to_string(e.depth) + "\n";
    }
  }
  if (!deepest.empty()) {
    out += "  deepest cones\n";
    for (const ActivityEntry& e : deepest) {
      std::string name = "    " + e.net;
      if (name.size() < 30) name.append(30 - name.size(), ' ');
      out += name + " depth " + std::to_string(e.depth) + ", " +
             std::to_string(e.toggles) + " toggle(s)\n";
    }
  }
  return out;
}

std::string simCountersJson(const SimCounters& c) {
  std::string out = "{";
  out += std::string("\"ran\": ") + (c.ran ? "true" : "false");
  out += ", \"evaluator\": \"" + jsonEscape(c.evaluator) + "\"";
  out += ", \"cycles\": " + std::to_string(c.cycles);
  out += ", \"lanes\": " + std::to_string(c.lanes);
  out += ", \"lane_cycles\": " + std::to_string(c.laneCycles);
  out += ", \"node_firings\": " + std::to_string(c.nodeFirings);
  out += ", \"input_events\": " + std::to_string(c.inputEvents);
  out += ", \"sweeps\": " + std::to_string(c.sweeps);
  out += ", \"net_resolutions\": " + std::to_string(c.netResolutions);
  out += ", \"short_circuit_skips\": " + std::to_string(c.shortCircuitSkips);
  out += ", \"contention_checks\": " + std::to_string(c.contentionChecks);
  out += ", \"epoch_resets\": " + std::to_string(c.epochResets);
  out += ", \"watchdog_margin_min\": " + std::to_string(c.watchdogMarginMin);
  out += ", \"faults\": " + std::to_string(c.faults);
  out += ", \"contention_faults\": " + std::to_string(c.contentionFaults);
  out += "}";
  return out;
}

std::string MetricsReport::renderJson() const {
  const ResourceUsage& u = resources.usage;
  std::string out = "{\n  \"zeus-metrics\": 1,\n  \"design\": \"" +
                    jsonEscape(design) + "\",\n";

  out += "  \"compile\": {\"phases\": [";
  for (size_t i = 0; i < phases.size(); ++i) {
    out += i ? ",\n" : "\n";
    out += "    {\"name\": \"" + jsonEscape(phases[i].name) +
           "\", \"category\": \"" + jsonEscape(phases[i].category) +
           "\", \"micros\": " + std::to_string(phases[i].micros) +
           ", \"count\": " + std::to_string(phases[i].count) + "}";
  }
  out += phases.empty() ? "]},\n" : "\n  ]},\n";

  out += "  \"resources\": {";
  out += "\"source_bytes\": " + std::to_string(u.sourceBytes);
  out += ", \"tokens\": " + std::to_string(u.tokens);
  out += ", \"parse_depth_peak\": " + std::to_string(u.parseDepthPeak);
  out += ", \"parse_errors\": " + std::to_string(u.parseErrors);
  out += ", \"type_depth_peak\": " + std::to_string(u.typeDepthPeak);
  out += ", \"types\": " + std::to_string(u.typesInstantiated);
  out += ", \"instance_depth_peak\": " + std::to_string(u.instanceDepthPeak);
  out += ", \"instances\": " + std::to_string(u.instances);
  out += ", \"nets\": " + std::to_string(u.nets);
  out += ", \"nodes\": " + std::to_string(u.nodes);
  out += ", \"sim_cycles\": " + std::to_string(u.simCycles);
  out += ", \"sim_events\": " + std::to_string(u.simEvents);
  out += ", \"sim_faults\": " + std::to_string(u.simFaults);
  out += "},\n";

  out += "  \"sim\": " + simCountersJson(sim) + ",\n";

  // Additive v1 blocks (PR 8): build-info stamp + latency histograms.
  out += "  \"build\": " + buildinfo::renderJson() + ",\n";
  out += "  \"latency\": " + histogram::renderLatencyBlock(latency, "  ") +
         ",\n";

  out += "  \"activity\": {";
  out += std::string("\"ran\": ") + (activity.ran ? "true" : "false");
  out += ", \"cycles\": " + std::to_string(activity.cycles);
  out += ", \"nets_profiled\": " + std::to_string(activity.netsProfiled);
  out += ", \"total_toggles\": " + std::to_string(activity.totalToggles);
  out += ",\n    \"hottest\": " + entryListJson(activity.hottest);
  out += ",\n    \"deepest\": " + entryListJson(activity.deepest);
  out += "\n  }\n}\n";
  return out;
}

std::string MetricsReport::renderText() const {
  std::string out = "metrics for '" + design + "'\n";
  if (!phases.empty()) {
    out += "compile phases (wall-clock)\n";
    for (const PhaseTiming& p : phases) {
      out += statLine(p.name.c_str(), std::to_string(p.micros) + " us (x" +
                                          std::to_string(p.count) + ")");
    }
  }
  if (sim.ran) {
    out += "simulation (" + sim.evaluator + ", " +
           std::to_string(sim.lanes) + " lane(s))\n";
    out += statLine("cycles", std::to_string(sim.cycles));
    out += statLine("lane cycles", std::to_string(sim.laneCycles));
    out += statLine("node firings", std::to_string(sim.nodeFirings));
    out += statLine("net resolutions", std::to_string(sim.netResolutions));
    out += statLine("input events", std::to_string(sim.inputEvents));
    out += statLine("short-circuit skips",
                    std::to_string(sim.shortCircuitSkips));
    out += statLine("contention checks",
                    std::to_string(sim.contentionChecks));
    out += statLine("epoch resets", std::to_string(sim.epochResets));
    out += statLine("sweeps", std::to_string(sim.sweeps));
    if (sim.watchdogMarginMin >= 0) {
      out += statLine("watchdog margin min",
                      std::to_string(sim.watchdogMarginMin));
    }
    out += statLine("faults", std::to_string(sim.faults) + " (" +
                                  std::to_string(sim.contentionFaults) +
                                  " contention)");
  }
  out += activity.renderText();
  out += resources.render();
  return out;
}

}  // namespace zeus::metrics

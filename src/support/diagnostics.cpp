#include "src/support/diagnostics.h"

#include <algorithm>

namespace zeus {

void DiagnosticEngine::report(Diag code, Severity sev, SourceLoc loc,
                              std::string message) {
  if (sev == Severity::Error) ++errorCount_;
  diags_.push_back({code, sev, loc, std::move(message)});
}

bool DiagnosticEngine::has(Diag code) const {
  return std::any_of(diags_.begin(), diags_.end(),
                     [code](const Diagnostic& d) { return d.code == code; });
}

std::string DiagnosticEngine::renderAll() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    switch (d.severity) {
      case Severity::Note: out += "note "; break;
      case Severity::Warning: out += "warning "; break;
      case Severity::Error: out += "error "; break;
    }
    out += sm_.describe(d.loc);
    out += ": ";
    out += d.message;
    out += '\n';
  }
  return out;
}

}  // namespace zeus

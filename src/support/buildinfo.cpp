#include "src/support/buildinfo.h"

#include "src/support/metrics.h"

// Baked in by src/CMakeLists.txt for this one translation unit; default
// so the file still compiles standalone (e.g. in a fuzzer driver build).
#ifndef ZEUS_GIT_DESCRIBE
#define ZEUS_GIT_DESCRIBE "unknown"
#endif
#ifndef ZEUS_BUILD_TYPE
#define ZEUS_BUILD_TYPE "unspecified"
#endif

namespace zeus::buildinfo {

const char* gitDescribe() { return ZEUS_GIT_DESCRIBE; }

const char* compiler() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

const char* buildType() {
  const char* t = ZEUS_BUILD_TYPE;
  return *t ? t : "unspecified";
}

bool traceCompiledOut() {
#ifdef ZEUS_TRACE_DISABLED
  return true;
#else
  return false;
#endif
}

std::string renderJson() {
  std::string out = "{\"git\": \"" + metrics::jsonEscape(gitDescribe()) + "\"";
  out += ", \"compiler\": \"" + metrics::jsonEscape(compiler()) + "\"";
  out += ", \"build_type\": \"" + metrics::jsonEscape(buildType()) + "\"";
  out += ", \"trace_compiled_out\": ";
  out += traceCompiledOut() ? "true" : "false";
  out += "}";
  return out;
}

std::string versionLine() {
  std::string out = "zeusc ";
  out += gitDescribe();
  out += " (";
  out += compiler();
  out += ", ";
  out += buildType();
  out += traceCompiledOut() ? ", trace spans compiled out)"
                            : ", trace spans compiled in)";
  return out;
}

}  // namespace zeus::buildinfo

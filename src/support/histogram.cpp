#include "src/support/histogram.h"

#include "src/support/metrics.h"

namespace zeus::histogram {

uint64_t Histogram::percentile(unsigned p) const {
  if (count_ == 0 || p == 0) return 0;
  if (p > 100) p = 100;
  // ceil(count * p / 100) in integers; count*p cannot overflow for any
  // realistic recording volume (count < 2^57).
  const uint64_t rank = (count_ * p + 99) / 100;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      const uint64_t bound = bucketUpperBound(i);
      return bound < max_ ? bound : max_;
    }
  }
  return max_;
}

Snapshot snapshot(const Histogram& h, std::string name, std::string unit) {
  Snapshot s;
  s.name = std::move(name);
  s.unit = std::move(unit);
  s.count = h.count();
  s.sum = h.sum();
  s.max = h.max();
  s.p50 = h.percentile(50);
  s.p90 = h.percentile(90);
  s.p99 = h.percentile(99);
  for (size_t i = 0; i < kBuckets; ++i) {
    if (h.bucketCount(i)) {
      s.buckets.emplace_back(static_cast<uint32_t>(i), h.bucketCount(i));
    }
  }
  return s;
}

std::string renderJson(const Snapshot& s) {
  std::string out = "{\"unit\": \"" + metrics::jsonEscape(s.unit) + "\"";
  out += ", \"count\": " + std::to_string(s.count);
  out += ", \"sum\": " + std::to_string(s.sum);
  out += ", \"max\": " + std::to_string(s.max);
  out += ", \"p50\": " + std::to_string(s.p50);
  out += ", \"p90\": " + std::to_string(s.p90);
  out += ", \"p99\": " + std::to_string(s.p99);
  out += ", \"buckets\": [";
  for (size_t i = 0; i < s.buckets.size(); ++i) {
    if (i) out += ", ";
    out += "[" + std::to_string(s.buckets[i].first) + ", " +
           std::to_string(s.buckets[i].second) + "]";
  }
  out += "]}";
  return out;
}

std::string renderLatencyBlock(const std::vector<Snapshot>& snapshots,
                               const std::string& indent) {
  std::string out = "{";
  for (size_t i = 0; i < snapshots.size(); ++i) {
    out += i ? ",\n" : "\n";
    out += indent + "  \"" + metrics::jsonEscape(snapshots[i].name) +
           "\": " + renderJson(snapshots[i]);
  }
  out += snapshots.empty() ? "}" : "\n" + indent + "}";
  return out;
}

}  // namespace zeus::histogram

#include "src/support/eventlog.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "src/support/buildinfo.h"
#include "src/support/metrics.h"

namespace zeus::flightrec {
namespace {
std::atomic<bool> g_armed{false};
}
namespace detail {
void recordLine(const std::string& line);
}
}  // namespace zeus::flightrec

namespace zeus::eventlog {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_epoch{1};  // generation stamp, as trace.cpp

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One serialized JSONL line, timestamped for the cross-thread merge.
struct Line {
  uint64_t tsUs;
  std::string text;
};

/// Per-thread line buffer — same shape and lock order as the trace
/// buffer: own mutex for appends, registry mutex only on first use and
/// at enumerate/clear time.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Line> lines;
};

std::mutex g_registryMutex;
std::vector<ThreadBuffer*>& registry() {
  // Heap-allocated, never freed: must survive static destruction for
  // LeakSanitizer's post-exit scan (same rule as trace.cpp).
  static auto* r = new std::vector<ThreadBuffer*>;
  return *r;
}

ThreadBuffer& localBuffer() {
  thread_local ThreadBuffer* buf = [] {
    auto* b = new ThreadBuffer;  // leaked on purpose: outlives the thread
    std::lock_guard<std::mutex> lock(g_registryMutex);
    registry().push_back(b);
    return b;
  }();
  return *buf;
}

std::mutex g_requestIdMutex;
std::string& requestIdStorage() {
  static auto* s = new std::string;  // never freed: read at any emit
  return *s;
}

std::string formatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string serializeLine(uint64_t tsUs, Severity sev, const char* subsystem,
                          const char* event, const std::string& req,
                          std::initializer_list<Field> fields) {
  std::string out = "{\"v\": 1, \"ts_us\": " + std::to_string(tsUs);
  out += ", \"sev\": \"";
  out += severityName(sev);
  out += "\", \"sub\": \"" + metrics::jsonEscape(subsystem) + "\"";
  out += ", \"ev\": \"" + metrics::jsonEscape(event) + "\"";
  if (!req.empty()) out += ", \"req\": \"" + metrics::jsonEscape(req) + "\"";
  if (fields.size()) {
    out += ", \"fields\": {";
    bool first = true;
    for (const Field& f : fields) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + metrics::jsonEscape(f.key) + "\": ";
      if (f.quoted) {
        out += "\"" + metrics::jsonEscape(f.value) + "\"";
      } else {
        out += f.value;
      }
    }
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace

const char* severityName(Severity sev) {
  switch (sev) {
    case Severity::Debug: return "debug";
    case Severity::Info: return "info";
    case Severity::Warn: return "warn";
    case Severity::Error: return "error";
  }
  return "info";
}

Field str(const char* key, std::string_view value) {
  return {key, std::string(value), true};
}
Field num(const char* key, uint64_t value) {
  return {key, std::to_string(value), false};
}
Field num(const char* key, int64_t value) {
  return {key, std::to_string(value), false};
}
Field num(const char* key, double value) {
  return {key, formatDouble(value), false};
}
Field boolean(const char* key, bool value) {
  return {key, value ? "true" : "false", false};
}

void setEnabled(bool on) {
  if (!on) g_epoch.fetch_add(1, std::memory_order_seq_cst);
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void clear() {
  // Invalidate in-flight emits FIRST (see trace::clear for the full
  // argument): an emit that captured the old generation re-checks under
  // its buffer mutex and drops its line.
  g_epoch.fetch_add(1, std::memory_order_seq_cst);
  std::lock_guard<std::mutex> lock(g_registryMutex);
  for (ThreadBuffer* b : registry()) {
    std::lock_guard<std::mutex> bufLock(b->mutex);
    b->lines.clear();
  }
}

size_t eventCount() {
  std::lock_guard<std::mutex> lock(g_registryMutex);
  size_t n = 0;
  for (ThreadBuffer* b : registry()) {
    std::lock_guard<std::mutex> bufLock(b->mutex);
    n += b->lines.size();
  }
  return n;
}

void setRequestId(std::string_view id) {
  std::lock_guard<std::mutex> lock(g_requestIdMutex);
  requestIdStorage().assign(id);
}

std::string requestId() {
  std::lock_guard<std::mutex> lock(g_requestIdMutex);
  return requestIdStorage();
}

void emit(Severity sev, const char* subsystem, const char* event,
          std::initializer_list<Field> fields) {
  const bool toLog = enabled();
  const bool toRing = flightrec::armed();
  if (!toLog && !toRing) return;  // the cost when telemetry is off

  const uint64_t epoch = g_epoch.load(std::memory_order_seq_cst);
  const uint64_t ts = nowUs();
  const std::string line =
      serializeLine(ts, sev, subsystem, event, requestId(), fields);

  if (toRing) flightrec::detail::recordLine(line);
  if (!toLog) return;

  ThreadBuffer& buf = localBuffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  // Re-check under the lock: clear()/setEnabled(false) since the capture
  // means this line belongs to a discarded generation.
  if (g_epoch.load(std::memory_order_seq_cst) != epoch) return;
  buf.lines.push_back({ts, line});
}

std::string renderJsonl() {
  std::vector<Line> all;
  {
    std::lock_guard<std::mutex> lock(g_registryMutex);
    for (ThreadBuffer* b : registry()) {
      std::lock_guard<std::mutex> bufLock(b->mutex);
      all.insert(all.end(), b->lines.begin(), b->lines.end());
    }
  }
  std::sort(all.begin(), all.end(), [](const Line& a, const Line& b) {
    return a.tsUs != b.tsUs ? a.tsUs < b.tsUs : a.text < b.text;
  });
  std::string out = "{\"v\": 1, \"schema\": \"zeus-log-v1\", \"build\": " +
                    buildinfo::renderJson() + "}\n";
  for (const Line& l : all) {
    out += l.text;
    out += "\n";
  }
  return out;
}

}  // namespace zeus::eventlog

namespace zeus::flightrec {

namespace {

// ---- crash ring -----------------------------------------------------
//
// Fixed slots holding pre-serialized event lines.  Writers claim a slot
// with one fetch_add and copy bytes under the slot's mutex; the signal
// handler reads len (acquire) and data with no locks — best-effort by
// design, a torn slot mid-overwrite is skipped via the len==0 window.
// dumpNow() (normal context) takes the slot mutexes and is exact.

constexpr size_t kRingSlots = 128;
constexpr size_t kSlotBytes = 512;

struct Slot {
  std::mutex mutex;  // writers + dumpNow(); the signal handler skips it
  std::atomic<uint32_t> len{0};
  char data[kSlotBytes];
};

Slot g_ring[kRingSlots];
std::atomic<uint64_t> g_ringHead{0};  // total events ever recorded

// ---- open-span stacks -----------------------------------------------

constexpr size_t kMaxSpanDepth = 16;
constexpr size_t kMaxSpanThreads = 64;

struct SpanStack {
  std::atomic<uint32_t> depth{0};
  std::atomic<const char*> names[kMaxSpanDepth];
  std::atomic<const char*> cats[kMaxSpanDepth];
};

SpanStack g_spanStacks[kMaxSpanThreads];
std::atomic<uint32_t> g_spanThreads{0};

SpanStack* localSpanStack() {
  thread_local SpanStack* s = []() -> SpanStack* {
    uint32_t idx = g_spanThreads.fetch_add(1, std::memory_order_relaxed);
    return idx < kMaxSpanThreads ? &g_spanStacks[idx] : nullptr;
  }();
  return s;
}

// ---- dump target, pre-serialized at arm() ---------------------------

constexpr size_t kPathBytes = 512;
char g_dumpPath[kPathBytes];
char g_buildJson[kSlotBytes];

// ---- async-signal-safe writer ---------------------------------------

void writeAll(int fd, const char* data, size_t n) {
  while (n) {
    ssize_t w = ::write(fd, data, n);
    if (w <= 0) return;  // nothing more we can do in a handler
    data += w;
    n -= static_cast<size_t>(w);
  }
}

void writeStr(int fd, const char* s) { writeAll(fd, s, std::strlen(s)); }

void writeU64(int fd, uint64_t v) {
  char buf[20];
  size_t i = sizeof buf;
  do {
    buf[--i] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v);
  writeAll(fd, buf + i, sizeof buf - i);
}

/// The dump writer.  From a signal handler (`fromSignal`) it uses only
/// open/write on pre-serialized bytes; from normal context it also takes
/// the slot mutexes so the event list is exact.
bool writeDump(const char* reason, int sig, bool fromSignal) {
  if (!g_dumpPath[0]) return false;
  int fd = ::open(g_dumpPath, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;

  writeStr(fd, "{\"schema\": \"zeus-crash-v1\", \"reason\": \"");
  writeStr(fd, reason);
  writeStr(fd, "\", \"signal\": ");
  writeU64(fd, sig > 0 ? static_cast<uint64_t>(sig) : 0);
  writeStr(fd, ", \"build\": ");
  writeStr(fd, g_buildJson[0] ? g_buildJson : "{}");

  const uint64_t head = g_ringHead.load(std::memory_order_acquire);
  const uint64_t dropped = head > kRingSlots ? head - kRingSlots : 0;
  writeStr(fd, ", \"dropped\": ");
  writeU64(fd, dropped);

  writeStr(fd, ",\n \"events\": [");
  bool first = true;
  for (uint64_t seq = dropped; seq < head; ++seq) {
    Slot& slot = g_ring[seq % kRingSlots];
    if (!fromSignal) slot.mutex.lock();
    const uint32_t len = slot.len.load(std::memory_order_acquire);
    if (len > 0 && len < kSlotBytes) {
      writeStr(fd, first ? "\n  " : ",\n  ");
      first = false;
      writeAll(fd, slot.data, len);
    }
    if (!fromSignal) slot.mutex.unlock();
  }
  writeStr(fd, first ? "]" : "\n ]");

  writeStr(fd, ",\n \"open_spans\": [");
  first = true;
  const uint32_t nthreads =
      std::min<uint32_t>(g_spanThreads.load(std::memory_order_acquire),
                         kMaxSpanThreads);
  for (uint32_t t = 0; t < nthreads; ++t) {
    SpanStack& s = g_spanStacks[t];
    const uint32_t depth = std::min<uint32_t>(
        s.depth.load(std::memory_order_acquire), kMaxSpanDepth);
    for (uint32_t d = 0; d < depth; ++d) {
      const char* name = s.names[d].load(std::memory_order_relaxed);
      const char* cat = s.cats[d].load(std::memory_order_relaxed);
      if (!name || !cat) continue;  // torn push in another thread: skip
      writeStr(fd, first ? "\n  " : ",\n  ");
      first = false;
      writeStr(fd, "{\"tid\": ");
      writeU64(fd, t + 1);
      writeStr(fd, ", \"depth\": ");
      writeU64(fd, d);
      // name/cat are phase-name string literals (trace contract): no
      // escaping needed, and none is possible in a handler anyway.
      writeStr(fd, ", \"name\": \"");
      writeStr(fd, name);
      writeStr(fd, "\", \"cat\": \"");
      writeStr(fd, cat);
      writeStr(fd, "\"}");
    }
  }
  writeStr(fd, first ? "]}\n" : "\n ]}\n");
  ::close(fd);
  return true;
}

void crashHandler(int sig) {
  writeDump("signal", sig, /*fromSignal=*/true);
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void installHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = crashHandler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
}

}  // namespace

namespace detail {

void recordLine(const std::string& line) {
  const uint64_t seq = g_ringHead.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = g_ring[seq % kRingSlots];
  std::lock_guard<std::mutex> lock(slot.mutex);
  slot.len.store(0, std::memory_order_release);  // close the torn window
  const size_t n = std::min(line.size(), kSlotBytes - 1);
  std::memcpy(slot.data, line.data(), n);
  slot.data[n] = '\0';
  slot.len.store(static_cast<uint32_t>(n), std::memory_order_release);
}

}  // namespace detail

void arm(const char* path) {
  if (!path || !*path) return;
  std::snprintf(g_dumpPath, sizeof g_dumpPath, "%s", path);
  std::snprintf(g_buildJson, sizeof g_buildJson, "%s",
                buildinfo::renderJson().c_str());
  installHandlers();
  g_armed.store(true, std::memory_order_release);
}

bool armed() { return g_armed.load(std::memory_order_relaxed); }

void disarm() {
  g_armed.store(false, std::memory_order_release);
  ::signal(SIGSEGV, SIG_DFL);
  ::signal(SIGABRT, SIG_DFL);
  const uint64_t head = g_ringHead.load(std::memory_order_acquire);
  for (uint64_t seq = head > kRingSlots ? head - kRingSlots : 0; seq < head;
       ++seq) {
    Slot& slot = g_ring[seq % kRingSlots];
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.len.store(0, std::memory_order_release);
  }
  g_ringHead.store(0, std::memory_order_release);
  g_dumpPath[0] = '\0';
}

bool dumpNow(const char* reason) {
  if (!armed()) return false;
  return writeDump(reason, 0, /*fromSignal=*/false);
}

void pushSpan(const char* name, const char* category) {
  SpanStack* s = localSpanStack();
  if (!s) return;  // more live threads than stacks: drop, never block
  const uint32_t d = s->depth.load(std::memory_order_relaxed);
  if (d < kMaxSpanDepth) {
    s->names[d].store(name, std::memory_order_relaxed);
    s->cats[d].store(category, std::memory_order_relaxed);
  }
  // Count past capacity so pops balance; the reader clamps.
  s->depth.store(d + 1, std::memory_order_release);
}

void popSpan() {
  SpanStack* s = localSpanStack();
  if (!s) return;
  const uint32_t d = s->depth.load(std::memory_order_relaxed);
  if (d) s->depth.store(d - 1, std::memory_order_release);
}

size_t ringCount() {
  const uint64_t head = g_ringHead.load(std::memory_order_acquire);
  return head > kRingSlots ? kRingSlots : static_cast<size_t>(head);
}

}  // namespace zeus::flightrec

// Hard resource limits for every stage of the compilation pipeline.
//
// Zeus's static rules stop a *design* from burning transistors (§4.7);
// this header stops the *compiler* from being burned by its inputs.  A
// Limits value travels from Compilation::fromSource through the lexer,
// parser, type table, elaborator and simulator; every breach becomes a
// recoverable diagnostic — never an abort, hang or unbounded allocation.
// ResourceUsage records what was actually consumed so a compilation can
// answer "how close to the budget did this design come?" via
// Compilation::resourceReport().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace zeus {

/// Hard ceilings per pipeline stage.  Zero never means "zero permitted":
/// for the two simulator knobs 0 selects "automatic" / "unlimited" as
/// documented per field.
struct Limits {
  // -- lexer --
  size_t maxSourceBytes = 8u << 20;  ///< longest accepted source buffer
  size_t maxTokens = 2u << 20;       ///< longest accepted token stream

  // -- parser --
  int maxParseDepth = 200;      ///< expression/type/statement nesting
  size_t maxParseErrors = 64;   ///< syntax errors before giving up a buffer

  // -- sema / type instantiation --
  int maxTypeDepth = 200;       ///< recursive type-instantiation depth
  size_t maxTypes = 1u << 20;   ///< distinct instantiated types

  // -- elaboration --
  int maxInstanceDepth = 512;     ///< component instantiation recursion
  size_t maxInstances = 1u << 20; ///< materialised component instances
  size_t maxNets = 1u << 22;      ///< nets in the flat netlist
  uint64_t maxElabSteps = 1u << 24;  ///< statements executed + array elems

  // -- simulation --
  uint64_t maxEventsPerCycle = 0;  ///< firing watchdog; 0 = auto (from graph)
  uint64_t maxSimMillis = 0;       ///< wall-clock budget for step(); 0 = off
};

/// What one compilation actually consumed.  Stages update the usage record
/// they were handed (when any); peaks are monotonic.
struct ResourceUsage {
  size_t sourceBytes = 0;
  size_t tokens = 0;
  int parseDepthPeak = 0;
  size_t parseErrors = 0;
  int typeDepthPeak = 0;
  size_t typesInstantiated = 0;
  int instanceDepthPeak = 0;
  size_t instances = 0;
  size_t nets = 0;
  size_t nodes = 0;
  uint64_t simCycles = 0;
  uint64_t simEvents = 0;
  size_t simFaults = 0;

  void notePeak(int& peak, int depth) {
    if (depth > peak) peak = depth;
  }
};

/// Consumption vs. budget for one compilation (see
/// Compilation::resourceReport()).
struct ResourceReport {
  Limits limits;
  ResourceUsage usage;

  /// Renders the report as an aligned "used / budget" text block.
  [[nodiscard]] std::string render() const;
};

}  // namespace zeus

// The four-valued signal domain of Zeus (paper §3.3, §8).
//
//   0, 1   — defined logic values
//   UNDEF  — undefined (x)
//   NOINFL — no influence: disconnected / high impedance (z)
//
// Only signals of type multiplex can carry NOINFL.
#pragma once

#include <cstdint>
#include <string_view>

namespace zeus {

enum class Logic : uint8_t { Zero = 0, One = 1, Undef = 2, NoInfl = 3 };

inline constexpr bool isDefined(Logic v) {
  return v == Logic::Zero || v == Logic::One;
}

inline constexpr Logic logicFromBool(bool b) {
  return b ? Logic::One : Logic::Zero;
}

inline constexpr std::string_view logicName(Logic v) {
  switch (v) {
    case Logic::Zero: return "0";
    case Logic::One: return "1";
    case Logic::Undef: return "UNDEF";
    case Logic::NoInfl: return "NOINFL";
  }
  return "?";
}

/// The "strength" rule for simultaneous assignments (§8): NOINFL is
/// overruled by any other value; any two active (0/1/UNDEF) assignments
/// collide to UNDEF.  `collision` is set when a collision occurred — the
/// simulator reports it as a runtime error ("burning transistors" guard).
struct Resolution {
  Logic value = Logic::NoInfl;
  int activeCount = 0;  ///< number of (0,1,UNDEF) contributions

  void add(Logic v) {
    if (v == Logic::NoInfl) return;
    ++activeCount;
    if (activeCount == 1) {
      value = v;
    } else {
      value = Logic::Undef;
    }
  }
  [[nodiscard]] bool collision() const { return activeCount > 1; }
};

}  // namespace zeus

#include "src/codegen/compiled.h"

#include <dlfcn.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>
#include <type_traits>

#include "src/codegen/emit.h"
#include "src/sim/snapshot.h"
#include "src/support/buildinfo.h"
#include "src/support/eventlog.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace zeus::codegen {

// The host hands LanePlanes arrays straight across the ABI boundary.
static_assert(sizeof(LanePlanes) == sizeof(ZeusCompiledLanesV1));
static_assert(sizeof(LanePlanes) == 16);
static_assert(std::is_standard_layout_v<LanePlanes>);
static_assert(offsetof(ZeusCompiledLanesV1, p1) == 8);

namespace {

namespace fs = std::filesystem;

metrics::Counter codegenCompiles("codegen-compiles");
metrics::Counter codegenCacheHits("codegen-cache-hits");
metrics::Counter codegenFallbacks("codegen-fallbacks");

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t fnv1a(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

uint64_t fnv1a(uint64_t h, uint64_t v) { return fnv1a(h, &v, sizeof v); }

std::string hexKey(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool isExecutable(const std::string& p) {
  return !p.empty() && ::access(p.c_str(), X_OK) == 0;
}

std::string searchPath(const std::string& name) {
  const char* path = std::getenv("PATH");
  if (!path) return {};
  std::string dirs(path);
  size_t pos = 0;
  while (pos <= dirs.size()) {
    size_t end = dirs.find(':', pos);
    if (end == std::string::npos) end = dirs.size();
    std::string dir = dirs.substr(pos, end - pos);
    if (!dir.empty()) {
      std::string cand = dir + "/" + name;
      if (isExecutable(cand)) return cand;
    }
    pos = end + 1;
  }
  return {};
}

/// Resolves a compiler spec: an absolute/relative path must be
/// executable; a bare name is searched on PATH.  Empty when unusable.
std::string resolveCompiler(const std::string& spec) {
  if (spec.empty()) return {};
  if (spec.find('/') != std::string::npos) {
    return isExecutable(spec) ? spec : std::string{};
  }
  return searchPath(spec);
}

bool writeFileAtomic(const std::string& path, const std::string& content,
                     std::string& error) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      error = "cannot write " + tmp;
      return false;
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    if (!out) {
      error = "short write to " + tmp;
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    error = "cannot rename " + tmp + " into place: " + ec.message();
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::string readTail(const std::string& path, size_t maxBytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (all.size() > maxBytes) all = all.substr(all.size() - maxBytes);
  // Keep the error single-line-ish for JSON/CLI surfaces.
  for (char& c : all) {
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  return all;
}

/// dlopen + entry lookup + descriptor validation.  On failure the handle
/// is closed and null returned with `why` set.
const ZeusCompiledDesignV1* openAndValidate(const std::string& soPath,
                                            uint64_t designHash,
                                            const SimGraph& g, void*& handle,
                                            std::string& why) {
  handle = ::dlopen(soPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle) {
    const char* e = ::dlerror();
    why = "dlopen failed: " + std::string(e ? e : "unknown error");
    return nullptr;
  }
  auto close = [&handle]() {
    ::dlclose(handle);
    handle = nullptr;
  };
  void* sym = ::dlsym(handle, kEntrySymbol);
  if (!sym) {
    why = "artifact exports no " + std::string(kEntrySymbol);
    close();
    return nullptr;
  }
  const ZeusCompiledDesignV1* d =
      reinterpret_cast<ZeusCompiledEntryFn>(sym)();
  if (!d || !d->evaluate) {
    why = "artifact descriptor is null";
    close();
    return nullptr;
  }
  if (d->abiVersion != kAbiVersion) {
    why = "artifact ABI v" + std::to_string(d->abiVersion) +
          " != expected v" + std::to_string(kAbiVersion);
    close();
    return nullptr;
  }
  if (d->designHash != designHash) {
    why = "artifact was compiled for a different design (hash mismatch)";
    close();
    return nullptr;
  }
  if (d->denseCount != g.denseCount ||
      d->regCount != g.regNodes.size()) {
    why = "artifact state sizes do not match this graph";
    close();
    return nullptr;
  }
  return d;
}

/// In-process registry: one dlopen'd artifact per cache key, shared by
/// every BatchSimulation / farm block / serve request using the design.
std::mutex& registryMutex() {
  static std::mutex m;
  return m;
}
std::map<std::string, std::weak_ptr<const CompiledDesign>>& registry() {
  static std::map<std::string, std::weak_ptr<const CompiledDesign>> r;
  return r;
}

}  // namespace

std::string codegenCacheDir(const CodegenOptions& opts) {
  if (!opts.cacheDir.empty()) return opts.cacheDir;
  if (const char* env = std::getenv("ZEUS_CODEGEN_CACHE_DIR");
      env && *env) {
    return env;
  }
  std::error_code ec;
  fs::path tmp = fs::temp_directory_path(ec);
  if (ec) return "zeus-codegen-cache";
  return (tmp / "zeus-codegen-cache").string();
}

std::string codegenCompiler(const CodegenOptions& opts) {
  if (!opts.compiler.empty()) return resolveCompiler(opts.compiler);
  if (const char* env = std::getenv("ZEUS_CXX"); env && *env) {
    return resolveCompiler(env);
  }
#ifdef ZEUS_CODEGEN_CXX
  if (std::string baked = resolveCompiler(ZEUS_CODEGEN_CXX);
      !baked.empty()) {
    return baked;
  }
#endif
  for (const char* name : {"g++", "c++", "clang++"}) {
    if (std::string found = searchPath(name); !found.empty()) return found;
  }
  return {};
}

bool toolchainAvailable(const CodegenOptions& opts) {
  return !codegenCompiler(opts).empty();
}

std::string codegenCxxFlags(const CodegenOptions& opts) {
  if (!opts.cxxflags.empty()) return opts.cxxflags;
  if (const char* env = std::getenv("ZEUS_CODEGEN_CXXFLAGS"); env && *env) {
    return env;
  }
  return "-O2";
}

CompiledDesign::~CompiledDesign() {
  if (handle_) ::dlclose(handle_);
}

std::shared_ptr<const CompiledDesign> CompiledDesign::load(
    const SimGraph& graph, const CodegenOptions& opts, std::string& error) {
  ZEUS_TRACE_SPAN("codegen-load", "codegen");
  error.clear();
  auto failed = [&error](const std::string& why) {
    error = why;
    codegenFallbacks.add();
    eventlog::emit(eventlog::Severity::Warn, "codegen", "load-failed",
                   {eventlog::str("error", why)});
    return std::shared_ptr<const CompiledDesign>{};
  };

  if (!graph.design) return failed("graph has no design");
  if (graph.hasCycle) {
    return failed("cannot compile a cyclic design: " +
                  graph.cycleDescription);
  }
  const std::string cxx = codegenCompiler(opts);
  if (cxx.empty()) {
    return failed(
        "no host C++ toolchain available (set ZEUS_CXX or install g++)");
  }

  const uint64_t emitT0 = nowUs();
  EmitOptions eopts;
  eopts.optLevel = opts.optLevel;
  EmitResult emit = emitCompiledCpp(graph, eopts);
  if (!emit.ok) return failed("emit refused: " + emit.error);
  const uint64_t emitUs = nowUs() - emitT0;

  // Artifact key: designContentHash ⊕ opt level ⊕ build stamp ⊕ ABI
  // version ⊕ emitted-source hash ⊕ host flags.  The source hash guards
  // dev trees where the stamp is stable but the emitter changed; the
  // flags guard ZEUS_CODEGEN_CXXFLAGS flips between runs.
  const std::string cxxflags = codegenCxxFlags(opts);
  uint64_t key = 0xCBF29CE484222325ull;
  key = fnv1a(key, emit.designHash);
  key = fnv1a(key, static_cast<uint64_t>(opts.optLevel));
  key = fnv1a(key, static_cast<uint64_t>(kAbiVersion));
  const char* stamp = buildinfo::gitDescribe();
  key = fnv1a(key, stamp, std::char_traits<char>::length(stamp));
  key = fnv1a(key, emit.source.data(), emit.source.size());
  key = fnv1a(key, cxxflags.data(), cxxflags.size());
  const std::string keyHex = hexKey(key);

  std::lock_guard<std::mutex> lock(registryMutex());
  if (auto it = registry().find(keyHex); it != registry().end()) {
    if (auto live = it->second.lock()) {
      codegenCacheHits.add();
      return live;
    }
  }

  const std::string dir = codegenCacheDir(opts);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return failed("cannot create codegen cache dir " + dir + ": " +
                  ec.message());
  }
  const std::string base = dir + "/zeus-" + keyHex;
  const std::string cppPath = base + ".cpp";
  const std::string soPath = base + ".so";
  const std::string logPath = base + ".log";

  std::shared_ptr<CompiledDesign> obj(new CompiledDesign());
  obj->soPath_ = soPath;
  obj->emitUs_ = emitUs;

  // On-disk cache probe: a present .so that validates is a hit; one that
  // does not (stale, truncated, foreign) is rebuilt in place.
  std::string why;
  if (fs::exists(soPath, ec) && !ec) {
    const uint64_t loadT0 = nowUs();
    obj->abi_ = openAndValidate(soPath, emit.designHash, graph,
                                obj->handle_, why);
    obj->loadUs_ = nowUs() - loadT0;
    if (obj->abi_) {
      obj->cacheHit_ = true;
      codegenCacheHits.add();
    }
  }

  if (!obj->abi_) {
    const uint64_t compileT0 = nowUs();
    {
      ZEUS_TRACE_SPAN("codegen-compile", "codegen");
      if (!writeFileAtomic(cppPath, emit.source, why)) {
        return failed("cannot stage generated source: " + why);
      }
      const std::string tmpSo =
          soPath + ".tmp." + std::to_string(static_cast<long>(::getpid()));
      const std::string cmd = "\"" + cxx + "\" -std=c++17 " + cxxflags +
                              " -fPIC -shared \"" + cppPath + "\" -o \"" +
                              tmpSo + "\" 2> \"" + logPath + "\"";
      const int rc = std::system(cmd.c_str());
      if (rc != 0 || !fs::exists(tmpSo, ec) || ec) {
        fs::remove(tmpSo, ec);
        return failed("host compile failed (exit " + std::to_string(rc) +
                      "): " + readTail(logPath, 400));
      }
      fs::rename(tmpSo, soPath, ec);
      if (ec) {
        fs::remove(tmpSo, ec);
        return failed("cannot move compiled artifact into place: " +
                      ec.message());
      }
    }
    obj->compileUs_ = nowUs() - compileT0;
    codegenCompiles.add();

    const uint64_t loadT0 = nowUs();
    obj->abi_ = openAndValidate(soPath, emit.designHash, graph,
                                obj->handle_, why);
    obj->loadUs_ = nowUs() - loadT0;
    if (!obj->abi_) {
      fs::remove(soPath, ec);  // never leave a known-bad artifact behind
      return failed("freshly compiled artifact failed validation: " + why);
    }
  }

  registry()[keyHex] = obj;
  eventlog::emit(
      eventlog::Severity::Info, "codegen", "load-done",
      {eventlog::str("design", graph.design->topName),
       eventlog::str("artifact", soPath),
       eventlog::boolean("cache_hit", obj->cacheHit_),
       eventlog::num("emit_us", obj->emitUs_),
       eventlog::num("compile_us", obj->compileUs_),
       eventlog::num("load_us", obj->loadUs_)});
  return obj;
}

// ---------------------------------------------------------------------
// Batch evaluator
// ---------------------------------------------------------------------

CompiledBatchEvaluator::CompiledBatchEvaluator(
    const SimGraph& graph, std::shared_ptr<const CompiledDesign> design)
    : g_(graph), design_(std::move(design)) {
  if (!design_ || !design_->abi()) {
    throw std::invalid_argument("compiled evaluator needs a loaded design");
  }
  const ZeusCompiledDesignV1* d = design_->abi();
  if (d->denseCount != g_.denseCount ||
      d->regCount != g_.regNodes.size()) {
    throw std::invalid_argument(
        "compiled design does not match this graph");
  }
  scratch_.assign(std::max<uint32_t>(1, d->nodeSlots), {});
  collScratch_.assign(std::max<size_t>(1, g_.denseCount), 0);
  localRng_.fill(kDefaultRngSeed);
}

void CompiledBatchEvaluator::evaluate(const BatchSeeds& seeds,
                                      BatchCycleResult& out) {
  const ZeusCompiledDesignV1* d = design_->abi();
  // The schedule is static, so the interpreter's counters advance by
  // fixed per-cycle deltas; replaying them keeps EvalStats
  // engine-invariant between interpreted and compiled runs.
  ++stats_.epochResets;
  stats_.nodeFirings += d->nodeFiringsPerCycle;
  stats_.netResolutions += d->netResolutionsPerCycle;
  stats_.contentionChecks += d->contentionChecksPerCycle;

  uint64_t* rng = localRng_.data();
  if (seeds.rngStates) {
    // Seed-0 normalization parity with the interpreters (see
    // LevelizedBatchEvaluator::evaluate).
    for (uint64_t& s : *seeds.rngStates) {
      if (s == 0) s = kDefaultRngSeed;
    }
    rng = seeds.rngStates->data();
  }

  if (out.netValues.size() != g_.denseCount) {
    out.netValues.assign(g_.denseCount, {});
    out.activeAny.assign(g_.denseCount, 0);
    out.activeMulti.assign(g_.denseCount, 0);
  }
  out.collisions.clear();

  const ZeusCompiledLanesV1* in = nullptr;
  if (seeds.inputValues && seeds.inputValues->size() == g_.denseCount) {
    in = reinterpret_cast<const ZeusCompiledLanesV1*>(
        seeds.inputValues->data());
  } else {
    // No seeds = no contributions; an all-NOINFL plane is the identity.
    if (emptyInputs_.size() != g_.denseCount) {
      emptyInputs_.assign(g_.denseCount, {});
    }
    in = reinterpret_cast<const ZeusCompiledLanesV1*>(emptyInputs_.data());
  }
  const ZeusCompiledLanesV1* reg = nullptr;
  if (seeds.regValues && seeds.regValues->size() == g_.regNodes.size()) {
    reg = reinterpret_cast<const ZeusCompiledLanesV1*>(
        seeds.regValues->data());
  } else {
    if (emptyRegs_.size() != g_.regNodes.size()) {
      emptyRegs_.assign(g_.regNodes.size(), {});
    }
    reg = reinterpret_cast<const ZeusCompiledLanesV1*>(emptyRegs_.data());
  }

  ZeusCompiledFaultsV1 faults{};
  const ZeusCompiledFaultsV1* fp = nullptr;
  if (seeds.faults && seeds.faults->any &&
      seeds.faults->force0.size() == g_.denseCount) {
    faults = {seeds.faults->force0.data(), seeds.faults->force1.data(),
              seeds.faults->forceUndef.data(), seeds.faults->flip.data(),
              seeds.faults->contend.data()};
    fp = &faults;
  }

  uint32_t nc = 0;
  d->evaluate(in, reg, rng, seeds.laneMask, fp,
              reinterpret_cast<ZeusCompiledLanesV1*>(out.netValues.data()),
              out.activeAny.data(), out.activeMulti.data(),
              collScratch_.data(), &nc,
              reinterpret_cast<ZeusCompiledLanesV1*>(scratch_.data()));
  out.collisions.assign(collScratch_.begin(), collScratch_.begin() + nc);
}

// ---------------------------------------------------------------------
// Scalar adapter
// ---------------------------------------------------------------------

CompiledScalarEvaluator::CompiledScalarEvaluator(
    const SimGraph& graph, std::shared_ptr<const CompiledDesign> design)
    : g_(graph), batch_(graph, std::move(design)) {
  inputLanes_.assign(g_.denseCount, {});
  regLanes_.assign(g_.regNodes.size(), {});
  rng_.fill(kDefaultRngSeed);
}

void CompiledScalarEvaluator::evaluate(const CycleSeeds& seeds,
                                       CycleResult& out) {
  // Lane 0 carries the scalar run; lanes 1..63 stay NOINFL and idle.
  const uint64_t lane0 = 1;
  for (size_t i = 0; i < g_.denseCount; ++i) {
    Logic v = Logic::NoInfl;
    if (seeds.inputValues && seeds.inputSet && (*seeds.inputSet)[i]) {
      v = (*seeds.inputValues)[i];
    }
    inputLanes_[i] = lanesBroadcast(v, lane0);
  }
  for (size_t k = 0; k < g_.regNodes.size(); ++k) {
    Logic v = seeds.regValues && k < seeds.regValues->size()
                  ? (*seeds.regValues)[k]
                  : Logic::Undef;
    regLanes_[k] = lanesBroadcast(v, lane0);
  }
  rng_[0] = seeds.rngState;  // 0 normalizes to the default seed in batch_

  BatchSeeds bs;
  bs.inputValues = &inputLanes_;
  bs.regValues = &regLanes_;
  bs.rngStates = &rng_;
  bs.laneMask = lane0;
  if (seeds.faults && seeds.faults->any &&
      seeds.faults->mode.size() == g_.denseCount) {
    faultLanes_.resize(g_.denseCount);
    faultLanes_.any = false;
    for (size_t i = 0; i < g_.denseCount; ++i) {
      switch (seeds.faults->mode[i]) {
        case FaultMode::None: continue;
        case FaultMode::Force0: faultLanes_.force0[i] = lane0; break;
        case FaultMode::Force1: faultLanes_.force1[i] = lane0; break;
        case FaultMode::ForceUndef:
          faultLanes_.forceUndef[i] = lane0;
          break;
        case FaultMode::Flip: faultLanes_.flip[i] = lane0; break;
        case FaultMode::Contend: faultLanes_.contend[i] = lane0; break;
      }
      faultLanes_.any = true;
    }
    if (faultLanes_.any) bs.faults = &faultLanes_;
  }

  batch_.evaluate(bs, batchOut_);

  if (out.netValues.size() != g_.denseCount) {
    out.netValues.assign(g_.denseCount, Logic::Undef);
    out.activeCounts.assign(g_.denseCount, 0);
  }
  for (size_t i = 0; i < g_.denseCount; ++i) {
    out.netValues[i] = laneValue(batchOut_.netValues[i], 0);
    out.activeCounts[i] = (batchOut_.activeMulti[i] & 1)
                              ? 2
                              : ((batchOut_.activeAny[i] & 1) ? 1 : 0);
  }
  out.collisions = batchOut_.collisions;
  out.rngState = rng_[0];
  out.watchdogTripped = false;  // the static schedule cannot wedge
}

}  // namespace zeus::codegen

// Compile-and-load driver for the native codegen backend.
//
// CompiledDesign::load() takes a SimGraph through the full pipeline —
// emit (src/codegen/emit.h), host-toolchain compile to a shared object,
// dlopen + ABI validation — behind an on-disk artifact cache keyed by
// designContentHash ⊕ opt level ⊕ build stamp ⊕ source hash, so repeat
// compiles in --serve-batch and the farm are cache hits.  Artifacts land
// atomically (write to "<path>.tmp.<pid>", then rename), and an
// in-process registry shares one dlopen'd object across concurrent users
// of the same design (every farm block holds the same shared_ptr).
//
// Every failure mode — no toolchain on the host, an emitter refusal, a
// compile error, a stale or corrupt cache artifact — returns null with a
// structured error string; callers fall back to the interpreter
// (docs/codegen.md lists the fallback rules).
//
// CompiledBatchEvaluator / CompiledScalarEvaluator wrap the loaded entry
// point in the exact evaluate() interfaces of LevelizedBatchEvaluator and
// LevelizedEvaluator, maintaining the engine-invariant EvalStats counters
// from the per-cycle constants baked into the ABI descriptor.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/codegen/abi.h"
#include "src/sim/levelized_evaluator.h"

namespace zeus::codegen {

struct CodegenOptions {
  /// Artifact cache directory; empty = ZEUS_CODEGEN_CACHE_DIR env var,
  /// then a "zeus-codegen-cache" directory under the system temp dir.
  std::string cacheDir;
  /// Host C++ compiler; empty = ZEUS_CXX env var, then the compiler this
  /// build was configured with, then g++/c++/clang++ on PATH.
  std::string compiler;
  /// Zeus optimizer level the graph was built at (cache key + metadata).
  uint32_t optLevel = 1;
  /// Host compiler flags; empty = ZEUS_CODEGEN_CXXFLAGS env var, then
  /// "-O2".  Folded into the artifact cache key, so flipping flags never
  /// reuses a stale .so.  (-std=c++17 -fPIC -shared are always added.)
  std::string cxxflags;
};

/// Resolved cache directory for `opts` (created on demand by load()).
[[nodiscard]] std::string codegenCacheDir(const CodegenOptions& opts = {});
/// Resolved host compiler, or empty when none is available.
[[nodiscard]] std::string codegenCompiler(const CodegenOptions& opts = {});
/// True when a host toolchain is available for compile-and-load.
[[nodiscard]] bool toolchainAvailable(const CodegenOptions& opts = {});
/// Resolved host compiler flags (see CodegenOptions::cxxflags).
[[nodiscard]] std::string codegenCxxFlags(const CodegenOptions& opts = {});

/// One hot-loaded compiled design: owns the dlopen handle and exposes the
/// validated v1 descriptor.  Immutable and stateless after load, so one
/// instance is safely shared across threads (each evaluator keeps its own
/// scratch buffers).
class CompiledDesign {
 public:
  ~CompiledDesign();
  CompiledDesign(const CompiledDesign&) = delete;
  CompiledDesign& operator=(const CompiledDesign&) = delete;

  /// Emits, compiles (or cache-hits) and loads the engine for `graph`.
  /// Null + `error` on any failure; never throws.
  static std::shared_ptr<const CompiledDesign> load(
      const SimGraph& graph, const CodegenOptions& opts, std::string& error);

  [[nodiscard]] const ZeusCompiledDesignV1* abi() const { return abi_; }
  [[nodiscard]] uint64_t designHash() const { return abi_->designHash; }
  [[nodiscard]] const std::string& artifactPath() const { return soPath_; }
  /// True when the shared object came from the on-disk cache (no compile).
  [[nodiscard]] bool cacheHit() const { return cacheHit_; }
  [[nodiscard]] uint64_t emitUs() const { return emitUs_; }
  [[nodiscard]] uint64_t compileUs() const { return compileUs_; }
  [[nodiscard]] uint64_t loadUs() const { return loadUs_; }

 private:
  CompiledDesign() = default;

  void* handle_ = nullptr;
  const ZeusCompiledDesignV1* abi_ = nullptr;
  std::string soPath_;
  bool cacheHit_ = false;
  uint64_t emitUs_ = 0;
  uint64_t compileUs_ = 0;
  uint64_t loadUs_ = 0;
};

/// Drop-in replacement for LevelizedBatchEvaluator running the compiled
/// engine; same evaluate contract, same EvalStats trajectory.
class CompiledBatchEvaluator {
 public:
  CompiledBatchEvaluator(const SimGraph& graph,
                         std::shared_ptr<const CompiledDesign> design);

  void evaluate(const BatchSeeds& seeds, BatchCycleResult& out);
  [[nodiscard]] const EvalStats& stats() const { return stats_; }
  void resetStats() { stats_ = {}; }
  void setStats(const EvalStats& s) { stats_ = s; }
  [[nodiscard]] const CompiledDesign& design() const { return *design_; }

 private:
  const SimGraph& g_;
  std::shared_ptr<const CompiledDesign> design_;
  EvalStats stats_;
  std::vector<LanePlanes> scratch_;      ///< node-output slots
  std::vector<uint32_t> collScratch_;    ///< collision list capacity
  std::vector<LanePlanes> emptyInputs_;  ///< all-NOINFL fallback
  std::vector<LanePlanes> emptyRegs_;    ///< all-NOINFL fallback
  std::array<uint64_t, 64> localRng_{};  ///< fallback when seeds carry none
};

/// Scalar adapter: runs the 64-lane compiled engine with only lane 0
/// live, presenting the LevelizedEvaluator evaluate(CycleSeeds) contract
/// so Simulation can use EvaluatorKind::Compiled.  Net values, RANDOM
/// draws, SimErrors and EvalStats match a scalar levelized run
/// bit-for-bit; activeCounts reports the 0/1/2+ distinction the scalar
/// engine's consumers rely on (latch-on-active and collision checks).
class CompiledScalarEvaluator {
 public:
  CompiledScalarEvaluator(const SimGraph& graph,
                          std::shared_ptr<const CompiledDesign> design);

  void evaluate(const CycleSeeds& seeds, CycleResult& out);
  [[nodiscard]] const EvalStats& stats() const { return batch_.stats(); }
  void resetStats() { batch_.resetStats(); }
  void setStats(const EvalStats& s) { batch_.setStats(s); }
  [[nodiscard]] const CompiledDesign& design() const {
    return batch_.design();
  }

 private:
  const SimGraph& g_;
  CompiledBatchEvaluator batch_;
  std::vector<LanePlanes> inputLanes_;  ///< per dense net, lane 0 only
  std::vector<LanePlanes> regLanes_;    ///< per reg index, lane 0 only
  std::array<uint64_t, 64> rng_{};
  BatchFaultPlan faultLanes_;  ///< scalar FaultPlan widened to lane 0
  BatchCycleResult batchOut_;
};

}  // namespace zeus::codegen

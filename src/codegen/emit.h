// Ahead-of-time C++ emitter for the levelized schedule.
//
// Walks the same interleaved resolve/evaluate schedule the levelized
// interpreter executes (LevelizedEvaluator::buildSchedule) and emits one
// straight-line, branch-minimized translation unit: a single evaluate
// function operating directly on the 64-lane LanePlanes 2-bit encoding,
// with the §8 contention rule, the per-lane RANDOM streams and the
// BatchFaultPlan overlay inlined per net.  The generated source is
// self-contained — it re-declares the v1 ABI structs from
// src/codegen/abi.h and needs no include path — and deterministic for a
// given (graph, options, build stamp), so it doubles as the artifact
// cache key material (src/codegen/compiled.h).
//
// The emitter REFUSES rather than guesses: a cyclic graph, an incomplete
// schedule (some net never resolves or some node never fires) or a
// malformed node arity yields ok=false with a structured error.  Callers
// fall back to the interpreter; the fuzz harness (tools/zeus_fuzz.cpp)
// feeds every elaboration survivor through here to keep that contract
// crash-free.
#pragma once

#include <cstdint>
#include <string>

#include "src/sim/graph.h"

namespace zeus::codegen {

struct EmitOptions {
  /// Zeus optimizer level the graph was built at; recorded in the ABI
  /// descriptor and folded into the artifact cache key.
  uint32_t optLevel = 1;
};

struct EmitResult {
  bool ok = false;
  std::string error;   ///< set when !ok
  std::string source;  ///< the generated translation unit

  // Descriptor facts, mirrored from the emitted source so callers can
  // size buffers without loading the artifact.
  uint64_t designHash = 0;
  uint32_t denseCount = 0;
  uint32_t regCount = 0;
  uint32_t nodeSlots = 0;
  uint32_t randomNodes = 0;
  uint64_t nodeFiringsPerCycle = 0;
  uint64_t netResolutionsPerCycle = 0;
  uint64_t contentionChecksPerCycle = 0;
};

/// Emits the compiled-engine source for `graph`.  Never throws; every
/// refusal is a structured EmitResult.error.
[[nodiscard]] EmitResult emitCompiledCpp(const SimGraph& graph,
                                         const EmitOptions& opts = {});

}  // namespace zeus::codegen

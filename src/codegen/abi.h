// Versioned ABI between the host and a hot-loaded compiled design.
//
// A compiled design is one shared object built from emitted C++
// (src/codegen/emit.h) that exports a single C symbol,
// `zeus_compiled_design_v1`, returning a static descriptor.  The
// descriptor carries everything the host needs to validate the artifact
// before trusting it — ABI version, design content hash, state sizes —
// plus the per-cycle EvalStats constants and the evaluate entry point.
//
// The generated translation unit re-declares these structs textually (it
// must compile standalone, with no include path into this tree), so any
// change here MUST bump kAbiVersion and be mirrored in emit.cpp: the
// loader rejects descriptors whose version or design hash differ, which
// turns a stale on-disk artifact into a cache miss instead of a crash.
//
// Everything is standard-layout with fixed-width types; LanePlanes
// (src/sim/levelized_evaluator.h) is layout-compatible with
// ZeusCompiledLanesV1 by construction (static_asserts in compiled.cpp).
#pragma once

#include <cstdint>

namespace zeus::codegen {

inline constexpr uint32_t kAbiVersion = 1;
inline constexpr const char* kEntrySymbol = "zeus_compiled_design_v1";

/// 64 lanes of four-valued logic in two bit planes (p0 = "can be 0",
/// p1 = "can be 1"); mirrors zeus::LanePlanes.
struct ZeusCompiledLanesV1 {
  uint64_t p0;
  uint64_t p1;
};

/// Per-net fault overlay masks, each an array of denseCount lane masks
/// (mirrors zeus::BatchFaultPlan's vectors).  A null ZeusCompiledFaultsV1*
/// passed to evaluate() means fault-free.
struct ZeusCompiledFaultsV1 {
  const uint64_t* force0;
  const uint64_t* force1;
  const uint64_t* forceUndef;
  const uint64_t* flip;
  const uint64_t* contend;
};

/// One compiled cycle: the exact contract of
/// LevelizedBatchEvaluator::evaluate flattened into raw arrays.
///   inputs     per dense net, externally driven lanes (NOINFL = none)
///   regs       per graph.regNodes index, stored lane values
///   rng        64 per-lane RANDOM streams, advanced in place
///   laneMask   lanes in use (collisions reported only for these)
///   faults     per-net overlay masks, or null for fault-free
///   netValues  out: per dense net, resolved lanes (may be NOINFL)
///   activeAny  out: per dense net, lanes with >=1 active driver
///   activeMulti out: per dense net, lanes with >=2 active drivers
///   collisions out: dense nets with activeMulti∩laneMask ≠ ∅, in
///              schedule order; capacity must be >= denseCount
///   collisionCount out: number of entries written to collisions
///   scratch    caller-provided node-output scratch, >= nodeSlots entries
using ZeusCompiledEvalFn = void (*)(
    const ZeusCompiledLanesV1* inputs, const ZeusCompiledLanesV1* regs,
    uint64_t* rng, uint64_t laneMask, const ZeusCompiledFaultsV1* faults,
    ZeusCompiledLanesV1* netValues, uint64_t* activeAny,
    uint64_t* activeMulti, uint32_t* collisions, uint32_t* collisionCount,
    ZeusCompiledLanesV1* scratch);

struct ZeusCompiledDesignV1 {
  uint32_t abiVersion;  ///< kAbiVersion of the emitting build
  uint32_t optLevel;    ///< zeus optimizer level the graph was built at
  uint64_t designHash;  ///< designContentHash() of the source design
  uint32_t denseCount;  ///< dense nets (sizes of the per-net arrays)
  uint32_t regCount;    ///< graph.regNodes.size()
  uint32_t nodeSlots;   ///< scratch entries evaluate() needs
  uint32_t randomNodes; ///< RANDOM draws per cycle (diagnostic)
  /// Per-cycle EvalStats constants: the levelized schedule is static, so
  /// the interpreter's counters advance by fixed deltas every cycle; the
  /// host adds these after each evaluate() so compiled runs stay
  /// engine-invariant (epochResets advances by 1).
  uint64_t nodeFiringsPerCycle;
  uint64_t netResolutionsPerCycle;
  uint64_t contentionChecksPerCycle;
  const char* buildStamp;  ///< git describe of the emitting build
  const char* designName;  ///< top name (diagnostic)
  ZeusCompiledEvalFn evaluate;
};

/// Signature of the entry symbol.
using ZeusCompiledEntryFn = const ZeusCompiledDesignV1* (*)();

}  // namespace zeus::codegen

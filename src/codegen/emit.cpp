#include "src/codegen/emit.h"

#include <cstdio>
#include <string>
#include <vector>

#include "src/codegen/abi.h"
#include "src/elab/netlist.h"
#include "src/sim/levelized_evaluator.h"
#include "src/sim/snapshot.h"
#include "src/support/buildinfo.h"
#include "src/support/trace.h"

namespace zeus::codegen {

namespace {

constexpr uint32_t kNoSlot = 0xFFFFFFFFu;

std::string hexU64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llxull",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string num(uint64_t v) { return std::to_string(v); }

std::string escapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += '?';  // identifiers never contain control bytes; be safe
      continue;
    }
    out += c;
  }
  return out;
}

/// Both planes of lanesBroadcast(v, ~0) as emitted literals.
void broadcastPlanes(Logic v, std::string& p0, std::string& p1) {
  const std::string ones = "~0ull";
  const std::string zero = "0ull";
  switch (v) {
    case Logic::Zero: p0 = ones; p1 = zero; return;
    case Logic::One: p0 = zero; p1 = ones; return;
    case Logic::Undef: p0 = ones; p1 = ones; return;
    case Logic::NoInfl: p0 = zero; p1 = zero; return;
  }
  p0 = ones;
  p1 = ones;
}

struct Emitter {
  const SimGraph& g;
  const Netlist& nl;
  const EmitOptions& opts;
  EmitResult r;

  std::vector<LevelizedEvaluator::Op> schedule;
  std::vector<uint32_t> regIndexOf;
  std::vector<uint32_t> slotOf;
  uint32_t slots = 0;
  uint32_t randomNodes = 0;
  std::string body;

  bool fail(const std::string& why) {
    if (r.error.empty()) r.error = why;
    return false;
  }

  std::string netRef(uint32_t dn) { return "net[" + num(dn) + "]"; }

  /// Dense index of a node input net, validated; kNoDense/range errors
  /// become structured refusals (the fuzz contract: never crash).
  bool denseInput(NodeId ni, size_t k, uint32_t& out) {
    const Node& node = nl.node(ni);
    if (k >= node.inputs.size()) {
      return fail("node " + num(ni) + " (" +
                  std::string(nodeOpName(node.op)) + ") is missing input " +
                  num(k));
    }
    NetId in = node.inputs[k];
    if (in >= g.denseOf.size() || g.denseOf[in] == SimGraph::kNoDense ||
        g.denseOf[in] >= g.denseCount) {
      return fail("node " + num(ni) + " reads a net with no dense slot");
    }
    out = g.denseOf[in];
    return true;
  }

  bool buildSlots() {
    schedule = LevelizedEvaluator::buildSchedule(g);
    regIndexOf.assign(nl.nodeCount(), LevelizedEvaluator::kNotReg);
    for (size_t k = 0; k < g.regNodes.size(); ++k) {
      if (g.regNodes[k] >= nl.nodeCount()) {
        return fail("register list references a node out of range");
      }
      regIndexOf[g.regNodes[k]] = static_cast<uint32_t>(k);
    }
    slotOf.assign(nl.nodeCount(), kNoSlot);
    std::vector<char> resolved(g.denseCount, 0);
    size_t resolves = 0;
    for (const LevelizedEvaluator::Op& op : schedule) {
      if (op.isNode) {
        if (op.index >= nl.nodeCount()) {
          return fail("schedule references node " + num(op.index) +
                      " out of range");
        }
        if (nl.node(op.index).op == NodeOp::Reg) {
          return fail("schedule fires a REG node");
        }
        if (slotOf[op.index] != kNoSlot) {
          return fail("node " + num(op.index) + " scheduled twice");
        }
        slotOf[op.index] = slots++;
      } else {
        if (op.index >= g.denseCount || resolved[op.index]) {
          return fail("net resolution schedule is inconsistent");
        }
        resolved[op.index] = 1;
        ++resolves;
      }
    }
    size_t nonReg = 0;
    for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
      if (nl.node(ni).op != NodeOp::Reg) ++nonReg;
    }
    if (resolves != g.denseCount || slots != nonReg) {
      return fail("incomplete levelized schedule (" + num(resolves) + "/" +
                  num(g.denseCount) + " nets, " + num(slots) + "/" +
                  num(nonReg) + " nodes): refusing to compile");
    }
    return true;
  }

  bool emitResolve(uint32_t i) {
    // Contribution expressions, in the interpreter's order: input seed
    // first, then drivers in CSR order (REG drivers read the latched
    // plane, others the producing node's scratch slot).
    std::vector<std::string> contribs;
    if (g.nets[i].isInput) contribs.push_back("in[" + num(i) + "]");
    for (uint32_t e = g.driverStart[i]; e < g.driverStart[i + 1]; ++e) {
      NodeId d = g.driverNodes[e];
      if (d >= nl.nodeCount()) return fail("driver node out of range");
      uint32_t ri = regIndexOf[d];
      if (ri != LevelizedEvaluator::kNotReg) {
        contribs.push_back("reg[" + num(ri) + "]");
      } else {
        if (slotOf[d] == kNoSlot) {
          return fail("net " + num(i) + " reads an unscheduled node");
        }
        contribs.push_back("t[" + num(slotOf[d]) + "]");
      }
    }
    std::string line = "  { ";
    if (contribs.empty()) {
      line += "LP r{0, 0}; uint64_t s = 0, m = 0; ";
    } else if (contribs.size() == 1) {
      line += "LP r = " + contribs[0] +
              "; uint64_t s = r.p0 | r.p1, m = 0; ";
    } else {
      line += "LP r{0, 0}; uint64_t s = 0, m = 0; ";
      for (const std::string& c : contribs) line += "ZC(" + c + ") ";
    }
    line += "ZW(" + num(i) + ") }\n";
    body += line;
    return true;
  }

  bool emitNode(NodeId ni) {
    const Node& node = nl.node(ni);
    const std::string t = "t[" + num(slotOf[ni]) + "]";
    uint32_t i0 = 0, i1 = 0;
    switch (node.op) {
      case NodeOp::Const: {
        std::string p0, p1;
        broadcastPlanes(node.constVal, p0, p1);
        body += "  " + t + " = LP{" + p0 + ", " + p1 + "};\n";
        return true;
      }
      case NodeOp::Random:
        ++randomNodes;
        body += "  " + t + " = rnd(rng);\n";
        return true;
      case NodeOp::Buf: {
        if (!denseInput(ni, 0, i0)) return false;
        bool toBool = node.output != kNoNet &&
                      node.output < g.denseOf.size() &&
                      g.denseOf[node.output] != SimGraph::kNoDense &&
                      g.denseOf[node.output] < g.denseCount &&
                      g.nets[g.denseOf[node.output]].isBool;
        if (toBool) {
          // Multiplex→boolean conversion: NOINFL reads as UNDEF.
          body += "  { LP v = " + netRef(i0) +
                  "; uint64_t n = ~(v.p0 | v.p1); " + t +
                  " = LP{v.p0 | n, v.p1 | n}; }\n";
        } else {
          body += "  " + t + " = " + netRef(i0) + ";\n";
        }
        return true;
      }
      case NodeOp::Not:
        if (!denseInput(ni, 0, i0)) return false;
        body += "  { LP a = gi(" + netRef(i0) + "); " + t +
                " = LP{a.p1, a.p0}; }\n";
        return true;
      case NodeOp::And:
      case NodeOp::Nand: {
        std::string line = "  { LP v{0, ~0ull}; LP c; ";
        for (size_t k = 0; k < node.inputs.size(); ++k) {
          if (!denseInput(ni, k, i0)) return false;
          line += "c = gi(" + netRef(i0) + "); v.p0 |= c.p0; v.p1 &= c.p1; ";
        }
        line += t + (node.op == NodeOp::Nand ? " = LP{v.p1, v.p0}; }\n"
                                             : " = v; }\n");
        body += line;
        return true;
      }
      case NodeOp::Or:
      case NodeOp::Nor: {
        std::string line = "  { LP v{~0ull, 0}; LP c; ";
        for (size_t k = 0; k < node.inputs.size(); ++k) {
          if (!denseInput(ni, k, i0)) return false;
          line += "c = gi(" + netRef(i0) + "); v.p0 &= c.p0; v.p1 |= c.p1; ";
        }
        line += t + (node.op == NodeOp::Nor ? " = LP{v.p1, v.p0}; }\n"
                                            : " = v; }\n");
        body += line;
        return true;
      }
      case NodeOp::Xor: {
        std::string line = "  { uint64_t ad = ~0ull, pa = 0; LP c; ";
        for (size_t k = 0; k < node.inputs.size(); ++k) {
          if (!denseInput(ni, k, i0)) return false;
          line += "c = gi(" + netRef(i0) +
                  "); ad &= ~(c.p0 & c.p1); pa ^= c.p1 & ~c.p0; ";
        }
        line += t + " = LP{(~pa & ad) | ~ad, (pa & ad) | ~ad}; }\n";
        body += line;
        return true;
      }
      case NodeOp::Equal: {
        size_t m = node.inputs.size() / 2;
        std::string line =
            "  { uint64_t ad = ~0ull, uq = 0, dp; LP a, b; ";
        for (size_t k = 0; k < m; ++k) {
          if (!denseInput(ni, k, i0)) return false;
          if (!denseInput(ni, k + m, i1)) return false;
          line += "a = gi(" + netRef(i0) + "); b = gi(" + netRef(i1) +
                  "); dp = ~(a.p0 & a.p1) & ~(b.p0 & b.p1); ad &= dp; "
                  "uq |= dp & ((a.p1 & ~a.p0) ^ (b.p1 & ~b.p0)); ";
        }
        line += "uint64_t on = ad & ~uq; (void)dp; " + t +
                " = LP{~on, ~uq}; }\n";
        body += line;
        return true;
      }
      case NodeOp::Switch:
        if (!denseInput(ni, 0, i0)) return false;
        if (!denseInput(ni, 1, i1)) return false;
        body += "  { LP c = gi(" + netRef(i0) + "); LP d = " + netRef(i1) +
                "; uint64_t co = c.p1 & ~c.p0, cu = c.p0 & c.p1; " + t +
                " = LP{(co & d.p0) | cu, (co & d.p1) | cu}; }\n";
        return true;
      case NodeOp::Reg:
        return fail("REG node in the evaluation schedule");
    }
    return fail("unknown node op");
  }

  bool run() {
    if (!g.design) return fail("graph has no design");
    if (g.hasCycle) {
      return fail("cannot compile a cyclic design: " + g.cycleDescription);
    }
    if (!buildSlots()) return false;

    uint64_t fires = 0, cchecks = 0;
    for (size_t i = 0; i < g.denseCount; ++i) {
      if (g.nets[i].multiDriven) ++cchecks;
    }
    for (const LevelizedEvaluator::Op& op : schedule) {
      if (op.isNode) {
        ++fires;
        if (!emitNode(op.index)) return false;
      } else {
        if (!emitResolve(op.index)) return false;
      }
    }

    const uint64_t designHash = designContentHash(*g.design);
    const std::string stamp = buildinfo::gitDescribe();
    std::string out;
    out.reserve(body.size() + 4096);
    out +=
        "// Generated by zeus codegen (src/codegen/emit.cpp); do not "
        "edit.\n";
    out += "// design \"" + escapeString(g.design->topName) + "\" hash " +
           hexU64(designHash) + " opt " + num(opts.optLevel) + "\n";
    out += "// nets=" + num(g.denseCount) + " regs=" +
           num(g.regNodes.size()) + " slots=" + num(slots) + " random=" +
           num(randomNodes) + " build=" + escapeString(stamp) + "\n";
    out += R"(#include <stdint.h>

struct LP { uint64_t p0; uint64_t p1; };

// Mirror of zeus::codegen ABI v1 (src/codegen/abi.h): field order and
// types must match exactly; the loader validates abiVersion + designHash.
struct ZeusFaultsV1 {
  const uint64_t* force0;
  const uint64_t* force1;
  const uint64_t* forceUndef;
  const uint64_t* flip;
  const uint64_t* contend;
};
struct ZeusCompiledDesignV1 {
  uint32_t abiVersion;
  uint32_t optLevel;
  uint64_t designHash;
  uint32_t denseCount;
  uint32_t regCount;
  uint32_t nodeSlots;
  uint32_t randomNodes;
  uint64_t nodeFiringsPerCycle;
  uint64_t netResolutionsPerCycle;
  uint64_t contentionChecksPerCycle;
  const char* buildStamp;
  const char* designName;
  void (*evaluate)(const LP*, const LP*, uint64_t*, uint64_t,
                   const ZeusFaultsV1*, LP*, uint64_t*, uint64_t*,
                   uint32_t*, uint32_t*, LP*);
};

namespace {

// NOINFL lanes read as UNDEF at gate inputs (laneGateInput).
inline LP gi(LP c) {
  uint64_t n = ~(c.p0 | c.p1);
  return LP{c.p0 | n, c.p1 | n};
}

// One RANDOM draw on all 64 lanes (per-lane xorshift64, LSB is the bit).
inline LP rnd(uint64_t* g) {
  uint64_t b = 0;
  for (unsigned l = 0; l < 64; ++l) {
    uint64_t s = g[l];
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    g[l] = s;
    b |= (s & 1u) << l;
  }
  return LP{~b, b};
}

// ZC: one §8 strength-rule contribution — first active lane wins, a
// second active contribution marks the lane multi-driven.
// ZW: finish a net — colliding lanes resolve to UNDEF, the fault overlay
// mirrors applyScalarFault per lane, then values/active masks land and a
// contended net is pushed onto the collision list.
#define ZC(x) { LP c_ = (x); uint64_t a_ = c_.p0 | c_.p1; m |= s & a_; r.p0 |= c_.p0 & ~s; r.p1 |= c_.p1 & ~s; s |= a_; }
#define ZW(i) r.p0 |= m; r.p1 |= m; if (flt) { uint64_t f0_ = flt->force0[i], f1_ = flt->force1[i], fu_ = flt->forceUndef[i], ff_ = flt->flip[i], fc_ = flt->contend[i]; if (f0_ | f1_ | fu_ | ff_ | fc_) { uint64_t fd_ = f0_ | f1_ | fu_ | fc_; r.p0 = (r.p0 & ~fd_) | f0_ | fu_ | fc_; r.p1 = (r.p1 & ~fd_) | f1_ | fu_ | fc_; uint64_t de_ = (r.p0 ^ r.p1) & ff_; r.p0 ^= de_; r.p1 ^= de_; s |= fd_; m |= fc_; } } net[i] = r; aa[i] = s; am[i] = m; if (m & lane_mask) coll[nc++] = (i);

void eval(const LP* __restrict__ in, const LP* __restrict__ reg,
          uint64_t* __restrict__ rng, uint64_t lane_mask,
          const ZeusFaultsV1* __restrict__ flt, LP* __restrict__ net,
          uint64_t* __restrict__ aa, uint64_t* __restrict__ am,
          uint32_t* __restrict__ coll, uint32_t* __restrict__ ncoll,
          LP* __restrict__ t) {
  uint32_t nc = 0;
  (void)in; (void)reg; (void)rng; (void)lane_mask; (void)flt;
  (void)net; (void)aa; (void)am; (void)coll; (void)t;
)";
    out += body;
    out += R"(  *ncoll = nc;
}

#undef ZC
#undef ZW

const char kBuildStamp[] = ")" +
           escapeString(stamp) + "\";\n";
    out += "const char kDesignName[] = \"" +
           escapeString(g.design->topName) + "\";\n";
    out += "const ZeusCompiledDesignV1 kDesign = {\n";
    out += "  " + num(kAbiVersion) + "u, " + num(opts.optLevel) + "u, " +
           hexU64(designHash) + ",\n";
    out += "  " + num(g.denseCount) + "u, " + num(g.regNodes.size()) +
           "u, " + num(slots) + "u, " + num(randomNodes) + "u,\n";
    out += "  " + num(fires) + "ull, " + num(g.denseCount) + "ull, " +
           num(cchecks) + "ull,\n";
    out += "  kBuildStamp, kDesignName, &eval,\n};\n\n";
    out += "}  // namespace\n\n";
    out += "extern \"C\" const ZeusCompiledDesignV1* ";
    out += kEntrySymbol;
    out += "() { return &kDesign; }\n";

    r.ok = true;
    r.source = std::move(out);
    r.designHash = designHash;
    r.denseCount = static_cast<uint32_t>(g.denseCount);
    r.regCount = static_cast<uint32_t>(g.regNodes.size());
    r.nodeSlots = slots;
    r.randomNodes = randomNodes;
    r.nodeFiringsPerCycle = fires;
    r.netResolutionsPerCycle = g.denseCount;
    r.contentionChecksPerCycle = cchecks;
    return true;
  }
};

}  // namespace

EmitResult emitCompiledCpp(const SimGraph& graph, const EmitOptions& opts) {
  ZEUS_TRACE_SPAN("codegen-emit", "codegen");
  if (!graph.design) {
    EmitResult r;
    r.error = "graph has no design";
    return r;
  }
  Emitter e{graph, graph.design->netlist, opts};
  e.run();
  return std::move(e.r);
}

}  // namespace zeus::codegen

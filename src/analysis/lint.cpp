#include "src/analysis/lint.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/core/report.h"
#include "src/sim/value.h"
#include "src/transform/fold_oracle.h"

namespace zeus {

namespace {

/// Constant lattice per net/node: kUnknown, or a Logic value.
constexpr int8_t kUnknown = FoldOracle::kUnknown;

inline int8_t known(Logic v) { return FoldOracle::known(v); }

const char* severityName(Severity s) {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Note: return "note";
  }
  return "?";
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Everything the rules share: per-class representative names plus the
/// constant-folding / driver-activity oracle.  The fold and liveness
/// analyses themselves live in FoldOracle (src/transform/fold_oracle.h),
/// shared with the optimizer's const-fold and DCE passes so lint and the
/// optimizer can never disagree about what is constant, active or dead.
struct Pass {
  const Design& design;
  const SimGraph& g;
  const Netlist& nl;
  FoldOracle oracle;

  std::vector<std::string> repName;  ///< per class: most readable name
  std::vector<SourceLoc> repLoc;
  std::vector<char> repUser;  ///< class has a non-synthetic member

  // Aliases so the rule code reads the same as the oracle internals.
  std::vector<char>& inputAlways = oracle.inputAlways;
  std::vector<char>& externallyDrivable = oracle.externallyDrivable;
  std::vector<int8_t>& netConst = oracle.netConst;
  std::vector<int8_t>& nodeConst = oracle.nodeConst;
  std::vector<char>& netAlways = oracle.netAlways;
  std::vector<char>& nodeAlways = oracle.nodeAlways;
  std::vector<char>& live = oracle.live;

  explicit Pass(const Design& d, const SimGraph& graph)
      : design(d), g(graph), nl(d.netlist), oracle(d, graph) {
    const size_t nNets = g.denseCount;
    repName.resize(nNets);
    repLoc.resize(nNets);
    repUser.assign(nNets, 0);
    for (size_t i = 0; i < nNets; ++i) {
      repName[i] = nl.net(g.rootOf[i]).name;
      repLoc[i] = nl.net(g.rootOf[i]).loc;
    }
    for (NetId i = 0; i < nl.netCount(); ++i) {
      const Net& n = nl.net(i);
      uint32_t dn = g.denseOf[i];
      if (dn == SimGraph::kNoDense) continue;  // class dropped by -O1
      if (!n.synthetic && !repUser[dn]) {
        repUser[dn] = 1;
        repName[dn] = n.name;
        repLoc[dn] = n.loc;
      }
    }
  }

  [[nodiscard]] uint32_t driverCount(uint32_t dn) const {
    return oracle.driverCount(dn);
  }
  [[nodiscard]] uint32_t consumerCount(uint32_t dn) const {
    return oracle.consumerCount(dn);
  }
};

}  // namespace

std::string_view lintRuleName(LintRule rule) {
  switch (rule) {
    case LintRule::MultiplexContention: return "multiplex-contention";
    case LintRule::UndrivenNet: return "undriven-net";
    case LintRule::UnreadNet: return "unread-net";
    case LintRule::ConstantGate: return "constant-gate";
    case LintRule::DeadBranch: return "dead-branch";
    case LintRule::ConstantRegister: return "constant-register";
    case LintRule::DeepLogic: return "deep-logic";
    case LintRule::FanoutHotspot: return "fanout-hotspot";
  }
  return "?";
}

std::string LintReport::renderText(const SourceManager& sm) const {
  std::string out;
  for (const LintFinding& f : findings) {
    out += "lint ";
    out += severityName(f.severity);
    out += ' ';
    out += sm.describe(f.loc);
    out += ": [";
    out += lintRuleName(f.rule);
    out += "] ";
    out += f.message;
    out += '\n';
  }
  out += "lint: " + std::to_string(errors) + " error(s), " +
         std::to_string(warnings) + " warning(s), " +
         std::to_string(notes) + " note(s)\n";
  return out;
}

std::string LintReport::renderJson(const SourceManager& sm,
                                   const std::string& designName) const {
  std::string out = "{\n  \"zeus-lint\": 1,\n  \"design\": \"" +
                    jsonEscape(designName) + "\",\n  \"summary\": {" +
                    "\"errors\": " + std::to_string(errors) +
                    ", \"warnings\": " + std::to_string(warnings) +
                    ", \"notes\": " + std::to_string(notes) +
                    ", \"findings\": " + std::to_string(findings.size()) +
                    "},\n  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const LintFinding& f = findings[i];
    LineCol lc = sm.expand(f.loc);
    out += i ? ",\n    {" : "\n    {";
    out += "\"rule\": \"" + std::string(lintRuleName(f.rule)) + "\"";
    out += ", \"severity\": \"" + std::string(severityName(f.severity)) +
           "\"";
    if (f.rule == LintRule::MultiplexContention) {
      out += std::string(", \"certain\": ") + (f.certain ? "true" : "false");
    }
    out += ", \"net\": \"" + jsonEscape(f.net) + "\"";
    out += ", \"line\": " + std::to_string(lc.line);
    out += ", \"col\": " + std::to_string(lc.col);
    out += ", \"message\": \"" + jsonEscape(f.message) + "\"}";
  }
  out += findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

LintReport runLint(const Design& design, const SimGraph& graph,
                   DiagnosticEngine& diags, const LintOptions& opts) {
  LintReport report;
  if (graph.hasCycle) return report;  // CombinationalLoop already issued
  const Netlist& nl = design.netlist;
  Pass pass(design, graph);

  auto emit = [&](LintRule rule, Diag code, Severity sev,
                  std::string net, SourceLoc loc, std::string message,
                  bool certain = false) {
    switch (sev) {
      case Severity::Error: ++report.errors; break;
      case Severity::Warning: ++report.warnings; break;
      case Severity::Note: ++report.notes; break;
    }
    if (opts.reportToDiags) diags.report(code, sev, loc, message);
    report.findings.push_back({rule, code, sev, std::move(net), loc,
                               std::move(message), certain});
  };

  // --- (a) static multiplex contention -------------------------------
  for (uint32_t dn = 0; dn < graph.denseCount; ++dn) {
    if (pass.driverCount(dn) < 2) continue;
    const Net& root = nl.net(graph.rootOf[dn]);
    uint32_t alwaysActive = 0;
    SourceLoc loc = pass.repLoc[dn];
    // Conditional drivers with a non-constant guard, grouped by guard
    // class: identical guards are provably simultaneous.
    std::map<uint32_t, uint32_t> guardGroups;
    uint32_t conditional = 0;
    for (uint32_t e = graph.driverStart[dn]; e < graph.driverStart[dn + 1];
         ++e) {
      NodeId d = graph.driverNodes[e];
      const Node& node = nl.node(d);
      if (pass.nodeAlways[d]) {
        ++alwaysActive;
        if (node.loc.valid()) loc = node.loc;
        continue;
      }
      if (node.op == NodeOp::Switch) {
        uint32_t guard = graph.dense(node.inputs[0]);
        if (pass.netConst[guard] == known(Logic::Zero)) continue;  // dead
        ++conditional;
        ++guardGroups[guard];
        if (node.loc.valid()) loc = node.loc;
      }
    }
    std::string name = "'" + pass.repName[dn] + "'";
    if (alwaysActive >= 2) {
      emit(LintRule::MultiplexContention, Diag::LintContention,
           Severity::Error, pass.repName[dn], loc,
           "static contention (certain): signal " + name + " has " +
               std::to_string(alwaysActive) +
               " always-active drivers; every simulated cycle raises "
               "SimContention (§8)",
           /*certain=*/true);
      continue;
    }
    if (root.uncondDrivers >= 2) {
      emit(LintRule::MultiplexContention, Diag::LintContention,
           Severity::Error, pass.repName[dn], loc,
           "signal " + name +
               " is unconditionally assigned more than once across its "
               "alias class (§4.7)");
      continue;
    }
    if (root.uncondDrivers >= 1 && root.condDrivers >= 1) {
      emit(LintRule::MultiplexContention, Diag::LintContention,
           Severity::Error, pass.repName[dn], loc,
           "signal " + name +
               " is assigned both conditionally and unconditionally "
               "across its alias class (§4.7)");
      continue;
    }
    uint32_t largestGroup = 0;
    uint32_t sharedGuard = 0;
    for (const auto& [guard, count] : guardGroups) {
      if (count > largestGroup) {
        largestGroup = count;
        sharedGuard = guard;
      }
    }
    if (largestGroup >= 2) {
      emit(LintRule::MultiplexContention, Diag::LintContention,
           Severity::Warning, pass.repName[dn], loc,
           "possible contention: " + std::to_string(largestGroup) +
               " conditional drivers of signal " + name +
               " share the IF condition '" + pass.repName[sharedGuard] +
               "' and fire together whenever it holds");
      continue;
    }
    if (alwaysActive == 1 && conditional >= 1) {
      emit(LintRule::MultiplexContention, Diag::LintContention,
           Severity::Warning, pass.repName[dn], loc,
           "possible contention: signal " + name +
               " has an always-active driver plus " +
               std::to_string(conditional) +
               " conditional driver(s); any enabled IF branch collides "
               "with it");
    }
  }

  // --- (b) dead / undriven hardware ----------------------------------
  for (uint32_t dn = 0; dn < graph.denseCount; ++dn) {
    if (pass.driverCount(dn) == 0 && !pass.externallyDrivable[dn] &&
        pass.consumerCount(dn) > 0 && pass.repUser[dn]) {
      emit(LintRule::UndrivenNet, Diag::LintUndrivenNet, Severity::Warning,
           pass.repName[dn], pass.repLoc[dn],
           "signal '" + pass.repName[dn] + "' is read by " +
               std::to_string(pass.consumerCount(dn)) +
               " consumer(s) but never driven (always reads " +
               std::string(graph.nets[dn].isBool ? "UNDEF" : "NOINFL") +
               ")");
    }
  }
  for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
    const Node& node = nl.node(ni);
    if (node.op == NodeOp::Switch) {
      if (pass.netConst[graph.dense(node.inputs[0])] ==
          known(Logic::Zero)) {
        emit(LintRule::DeadBranch, Diag::LintDeadBranch, Severity::Warning,
             pass.repName[graph.dense(node.output)], node.loc,
             "IF branch assigning signal '" +
                 pass.repName[graph.dense(node.output)] +
                 "' is never enabled (its condition is constantly 0)");
      }
      continue;
    }
    bool isGate = node.op == NodeOp::Not || node.op == NodeOp::And ||
                  node.op == NodeOp::Or || node.op == NodeOp::Nand ||
                  node.op == NodeOp::Nor || node.op == NodeOp::Xor ||
                  node.op == NodeOp::Equal;
    if (isGate && pass.nodeConst[ni] != kUnknown) {
      emit(LintRule::ConstantGate, Diag::LintConstantGate, Severity::Note,
           pass.repName[graph.dense(node.output)], node.loc,
           std::string(nodeOpName(node.op)) + " gate driving signal '" +
               pass.repName[graph.dense(node.output)] +
               "' always evaluates to " +
               std::string(
                   logicName(static_cast<Logic>(pass.nodeConst[ni]))));
    }
  }
  for (NodeId ni : graph.regNodes) {
    const Node& reg = nl.node(ni);
    int8_t c = pass.netConst[graph.dense(reg.inputs[0])];
    if (c == known(Logic::Undef) || c == known(Logic::NoInfl)) {
      emit(LintRule::ConstantRegister, Diag::LintConstantRegister,
           Severity::Warning, pass.repName[graph.dense(reg.output)],
           reg.loc,
           "register '" + pass.repName[graph.dense(reg.output)] +
               "' can never take a defined value (its input cone is "
               "constantly " +
               std::string(logicName(static_cast<Logic>(c))) + ")");
    }
  }
  for (uint32_t dn = 0; dn < graph.denseCount; ++dn) {
    if (pass.driverCount(dn) > 0 && !pass.live[dn] && pass.repUser[dn] &&
        !pass.externallyDrivable[dn]) {
      emit(LintRule::UnreadNet, Diag::LintUnreadNet, Severity::Note,
           pass.repName[dn], pass.repLoc[dn],
           "signal '" + pass.repName[dn] +
               "' is driven but its cone never reaches a primary output "
               "(dead hardware)");
    }
  }

  // --- (c) structural warnings ---------------------------------------
  DesignStats stats = computeStats(design, graph);
  if (stats.depth > opts.maxDepth) {
    uint32_t deepest = 0;
    for (uint32_t dn = 0; dn < graph.denseCount; ++dn) {
      if (graph.netLevel[dn] == graph.maxLevel) { deepest = dn; break; }
    }
    emit(LintRule::DeepLogic, Diag::LintDeepLogic, Severity::Warning,
         pass.repName[deepest], pass.repLoc[deepest],
         "combinational depth " + std::to_string(stats.depth) +
             " exceeds the threshold of " + std::to_string(opts.maxDepth) +
             " levels (deepest signal '" + pass.repName[deepest] + "')");
  }
  for (uint32_t dn = 0; dn < graph.denseCount; ++dn) {
    uint32_t fanout = pass.consumerCount(dn);
    // Constant nets are not routing hot spots: a backend replicates the
    // constant instead of running one wire to every consumer.
    if (fanout > opts.maxFanout && !pass.inputAlways[dn] &&
        pass.netConst[dn] == kUnknown) {
      emit(LintRule::FanoutHotspot, Diag::LintFanoutHotspot, Severity::Note,
           pass.repName[dn], pass.repLoc[dn],
           "signal '" + pass.repName[dn] + "' fans out to " +
               std::to_string(fanout) + " consumers (threshold " +
               std::to_string(opts.maxFanout) + ")");
    }
  }
  return report;
}

}  // namespace zeus

// Static lint pass over the elaborated design + semantics graph (§4.7, §8).
//
// The paper's headline claim is that static rules catch circuits that
// would burn transistors *before* simulation.  The elaborator enforces the
// assignment legality tables; this pass promotes everything else that is
// statically decidable into compile-time diagnostics:
//
//   (a) static multiplex contention — nets with two always-active drivers
//       (a §8 SimContention that fires on *every* cycle, reported here as
//       an error with certainty=true), and conditional drivers whose
//       IF-guard conditions provably overlap (warning, certainty=false);
//   (b) dead/undriven hardware — undriven-but-read nets, driven-but-unread
//       cones, constant-foldable gates, never-enabled IF branches and
//       registers whose input cone is constantly UNDEF/NOINFL;
//   (c) structural warnings — combinational depth over a threshold and
//       fanout hot spots.
//
// Findings flow through the ordinary DiagnosticEngine (stable Diag codes,
// severities, source locations) and are additionally collected in a
// LintReport that renders as text or machine-readable JSON (schema in
// docs/lint.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/elab/design.h"
#include "src/sim/graph.h"
#include "src/support/diagnostics.h"

namespace zeus {

/// Thresholds and switches for the lint pass.
struct LintOptions {
  /// Combinational depth (graph levels) beyond which LintDeepLogic fires.
  uint32_t maxDepth = 256;
  /// Consumer count beyond which a net is a LintFanoutHotspot.
  uint32_t maxFanout = 64;
  /// Mirror every finding into the DiagnosticEngine (lint errors then make
  /// Compilation::ok() false, like any other error).
  bool reportToDiags = true;
};

/// The rule that produced a finding (stable names; the JSON `rule` field).
enum class LintRule : uint8_t {
  MultiplexContention,  ///< ≥2 drivers that can be simultaneously active
  UndrivenNet,          ///< read by hardware but never driven
  UnreadNet,            ///< driven but its cone never reaches an output/REG
  ConstantGate,         ///< gate output is constant-foldable
  DeadBranch,           ///< IF branch whose condition is constantly false
  ConstantRegister,     ///< register input cone constant UNDEF/NOINFL
  DeepLogic,            ///< combinational depth over LintOptions::maxDepth
  FanoutHotspot,        ///< fanout over LintOptions::maxFanout
};

std::string_view lintRuleName(LintRule rule);

/// One lint finding.  `net` names the affected signal (the most readable
/// member of its alias class) or is empty for design-wide findings.
struct LintFinding {
  LintRule rule;
  Diag code;
  Severity severity;
  std::string net;
  SourceLoc loc;
  std::string message;
  /// MultiplexContention only: the contention fires on every simulated
  /// cycle (all colliding drivers are unconditionally active), so the
  /// firing evaluator is guaranteed to raise SimContention.
  bool certain = false;
};

struct LintReport {
  std::vector<LintFinding> findings;
  size_t errors = 0;
  size_t warnings = 0;
  size_t notes = 0;

  [[nodiscard]] bool clean() const { return findings.empty(); }
  [[nodiscard]] bool hasErrors() const { return errors > 0; }

  /// One line per finding ("lint severity loc: [rule] message") plus a
  /// trailing summary line.
  [[nodiscard]] std::string renderText(const SourceManager& sm) const;
  /// Machine-readable form; schema documented in docs/lint.md.
  [[nodiscard]] std::string renderJson(const SourceManager& sm,
                                       const std::string& designName) const;
};

/// Runs every rule over an elaborated design and its semantics graph.
/// A cyclic graph (SimGraph::hasCycle) yields an empty report — the
/// CombinationalLoop error has already been issued by buildSimGraph.
LintReport runLint(const Design& design, const SimGraph& graph,
                   DiagnosticEngine& diags, const LintOptions& opts = {});

}  // namespace zeus

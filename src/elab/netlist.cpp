#include "src/elab/netlist.h"

#include <cassert>

namespace zeus {

std::string_view nodeOpName(NodeOp op) {
  switch (op) {
    case NodeOp::Const: return "CONST";
    case NodeOp::Buf: return "BUF";
    case NodeOp::Not: return "NOT";
    case NodeOp::And: return "AND";
    case NodeOp::Or: return "OR";
    case NodeOp::Nand: return "NAND";
    case NodeOp::Nor: return "NOR";
    case NodeOp::Xor: return "XOR";
    case NodeOp::Equal: return "EQUAL";
    case NodeOp::Switch: return "SWITCH";
    case NodeOp::Reg: return "REG";
    case NodeOp::Random: return "RANDOM";
  }
  return "?";
}

NetId Netlist::addNet(std::string name, BasicKind kind, SourceLoc loc) {
  NetId id = static_cast<NetId>(nets_.size());
  Net n;
  n.name = std::move(name);
  n.kind = kind;
  n.loc = loc;
  nameIndex_.emplace(n.name, id);  // first net with a name wins
  nets_.push_back(std::move(n));
  parent_.push_back(id);
  drivers_.emplace_back();
  return id;
}

NetId Netlist::findByName(const std::string& name) const {
  auto it = nameIndex_.find(name);
  return it == nameIndex_.end() ? kNoNet : it->second;
}

NodeId Netlist::addNode(Node n) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  if (n.output != kNoNet) drivers_[find(n.output)].push_back(id);
  nodes_.push_back(std::move(n));
  return id;
}

NetId Netlist::find(NetId id) const {
  assert(id < parent_.size());
  NetId root = id;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[id] != root) {
    NetId next = parent_[id];
    parent_[id] = root;
    id = next;
  }
  return root;
}

NetId Netlist::unite(NetId a, NetId b) {
  NetId ra = find(a);
  NetId rb = find(b);
  if (ra == rb) return ra;
  // Keep the lower id as root for determinism.
  if (rb < ra) std::swap(ra, rb);
  parent_[rb] = ra;
  Net& na = nets_[ra];
  const Net& nb = nets_[rb];
  na.uncondDrivers += nb.uncondDrivers;
  na.condDrivers += nb.condDrivers;
  na.aliasTarget = true;
  nets_[rb].aliasTarget = true;
  na.allowCond = na.allowCond || nb.allowCond;
  na.isPrimaryInput = na.isPrimaryInput || nb.isPrimaryInput;
  na.isPrimaryOutput = na.isPrimaryOutput || nb.isPrimaryOutput;
  na.isRegOutput = na.isRegOutput || nb.isRegOutput;
  // Merge driver node lists.
  auto& da = drivers_[ra];
  auto& db = drivers_[rb];
  da.insert(da.end(), db.begin(), db.end());
  db.clear();
  return ra;
}

void Netlist::canonicalise() {
  for (Node& n : nodes_) {
    for (NetId& in : n.inputs) in = find(in);
    if (n.output != kNoNet) n.output = find(n.output);
  }
  for (auto& d : drivers_) d.clear();
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].output != kNoNet) drivers_[nodes_[i].output].push_back(i);
  }
}

void Netlist::removeNodes(const std::vector<char>& keep) {
  assert(keep.size() == nodes_.size());
  size_t out = 0;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (!keep[i]) continue;
    if (out != i) nodes_[out] = std::move(nodes_[i]);
    ++out;
  }
  nodes_.resize(out);
  for (auto& d : drivers_) d.clear();
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].output != kNoNet) drivers_[find(nodes_[i].output)].push_back(i);
  }
}

}  // namespace zeus

// The elaborated design: object trees, component instances and the flat
// netlist, plus everything the layout engine and simulator need.
//
// An Obj mirrors the structure of a resolved type:
//   Wire     — one basic signal (a net)
//   Array    — elements in index order
//   Record   — a component type without body: named wire bundles
//   Instance — a component type with body; materialised lazily (§4.2:
//              completely disconnected components are never generated)
//   Virtual  — a placeholder replaced by a real component type through the
//              layout language's replacement statement (§6.4)
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/ast/ast.h"
#include "src/elab/netlist.h"
#include "src/sema/type_table.h"

namespace zeus {

struct InstanceData;

enum class ObjKind : uint8_t { Wire, Array, Record, Instance, Virtual };

struct Obj {
  ObjKind kind = ObjKind::Wire;
  const Type* type = nullptr;
  NetId net = kNoNet;                  ///< Wire
  std::vector<Obj> elems;              ///< Array elements / Record fields
  std::unique_ptr<InstanceData> inst;  ///< Instance body (null until used)
  const Type* replacedType = nullptr;  ///< Virtual: the replacement type
  std::string instPath;  ///< hierarchical path (Instance / Virtual only)

  [[nodiscard]] bool isMaterialisedInstance() const {
    return kind == ObjKind::Instance && inst != nullptr;
  }
};

/// One named object inside an instance: a formal parameter or a local
/// signal declaration.
struct Member {
  Obj obj;
  bool isFormal = false;
  ast::ParamMode mode = ast::ParamMode::InOut;  ///< for formals
  SourceLoc loc;
};

/// A materialised component instance.
struct InstanceData {
  std::string path;   ///< hierarchical, e.g. "match.pe[2].comp"
  const Type* type = nullptr;
  InstanceData* parent = nullptr;
  std::map<std::string, Member> members;
  std::vector<std::string> memberOrder;  ///< declaration order of members
  std::vector<NetId> resultNets;         ///< function components
  Env* env = nullptr;  ///< body environment (consts/types/formals bound)
  bool connectionSeen = false;
  bool isFunctionCall = false;  ///< inline function-component instantiation
  SourceLoc loc;

  [[nodiscard]] Member* findMember(const std::string& name) {
    auto it = members.find(name);
    return it == members.end() ? nullptr : &it->second;
  }
};

/// A primary port of the elaborated top component.
struct Port {
  std::string name;  ///< formal parameter name on the top component
  std::vector<NetId> nets;
  std::vector<BasicKind> kinds;
  std::vector<ast::ParamMode> modes;  ///< per-bit effective mode
  ast::ParamMode mode = ast::ParamMode::InOut;  ///< declared field mode
};

/// Sequential-ordering annotation: per SEQUENTIAL statement, the sets of
/// nets assigned by each of its direct sub-statements (§4.5).
struct SeqGroups {
  SourceLoc loc;
  std::vector<std::vector<NetId>> groups;
};

struct Design {
  Netlist netlist;
  Obj topObj;                ///< the top instance object
  InstanceData* top = nullptr;
  std::string topName;
  std::vector<Port> ports;
  NetId clk = kNoNet;
  NetId rset = kNoNet;
  std::vector<SeqGroups> sequentials;

  /// Nonzero once the optimization pipeline (src/transform) has run:
  /// a hash of the pass configuration and its effect, folded into
  /// designContentHash so ZSNP snapshots taken at different -O levels
  /// (different dense-net numbering) can never be cross-restored.
  uint64_t optFingerprint = 0;

  [[nodiscard]] const Port* findPort(const std::string& name) const {
    for (const Port& p : ports)
      if (p.name == name) return &p;
    return nullptr;
  }
};

}  // namespace zeus

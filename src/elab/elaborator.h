// The Zeus elaborator: turns a checked program and a chosen top-level
// signal into a flat netlist plus the instance tree (paper §4, §8).
//
// Elaboration is where most of the §4.7 static type rules are enforced:
// they are rules about *instantiated basic signals* (assignment counting,
// boolean/multiplex legality, IN/OUT directions), so they can only be
// checked once parameterized types are bound and replication is unrolled.
#pragma once

#include <memory>
#include <string>

#include "src/ast/ast.h"
#include "src/elab/design.h"
#include "src/sema/type_table.h"
#include "src/support/diagnostics.h"
#include "src/support/limits.h"

namespace zeus {

class Elaborator {
 public:
  struct Options {
    /// Treat the unused-port rule (§4.1) as an error instead of a warning.
    bool strictUnusedPorts = false;
    /// Resource budgets: maxInstanceDepth (recursion guard), maxInstances
    /// and maxNets bound what one elaboration may generate; each breach is
    /// a recoverable diagnostic.
    Limits limits;
    /// Optional consumption record (see Compilation::resourceReport()).
    ResourceUsage* usage = nullptr;
  };

  Elaborator(DiagnosticEngine& diags, TypeTable& types)
      : Elaborator(diags, types, Options()) {}
  Elaborator(DiagnosticEngine& diags, TypeTable& types, Options options);

  /// Elaborates the design rooted at the top-level SIGNAL declaration named
  /// `topName`.  Returns nullptr if errors were reported.
  std::unique_ptr<Design> elaborate(const ast::Program& program, Env& rootEnv,
                                    const std::string& topName);

 private:
  DiagnosticEngine& diags_;
  TypeTable& types_;
  Options options_;
};

}  // namespace zeus

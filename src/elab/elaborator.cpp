#include "src/elab/elaborator.h"

#include <cassert>
#include <optional>

#include "src/sema/const_eval.h"
#include "src/sim/value.h"

namespace zeus {
namespace elab_detail {

// Where a basic signal sits relative to the component being elaborated.
// A resolved signal path is a concatenation of segments, each of which is a
// set of mutually-exclusive guarded alternatives (one alternative per
// possible value of a NUM index; exactly one alternative otherwise).

using ast::Expr;
using ast::ExprKind;
using ast::ParamMode;
using ast::Stmt;
using ast::StmtKind;

enum class RoleCtx : uint8_t { Local, Formal, Child, Builtin };

struct Alt {
  Obj* obj = nullptr;
  NetId guard = kNoNet;
  RoleCtx ctx = RoleCtx::Local;
  ParamMode mode = ParamMode::InOut;
};

struct Segment {
  std::vector<Alt> alts;
};

using Path = std::vector<Segment>;

/// One bit of an evaluated rvalue.
struct RBit {
  NetId net = kNoNet;
  Logic cval = Logic::Undef;
  bool isConst = false;
  bool empty = false;     ///< "*" — empty assignment
  bool flexible = false;  ///< bare "*": stretches to the needed width
};

struct RVal {
  std::vector<RBit> bits;
};

/// One bit of an assignable lvalue.
struct LBit {
  NetId net = kNoNet;
  BasicKind kind = BasicKind::Boolean;
  ParamMode mode = ParamMode::InOut;
  RoleCtx ctx = RoleCtx::Local;
  NetId guard = kNoNet;
  bool star = false;      ///< "*" placeholder (skip)
  bool flexible = false;  ///< bare "*"
};

struct WithFrame {
  Alt base;
};

struct Ctx {
  InstanceData* inst = nullptr;
  Env* env = nullptr;
  NetId guard = kNoNet;
  std::vector<WithFrame> withStack;
};

class Impl {
 public:
  Impl(DiagnosticEngine& diags, TypeTable& tt, Elaborator::Options opts)
      : diags_(diags),
        tt_(tt),
        opts_(opts),
        ceval_(diags),
        scratchDiags_(diags.sourceManager()),
        silentEval_(scratchDiags_) {}

  std::unique_ptr<Design> run(const ast::Program& program, Env& rootEnv,
                              const std::string& topName);

 private:
  // ---- error helper ----
  void error(Diag code, SourceLoc loc, std::string msg) {
    diags_.error(code, loc, std::move(msg));
  }

  // ---- object construction ----
  Obj makeObj(const Type* t, const std::string& path, bool isFormalNet,
              SourceLoc loc);
  void materialise(Obj& obj, SourceLoc loc);
  void elaborateBody(InstanceData& inst);
  void checkFormalWireModes(const Field& f, const std::string& instPath);

  // ---- statements ----
  void execStmtList(Ctx& ctx, const std::vector<ast::StmtPtr>& stmts);
  void execStmt(Ctx& ctx, const Stmt& s);
  void execAssign(Ctx& ctx, const Stmt& s);
  void execAlias(Ctx& ctx, const Stmt& s);
  void execConnection(Ctx& ctx, const Stmt& s);
  void execIf(Ctx& ctx, const Stmt& s);
  void execFor(Ctx& ctx, const Stmt& s);
  void execWhen(Ctx& ctx, const Stmt& s);
  void execWith(Ctx& ctx, const Stmt& s);
  void execResult(Ctx& ctx, const Stmt& s);
  void execSequential(Ctx& ctx, const Stmt& s);

  // ---- layout replacements (§6.4) ----
  void execLayoutReplacements(Ctx& ctx,
                              const std::vector<ast::LayoutStmtPtr>& stmts);

  // ---- paths ----
  std::optional<Path> resolvePath(Ctx& ctx, const Expr& e, bool quiet);
  bool selectInto(std::vector<Obj*>& out, Obj* o, const std::string& field,
                  ParamMode& mode, RoleCtx& ctx, SourceLoc loc, bool quiet);
  void flattenObj(Obj* o, ParamMode inherited, RoleCtx ctx, NetId guard,
                  std::vector<LBit>& out, SourceLoc loc);
  std::vector<LBit> flattenPathL(const Path& p, SourceLoc loc);
  RVal flattenPathR(const Path& p, SourceLoc loc);

  // ---- expressions ----
  std::optional<RVal> evalRVal(Ctx& ctx, const Expr& e);
  std::optional<RVal> evalCall(Ctx& ctx, const Expr& e);
  std::optional<std::vector<LBit>> evalLValExpr(Ctx& ctx, const Expr& e);
  std::optional<NetId> evalCond(Ctx& ctx, const Expr& e);
  std::optional<RVal> tryConstRVal(Ctx& ctx, const Expr& e);

  // ---- assignment machinery ----
  void assignBit(const LBit& l, const RBit& r, NetId stmtGuard,
                 SourceLoc loc);
  void aliasBit(const LBit& a, const LBit& b, NetId guard, SourceLoc loc);
  bool adaptR(RVal& v, size_t need, SourceLoc loc);
  bool adaptL(std::vector<LBit>& v, size_t need, SourceLoc loc);

  // ---- netlist helpers ----
  NetId constNet(Logic v);
  NetId rbitNet(const RBit& b);
  NetId freshNet(const char* tag, BasicKind kind, SourceLoc loc);
  NetId gate2(NodeOp op, NetId a, NetId b, SourceLoc loc);
  NetId gate1(NodeOp op, NetId a, SourceLoc loc);
  NetId andGuard(NetId a, NetId b, SourceLoc loc);
  NetId equalConst(const std::vector<NetId>& addr, int64_t value,
                   SourceLoc loc);
  void markTouched(NetId n) { d_->netlist.net(n).touchedByParent = true; }
  void logAssign(NetId n) {
    if (assignLog_) assignLog_->push_back(n);
  }

  // ---- function calls ----
  std::optional<RVal> callUserFunction(Ctx& ctx, const Expr& e,
                                       const Type* fnType);
  std::optional<RVal> synthArith(Ctx& ctx, const Expr& e);

  // ---- post passes ----
  void checkUnusedPorts(const InstanceData& inst);

  DiagnosticEngine& diags_;
  TypeTable& tt_;
  Elaborator::Options opts_;
  ConstEval ceval_;
  DiagnosticEngine scratchDiags_;
  ConstEval silentEval_;

  // ---- resource budgets ----
  /// False once any budget is breached; elaboration then unwinds without
  /// generating further hardware (the breach itself was diagnosed).
  bool budgetOk() const { return !budgetBreached_; }
  /// Checks the net budget before `extra` more nets appear; reports once.
  bool reserveNets(size_t extra, SourceLoc loc);
  /// Accounts one unit of elaboration work (statement / array element);
  /// false once Limits.maxElabSteps is spent.
  bool takeStep(SourceLoc loc);
  void noteUsage();

  std::unique_ptr<Design> d_;
  Obj clkObj_;
  Obj rsetObj_;
  int depth_ = 0;
  size_t instances_ = 0;
  uint64_t steps_ = 0;
  bool budgetBreached_ = false;
  uint64_t callCounter_ = 0;
  NetId constNets_[4] = {kNoNet, kNoNet, kNoNet, kNoNet};
  std::vector<NetId>* assignLog_ = nullptr;
};

// ===========================================================================
// Object construction
// ===========================================================================

bool Impl::reserveNets(size_t extra, SourceLoc loc) {
  if (budgetBreached_) return false;
  size_t have = d_->netlist.netCount();
  size_t budget = opts_.limits.maxNets;
  if (extra > budget || have > budget - extra) {
    budgetBreached_ = true;
    error(Diag::NetBudgetExceeded, loc,
          "design needs more than " + std::to_string(budget) +
              " nets; raise Limits.maxNets or shrink the design");
  }
  return !budgetBreached_;
}

bool Impl::takeStep(SourceLoc loc) {
  if (budgetBreached_) return false;
  if (++steps_ > opts_.limits.maxElabSteps) {
    budgetBreached_ = true;
    error(Diag::ElabBudgetExceeded, loc,
          "elaboration exceeded " +
              std::to_string(opts_.limits.maxElabSteps) +
              " steps; is a FOR replication unbounded?");
  }
  return !budgetBreached_;
}

void Impl::noteUsage() {
  if (!opts_.usage) return;
  opts_.usage->instances = instances_;
  opts_.usage->nets = d_->netlist.netCount();
  opts_.usage->nodes = d_->netlist.nodeCount();
  opts_.usage->notePeak(opts_.usage->instanceDepthPeak, depth_);
}

Obj Impl::makeObj(const Type* t, const std::string& path, bool isFormalNet,
                  SourceLoc loc) {
  Obj o;
  o.type = t;
  if (!reserveNets(t->numBasic, loc)) {
    // Degrade to an inert record — the same shape as the virtual-signal
    // error path — so elaboration unwinds with diagnostics, not hardware.
    o.kind = ObjKind::Record;
    o.instPath = path;
    return o;
  }
  switch (t->kind) {
    case Type::Kind::Basic:
      if (t->basic == BasicKind::Virtual) {
        o.kind = ObjKind::Virtual;
        o.net = kNoNet;
        o.instPath = path;
        return o;
      }
      o.kind = ObjKind::Wire;
      o.net = d_->netlist.addNet(path, t->basic, loc);
      if (isFormalNet && t->basic == BasicKind::Boolean)
        d_->netlist.net(o.net).allowCond = true;  // exception 1 (§4.7)
      return o;
    case Type::Kind::Array:
      o.kind = ObjKind::Array;
      for (int64_t i = t->lo; i <= t->hi;) {
        // Step accounting bounds huge arrays whose elements carry no nets
        // (e.g. ARRAY[1..10^9] OF virtual) that the net budget cannot see.
        if (!takeStep(loc)) break;
        o.elems.push_back(makeObj(t->elem, path + "[" + std::to_string(i) +
                                               "]",
                                  isFormalNet, loc));
        if (i == t->hi) break;  // avoids ++i overflow at INT64_MAX
        ++i;
      }
      return o;
    case Type::Kind::Component:
      if (t->hasBody || t->builtin != BuiltinComponent::None) {
        o.kind = ObjKind::Instance;
        o.inst = nullptr;  // lazy
        o.instPath = path;
        return o;
      }
      // Record type: a bundle of named wires.
      o.kind = ObjKind::Record;
      for (const Field& f : t->fields) {
        o.elems.push_back(
            makeObj(f.type, path + "." + f.name, isFormalNet, loc));
      }
      return o;
  }
  return o;
}

void Impl::checkFormalWireModes(const Field& f, const std::string& instPath) {
  // §3.2: unstructured IN/OUT parameters must be boolean; INOUT parameters
  // of a basic type must be multiplex.  Applies to the wire parts only.
  if (f.type->kind == Type::Kind::Component &&
      (f.type->hasBody || f.type->builtin != BuiltinComponent::None)) {
    return;  // component-typed parameter: its own formals were checked
  }

  // "A substructure may not be at the same time an IN and OUT parameter":
  // an explicit nested mode must not contradict an inherited one.
  struct ModeWalk {
    Impl* self;
    const Field& f;
    const std::string& instPath;
    void go(const Type& t, ast::ParamMode inherited,
            const std::string& path) {
      if (t.kind == Type::Kind::Array) {
        if (t.elem) go(*t.elem, inherited, path);
        return;
      }
      if (t.kind != Type::Kind::Component) return;
      for (const Field& sub : t.fields) {
        if (sub.mode != ParamMode::InOut &&
            inherited != ParamMode::InOut && sub.mode != inherited) {
          self->error(Diag::SubstructureInAndOut, sub.loc,
                      "substructure '" + path + "." + sub.name + "' of '" +
                          instPath + "." + f.name +
                          "' cannot be both IN and OUT (§3.2)");
          continue;
        }
        ast::ParamMode eff =
            sub.mode != ParamMode::InOut ? sub.mode : inherited;
        if (sub.type) go(*sub.type, eff, path + "." + sub.name);
      }
    }
  };
  if (f.mode != ParamMode::InOut) {
    ModeWalk{this, f, instPath}.go(*f.type, f.mode, f.name);
  }
  std::vector<FlatBit> bits;
  tt_.flatten(*f.type, f.mode, "", bits);
  for (const FlatBit& b : bits) {
    if ((b.mode == ParamMode::In || b.mode == ParamMode::Out) &&
        b.kind != BasicKind::Boolean) {
      error(Diag::UnstructuredInOutMustBeBoolean, f.loc,
            "IN/OUT parameter bit '" + f.name + b.path + "' of '" + instPath +
                "' must be of type boolean");
    }
    if (b.mode == ParamMode::InOut && b.kind != BasicKind::Multiplex) {
      error(Diag::InOutBasicMustBeMultiplex, f.loc,
            "INOUT parameter bit '" + f.name + b.path + "' of '" + instPath +
                "' must be of type multiplex");
    }
  }
}

void Impl::materialise(Obj& obj, SourceLoc loc) {
  if (obj.kind == ObjKind::Virtual) {
    if (!obj.replacedType) {
      error(Diag::VirtualNotReplaced, loc,
            "virtual signal '" + obj.instPath +
                "' used before a replacement statement assigned it a type");
      // Degrade to an empty record so elaboration can continue.
      obj.kind = ObjKind::Record;
      obj.type = tt_.boolean();
      obj.elems.clear();
      return;
    }
    obj.type = obj.replacedType;
    if (obj.type->kind != Type::Kind::Component ||
        (!obj.type->hasBody && obj.type->builtin == BuiltinComponent::None)) {
      error(Diag::ReplacementOnNonVirtual, loc,
            "replacement type for '" + obj.instPath +
                "' must be a component type with a body");
      obj.kind = ObjKind::Record;
      obj.elems.clear();
      return;
    }
    obj.kind = ObjKind::Instance;
  }
  if (obj.kind != ObjKind::Instance || obj.inst) return;
  if (budgetBreached_) return;

  if (++depth_ > opts_.limits.maxInstanceDepth) {
    --depth_;
    error(Diag::RecursionTooDeep, loc,
          "component instantiation too deep at '" + obj.instPath +
              "' (recursive type without terminating WHEN guard?)");
    return;
  }
  if (opts_.usage)
    opts_.usage->notePeak(opts_.usage->instanceDepthPeak, depth_);
  if (++instances_ > opts_.limits.maxInstances) {
    --depth_;
    budgetBreached_ = true;
    error(Diag::InstanceBudgetExceeded, loc,
          "more than " + std::to_string(opts_.limits.maxInstances) +
              " component instances at '" + obj.instPath +
              "'; raise Limits.maxInstances or shrink the design");
    return;
  }

  // Assignments made while elaborating a child body belong to that body,
  // not to the statement that happened to touch the child first — keep
  // them out of the enclosing SEQUENTIAL group (§4.5: sequentiality is not
  // inherited by nested statements).
  std::vector<NetId>* savedLog = assignLog_;
  assignLog_ = nullptr;

  const Type* T = obj.type;
  obj.inst = std::make_unique<InstanceData>();
  InstanceData& inst = *obj.inst;
  inst.path = obj.instPath;
  inst.type = T;
  inst.loc = loc;

  if (T->builtin == BuiltinComponent::Reg) {
    Member in;
    in.isFormal = true;
    in.mode = ParamMode::In;
    in.obj = makeObj(tt_.boolean(), inst.path + ".in", true, loc);
    Member out;
    out.isFormal = true;
    out.mode = ParamMode::Out;
    out.obj = makeObj(tt_.boolean(), inst.path + ".out", true, loc);
    d_->netlist.net(out.obj.net).isRegOutput = true;
    Node reg;
    reg.op = NodeOp::Reg;
    reg.inputs = {in.obj.net};
    reg.output = out.obj.net;
    reg.loc = loc;
    d_->netlist.net(out.obj.net).uncondDrivers++;  // driven by the register
    d_->netlist.addNode(std::move(reg));
    inst.members.emplace("in", std::move(in));
    inst.members.emplace("out", std::move(out));
    inst.memberOrder = {"in", "out"};
    --depth_;
    assignLog_ = savedLog;
    return;
  }

  for (const Field& f : T->fields) {
    // Budget check BEFORE checkFormalWireModes: flattening a giant formal
    // would allocate its FlatBit list before makeObj ever saw the breach.
    if (!reserveNets(f.type->numBasic, f.loc)) break;
    checkFormalWireModes(f, inst.path);
    Member m;
    m.isFormal = true;
    m.mode = f.mode;
    m.loc = f.loc;
    m.obj = makeObj(f.type, inst.path + "." + f.name, true, f.loc);
    inst.members.emplace(f.name, std::move(m));
    inst.memberOrder.push_back(f.name);
  }

  if (T->isFunction() && reserveNets(T->resultType->numBasic, loc)) {
    std::vector<FlatBit> bits;
    tt_.flatten(*T->resultType, ParamMode::Out, "", bits);
    for (const FlatBit& b : bits) {
      NetId n = d_->netlist.addNet(inst.path + ".RESULT" + b.path, b.kind,
                                   loc);
      if (b.kind == BasicKind::Boolean)
        d_->netlist.net(n).allowCond = true;  // conditional RESULT (§3.2)
      inst.resultNets.push_back(n);
    }
  }

  if (T->hasBody && T->def) elaborateBody(inst);
  --depth_;
  assignLog_ = savedLog;
}

void Impl::elaborateBody(InstanceData& inst) {
  const ast::TypeExpr& def = *inst.type->def;
  Env* env = tt_.makeEnv(inst.type->bodyEnv);
  inst.env = env;

  Ctx ctx;
  ctx.inst = &inst;
  ctx.env = env;

  // Local declarations.
  for (const ast::DeclPtr& dp : def.decls) {
    const ast::Decl& decl = *dp;
    switch (decl.kind) {
      case ast::DeclKind::Const: {
        auto v = ceval_.eval(*decl.constValue, *env);
        if (v && !env->defineConst(decl.name, std::move(*v))) {
          error(Diag::DuplicateDeclaration, decl.loc,
                "duplicate declaration of '" + decl.name + "'");
        }
        break;
      }
      case ast::DeclKind::Type:
        if (!env->defineType(decl.name, TypeBinding{&decl, env})) {
          error(Diag::DuplicateDeclaration, decl.loc,
                "duplicate declaration of '" + decl.name + "'");
        }
        break;
      case ast::DeclKind::Signal: {
        const Type* t = tt_.resolve(*decl.type, *env);
        if (!t) break;
        if (t->isFunction()) {
          error(Diag::FunctionUsedAsSignal, decl.loc,
                "a function component type cannot be used in a signal "
                "declaration");
          break;
        }
        for (const std::string& name : decl.names) {
          if (inst.members.count(name) || env->definesLocally(name)) {
            error(Diag::DuplicateDeclaration, decl.loc,
                  "duplicate declaration of '" + name + "'");
            continue;
          }
          Member m;
          m.isFormal = false;
          m.loc = decl.loc;
          m.obj = makeObj(t, inst.path + "." + name, false, decl.loc);
          inst.members.emplace(name, std::move(m));
          inst.memberOrder.push_back(name);
        }
        break;
      }
    }
  }

  // Virtual-signal replacements from the layout blocks come before the
  // body statements (§6.4: the layout language is the only proper place
  // for replacements).
  execLayoutReplacements(ctx, def.headerLayout);
  execLayoutReplacements(ctx, def.bodyLayout);

  execStmtList(ctx, def.body);
}

// ===========================================================================
// Layout replacements
// ===========================================================================

void Impl::execLayoutReplacements(Ctx& ctx,
                                  const std::vector<ast::LayoutStmtPtr>&
                                      stmts) {
  for (const ast::LayoutStmtPtr& sp : stmts) {
    const ast::LayoutStmt& s = *sp;
    switch (s.kind) {
      case ast::LayoutStmtKind::Replacement: {
        auto path = resolvePath(ctx, *s.signal, /*quiet=*/false);
        if (!path) break;
        const Type* t = tt_.resolve(*s.replacementType, *ctx.env);
        if (!t) break;
        for (Segment& seg : *path) {
          for (Alt& alt : seg.alts) {
            if (alt.obj->kind != ObjKind::Virtual) {
              error(Diag::ReplacementOnNonVirtual, s.loc,
                    "replacement target is not a virtual signal");
              continue;
            }
            if (alt.obj->replacedType) {
              error(Diag::VirtualReplacedTwice, s.loc,
                    "virtual signal replaced more than once");
              continue;
            }
            alt.obj->replacedType = t;
          }
        }
        break;
      }
      case ast::LayoutStmtKind::For: {
        auto from = ceval_.evalNumber(*s.from, *ctx.env);
        auto to = ceval_.evalNumber(*s.to, *ctx.env);
        if (!from || !to) break;
        int64_t step = s.downto ? -1 : 1;
        for (int64_t i = *from; s.downto ? i >= *to : i <= *to; i += step) {
          Env* loopEnv = tt_.makeEnv(ctx.env);
          loopEnv->defineLoopVar(s.loopVar, i);
          Ctx inner = Ctx{ctx.inst, loopEnv, ctx.guard, ctx.withStack};
          execLayoutReplacements(inner, s.body);
        }
        break;
      }
      case ast::LayoutStmtKind::When: {
        bool taken = false;
        for (const ast::LayoutStmt::WhenArm& arm : s.whenArms) {
          auto c = ceval_.evalNumber(*arm.cond, *ctx.env);
          if (!c) return;
          if (*c != 0) {
            execLayoutReplacements(ctx, arm.body);
            taken = true;
            break;
          }
        }
        if (!taken) execLayoutReplacements(ctx, s.otherwiseBody);
        break;
      }
      case ast::LayoutStmtKind::Order:
      case ast::LayoutStmtKind::Boundary:
        execLayoutReplacements(ctx, s.body);
        break;
      case ast::LayoutStmtKind::With: {
        auto path = resolvePath(ctx, *s.withSignal, /*quiet=*/true);
        if (!path || path->size() != 1 || (*path)[0].alts.size() != 1) break;
        Ctx inner = ctx;
        inner.withStack.push_back(WithFrame{(*path)[0].alts[0]});
        execLayoutReplacements(inner, s.body);
        break;
      }
      case ast::LayoutStmtKind::Ref:
        break;
    }
  }
}

// ===========================================================================
// Statement execution
// ===========================================================================

void Impl::execStmtList(Ctx& ctx, const std::vector<ast::StmtPtr>& stmts) {
  for (const ast::StmtPtr& s : stmts) {
    if (!takeStep(s->loc)) return;
    execStmt(ctx, *s);
  }
}

void Impl::execStmt(Ctx& ctx, const Stmt& s) {
  switch (s.kind) {
    case StmtKind::Assign:
      if (s.isAlias) execAlias(ctx, s);
      else execAssign(ctx, s);
      return;
    case StmtKind::Connection: execConnection(ctx, s); return;
    case StmtKind::Replication: execFor(ctx, s); return;
    case StmtKind::CondGen: execWhen(ctx, s); return;
    case StmtKind::If: execIf(ctx, s); return;
    case StmtKind::Result: execResult(ctx, s); return;
    case StmtKind::Sequential: execSequential(ctx, s); return;
    case StmtKind::Parallel: execStmtList(ctx, s.body); return;
    case StmtKind::With: execWith(ctx, s); return;
    case StmtKind::Empty: return;
  }
}

void Impl::execAssign(Ctx& ctx, const Stmt& s) {
  // "* := e" is an empty assignment: the signal e stays available (§4.1).
  if (s.lhs->kind == ExprKind::Star) {
    (void)evalRVal(ctx, *s.rhs);
    return;
  }
  auto path = resolvePath(ctx, *s.lhs, /*quiet=*/false);
  if (!path) return;

  // Per-segment flattening: a NUM-indexed segment has several guarded
  // alternatives, all of the same shape — each logical rhs bit is written
  // to every alternative under that alternative's guard.
  std::vector<std::vector<std::vector<LBit>>> flat;  // [seg][alt][bit]
  size_t total = 0;
  for (const Segment& seg : *path) {
    std::vector<std::vector<LBit>> perAlt;
    for (const Alt& a : seg.alts) {
      std::vector<LBit> bits;
      flattenObj(a.obj, a.mode, a.ctx, a.guard, bits, s.loc);
      perAlt.push_back(std::move(bits));
    }
    if (!perAlt.empty()) total += perAlt[0].size();
    flat.push_back(std::move(perAlt));
  }

  auto rv = evalRVal(ctx, *s.rhs);
  if (!rv) return;
  if (!adaptR(*rv, total, s.loc)) return;

  size_t offset = 0;
  for (const auto& perAlt : flat) {
    if (perAlt.empty()) continue;
    size_t w = perAlt[0].size();
    for (const auto& bits : perAlt) {
      for (size_t j = 0; j < w && j < bits.size(); ++j) {
        assignBit(bits[j], rv->bits[offset + j], ctx.guard, s.loc);
      }
    }
    offset += w;
  }
}

void Impl::execAlias(Ctx& ctx, const Stmt& s) {
  // "x == *" / "* == x": empty alias; mark the other side used.
  if (s.lhs->kind == ExprKind::Star || s.rhs->kind == ExprKind::Star) {
    const Expr& other = s.lhs->kind == ExprKind::Star ? *s.rhs : *s.lhs;
    if (other.kind == ExprKind::Star) return;
    auto path = resolvePath(ctx, other, /*quiet=*/false);
    if (!path) return;
    std::vector<LBit> bits = flattenPathL(*path, s.loc);
    for (const LBit& b : bits) {
      if (b.ctx == RoleCtx::Child && b.net != kNoNet) markTouched(b.net);
    }
    return;
  }
  auto lp = resolvePath(ctx, *s.lhs, /*quiet=*/false);
  auto rp = resolvePath(ctx, *s.rhs, /*quiet=*/false);
  if (!lp || !rp) return;
  std::vector<LBit> a = flattenPathL(*lp, s.loc);
  std::vector<LBit> b = flattenPathL(*rp, s.loc);
  if (a.size() != b.size()) {
    error(Diag::WidthMismatch, s.loc,
          "aliased signals have " + std::to_string(a.size()) + " and " +
              std::to_string(b.size()) + " basic substructures");
    return;
  }
  for (size_t i = 0; i < a.size(); ++i) aliasBit(a[i], b[i], ctx.guard, s.loc);
}

void Impl::execIf(Ctx& ctx, const Stmt& s) {
  NetId outer = ctx.guard;
  NetId accNots = kNoNet;  // conjunction of NOT c1 .. NOT c_{k-1}
  for (const ast::StmtArm& arm : s.arms) {
    auto c = evalCond(ctx, *arm.cond);
    if (!c) return;
    NetId armGuard = andGuard(accNots, *c, s.loc);
    ctx.guard = andGuard(outer, armGuard, s.loc);
    execStmtList(ctx, arm.body);
    NetId notC = gate1(NodeOp::Not, *c, s.loc);
    accNots = andGuard(accNots, notC, s.loc);
  }
  if (!s.elseBody.empty()) {
    ctx.guard = andGuard(outer, accNots, s.loc);
    execStmtList(ctx, s.elseBody);
  }
  ctx.guard = outer;
}

void Impl::execFor(Ctx& ctx, const Stmt& s) {
  auto from = ceval_.evalNumber(*s.from, *ctx.env);
  auto to = ceval_.evalNumber(*s.to, *ctx.env);
  if (!from || !to) return;
  Env* saved = ctx.env;
  auto iterate = [&](int64_t i) {
    // Each iteration costs a step even when the body is empty, so an
    // unbounded replication cannot spin the elaborator forever.
    if (!takeStep(s.loc)) return false;
    Env* loopEnv = tt_.makeEnv(saved);
    loopEnv->defineLoopVar(s.loopVar, i);
    ctx.env = loopEnv;
    execStmtList(ctx, s.body);
    return true;
  };
  // Closed-interval loops written to avoid ++/-- overflow at the int64
  // extremes (FOR i := 1 TO 9223372036854775807 must diagnose, not UB).
  if (s.downto) {
    for (int64_t i = *from; i >= *to; --i) {
      if (!iterate(i) || i == *to) break;
    }
  } else {
    for (int64_t i = *from; i <= *to; ++i) {
      if (!iterate(i) || i == *to) break;
    }
  }
  ctx.env = saved;
}

void Impl::execWhen(Ctx& ctx, const Stmt& s) {
  for (const ast::StmtArm& arm : s.arms) {
    auto c = ceval_.evalNumber(*arm.cond, *ctx.env);
    if (!c) return;
    if (*c != 0) {
      execStmtList(ctx, arm.body);
      return;
    }
  }
  execStmtList(ctx, s.elseBody);
}

void Impl::execWith(Ctx& ctx, const Stmt& s) {
  auto path = resolvePath(ctx, *s.withSignal, /*quiet=*/false);
  if (!path) return;
  if (path->size() != 1 || (*path)[0].alts.size() != 1 ||
      (*path)[0].alts[0].guard != kNoNet) {
    error(Diag::UnexpectedToken, s.loc,
          "WITH requires a single, statically determined signal");
    return;
  }
  Alt base = (*path)[0].alts[0];
  if (base.obj->kind == ObjKind::Instance ||
      base.obj->kind == ObjKind::Virtual) {
    materialise(*base.obj, s.loc);
  }
  ctx.withStack.push_back(WithFrame{base});
  execStmtList(ctx, s.body);
  ctx.withStack.pop_back();
}

void Impl::execResult(Ctx& ctx, const Stmt& s) {
  InstanceData& inst = *ctx.inst;
  if (inst.resultNets.empty()) {
    error(Diag::ResultOutsideFunction, s.loc,
          "RESULT is only allowed inside a function component type");
    return;
  }
  auto rv = evalRVal(ctx, *s.value);
  if (!rv) return;
  if (!adaptR(*rv, inst.resultNets.size(), s.loc)) return;
  for (size_t i = 0; i < inst.resultNets.size(); ++i) {
    LBit l;
    l.net = inst.resultNets[i];
    l.kind = d_->netlist.net(l.net).kind;
    l.mode = ParamMode::Out;
    l.ctx = RoleCtx::Formal;
    assignBit(l, rv->bits[i], ctx.guard, s.loc);
  }
}

void Impl::execSequential(Ctx& ctx, const Stmt& s) {
  SeqGroups groups;
  groups.loc = s.loc;
  auto collect = [&](const Stmt& sub) {
    std::vector<NetId> log;
    std::vector<NetId>* saved = assignLog_;
    assignLog_ = &log;
    execStmt(ctx, sub);
    assignLog_ = saved;
    groups.groups.push_back(std::move(log));
  };
  for (const ast::StmtPtr& sub : s.body) {
    // FOR ... DO SEQUENTIALLY inside SEQUENTIAL: each iteration is its own
    // group (§4.5 example).
    if (sub->kind == StmtKind::Replication && sub->sequentially) {
      auto from = ceval_.evalNumber(*sub->from, *ctx.env);
      auto to = ceval_.evalNumber(*sub->to, *ctx.env);
      if (!from || !to) continue;
      Env* saved = ctx.env;
      auto iterate = [&](int64_t i) {
        Env* loopEnv = tt_.makeEnv(saved);
        loopEnv->defineLoopVar(sub->loopVar, i);
        ctx.env = loopEnv;
        std::vector<NetId> log;
        std::vector<NetId>* savedLog = assignLog_;
        assignLog_ = &log;
        execStmtList(ctx, sub->body);
        assignLog_ = savedLog;
        groups.groups.push_back(std::move(log));
      };
      if (sub->downto) {
        for (int64_t i = *from; i >= *to; --i) iterate(i);
      } else {
        for (int64_t i = *from; i <= *to; ++i) iterate(i);
      }
      ctx.env = saved;
    } else {
      collect(*sub);
    }
  }
  d_->sequentials.push_back(std::move(groups));
}

// ===========================================================================
// Connections (§4.3)
// ===========================================================================

void Impl::execConnection(Ctx& ctx, const Stmt& s) {
  auto path = resolvePath(ctx, *s.target, /*quiet=*/false);
  if (!path) return;

  // Collect the target instances in order.
  std::vector<InstanceData*> targets;
  bool bad = false;
  auto addObj = [&](auto&& self, Obj* o, SourceLoc loc) -> void {
    switch (o->kind) {
      case ObjKind::Instance:
      case ObjKind::Virtual:
        materialise(*o, loc);
        if (o->inst) targets.push_back(o->inst.get());
        else bad = true;
        return;
      case ObjKind::Array:
        for (Obj& e : o->elems) self(self, &e, loc);
        return;
      default:
        error(Diag::ConnectionOnNonComponent, loc,
              "connection target must be an instantiated component with a "
              "body");
        bad = true;
        return;
    }
  };
  for (Segment& seg : *path) {
    for (Alt& alt : seg.alts) {
      if (alt.guard != kNoNet) {
        error(Diag::ConnectionOnNonComponent, s.loc,
              "connection target cannot use NUM indexing");
        return;
      }
      addObj(addObj, alt.obj, s.loc);
    }
  }
  if (bad || targets.empty()) return;

  const Type* T = targets[0]->type;
  for (InstanceData* t : targets) {
    if (t->type != T) {
      error(Diag::BadConnectionShape, s.loc,
            "connection over components of different types");
      return;
    }
    if (!T->hasBody && T->builtin == BuiltinComponent::None) {
      error(Diag::ConnectionOnNonComponent, s.loc,
            "connection target '" + t->path +
                "' is a record type (component without body)");
      return;
    }
    if (t->connectionSeen) {
      error(Diag::ConnectionRepeated, s.loc,
            "component '" + t->path +
                "' already has a connection statement");
      return;
    }
    t->connectionSeen = true;
  }

  const std::vector<Field>& fields = T->fields;
  size_t n = fields.size();
  size_t q = targets.size();

  // Split the actuals: exactly n top-level expressions.
  std::vector<const Expr*> actuals;
  if (n == 1) {
    actuals.push_back(s.actuals.get());
  } else if (s.actuals->kind == ExprKind::Tuple &&
             s.actuals->elems.size() == n) {
    for (const ast::ExprPtr& e : s.actuals->elems) actuals.push_back(e.get());
  } else {
    error(Diag::BadConnectionShape, s.loc,
          "connection needs exactly " + std::to_string(n) +
              " actual parameter(s)");
    return;
  }

  for (size_t fi = 0; fi < n; ++fi) {
    const Field& f = fields[fi];
    // Formal bits for every target instance, concatenated.
    std::vector<LBit> formalBits;
    for (InstanceData* t : targets) {
      Member* m = t->findMember(f.name);
      assert(m);
      flattenObj(&m->obj, f.mode, RoleCtx::Child, kNoNet, formalBits, s.loc);
    }
    size_t need = formalBits.size();
    (void)q;

    switch (f.mode) {
      case ParamMode::In: {
        auto rv = evalRVal(ctx, *actuals[fi]);
        if (!rv) break;
        if (!adaptR(*rv, need, s.loc)) break;
        for (size_t i = 0; i < need; ++i) {
          assignBit(formalBits[i], rv->bits[i], ctx.guard, s.loc);
        }
        break;
      }
      case ParamMode::Out: {
        auto lv = evalLValExpr(ctx, *actuals[fi]);
        if (!lv) break;
        if (!adaptL(*lv, need, s.loc)) break;
        for (size_t i = 0; i < need; ++i) {
          const LBit& fb = formalBits[i];
          if (fb.net != kNoNet) markTouched(fb.net);
          if ((*lv)[i].star) continue;  // "*" — signal stays available
          RBit r;
          r.net = fb.net;
          assignBit((*lv)[i], r, ctx.guard, s.loc);
        }
        break;
      }
      case ParamMode::InOut: {
        auto lv = evalLValExpr(ctx, *actuals[fi]);
        if (!lv) break;
        if (!adaptL(*lv, need, s.loc)) break;
        for (size_t i = 0; i < need; ++i) {
          const LBit& fb = formalBits[i];
          if (fb.net != kNoNet) markTouched(fb.net);
          if ((*lv)[i].star) continue;  // empty alias (≡ no assignment)
          aliasBit(formalBits[i], (*lv)[i], ctx.guard, s.loc);
        }
        break;
      }
    }
  }
}

// ===========================================================================
// Path resolution
// ===========================================================================

bool Impl::selectInto(std::vector<Obj*>& out, Obj* o,
                      const std::string& field, ParamMode& mode, RoleCtx& ctx,
                      SourceLoc loc, bool quiet) {
  switch (o->kind) {
    case ObjKind::Array: {
      // Omitted selectors: r.in means r[1..n].in (§3.2).
      for (Obj& e : o->elems) {
        if (!selectInto(out, &e, field, mode, ctx, loc, quiet)) return false;
      }
      return true;
    }
    case ObjKind::Record: {
      const Type* t = o->type;
      for (size_t i = 0; i < t->fields.size(); ++i) {
        if (t->fields[i].name == field) {
          if (t->fields[i].mode != ParamMode::InOut)
            mode = t->fields[i].mode;
          out.push_back(&o->elems[i]);
          return true;
        }
      }
      if (!quiet) {
        error(Diag::UnknownIdentifier, loc,
              "no field '" + field + "' in record type " + t->name);
      }
      return false;
    }
    case ObjKind::Instance:
    case ObjKind::Virtual: {
      materialise(*o, loc);
      if (!o->inst) return false;
      Member* m = o->inst->findMember(field);
      if (!m || !m->isFormal) {
        if (!quiet) {
          error(Diag::UnknownIdentifier, loc,
                "no parameter '" + field + "' in component " +
                    o->inst->type->name);
        }
        return false;
      }
      ctx = RoleCtx::Child;
      mode = m->mode;
      out.push_back(&m->obj);
      return true;
    }
    case ObjKind::Wire:
      if (!quiet) {
        error(Diag::UnknownIdentifier, loc,
              "cannot select field '" + field + "' of a basic signal");
      }
      return false;
  }
  return false;
}

std::optional<Path> Impl::resolvePath(Ctx& ctx, const Expr& e, bool quiet) {
  switch (e.kind) {
    case ExprKind::NameRef: {
      if (e.name == "CLK" || e.name == "RSET") {
        Path p(1);
        Alt a;
        a.obj = e.name == "CLK" ? &clkObj_ : &rsetObj_;
        a.ctx = RoleCtx::Builtin;
        p[0].alts.push_back(a);
        return p;
      }
      // WITH frames first (innermost wins), then the instance's members.
      for (auto it = ctx.withStack.rbegin(); it != ctx.withStack.rend();
           ++it) {
        const Alt& base = it->base;
        const Type* t = base.obj->type;
        if (t && t->kind == Type::Kind::Component && t->findField(e.name)) {
          std::vector<Obj*> objs;
          ParamMode mode = base.mode;
          RoleCtx rc = base.ctx;
          if (!selectInto(objs, base.obj, e.name, mode, rc, e.loc, quiet))
            return std::nullopt;
          Path p(1);
          for (Obj* o : objs) p[0].alts.push_back({o, base.guard, rc, mode});
          // Multiple objs from array distribution become segments, not alts.
          if (objs.size() > 1) {
            Path q;
            for (Obj* o : objs) {
              Segment seg;
              seg.alts.push_back({o, base.guard, rc, mode});
              q.push_back(std::move(seg));
            }
            return q;
          }
          return p;
        }
      }
      if (Member* m = ctx.inst->findMember(e.name)) {
        Path p(1);
        Alt a;
        a.obj = &m->obj;
        a.ctx = m->isFormal ? RoleCtx::Formal : RoleCtx::Local;
        a.mode = m->isFormal ? m->mode : ParamMode::InOut;
        p[0].alts.push_back(a);
        return p;
      }
      if (!quiet) {
        error(Diag::UnknownIdentifier, e.loc,
              "unknown signal '" + e.name + "'");
      }
      return std::nullopt;
    }

    case ExprKind::Select: {
      auto base = resolvePath(ctx, *e.base, quiet);
      if (!base) return std::nullopt;
      Path out;
      for (Segment& seg : *base) {
        // Selecting distributes over each alternative; array distribution
        // expands one segment into several (same count for every alt).
        std::vector<std::vector<Obj*>> perAlt(seg.alts.size());
        size_t expanded = 0;
        for (size_t ai = 0; ai < seg.alts.size(); ++ai) {
          ParamMode mode = seg.alts[ai].mode;
          RoleCtx rc = seg.alts[ai].ctx;
          if (!selectInto(perAlt[ai], seg.alts[ai].obj, e.name, mode, rc,
                          e.loc, quiet))
            return std::nullopt;
          seg.alts[ai].mode = mode;
          seg.alts[ai].ctx = rc;
          if (ai == 0) expanded = perAlt[ai].size();
          else if (perAlt[ai].size() != expanded) return std::nullopt;
        }
        for (size_t k = 0; k < expanded; ++k) {
          Segment ns;
          for (size_t ai = 0; ai < seg.alts.size(); ++ai) {
            Alt a = seg.alts[ai];
            a.obj = perAlt[ai][k];
            ns.alts.push_back(a);
          }
          out.push_back(std::move(ns));
        }
      }
      return out;
    }

    case ExprKind::Index: {
      auto base = resolvePath(ctx, *e.base, quiet);
      if (!base) return std::nullopt;

      if (e.numIndex) {
        // Dynamic index: x[NUM(a)] — one segment, many guarded
        // alternatives (§3.2 / §5 RAM example).
        auto addr = evalRVal(ctx, *e.numIndex);
        if (!addr) return std::nullopt;
        std::vector<NetId> addrNets;
        for (const RBit& b : addr->bits) {
          if (b.empty || b.flexible) {
            error(Diag::NumIndexNotConstantWidth, e.loc,
                  "NUM argument cannot contain '*'");
            return std::nullopt;
          }
          addrNets.push_back(rbitNet(b));
        }
        int64_t w = static_cast<int64_t>(addrNets.size());
        if (w <= 0 || w > 30) {
          error(Diag::NumIndexNotConstantWidth, e.loc,
                "NUM argument must have between 1 and 30 bits");
          return std::nullopt;
        }
        Path out;
        for (Segment& seg : *base) {
          Segment ns;
          for (Alt& alt : seg.alts) {
            Obj* o = alt.obj;
            if (o->kind != ObjKind::Array) {
              if (!quiet)
                error(Diag::UnknownIdentifier, e.loc,
                      "NUM index applied to a non-array signal");
              return std::nullopt;
            }
            const Type* t = o->type;
            int64_t maxAddr = (int64_t{1} << w) - 1;
            for (int64_t i = std::max<int64_t>(t->lo, 0);
                 i <= std::min(t->hi, maxAddr); ++i) {
              NetId g = equalConst(addrNets, i, e.loc);
              g = andGuard(alt.guard, g, e.loc);
              ns.alts.push_back(
                  {&o->elems[static_cast<size_t>(i - t->lo)], g, alt.ctx,
                   alt.mode});
            }
          }
          out.push_back(std::move(ns));
        }
        return out;
      }

      auto lo = ceval_.evalNumber(*e.indexLo, *ctx.env);
      if (!lo) return std::nullopt;
      std::optional<int64_t> hi;
      if (e.indexHi) {
        hi = ceval_.evalNumber(*e.indexHi, *ctx.env);
        if (!hi) return std::nullopt;
      }
      Path out;
      for (Segment& seg : *base) {
        int64_t first = *lo;
        int64_t last = hi ? *hi : *lo;
        for (int64_t i = first; i <= last; ++i) {
          Segment ns;
          for (Alt& alt : seg.alts) {
            Obj* o = alt.obj;
            if (o->kind != ObjKind::Array) {
              if (!quiet)
                error(Diag::UnknownIdentifier, e.loc,
                      "indexing a non-array signal");
              return std::nullopt;
            }
            const Type* t = o->type;
            if (i < t->lo || i > t->hi) {
              error(Diag::IndexOutOfRange, e.loc,
                    "index " + std::to_string(i) + " outside " +
                        std::to_string(t->lo) + ".." + std::to_string(t->hi));
              return std::nullopt;
            }
            Alt a = alt;
            a.obj = &o->elems[static_cast<size_t>(i - t->lo)];
            ns.alts.push_back(a);
          }
          out.push_back(std::move(ns));
        }
      }
      return out;
    }

    default:
      if (!quiet) {
        error(Diag::ExpectedExpression, e.loc, "expected a signal");
      }
      return std::nullopt;
  }
}

void Impl::flattenObj(Obj* o, ParamMode inherited, RoleCtx ctx, NetId guard,
                      std::vector<LBit>& out, SourceLoc loc) {
  switch (o->kind) {
    case ObjKind::Wire: {
      LBit b;
      b.net = o->net;
      b.kind = o->type->basic;
      b.mode = inherited;
      b.ctx = ctx;
      b.guard = guard;
      out.push_back(b);
      return;
    }
    case ObjKind::Array:
      for (Obj& e : o->elems)
        flattenObj(&e, inherited, ctx, guard, out, loc);
      return;
    case ObjKind::Record: {
      const Type* t = o->type;
      for (size_t i = 0; i < t->fields.size(); ++i) {
        ParamMode m = t->fields[i].mode != ParamMode::InOut
                          ? t->fields[i].mode
                          : inherited;
        flattenObj(&o->elems[i], m, ctx, guard, out, loc);
      }
      return;
    }
    case ObjKind::Instance:
    case ObjKind::Virtual: {
      materialise(*o, loc);
      if (!o->inst) return;
      const Type* t = o->inst->type;
      for (const Field& f : t->fields) {
        Member* m = o->inst->findMember(f.name);
        if (m) flattenObj(&m->obj, f.mode, RoleCtx::Child, guard, out, loc);
      }
      return;
    }
  }
}

std::vector<LBit> Impl::flattenPathL(const Path& p, SourceLoc loc) {
  // Used where a statically-determined signal is required (aliasing,
  // connection actuals).  execAssign handles NUM-indexed targets itself.
  std::vector<LBit> out;
  for (const Segment& seg : p) {
    if (seg.alts.size() != 1) {
      error(Diag::NumIndexNotConstantWidth, loc,
            "a NUM-indexed signal cannot be used here");
      return out;
    }
    const Alt& a = seg.alts[0];
    flattenObj(a.obj, a.mode, a.ctx, a.guard, out, loc);
  }
  return out;
}

RVal Impl::flattenPathR(const Path& p, SourceLoc loc) {
  RVal out;
  for (const Segment& seg : p) {
    if (seg.alts.size() == 1) {
      const Alt& a = seg.alts[0];
      std::vector<LBit> bits;
      flattenObj(a.obj, a.mode, a.ctx, a.guard, bits, loc);
      for (const LBit& b : bits) {
        if (b.ctx == RoleCtx::Child && b.net != kNoNet) markTouched(b.net);
        RBit r;
        if (b.guard != kNoNet) {
          // single guarded alternative: value if guard else NOINFL
          NetId tmp = freshNet("$sel", BasicKind::Multiplex, loc);
          Node sw;
          sw.op = NodeOp::Switch;
          sw.inputs = {b.guard, b.net};
          sw.output = tmp;
          sw.loc = loc;
          d_->netlist.net(tmp).condDrivers++;
          d_->netlist.addNode(std::move(sw));
          r.net = tmp;
        } else {
          r.net = b.net;
        }
        out.bits.push_back(r);
      }
      continue;
    }
    // NUM indexing read: multiplex the alternatives.
    std::vector<std::vector<LBit>> flats(seg.alts.size());
    for (size_t ai = 0; ai < seg.alts.size(); ++ai) {
      const Alt& a = seg.alts[ai];
      flattenObj(a.obj, a.mode, a.ctx, a.guard, flats[ai], loc);
      for (const LBit& b : flats[ai]) {
        if (b.ctx == RoleCtx::Child && b.net != kNoNet) markTouched(b.net);
      }
    }
    size_t w = flats.empty() ? 0 : flats[0].size();
    for (size_t j = 0; j < w; ++j) {
      NetId tmp = freshNet("$mux", BasicKind::Multiplex, loc);
      for (size_t ai = 0; ai < flats.size(); ++ai) {
        if (j >= flats[ai].size()) continue;
        Node sw;
        sw.op = NodeOp::Switch;
        sw.inputs = {flats[ai][j].guard, flats[ai][j].net};
        sw.output = tmp;
        sw.loc = loc;
        d_->netlist.net(tmp).condDrivers++;
        d_->netlist.addNode(std::move(sw));
      }
      RBit r;
      r.net = tmp;
      out.bits.push_back(r);
    }
  }
  return out;
}

// ===========================================================================
// Expressions
// ===========================================================================

std::optional<RVal> Impl::tryConstRVal(Ctx& ctx, const Expr& e) {
  scratchDiags_.clear();
  auto v = silentEval_.eval(e, *ctx.env);
  if (!v) return std::nullopt;
  RVal out;
  if (v->isNumber) {
    if (v->num != 0 && v->num != 1) {
      // Not representable as a signal; let the caller diagnose.
      return std::nullopt;
    }
    RBit b;
    b.isConst = true;
    b.cval = logicFromBool(v->num == 1);
    out.bits.push_back(b);
    return out;
  }
  for (Logic l : v->sig.flatten()) {
    RBit b;
    b.isConst = true;
    b.cval = l;
    out.bits.push_back(b);
  }
  return out;
}

std::optional<RVal> Impl::evalRVal(Ctx& ctx, const Expr& e) {
  switch (e.kind) {
    case ExprKind::Number: {
      if (e.number != 0 && e.number != 1) {
        error(Diag::WidthMismatch, e.loc,
              "only 0 and 1 are signal values (got " +
                  std::to_string(e.number) + ")");
        return std::nullopt;
      }
      RVal out;
      RBit b;
      b.isConst = true;
      b.cval = logicFromBool(e.number == 1);
      out.bits.push_back(b);
      return out;
    }

    case ExprKind::Star: {
      RVal out;
      if (e.base) {
        auto w = ceval_.evalNumber(*e.base, *ctx.env);
        if (!w) return std::nullopt;
        for (int64_t i = 0; i < *w; ++i) {
          RBit b;
          b.empty = true;
          out.bits.push_back(b);
        }
      } else {
        RBit b;
        b.empty = true;
        b.flexible = true;
        out.bits.push_back(b);
      }
      return out;
    }

    case ExprKind::Tuple: {
      RVal out;
      for (const ast::ExprPtr& el : e.elems) {
        auto v = evalRVal(ctx, *el);
        if (!v) return std::nullopt;
        out.bits.insert(out.bits.end(), v->bits.begin(), v->bits.end());
      }
      return out;
    }

    case ExprKind::Unary: {
      if (e.unOp == ast::UnOp::Not) {
        auto v = evalRVal(ctx, *e.base);
        if (!v) return std::nullopt;
        RVal out;
        for (const RBit& b : v->bits) {
          if (b.empty) {
            error(Diag::ExpectedExpression, e.loc,
                  "'*' cannot be a gate operand");
            return std::nullopt;
          }
          if (b.isConst) {
            RBit nb;
            nb.isConst = true;
            Logic in[1] = {b.cval};
            nb.cval = evalGate(NodeOp::Not, in);
            out.bits.push_back(nb);
            continue;
          }
          RBit nb;
          nb.net = gate1(NodeOp::Not, b.net, e.loc);
          out.bits.push_back(nb);
        }
        return out;
      }
      // +/- exist only in constant expressions.
      if (auto c = tryConstRVal(ctx, e)) return c;
      error(Diag::NotAConstant, e.loc,
            "unary +/- is only allowed in constant expressions");
      return std::nullopt;
    }

    case ExprKind::Binary: {
      if (auto c = tryConstRVal(ctx, e)) return c;
      error(Diag::NotAConstant, e.loc,
            "operators are only allowed in constant expressions; use the "
            "predefined function components for signals");
      return std::nullopt;
    }

    case ExprKind::Call:
      return evalCall(ctx, e);

    case ExprKind::NameRef:
    case ExprKind::Select:
    case ExprKind::Index: {
      // Signals shadow constants; try the path first, quietly.
      if (auto p = resolvePath(ctx, e, /*quiet=*/true)) {
        return flattenPathR(*p, e.loc);
      }
      if (auto c = tryConstRVal(ctx, e)) return c;
      // Re-run loudly for a decent diagnostic.
      if (auto p = resolvePath(ctx, e, /*quiet=*/false)) {
        return flattenPathR(*p, e.loc);
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<NetId> Impl::evalCond(Ctx& ctx, const Expr& e) {
  auto v = evalRVal(ctx, e);
  if (!v) return std::nullopt;
  if (v->bits.size() != 1 || v->bits[0].empty) {
    error(Diag::ConditionNotSingleBit, e.loc,
          "condition must be a single basic signal (got " +
              std::to_string(v->bits.size()) + " bits)");
    return std::nullopt;
  }
  return rbitNet(v->bits[0]);
}

std::optional<std::vector<LBit>> Impl::evalLValExpr(Ctx& ctx, const Expr& e) {
  switch (e.kind) {
    case ExprKind::Star: {
      std::vector<LBit> out;
      if (e.base) {
        auto w = ceval_.evalNumber(*e.base, *ctx.env);
        if (!w) return std::nullopt;
        for (int64_t i = 0; i < *w; ++i) {
          LBit b;
          b.star = true;
          out.push_back(b);
        }
      } else {
        LBit b;
        b.star = true;
        b.flexible = true;
        out.push_back(b);
      }
      return out;
    }
    case ExprKind::Tuple: {
      std::vector<LBit> out;
      for (const ast::ExprPtr& el : e.elems) {
        auto v = evalLValExpr(ctx, *el);
        if (!v) return std::nullopt;
        out.insert(out.end(), v->begin(), v->end());
      }
      return out;
    }
    default: {
      auto p = resolvePath(ctx, e, /*quiet=*/false);
      if (!p) return std::nullopt;
      return flattenPathL(*p, e.loc);
    }
  }
}

// ===========================================================================
// Calls
// ===========================================================================

std::optional<RVal> Impl::evalCall(Ctx& ctx, const Expr& e) {
  const std::string& name = e.name;

  // BIN is always constant.
  if (name == "BIN") {
    if (auto c = tryConstRVal(ctx, e)) return c;
    error(Diag::NotAConstant, e.loc, "BIN arguments must be constant");
    return std::nullopt;
  }

  if (name == "RANDOM") {
    if (!e.elems.empty()) {
      error(Diag::WrongArgumentCount, e.loc, "RANDOM takes no arguments");
      return std::nullopt;
    }
    NetId n = freshNet("$random", BasicKind::Boolean, e.loc);
    Node node;
    node.op = NodeOp::Random;
    node.output = n;
    node.loc = e.loc;
    d_->netlist.net(n).uncondDrivers++;
    d_->netlist.addNode(std::move(node));
    RVal out;
    RBit b;
    b.net = n;
    out.bits.push_back(b);
    return out;
  }

  // Predefined bit-wise gates.
  NodeOp gateOp = NodeOp::Buf;
  bool isGate = true;
  if (name == "AND") gateOp = NodeOp::And;
  else if (name == "OR") gateOp = NodeOp::Or;
  else if (name == "NAND") gateOp = NodeOp::Nand;
  else if (name == "NOR") gateOp = NodeOp::Nor;
  else if (name == "XOR") gateOp = NodeOp::Xor;
  else if (name == "NOT") gateOp = NodeOp::Not;
  else isGate = false;

  if (isGate || name == "EQUAL") {
    std::vector<RVal> args;
    for (const ast::ExprPtr& a : e.elems) {
      auto v = evalRVal(ctx, *a);
      if (!v) return std::nullopt;
      args.push_back(std::move(*v));
    }
    if (args.empty() || (name == "NOT" && args.size() != 1) ||
        (name == "EQUAL" && args.size() != 2)) {
      error(Diag::WrongArgumentCount, e.loc,
            "wrong number of arguments to " + name);
      return std::nullopt;
    }
    size_t m = args[0].bits.size();
    for (const RVal& a : args) {
      if (a.bits.size() != m) {
        error(Diag::WidthMismatch, e.loc,
              name + " arguments must have the same number of basic "
                     "substructures");
        return std::nullopt;
      }
      for (const RBit& b : a.bits) {
        if (b.empty) {
          error(Diag::ExpectedExpression, e.loc,
                "'*' cannot be a gate operand");
          return std::nullopt;
        }
      }
    }
    RVal out;
    if (name == "EQUAL") {
      // Constant-fold when both sides are constant.
      bool allConst = true;
      for (const RVal& a : args)
        for (const RBit& b : a.bits)
          if (!b.isConst) allConst = false;
      if (allConst) {
        std::vector<Logic> av, bv;
        for (const RBit& b : args[0].bits) av.push_back(b.cval);
        for (const RBit& b : args[1].bits) bv.push_back(b.cval);
        RBit r;
        r.isConst = true;
        r.cval = evalEqual(av, bv);
        out.bits.push_back(r);
        return out;
      }
      Node node;
      node.op = NodeOp::Equal;
      for (const RBit& b : args[0].bits) node.inputs.push_back(rbitNet(b));
      for (const RBit& b : args[1].bits) node.inputs.push_back(rbitNet(b));
      NetId n = freshNet("$equal", BasicKind::Boolean, e.loc);
      node.output = n;
      node.loc = e.loc;
      d_->netlist.net(n).uncondDrivers++;
      d_->netlist.addNode(std::move(node));
      RBit r;
      r.net = n;
      out.bits.push_back(r);
      return out;
    }
    // Bit-wise gate over m bits.
    for (size_t j = 0; j < m; ++j) {
      bool allConst = true;
      std::vector<Logic> cvals;
      for (const RVal& a : args) {
        if (!a.bits[j].isConst) allConst = false;
        else cvals.push_back(a.bits[j].cval);
      }
      if (allConst) {
        RBit r;
        r.isConst = true;
        r.cval = evalGate(gateOp, cvals);
        out.bits.push_back(r);
        continue;
      }
      Node node;
      node.op = gateOp;
      for (const RVal& a : args) node.inputs.push_back(rbitNet(a.bits[j]));
      NetId n = freshNet("$g", BasicKind::Boolean, e.loc);
      node.output = n;
      node.loc = e.loc;
      d_->netlist.net(n).uncondDrivers++;
      d_->netlist.addNode(std::move(node));
      RBit r;
      r.net = n;
      out.bits.push_back(r);
    }
    return out;
  }

  if (name == "plus" || name == "minus" || name == "ge" || name == "lt") {
    // Only when the user has not declared their own component of this name.
    if (!ctx.env->lookupType(name)) return synthArith(ctx, e);
  }

  // User-defined function component.
  if (const TypeBinding* tb = ctx.env->lookupType(name)) {
    (void)tb;
    std::vector<int64_t> targs;
    for (const ast::ExprPtr& a : e.typeArgs) {
      auto v = ceval_.evalNumber(*a, *ctx.env);
      if (!v) return std::nullopt;
      targs.push_back(*v);
    }
    const Type* fn = tt_.instantiateNamed(name, targs, *ctx.env, e.loc);
    if (!fn) return std::nullopt;
    if (!fn->isFunction()) {
      error(Diag::NotAFunctionComponent, e.loc,
            "'" + name + "' is not a function component type");
      return std::nullopt;
    }
    return callUserFunction(ctx, e, fn);
  }

  error(Diag::UnknownIdentifier, e.loc,
        "unknown function component '" + name + "'");
  return std::nullopt;
}

std::optional<RVal> Impl::synthArith(Ctx& ctx, const Expr& e) {
  // Predefined arithmetic helpers (the blackjack example lists plus, minus,
  // ge and lt as available): synthesised as ripple-carry gate networks so
  // the simulator core needs no numeric primitives.
  const std::string& name = e.name;
  if (e.elems.size() != 2) {
    error(Diag::WrongArgumentCount, e.loc, name + " takes two arguments");
    return std::nullopt;
  }
  auto a = evalRVal(ctx, *e.elems[0]);
  auto b = evalRVal(ctx, *e.elems[1]);
  if (!a || !b) return std::nullopt;
  if (a->bits.size() != b->bits.size() || a->bits.empty()) {
    error(Diag::WidthMismatch, e.loc,
          name + " operands must have the same non-zero width");
    return std::nullopt;
  }
  size_t n = a->bits.size();
  bool sub = name != "plus";  // minus/ge/lt use a + NOT b + 1
  NetId carry = constNet(sub ? Logic::One : Logic::Zero);
  RVal out;
  for (size_t j = 0; j < n; ++j) {
    NetId aj = rbitNet(a->bits[j]);
    NetId bj = rbitNet(b->bits[j]);
    if (sub) bj = gate1(NodeOp::Not, bj, e.loc);
    NetId axb = gate2(NodeOp::Xor, aj, bj, e.loc);
    NetId s = gate2(NodeOp::Xor, axb, carry, e.loc);
    NetId c1 = gate2(NodeOp::And, aj, bj, e.loc);
    NetId c2 = gate2(NodeOp::And, axb, carry, e.loc);
    carry = gate2(NodeOp::Or, c1, c2, e.loc);
    if (name == "plus" || name == "minus") {
      RBit r;
      r.net = s;
      out.bits.push_back(r);
    }
  }
  if (name == "ge") {
    RBit r;
    r.net = carry;  // no borrow: a >= b (unsigned)
    out.bits.push_back(r);
  } else if (name == "lt") {
    RBit r;
    r.net = gate1(NodeOp::Not, carry, e.loc);
    out.bits.push_back(r);
  }
  return out;
}

std::optional<RVal> Impl::callUserFunction(Ctx& ctx, const Expr& e,
                                           const Type* fnType) {
  if (e.elems.size() != fnType->fields.size()) {
    error(Diag::WrongArgumentCount, e.loc,
          "'" + e.name + "' expects " +
              std::to_string(fnType->fields.size()) + " argument(s), got " +
              std::to_string(e.elems.size()));
    return std::nullopt;
  }
  // Instantiate the function component inline.
  std::string key = "$" + e.name + std::to_string(callCounter_++);
  Member m;
  m.isFormal = false;
  m.loc = e.loc;
  Obj fo;
  fo.kind = ObjKind::Instance;
  fo.type = fnType;
  fo.instPath = ctx.inst->path + "." + key;
  m.obj = std::move(fo);
  auto [it, inserted] = ctx.inst->members.emplace(key, std::move(m));
  assert(inserted);
  Obj& obj = it->second.obj;
  materialise(obj, e.loc);
  if (!obj.inst) return std::nullopt;
  obj.inst->isFunctionCall = true;

  // Bind actuals.  The call hardware exists unconditionally even inside an
  // IF statement — only the use of the result is guarded (§3.2).
  NetId savedGuard = ctx.guard;
  ctx.guard = kNoNet;
  for (size_t fi = 0; fi < fnType->fields.size(); ++fi) {
    const Field& f = fnType->fields[fi];
    Member* fm = obj.inst->findMember(f.name);
    assert(fm);
    std::vector<LBit> formalBits;
    flattenObj(&fm->obj, f.mode, RoleCtx::Child, kNoNet, formalBits, e.loc);
    for (const LBit& b : formalBits)
      if (b.net != kNoNet) markTouched(b.net);
    switch (f.mode) {
      case ParamMode::In: {
        auto rv = evalRVal(ctx, *e.elems[fi]);
        if (!rv) break;
        if (!adaptR(*rv, formalBits.size(), e.loc)) break;
        for (size_t i = 0; i < formalBits.size(); ++i)
          assignBit(formalBits[i], rv->bits[i], kNoNet, e.loc);
        break;
      }
      case ParamMode::Out: {
        auto lv = evalLValExpr(ctx, *e.elems[fi]);
        if (!lv) break;
        if (!adaptL(*lv, formalBits.size(), e.loc)) break;
        for (size_t i = 0; i < formalBits.size(); ++i) {
          if ((*lv)[i].star) continue;
          RBit r;
          r.net = formalBits[i].net;
          assignBit((*lv)[i], r, kNoNet, e.loc);
        }
        break;
      }
      case ParamMode::InOut: {
        auto lv = evalLValExpr(ctx, *e.elems[fi]);
        if (!lv) break;
        if (!adaptL(*lv, formalBits.size(), e.loc)) break;
        for (size_t i = 0; i < formalBits.size(); ++i) {
          if ((*lv)[i].star) continue;
          aliasBit(formalBits[i], (*lv)[i], kNoNet, e.loc);
        }
        break;
      }
    }
  }
  ctx.guard = savedGuard;

  RVal out;
  for (NetId n : obj.inst->resultNets) {
    RBit b;
    b.net = n;
    out.bits.push_back(b);
  }
  return out;
}

// ===========================================================================
// Assignment machinery
// ===========================================================================

bool Impl::adaptR(RVal& v, size_t need, SourceLoc loc) {
  size_t flexAt = SIZE_MAX;
  size_t fixed = 0;
  for (size_t i = 0; i < v.bits.size(); ++i) {
    if (v.bits[i].flexible) {
      if (flexAt != SIZE_MAX) {
        error(Diag::WidthMismatch, loc,
              "at most one unbounded '*' per expression");
        return false;
      }
      flexAt = i;
    } else {
      ++fixed;
    }
  }
  if (flexAt == SIZE_MAX) {
    if (fixed != need) {
      error(Diag::WidthMismatch, loc,
            "expression has " + std::to_string(fixed) +
                " basic substructures, expected " + std::to_string(need));
      return false;
    }
    return true;
  }
  if (fixed > need) {
    error(Diag::WidthMismatch, loc,
          "expression too wide: " + std::to_string(fixed) + " > " +
              std::to_string(need));
    return false;
  }
  std::vector<RBit> expanded;
  expanded.reserve(need);
  for (size_t i = 0; i < v.bits.size(); ++i) {
    if (i == flexAt) {
      RBit star;
      star.empty = true;
      for (size_t k = 0; k < need - fixed; ++k) expanded.push_back(star);
    } else {
      expanded.push_back(v.bits[i]);
    }
  }
  v.bits = std::move(expanded);
  return true;
}

bool Impl::adaptL(std::vector<LBit>& v, size_t need, SourceLoc loc) {
  size_t flexAt = SIZE_MAX;
  size_t fixed = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i].flexible) {
      if (flexAt != SIZE_MAX) {
        error(Diag::WidthMismatch, loc,
              "at most one unbounded '*' per signal expression");
        return false;
      }
      flexAt = i;
    } else {
      ++fixed;
    }
  }
  if (flexAt == SIZE_MAX) {
    if (fixed != need) {
      error(Diag::WidthMismatch, loc,
            "signal expression has " + std::to_string(fixed) +
                " basic substructures, expected " + std::to_string(need));
      return false;
    }
    return true;
  }
  if (fixed > need) {
    error(Diag::WidthMismatch, loc, "signal expression too wide");
    return false;
  }
  std::vector<LBit> expanded;
  expanded.reserve(need);
  for (size_t i = 0; i < v.size(); ++i) {
    if (i == flexAt) {
      LBit star;
      star.star = true;
      for (size_t k = 0; k < need - fixed; ++k) expanded.push_back(star);
    } else {
      expanded.push_back(v[i]);
    }
  }
  v = std::move(expanded);
  return true;
}

void Impl::assignBit(const LBit& l, const RBit& r, NetId stmtGuard,
                     SourceLoc loc) {
  if (l.star) {
    return;  // "x := *": empty assignment
  }
  if (l.ctx == RoleCtx::Child && l.net != kNoNet) markTouched(l.net);
  if (r.empty) {
    return;  // rhs "*": empty assignment; net left undriven reads UNDEF
  }
  if (l.ctx == RoleCtx::Builtin) {
    error(Diag::AssignToInParameter, loc,
          "cannot assign to the predefined signal");
    return;
  }
  if (l.ctx == RoleCtx::Formal && l.mode == ParamMode::In) {
    error(Diag::AssignToInParameter, loc,
          "no assignment is allowed to a formal IN parameter");
    return;
  }
  if (l.ctx == RoleCtx::Child && l.mode == ParamMode::Out) {
    error(Diag::AssignToOutOfInstance, loc,
          "no assignment is allowed to an OUT parameter of an instantiated "
          "component");
    return;
  }

  NetId guard = andGuard(stmtGuard, l.guard, loc);
  NetId root = d_->netlist.find(l.net);
  Net& rn = d_->netlist.net(root);

  if (guard == kNoNet) {
    Logic constVal = (l.kind == BasicKind::Boolean && r.cval == Logic::NoInfl)
                         ? Logic::Undef
                         : r.cval;
    if (rn.uncondDrivers > 0) {
      // "It is allowed to specify connections several times as long as
      // they are identical" (§4.3): a second, identical unconditional
      // driver is dropped silently.
      for (NodeId di : d_->netlist.driversOf(root)) {
        const Node& dn = d_->netlist.node(di);
        if (r.isConst && dn.op == NodeOp::Const && dn.constVal == constVal)
          return;
        if (!r.isConst && dn.op == NodeOp::Buf &&
            d_->netlist.find(dn.inputs[0]) == d_->netlist.find(r.net))
          return;
      }
      error(Diag::MultipleUnconditionalAssignment, loc,
            "signal '" + d_->netlist.net(l.net).name +
                "' is unconditionally assigned more than once");
      return;
    }
    if (rn.condDrivers > 0) {
      error(Diag::ConditionalAndUnconditionalAssignment, loc,
            "signal '" + d_->netlist.net(l.net).name +
                "' is assigned both conditionally and unconditionally");
      return;
    }
    if (rn.aliasTarget && l.kind == BasicKind::Boolean) {
      error(Diag::AliasBooleanNotException, loc,
            "a boolean signal assigned with '==' may not also be "
            "unconditionally assigned with ':='");
      return;
    }
    // The table-(1) mux:=mux prohibition concerns *user* signals; nets
    // synthesised for expression results (NUM multiplexers) are exempt.
    if (l.kind == BasicKind::Multiplex && !r.isConst && r.net != kNoNet &&
        d_->netlist.net(d_->netlist.find(r.net)).kind ==
            BasicKind::Multiplex &&
        !d_->netlist.net(r.net).synthetic) {
      error(Diag::MultiplexToMultiplexAssign, loc,
            "unconditional ':=' between two multiplex signals is illegal; "
            "use '==' instead");
      return;
    }
    Node n;
    n.loc = loc;
    n.output = l.net;
    if (r.isConst) {
      n.op = NodeOp::Const;
      // x := NOINFL on a boolean is replaced by x := UNDEF (§4.1).
      n.constVal = (l.kind == BasicKind::Boolean && r.cval == Logic::NoInfl)
                       ? Logic::Undef
                       : r.cval;
    } else {
      n.op = NodeOp::Buf;
      n.inputs = {r.net};
    }
    d_->netlist.addNode(std::move(n));
    rn.uncondDrivers++;
    logAssign(root);
    return;
  }

  // Conditional assignment.
  if (rn.uncondDrivers > 0) {
    error(Diag::ConditionalAndUnconditionalAssignment, loc,
          "signal '" + d_->netlist.net(l.net).name +
              "' is assigned both conditionally and unconditionally");
    return;
  }
  if (l.kind == BasicKind::Boolean && !rn.allowCond) {
    error(Diag::ConditionalAssignToBoolean, loc,
          "conditional assignment to boolean signal '" +
              d_->netlist.net(l.net).name +
              "' (only multiplex signals, IN parameters of instantiated "
              "components and formal OUT parameters may be assigned "
              "conditionally)");
    return;
  }
  // constNet may add a net and reallocate the nets vector, invalidating
  // rn — resolve it before touching the reference again.
  NetId value = r.isConst ? constNet(r.cval) : r.net;
  Node n;
  n.loc = loc;
  n.op = NodeOp::Switch;
  n.inputs = {guard, value};
  n.output = l.net;
  d_->netlist.addNode(std::move(n));
  d_->netlist.net(root).condDrivers++;
  logAssign(root);
}

void Impl::aliasBit(const LBit& a, const LBit& b, NetId guard,
                    SourceLoc loc) {
  if (a.star || b.star) return;
  if (guard != kNoNet || a.guard != kNoNet || b.guard != kNoNet) {
    error(Diag::AliasInsideConditional, loc,
          "aliasing ('==') cannot be done conditionally");
    return;
  }
  auto isException = [](const LBit& x) {
    return (x.ctx == RoleCtx::Child && x.mode == ParamMode::In) ||
           (x.ctx == RoleCtx::Formal && x.mode == ParamMode::Out);
  };
  if (a.kind == BasicKind::Boolean && b.kind == BasicKind::Boolean) {
    error(Diag::AliasOfBooleans, loc,
          "'==' between two boolean signals is illegal (it could connect "
          "power to ground)");
    return;
  }
  for (const LBit* x : {&a, &b}) {
    if (x->kind == BasicKind::Boolean && !isException(*x)) {
      error(Diag::AliasBooleanNotException, loc,
            "a boolean signal may only be aliased if it is an IN parameter "
            "of an instantiated component or a formal OUT parameter");
      return;
    }
    if (x->ctx == RoleCtx::Formal && x->mode == ParamMode::In) {
      error(Diag::AssignToInParameter, loc,
            "a formal IN parameter cannot be aliased inside its component");
      return;
    }
    if (x->ctx == RoleCtx::Builtin) {
      error(Diag::AssignToInParameter, loc,
            "cannot alias the predefined signal");
      return;
    }
  }
  if (a.ctx == RoleCtx::Child && a.net != kNoNet) markTouched(a.net);
  if (b.ctx == RoleCtx::Child && b.net != kNoNet) markTouched(b.net);
  d_->netlist.unite(a.net, b.net);
}

// ===========================================================================
// Netlist helpers
// ===========================================================================

NetId Impl::constNet(Logic v) {
  NetId& slot = constNets_[static_cast<int>(v)];
  if (slot == kNoNet) {
    slot = d_->netlist.addNet(std::string("$const") +
                                  std::string(logicName(v)),
                              v == Logic::NoInfl ? BasicKind::Multiplex
                                                 : BasicKind::Boolean,
                              {});
    Node n;
    n.op = NodeOp::Const;
    n.constVal = v;
    n.output = slot;
    d_->netlist.net(slot).uncondDrivers++;
    d_->netlist.addNode(std::move(n));
  }
  return slot;
}

NetId Impl::rbitNet(const RBit& b) {
  if (b.isConst) return constNet(b.cval);
  if (b.empty) return constNet(Logic::Undef);
  return b.net;
}

NetId Impl::freshNet(const char* tag, BasicKind kind, SourceLoc loc) {
  NetId n = d_->netlist.addNet(
      std::string(tag) + std::to_string(d_->netlist.netCount()), kind, loc);
  d_->netlist.net(n).synthetic = true;
  return n;
}

NetId Impl::gate1(NodeOp op, NetId a, SourceLoc loc) {
  NetId out = freshNet("$g", BasicKind::Boolean, loc);
  Node n;
  n.op = op;
  n.inputs = {a};
  n.output = out;
  n.loc = loc;
  d_->netlist.net(out).uncondDrivers++;
  d_->netlist.addNode(std::move(n));
  return out;
}

NetId Impl::gate2(NodeOp op, NetId a, NetId b, SourceLoc loc) {
  NetId out = freshNet("$g", BasicKind::Boolean, loc);
  Node n;
  n.op = op;
  n.inputs = {a, b};
  n.output = out;
  n.loc = loc;
  d_->netlist.net(out).uncondDrivers++;
  d_->netlist.addNode(std::move(n));
  return out;
}

NetId Impl::andGuard(NetId a, NetId b, SourceLoc loc) {
  if (a == kNoNet) return b;
  if (b == kNoNet) return a;
  return gate2(NodeOp::And, a, b, loc);
}

NetId Impl::equalConst(const std::vector<NetId>& addr, int64_t value,
                       SourceLoc loc) {
  Node n;
  n.op = NodeOp::Equal;
  for (NetId a : addr) n.inputs.push_back(a);
  for (size_t i = 0; i < addr.size(); ++i) {
    n.inputs.push_back(constNet(logicFromBool((value >> i) & 1)));
  }
  NetId out = freshNet("$addr", BasicKind::Boolean, loc);
  n.output = out;
  n.loc = loc;
  d_->netlist.net(out).uncondDrivers++;
  d_->netlist.addNode(std::move(n));
  return out;
}

// ===========================================================================
// Post passes & driver
// ===========================================================================

void Impl::checkUnusedPorts(const InstanceData& inst) {
  // §4.1: unused ports of relevant (not completely disconnected)
  // components have to be closed explicitly.
  for (const auto& [name, m] : inst.members) {
    // Recurse into child instances.
    std::vector<const Obj*> stack{&m.obj};
    while (!stack.empty()) {
      const Obj* o = stack.back();
      stack.pop_back();
      if (o->kind == ObjKind::Array || o->kind == ObjKind::Record) {
        for (const Obj& e : o->elems) stack.push_back(&e);
      } else if (o->kind == ObjKind::Instance && o->inst) {
        checkUnusedPorts(*o->inst);
        if (o->inst->isFunctionCall) continue;
        // Gather pin nets.
        std::vector<std::pair<std::string, NetId>> pins;
        for (const auto& [fname, fm] : o->inst->members) {
          if (!fm.isFormal) continue;
          // flatten wires only (sub-instances check themselves)
          std::vector<std::pair<const Obj*, std::string>> work{
              {&fm.obj, fname}};
          while (!work.empty()) {
            auto [po, pp] = work.back();
            work.pop_back();
            if (po->kind == ObjKind::Wire) {
              pins.emplace_back(pp, po->net);
            } else if (po->kind == ObjKind::Array ||
                       po->kind == ObjKind::Record) {
              for (size_t i = 0; i < po->elems.size(); ++i)
                work.push_back({&po->elems[i], pp + "[" +
                                                   std::to_string(i) + "]"});
            }
          }
        }
        size_t touched = 0;
        for (const auto& [pp, netid] : pins) {
          if (d_->netlist.net(netid).touchedByParent) ++touched;
        }
        if (touched > 0 && touched < pins.size()) {
          for (const auto& [pp, netid] : pins) {
            if (!d_->netlist.net(netid).touchedByParent) {
              diags_.report(
                  Diag::UnusedPort,
                  opts_.strictUnusedPorts ? Severity::Error
                                          : Severity::Warning,
                  o->inst->loc,
                  "port '" + pp + "' of component '" + o->inst->path +
                      "' is neither used nor closed with '*'");
            }
          }
        }
      }
    }
  }
}

std::unique_ptr<Design> Impl::run(const ast::Program& program, Env& rootEnv,
                                  const std::string& topName) {
  const size_t errorsBefore = diags_.errorCount();
  d_ = std::make_unique<Design>();
  d_->topName = topName;

  d_->clk = d_->netlist.addNet("CLK", BasicKind::Boolean, {});
  d_->rset = d_->netlist.addNet("RSET", BasicKind::Boolean, {});
  d_->netlist.net(d_->clk).isPrimaryInput = true;
  d_->netlist.net(d_->rset).isPrimaryInput = true;
  clkObj_.kind = ObjKind::Wire;
  clkObj_.type = tt_.boolean();
  clkObj_.net = d_->clk;
  rsetObj_.kind = ObjKind::Wire;
  rsetObj_.type = tt_.boolean();
  rsetObj_.net = d_->rset;

  // Find the top-level SIGNAL declaration.
  const ast::Decl* topDecl = nullptr;
  for (const ast::DeclPtr& dp : program.decls) {
    if (dp->kind != ast::DeclKind::Signal) continue;
    for (const std::string& n : dp->names) {
      if (n == topName) topDecl = dp.get();
    }
  }
  if (!topDecl) {
    error(Diag::UnknownIdentifier, {},
          "no top-level SIGNAL declaration named '" + topName + "'");
    return nullptr;
  }
  const Type* topType = tt_.resolve(*topDecl->type, rootEnv);
  if (!topType) return nullptr;
  if (topType->kind != Type::Kind::Component ||
      (!topType->hasBody && topType->builtin == BuiltinComponent::None)) {
    error(Diag::NotAComponentType, topDecl->loc,
          "top signal '" + topName +
              "' must be an instance of a component type with a body");
    return nullptr;
  }

  d_->topObj = makeObj(topType, topName, false, topDecl->loc);
  materialise(d_->topObj, topDecl->loc);
  if (!d_->topObj.inst) {
    noteUsage();  // report what a failed elaboration consumed
    return nullptr;
  }
  d_->top = d_->topObj.inst.get();

  // Primary ports.
  for (const Field& f : topType->fields) {
    Member* m = d_->top->findMember(f.name);
    if (!m) continue;
    Port port;
    port.name = f.name;
    port.mode = f.mode;
    std::vector<LBit> bits;
    flattenObj(&m->obj, f.mode, RoleCtx::Child, kNoNet, bits, topDecl->loc);
    for (const LBit& b : bits) {
      port.nets.push_back(b.net);
      port.kinds.push_back(b.kind);
      port.modes.push_back(b.mode);
      Net& net = d_->netlist.net(b.net);
      net.touchedByParent = true;  // the simulation is the parent
      if (b.mode == ParamMode::In) net.isPrimaryInput = true;
      else if (b.mode == ParamMode::Out) net.isPrimaryOutput = true;
      else {
        net.isPrimaryInput = true;
        net.isPrimaryOutput = true;
      }
    }
    d_->ports.push_back(std::move(port));
  }

  checkUnusedPorts(*d_->top);
  d_->netlist.canonicalise();
  noteUsage();

  if (diags_.errorCount() > errorsBefore) return nullptr;
  return std::move(d_);
}

}  // namespace elab_detail

Elaborator::Elaborator(DiagnosticEngine& diags, TypeTable& types,
                       Options options)
    : diags_(diags), types_(types), options_(options) {}

std::unique_ptr<Design> Elaborator::elaborate(const ast::Program& program,
                                              Env& rootEnv,
                                              const std::string& topName) {
  elab_detail::Impl impl(diags_, types_, options_);
  return impl.run(program, rootEnv, topName);
}

}  // namespace zeus

#include "src/parser/parser.h"

#include <cassert>

#include "src/support/trace.h"

namespace zeus {

using namespace ast;

namespace {

/// Binary operator precedence (§3.1): relations < (+ - OR) < (* DIV MOD AND).
int binPrecedence(Tok t) {
  switch (t) {
    case Tok::Equal:
    case Tok::NotEqual:
    case Tok::Less:
    case Tok::LessEq:
    case Tok::Greater:
    case Tok::GreaterEq:
      return 1;
    case Tok::Plus:
    case Tok::Minus:
    case Tok::KwOR:
      return 2;
    case Tok::Star:
    case Tok::KwDIV:
    case Tok::KwMOD:
    case Tok::KwAND:
      return 3;
    default:
      return -1;
  }
}

BinOp binOpFor(Tok t) {
  switch (t) {
    case Tok::Equal: return BinOp::Eq;
    case Tok::NotEqual: return BinOp::Ne;
    case Tok::Less: return BinOp::Lt;
    case Tok::LessEq: return BinOp::Le;
    case Tok::Greater: return BinOp::Gt;
    case Tok::GreaterEq: return BinOp::Ge;
    case Tok::Plus: return BinOp::Add;
    case Tok::Minus: return BinOp::Sub;
    case Tok::KwOR: return BinOp::Or;
    case Tok::Star: return BinOp::Mul;
    case Tok::KwDIV: return BinOp::Div;
    case Tok::KwMOD: return BinOp::Mod;
    case Tok::KwAND: return BinOp::And;
    default: assert(false); return BinOp::Add;
  }
}

bool startsStatement(Tok t) {
  switch (t) {
    case Tok::Ident:
    case Tok::Star:
    case Tok::KwIF:
    case Tok::KwFOR:
    case Tok::KwWHEN:
    case Tok::KwRESULT:
    case Tok::KwSEQUENTIAL:
    case Tok::KwPARALLEL:
    case Tok::KwWITH:
    case Tok::KwCLK:
    case Tok::KwRSET:
      return true;
    default:
      return false;
  }
}

bool endsStatementSequence(Tok t) {
  switch (t) {
    case Tok::KwEND:
    case Tok::KwELSE:
    case Tok::KwELSIF:
    case Tok::KwOTHERWISE:
    case Tok::KwOTHERWISEWHEN:
    case Tok::Eof:
      return true;
    default:
      return false;
  }
}

}  // namespace

Parser::Parser(BufferId buffer, DiagnosticEngine& diags, Limits limits,
               ResourceUsage* usage)
    : diags_(diags), limits_(limits), usage_(usage) {
  ZEUS_TRACE_SPAN("lex", "compile");
  Lexer lex(buffer, diags, limits, usage);
  tokens_ = lex.tokenize();
  errorsAtStart_ = diags_.errorCount();
}

void Parser::error(Diag code, SourceLoc loc, std::string msg) {
  if (tooManyErrors_) return;
  if (limits_.maxParseErrors > 0 &&
      diags_.errorCount() >= errorsAtStart_ + limits_.maxParseErrors) {
    tooManyErrors_ = true;
    diags_.error(Diag::TooManyErrors, loc,
                 "more than " + std::to_string(limits_.maxParseErrors) +
                     " syntax errors; giving up on this buffer");
    pos_ = tokens_.empty() ? 0 : tokens_.size() - 1;  // jump to Eof
    return;
  }
  diags_.error(code, loc, std::move(msg));
  if (usage_) ++usage_->parseErrors;
}

bool Parser::enterDepth(SourceLoc loc) {
  ++depth_;
  if (usage_) usage_->notePeak(usage_->parseDepthPeak, depth_);
  if (depth_ <= limits_.maxParseDepth) return true;
  if (!depthBreached_) {
    depthBreached_ = true;
    error(Diag::NestingTooDeep, loc,
          "nesting deeper than " + std::to_string(limits_.maxParseDepth) +
              " levels; is the input adversarial?");
  }
  return false;
}

void Parser::syncDecl() {
  skipTo({Tok::Semicolon, Tok::KwCONST, Tok::KwTYPE, Tok::KwSIGNAL});
  accept(Tok::Semicolon);
}

Token Parser::advance() {
  Token t = cur();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::accept(Tok k) {
  if (check(k)) {
    advance();
    return true;
  }
  return false;
}

bool Parser::expect(Tok k, const char* context) {
  if (accept(k)) return true;
  error(Diag::ExpectedToken, cur().loc,
               std::string("expected '") + std::string(tokName(k)) + "' " +
                   context + ", found '" + std::string(tokName(cur().kind)) +
                   "'");
  return false;
}

void Parser::skipTo(std::initializer_list<Tok> sync) {
  while (!check(Tok::Eof)) {
    for (Tok t : sync)
      if (check(t)) return;
    advance();
  }
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

ast::Program Parser::parseProgram() {
  ZEUS_TRACE_SPAN("parse", "compile");
  Program p;
  while (!check(Tok::Eof)) {
    size_t before = pos_;
    parseDeclarationBlock(p.decls);
    if (pos_ == before) {
      error(Diag::ExpectedDeclaration, cur().loc,
                   "expected CONST, TYPE or SIGNAL declaration");
      skipTo({Tok::KwCONST, Tok::KwTYPE, Tok::KwSIGNAL});
      if (pos_ == before) break;
    }
  }
  return p;
}

void Parser::parseDeclarationBlock(std::vector<DeclPtr>& out) {
  for (;;) {
    if (check(Tok::KwCONST)) {
      parseConstBlock(out);
    } else if (check(Tok::KwTYPE)) {
      parseTypeBlock(out);
    } else if (check(Tok::KwSIGNAL)) {
      parseSignalBlock(out);
    } else {
      return;
    }
  }
}

void Parser::parseConstBlock(std::vector<DeclPtr>& out) {
  expect(Tok::KwCONST, "to start constant declarations");
  while (check(Tok::Ident)) {
    auto d = std::make_unique<Decl>(DeclKind::Const, cur().loc);
    d->name = std::string(advance().text);
    expect(Tok::Equal, "in constant declaration");
    d->constValue = parseExpr();
    if (!expect(Tok::Semicolon, "after constant declaration")) syncDecl();
    out.push_back(std::move(d));
  }
}

void Parser::parseTypeBlock(std::vector<DeclPtr>& out) {
  expect(Tok::KwTYPE, "to start type declarations");
  while (check(Tok::Ident)) {
    auto d = std::make_unique<Decl>(DeclKind::Type, cur().loc);
    d->name = std::string(advance().text);
    if (accept(Tok::LParen)) {
      d->typeFormals = parseIdList();
      expect(Tok::RParen, "after type formal parameters");
    }
    expect(Tok::Equal, "in type declaration");
    d->type = parseTypeExpr();
    if (!expect(Tok::Semicolon, "after type declaration")) syncDecl();
    out.push_back(std::move(d));
  }
}

void Parser::parseSignalBlock(std::vector<DeclPtr>& out) {
  expect(Tok::KwSIGNAL, "to start signal declarations");
  while (check(Tok::Ident)) {
    auto d = std::make_unique<Decl>(DeclKind::Signal, cur().loc);
    d->names = parseIdList();
    expect(Tok::Colon, "in signal declaration");
    d->type = parseTypeExpr();
    if (!expect(Tok::Semicolon, "after signal declaration")) syncDecl();
    out.push_back(std::move(d));
  }
}

std::vector<std::string> Parser::parseIdList() {
  std::vector<std::string> names;
  do {
    if (!check(Tok::Ident)) {
      error(Diag::ExpectedToken, cur().loc, "expected identifier");
      break;
    }
    names.emplace_back(advance().text);
  } while (accept(Tok::Comma));
  return names;
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

ast::TypeExprPtr Parser::parseType() { return parseTypeExpr(); }

ast::TypeExprPtr Parser::parseTypeExpr() {
  SourceLoc loc = cur().loc;
  if (!enterDepth(loc)) {
    advance();  // guarantee progress while unwinding
    auto t = std::make_unique<TypeExpr>(TypeExprKind::Named, loc);
    t->name = "<error>";
    return t;
  }
  TypeExprPtr t = parseTypeExprInner();
  leaveDepth();
  return t;
}

ast::TypeExprPtr Parser::parseTypeExprInner() {
  SourceLoc loc = cur().loc;
  if (check(Tok::KwCOMPONENT)) return parseComponentType();
  if (accept(Tok::KwARRAY)) {
    expect(Tok::LBracket, "after ARRAY");
    // Multi-dimension sugar: ARRAY [a..b, c..d] OF t nests arrays.
    struct Range {
      ExprPtr lo, hi;
    };
    std::vector<Range> ranges;
    do {
      Range r;
      r.lo = parseExpr();
      expect(Tok::Range, "in array bounds");
      r.hi = parseExpr();
      ranges.push_back(std::move(r));
    } while (accept(Tok::Comma));
    expect(Tok::RBracket, "after array bounds");
    expect(Tok::KwOF, "in array type");
    TypeExprPtr elem = parseTypeExpr();
    for (size_t i = ranges.size(); i-- > 0;) {
      auto arr = std::make_unique<TypeExpr>(TypeExprKind::Array, loc);
      arr->lo = std::move(ranges[i].lo);
      arr->hi = std::move(ranges[i].hi);
      arr->elem = std::move(elem);
      elem = std::move(arr);
    }
    return elem;
  }
  if (check(Tok::Ident)) {
    auto t = std::make_unique<TypeExpr>(TypeExprKind::Named, loc);
    t->name = std::string(advance().text);
    if (accept(Tok::LParen)) {
      if (!check(Tok::RParen)) {
        do {
          t->args.push_back(parseExpr());
        } while (accept(Tok::Comma));
      }
      expect(Tok::RParen, "after type actual parameters");
    }
    return t;
  }
  error(Diag::ExpectedType, loc, "expected a type");
  // Return a placeholder so callers can continue.
  auto t = std::make_unique<TypeExpr>(TypeExprKind::Named, loc);
  t->name = "<error>";
  return t;
}

void Parser::parseFParams(std::vector<FParam>& out) {
  if (check(Tok::RParen)) return;  // empty parameter list
  do {
    FParam p;
    p.loc = cur().loc;
    if (accept(Tok::KwIN)) {
      p.mode = ParamMode::In;
    } else if (accept(Tok::KwOUT)) {
      p.mode = ParamMode::Out;
    } else {
      p.mode = ParamMode::InOut;
    }
    p.names = parseIdList();
    expect(Tok::Colon, "in formal parameter list");
    p.type = parseTypeExpr();
    out.push_back(std::move(p));
  } while (accept(Tok::Semicolon));
}

ast::TypeExprPtr Parser::parseComponentType() {
  SourceLoc loc = cur().loc;
  expect(Tok::KwCOMPONENT, "to start component type");
  auto t = std::make_unique<TypeExpr>(TypeExprKind::Component, loc);
  expect(Tok::LParen, "after COMPONENT");
  parseFParams(t->params);
  expect(Tok::RParen, "after formal parameters");

  if (check(Tok::LBrace)) t->headerLayout = parseLayoutBlock();

  if (accept(Tok::Colon)) t->resultType = parseTypeExpr();

  if (accept(Tok::KwIS)) {
    t->hasBody = true;
    if (accept(Tok::KwUSES)) {
      t->hasUses = true;
      if (!check(Tok::Semicolon)) t->uses = parseIdList();
      expect(Tok::Semicolon, "after USES list");
    }
    parseDeclarationBlock(t->decls);
    if (check(Tok::LBrace)) t->bodyLayout = parseLayoutBlock();
    expect(Tok::KwBEGIN, "to start component body");
    t->body = parseStatementSequence();
    expect(Tok::KwEND, "to close component body");
  }
  return t;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

ast::StmtPtr Parser::parseStatement() { return parseOneStatement(); }

std::vector<ast::StmtPtr> Parser::parseStatementSequence() {
  std::vector<StmtPtr> out;
  for (;;) {
    while (accept(Tok::Semicolon)) {
    }
    if (endsStatementSequence(cur().kind)) break;
    if (!startsStatement(cur().kind)) {
      error(Diag::ExpectedStatement, cur().loc,
                   "expected a statement, found '" +
                       std::string(tokName(cur().kind)) + "'");
      skipTo({Tok::Semicolon, Tok::KwEND, Tok::KwELSE, Tok::KwELSIF,
              Tok::KwOTHERWISE, Tok::KwOTHERWISEWHEN});
      if (!accept(Tok::Semicolon)) break;
      continue;
    }
    out.push_back(parseOneStatement());
    if (!accept(Tok::Semicolon)) break;
  }
  return out;
}

ast::StmtPtr Parser::parseOneStatement() {
  SourceLoc loc = cur().loc;
  if (!enterDepth(loc)) {
    advance();
    return std::make_unique<Stmt>(StmtKind::Empty, loc);
  }
  StmtPtr s = parseOneStatementInner();
  leaveDepth();
  return s;
}

ast::StmtPtr Parser::parseOneStatementInner() {
  SourceLoc loc = cur().loc;
  switch (cur().kind) {
    case Tok::KwIF: return parseIf();
    case Tok::KwFOR: return parseReplication();
    case Tok::KwWHEN: return parseCondGeneration();
    case Tok::KwWITH: return parseWith();
    case Tok::KwSEQUENTIAL: return parseSeqOrPar(/*sequential=*/true);
    case Tok::KwPARALLEL: return parseSeqOrPar(/*sequential=*/false);
    case Tok::KwRESULT: {
      advance();
      auto s = std::make_unique<Stmt>(StmtKind::Result, loc);
      s->value = parseExpr();
      return s;
    }
    default:
      break;
  }

  // Assignment, aliasing or connection: all begin with a signal.
  ExprPtr sig = parseSignalPath();
  if (accept(Tok::Assign)) {
    auto s = std::make_unique<Stmt>(StmtKind::Assign, loc);
    s->lhs = std::move(sig);
    s->rhs = parseExpr();
    return s;
  }
  if (accept(Tok::Alias)) {
    auto s = std::make_unique<Stmt>(StmtKind::Assign, loc);
    s->isAlias = true;
    s->lhs = std::move(sig);
    s->rhs = parseExpr();
    return s;
  }
  if (check(Tok::LParen)) {
    auto s = std::make_unique<Stmt>(StmtKind::Connection, loc);
    s->target = std::move(sig);
    s->actuals = parseExpr();  // the parenthesised actual list
    return s;
  }
  error(Diag::UnexpectedToken, cur().loc,
               "expected ':=', '==' or a connection after signal");
  auto s = std::make_unique<Stmt>(StmtKind::Empty, loc);
  return s;
}

ast::StmtPtr Parser::parseIf() {
  SourceLoc loc = cur().loc;
  expect(Tok::KwIF, "");
  auto s = std::make_unique<Stmt>(StmtKind::If, loc);
  for (;;) {
    StmtArm arm;
    arm.cond = parseExpr();
    expect(Tok::KwTHEN, "after IF condition");
    arm.body = parseStatementSequence();
    s->arms.push_back(std::move(arm));
    if (accept(Tok::KwELSIF)) continue;
    break;
  }
  if (accept(Tok::KwELSE)) s->elseBody = parseStatementSequence();
  expect(Tok::KwEND, "to close IF statement");
  return s;
}

ast::StmtPtr Parser::parseReplication() {
  SourceLoc loc = cur().loc;
  expect(Tok::KwFOR, "");
  auto s = std::make_unique<Stmt>(StmtKind::Replication, loc);
  if (check(Tok::Ident)) s->loopVar = std::string(advance().text);
  else error(Diag::ExpectedToken, cur().loc, "expected loop variable");
  expect(Tok::Assign, "after FOR variable");
  s->from = parseExpr();
  if (accept(Tok::KwDOWNTO)) {
    s->downto = true;
  } else {
    expect(Tok::KwTO, "in FOR statement");
  }
  s->to = parseExpr();
  expect(Tok::KwDO, "in FOR statement");
  s->sequentially = accept(Tok::KwSEQUENTIALLY);
  s->body = parseStatementSequence();
  expect(Tok::KwEND, "to close FOR statement");
  return s;
}

ast::StmtPtr Parser::parseCondGeneration() {
  SourceLoc loc = cur().loc;
  expect(Tok::KwWHEN, "");
  auto s = std::make_unique<Stmt>(StmtKind::CondGen, loc);
  for (;;) {
    StmtArm arm;
    arm.cond = parseExpr();
    expect(Tok::KwTHEN, "after WHEN condition");
    arm.body = parseStatementSequence();
    s->arms.push_back(std::move(arm));
    if (accept(Tok::KwOTHERWISEWHEN)) continue;
    break;
  }
  if (accept(Tok::KwOTHERWISE)) s->elseBody = parseStatementSequence();
  expect(Tok::KwEND, "to close WHEN statement");
  return s;
}

ast::StmtPtr Parser::parseWith() {
  SourceLoc loc = cur().loc;
  expect(Tok::KwWITH, "");
  auto s = std::make_unique<Stmt>(StmtKind::With, loc);
  s->withSignal = parseSignalPath();
  expect(Tok::KwDO, "after WITH signal");
  s->body = parseStatementSequence();
  expect(Tok::KwEND, "to close WITH statement");
  return s;
}

ast::StmtPtr Parser::parseSeqOrPar(bool sequential) {
  SourceLoc loc = cur().loc;
  advance();  // SEQUENTIAL or PARALLEL
  auto s = std::make_unique<Stmt>(
      sequential ? StmtKind::Sequential : StmtKind::Parallel, loc);
  s->body = parseStatementSequence();
  expect(Tok::KwEND, "to close statement");
  return s;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ast::ExprPtr Parser::parseExpression() { return parseExpr(); }

ast::ExprPtr Parser::parseExpr(int minPrec) {
  ExprPtr lhs = parsePrimary();
  for (;;) {
    int prec = binPrecedence(cur().kind);
    if (prec < 0 || prec < minPrec) break;
    Tok op = advance().kind;
    ExprPtr rhs = parseExpr(prec + 1);
    auto bin = std::make_unique<Expr>(ExprKind::Binary, lhs->loc);
    bin->binOp = binOpFor(op);
    bin->lhs = std::move(lhs);
    bin->rhs = std::move(rhs);
    lhs = std::move(bin);
  }
  return lhs;
}

ast::ExprPtr Parser::parsePrimary() {
  SourceLoc loc = cur().loc;
  if (!enterDepth(loc)) {
    advance();
    return makeNumber(0, loc);
  }
  ExprPtr e = parsePrimaryInner();
  leaveDepth();
  return e;
}

ast::ExprPtr Parser::parsePrimaryInner() {
  SourceLoc loc = cur().loc;
  switch (cur().kind) {
    case Tok::Number: {
      Token t = advance();
      return makeNumber(t.number, loc);
    }
    case Tok::Plus:
    case Tok::Minus:
    case Tok::KwNOT: {
      Tok op = advance().kind;
      auto e = std::make_unique<Expr>(ExprKind::Unary, loc);
      e->unOp = op == Tok::Plus    ? UnOp::Plus
                : op == Tok::Minus ? UnOp::Minus
                                   : UnOp::Not;
      // NOT binds a single factor, not a whole expression.
      e->base = parsePrimary();
      return parsePostfix(std::move(e));
    }
    case Tok::Star: {
      advance();
      auto e = std::make_unique<Expr>(ExprKind::Star, loc);
      if (accept(Tok::Colon)) e->base = parseExpr(3);
      return e;
    }
    case Tok::LParen: {
      advance();
      auto tuple = std::make_unique<Expr>(ExprKind::Tuple, loc);
      if (!check(Tok::RParen)) {
        do {
          tuple->elems.push_back(parseExpr());
        } while (accept(Tok::Comma));
      }
      expect(Tok::RParen, "to close parenthesised expression");
      // A one-element tuple is just parenthesisation (§4.7: "the parenthesis
      // structure within the n signal expressions is unimportant").
      if (tuple->elems.size() == 1) {
        ExprPtr inner = std::move(tuple->elems[0]);
        return parsePostfix(std::move(inner));
      }
      // Tuples can be indexed too: ((0,0),(0,1))[i] in constant context.
      return parsePostfix(std::move(tuple));
    }
    case Tok::KwBIN: {
      advance();
      auto call = std::make_unique<Expr>(ExprKind::Call, loc);
      call->name = "BIN";
      expect(Tok::LParen, "after BIN");
      call->elems.push_back(parseExpr());
      expect(Tok::Comma, "between BIN arguments");
      call->elems.push_back(parseExpr());
      expect(Tok::RParen, "after BIN arguments");
      return call;
    }
    case Tok::KwCLK:
      advance();
      return makeNameRef("CLK", loc);
    case Tok::KwRSET:
      advance();
      return makeNameRef("RSET", loc);
    case Tok::KwAND:
    case Tok::KwOR: {
      // Predefined AND/OR used as a function call: AND(a,b,...)
      std::string name(tokName(cur().kind));
      advance();
      auto call = std::make_unique<Expr>(ExprKind::Call, loc);
      call->name = name;
      expect(Tok::LParen, "in predefined function call");
      if (!check(Tok::RParen)) {
        do {
          call->elems.push_back(parseExpr());
        } while (accept(Tok::Comma));
      }
      expect(Tok::RParen, "after arguments");
      return call;
    }
    case Tok::Ident: {
      std::string name(advance().text);
      // Call with bracketed type args: plus[n](a,b)
      if (check(Tok::LBracket)) {
        // Look ahead: an index like x[2] vs type args like plus[n](...).
        // Parse the bracket group, then decide by the following token.
        size_t save = pos_;
        advance();  // '['
        std::vector<ExprPtr> groupExprs;
        bool simpleGroup = true;
        if (!check(Tok::RBracket)) {
          do {
            if (check(Tok::KwNUM)) {
              simpleGroup = false;
              break;
            }
            groupExprs.push_back(parseExpr());
            if (check(Tok::Range)) {
              simpleGroup = false;
              break;
            }
          } while (accept(Tok::Comma));
        }
        if (simpleGroup && check(Tok::RBracket) &&
            peek().kind == Tok::LParen) {
          advance();  // ']'
          auto call = std::make_unique<Expr>(ExprKind::Call, loc);
          call->name = std::move(name);
          call->typeArgs = std::move(groupExprs);
          expect(Tok::LParen, "in function component call");
          if (!check(Tok::RParen)) {
            do {
              call->elems.push_back(parseExpr());
            } while (accept(Tok::Comma));
          }
          expect(Tok::RParen, "after call arguments");
          return call;
        }
        // Not a call — rewind and parse as an indexed signal.
        pos_ = save;
        ExprPtr base = makeNameRef(std::move(name), loc);
        return parsePostfix(std::move(base));
      }
      if (check(Tok::LParen)) {
        advance();
        auto call = std::make_unique<Expr>(ExprKind::Call, loc);
        call->name = std::move(name);
        if (!check(Tok::RParen)) {
          do {
            call->elems.push_back(parseExpr());
          } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "after call arguments");
        return parsePostfix(std::move(call));
      }
      return parsePostfix(makeNameRef(std::move(name), loc));
    }
    default:
      error(Diag::ExpectedExpression, loc,
                   "expected an expression, found '" +
                       std::string(tokName(cur().kind)) + "'");
      advance();
      return makeNumber(0, loc);
  }
}

ast::ExprPtr Parser::parsePostfix(ast::ExprPtr base) {
  for (;;) {
    if (check(Tok::LBracket)) {
      advance();
      // Comma-separated index specs nest: m[i,j] == m[i][j].
      do {
        auto idx = std::make_unique<Expr>(ExprKind::Index, base->loc);
        idx->base = std::move(base);
        if (accept(Tok::KwNUM)) {
          expect(Tok::LParen, "after NUM");
          idx->numIndex = parseSignalPath();
          expect(Tok::RParen, "after NUM argument");
        } else {
          idx->indexLo = parseExpr();
          if (accept(Tok::Range)) idx->indexHi = parseExpr();
        }
        base = std::move(idx);
      } while (accept(Tok::Comma));
      expect(Tok::RBracket, "to close index");
      continue;
    }
    if (check(Tok::Dot)) {
      advance();
      auto sel = std::make_unique<Expr>(ExprKind::Select, base->loc);
      sel->base = std::move(base);
      if (check(Tok::Ident)) {
        sel->name = std::string(advance().text);
      } else if (check(Tok::KwIN) || check(Tok::KwOUT)) {
        // Field names "in"/"out" are common (REG.in); the lexer only
        // keywords exact upper-case, so this handles IN/OUT used as fields.
        sel->name = std::string(advance().text);
      } else {
        error(Diag::ExpectedToken, cur().loc,
                     "expected field name after '.'");
      }
      base = std::move(sel);
      continue;
    }
    break;
  }
  return base;
}

ast::ExprPtr Parser::parseSignalPath() {
  SourceLoc loc = cur().loc;
  if (accept(Tok::Star)) return std::make_unique<Expr>(ExprKind::Star, loc);
  if (check(Tok::KwCLK)) {
    advance();
    return makeNameRef("CLK", loc);
  }
  if (check(Tok::KwRSET)) {
    advance();
    return makeNameRef("RSET", loc);
  }
  if (!check(Tok::Ident)) {
    error(Diag::ExpectedToken, cur().loc, "expected a signal");
    return makeNameRef("<error>", loc);
  }
  ExprPtr base = makeNameRef(std::string(advance().text), loc);
  return parsePostfix(std::move(base));
}

// ---------------------------------------------------------------------------
// Layout language
// ---------------------------------------------------------------------------

std::vector<ast::LayoutStmtPtr> Parser::parseLayoutBlock() {
  expect(Tok::LBrace, "to open layout block");
  auto list = parseLayoutList({Tok::RBrace});
  expect(Tok::RBrace, "to close layout block");
  return list;
}

std::vector<ast::LayoutStmtPtr> Parser::parseLayoutList(
    std::initializer_list<Tok> terminators) {
  std::vector<LayoutStmtPtr> out;
  auto atTerminator = [&] {
    for (Tok t : terminators)
      if (check(t)) return true;
    return check(Tok::Eof);
  };
  for (;;) {
    while (accept(Tok::Semicolon)) {
    }
    if (atTerminator()) break;
    LayoutStmtPtr s = parseLayoutStatement();
    if (!s) break;
    out.push_back(std::move(s));
    if (!accept(Tok::Semicolon)) break;
  }
  return out;
}

ast::LayoutStmtPtr Parser::parseLayoutStatement() {
  SourceLoc loc = cur().loc;
  if (!enterDepth(loc)) {
    advance();
    return nullptr;
  }
  LayoutStmtPtr s = parseLayoutStatementInner();
  leaveDepth();
  return s;
}

ast::LayoutStmtPtr Parser::parseLayoutStatementInner() {
  SourceLoc loc = cur().loc;
  switch (cur().kind) {
    case Tok::KwORDER: {
      advance();
      auto s = std::make_unique<LayoutStmt>(LayoutStmtKind::Order, loc);
      if (check(Tok::Ident)) s->direction = std::string(advance().text);
      else error(Diag::ExpectedToken, cur().loc,
                        "expected direction of separation after ORDER");
      s->body = parseLayoutList({Tok::KwEND});
      expect(Tok::KwEND, "to close ORDER statement");
      return s;
    }
    case Tok::KwTOP:
    case Tok::KwRIGHT:
    case Tok::KwBOTTOM:
    case Tok::KwLEFT: {
      auto s = std::make_unique<LayoutStmt>(LayoutStmtKind::Boundary, loc);
      switch (advance().kind) {
        case Tok::KwTOP: s->side = BoundarySide::Top; break;
        case Tok::KwRIGHT: s->side = BoundarySide::Right; break;
        case Tok::KwBOTTOM: s->side = BoundarySide::Bottom; break;
        default: s->side = BoundarySide::Left; break;
      }
      // The boundary pin list is greedy (grammar rule 9); it ends at the
      // enclosing terminator or the next boundary keyword.
      s->body = parseLayoutList({Tok::RBrace, Tok::KwEND, Tok::KwTOP,
                                 Tok::KwRIGHT, Tok::KwBOTTOM, Tok::KwLEFT});
      return s;
    }
    case Tok::KwFOR: {
      advance();
      auto s = std::make_unique<LayoutStmt>(LayoutStmtKind::For, loc);
      if (check(Tok::Ident)) s->loopVar = std::string(advance().text);
      else error(Diag::ExpectedToken, cur().loc,
                        "expected loop variable");
      // The paper writes both "FOR i := 1 TO n" and "FOR i = 1 TO n" in
      // layout blocks; accept either.
      if (!accept(Tok::Assign)) expect(Tok::Equal, "after FOR variable");
      s->from = parseExpr();
      if (accept(Tok::KwDOWNTO)) s->downto = true;
      else expect(Tok::KwTO, "in layout FOR");
      s->to = parseExpr();
      expect(Tok::KwDO, "in layout FOR");
      s->body = parseLayoutList({Tok::KwEND});
      expect(Tok::KwEND, "to close layout FOR");
      return s;
    }
    case Tok::KwWHEN: {
      advance();
      auto s = std::make_unique<LayoutStmt>(LayoutStmtKind::When, loc);
      for (;;) {
        LayoutStmt::WhenArm arm;
        arm.cond = parseExpr();
        expect(Tok::KwTHEN, "after WHEN condition");
        arm.body = parseLayoutList(
            {Tok::KwEND, Tok::KwOTHERWISE, Tok::KwOTHERWISEWHEN});
        s->whenArms.push_back(std::move(arm));
        if (accept(Tok::KwOTHERWISEWHEN)) continue;
        break;
      }
      if (accept(Tok::KwOTHERWISE))
        s->otherwiseBody = parseLayoutList({Tok::KwEND});
      expect(Tok::KwEND, "to close layout WHEN");
      return s;
    }
    case Tok::KwWITH: {
      advance();
      auto s = std::make_unique<LayoutStmt>(LayoutStmtKind::With, loc);
      s->withSignal = parseSignalPath();
      expect(Tok::KwDO, "after WITH signal");
      s->body = parseLayoutList({Tok::KwEND});
      expect(Tok::KwEND, "to close layout WITH");
      return s;
    }
    case Tok::Ident: {
      // [orientation] signal [= type]
      std::string orientation;
      if (peek().kind == Tok::Ident) {
        orientation = std::string(advance().text);
      }
      ExprPtr sig = parseSignalPath();
      if (accept(Tok::Equal)) {
        auto s =
            std::make_unique<LayoutStmt>(LayoutStmtKind::Replacement, loc);
        s->orientation = std::move(orientation);
        s->signal = std::move(sig);
        s->replacementType = parseTypeExpr();
        return s;
      }
      auto s = std::make_unique<LayoutStmt>(LayoutStmtKind::Ref, loc);
      s->orientation = std::move(orientation);
      s->signal = std::move(sig);
      return s;
    }
    default:
      error(Diag::UnexpectedToken, loc,
                   "expected a layout statement, found '" +
                       std::string(tokName(cur().kind)) + "'");
      advance();
      return nullptr;
  }
}

}  // namespace zeus

// Recursive-descent parser for Zeus (paper §7).
//
// The grammar's one genuine ambiguity — `*` is both multiplication (in
// constant expressions) and the empty signal — is resolved positionally:
// `*` in operand position is the empty signal, `*` in operator position is
// multiplication.  Which expressions must be constant, signal or
// signal-constant expressions is decided later by sema, as in the report.
#pragma once

#include <memory>
#include <vector>

#include "src/ast/ast.h"
#include "src/lexer/lexer.h"
#include "src/support/diagnostics.h"

namespace zeus {

class Parser {
 public:
  Parser(BufferId buffer, DiagnosticEngine& diags);

  /// Parses a whole compilation unit.  Diagnostics collect in the engine;
  /// a partial tree is still returned on error for tooling.
  ast::Program parseProgram();

  // Entry points used by tests.
  ast::ExprPtr parseExpression();
  ast::TypeExprPtr parseType();
  ast::StmtPtr parseStatement();

 private:
  // token plumbing
  const Token& cur() const { return tokens_[pos_]; }
  const Token& peek(size_t ahead = 1) const {
    size_t i = pos_ + ahead;
    return tokens_[i < tokens_.size() ? i : tokens_.size() - 1];
  }
  Token advance();
  bool check(Tok k) const { return cur().kind == k; }
  bool accept(Tok k);
  bool expect(Tok k, const char* context);
  void skipTo(std::initializer_list<Tok> sync);

  // declarations
  void parseDeclarationBlock(std::vector<ast::DeclPtr>& out);
  void parseConstBlock(std::vector<ast::DeclPtr>& out);
  void parseTypeBlock(std::vector<ast::DeclPtr>& out);
  void parseSignalBlock(std::vector<ast::DeclPtr>& out);
  std::vector<std::string> parseIdList();

  // types
  ast::TypeExprPtr parseTypeExpr();
  ast::TypeExprPtr parseComponentType();
  void parseFParams(std::vector<ast::FParam>& out);

  // statements
  std::vector<ast::StmtPtr> parseStatementSequence();
  ast::StmtPtr parseOneStatement();
  ast::StmtPtr parseIf();
  ast::StmtPtr parseReplication();
  ast::StmtPtr parseCondGeneration();
  ast::StmtPtr parseWith();
  ast::StmtPtr parseSeqOrPar(bool sequential);

  // expressions (Pratt over the constant-expression precedence of §3.1)
  ast::ExprPtr parseExpr(int minPrec = 0);
  ast::ExprPtr parsePrimary();
  ast::ExprPtr parsePostfix(ast::ExprPtr base);
  ast::ExprPtr parseSignalPath();

  // layout language
  std::vector<ast::LayoutStmtPtr> parseLayoutBlock();  ///< inside { }
  std::vector<ast::LayoutStmtPtr> parseLayoutList(
      std::initializer_list<Tok> terminators);
  ast::LayoutStmtPtr parseLayoutStatement();

  DiagnosticEngine& diags_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace zeus

// Recursive-descent parser for Zeus (paper §7).
//
// The grammar's one genuine ambiguity — `*` is both multiplication (in
// constant expressions) and the empty signal — is resolved positionally:
// `*` in operand position is the empty signal, `*` in operator position is
// multiplication.  Which expressions must be constant, signal or
// signal-constant expressions is decided later by sema, as in the report.
//
// The parser is hardened against adversarial input (see
// docs/error-model.md): recursion depth is bounded by Limits.maxParseDepth,
// error recovery synchronises at declaration keywords so one bad
// declaration does not poison the rest of the buffer, and after
// Limits.maxParseErrors syntax errors the parser gives up on the buffer
// with Diag::TooManyErrors instead of drowning the user in cascades.
#pragma once

#include <memory>
#include <vector>

#include "src/ast/ast.h"
#include "src/lexer/lexer.h"
#include "src/support/diagnostics.h"
#include "src/support/limits.h"

namespace zeus {

class Parser {
 public:
  Parser(BufferId buffer, DiagnosticEngine& diags, Limits limits = {},
         ResourceUsage* usage = nullptr);

  /// Parses a whole compilation unit.  Diagnostics collect in the engine;
  /// a partial tree is still returned on error for tooling.
  ast::Program parseProgram();

  // Entry points used by tests.
  ast::ExprPtr parseExpression();
  ast::TypeExprPtr parseType();
  ast::StmtPtr parseStatement();

 private:
  // token plumbing
  const Token& cur() const { return tokens_[pos_]; }
  const Token& peek(size_t ahead = 1) const {
    size_t i = pos_ + ahead;
    return tokens_[i < tokens_.size() ? i : tokens_.size() - 1];
  }
  Token advance();
  bool check(Tok k) const { return cur().kind == k; }
  bool accept(Tok k);
  bool expect(Tok k, const char* context);
  void skipTo(std::initializer_list<Tok> sync);

  // guarded error reporting (enforces Limits.maxParseErrors)
  void error(Diag code, SourceLoc loc, std::string msg);
  // nesting guard (enforces Limits.maxParseDepth); false = breached
  bool enterDepth(SourceLoc loc);
  void leaveDepth() { --depth_; }
  // after a malformed declaration: skip to the next declaration keyword
  // or past the next semicolon
  void syncDecl();

  // declarations
  void parseDeclarationBlock(std::vector<ast::DeclPtr>& out);
  void parseConstBlock(std::vector<ast::DeclPtr>& out);
  void parseTypeBlock(std::vector<ast::DeclPtr>& out);
  void parseSignalBlock(std::vector<ast::DeclPtr>& out);
  std::vector<std::string> parseIdList();

  // types
  ast::TypeExprPtr parseTypeExpr();
  ast::TypeExprPtr parseTypeExprInner();
  ast::TypeExprPtr parseComponentType();
  void parseFParams(std::vector<ast::FParam>& out);

  // statements
  std::vector<ast::StmtPtr> parseStatementSequence();
  ast::StmtPtr parseOneStatement();
  ast::StmtPtr parseOneStatementInner();
  ast::StmtPtr parseIf();
  ast::StmtPtr parseReplication();
  ast::StmtPtr parseCondGeneration();
  ast::StmtPtr parseWith();
  ast::StmtPtr parseSeqOrPar(bool sequential);

  // expressions (Pratt over the constant-expression precedence of §3.1)
  ast::ExprPtr parseExpr(int minPrec = 0);
  ast::ExprPtr parsePrimary();
  ast::ExprPtr parsePrimaryInner();
  ast::ExprPtr parsePostfix(ast::ExprPtr base);
  ast::ExprPtr parseSignalPath();

  // layout language
  std::vector<ast::LayoutStmtPtr> parseLayoutBlock();  ///< inside { }
  std::vector<ast::LayoutStmtPtr> parseLayoutList(
      std::initializer_list<Tok> terminators);
  ast::LayoutStmtPtr parseLayoutStatement();
  ast::LayoutStmtPtr parseLayoutStatementInner();

  DiagnosticEngine& diags_;
  Limits limits_;
  ResourceUsage* usage_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
  bool depthBreached_ = false;
  bool tooManyErrors_ = false;
  size_t errorsAtStart_ = 0;
};

}  // namespace zeus

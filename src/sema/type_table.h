// Canonical Zeus types (§3.2) and their lazy instantiation.
//
// A `Type` is the resolved, parameter-free form of a type expression:
// basic (boolean / multiplex / virtual), array with constant bounds, or
// component with resolved field types.  Component *bodies* are never
// resolved here — the elaborator materialises them lazily, which is what
// makes recursive parameterized types (tree(n), htree(n), routing
// networks) terminate: an instance whose WHEN-guard excludes its use is
// simply never elaborated ("this hardware is only generated if it is
// used", §4.2).
//
// Parameterized named types are memoised on (declaration, argument list),
// so tree(4) is one Type no matter how often it is written.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/ast/ast.h"
#include "src/sema/const_eval.h"
#include "src/sema/env.h"
#include "src/support/diagnostics.h"
#include "src/support/limits.h"

namespace zeus {

enum class BasicKind : uint8_t { Boolean, Multiplex, Virtual };

struct Type;

/// One formal parameter / record field of a component type.
struct Field {
  std::string name;
  ast::ParamMode mode = ast::ParamMode::InOut;
  const Type* type = nullptr;
  SourceLoc loc;
};

/// Which predefined component a Type stands for.
enum class BuiltinComponent : uint8_t { None, Reg };

struct Type {
  enum class Kind : uint8_t { Basic, Array, Component };
  Kind kind = Kind::Basic;

  // Basic
  BasicKind basic = BasicKind::Boolean;

  // Array
  int64_t lo = 0;
  int64_t hi = -1;  ///< hi < lo means the array is empty
  const Type* elem = nullptr;

  // Component
  std::vector<Field> fields;
  bool hasBody = false;
  const Type* resultType = nullptr;  ///< non-null for function components
  const ast::TypeExpr* def = nullptr;  ///< body AST; null for builtins
  const Env* bodyEnv = nullptr;  ///< env for elaborating the body
  BuiltinComponent builtin = BuiltinComponent::None;

  std::string name;     ///< display name, e.g. "tree(4)"
  size_t numBasic = 0;  ///< number of basic substructures

  [[nodiscard]] bool isBasic() const { return kind == Kind::Basic; }
  [[nodiscard]] bool isComponent() const { return kind == Kind::Component; }
  [[nodiscard]] bool isFunction() const {
    return kind == Kind::Component && resultType != nullptr;
  }
  [[nodiscard]] int64_t arrayLen() const {
    return hi < lo ? 0 : hi - lo + 1;
  }
  [[nodiscard]] const Field* findField(const std::string& n) const {
    for (const Field& f : fields)
      if (f.name == n) return &f;
    return nullptr;
  }
};

/// One basic substructure of a flattened type.
struct FlatBit {
  std::string path;  ///< e.g. "[2].in" (relative, prefixed by caller)
  BasicKind kind = BasicKind::Boolean;
  ast::ParamMode mode = ast::ParamMode::InOut;  ///< inherited IN/OUT (§3.2)
};

class TypeTable {
 public:
  explicit TypeTable(DiagnosticEngine& diags, Limits limits = {},
                     ResourceUsage* usage = nullptr);

  const Type* boolean() const { return boolean_; }
  const Type* multiplex() const { return multiplex_; }
  const Type* virtualType() const { return virtual_; }
  const Type* reg() const { return reg_; }

  /// Resolves a type expression in an environment.  Returns nullptr and
  /// reports a diagnostic on failure.
  const Type* resolve(const ast::TypeExpr& te, const Env& env);

  /// Resolves a named type with already-evaluated actual parameters.
  const Type* instantiateNamed(const std::string& name,
                               const std::vector<int64_t>& args,
                               const Env& env, SourceLoc loc);

  /// Builds an anonymous array type (used by predefined functions whose
  /// result is ARRAY[1..m] OF boolean).
  const Type* makeArray(int64_t lo, int64_t hi, const Type* elem);

  /// Appends the basic substructures of `t` in natural order.
  /// `inherited` is the parameter mode inherited from enclosing fields.
  void flatten(const Type& t, ast::ParamMode inherited,
               const std::string& prefix, std::vector<FlatBit>& out) const;

  /// Owns an Env for the lifetime of the table (formal bindings etc.).
  Env* makeEnv(const Env* parent);

 private:
  Type* newType();
  const Type* resolveComponent(const ast::TypeExpr& te, const Env& env);

  DiagnosticEngine& diags_;
  Limits limits_;
  ResourceUsage* usage_;
  ConstEval constEval_;
  std::deque<std::unique_ptr<Type>> types_;
  std::deque<std::unique_ptr<Env>> envs_;

  // memoisation
  std::map<std::pair<const ast::Decl*, std::vector<int64_t>>, const Type*>
      namedCache_;
  std::map<std::pair<const ast::TypeExpr*, const Env*>, const Type*>
      anonCache_;
  int depth_ = 0;

  const Type* boolean_;
  const Type* multiplex_;
  const Type* virtual_;
  const Type* reg_;
};

}  // namespace zeus

// Lexical environments for name resolution (constants, types, loop
// variables and type formal parameters).
//
// Signals are deliberately NOT part of Env: Zeus forbids non-local signals
// (§3), so the elaborator keeps a separate, flat per-component signal scope.
//
// A component type with a USES list restricts which outer names its body
// may reference (§3.2); the restriction is recorded on the Env node that
// represents the component boundary and enforced during lookup.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "src/ast/ast.h"
#include "src/sema/const_value.h"

namespace zeus {

class Env;

/// A user type declaration together with the environment it was declared in
/// (needed to resolve its definition and actual parameters later, lazily).
struct TypeBinding {
  const ast::Decl* decl = nullptr;  ///< DeclKind::Type
  const Env* declEnv = nullptr;     ///< environment surrounding the decl
};

class Env {
 public:
  explicit Env(const Env* parent = nullptr) : parent_(parent) {}

  // -- definition --
  bool defineConst(const std::string& name, ConstVal value);
  bool defineType(const std::string& name, TypeBinding binding);
  bool defineLoopVar(const std::string& name, int64_t value);

  /// Marks this Env as a component boundary with a USES restriction.
  void restrictUses(std::set<std::string> allowed) {
    restricted_ = true;
    allowed_ = std::move(allowed);
  }

  // -- lookup (walks parents; honours USES restrictions) --
  [[nodiscard]] const ConstVal* lookupConst(const std::string& name) const;
  [[nodiscard]] const TypeBinding* lookupType(const std::string& name) const;
  [[nodiscard]] std::optional<int64_t> lookupLoopVar(
      const std::string& name) const;

  /// True if `name` is defined directly in this Env (not a parent).
  [[nodiscard]] bool definesLocally(const std::string& name) const;

  [[nodiscard]] const Env* parent() const { return parent_; }

 private:
  /// Whether a lookup that *crosses upward out of this Env* may see `name`.
  [[nodiscard]] bool allowsOuter(const std::string& name) const {
    return !restricted_ || allowed_.count(name) > 0;
  }

  const Env* parent_;
  std::map<std::string, ConstVal> consts_;
  std::map<std::string, TypeBinding> types_;
  std::map<std::string, int64_t> loopVars_;
  bool restricted_ = false;
  std::set<std::string> allowed_;
};

}  // namespace zeus

// Compile-time values: numerical constants and signal constants (§3.1).
//
// A signal constant is a nested tuple over the basic values 0, 1, UNDEF
// and NOINFL, e.g.  a = ((0,1),(1,0),(0,0)).  Numerical constants are
// 64-bit signed integers with Modula-2 style arithmetic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/logic.h"

namespace zeus {

/// A (possibly nested) signal constant.
struct SigConst {
  bool isLeaf = true;
  Logic leaf = Logic::Undef;
  std::vector<SigConst> elems;

  static SigConst ofLeaf(Logic v) {
    SigConst s;
    s.isLeaf = true;
    s.leaf = v;
    return s;
  }
  static SigConst ofTuple(std::vector<SigConst> elems) {
    SigConst s;
    s.isLeaf = false;
    s.elems = std::move(elems);
    return s;
  }

  /// Appends the basic values in natural (leftmost-first) order.
  void flattenInto(std::vector<Logic>& out) const {
    if (isLeaf) {
      out.push_back(leaf);
      return;
    }
    for (const SigConst& e : elems) e.flattenInto(out);
  }

  [[nodiscard]] std::vector<Logic> flatten() const {
    std::vector<Logic> out;
    flattenInto(out);
    return out;
  }
};

/// A compile-time constant: either a number or a signal constant.
struct ConstVal {
  bool isNumber = true;
  int64_t num = 0;
  SigConst sig;

  static ConstVal ofNumber(int64_t n) {
    ConstVal v;
    v.isNumber = true;
    v.num = n;
    return v;
  }
  static ConstVal ofSig(SigConst s) {
    ConstVal v;
    v.isNumber = false;
    v.sig = std::move(s);
    return v;
  }

  [[nodiscard]] std::string describe() const;
};

}  // namespace zeus

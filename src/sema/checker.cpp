#include "src/sema/checker.h"

#include "src/sema/const_eval.h"

namespace zeus {

Checker::Checker(DiagnosticEngine& diags, TypeTable& types)
    : diags_(diags), types_(types) {}

CheckedProgram Checker::check(const ast::Program& program) {
  CheckedProgram out;
  out.program = &program;
  Env* root = types_.makeEnv(nullptr);
  out.rootEnv = root;
  checkDeclList(program.decls, *root);
  for (const ast::DeclPtr& d : program.decls) {
    if (d->kind == ast::DeclKind::Signal) out.topSignals.push_back(d.get());
  }
  return out;
}

void Checker::checkDeclList(const std::vector<ast::DeclPtr>& decls,
                            Env& env) {
  ConstEval ceval(diags_);
  bool seenSignal = false;
  for (const ast::DeclPtr& dp : decls) {
    const ast::Decl& d = *dp;
    switch (d.kind) {
      case ast::DeclKind::Const: {
        if (seenSignal) {
          diags_.error(Diag::SignalAfterOtherDecls, d.loc,
                       "constant declarations must precede signal "
                       "declarations");
        }
        auto v = ceval.eval(*d.constValue, env);
        if (v && !env.defineConst(d.name, std::move(*v))) {
          diags_.error(Diag::DuplicateDeclaration, d.loc,
                       "duplicate declaration of '" + d.name + "'");
        }
        break;
      }
      case ast::DeclKind::Type: {
        if (seenSignal) {
          diags_.error(Diag::SignalAfterOtherDecls, d.loc,
                       "type declarations must precede signal declarations");
        }
        if (!env.defineType(d.name, TypeBinding{&d, &env})) {
          diags_.error(Diag::DuplicateDeclaration, d.loc,
                       "duplicate declaration of '" + d.name + "'");
        }
        // Walk into the definition with type formals bound to a probe
        // value, purely for the syntactic statement checks; parameterized
        // bodies are re-resolved properly at elaboration.
        Env* probe = types_.makeEnv(&env);
        for (const std::string& f : d.typeFormals) probe->defineLoopVar(f, 1);
        checkTypeExpr(*d.type, *probe);
        break;
      }
      case ast::DeclKind::Signal:
        seenSignal = true;
        if (d.type) checkTypeExpr(*d.type, env);
        break;
    }
  }
}

void Checker::checkTypeExpr(const ast::TypeExpr& te, Env& env) {
  switch (te.kind) {
    case ast::TypeExprKind::Named:
      return;
    case ast::TypeExprKind::Array:
      if (te.elem) checkTypeExpr(*te.elem, env);
      return;
    case ast::TypeExprKind::Component: {
      for (const ast::FParam& p : te.params) {
        if (p.type) checkTypeExpr(*p.type, env);
      }
      if (!te.hasBody) {
        return;  // record type — nothing further to check
      }
      Env* bodyEnv = types_.makeEnv(&env);
      checkDeclList(te.decls, *bodyEnv);
      const bool isFunction = te.resultType != nullptr;
      checkStmtList(te.body, isFunction, /*inIf=*/false);
      return;
    }
  }
}

void Checker::checkStmtList(const std::vector<ast::StmtPtr>& stmts,
                            bool inFunction, bool inIf) {
  for (const ast::StmtPtr& s : stmts) checkStmt(*s, inFunction, inIf);
}

void Checker::checkStmt(const ast::Stmt& s, bool inFunction, bool inIf) {
  using ast::StmtKind;
  switch (s.kind) {
    case StmtKind::Assign:
      if (s.isAlias && inIf) {
        diags_.error(Diag::AliasInsideConditional, s.loc,
                     "aliasing ('==') must not occur within a conditional "
                     "statement");
      }
      return;
    case StmtKind::Result:
      if (!inFunction) {
        diags_.error(Diag::ResultOutsideFunction, s.loc,
                     "RESULT is only allowed in function component types");
      }
      return;
    case StmtKind::If:
      for (const ast::StmtArm& arm : s.arms)
        checkStmtList(arm.body, inFunction, /*inIf=*/true);
      checkStmtList(s.elseBody, inFunction, /*inIf=*/true);
      return;
    case StmtKind::CondGen:
      for (const ast::StmtArm& arm : s.arms)
        checkStmtList(arm.body, inFunction, inIf);
      checkStmtList(s.elseBody, inFunction, inIf);
      return;
    case StmtKind::Replication:
    case StmtKind::Sequential:
    case StmtKind::Parallel:
    case StmtKind::With:
      checkStmtList(s.body, inFunction, inIf);
      return;
    case StmtKind::Connection:
    case StmtKind::Empty:
      return;
  }
}

}  // namespace zeus

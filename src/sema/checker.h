// Program-level semantic checks that do not need elaboration.
//
// The checker builds the root environment (top-level constants and types),
// and enforces the purely syntactic rules of the report:
//  * declaration order — SIGNAL declarations come after CONST/TYPE (§3),
//  * no duplicate declarations in one scope,
//  * RESULT only inside function component types,
//  * aliasing (`==`) never inside an IF statement (§4.1),
//  * component types without body carry no statements (grammar).
//
// Everything that concerns instantiated basic signals — the §4.7 tables —
// is checked by the elaborator.
#pragma once

#include <optional>

#include "src/ast/ast.h"
#include "src/sema/type_table.h"
#include "src/support/diagnostics.h"

namespace zeus {

struct CheckedProgram {
  const ast::Program* program = nullptr;
  Env* rootEnv = nullptr;  ///< owned by the TypeTable
  std::vector<const ast::Decl*> topSignals;
};

class Checker {
 public:
  Checker(DiagnosticEngine& diags, TypeTable& types);

  /// Runs all checks.  Returns the checked program even if diagnostics
  /// were reported (the caller decides whether to continue).
  CheckedProgram check(const ast::Program& program);

 private:
  void checkDeclList(const std::vector<ast::DeclPtr>& decls, Env& env);
  void checkTypeExpr(const ast::TypeExpr& te, Env& env);
  void checkStmtList(const std::vector<ast::StmtPtr>& stmts,
                     bool inFunction, bool inIf);
  void checkStmt(const ast::Stmt& s, bool inFunction, bool inIf);

  DiagnosticEngine& diags_;
  TypeTable& types_;
};

}  // namespace zeus

#include "src/sema/const_eval.h"

namespace zeus {

namespace {

/// Modula-2 floor division.
int64_t floorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t floorMod(int64_t a, int64_t b) { return a - floorDiv(a, b) * b; }

}  // namespace

std::string ConstVal::describe() const {
  if (isNumber) return std::to_string(num);
  std::string out;
  struct Walk {
    static void go(const SigConst& s, std::string& out) {
      if (s.isLeaf) {
        out += logicName(s.leaf);
        return;
      }
      out += '(';
      for (size_t i = 0; i < s.elems.size(); ++i) {
        if (i) out += ',';
        go(s.elems[i], out);
      }
      out += ')';
    }
  };
  Walk::go(sig, out);
  return out;
}

SigConst ConstEval::binConst(int64_t value, int64_t bits) {
  std::vector<SigConst> elems;
  elems.reserve(static_cast<size_t>(bits > 0 ? bits : 0));
  for (int64_t i = 0; i < bits; ++i) {
    elems.push_back(SigConst::ofLeaf(logicFromBool((value >> i) & 1)));
  }
  return SigConst::ofTuple(std::move(elems));
}

std::optional<int64_t> ConstEval::evalNumber(const ast::Expr& e,
                                             const Env& env) {
  auto v = eval(e, env);
  if (!v) return std::nullopt;
  if (!v->isNumber) {
    diags_.error(Diag::NotAConstant, e.loc,
                 "expected a numerical constant, got a signal constant");
    return std::nullopt;
  }
  return v->num;
}

std::optional<ConstVal> ConstEval::eval(const ast::Expr& e, const Env& env) {
  using ast::ExprKind;
  switch (e.kind) {
    case ExprKind::Number:
      return ConstVal::ofNumber(e.number);

    case ExprKind::NameRef: {
      if (e.name == "UNDEF")
        return ConstVal::ofSig(SigConst::ofLeaf(Logic::Undef));
      if (e.name == "NOINFL")
        return ConstVal::ofSig(SigConst::ofLeaf(Logic::NoInfl));
      if (auto lv = env.lookupLoopVar(e.name)) return ConstVal::ofNumber(*lv);
      if (const ConstVal* c = env.lookupConst(e.name)) return *c;
      diags_.error(Diag::NotAConstant, e.loc,
                   "'" + e.name + "' is not a constant");
      return std::nullopt;
    }

    case ExprKind::Tuple: {
      std::vector<SigConst> elems;
      for (const ast::ExprPtr& el : e.elems) {
        auto v = eval(*el, env);
        if (!v) return std::nullopt;
        if (v->isNumber) {
          if (v->num != 0 && v->num != 1) {
            diags_.error(Diag::NotAConstant, el->loc,
                         "signal constant elements must be 0, 1, UNDEF or "
                         "NOINFL");
            return std::nullopt;
          }
          elems.push_back(SigConst::ofLeaf(logicFromBool(v->num == 1)));
        } else {
          elems.push_back(std::move(v->sig));
        }
      }
      return ConstVal::ofSig(SigConst::ofTuple(std::move(elems)));
    }

    case ExprKind::Index: {
      auto base = eval(*e.base, env);
      if (!base) return std::nullopt;
      if (base->isNumber || base->sig.isLeaf) {
        diags_.error(Diag::NotAConstant, e.loc,
                     "cannot index a non-structured constant");
        return std::nullopt;
      }
      if (e.numIndex) {
        diags_.error(Diag::NotAConstant, e.loc,
                     "NUM indexing is not allowed in constant expressions");
        return std::nullopt;
      }
      auto lo = evalNumber(*e.indexLo, env);
      if (!lo) return std::nullopt;
      auto pick = [&](int64_t i) -> std::optional<SigConst> {
        if (i < 1 || i > static_cast<int64_t>(base->sig.elems.size())) {
          diags_.error(Diag::IndexOutOfRange, e.loc,
                       "constant index " + std::to_string(i) +
                           " out of range 1.." +
                           std::to_string(base->sig.elems.size()));
          return std::nullopt;
        }
        return base->sig.elems[static_cast<size_t>(i - 1)];
      };
      if (!e.indexHi) {
        auto el = pick(*lo);
        if (!el) return std::nullopt;
        return ConstVal::ofSig(std::move(*el));
      }
      auto hi = evalNumber(*e.indexHi, env);
      if (!hi) return std::nullopt;
      std::vector<SigConst> slice;
      for (int64_t i = *lo; i <= *hi; ++i) {
        auto el = pick(i);
        if (!el) return std::nullopt;
        slice.push_back(std::move(*el));
      }
      return ConstVal::ofSig(SigConst::ofTuple(std::move(slice)));
    }

    case ExprKind::Call: {
      if (e.name == "BIN") {
        if (e.elems.size() != 2) {
          diags_.error(Diag::WrongArgumentCount, e.loc,
                       "BIN takes exactly two arguments");
          return std::nullopt;
        }
        auto value = evalNumber(*e.elems[0], env);
        auto bits = evalNumber(*e.elems[1], env);
        if (!value || !bits) return std::nullopt;
        if (*bits < 0) {
          diags_.error(Diag::BadArrayBounds, e.loc,
                       "BIN width must be non-negative");
          return std::nullopt;
        }
        return ConstVal::ofSig(binConst(*value, *bits));
      }
      if (e.name == "odd") {
        if (e.elems.size() != 1) {
          diags_.error(Diag::WrongArgumentCount, e.loc,
                       "odd takes exactly one argument");
          return std::nullopt;
        }
        auto v = evalNumber(*e.elems[0], env);
        if (!v) return std::nullopt;
        return ConstVal::ofNumber(floorMod(*v, 2));
      }
      if (e.name == "min" || e.name == "max") {
        if (e.elems.empty()) {
          diags_.error(Diag::WrongArgumentCount, e.loc,
                       e.name + " needs at least one argument");
          return std::nullopt;
        }
        std::optional<int64_t> acc;
        for (const ast::ExprPtr& arg : e.elems) {
          auto v = evalNumber(*arg, env);
          if (!v) return std::nullopt;
          if (!acc) acc = *v;
          else acc = e.name == "min" ? std::min(*acc, *v) : std::max(*acc, *v);
        }
        return ConstVal::ofNumber(*acc);
      }
      diags_.error(Diag::NotAConstant, e.loc,
                   "'" + e.name + "' cannot be used in a constant expression");
      return std::nullopt;
    }

    case ExprKind::Unary: {
      auto v = evalNumber(*e.base, env);
      if (!v) return std::nullopt;
      switch (e.unOp) {
        case ast::UnOp::Plus: return ConstVal::ofNumber(*v);
        case ast::UnOp::Minus: return ConstVal::ofNumber(-*v);
        case ast::UnOp::Not: return ConstVal::ofNumber(*v == 0 ? 1 : 0);
      }
      return std::nullopt;
    }

    case ExprKind::Binary: {
      auto a = evalNumber(*e.lhs, env);
      auto b = evalNumber(*e.rhs, env);
      if (!a || !b) return std::nullopt;
      switch (e.binOp) {
        case ast::BinOp::Add: return ConstVal::ofNumber(*a + *b);
        case ast::BinOp::Sub: return ConstVal::ofNumber(*a - *b);
        case ast::BinOp::Mul: return ConstVal::ofNumber(*a * *b);
        case ast::BinOp::Div:
        case ast::BinOp::Mod:
          if (*b == 0) {
            diags_.error(Diag::DivisionByZero, e.loc, "division by zero");
            return std::nullopt;
          }
          return ConstVal::ofNumber(e.binOp == ast::BinOp::Div
                                        ? floorDiv(*a, *b)
                                        : floorMod(*a, *b));
        case ast::BinOp::And:
          return ConstVal::ofNumber((*a != 0 && *b != 0) ? 1 : 0);
        case ast::BinOp::Or:
          return ConstVal::ofNumber((*a != 0 || *b != 0) ? 1 : 0);
        case ast::BinOp::Eq: return ConstVal::ofNumber(*a == *b ? 1 : 0);
        case ast::BinOp::Ne: return ConstVal::ofNumber(*a != *b ? 1 : 0);
        case ast::BinOp::Lt: return ConstVal::ofNumber(*a < *b ? 1 : 0);
        case ast::BinOp::Le: return ConstVal::ofNumber(*a <= *b ? 1 : 0);
        case ast::BinOp::Gt: return ConstVal::ofNumber(*a > *b ? 1 : 0);
        case ast::BinOp::Ge: return ConstVal::ofNumber(*a >= *b ? 1 : 0);
      }
      return std::nullopt;
    }

    case ExprKind::Select:
    case ExprKind::Star:
      diags_.error(Diag::NotAConstant, e.loc,
                   "not a constant expression");
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace zeus

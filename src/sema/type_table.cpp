#include "src/sema/type_table.h"

#include <cassert>
#include <cstdint>

namespace zeus {

TypeTable::TypeTable(DiagnosticEngine& diags, Limits limits,
                     ResourceUsage* usage)
    : diags_(diags), limits_(limits), usage_(usage), constEval_(diags) {
  Type* b = newType();
  b->kind = Type::Kind::Basic;
  b->basic = BasicKind::Boolean;
  b->name = "boolean";
  b->numBasic = 1;
  boolean_ = b;

  Type* m = newType();
  m->kind = Type::Kind::Basic;
  m->basic = BasicKind::Multiplex;
  m->name = "multiplex";
  m->numBasic = 1;
  multiplex_ = m;

  Type* v = newType();
  v->kind = Type::Kind::Basic;
  v->basic = BasicKind::Virtual;
  v->name = "virtual";
  v->numBasic = 0;
  virtual_ = v;

  // COMPONENT REG(IN in: boolean; OUT out: boolean)  (§5.1)
  Type* r = newType();
  r->kind = Type::Kind::Component;
  r->builtin = BuiltinComponent::Reg;
  r->hasBody = true;  // connectable like a component with a body
  r->name = "REG";
  r->fields.push_back({"in", ast::ParamMode::In, boolean_, {}});
  r->fields.push_back({"out", ast::ParamMode::Out, boolean_, {}});
  r->numBasic = 2;
  reg_ = r;
}

Type* TypeTable::newType() {
  types_.push_back(std::make_unique<Type>());
  if (usage_) usage_->typesInstantiated = types_.size();
  return types_.back().get();
}

Env* TypeTable::makeEnv(const Env* parent) {
  envs_.push_back(std::make_unique<Env>(parent));
  return envs_.back().get();
}

const Type* TypeTable::makeArray(int64_t lo, int64_t hi, const Type* elem) {
  Type* t = newType();
  t->kind = Type::Kind::Array;
  t->lo = lo;
  t->hi = hi;
  t->elem = elem;
  t->name = "ARRAY[" + std::to_string(lo) + ".." + std::to_string(hi) +
            "] OF " + (elem ? elem->name : "<error>");
  // Saturate instead of wrapping: nested giant bounds overflow size_t, and
  // a wrapped numBasic would defeat the elaborator's net budget check.
  if (hi < lo) {
    t->numBasic = 0;
  } else {
    size_t len = static_cast<size_t>(static_cast<uint64_t>(hi) -
                                     static_cast<uint64_t>(lo) + 1);
    size_t per = elem ? elem->numBasic : 0;
    if (per != 0 && len > SIZE_MAX / per) {
      t->numBasic = SIZE_MAX;
    } else {
      t->numBasic = len * per;
    }
  }
  return t;
}

const Type* TypeTable::instantiateNamed(const std::string& name,
                                        const std::vector<int64_t>& args,
                                        const Env& env, SourceLoc loc) {
  if (const TypeBinding* tb = env.lookupType(name)) {
    const ast::Decl* decl = tb->decl;
    if (decl->typeFormals.size() != args.size()) {
      diags_.error(Diag::WrongArgumentCount, loc,
                   "type '" + name + "' expects " +
                       std::to_string(decl->typeFormals.size()) +
                       " parameter(s), got " + std::to_string(args.size()));
      return nullptr;
    }
    auto key = std::make_pair(decl, args);
    if (auto it = namedCache_.find(key); it != namedCache_.end())
      return it->second;

    if (types_.size() > limits_.maxTypes) {
      diags_.error(Diag::TypeBudgetExceeded, loc,
                   "more than " + std::to_string(limits_.maxTypes) +
                       " instantiated types; is '" + name +
                       "' expanding without bound?");
      return nullptr;
    }
    if (++depth_ > limits_.maxTypeDepth) {
      --depth_;
      diags_.error(Diag::RecursionTooDeep, loc,
                   "type instantiation recursion too deep at '" + name + "'");
      return nullptr;
    }
    if (usage_) usage_->notePeak(usage_->typeDepthPeak, depth_);
    Env* bindEnv = makeEnv(tb->declEnv);
    for (size_t i = 0; i < args.size(); ++i)
      bindEnv->defineLoopVar(decl->typeFormals[i], args[i]);

    const Type* t = resolve(*decl->type, *bindEnv);
    --depth_;
    if (!t) return nullptr;

    // Give the instantiation a readable name (tree(4)).
    if (t->name.empty() || t->name == "COMPONENT") {
      std::string display = name;
      if (!args.empty()) {
        display += "(";
        for (size_t i = 0; i < args.size(); ++i) {
          if (i) display += ",";
          display += std::to_string(args[i]);
        }
        display += ")";
      }
      const_cast<Type*>(t)->name = display;
    }
    namedCache_.emplace(std::move(key), t);
    return t;
  }

  // Predefined pervasive types.
  if (args.empty()) {
    if (name == "boolean") return boolean_;
    if (name == "multiplex") return multiplex_;
    if (name == "virtual") return virtual_;
    if (name == "REG") return reg_;
  }
  diags_.error(Diag::NotAType, loc, "unknown type '" + name + "'");
  return nullptr;
}

const Type* TypeTable::resolve(const ast::TypeExpr& te, const Env& env) {
  switch (te.kind) {
    case ast::TypeExprKind::Named: {
      std::vector<int64_t> args;
      for (const ast::ExprPtr& a : te.args) {
        auto v = constEval_.evalNumber(*a, env);
        if (!v) return nullptr;
        args.push_back(*v);
      }
      return instantiateNamed(te.name, args, env, te.loc);
    }
    case ast::TypeExprKind::Array: {
      auto lo = constEval_.evalNumber(*te.lo, env);
      auto hi = constEval_.evalNumber(*te.hi, env);
      if (!lo || !hi) return nullptr;
      const Type* elem = resolve(*te.elem, env);
      if (!elem) return nullptr;
      return makeArray(*lo, *hi, elem);
    }
    case ast::TypeExprKind::Component:
      return resolveComponent(te, env);
  }
  return nullptr;
}

const Type* TypeTable::resolveComponent(const ast::TypeExpr& te,
                                        const Env& env) {
  auto key = std::make_pair(&te, &env);
  if (auto it = anonCache_.find(key); it != anonCache_.end())
    return it->second;

  Type* t = newType();
  t->kind = Type::Kind::Component;
  t->def = &te;
  t->hasBody = te.hasBody;
  t->name = "COMPONENT";
  anonCache_.emplace(key, t);  // insert early: field types may not recurse,
                               // but diagnostics paths are simpler this way

  bool ok = true;
  for (const ast::FParam& p : te.params) {
    const Type* ft = resolve(*p.type, env);
    if (!ft) {
      ok = false;
      continue;
    }
    for (const std::string& n : p.names) {
      if (t->findField(n)) {
        diags_.error(Diag::DuplicateDeclaration, p.loc,
                     "duplicate parameter name '" + n + "'");
        ok = false;
        continue;
      }
      t->fields.push_back({n, p.mode, ft, p.loc});
      t->numBasic += ft->numBasic;
    }
  }

  if (te.resultType) {
    t->resultType = resolve(*te.resultType, env);
    if (!t->resultType) ok = false;
  }

  if (te.hasBody) {
    Env* bodyEnv = makeEnv(&env);
    if (te.hasUses) {
      bodyEnv->restrictUses(
          std::set<std::string>(te.uses.begin(), te.uses.end()));
    }
    t->bodyEnv = bodyEnv;
  } else {
    // A record type of signals; result types on records are meaningless.
    if (te.resultType) {
      diags_.error(Diag::RecordTypeHasBody, te.loc,
                   "a component type without body cannot have a result type");
      ok = false;
    }
  }

  if (!ok) {
    anonCache_[key] = nullptr;
    return nullptr;
  }
  return t;
}

void TypeTable::flatten(const Type& t, ast::ParamMode inherited,
                        const std::string& prefix,
                        std::vector<FlatBit>& out) const {
  switch (t.kind) {
    case Type::Kind::Basic:
      if (t.basic == BasicKind::Virtual) return;  // replaced before use
      out.push_back({prefix, t.basic, inherited});
      return;
    case Type::Kind::Array:
      // Nothing to emit for elements without basic substructure; skipping
      // also keeps ARRAY[1..huge] OF virtual from spinning this loop.
      if (t.hi < t.lo || !t.elem || t.elem->numBasic == 0) return;
      for (int64_t i = t.lo;; ++i) {
        flatten(*t.elem, inherited,
                prefix + "[" + std::to_string(i) + "]", out);
        if (i >= t.hi) break;  // avoids ++i overflow at INT64_MAX
      }
      return;
    case Type::Kind::Component:
      for (const Field& f : t.fields) {
        // The IN or OUT property is inherited by substructures (§3.2);
        // an explicit IN/OUT on a field overrides an inherited INOUT.
        ast::ParamMode mode = f.mode;
        if (mode == ast::ParamMode::InOut) mode = inherited;
        flatten(*f.type, mode, prefix + "." + f.name, out);
      }
      return;
  }
}

}  // namespace zeus

#include "src/sema/env.h"

namespace zeus {

bool Env::defineConst(const std::string& name, ConstVal value) {
  if (definesLocally(name)) return false;
  consts_.emplace(name, std::move(value));
  return true;
}

bool Env::defineType(const std::string& name, TypeBinding binding) {
  if (definesLocally(name)) return false;
  types_.emplace(name, binding);
  return true;
}

bool Env::defineLoopVar(const std::string& name, int64_t value) {
  if (definesLocally(name)) return false;
  loopVars_.emplace(name, value);
  return true;
}

bool Env::definesLocally(const std::string& name) const {
  return consts_.count(name) || types_.count(name) || loopVars_.count(name);
}

const ConstVal* Env::lookupConst(const std::string& name) const {
  for (const Env* e = this; e; e = e->parent_) {
    if (auto it = e->consts_.find(name); it != e->consts_.end())
      return &it->second;
    if (e->definesLocally(name)) return nullptr;  // shadowed by other kind
    if (!e->allowsOuter(name)) return nullptr;
  }
  return nullptr;
}

const TypeBinding* Env::lookupType(const std::string& name) const {
  for (const Env* e = this; e; e = e->parent_) {
    if (auto it = e->types_.find(name); it != e->types_.end())
      return &it->second;
    if (e->definesLocally(name)) return nullptr;
    if (!e->allowsOuter(name)) return nullptr;
  }
  return nullptr;
}

std::optional<int64_t> Env::lookupLoopVar(const std::string& name) const {
  for (const Env* e = this; e; e = e->parent_) {
    if (auto it = e->loopVars_.find(name); it != e->loopVars_.end())
      return it->second;
    if (e->definesLocally(name)) return std::nullopt;
    if (!e->allowsOuter(name)) return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace zeus

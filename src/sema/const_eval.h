// Compile-time evaluation of Zeus constant expressions (§3.1).
//
// Numeric expressions follow Modula-2: DIV/MOD are floor division, AND/OR/
// NOT act on truth values, relations yield 0/1.  Signal constants are
// nested tuples over {0, 1, UNDEF, NOINFL}; indexing a signal constant with
// a numeric constant selects an element (1-based, as in the mux4 example).
// The predefined constant functions are BIN, min, max and odd.
#pragma once

#include <optional>

#include "src/ast/ast.h"
#include "src/sema/env.h"
#include "src/support/diagnostics.h"

namespace zeus {

class ConstEval {
 public:
  explicit ConstEval(DiagnosticEngine& diags) : diags_(diags) {}

  /// Evaluates a constant expression.  Reports a diagnostic and returns
  /// nullopt on failure.
  std::optional<ConstVal> eval(const ast::Expr& e, const Env& env);

  /// Evaluates an expression that must be numeric.
  std::optional<int64_t> evalNumber(const ast::Expr& e, const Env& env);

  /// Builds the BIN(value, bits) signal constant: `bits` booleans,
  /// index 1 = least significant bit.
  static SigConst binConst(int64_t value, int64_t bits);

 private:
  DiagnosticEngine& diags_;
};

}  // namespace zeus

// The layout solver (§6): evaluates ORDER / boundary / orientation /
// replication statements of every materialised instance bottom-up and
// produces absolute bounding rectangles.
//
// Sizes are in abstract units: a component without layout information of
// its own (or whose layout places nothing) occupies a 1×1 cell; a
// component with layout occupies the bounding box of what its layout
// places.  Instances never mentioned in any layout statement receive no
// placement — the language specifies only relative positions of what is
// mentioned.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/elab/design.h"
#include "src/layout/geometry.h"
#include "src/sema/const_eval.h"
#include "src/support/diagnostics.h"

namespace zeus {

struct PlacedInstance {
  const InstanceData* inst = nullptr;
  Rect rect;
  Orientation orientation = Orientation::Identity;
  bool leaf = false;  ///< the instance placed nothing itself (a unit cell)
};

struct PinPlacement {
  std::string name;  ///< pin (formal parameter path) as written
  ast::BoundarySide side;
  int order = 0;  ///< position along the side
};

struct LayoutResult {
  std::vector<PlacedInstance> placed;  ///< absolute coordinates
  Rect bounds;
  std::map<std::string, std::vector<PinPlacement>> pinsByInstance;

  [[nodiscard]] const PlacedInstance* find(const std::string& path) const {
    for (const PlacedInstance& p : placed)
      if (p.inst->path == path) return &p;
    return nullptr;
  }
  /// Number of placed instances that placed nothing themselves (cells).
  [[nodiscard]] size_t leafCount() const;
  /// True if any two placed leaf cells overlap.
  [[nodiscard]] bool hasOverlaps(std::string* description = nullptr) const;
};

class LayoutSolver {
 public:
  LayoutSolver(const Design& design, DiagnosticEngine& diags);

  LayoutResult solve();

 private:
  struct Box {
    int64_t w = 0;
    int64_t h = 0;
    std::vector<PlacedInstance> children;  ///< relative to box origin
    bool isLeaf = true;
  };
  struct Scope {
    const InstanceData* inst;
    Env* env;
    std::vector<Obj*> withStack;
  };

  Box solveInstance(const InstanceData& inst, SourceLoc loc);
  void layoutList(Scope& scope, const std::vector<ast::LayoutStmtPtr>& stmts,
                  std::vector<Box>& items, const InstanceData& owner);
  Box packItems(std::vector<Box> items, Direction dir);
  std::vector<Obj*> resolveLayoutSignal(Scope& scope, const ast::Expr& e);
  void recordPins(Scope& scope, const InstanceData& owner,
                  ast::BoundarySide side,
                  const std::vector<ast::LayoutStmtPtr>& body);

  const Design& design_;
  DiagnosticEngine& diags_;
  ConstEval ceval_;
  std::deque<Env> envs_;
  std::map<const InstanceData*, Box> memo_;
  LayoutResult result_;
};

/// Convenience: solve the layout of an elaborated design.
LayoutResult solveLayout(const Design& design, DiagnosticEngine& diags);

}  // namespace zeus

#include "src/layout/geometry.h"

namespace zeus {

std::optional<Direction> directionFromName(std::string_view name) {
  if (name == "toptobottom") return Direction::TopToBottom;
  if (name == "bottomtotop") return Direction::BottomToTop;
  if (name == "lefttoright") return Direction::LeftToRight;
  if (name == "righttoleft") return Direction::RightToLeft;
  if (name == "toplefttobottomright") return Direction::TopLeftToBottomRight;
  if (name == "bottomrighttotopleft") return Direction::BottomRightToTopLeft;
  if (name == "toprighttobottomleft") return Direction::TopRightToBottomLeft;
  if (name == "bottomlefttotopright") return Direction::BottomLeftToTopRight;
  return std::nullopt;
}

std::string_view directionName(Direction d) {
  switch (d) {
    case Direction::TopToBottom: return "toptobottom";
    case Direction::BottomToTop: return "bottomtotop";
    case Direction::LeftToRight: return "lefttoright";
    case Direction::RightToLeft: return "righttoleft";
    case Direction::TopLeftToBottomRight: return "toplefttobottomright";
    case Direction::BottomRightToTopLeft: return "bottomrighttotopleft";
    case Direction::TopRightToBottomLeft: return "toprighttobottomleft";
    case Direction::BottomLeftToTopRight: return "bottomlefttotopright";
  }
  return "?";
}

std::optional<Orientation> orientationFromName(std::string_view name) {
  if (name.empty()) return Orientation::Identity;
  if (name == "rotate90") return Orientation::Rotate90;
  if (name == "rotate180") return Orientation::Rotate180;
  if (name == "rotate270") return Orientation::Rotate270;
  if (name == "flip0") return Orientation::Flip0;
  if (name == "flip45") return Orientation::Flip45;
  if (name == "flip90") return Orientation::Flip90;
  if (name == "flip135") return Orientation::Flip135;
  return std::nullopt;
}

std::string_view orientationName(Orientation o) {
  switch (o) {
    case Orientation::Identity: return "";
    case Orientation::Rotate90: return "rotate90";
    case Orientation::Rotate180: return "rotate180";
    case Orientation::Rotate270: return "rotate270";
    case Orientation::Flip0: return "flip0";
    case Orientation::Flip45: return "flip45";
    case Orientation::Flip90: return "flip90";
    case Orientation::Flip135: return "flip135";
  }
  return "?";
}

void orientedSize(Orientation o, int64_t w, int64_t h, int64_t& ow,
                  int64_t& oh) {
  switch (o) {
    case Orientation::Rotate90:
    case Orientation::Rotate270:
    case Orientation::Flip45:
    case Orientation::Flip135:
      ow = h;
      oh = w;
      return;
    default:
      ow = w;
      oh = h;
      return;
  }
}

Rect orientRect(Orientation o, const Rect& r, int64_t w, int64_t h) {
  switch (o) {
    case Orientation::Identity:
      return r;
    case Orientation::Rotate90:  // counter-clockwise
      return {r.y, w - r.x - r.w, r.h, r.w};
    case Orientation::Rotate180:
      return {w - r.x - r.w, h - r.y - r.h, r.w, r.h};
    case Orientation::Rotate270:
      return {h - r.y - r.h, r.x, r.h, r.w};
    case Orientation::Flip0:  // mirror about horizontal axis
      return {r.x, h - r.y - r.h, r.w, r.h};
    case Orientation::Flip90:  // mirror about vertical axis
      return {w - r.x - r.w, r.y, r.w, r.h};
    case Orientation::Flip45:  // transpose
      return {r.y, r.x, r.h, r.w};
    case Orientation::Flip135:  // anti-transpose
      return {h - r.y - r.h, w - r.x - r.w, r.h, r.w};
  }
  return r;
}

}  // namespace zeus

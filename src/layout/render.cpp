#include "src/layout/render.h"

#include <algorithm>

namespace zeus {

std::string renderAscii(const LayoutResult& layout) {
  int64_t w = layout.bounds.w;
  int64_t h = layout.bounds.h;
  if (w <= 0 || h <= 0) return "(empty layout)\n";
  if (w > 400 || h > 200) {
    return "(layout too large to draw: " + std::to_string(w) + "x" +
           std::to_string(h) + " cells)\n";
  }
  std::vector<std::string> grid(static_cast<size_t>(h),
                                std::string(static_cast<size_t>(w), '.'));
  for (const PlacedInstance& p : layout.placed) {
    if (!p.leaf) continue;
    if (p.rect.x < 0 || p.rect.y < 0 || p.rect.x >= w || p.rect.y >= h)
      continue;
    // Label with the last letter of the instance's type name.
    char c = '#';
    if (p.inst && p.inst->type && !p.inst->type->name.empty()) {
      for (char ch : p.inst->type->name) {
        if (ch == '(') break;
        c = ch;
      }
    }
    grid[static_cast<size_t>(p.rect.y)][static_cast<size_t>(p.rect.x)] = c;
  }
  std::string out;
  for (const std::string& row : grid) {
    out += row;
    out += '\n';
  }
  return out;
}

std::string renderSvg(const LayoutResult& layout, int cellSize) {
  int64_t w = layout.bounds.w * cellSize;
  int64_t h = layout.bounds.h * cellSize;
  std::string out = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    std::to_string(w) + "\" height=\"" + std::to_string(h) +
                    "\">\n";
  for (const PlacedInstance& p : layout.placed) {
    bool leaf = p.leaf;
    out += "  <rect x=\"" + std::to_string(p.rect.x * cellSize) + "\" y=\"" +
           std::to_string(p.rect.y * cellSize) + "\" width=\"" +
           std::to_string(p.rect.w * cellSize) + "\" height=\"" +
           std::to_string(p.rect.h * cellSize) + "\" fill=\"" +
           (leaf ? "#9ecae1" : "none") + "\" stroke=\"#333\">";
    out += "<title>" + (p.inst ? p.inst->path : std::string("?")) +
           "</title></rect>\n";
  }
  out += "</svg>\n";
  return out;
}

}  // namespace zeus

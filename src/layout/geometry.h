// Geometry primitives for the Zeus layout language (§6).
//
// Layout semantics are purely relative: ORDER statements separate bounding
// rectangles along one of eight directions, and orientation changes apply
// the non-identity elements of the dihedral group D4.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace zeus {

struct Rect {
  int64_t x = 0;
  int64_t y = 0;  ///< y grows downward (top-to-bottom)
  int64_t w = 0;
  int64_t h = 0;

  [[nodiscard]] int64_t right() const { return x + w; }
  [[nodiscard]] int64_t bottom() const { return y + h; }
  [[nodiscard]] int64_t area() const { return w * h; }
  [[nodiscard]] bool overlaps(const Rect& o) const {
    return x < o.right() && o.x < right() && y < o.bottom() && o.y < bottom();
  }
  friend bool operator==(const Rect&, const Rect&) = default;
};

/// The eight directions of separation (§6.2).
enum class Direction {
  TopToBottom,
  BottomToTop,
  LeftToRight,
  RightToLeft,
  TopLeftToBottomRight,
  BottomRightToTopLeft,
  TopRightToBottomLeft,
  BottomLeftToTopRight,
};

std::optional<Direction> directionFromName(std::string_view name);
std::string_view directionName(Direction d);

/// Orientation changes: all elements of the dihedral group except the
/// identity (§6.3, counter-clockwise rotations).
enum class Orientation {
  Identity,  ///< no change (empty orientation in the source)
  Rotate90,
  Rotate180,
  Rotate270,
  Flip0,    ///< mirror about the horizontal axis
  Flip45,   ///< mirror about the main diagonal (transpose)
  Flip90,   ///< mirror about the vertical axis
  Flip135,  ///< mirror about the anti-diagonal
};

std::optional<Orientation> orientationFromName(std::string_view name);
std::string_view orientationName(Orientation o);

/// Transformed size of a w×h box under an orientation.
void orientedSize(Orientation o, int64_t w, int64_t h, int64_t& ow,
                  int64_t& oh);

/// Maps a child rectangle inside a w×h box through an orientation change
/// of the whole box.
Rect orientRect(Orientation o, const Rect& r, int64_t w, int64_t h);

}  // namespace zeus

// Renderers for solved layouts: ASCII floorplans for terminals and SVG for
// documentation.
#pragma once

#include <string>

#include "src/layout/solver.h"

namespace zeus {

/// Renders unit cells as single characters on a grid; enclosing boxes are
/// omitted.  Suitable for layouts up to ~200×60 cells.
std::string renderAscii(const LayoutResult& layout);

/// Renders every placed instance as an SVG rectangle with a tooltip.
std::string renderSvg(const LayoutResult& layout, int cellSize = 24);

}  // namespace zeus

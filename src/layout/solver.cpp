#include "src/layout/solver.h"

#include <algorithm>

#include "src/ast/printer.h"

namespace zeus {

size_t LayoutResult::leafCount() const {
  size_t n = 0;
  for (const PlacedInstance& p : placed) {
    if (p.leaf) ++n;
  }
  return n;
}

bool LayoutResult::hasOverlaps(std::string* description) const {
  // Only unit cells are compared: enclosing boxes legitimately contain
  // their children.
  std::vector<const PlacedInstance*> cells;
  for (const PlacedInstance& p : placed) {
    if (p.leaf) cells.push_back(&p);
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    for (size_t j = i + 1; j < cells.size(); ++j) {
      if (cells[i]->rect.overlaps(cells[j]->rect) &&
          cells[i]->inst != cells[j]->inst) {
        if (description) {
          *description = "'" + cells[i]->inst->path + "' overlaps '" +
                         cells[j]->inst->path + "'";
        }
        return true;
      }
    }
  }
  return false;
}

LayoutSolver::LayoutSolver(const Design& design, DiagnosticEngine& diags)
    : design_(design), diags_(diags), ceval_(diags) {}

LayoutResult solveLayout(const Design& design, DiagnosticEngine& diags) {
  LayoutSolver solver(design, diags);
  return solver.solve();
}

LayoutResult LayoutSolver::solve() {
  if (!design_.top) return result_;
  Box box = solveInstance(*design_.top, design_.top->loc);
  result_.bounds = {0, 0, box.w, box.h};
  result_.placed = std::move(box.children);
  PlacedInstance top;
  top.inst = design_.top;
  top.rect = result_.bounds;
  result_.placed.insert(result_.placed.begin(), top);
  return result_;
}

LayoutSolver::Box LayoutSolver::solveInstance(const InstanceData& inst,
                                              SourceLoc loc) {
  (void)loc;
  if (auto it = memo_.find(&inst); it != memo_.end()) return it->second;
  Box box;
  const ast::TypeExpr* def = inst.type ? inst.type->def : nullptr;
  bool hasLayout =
      def && (!def->headerLayout.empty() || !def->bodyLayout.empty());
  if (!hasLayout || !inst.env) {
    box.w = 1;
    box.h = 1;
    box.isLeaf = true;
    memo_[&inst] = box;
    return box;
  }
  envs_.emplace_back(inst.env);
  Scope scope{&inst, &envs_.back(), {}};
  std::vector<Box> items;
  layoutList(scope, def->headerLayout, items, inst);
  layoutList(scope, def->bodyLayout, items, inst);
  box = packItems(std::move(items), Direction::LeftToRight);
  if (box.children.empty()) {
    box.w = 1;
    box.h = 1;
    box.isLeaf = true;
  }
  memo_[&inst] = box;
  return box;
}

void LayoutSolver::layoutList(Scope& scope,
                              const std::vector<ast::LayoutStmtPtr>& stmts,
                              std::vector<Box>& items,
                              const InstanceData& owner) {
  using ast::LayoutStmtKind;
  for (const ast::LayoutStmtPtr& sp : stmts) {
    const ast::LayoutStmt& s = *sp;
    switch (s.kind) {
      // A replacement statement (`m[i,j] = black`) both replaces the
      // virtual signal (done during elaboration) and places the resulting
      // instance like a plain reference (grammar rule `basic`).
      case LayoutStmtKind::Replacement:
      case LayoutStmtKind::Ref: {
        auto orient = orientationFromName(s.orientation);
        if (!orient) {
          diags_.error(Diag::LayoutUnknownOrientation, s.loc,
                       "unknown orientation change '" + s.orientation + "'");
          orient = Orientation::Identity;
        }
        std::vector<Obj*> objs = resolveLayoutSignal(scope, *s.signal);
        for (Obj* o : objs) {
          if (o->kind != ObjKind::Instance || !o->inst) continue;  // pruned
          Box child = solveInstance(*o->inst, s.loc);
          int64_t ow, oh;
          orientedSize(*orient, child.w, child.h, ow, oh);
          Box item;
          item.w = ow;
          item.h = oh;
          item.isLeaf = false;
          PlacedInstance self;
          self.inst = o->inst.get();
          self.rect = {0, 0, ow, oh};
          self.orientation = *orient;
          self.leaf = child.isLeaf;
          item.children.push_back(self);
          for (const PlacedInstance& pc : child.children) {
            PlacedInstance t = pc;
            t.rect = orientRect(*orient, pc.rect, child.w, child.h);
            item.children.push_back(t);
          }
          items.push_back(std::move(item));
        }
        break;
      }
      case LayoutStmtKind::Order: {
        auto dir = directionFromName(s.direction);
        if (!dir) {
          diags_.error(Diag::LayoutUnknownDirection, s.loc,
                       "unknown direction of separation '" + s.direction +
                           "'");
          dir = Direction::LeftToRight;
        }
        std::vector<Box> sub;
        layoutList(scope, s.body, sub, owner);
        items.push_back(packItems(std::move(sub), *dir));
        break;
      }
      case LayoutStmtKind::For: {
        auto from = ceval_.evalNumber(*s.from, *scope.env);
        auto to = ceval_.evalNumber(*s.to, *scope.env);
        if (!from || !to) break;
        Env* saved = scope.env;
        auto iterate = [&](int64_t i) {
          envs_.emplace_back(saved);
          envs_.back().defineLoopVar(s.loopVar, i);
          scope.env = &envs_.back();
          layoutList(scope, s.body, items, owner);
        };
        if (s.downto) {
          for (int64_t i = *from; i >= *to; --i) iterate(i);
        } else {
          for (int64_t i = *from; i <= *to; ++i) iterate(i);
        }
        scope.env = saved;
        break;
      }
      case LayoutStmtKind::When: {
        bool taken = false;
        for (const ast::LayoutStmt::WhenArm& arm : s.whenArms) {
          auto c = ceval_.evalNumber(*arm.cond, *scope.env);
          if (!c) return;
          if (*c != 0) {
            layoutList(scope, arm.body, items, owner);
            taken = true;
            break;
          }
        }
        if (!taken) layoutList(scope, s.otherwiseBody, items, owner);
        break;
      }
      case LayoutStmtKind::With: {
        std::vector<Obj*> objs = resolveLayoutSignal(scope, *s.withSignal);
        if (objs.size() != 1) {
          diags_.error(Diag::LayoutUnknownSignal, s.loc,
                       "WITH requires a single signal");
          break;
        }
        scope.withStack.push_back(objs[0]);
        layoutList(scope, s.body, items, owner);
        scope.withStack.pop_back();
        break;
      }
      case LayoutStmtKind::Boundary:
        recordPins(scope, owner, s.side, s.body);
        break;
    }
  }
}

void LayoutSolver::recordPins(Scope& scope, const InstanceData& owner,
                              ast::BoundarySide side,
                              const std::vector<ast::LayoutStmtPtr>& body) {
  (void)scope;
  auto& pins = result_.pinsByInstance[owner.path];
  for (const ast::LayoutStmtPtr& sp : body) {
    if (sp->kind != ast::LayoutStmtKind::Ref || !sp->signal) continue;
    PinPlacement p;
    p.name = ast::dump(*sp->signal);
    p.side = side;
    p.order = static_cast<int>(pins.size());
    pins.push_back(std::move(p));
  }
}

LayoutSolver::Box LayoutSolver::packItems(std::vector<Box> items,
                                          Direction dir) {
  int sx = 0, sy = 0;
  switch (dir) {
    case Direction::LeftToRight: sx = 1; break;
    case Direction::RightToLeft: sx = -1; break;
    case Direction::TopToBottom: sy = 1; break;
    case Direction::BottomToTop: sy = -1; break;
    case Direction::TopLeftToBottomRight: sx = 1; sy = 1; break;
    case Direction::BottomRightToTopLeft: sx = -1; sy = -1; break;
    case Direction::TopRightToBottomLeft: sx = -1; sy = 1; break;
    case Direction::BottomLeftToTopRight: sx = 1; sy = -1; break;
  }
  Box out;
  out.isLeaf = false;
  int64_t cx = 0, cy = 0;
  struct Placed {
    int64_t x, y;
    Box box;
  };
  std::vector<Placed> placed;
  for (Box& item : items) {
    int64_t x = 0, y = 0;
    if (sx > 0) {
      x = cx;
      cx += item.w;
    } else if (sx < 0) {
      cx -= item.w;
      x = cx;
    }
    if (sy > 0) {
      y = cy;
      cy += item.h;
    } else if (sy < 0) {
      cy -= item.h;
      y = cy;
    }
    placed.push_back({x, y, std::move(item)});
  }
  int64_t minX = 0, minY = 0, maxX = 0, maxY = 0;
  bool first = true;
  for (const Placed& p : placed) {
    if (first) {
      minX = p.x;
      minY = p.y;
      maxX = p.x + p.box.w;
      maxY = p.y + p.box.h;
      first = false;
    } else {
      minX = std::min(minX, p.x);
      minY = std::min(minY, p.y);
      maxX = std::max(maxX, p.x + p.box.w);
      maxY = std::max(maxY, p.y + p.box.h);
    }
  }
  if (first) return out;  // nothing placed
  out.w = maxX - minX;
  out.h = maxY - minY;
  for (Placed& p : placed) {
    for (PlacedInstance& c : p.box.children) {
      c.rect.x += p.x - minX;
      c.rect.y += p.y - minY;
      out.children.push_back(c);
    }
  }
  return out;
}

std::vector<Obj*> LayoutSolver::resolveLayoutSignal(Scope& scope,
                                                    const ast::Expr& e) {
  using ast::ExprKind;
  std::vector<Obj*> out;
  switch (e.kind) {
    case ExprKind::NameRef: {
      for (auto it = scope.withStack.rbegin(); it != scope.withStack.rend();
           ++it) {
        Obj* base = *it;
        if (base->kind == ObjKind::Instance && base->inst) {
          if (Member* m = base->inst->findMember(e.name)) {
            out.push_back(&m->obj);
            return out;
          }
        }
      }
      if (Member* m =
              const_cast<InstanceData*>(scope.inst)->findMember(e.name)) {
        out.push_back(&m->obj);
        return out;
      }
      diags_.warning(Diag::LayoutUnknownSignal, e.loc,
                     "layout reference to unknown signal '" + e.name + "'");
      return out;
    }
    case ExprKind::Select: {
      std::vector<Obj*> bases = resolveLayoutSignal(scope, *e.base);
      for (Obj* b : bases) {
        std::vector<Obj*> expand{b};
        // Arrays distribute over the selection.
        while (!expand.empty()) {
          Obj* o = expand.back();
          expand.pop_back();
          if (o->kind == ObjKind::Array) {
            for (Obj& el : o->elems) expand.push_back(&el);
          } else if (o->kind == ObjKind::Instance && o->inst) {
            if (Member* m = o->inst->findMember(e.name)) out.push_back(&m->obj);
          } else if (o->kind == ObjKind::Record) {
            const Type* t = o->type;
            for (size_t i = 0; i < t->fields.size(); ++i) {
              if (t->fields[i].name == e.name) out.push_back(&o->elems[i]);
            }
          }
        }
      }
      return out;
    }
    case ExprKind::Index: {
      std::vector<Obj*> bases = resolveLayoutSignal(scope, *e.base);
      auto lo = ceval_.evalNumber(*e.indexLo, *scope.env);
      if (!lo) return out;
      std::optional<int64_t> hi;
      if (e.indexHi) {
        hi = ceval_.evalNumber(*e.indexHi, *scope.env);
        if (!hi) return out;
      }
      for (Obj* b : bases) {
        if (b->kind != ObjKind::Array) continue;
        const Type* t = b->type;
        int64_t first = *lo, last = hi ? *hi : *lo;
        for (int64_t i = first; i <= last; ++i) {
          if (i < t->lo || i > t->hi) continue;
          out.push_back(&b->elems[static_cast<size_t>(i - t->lo)]);
        }
      }
      return out;
    }
    default:
      diags_.warning(Diag::LayoutUnknownSignal, e.loc,
                     "unsupported layout signal expression");
      return out;
  }
}

}  // namespace zeus

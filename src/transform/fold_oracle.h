// The constant-folding / driver-activity oracle over the §8 semantics
// graph — the single source of truth shared by the lint rules
// (ConstantGate, DeadBranch, ConstantRegister, UnreadNet) and the
// optimization pipeline's const-fold and DCE passes, so the two can never
// disagree about what is constant, active or dead.
//
// *Constancy* answers "does this net/node take the same Logic value on
// every cycle, whatever the inputs do?"  *Activity* answers "does this
// driver contribute an active (0/1/UNDEF) value on every cycle?" — the §8
// resolution rule only collides *active* contributions.  Primary IN ports
// (and CLK/RSET) count as always-active, never-constant sources: a
// testbench drives them.
#pragma once

#include <cstdint>
#include <vector>

#include "src/elab/design.h"
#include "src/sim/graph.h"

namespace zeus {

struct FoldOracle {
  /// Lattice bottom for netConst/nodeConst: not (provably) constant.
  static constexpr int8_t kUnknown = -1;
  static int8_t known(Logic v) { return static_cast<int8_t>(v); }

  const Design& design;
  const SimGraph& g;
  const Netlist& nl;

  std::vector<char> inputAlways;          ///< In-mode port bit or CLK/RSET
  std::vector<char> externallyDrivable;   ///< any port bit or CLK/RSET

  std::vector<int8_t> netConst, nodeConst;  ///< kUnknown or a Logic value
  std::vector<char> netAlways, nodeAlways;  ///< active contribution, every cycle
  std::vector<char> live;  ///< class reaches an OUT/INOUT port (backwards)

  /// Runs fold + liveness eagerly; `g` must be acyclic (callers check
  /// SimGraph::hasCycle first — topological order is the sweep order).
  FoldOracle(const Design& d, const SimGraph& graph);

  [[nodiscard]] uint32_t driverCount(uint32_t dn) const {
    return g.driverStart[dn + 1] - g.driverStart[dn];
  }
  [[nodiscard]] uint32_t consumerCount(uint32_t dn) const {
    return g.consumerStart[dn + 1] - g.consumerStart[dn];
  }

  /// A node the const-fold pass may replace with a CONST: the predefined
  /// gates plus BUF and SWITCH — never REG (state), RANDOM (stream
  /// position is observable) or CONST itself.
  [[nodiscard]] static bool foldable(NodeOp op) {
    switch (op) {
      case NodeOp::Const:
      case NodeOp::Reg:
      case NodeOp::Random: return false;
      default: return true;
    }
  }

 private:
  std::vector<char> netDone;

  void finalizeNet(uint32_t dn);
  void fold();
  void computeLiveness();
};

}  // namespace zeus

// The graph optimization pipeline (ROADMAP item 3): const-fold, dead-node
// elimination and alias-class collapse over the elaborated design, run
// between elaboration and buildSimGraph.  Every pass preserves observable
// behaviour exactly — latched values, SimErrors and RANDOM streams are
// bit-identical at every level — and the post-pass verifier
// (src/transform/verify.h) re-checks the graph from first principles on
// every compile, all levels included.  docs/optimizer.md has the contract.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/elab/design.h"
#include "src/support/diagnostics.h"

namespace zeus {

struct OptOptions {
  /// 0 = verify only (no graph changes); 1 = const-fold + DCE + alias
  /// collapse.  zeusc defaults to 1.
  int level = 1;
};

/// Effect of one pass, for --opt-stats and the bench opt blocks.
struct PassStats {
  std::string pass;
  uint64_t nodesFolded = 0;   ///< gates/switches replaced by CONST
  uint64_t nodesRemoved = 0;  ///< nodes deleted outright
  uint64_t netsDropped = 0;   ///< alias classes losing their dense slot
};

struct OptReport {
  int level = 0;
  bool ran = false;       ///< passes executed (false when hasCycle)
  bool hasCycle = false;  ///< design is cyclic; nothing was touched
  bool verified = false;  ///< post-pass verifier passed
  std::string verifyError;  ///< first violation, when !verified

  uint64_t nodesBefore = 0, nodesAfter = 0;
  uint64_t denseBefore = 0, denseAfter = 0;
  std::vector<PassStats> passes;

  [[nodiscard]] uint64_t totalFolded() const;
  [[nodiscard]] uint64_t totalRemoved() const;
  [[nodiscard]] uint64_t totalDropped() const;

  /// The zeus-opt-v1 JSON object behind `zeusc --opt-stats`
  /// (schema in docs/optimizer.md).
  [[nodiscard]] std::string renderJson(const std::string& designName) const;
};

/// Runs the pipeline in place on `design` and verifies the result.
/// CombinationalLoop (cyclic design) is reported through `diags` exactly
/// once per compilation; a verifier failure reports
/// Diag::OptimizerVerifyFailed (an internal error, never a user error).
/// At level >= 1, Design::optFingerprint becomes nonzero so snapshots
/// taken at different levels can never be cross-restored.
OptReport optimizeDesign(Design& design, DiagnosticEngine& diags,
                         const OptOptions& opts = {});

}  // namespace zeus

#include "src/transform/fold_oracle.h"

#include "src/sim/value.h"

namespace zeus {

FoldOracle::FoldOracle(const Design& d, const SimGraph& graph)
    : design(d), g(graph), nl(d.netlist) {
  const size_t nNets = g.denseCount;
  inputAlways.assign(nNets, 0);
  externallyDrivable.assign(nNets, 0);
  for (const Port& p : design.ports) {
    for (size_t i = 0; i < p.nets.size(); ++i) {
      uint32_t dn = g.dense(p.nets[i]);
      externallyDrivable[dn] = 1;
      if (p.modes[i] == ast::ParamMode::In) inputAlways[dn] = 1;
    }
  }
  for (NetId special : {design.clk, design.rset}) {
    if (special != kNoNet) {
      uint32_t dn = g.dense(special);
      inputAlways[dn] = 1;
      externallyDrivable[dn] = 1;
    }
  }

  fold();
  computeLiveness();
}

/// Folds the class's drivers once all of them have a nodeConst /
/// nodeAlways entry (guaranteed by topological order for non-REG drivers;
/// REG drivers are pre-seeded).
void FoldOracle::finalizeNet(uint32_t dn) {
  if (netDone[dn]) return;
  netDone[dn] = 1;
  if (inputAlways[dn]) netAlways[dn] = 1;
  bool isInput = g.nets[dn].isInput || externallyDrivable[dn];
  uint32_t nDrivers = driverCount(dn);
  if (nDrivers == 0) {
    // An undriven net reads NOINFL every cycle (unless the testbench
    // seeds it through a port).
    if (!isInput) netConst[dn] = known(Logic::NoInfl);
    return;
  }
  Resolution r;
  bool allKnown = true;
  for (uint32_t e = g.driverStart[dn]; e < g.driverStart[dn + 1]; ++e) {
    NodeId d = g.driverNodes[e];
    if (nodeAlways[d]) netAlways[dn] = 1;
    if (nodeConst[d] == kUnknown) allKnown = false;
    else r.add(static_cast<Logic>(nodeConst[d]));
  }
  if (allKnown && !isInput) netConst[dn] = known(r.value);
}

/// One topological sweep computing nodeConst/nodeAlways (and net results
/// on the fly).  Mirrors the firing evaluator's semantics: value.h is the
/// shared source of truth for gate behaviour.
void FoldOracle::fold() {
  netConst.assign(g.denseCount, kUnknown);
  netAlways.assign(g.denseCount, 0);
  netDone.assign(g.denseCount, 0);
  nodeConst.assign(nl.nodeCount(), kUnknown);
  nodeAlways.assign(nl.nodeCount(), 0);
  // REG drivers contribute their stored value, which is never NOINFL
  // (the latch maps NOINFL to UNDEF) — always active, never constant.
  for (NodeId ni : g.regNodes) nodeAlways[ni] = 1;

  std::vector<Logic> vals;
  for (NodeId ni : g.topoOrder) {
    const Node& node = nl.node(ni);
    for (NetId in : node.inputs) finalizeNet(g.dense(in));
    switch (node.op) {
      case NodeOp::Const:
        nodeConst[ni] = known(node.constVal);
        nodeAlways[ni] = node.constVal != Logic::NoInfl;
        break;
      case NodeOp::Random:
        nodeAlways[ni] = 1;
        break;
      case NodeOp::Buf: {
        uint32_t in = g.dense(node.inputs[0]);
        bool outBool = g.nets[g.dense(node.output)].isBool;
        if (netConst[in] != kUnknown) {
          Logic c = static_cast<Logic>(netConst[in]);
          if (outBool && c == Logic::NoInfl) c = Logic::Undef;
          nodeConst[ni] = known(c);
        }
        // A boolean assignee converts NOINFL to UNDEF (§3.2), so the
        // buffer's contribution is active whatever arrives.
        nodeAlways[ni] = outBool || netAlways[in];
        break;
      }
      case NodeOp::And:
      case NodeOp::Or:
      case NodeOp::Nand:
      case NodeOp::Nor: {
        // Short-circuit folding: a constant controlling input (e.g. a 0
        // into AND) fixes the output even with unknown co-inputs.
        nodeAlways[ni] = 1;  // gates output 0/1/UNDEF, never NOINFL
        GateCounters c;
        for (NetId in : node.inputs) {
          int8_t v = netConst[g.dense(in)];
          if (v != kUnknown) c.add(static_cast<Logic>(v));
        }
        Logic out;
        if (gateCanFire(node.op, c,
                        static_cast<uint32_t>(node.inputs.size()), out)) {
          nodeConst[ni] = known(out);
        }
        break;
      }
      case NodeOp::Not:
      case NodeOp::Xor: {
        nodeAlways[ni] = 1;
        vals.clear();
        bool all = true;
        for (NetId in : node.inputs) {
          int8_t c = netConst[g.dense(in)];
          if (c == kUnknown) { all = false; break; }
          vals.push_back(static_cast<Logic>(c));
        }
        if (all) nodeConst[ni] = known(evalGate(node.op, vals));
        break;
      }
      case NodeOp::Equal: {
        nodeAlways[ni] = 1;
        vals.clear();
        bool all = true;
        for (NetId in : node.inputs) {
          int8_t c = netConst[g.dense(in)];
          if (c == kUnknown) { all = false; break; }
          vals.push_back(static_cast<Logic>(c));
        }
        if (all) {
          size_t m = vals.size() / 2;
          nodeConst[ni] = known(
              evalEqual({vals.data(), m}, {vals.data() + m, m}));
        }
        break;
      }
      case NodeOp::Switch: {
        uint32_t guard = g.dense(node.inputs[0]);
        uint32_t data = g.dense(node.inputs[1]);
        int8_t gc = netConst[guard];
        if (gc == known(Logic::Zero)) {
          nodeConst[ni] = known(Logic::NoInfl);  // branch never enabled
        } else if (gc == known(Logic::Undef) ||
                   gc == known(Logic::NoInfl)) {
          nodeConst[ni] = known(Logic::Undef);  // §8: undefined cond
          nodeAlways[ni] = 1;
        } else if (gc == known(Logic::One)) {
          nodeConst[ni] = netConst[data];
          nodeAlways[ni] = netAlways[data];
        }
        break;
      }
      case NodeOp::Reg:
        break;  // pre-seeded, not in topoOrder
    }
  }
  // Nets no non-REG node reads (REG inputs, outputs): fold them too.
  for (uint32_t dn = 0; dn < g.denseCount; ++dn) finalizeNet(dn);
}

/// Backward reachability from the observable frontier: OUT/INOUT port
/// classes.  A register is only observable through its consumers, so a
/// REG whose output cone is dead keeps its whole input cone dead.
void FoldOracle::computeLiveness() {
  live.assign(g.denseCount, 0);
  std::vector<uint32_t> work;
  auto mark = [&](uint32_t dn) {
    if (!live[dn]) {
      live[dn] = 1;
      work.push_back(dn);
    }
  };
  for (const Port& p : design.ports) {
    for (size_t i = 0; i < p.nets.size(); ++i) {
      if (p.modes[i] != ast::ParamMode::In) mark(g.dense(p.nets[i]));
    }
  }
  while (!work.empty()) {
    uint32_t dn = work.back();
    work.pop_back();
    for (uint32_t e = g.driverStart[dn]; e < g.driverStart[dn + 1]; ++e) {
      for (NetId in : nl.node(g.driverNodes[e]).inputs) {
        mark(g.dense(in));
      }
    }
  }
}

}  // namespace zeus

#include "src/transform/pipeline.h"

#include <string>
#include <vector>

#include "src/sim/graph.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"
#include "src/transform/fold_oracle.h"
#include "src/transform/verify.h"

namespace zeus {

namespace {

metrics::Counter optRuns("opt-runs");
metrics::Counter optNodesFolded("opt-nodes-folded");
metrics::Counter optNodesRemoved("opt-nodes-removed");
metrics::Counter optNetsDropped("opt-nets-dropped");
metrics::Counter optVerifyFailures("opt-verify-failures");

// -- pass 1: constant folding -------------------------------------------
//
// Replaces every foldable node whose output value the oracle proved
// constant by a CONST of that value, in place (same NodeId, same output
// net).  Exactness: the oracle's nodeConst is "this node contributes
// exactly v on every cycle" under §8 semantics, and a CONST v contributes
// exactly v and is active iff v != NOINFL — the same activity the folded
// gate had (gates are always-active, a folded SWITCH is active per its
// folded value).  Resolution, contention and REG latching therefore see
// identical inputs.
uint64_t runConstFold(Design& design, const SimGraph& g) {
  ZEUS_TRACE_SPAN("opt-fold", "compile");
  FoldOracle oracle(design, g);
  Netlist& nl = design.netlist;
  uint64_t folded = 0;
  for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
    Node& node = nl.node(ni);
    if (!FoldOracle::foldable(node.op)) continue;
    if (oracle.nodeConst[ni] == FoldOracle::kUnknown) continue;
    node.op = NodeOp::Const;
    node.constVal = static_cast<Logic>(oracle.nodeConst[ni]);
    node.inputs.clear();
    ++folded;
  }
  return folded;
}

// -- pass 2: dead-node elimination --------------------------------------
//
// Removes every node whose effect can never be observed.  Kept roots:
//   * classes of any port (any mode), CLK and RSET — the outside world
//     reads or drives them;
//   * every multi-driven class — its resolution can raise SimContention,
//     and SimErrors are observable output;
// plus, transitively, every driver of a kept class and the input cones of
// those drivers (through REG: the latched value needs its input cone).
// RANDOM nodes are never removed: evaluators draw the shared RNG stream
// in sourceNodes order, so deleting one would shift every later node's
// stream and change -O0/-O1 behaviour.
//
// Two escape hatches keep DCE from deleting a design whole.  A design
// with no ports at all has no observation boundary, so every class is a
// root.  And when the keep rules mark *zero* nodes — the corpus H-tree:
// its OUT is an alias class over empty leaf components, so no driver is
// reachable from any root — the design is pure wiring that exists to be
// probed from inside (netValue, waves, activity profiling, layout), and
// DCE becomes a no-op rather than returning an empty graph.
uint64_t runDce(Design& design, const SimGraph& g) {
  ZEUS_TRACE_SPAN("opt-dce", "compile");
  Netlist& nl = design.netlist;
  std::vector<char> keepNode(nl.nodeCount(), 0);
  std::vector<char> keepClass(g.denseCount, 0);
  std::vector<uint32_t> work;
  auto mark = [&](uint32_t dn) {
    if (!keepClass[dn]) {
      keepClass[dn] = 1;
      work.push_back(dn);
    }
  };
  if (design.ports.empty()) {
    for (uint32_t dn = 0; dn < g.denseCount; ++dn) mark(dn);
  }
  for (const Port& p : design.ports) {
    for (NetId n : p.nets) mark(g.dense(n));
  }
  for (NetId special : {design.clk, design.rset}) {
    if (special != kNoNet) mark(g.dense(special));
  }
  for (uint32_t dn = 0; dn < g.denseCount; ++dn) {
    if (g.nets[dn].multiDriven) mark(dn);
  }
  for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
    if (nl.node(ni).op == NodeOp::Random) keepNode[ni] = 1;
  }
  while (!work.empty()) {
    uint32_t dn = work.back();
    work.pop_back();
    for (uint32_t e = g.driverStart[dn]; e < g.driverStart[dn + 1]; ++e) {
      NodeId d = g.driverNodes[e];
      if (keepNode[d]) continue;
      keepNode[d] = 1;
      for (NetId in : nl.node(d).inputs) mark(g.dense(in));
    }
  }
  uint64_t removed = 0;
  bool anyKept = false;
  for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
    if (keepNode[ni]) {
      anyKept = true;
    } else {
      ++removed;
    }
  }
  if (!anyKept) return 0;  // nothing observable: keep the design whole
  if (removed) nl.removeNodes(keepNode);
  return removed;
}

// -- pass 3: alias-class collapse ---------------------------------------
//
// Rewrites every NetId the design holds (node edges, Obj tree, ports,
// CLK/RSET, SEQUENTIAL groups) to its class root, then flags classes no
// node or port references as simDropped so buildSimGraph gives them no
// dense slot.  Fewer dense slots means smaller per-cycle resolve/latch
// sweeps in every evaluator.
void remapObj(Obj& o, const Netlist& nl) {
  if (o.net != kNoNet) o.net = nl.find(o.net);
  for (Obj& e : o.elems) remapObj(e, nl);
  if (o.inst) {
    for (auto& [name, m] : o.inst->members) remapObj(m.obj, nl);
    for (NetId& n : o.inst->resultNets) n = nl.find(n);
  }
}

uint64_t runAliasCollapse(Design& design) {
  ZEUS_TRACE_SPAN("opt-alias", "compile");
  Netlist& nl = design.netlist;
  nl.canonicalise();
  remapObj(design.topObj, nl);
  for (Port& p : design.ports) {
    for (NetId& n : p.nets) n = nl.find(n);
  }
  if (design.clk != kNoNet) design.clk = nl.find(design.clk);
  if (design.rset != kNoNet) design.rset = nl.find(design.rset);
  for (SeqGroups& sg : design.sequentials) {
    for (auto& grp : sg.groups) {
      for (NetId& n : grp) n = nl.find(n);
    }
  }

  std::vector<char> referenced(nl.netCount(), 0);
  for (const Node& node : nl.nodes()) {
    if (node.output != kNoNet) referenced[nl.find(node.output)] = 1;
    for (NetId in : node.inputs) referenced[nl.find(in)] = 1;
  }
  for (const Port& p : design.ports) {
    for (NetId n : p.nets) referenced[nl.find(n)] = 1;
  }
  for (NetId special : {design.clk, design.rset}) {
    if (special != kNoNet) referenced[nl.find(special)] = 1;
  }
  uint64_t dropped = 0;
  for (NetId i = 0; i < nl.netCount(); ++i) {
    if (nl.find(i) != i) continue;
    if (!referenced[i] && !nl.net(i).simDropped) {
      nl.net(i).simDropped = true;
      ++dropped;
    }
  }
  return dropped;
}

void fnvMix(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 0x100000001B3ull;
  }
}

}  // namespace

uint64_t OptReport::totalFolded() const {
  uint64_t n = 0;
  for (const PassStats& p : passes) n += p.nodesFolded;
  return n;
}
uint64_t OptReport::totalRemoved() const {
  uint64_t n = 0;
  for (const PassStats& p : passes) n += p.nodesRemoved;
  return n;
}
uint64_t OptReport::totalDropped() const {
  uint64_t n = 0;
  for (const PassStats& p : passes) n += p.netsDropped;
  return n;
}

std::string OptReport::renderJson(const std::string& designName) const {
  std::string out = "{\n  \"zeus-opt\": 1,\n  \"design\": \"" +
                    metrics::jsonEscape(designName) + "\",\n";
  out += "  \"level\": " + std::to_string(level) + ",\n";
  out += std::string("  \"ran\": ") + (ran ? "true" : "false") + ",\n";
  out += std::string("  \"verified\": ") + (verified ? "true" : "false") +
         ",\n";
  if (!verifyError.empty()) {
    out += "  \"verify_error\": \"" + metrics::jsonEscape(verifyError) +
           "\",\n";
  }
  out += "  \"nodes\": {\"before\": " + std::to_string(nodesBefore) +
         ", \"after\": " + std::to_string(nodesAfter) + "},\n";
  out += "  \"nets\": {\"before\": " + std::to_string(denseBefore) +
         ", \"after\": " + std::to_string(denseAfter) + "},\n";
  out += "  \"passes\": [";
  for (size_t i = 0; i < passes.size(); ++i) {
    const PassStats& p = passes[i];
    out += i ? ",\n    {" : "\n    {";
    out += "\"pass\": \"" + metrics::jsonEscape(p.pass) + "\"";
    out += ", \"nodes_folded\": " + std::to_string(p.nodesFolded);
    out += ", \"nodes_removed\": " + std::to_string(p.nodesRemoved);
    out += ", \"nets_dropped\": " + std::to_string(p.netsDropped) + "}";
  }
  out += passes.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

OptReport optimizeDesign(Design& design, DiagnosticEngine& diags,
                         const OptOptions& opts) {
  ZEUS_TRACE_SPAN("optimize", "compile");
  optRuns.add();
  OptReport report;
  report.level = opts.level;
  report.nodesBefore = design.netlist.nodeCount();

  // A cyclic design is unsimulatable: leave it untouched.  has() keeps the
  // CombinationalLoop diagnostic from being reported twice when a caller
  // (lint, an earlier build) already constructed a graph.
  if (diags.has(Diag::CombinationalLoop)) {
    report.hasCycle = true;
    report.nodesAfter = report.nodesBefore;
    return report;
  }
  SimGraph g = buildSimGraph(design, diags);
  report.denseBefore = g.denseCount;
  if (g.hasCycle) {
    report.hasCycle = true;
    report.nodesAfter = report.nodesBefore;
    report.denseAfter = report.denseBefore;
    return report;
  }

  if (opts.level >= 1) {
    report.ran = true;

    PassStats fold;
    fold.pass = "const-fold";
    fold.nodesFolded = runConstFold(design, g);
    report.passes.push_back(fold);
    optNodesFolded.add(fold.nodesFolded);

    // Folding only removes edges, so the rebuild cannot find a new cycle.
    g = buildSimGraph(design, diags);

    PassStats dce;
    dce.pass = "dce";
    dce.nodesRemoved = runDce(design, g);
    report.passes.push_back(dce);
    optNodesRemoved.add(dce.nodesRemoved);

    PassStats alias;
    alias.pass = "alias-collapse";
    alias.netsDropped = runAliasCollapse(design);
    report.passes.push_back(alias);
    optNetsDropped.add(alias.netsDropped);

    g = buildSimGraph(design, diags);

    // The fingerprint covers the pass configuration and its effect; any
    // nonzero value flips designContentHash away from the -O0 hash, so
    // equal levels with equal effects stay resumable and everything else
    // is rejected.
    uint64_t fp = 0xA5A5A5A5A5A5A5A5ull;
    fnvMix(fp, static_cast<uint64_t>(opts.level));
    fnvMix(fp, fold.nodesFolded);
    fnvMix(fp, dce.nodesRemoved);
    fnvMix(fp, alias.netsDropped);
    fnvMix(fp, g.denseCount);
    design.optFingerprint = fp ? fp : 1;
  }

  report.nodesAfter = design.netlist.nodeCount();
  report.denseAfter = g.denseCount;

  {
    ZEUS_TRACE_SPAN("opt-verify", "compile");
    report.verifyError = verifyGraph(design, g);
  }
  report.verified = report.verifyError.empty();
  if (!report.verified) {
    optVerifyFailures.add();
    diags.error(Diag::OptimizerVerifyFailed, {},
                "optimizer produced a malformed graph: " +
                    report.verifyError +
                    " (internal error; please report this design)");
  }
  return report;
}

}  // namespace zeus

// Post-pass graph verifier: independently re-derives every SimGraph
// invariant from the netlist and compares it against what buildSimGraph
// produced, so a malformed pass output hard-fails at compile time instead
// of silently corrupting a simulation.  Runs after the optimization
// pipeline on every compile (all -O levels).
#pragma once

#include <string>

#include "src/elab/design.h"
#include "src/sim/graph.h"

namespace zeus {

/// Checks, from first principles:
///   * dense numbering: rootOf/denseOf are mutually consistent, every
///     class referenced by a node, port, CLK or RSET has a slot, and a
///     kNoDense class is simDropped and completely unreferenced;
///   * CSR edges: driver/consumer lists match an independent recount
///     (exact node sets, exact input positions);
///   * NetInfo: nonRegDrivers / regDriven / isBool / isInput / multiDriven
///     equal a fresh recomputation over the netlist;
///   * node partition: regNodes / sourceNodes / topoOrder cover every node
///     exactly once, sourceNodes in NodeId order (the RANDOM stream
///     contract), topoOrder topologically sorted;
///   * netLevel is a longest-path labelling consistent with the edges.
///
/// Returns "" when the graph is well-formed, else a one-line description
/// of the first violation found.
[[nodiscard]] std::string verifyGraph(const Design& design,
                                      const SimGraph& g);

}  // namespace zeus

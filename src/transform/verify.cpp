#include "src/transform/verify.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace zeus {

namespace {

std::string at(const char* what, size_t i) {
  return std::string(what) + " " + std::to_string(i);
}

}  // namespace

std::string verifyGraph(const Design& design, const SimGraph& g) {
  const Netlist& nl = design.netlist;
  if (g.hasCycle) return "";  // unsimulatable by contract; nothing to hold

  // --- dense numbering -------------------------------------------------
  if (g.rootOf.size() != g.denseCount) return "rootOf size != denseCount";
  if (g.denseOf.size() != nl.netCount()) return "denseOf size != netCount";
  if (g.nets.size() != g.denseCount) return "nets size != denseCount";
  for (uint32_t dn = 0; dn < g.denseCount; ++dn) {
    NetId root = g.rootOf[dn];
    if (root >= nl.netCount()) return at("rootOf out of range at", dn);
    if (nl.find(root) != root) return at("rootOf not a class root at", dn);
    if (g.denseOf[root] != dn) return at("denseOf(rootOf) mismatch at", dn);
  }
  for (NetId i = 0; i < nl.netCount(); ++i) {
    if (g.denseOf[i] != g.denseOf[nl.find(i)]) {
      return at("denseOf differs from class root at net", i);
    }
    if (g.denseOf[i] != SimGraph::kNoDense &&
        g.denseOf[i] >= g.denseCount) {
      return at("denseOf out of range at net", i);
    }
  }

  // A class without a slot must be dropped and unreferenced.
  std::vector<char> referenced(nl.netCount(), 0);
  for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
    const Node& node = nl.node(ni);
    if (node.output != kNoNet) referenced[nl.find(node.output)] = 1;
    for (NetId in : node.inputs) referenced[nl.find(in)] = 1;
  }
  for (const Port& p : design.ports) {
    for (NetId n : p.nets) referenced[nl.find(n)] = 1;
  }
  for (NetId special : {design.clk, design.rset}) {
    if (special != kNoNet) referenced[nl.find(special)] = 1;
  }
  for (NetId i = 0; i < nl.netCount(); ++i) {
    if (nl.find(i) != i) continue;
    if (g.denseOf[i] == SimGraph::kNoDense) {
      if (referenced[i]) return at("referenced class has no slot: net", i);
      if (!nl.net(i).simDropped) {
        return at("slotless class not marked simDropped: net", i);
      }
    }
  }

  // --- CSR edges and NetInfo -------------------------------------------
  if (g.driverStart.size() != g.denseCount + 1 ||
      g.consumerStart.size() != g.denseCount + 1) {
    return "CSR start arrays have wrong size";
  }
  if (g.driverStart[0] != 0 || g.consumerStart[0] != 0) {
    return "CSR start arrays not zero-based";
  }
  std::vector<std::vector<NodeId>> wantDrivers(g.denseCount);
  std::vector<std::vector<std::pair<NodeId, uint32_t>>> wantConsumers(
      g.denseCount);
  std::vector<SimGraph::NetInfo> want(g.denseCount);
  for (NetId i = 0; i < nl.netCount(); ++i) {
    const Net& n = nl.net(i);
    uint32_t dn = g.denseOf[i];
    if (dn == SimGraph::kNoDense) continue;
    if (n.kind == BasicKind::Boolean) want[dn].isBool = true;
    if (n.isPrimaryInput) want[dn].isInput = true;
  }
  for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
    const Node& node = nl.node(ni);
    if (node.output != kNoNet) {
      uint32_t dn = g.denseOf[node.output];
      if (dn == SimGraph::kNoDense) return at("node output slotless: node", ni);
      wantDrivers[dn].push_back(ni);
      if (node.op == NodeOp::Reg) want[dn].regDriven = true;
      else want[dn].nonRegDrivers++;
    }
    for (uint32_t ii = 0; ii < node.inputs.size(); ++ii) {
      uint32_t dn = g.denseOf[node.inputs[ii]];
      if (dn == SimGraph::kNoDense) return at("node input slotless: node", ni);
      wantConsumers[dn].push_back({ni, ii});
    }
  }
  for (uint32_t dn = 0; dn < g.denseCount; ++dn) {
    want[dn].multiDriven =
        wantDrivers[dn].size() + (want[dn].isInput ? 1 : 0) > 1;
    uint32_t ds = g.driverStart[dn], de = g.driverStart[dn + 1];
    if (de < ds || de > g.driverNodes.size()) {
      return at("driver CSR range malformed at", dn);
    }
    if (de - ds != wantDrivers[dn].size()) {
      return at("driver count mismatch at", dn);
    }
    std::vector<NodeId> have(g.driverNodes.begin() + ds,
                             g.driverNodes.begin() + de);
    std::sort(have.begin(), have.end());
    std::vector<NodeId> exp = wantDrivers[dn];
    std::sort(exp.begin(), exp.end());
    if (have != exp) return at("driver set mismatch at", dn);

    uint32_t cs = g.consumerStart[dn], ce = g.consumerStart[dn + 1];
    if (ce < cs || ce > g.consumers.size()) {
      return at("consumer CSR range malformed at", dn);
    }
    if (ce - cs != wantConsumers[dn].size()) {
      return at("consumer count mismatch at", dn);
    }
    std::vector<std::pair<NodeId, uint32_t>> haveC;
    for (uint32_t e = cs; e < ce; ++e) {
      haveC.push_back({g.consumers[e], g.consumerInputIdx[e]});
    }
    std::sort(haveC.begin(), haveC.end());
    std::vector<std::pair<NodeId, uint32_t>> expC = wantConsumers[dn];
    std::sort(expC.begin(), expC.end());
    if (haveC != expC) return at("consumer set mismatch at", dn);

    const SimGraph::NetInfo& info = g.nets[dn];
    if (info.nonRegDrivers != want[dn].nonRegDrivers) {
      return at("NetInfo.nonRegDrivers stale at", dn);
    }
    if (info.regDriven != want[dn].regDriven) {
      return at("NetInfo.regDriven stale at", dn);
    }
    if (info.isBool != want[dn].isBool) {
      return at("NetInfo.isBool stale at", dn);
    }
    if (info.isInput != want[dn].isInput) {
      return at("NetInfo.isInput stale at", dn);
    }
    if (info.multiDriven != want[dn].multiDriven) {
      return at("NetInfo.multiDriven stale at", dn);
    }
  }

  // --- node partition --------------------------------------------------
  std::vector<char> seen(nl.nodeCount(), 0);
  for (NodeId ni : g.regNodes) {
    if (ni >= nl.nodeCount() || nl.node(ni).op != NodeOp::Reg) {
      return at("regNodes holds a non-REG node:", ni);
    }
    if (seen[ni]) return at("node listed twice:", ni);
    seen[ni] = 1;
  }
  NodeId prevSource = 0;
  bool firstSource = true;
  for (NodeId ni : g.sourceNodes) {
    const Node& node = nl.node(ni);
    if (node.op == NodeOp::Reg || !node.inputs.empty()) {
      return at("sourceNodes holds a non-source node:", ni);
    }
    // The RANDOM stream contract: evaluators draw per-cycle randomness in
    // sourceNodes order, which must be ascending NodeId order.
    if (!firstSource && ni <= prevSource) {
      return at("sourceNodes out of NodeId order at node", ni);
    }
    prevSource = ni;
    firstSource = false;
  }
  std::vector<uint32_t> topoPos(nl.nodeCount(), 0);
  for (size_t k = 0; k < g.topoOrder.size(); ++k) {
    NodeId ni = g.topoOrder[k];
    if (ni >= nl.nodeCount() || nl.node(ni).op == NodeOp::Reg) {
      return at("topoOrder holds a REG or bad node:", ni);
    }
    if (seen[ni]) return at("node listed twice:", ni);
    seen[ni] = 1;
    topoPos[ni] = static_cast<uint32_t>(k);
  }
  for (NodeId ni = 0; ni < nl.nodeCount(); ++ni) {
    if (!seen[ni]) return at("node missing from topoOrder/regNodes:", ni);
  }

  // --- topological order and levels ------------------------------------
  if (g.netLevel.size() != g.denseCount) return "netLevel size mismatch";
  uint32_t maxLevel = 0;
  for (uint32_t dn = 0; dn < g.denseCount; ++dn) {
    maxLevel = std::max(maxLevel, g.netLevel[dn]);
  }
  if (maxLevel != g.maxLevel) return "maxLevel stale";
  for (NodeId ni : g.topoOrder) {
    const Node& node = nl.node(ni);
    if (node.output == kNoNet) continue;
    uint32_t on = g.denseOf[node.output];
    for (NetId in : node.inputs) {
      uint32_t dn = g.denseOf[in];
      if (g.netLevel[on] < g.netLevel[dn] + 1) {
        return at("netLevel not monotone across node", ni);
      }
      // Every non-REG driver of an input net must precede this node.
      for (uint32_t e = g.driverStart[dn]; e < g.driverStart[dn + 1]; ++e) {
        NodeId d = g.driverNodes[e];
        if (nl.node(d).op == NodeOp::Reg) continue;
        if (topoPos[d] >= topoPos[ni]) {
          return at("topoOrder violates a dependence at node", ni);
        }
      }
    }
  }
  return "";
}

}  // namespace zeus

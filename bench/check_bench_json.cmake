# ctest harness for bench_levelized, two modes:
#
#   smoke      cmake -DBENCH=<bench_levelized> -DJSON=<out.json> \
#                    -P check_bench_json.cmake
#              Runs the bench with a tiny cycle count and validates the
#              emitted BENCH_sim.json against the zeus-bench-sim-v1
#              schema.  (Host compiles for the codegen block run at -O0
#              to keep the smoke run fast; a toolchain-less host records
#              available=false, which smoke mode accepts.)
#
#   checked-in cmake -DCHECKED_IN=ON -DJSON=<repo bench/BENCH_sim.json> \
#                    -P check_bench_json.cmake
#              Validates the committed artifact without running anything,
#              plus the claims only a real run from a clean tree can
#              make: the build stamp must not be -dirty, the codegen
#              block must come from an actual compile, and the compiled
#              engine must beat the levelized interpreter by >= 5x.
if(NOT JSON)
  message(FATAL_ERROR "pass -DJSON=<path to BENCH_sim.json>")
endif()

if(CHECKED_IN)
  set(expect_cycles 20480)
else()
  if(NOT BENCH)
    message(FATAL_ERROR "pass -DBENCH=<binary> (or -DCHECKED_IN=ON)")
  endif()
  set(expect_cycles 128)
  get_filename_component(jsondir ${JSON} DIRECTORY)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ZEUS_CODEGEN_CXXFLAGS=-O0
            ZEUS_CODEGEN_CACHE_DIR=${jsondir}/codegen-smoke-cache
            ${BENCH} --cycles 128 --width 16 --out ${JSON}
    RESULT_VARIABLE rv
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR "bench_levelized failed (${rv}):\n${out}\n${err}")
  endif()
endif()

file(READ ${JSON} content)

string(JSON schema ERROR_VARIABLE jerr GET "${content}" schema)
if(jerr OR NOT schema STREQUAL "zeus-bench-sim-v1")
  message(FATAL_ERROR "bad schema field: '${schema}' ${jerr}")
endif()

string(JSON ncyc GET "${content}" cycles)
if(NOT ncyc EQUAL expect_cycles)
  message(FATAL_ERROR "cycles field ${ncyc} != ${expect_cycles}")
endif()

string(JSON nevals LENGTH "${content}" evaluators)
if(NOT nevals EQUAL 4)
  message(FATAL_ERROR "expected 4 evaluator entries, got ${nevals}")
endif()

set(want_names "naive;firing;levelized;levelized-batch")
math(EXPR last "${nevals} - 1")
foreach(i RANGE ${last})
  string(JSON name GET "${content}" evaluators ${i} name)
  list(GET want_names ${i} want)
  if(NOT name STREQUAL want)
    message(FATAL_ERROR "evaluator ${i} named '${name}', expected '${want}'")
  endif()
  foreach(field cycles_per_sec lane_cycles seconds checksum)
    string(JSON v ERROR_VARIABLE jerr GET "${content}" evaluators ${i} ${field})
    if(jerr)
      message(FATAL_ERROR "evaluator ${i} missing field '${field}': ${jerr}")
    endif()
  endforeach()
  string(JSON cps GET "${content}" evaluators ${i} cycles_per_sec)
  if(cps LESS_EQUAL 0)
    message(FATAL_ERROR "evaluator ${i} cycles_per_sec not positive: ${cps}")
  endif()
  # Embedded metrics block: every evaluator entry must carry its counter
  # snapshot, and on a real run the work counters cannot be zero.
  foreach(field ran evaluator node_firings net_resolutions contention_checks
                epoch_resets faults)
    string(JSON v ERROR_VARIABLE jerr GET "${content}" evaluators ${i}
           metrics ${field})
    if(jerr)
      message(FATAL_ERROR "evaluator ${i} metrics missing '${field}': ${jerr}")
    endif()
  endforeach()
  string(JSON mran GET "${content}" evaluators ${i} metrics ran)
  if(NOT mran STREQUAL "ON")
    message(FATAL_ERROR "evaluator ${i} metrics.ran = ${mran}")
  endif()
  string(JSON firings GET "${content}" evaluators ${i} metrics node_firings)
  if(firings LESS_EQUAL 0)
    message(FATAL_ERROR "evaluator ${i} metrics.node_firings = ${firings}")
  endif()
  string(JSON resolutions GET "${content}" evaluators ${i} metrics
         net_resolutions)
  if(resolutions LESS_EQUAL 0)
    message(FATAL_ERROR
            "evaluator ${i} metrics.net_resolutions = ${resolutions}")
  endif()
endforeach()

foreach(field speedup_levelized_vs_firing speedup_batch_vs_firing)
  string(JSON v ERROR_VARIABLE jerr GET "${content}" ${field})
  if(jerr)
    message(FATAL_ERROR "missing '${field}': ${jerr}")
  endif()
endforeach()

# fault_campaign: the parallel fault-simulation throughput block.
foreach(field faults cycles batches seconds faults_per_sec lane_utilization
              detected masked undetected coverage)
  string(JSON v ERROR_VARIABLE jerr GET "${content}" fault_campaign ${field})
  if(jerr)
    message(FATAL_ERROR "fault_campaign missing '${field}': ${jerr}")
  endif()
endforeach()
string(JSON nfaults GET "${content}" fault_campaign faults)
string(JSON fdet GET "${content}" fault_campaign detected)
string(JSON fmask GET "${content}" fault_campaign masked)
string(JSON fundet GET "${content}" fault_campaign undetected)
math(EXPR fsum "${fdet} + ${fmask} + ${fundet}")
if(NOT fsum EQUAL nfaults OR nfaults LESS_EQUAL 0)
  message(FATAL_ERROR
          "fault_campaign counts inconsistent: ${fdet}+${fmask}+${fundet} != ${nfaults}")
endif()
string(JSON fps GET "${content}" fault_campaign faults_per_sec)
if(fps LESS_EQUAL 0)
  message(FATAL_ERROR "fault_campaign.faults_per_sec = ${fps}")
endif()
string(JSON futil GET "${content}" fault_campaign lane_utilization)
if(futil LESS_EQUAL 0 OR futil GREATER 1)
  message(FATAL_ERROR "fault_campaign.lane_utilization = ${futil}")
endif()
string(JSON fcov GET "${content}" fault_campaign coverage)
if(fcov LESS 0 OR fcov GREATER 1)
  message(FATAL_ERROR "fault_campaign.coverage = ${fcov}")
endif()

# optimization: the pass-pipeline benefit block (docs/optimizer.md).
# Structural claims are asserted hard (the dead cone must actually be
# removed and behaviour preserved); the wall-clock speedup only has to be
# positive — a 128-cycle smoke run is too short to bound timing noise.
foreach(field design folded removed dropped speedup_on_vs_off)
  string(JSON v ERROR_VARIABLE jerr GET "${content}" optimization ${field})
  if(jerr)
    message(FATAL_ERROR "optimization missing '${field}': ${jerr}")
  endif()
endforeach()
string(JSON onodes_before GET "${content}" optimization nodes before)
string(JSON onodes_after GET "${content}" optimization nodes after)
if(NOT onodes_after LESS onodes_before)
  message(FATAL_ERROR
          "optimization removed nothing (${onodes_before} -> ${onodes_after} nodes)")
endif()
string(JSON onets_before GET "${content}" optimization nets before)
string(JSON onets_after GET "${content}" optimization nets after)
if(onets_after GREATER onets_before)
  message(FATAL_ERROR
          "optimization grew the dense net count (${onets_before} -> ${onets_after})")
endif()
string(JSON ock_off GET "${content}" optimization off checksum)
string(JSON ock_on GET "${content}" optimization on checksum)
if(NOT ock_off EQUAL ock_on)
  message(FATAL_ERROR
          "optimized checksum ${ock_on} != unoptimized ${ock_off}")
endif()
foreach(side off on)
  string(JSON cps GET "${content}" optimization ${side} cycles_per_sec)
  if(cps LESS_EQUAL 0)
    message(FATAL_ERROR "optimization.${side}.cycles_per_sec = ${cps}")
  endif()
endforeach()
string(JSON ospeed GET "${content}" optimization speedup_on_vs_off)
if(ospeed LESS_EQUAL 0)
  message(FATAL_ERROR "optimization.speedup_on_vs_off = ${ospeed}")
endif()

# farm: the multi-core scaling block (docs/simulator.md).  Checksum
# equality across thread counts and against the scalar oracle is asserted
# unconditionally — that is the determinism contract.  The 4-thread
# speedup is only asserted on hosts with at least 4 cores; a 1-core CI
# container cannot physically demonstrate scaling.
foreach(field lanes lanes_per_block blocks cycles_per_lane host_cores
              oracle_checksum speedup_4_vs_1 speedup_vs_batch64)
  string(JSON v ERROR_VARIABLE jerr GET "${content}" farm ${field})
  if(jerr)
    message(FATAL_ERROR "farm missing '${field}': ${jerr}")
  endif()
endforeach()
string(JSON flanes GET "${content}" farm lanes)
string(JSON fper GET "${content}" farm lanes_per_block)
string(JSON fblocks GET "${content}" farm blocks)
if(NOT flanes EQUAL 256 OR NOT fper EQUAL 64 OR NOT fblocks EQUAL 4)
  message(FATAL_ERROR
          "farm geometry ${flanes}/${fper}/${fblocks} != 256/64/4")
endif()
string(JSON nthreads LENGTH "${content}" farm threads)
if(NOT nthreads EQUAL 3)
  message(FATAL_ERROR "expected 3 farm thread rows, got ${nthreads}")
endif()
string(JSON foracle GET "${content}" farm oracle_checksum)
set(want_threads "1;2;4")
math(EXPR tlast "${nthreads} - 1")
foreach(i RANGE ${tlast})
  string(JSON tthreads GET "${content}" farm threads ${i} threads)
  list(GET want_threads ${i} want)
  if(NOT tthreads EQUAL ${want})
    message(FATAL_ERROR "farm row ${i} has threads=${tthreads}, want ${want}")
  endif()
  string(JSON tlcps GET "${content}" farm threads ${i} lane_cycles_per_sec)
  if(tlcps LESS_EQUAL 0)
    message(FATAL_ERROR "farm row ${i} lane_cycles_per_sec = ${tlcps}")
  endif()
  string(JSON tsum GET "${content}" farm threads ${i} checksum)
  if(NOT tsum EQUAL ${foracle})
    message(FATAL_ERROR
            "farm checksum at ${tthreads} thread(s) = ${tsum} != scalar oracle ${foracle}")
  endif()
endforeach()
string(JSON fcores GET "${content}" farm host_cores)
string(JSON fspeed GET "${content}" farm speedup_vs_batch64)
if(fcores GREATER_EQUAL 4)
  if(fspeed LESS 2.5)
    message(FATAL_ERROR
            "farm 4-thread speedup over the 64-lane batch is ${fspeed} (< 2.5) on a ${fcores}-core host")
  endif()
else()
  message(STATUS "farm speedup check skipped: only ${fcores} host core(s)")
endif()

# codegen: the native backend block (docs/codegen.md).  Field presence
# is unconditional; the run itself is optional in smoke mode (a host
# without a C++ toolchain records available=false) but mandatory for the
# checked-in artifact — and there the compiled engine must actually beat
# the levelized interpreter by the claimed margin, with checksum
# equality against every interpreter row.
foreach(field available error opt_level cached_load emit_ms compile_ms
              load_ms checksum_equal speedup_scalar_vs_levelized
              speedup_vs_levelized speedup_vs_batch64)
  string(JSON v ERROR_VARIABLE jerr GET "${content}" codegen ${field})
  if(jerr)
    message(FATAL_ERROR "codegen missing '${field}': ${jerr}")
  endif()
endforeach()
string(JSON cgavail GET "${content}" codegen available)
if(cgavail STREQUAL "ON")
  string(JSON cgeq GET "${content}" codegen checksum_equal)
  if(NOT cgeq STREQUAL "ON")
    message(FATAL_ERROR "codegen.checksum_equal = ${cgeq}")
  endif()
  string(JSON ck0 GET "${content}" evaluators 0 checksum)
  string(JSON cgsck GET "${content}" codegen scalar checksum)
  string(JSON cgbck GET "${content}" codegen batch checksum)
  if(NOT cgsck EQUAL ck0 OR NOT cgbck EQUAL ck0)
    message(FATAL_ERROR
            "codegen checksums (scalar ${cgsck}, batch ${cgbck}) != "
            "interpreter ${ck0}")
  endif()
  foreach(row scalar batch)
    string(JSON cps GET "${content}" codegen ${row} cycles_per_sec)
    if(cps LESS_EQUAL 0)
      message(FATAL_ERROR "codegen.${row}.cycles_per_sec = ${cps}")
    endif()
  endforeach()
elseif(CHECKED_IN)
  string(JSON cgerr GET "${content}" codegen error)
  message(FATAL_ERROR
          "checked-in BENCH_sim.json must carry a real codegen run, got "
          "available=false (${cgerr})")
else()
  string(JSON cgerr GET "${content}" codegen error)
  message(STATUS "codegen block: unavailable on this host (${cgerr})")
endif()

# build: the attribution stamp (PR 8) — who compiled the binary that
# produced these numbers.
foreach(field git compiler build_type trace_compiled_out)
  string(JSON v ERROR_VARIABLE jerr GET "${content}" build ${field})
  if(jerr)
    message(FATAL_ERROR "build missing '${field}': ${jerr}")
  endif()
endforeach()
string(JSON bgit GET "${content}" build git)
if(bgit STREQUAL "")
  message(FATAL_ERROR "build.git is empty")
endif()

if(CHECKED_IN)
  # A committed artifact must come from a clean tree: a -dirty stamp
  # means the numbers cannot be reproduced from any commit.
  if(bgit MATCHES "-dirty")
    message(FATAL_ERROR
            "checked-in BENCH_sim.json carries a dirty build stamp "
            "'${bgit}'; regenerate it from a clean tree")
  endif()
  # The tentpole claim: compiled engine throughput >= 5x the levelized
  # interpreter on the ripple-carry bench design.
  string(JSON cgspeed GET "${content}" codegen speedup_vs_levelized)
  if(cgspeed LESS 5)
    message(FATAL_ERROR
            "codegen.speedup_vs_levelized = ${cgspeed} (< 5x) in the "
            "checked-in artifact")
  endif()
endif()

# latency: the farm.block_us histogram collected across the whole thread
# sweep.  The summary quartet must be internally consistent and the
# bucket counts must sum to the total.
foreach(field unit count sum max p50 p90 p99 buckets)
  string(JSON v ERROR_VARIABLE jerr GET "${content}" latency farm.block_us ${field})
  if(jerr)
    message(FATAL_ERROR "latency.farm.block_us missing '${field}': ${jerr}")
  endif()
endforeach()
string(JSON lcount GET "${content}" latency farm.block_us count)
string(JSON lmax GET "${content}" latency farm.block_us max)
string(JSON lp50 GET "${content}" latency farm.block_us p50)
string(JSON lp99 GET "${content}" latency farm.block_us p99)
# 3 thread rows x 4 blocks each.
if(NOT lcount EQUAL 12)
  message(FATAL_ERROR "latency.farm.block_us.count = ${lcount}, expected 12")
endif()
if(lp50 GREATER lp99 OR lp99 GREATER lmax)
  message(FATAL_ERROR
          "latency percentiles not ordered: p50=${lp50} p99=${lp99} max=${lmax}")
endif()
string(JSON nbuckets LENGTH "${content}" latency farm.block_us buckets)
if(nbuckets LESS 1)
  message(FATAL_ERROR "latency.farm.block_us has no occupied buckets")
endif()
set(bsum 0)
math(EXPR blast "${nbuckets} - 1")
foreach(i RANGE ${blast})
  string(JSON bn GET "${content}" latency farm.block_us buckets ${i} 1)
  math(EXPR bsum "${bsum} + ${bn}")
endforeach()
if(NOT bsum EQUAL lcount)
  message(FATAL_ERROR
          "latency bucket counts sum to ${bsum}, total says ${lcount}")
endif()

message(STATUS "BENCH_sim.json schema OK (${nevals} evaluators + fault campaign + optimization + farm + build/latency; opt ${onodes_before} -> ${onodes_after} nodes)")

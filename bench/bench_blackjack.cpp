// E2 — the blackjack finite state machine (paper §10): FSM cycles per
// second and full games per second, the "control-dominated" workload of
// the paper's example set.
#include "bench/bench_util.h"

namespace zeus::bench {
namespace {

void BM_Blackjack_Cycles(benchmark::State& state) {
  BuiltDesign b = build(corpus::kBlackjack, "bj");
  Simulation sim(b.graph,
                 state.range(0) ? EvaluatorKind::Naive
                                : EvaluatorKind::Firing);
  sim.setInput("ycard", Logic::Zero);
  sim.setInputUint("value", 0);
  sim.setRset(true);
  sim.step();
  sim.setRset(false);
  uint64_t cycles = 0;
  for (auto _ : state) {
    sim.step();
    ++cycles;
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.SetLabel(state.range(0) ? "naive" : "firing");
}
BENCHMARK(BM_Blackjack_Cycles)->Arg(0)->Arg(1);

void BM_Blackjack_Games(benchmark::State& state) {
  BuiltDesign b = build(corpus::kBlackjack, "bj");
  Simulation sim(b.graph);
  uint64_t rng = 7;
  uint64_t games = 0;
  for (auto _ : state) {
    sim.reset();
    sim.setInput("ycard", Logic::Zero);
    sim.setInputUint("value", 0);
    sim.setRset(true);
    sim.step();
    sim.setRset(false);
    sim.step(2);
    // Deal random cards 2..11 until the machine stops hitting.
    for (int card = 0; card < 16; ++card) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      uint64_t value = 2 + (rng >> 33) % 10;
      sim.setInputUint("value", value);
      sim.setInput("ycard", Logic::One);
      sim.step();
      sim.setInput("ycard", Logic::Zero);
      sim.step(2);
      bool done = false;
      for (int i = 0; i < 8 && !done; ++i) {
        sim.step();
        done = sim.output("stand") == Logic::One ||
               sim.output("broke") == Logic::One ||
               sim.output("hit") == Logic::One;
      }
      if (sim.output("stand") == Logic::One ||
          sim.output("broke") == Logic::One) {
        break;
      }
    }
    ++games;
    if (!sim.errors().empty()) {
      state.SkipWithError("blackjack raised a runtime error");
    }
  }
  state.counters["games/s"] = benchmark::Counter(
      static_cast<double>(games), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Blackjack_Games);

}  // namespace
}  // namespace zeus::bench

BENCHMARK_MAIN();

// E12 — the remaining workloads of the paper's abstract ("the language
// has been tested on a variety of examples like: finite state machines,
// multiplexors, adders, pattern matching, AM2901, dictionary machines,
// systolic stacks"): instruction throughput of the AM2901 datapath,
// operation throughput of the systolic stack, and query throughput of the
// dictionary tree machine.
#include "bench/bench_util.h"

namespace zeus::bench {
namespace {

void BM_Am2901_Instructions(benchmark::State& state) {
  BuiltDesign b = build(corpus::kAm2901, "alu");
  Simulation sim(b.graph);
  sim.setInput("cin", Logic::Zero);
  for (const char* p : {"ram0in", "ram3in", "q0in", "q3in"}) {
    sim.setInput(p, Logic::Zero);
  }
  // Preload registers 0 and 1 via D (DZ/ADD/RAMF).
  sim.setInputUint("i", 7u | (0u << 3) | (3u << 6));
  sim.setInputUint("aaddr", 0);
  sim.setInputUint("baddr", 0);
  sim.setInputUint("d", 3);
  sim.step();
  sim.setInputUint("baddr", 1);
  sim.setInputUint("d", 5);
  sim.step();
  // Hot loop: F = A + B, write back to B (src AB=1, fn ADD=0, dst RAMF=3).
  sim.setInputUint("i", 1u | (0u << 3) | (3u << 6));
  sim.setInputUint("aaddr", 0);
  sim.setInputUint("baddr", 1);
  uint64_t instructions = 0;
  for (auto _ : state) {
    sim.step();
    ++instructions;
    benchmark::DoNotOptimize(sim.output("cout"));
  }
  if (!sim.errors().empty()) state.SkipWithError("runtime error");
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
  state.counters["nodes"] =
      static_cast<double>(b.design->netlist.nodeCount());
}
BENCHMARK(BM_Am2901_Instructions);

void BM_SystolicStack_Ops(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  BuiltDesign b =
      build(std::string(corpus::kSystolicStack) +
                "SIGNAL st: systolicstack(" + std::to_string(depth) +
                ");\n",
            "st");
  Simulation sim(b.graph);
  sim.setInput("push", Logic::Zero);
  sim.setInput("pop", Logic::Zero);
  sim.setInputUint("din", 0);
  sim.setRset(true);
  sim.step();
  sim.setRset(false);
  uint64_t ops = 0;
  bool phase = false;
  for (auto _ : state) {
    phase = !phase;  // alternate push/pop: every cell works every cycle
    sim.setInput("push", logicFromBool(phase));
    sim.setInput("pop", logicFromBool(!phase));
    sim.setInputUint("din", ops & 15);
    sim.step();
    ++ops;
  }
  if (!sim.errors().empty()) state.SkipWithError("runtime error");
  state.counters["ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
  state.counters["cell-ops/s"] = benchmark::Counter(
      static_cast<double>(ops) * depth, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SystolicStack_Ops)->Arg(8)->Arg(32)->Arg(128);

void BM_Dictionary_Queries(benchmark::State& state) {
  const int leaves = static_cast<int>(state.range(0));
  BuiltDesign b = build(std::string(corpus::kDictionary) +
                            "SIGNAL dict: dicttree(" +
                            std::to_string(leaves) + ");\n",
                        "dict");
  Simulation sim(b.graph);
  sim.setInput("ins", Logic::Zero);
  sim.setInput("query", Logic::Zero);
  sim.setInputUint("k", 0);
  sim.setRset(true);
  sim.step();
  sim.setRset(false);
  // Insert a handful of keys.
  for (uint64_t k = 1; k <= 7; ++k) {
    sim.setInputUint("k", k);
    sim.setInput("ins", Logic::One);
    sim.step();
  }
  sim.setInput("ins", Logic::Zero);
  sim.setInput("query", Logic::One);
  uint64_t queries = 0;
  for (auto _ : state) {
    sim.setInputUint("k", (queries % 15) + 1);
    sim.step();
    ++queries;
    benchmark::DoNotOptimize(sim.output("found"));
  }
  state.counters["queries/s"] = benchmark::Counter(
      static_cast<double>(queries), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Dictionary_Queries)->Arg(4)->Arg(16)->Arg(64);

void BM_Sorter_Combinational(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BuiltDesign b = build(std::string(corpus::kSorter) +
                            "SIGNAL s: sorter(" + std::to_string(n) +
                            ");\n",
                        "s");
  Simulation sim(b.graph);
  std::vector<Logic> bits(static_cast<size_t>(n) * 4);
  uint64_t rng = 3, sorts = 0;
  for (auto _ : state) {
    for (Logic& bit : bits) {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      bit = logicFromBool(rng & 1);
    }
    sim.setInput("din", bits);
    sim.step();
    ++sorts;
    benchmark::DoNotOptimize(sim.outputBits("dout"));
  }
  state.counters["sorts/s"] = benchmark::Counter(
      static_cast<double>(sorts), benchmark::Counter::kIsRate);
  state.counters["depth"] = static_cast<double>(b.graph.maxLevel);
}
BENCHMARK(BM_Sorter_Combinational)->Arg(4)->Arg(8)->Arg(16);

void BM_Sorter_Systolic(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  BuiltDesign b = build(std::string(corpus::kSorter) +
                            "SIGNAL s: systolicsorter(" +
                            std::to_string(n) + ");\n",
                        "s");
  Simulation sim(b.graph);
  std::vector<Logic> bits(static_cast<size_t>(n) * 4);
  uint64_t rng = 3, vectors = 0;
  for (auto _ : state) {
    for (Logic& bit : bits) {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      bit = logicFromBool(rng & 1);
    }
    sim.setInput("din", bits);
    sim.step();  // one new vector per cycle, pipelined
    ++vectors;
  }
  state.counters["vectors/s"] = benchmark::Counter(
      static_cast<double>(vectors), benchmark::Counter::kIsRate);
  state.counters["depth"] = static_cast<double>(b.graph.maxLevel);
}
BENCHMARK(BM_Sorter_Systolic)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace zeus::bench

BENCHMARK_MAIN();

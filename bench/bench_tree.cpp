// E3 — binary broadcast trees (paper §10 "Binary Trees", Fig. binary
// tree): iterative versus recursive descriptions of the same hardware.
// The reproducible claim: both elaborate to equivalent structures (n-1
// cells), the recursive one exercising parameterized recursive types and
// WHEN-generation, and elaboration scales near-linearly in n.
#include "bench/bench_util.h"

namespace zeus::bench {
namespace {

void BM_Tree_Compile(benchmark::State& state) {
  const bool recursive = state.range(0) != 0;
  const int leaves = static_cast<int>(state.range(1));
  std::string source = treeSource(recursive, leaves);
  for (auto _ : state) {
    auto comp = Compilation::fromSource("tree.zeus", source);
    auto design = comp->elaborate("a");
    if (!design) state.SkipWithError("elaboration failed");
    benchmark::DoNotOptimize(design);
    state.counters["nodes"] =
        static_cast<double>(design->netlist.nodeCount());
  }
  state.SetLabel(recursive ? "recursive" : "iterative");
  state.SetComplexityN(leaves);
}
BENCHMARK(BM_Tree_Compile)
    ->ArgsProduct({{0, 1}, {8, 32, 128, 512, 1024}})
    ->Complexity();

void BM_Tree_Broadcast(benchmark::State& state) {
  const bool recursive = state.range(0) != 0;
  const int leaves = static_cast<int>(state.range(1));
  BuiltDesign b = build(treeSource(recursive, leaves), "a");
  Simulation sim(b.graph);
  uint64_t cycles = 0;
  bool bit = false;
  for (auto _ : state) {
    bit = !bit;
    sim.setInput("in", logicFromBool(bit));
    sim.step();
    ++cycles;
    if (sim.outputBits("leaf")[leaves / 2] != logicFromBool(bit)) {
      state.SkipWithError("broadcast failed");
    }
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["leaf-bits/s"] = benchmark::Counter(
      static_cast<double>(cycles) * leaves, benchmark::Counter::kIsRate);
  state.SetLabel(recursive ? "recursive" : "iterative");
}
BENCHMARK(BM_Tree_Broadcast)->ArgsProduct({{0, 1}, {8, 64, 512}});

}  // namespace
}  // namespace zeus::bench

BENCHMARK_MAIN();

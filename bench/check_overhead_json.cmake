# ctest guard for the zero-overhead-when-disabled claim: runs
# `bench_levelized --overhead` and asserts the Simulation facade with all
# observability runtime-disabled stays within 5% of the raw (bare)
# levelized evaluator loop.
#
# Usage: cmake -DBENCH=<bench_levelized> -DJSON=<out.json> -P check_overhead_json.cmake
if(NOT BENCH OR NOT JSON)
  message(FATAL_ERROR "pass -DBENCH=<binary> and -DJSON=<output path>")
endif()

# Enough cycles that a run takes tens of milliseconds (timing noise on a
# loaded CI box swamps microsecond-scale runs), small enough to stay fast.
execute_process(
  COMMAND ${BENCH} --overhead --cycles 8192 --width 32 --out ${JSON}
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rv EQUAL 0)
  message(FATAL_ERROR "bench_levelized --overhead failed (${rv}):\n${out}\n${err}")
endif()

file(READ ${JSON} content)

string(JSON schema ERROR_VARIABLE jerr GET "${content}" schema)
if(jerr OR NOT schema STREQUAL "zeus-bench-overhead-v1")
  message(FATAL_ERROR "bad schema field: '${schema}' ${jerr}")
endif()

foreach(field bare_seconds disabled_seconds enabled_seconds
              disabled_over_bare enabled_over_bare)
  string(JSON v ERROR_VARIABLE jerr GET "${content}" ${field})
  if(jerr)
    message(FATAL_ERROR "missing '${field}': ${jerr}")
  endif()
  if(v LESS_EQUAL 0)
    message(FATAL_ERROR "'${field}' not positive: ${v}")
  endif()
endforeach()

string(JSON ratio GET "${content}" disabled_over_bare)
if(ratio GREATER 1.05)
  message(FATAL_ERROR
          "instrumented-but-disabled levelized run is ${ratio}x the bare "
          "evaluator loop (budget: 1.05x); the zero-overhead-when-disabled "
          "claim is broken")
endif()

message(STATUS "overhead OK: disabled/bare = ${ratio} (<= 1.05)")

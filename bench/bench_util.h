// Shared helpers for the benchmark harness.  Each bench binary regenerates
// one artifact of the paper (DESIGN.md §3 per-experiment index).
#pragma once

#include <benchmark/benchmark.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "src/core/zeus.h"
#include "src/corpus/corpus.h"

namespace zeus::bench {

/// A fully built design with its graph, kept alive for simulation benches.
struct BuiltDesign {
  std::unique_ptr<Compilation> comp;
  std::unique_ptr<Design> design;
  SimGraph graph;
};

inline BuiltDesign build(const std::string& source, const std::string& top) {
  BuiltDesign b;
  b.comp = Compilation::fromSource("bench.zeus", source);
  if (!b.comp->ok()) {
    throw std::runtime_error("bench source failed to compile:\n" +
                             b.comp->diagnosticsText());
  }
  b.design = b.comp->elaborate(top);
  if (!b.design) {
    throw std::runtime_error("bench source failed to elaborate:\n" +
                             b.comp->diagnosticsText());
  }
  b.graph = buildSimGraph(*b.design, b.comp->diags());
  if (b.graph.hasCycle) {
    throw std::runtime_error("bench design is cyclic");
  }
  return b;
}

inline std::string adderSource(int width) {
  return std::string(corpus::kAdders) + "SIGNAL adder: rippleCarry(" +
         std::to_string(width) + ");\n";
}

inline std::string treeSource(bool recursive, int leaves) {
  return std::string(recursive ? corpus::kTreeRecursive
                               : corpus::kTreeIterative) +
         "SIGNAL a: tree(" + std::to_string(leaves) + ");\n";
}

inline std::string htreeSource(int leaves) {
  return std::string(corpus::kHtree) + "SIGNAL a: htree(" +
         std::to_string(leaves) + ");\n";
}

inline std::string routingSource(int ports) {
  return std::string(corpus::kRoutingNetwork) +
         "SIGNAL net: routingnetwork(" + std::to_string(ports) + ");\n";
}

inline std::string patternSource(int length) {
  return std::string(corpus::kPatternMatch) + "SIGNAL m: patternmatch(" +
         std::to_string(length) + ");\n";
}

}  // namespace zeus::bench

// E1 — ripple-carry adders (paper Fig. 3.2.2 / §10 "Adders", Fig. Adder).
//
// Regenerates the adder family at growing widths: elaboration cost and
// simulation throughput, with correctness asserted inline.  The paper
// reports no numbers; the reproducible shape is near-linear scaling of
// both netlist size and per-cycle work in the adder width.
#include "bench/bench_util.h"

namespace zeus::bench {
namespace {

void BM_Adder_Compile(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  std::string source = adderSource(width);
  for (auto _ : state) {
    auto comp = Compilation::fromSource("adder.zeus", source);
    auto design = comp->elaborate("adder");
    benchmark::DoNotOptimize(design);
    if (!design) state.SkipWithError("elaboration failed");
    state.counters["nets"] =
        static_cast<double>(design->netlist.netCount());
    state.counters["nodes"] =
        static_cast<double>(design->netlist.nodeCount());
  }
  state.SetComplexityN(width);
}
BENCHMARK(BM_Adder_Compile)->RangeMultiplier(2)->Range(4, 256)->Complexity();

void BM_Adder_Simulate(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  BuiltDesign b = build(adderSource(width), "adder");
  Simulation sim(b.graph);
  const uint64_t mask =
      width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  uint64_t rng = 0xDEADBEEF;
  uint64_t cycles = 0;
  for (auto _ : state) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    uint64_t a = rng & mask;
    uint64_t c = (rng >> 17) & mask;
    sim.setInputUint("a", a);
    sim.setInputUint("b", c);
    sim.setInput("cin", Logic::Zero);
    sim.step();
    ++cycles;
    uint64_t s = sim.outputUint("s").value_or(~0ull);
    if (width <= 63 && s != ((a + c) & mask)) {
      state.SkipWithError("adder produced a wrong sum");
    }
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["bit-adds/s"] = benchmark::Counter(
      static_cast<double>(cycles) * width, benchmark::Counter::kIsRate);
  state.SetComplexityN(width);
}
BENCHMARK(BM_Adder_Simulate)->RangeMultiplier(2)->Range(4, 256)->Complexity();

void BM_Adder_LayoutSolve(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  BuiltDesign b = build(adderSource(width), "adder");
  for (auto _ : state) {
    LayoutResult lr = solveLayout(*b.design, b.comp->diags());
    benchmark::DoNotOptimize(lr);
    if (lr.bounds.w != width) state.SkipWithError("wrong adder row");
  }
}
BENCHMARK(BM_Adder_LayoutSolve)->RangeMultiplier(4)->Range(4, 256);

}  // namespace
}  // namespace zeus::bench

BENCHMARK_MAIN();

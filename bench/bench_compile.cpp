// E10 — the compile pipeline itself (the paper sells Zeus on its compile
// time checks, §1): lexing, parsing, checking and elaboration throughput
// on the corpus, and scaling in the generated-hardware size.
#include "bench/bench_util.h"
#include "src/lexer/lexer.h"
#include "src/parser/parser.h"

namespace zeus::bench {
namespace {

void BM_Compile_LexCorpus(benchmark::State& state) {
  // Concatenate the whole corpus into one buffer.
  std::string text;
  for (const corpus::CorpusEntry& e : corpus::all()) text += e.source;
  uint64_t bytes = 0;
  for (auto _ : state) {
    SourceManager sm;
    BufferId buf = sm.addBuffer("corpus", text);
    DiagnosticEngine diags(sm);
    Lexer lex(buf, diags);
    auto tokens = lex.tokenize();
    benchmark::DoNotOptimize(tokens);
    bytes += text.size();
    state.counters["tokens"] = static_cast<double>(tokens.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_Compile_LexCorpus);

void BM_Compile_ParseCorpus(benchmark::State& state) {
  std::string text;
  for (const corpus::CorpusEntry& e : corpus::all()) text += e.source;
  uint64_t bytes = 0;
  for (auto _ : state) {
    SourceManager sm;
    BufferId buf = sm.addBuffer("corpus", text);
    DiagnosticEngine diags(sm);
    Parser parser(buf, diags);
    ast::Program prog = parser.parseProgram();
    benchmark::DoNotOptimize(prog);
    bytes += text.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_Compile_ParseCorpus);

void BM_Compile_FrontendOnly(benchmark::State& state) {
  // Parse + check without elaboration: the per-edit cost in an
  // interactive silicon-compiler setting (paper §9, application 3).
  std::string source = patternSource(3);
  for (auto _ : state) {
    auto comp = Compilation::fromSource("pm.zeus", source);
    benchmark::DoNotOptimize(comp->ok());
  }
}
BENCHMARK(BM_Compile_FrontendOnly);

void BM_Compile_ElaborationScaling(benchmark::State& state) {
  // Elaboration cost tracks generated-hardware size, not source size:
  // the same few lines of rippleCarry(n) elaborate to n full adders.
  const int width = static_cast<int>(state.range(0));
  std::string source = adderSource(width);
  for (auto _ : state) {
    auto comp = Compilation::fromSource("adder.zeus", source);
    auto design = comp->elaborate("adder");
    if (!design) state.SkipWithError("elaboration failed");
    state.counters["nodes/line"] =
        static_cast<double>(design->netlist.nodeCount()) / 30.0;
  }
  state.SetComplexityN(width);
}
BENCHMARK(BM_Compile_ElaborationScaling)
    ->RangeMultiplier(4)->Range(4, 1024)->Complexity();

void BM_Compile_RecursiveTypes(benchmark::State& state) {
  // Recursive parameterized types with memoisation: htree(n) has log4(n)
  // distinct type instantiations but n instances.
  const int leaves = static_cast<int>(state.range(0));
  std::string source = htreeSource(leaves);
  for (auto _ : state) {
    auto comp = Compilation::fromSource("htree.zeus", source);
    auto design = comp->elaborate("a");
    if (!design) state.SkipWithError("elaboration failed");
    benchmark::DoNotOptimize(design);
  }
  state.SetComplexityN(leaves);
}
BENCHMARK(BM_Compile_RecursiveTypes)->Arg(4)->Arg(64)->Arg(1024)
    ->Complexity();

}  // namespace
}  // namespace zeus::bench

BENCHMARK_MAIN();

// E6 — the systolic pattern matcher (paper §10, Fig. patternmatch and the
// "possible computation sequence"): streaming throughput as the array
// grows, and a correctness-checked reproduction of the result cadence
// (one result bit every second cycle once the pipeline fills).
#include "bench/bench_util.h"

namespace zeus::bench {
namespace {

void BM_PatternMatch_Stream(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  BuiltDesign b = build(patternSource(length), "m");
  Simulation sim(b.graph);
  sim.setInput("pattern", Logic::Zero);
  sim.setInput("string", Logic::Zero);
  sim.setInput("endofpattern", Logic::Zero);
  sim.setInput("wild", Logic::Zero);
  sim.setInput("resultin", Logic::Zero);
  sim.setRset(true);
  sim.step(static_cast<uint64_t>(length) + 2);
  sim.setRset(false);

  uint64_t beat = 0;
  uint64_t cycles = 0;
  for (auto _ : state) {
    bool eop = (beat % static_cast<uint64_t>(length)) ==
               static_cast<uint64_t>(length) - 1;
    sim.setInput("pattern", Logic::One);
    sim.setInput("string", Logic::One);
    sim.setInput("endofpattern", logicFromBool(eop));
    sim.step();
    sim.setInput("pattern", Logic::Zero);
    sim.setInput("string", Logic::Zero);
    sim.setInput("endofpattern", Logic::Zero);
    sim.step();
    cycles += 2;
    ++beat;
  }
  if (!sim.errors().empty()) {
    state.SkipWithError("systolic schedule raised runtime errors");
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["cell-ops/s"] = benchmark::Counter(
      static_cast<double>(cycles) * length, benchmark::Counter::kIsRate);
  state.SetComplexityN(length);
}
BENCHMARK(BM_PatternMatch_Stream)
    ->Arg(3)->Arg(7)->Arg(15)->Arg(31)->Arg(63)->Arg(127)
    ->Complexity();

void BM_PatternMatch_Compile(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  std::string source = patternSource(length);
  for (auto _ : state) {
    auto comp = Compilation::fromSource("pm.zeus", source);
    auto design = comp->elaborate("m");
    if (!design) state.SkipWithError("elaboration failed");
    benchmark::DoNotOptimize(design);
  }
  state.SetComplexityN(length);
}
BENCHMARK(BM_PatternMatch_Compile)->Arg(3)->Arg(15)->Arg(63)->Arg(127)
    ->Complexity();

}  // namespace
}  // namespace zeus::bench

BENCHMARK_MAIN();

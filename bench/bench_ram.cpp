// E11 — the §5 RAM: ARRAY[0..n] OF ARRAY[1..w] OF REG with NUM
// addressing.  NUM expands to an EQUAL-guarded switch per word, so both
// netlist size and per-cycle work grow linearly in the word count — the
// shape this bench regenerates, with read-back correctness checked.
#include "bench/bench_util.h"

namespace zeus::bench {
namespace {

std::string ramSource(int words, int abits) {
  std::string s = "TYPE word = ARRAY[1..8] OF boolean;\n";
  s += "memory = COMPONENT (IN addr: ARRAY[1.." + std::to_string(abits) +
       "] OF boolean; IN din: word; IN write: boolean; OUT dout: word) IS\n";
  s += "  SIGNAL ram: ARRAY[0.." + std::to_string(words - 1) +
       "] OF ARRAY[1..8] OF REG;\n";
  s += "BEGIN\n  IF write THEN ram[NUM(addr)].in := din END;\n";
  s += "  dout := ram[NUM(addr)].out;\nEND;\nSIGNAL mem: memory;\n";
  return s;
}

void BM_Ram_Compile(benchmark::State& state) {
  const int abits = static_cast<int>(state.range(0));
  const int words = 1 << abits;
  std::string source = ramSource(words, abits);
  for (auto _ : state) {
    auto comp = Compilation::fromSource("ram.zeus", source);
    auto design = comp->elaborate("mem");
    if (!design) state.SkipWithError("elaboration failed");
    state.counters["nets"] =
        static_cast<double>(design->netlist.netCount());
    state.counters["bits"] = static_cast<double>(words * 8);
  }
  state.SetComplexityN(words);
}
BENCHMARK(BM_Ram_Compile)->DenseRange(3, 8)->Complexity();

void BM_Ram_ReadWrite(benchmark::State& state) {
  const int abits = static_cast<int>(state.range(0));
  const int words = 1 << abits;
  BuiltDesign b = build(ramSource(words, abits), "mem");
  Simulation sim(b.graph);
  // Preload every word.
  for (int a = 0; a < words; ++a) {
    sim.setInputUint("addr", static_cast<uint64_t>(a));
    sim.setInputUint("din", static_cast<uint64_t>((a * 31 + 7) & 0xFF));
    sim.setInput("write", Logic::One);
    sim.step();
  }
  sim.setInput("write", Logic::Zero);
  uint64_t rng = 5;
  uint64_t accesses = 0;
  for (auto _ : state) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    uint64_t a = (rng >> 33) % static_cast<uint64_t>(words);
    sim.setInputUint("addr", a);
    sim.step();
    ++accesses;
    if (sim.outputUint("dout").value_or(~0ull) != ((a * 31 + 7) & 0xFF)) {
      state.SkipWithError("RAM read back a wrong word");
    }
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(accesses), benchmark::Counter::kIsRate);
  state.SetComplexityN(words);
}
BENCHMARK(BM_Ram_ReadWrite)->DenseRange(3, 7)->Complexity();

}  // namespace
}  // namespace zeus::bench

BENCHMARK_MAIN();

// E5 — the recursive routing network (paper §4.2, translated from HISDL):
// elaboration of the banyan recursion and word-routing throughput over
// growing port counts.  Structure: (n/2)·log2(n) routers, netlist size
// O(n log n) — the expected near-linearithmic scaling.
#include "bench/bench_util.h"

namespace zeus::bench {
namespace {

void BM_Routing_Compile(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  std::string source = routingSource(ports);
  for (auto _ : state) {
    auto comp = Compilation::fromSource("routing.zeus", source);
    auto design = comp->elaborate("net");
    if (!design) state.SkipWithError("elaboration failed");
    benchmark::DoNotOptimize(design);
    state.counters["nets"] =
        static_cast<double>(design->netlist.netCount());
  }
  state.SetComplexityN(ports);
}
BENCHMARK(BM_Routing_Compile)->RangeMultiplier(2)->Range(2, 64)
    ->Complexity();

void BM_Routing_Simulate(benchmark::State& state) {
  const int ports = static_cast<int>(state.range(0));
  BuiltDesign b = build(routingSource(ports), "net");
  Simulation sim(b.graph);
  std::vector<Logic> bits(static_cast<size_t>(ports) * 10, Logic::Zero);
  uint64_t cycles = 0;
  uint64_t rng = 99;
  for (auto _ : state) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    for (size_t i = 0; i < bits.size(); ++i) {
      bits[i] = logicFromBool((rng >> (i % 61)) & 1);
    }
    sim.setInput("input", bits);
    sim.step();
    ++cycles;
    benchmark::DoNotOptimize(sim.outputBits("output"));
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["words/s"] = benchmark::Counter(
      static_cast<double>(cycles) * ports, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Routing_Simulate)->RangeMultiplier(2)->Range(2, 64);

}  // namespace
}  // namespace zeus::bench

BENCHMARK_MAIN();

// E7 — the firing-rule example of §8: the component `c` whose evaluation
// sequence the paper traces by hand (REG feedthrough, two conditional
// drivers on a multiplex INOUT port).  Measures single-component firing
// evaluation and asserts the §8 semantics: out = AND(a,b) when x=1 and
// y=0, out = c when y=1 and x=0, NOINFL when both switches are off, and a
// runtime error when both fire.
#include "bench/bench_util.h"

namespace zeus::bench {
namespace {

const char* kSection8 = R"(
TYPE c = COMPONENT (IN a, b, cc, x, y, rin: boolean;
                    OUT rout: boolean; out: multiplex) IS
  SIGNAL r: REG;
BEGIN
  IF x THEN out := AND(a,b) END;
  IF y THEN out := cc END;
  r(rin, rout)
END;
SIGNAL s8: c;
)";

void BM_Firing_Section8(benchmark::State& state) {
  BuiltDesign b = build(kSection8, "s8");
  Simulation sim(b.graph);
  sim.setInput("a", Logic::One);
  sim.setInput("b", Logic::One);
  sim.setInput("cc", Logic::Zero);
  sim.setInput("rin", Logic::One);
  uint64_t cycles = 0;
  bool phase = false;
  for (auto _ : state) {
    phase = !phase;
    sim.setInput("x", logicFromBool(phase));
    sim.setInput("y", logicFromBool(!phase));
    sim.step();
    ++cycles;
    Logic expect = phase ? Logic::One : Logic::Zero;  // AND(1,1) or cc=0
    if (sim.output("out") != expect) {
      state.SkipWithError("§8 semantics violated");
    }
  }
  if (!sim.errors().empty()) state.SkipWithError("unexpected collision");
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Firing_Section8);

void BM_Firing_Section8_EdgeCases(benchmark::State& state) {
  BuiltDesign b = build(kSection8, "s8");
  for (auto _ : state) {
    Simulation sim(b.graph);
    sim.setInput("a", Logic::One);
    sim.setInput("b", Logic::One);
    sim.setInput("cc", Logic::Zero);
    sim.setInput("rin", Logic::One);
    // Both switches off: the multiplex port is disconnected.
    sim.setInput("x", Logic::Zero);
    sim.setInput("y", Logic::Zero);
    sim.step();
    if (sim.output("out") != Logic::NoInfl) {
      state.SkipWithError("expected NOINFL with both switches off");
    }
    // Register: rout shows last cycle's rin.
    sim.setInput("rin", Logic::Zero);
    sim.evaluateOnly();
    if (sim.output("rout") != Logic::One) {
      state.SkipWithError("REG did not delay by one cycle");
    }
    // Both switches on: the runtime check must fire ("burning
    // transistors" guard) — the case the hand-traced sequence of §8
    // sidesteps.
    sim.setInput("x", Logic::One);
    sim.setInput("y", Logic::One);
    sim.step();
    if (sim.errors().empty()) {
      state.SkipWithError("double drive not detected");
    }
  }
}
BENCHMARK(BM_Firing_Section8_EdgeCases);

}  // namespace
}  // namespace zeus::bench

BENCHMARK_MAIN();

// E8 — evaluator ablation: the §8 firing rules (event-driven,
// short-circuit) versus the naive sweep-to-fixpoint baseline, over the
// paper's own circuit families.  This is the measurable content of the
// paper's claim that its semantics "imply a simulator which is
// conceptually simpler than state-of-the-art switch-level circuit
// simulators": one event pass per cycle versus depth-many full sweeps.
//
// Expected shape: on shallow circuits the two are comparable; as
// combinational depth grows (wide ripple-carry adders) the naive
// evaluator's per-cycle cost grows with depth × size while the firing
// evaluator stays linear in the touched region.
#include "bench/bench_util.h"

namespace zeus::bench {
namespace {

void runAdder(benchmark::State& state, EvaluatorKind kind) {
  const int width = static_cast<int>(state.range(0));
  BuiltDesign b = build(adderSource(width), "adder");
  Simulation sim(b.graph, kind);
  const uint64_t mask =
      width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  uint64_t rng = 0xFEED;
  uint64_t cycles = 0;
  sim.resetStats();
  for (auto _ : state) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    sim.setInputUint("a", rng & mask);
    sim.setInputUint("b", (rng >> 7) & mask);
    sim.setInput("cin", Logic::Zero);
    sim.step();
    ++cycles;
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["node-evals/cycle"] =
      static_cast<double>(sim.stats().nodeFirings) /
      static_cast<double>(cycles);
  if (kind == EvaluatorKind::Naive) {
    state.counters["sweeps/cycle"] =
        static_cast<double>(sim.stats().sweeps) /
        static_cast<double>(cycles);
  }
  state.counters["depth"] = static_cast<double>(b.graph.maxLevel);
}

void BM_Ablation_Adder_Firing(benchmark::State& state) {
  runAdder(state, EvaluatorKind::Firing);
}
void BM_Ablation_Adder_Naive(benchmark::State& state) {
  runAdder(state, EvaluatorKind::Naive);
}
BENCHMARK(BM_Ablation_Adder_Firing)->RangeMultiplier(2)->Range(8, 128);
BENCHMARK(BM_Ablation_Adder_Naive)->RangeMultiplier(2)->Range(8, 128);

void runPattern(benchmark::State& state, EvaluatorKind kind) {
  const int length = static_cast<int>(state.range(0));
  BuiltDesign b = build(patternSource(length), "m");
  Simulation sim(b.graph, kind);
  for (const char* port :
       {"pattern", "string", "endofpattern", "wild", "resultin"}) {
    sim.setInput(port, Logic::Zero);
  }
  sim.setRset(true);
  sim.step(static_cast<uint64_t>(length) + 2);
  sim.setRset(false);
  uint64_t cycles = 0;
  uint64_t beat = 0;
  sim.resetStats();
  for (auto _ : state) {
    sim.setInput("pattern", logicFromBool(beat & 1));
    sim.setInput("string", Logic::One);
    sim.setInput("endofpattern",
                 logicFromBool(beat % length == unsigned(length - 1)));
    sim.step();
    sim.setInput("pattern", Logic::Zero);
    sim.setInput("string", Logic::Zero);
    sim.setInput("endofpattern", Logic::Zero);
    sim.step();
    cycles += 2;
    ++beat;
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
  state.counters["node-evals/cycle"] =
      static_cast<double>(sim.stats().nodeFirings) /
      static_cast<double>(cycles);
}

void BM_Ablation_Pattern_Firing(benchmark::State& state) {
  runPattern(state, EvaluatorKind::Firing);
}
void BM_Ablation_Pattern_Naive(benchmark::State& state) {
  runPattern(state, EvaluatorKind::Naive);
}
BENCHMARK(BM_Ablation_Pattern_Firing)->Arg(15)->Arg(63);
BENCHMARK(BM_Ablation_Pattern_Naive)->Arg(15)->Arg(63);

// The short-circuit advantage in isolation: a deep AND chain killed at
// the root.  The firing evaluator settles the whole cone from one event;
// the naive baseline sweeps to full depth.
void runKillChain(benchmark::State& state, EvaluatorKind kind) {
  const int depth = static_cast<int>(state.range(0));
  std::string src = "TYPE t = COMPONENT (IN a, b: boolean; OUT o: boolean) "
                    "IS\n";
  for (int i = 0; i < depth; ++i)
    src += "SIGNAL w" + std::to_string(i) + ": boolean;\n";
  src += "BEGIN\nw0 := AND(a, b);\n";
  for (int i = 1; i < depth; ++i)
    src += "w" + std::to_string(i) + " := AND(w" + std::to_string(i - 1) +
           ", b);\n";
  src += "o := w" + std::to_string(depth - 1) + ";\nEND;\nSIGNAL top: t;\n";
  BuiltDesign b = build(src, "top");
  Simulation sim(b.graph, kind);
  sim.setInput("a", Logic::Zero);  // kills the whole chain at the root
  sim.setInput("b", Logic::One);
  uint64_t cycles = 0;
  for (auto _ : state) {
    sim.step();
    ++cycles;
    if (sim.output("o") != Logic::Zero) state.SkipWithError("wrong value");
  }
  state.counters["cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void BM_Ablation_KillChain_Firing(benchmark::State& state) {
  runKillChain(state, EvaluatorKind::Firing);
}
void BM_Ablation_KillChain_Naive(benchmark::State& state) {
  runKillChain(state, EvaluatorKind::Naive);
}
BENCHMARK(BM_Ablation_KillChain_Firing)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_Ablation_KillChain_Naive)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace zeus::bench

BENCHMARK_MAIN();

// E9 — levelized simulation: the statically scheduled evaluator against
// the firing rules and the naive fixpoint baseline, scalar and 64-lane
// batch, on the paper's ripple-carry adder (§3.2/§10).
//
// Unlike the google-benchmark binaries this one has a plain main() so the
// ctest smoke target can run it with a tiny cycle count and validate the
// emitted BENCH_sim.json.  Every evaluator is driven with the same
// pseudo-random stimulus and must produce the same checksum — the bench
// doubles as a coarse differential test.
//
// With --overhead it instead times the levelized engine in three
// configurations — a raw evaluator loop ("bare"), the Simulation facade
// with all observability off ("disabled") and with tracing + activity
// profiling on ("enabled") — and writes a zeus-bench-overhead-v1 JSON;
// the bench_metrics_smoke ctest asserts disabled stays within 5% of bare
// (the zero-overhead-when-disabled claim).
//
// Usage: bench_levelized [--cycles N] [--width W] [--out FILE] [--overhead]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/codegen/compiled.h"
#include "src/core/sim_farm.h"
#include "src/core/zeus.h"
#include "src/corpus/corpus.h"
#include "src/support/buildinfo.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace {

using Clock = std::chrono::steady_clock;

struct RunResult {
  std::string name;
  uint64_t lanes = 1;
  uint64_t evaluatedCycles = 0;  ///< calls into the evaluator
  uint64_t laneCycles = 0;       ///< stimulus vectors simulated
  double seconds = 0;
  uint64_t checksum = 0;  ///< sum of `s` outputs over all lane cycles
  zeus::metrics::SimCounters counters;  ///< embedded in BENCH_sim.json

  [[nodiscard]] double cyclesPerSec() const {
    return seconds > 0 ? static_cast<double>(laneCycles) / seconds : 0;
  }
};

uint64_t xorshift(uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

RunResult runScalar(const zeus::SimGraph& g, zeus::EvaluatorKind kind,
                    const char* name, int width, uint64_t cycles,
                    std::shared_ptr<const zeus::codegen::CompiledDesign>
                        compiled = nullptr) {
  zeus::Simulation::Options sopts;
  sopts.evaluator = kind;
  sopts.compiled = std::move(compiled);
  zeus::Simulation sim(g, sopts);
  const uint64_t mask =
      width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  uint64_t rng = 0xFEED;
  RunResult r;
  r.name = name;
  sim.setInput("cin", zeus::Logic::Zero);
  const Clock::time_point t0 = Clock::now();
  for (uint64_t i = 0; i < cycles; ++i) {
    uint64_t x = xorshift(rng);
    sim.setInputUint("a", x & mask);
    sim.setInputUint("b", (x >> 17) & mask);
    sim.step();
    r.checksum += *sim.outputUint("s");
  }
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.evaluatedCycles = cycles;
  r.laneCycles = cycles;
  r.counters = sim.metricsCounters();
  return r;
}

RunResult runBatch(const zeus::SimGraph& g, int width, uint64_t cycles,
                   const char* name = "levelized-batch",
                   std::shared_ptr<const zeus::codegen::CompiledDesign>
                       compiled = nullptr) {
  constexpr size_t kLanes = zeus::BatchSimulation::kMaxLanes;
  zeus::BatchSimulation sim(g, kLanes, std::move(compiled));
  const uint64_t mask =
      width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  uint64_t rng = 0xFEED;
  RunResult r;
  r.name = name;
  r.lanes = kLanes;
  sim.setInputAll("cin", zeus::Logic::Zero);
  const uint64_t evalCycles = (cycles + kLanes - 1) / kLanes;
  const Clock::time_point t0 = Clock::now();
  for (uint64_t i = 0; i < evalCycles; ++i) {
    for (size_t l = 0; l < kLanes; ++l) {
      uint64_t x = xorshift(rng);
      sim.setInputUint(l, "a", x & mask);
      sim.setInputUint(l, "b", (x >> 17) & mask);
    }
    sim.step();
    for (size_t l = 0; l < kLanes; ++l) {
      r.checksum += *sim.outputUint(l, "s");
    }
  }
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.evaluatedCycles = evalCycles;
  r.laneCycles = evalCycles * kLanes;
  r.counters = sim.metricsCounters();
  return r;
}

// ---------------------------------------------------------------------
// Native codegen backend (src/codegen/): the same stimulus through the
// hot-loaded compiled engine, scalar (lane 0 of the batch kernel) and
// full 64-lane batch.  Checksums must match the interpreters exactly —
// the tentpole claim is "faster, bit-identical".  On hosts without a
// C++ toolchain the block records available=false and the interpreter
// rows stand alone; the bench itself never fails for that.
// ---------------------------------------------------------------------

struct CodegenBenchResult {
  bool available = false;
  std::string error;      ///< why unavailable (verbatim loader error)
  bool cachedLoad = false;  ///< artifact came from the on-disk cache
  uint32_t optLevel = 1;
  double emitMs = 0, compileMs = 0, loadMs = 0;
  RunResult scalar;  ///< compiled engine, 1 live lane
  RunResult batch;   ///< compiled engine, 64 lanes
  bool checksumEqual = false;
};

/// Returns false only on a checksum divergence (a correctness bug); a
/// missing toolchain is recorded in `r` and the bench carries on.
bool runCodegenBench(const zeus::SimGraph& g, int width, uint64_t cycles,
                     uint64_t expectedChecksum, CodegenBenchResult& r) {
  zeus::codegen::CodegenOptions copts;
  std::string err;
  auto compiled = zeus::codegen::CompiledDesign::load(g, copts, err);
  if (!compiled) {
    r.error = err;
    std::fprintf(stderr,
                 "codegen unavailable (%s); skipping the compiled rows\n",
                 err.c_str());
    return true;
  }
  r.available = true;
  r.cachedLoad = compiled->cacheHit();
  r.optLevel = copts.optLevel;
  r.emitMs = static_cast<double>(compiled->emitUs()) / 1000.0;
  r.compileMs = static_cast<double>(compiled->compileUs()) / 1000.0;
  r.loadMs = static_cast<double>(compiled->loadUs()) / 1000.0;
  r.scalar = runScalar(g, zeus::EvaluatorKind::Compiled, "compiled", width,
                       cycles, compiled);
  r.batch = runBatch(g, width, cycles, "compiled-batch", compiled);
  r.checksumEqual = r.scalar.checksum == expectedChecksum &&
                    (r.batch.laneCycles != cycles ||
                     r.batch.checksum == expectedChecksum);
  if (!r.checksumEqual) {
    std::fprintf(stderr,
                 "codegen checksum mismatch: scalar %llx batch %llx != "
                 "interpreter %llx\n",
                 static_cast<unsigned long long>(r.scalar.checksum),
                 static_cast<unsigned long long>(r.batch.checksum),
                 static_cast<unsigned long long>(expectedChecksum));
    return false;
  }
  return true;
}

/// Parallel fault simulation throughput: sweep the full stuck-at universe
/// of the adder and report classified faults per second plus how full the
/// 63 fault lanes of each batch actually were.
struct CampaignResult {
  uint64_t faults = 0;
  uint64_t cycles = 0;
  uint64_t batches = 0;
  double seconds = 0;
  double laneUtilization = 0;  ///< faults / (batches * (lanes-1))
  uint64_t detected = 0;
  uint64_t masked = 0;
  uint64_t undetected = 0;
  double coverage = 0;

  [[nodiscard]] double faultsPerSec() const {
    return seconds > 0 ? static_cast<double>(faults) / seconds : 0;
  }
};

// ---------------------------------------------------------------------
// Optimizer benefit: the same stimulus through the levelized evaluator
// with the pass pipeline off and on.  The bench design wraps rippleCarry
// in a top that also instantiates a second, unread adder — exactly the
// kind of dead cone -O1 deletes — so the node-count delta (and the
// cycles/sec win that follows from it) is structural, not noise.
// Checksums must match across the two builds: this is the optimizer's
// differential test at bench scale.
// ---------------------------------------------------------------------

struct OptBenchResult {
  uint64_t nodesBefore = 0, nodesAfter = 0;
  uint64_t netsBefore = 0, netsAfter = 0;
  uint64_t folded = 0, removed = 0, dropped = 0;
  RunResult off;  ///< levelized scalar, -O0 build
  RunResult on;   ///< levelized scalar, -O1 build

  [[nodiscard]] double speedup() const {
    return off.cyclesPerSec() > 0 ? on.cyclesPerSec() / off.cyclesPerSec()
                                  : 0;
  }
};

/// benchtop = the live adder the outputs observe, plus a structurally
/// identical adder nothing reads.  DCE removes the spare's whole cone.
std::string optBenchSource(int width) {
  return std::string(zeus::corpus::kAdders) + R"(
benchtop(length) = COMPONENT (
    IN a,b: ARRAY[1..length] OF boolean; IN cin: boolean;
    OUT cout: boolean; OUT s: ARRAY[1..length] OF boolean) IS
  SIGNAL live, spare: rippleCarry(length);
BEGIN
  live(a,b,cin,cout,s);
  spare(a,b,0,*,*)
END;
SIGNAL bench: benchtop()" +
         std::to_string(width) + ");\n";
}

/// One build of the bench design at a given -O level.  The SimGraph
/// borrows the Design (g.design), so both live here together.
struct OptBuild {
  std::unique_ptr<zeus::Compilation> comp;
  std::unique_ptr<zeus::Design> design;
  zeus::OptReport rep;
  zeus::SimGraph g;
};

bool buildAtLevel(const std::string& src, int level, OptBuild& b) {
  b.comp = zeus::Compilation::fromSource("benchopt.zeus", src);
  if (!b.comp->ok()) {
    std::fprintf(stderr, "%s", b.comp->diagnosticsText().c_str());
    return false;
  }
  b.design = b.comp->elaborate("bench");
  if (!b.design) return false;
  zeus::OptOptions opts;
  opts.level = level;
  b.rep = b.comp->optimize(*b.design, opts);
  if (!b.rep.verified) {
    std::fprintf(stderr, "opt verifier failed at -O%d: %s\n", level,
                 b.rep.verifyError.c_str());
    return false;
  }
  b.g = zeus::buildSimGraph(*b.design, b.comp->diags());
  return !b.g.hasCycle;
}

bool runOptBench(int width, uint64_t cycles, OptBenchResult& r) {
  const std::string src = optBenchSource(width);
  OptBuild off, on;
  if (!buildAtLevel(src, 0, off) || !buildAtLevel(src, 1, on)) return false;
  const zeus::SimGraph& gOff = off.g;
  const zeus::SimGraph& gOn = on.g;
  const zeus::OptReport& repOn = on.rep;

  r.nodesBefore = repOn.nodesBefore;
  r.nodesAfter = repOn.nodesAfter;
  r.netsBefore = repOn.denseBefore;
  r.netsAfter = repOn.denseAfter;
  r.folded = repOn.totalFolded();
  r.removed = repOn.totalRemoved();
  r.dropped = repOn.totalDropped();
  r.off = runScalar(gOff, zeus::EvaluatorKind::Levelized, "opt-off", width,
                    cycles);
  r.on = runScalar(gOn, zeus::EvaluatorKind::Levelized, "opt-on", width,
                   cycles);
  if (r.off.checksum != r.on.checksum) {
    std::fprintf(stderr, "optimizer changed behaviour: checksum %llu != %llu\n",
                 static_cast<unsigned long long>(r.off.checksum),
                 static_cast<unsigned long long>(r.on.checksum));
    return false;
  }
  if (r.nodesAfter >= r.nodesBefore) {
    std::fprintf(stderr,
                 "optimizer removed nothing from the bench design "
                 "(%llu -> %llu nodes); the dead cone was not dead\n",
                 static_cast<unsigned long long>(r.nodesBefore),
                 static_cast<unsigned long long>(r.nodesAfter));
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// Multi-core farm scaling: the same design at 1/2/4 worker threads over
// 4 blocks × 64 lanes.  The farm's determinism contract means every row
// (and the scalar oracle) must produce the same merged checksum — the
// thread sweep is also a differential test.  Scaling itself is only
// meaningful when the host has the cores; BENCH_sim.json records
// host_cores so the checker can gate the speedup assertion on it.
// ---------------------------------------------------------------------

struct FarmThreadRun {
  size_t threads = 0;
  double seconds = 0;
  double laneCyclesPerSec = 0;
  uint64_t checksum = 0;
};

struct FarmBenchResult {
  size_t lanes = 0;
  size_t lanesPerBlock = 0;
  size_t blocks = 0;
  uint64_t cyclesPerLane = 0;
  unsigned hostCores = 0;
  std::vector<FarmThreadRun> runs;  ///< threads = 1, 2, 4
  uint64_t oracleChecksum = 0;
  /// Per-block wall times merged over the whole thread sweep, for the
  /// BENCH_sim.json latency block.
  zeus::histogram::Histogram blockUs;

  [[nodiscard]] double speedup4v1() const {
    return !runs.empty() && runs.front().laneCyclesPerSec > 0
               ? runs.back().laneCyclesPerSec / runs.front().laneCyclesPerSec
               : 0;
  }
};

bool runFarmBench(const zeus::SimGraph& g, uint64_t totalCycles,
                  FarmBenchResult& r) {
  r.lanes = 4 * zeus::BatchSimulation::kMaxLanes;
  r.lanesPerBlock = zeus::BatchSimulation::kMaxLanes;
  r.blocks = 4;
  // Same lane-cycle volume as the 64-lane batch row, spread over 4 blocks.
  r.cyclesPerLane = std::max<uint64_t>(1, totalCycles / r.lanes);
  r.hostCores = std::thread::hardware_concurrency();
  zeus::FarmOptions opts;
  opts.lanes = r.lanes;
  opts.cycles = r.cyclesPerLane;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    opts.threads = threads;
    zeus::FarmReport rep = zeus::runFarm(g, opts);
    r.runs.push_back({threads, rep.seconds, rep.laneCyclesPerSec(),
                      rep.mergedChecksum()});
    r.blockUs.merge(rep.blockUs);
  }
  zeus::FarmReport oracle = zeus::runFarmScalarOracle(g, opts);
  r.oracleChecksum = oracle.mergedChecksum();
  for (const FarmThreadRun& run : r.runs) {
    if (run.checksum != r.oracleChecksum) {
      std::fprintf(stderr,
                   "farm checksum mismatch at %zu thread(s): %llx != "
                   "oracle %llx\n",
                   run.threads,
                   static_cast<unsigned long long>(run.checksum),
                   static_cast<unsigned long long>(r.oracleChecksum));
      return false;
    }
  }
  return true;
}

CampaignResult runCampaign(const zeus::SimGraph& g, uint64_t cycles) {
  zeus::FaultCampaignOptions opts;
  opts.cycles = cycles;
  CampaignResult r;
  const Clock::time_point t0 = Clock::now();
  zeus::FaultCampaignReport rep = zeus::runFaultCampaign(g, opts);
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  r.faults = rep.faults.size();
  r.cycles = rep.cycles;
  r.batches = rep.totalBatches;
  const uint64_t laneSlots = rep.totalBatches * (rep.lanes - 1);
  r.laneUtilization =
      laneSlots ? static_cast<double>(r.faults) / laneSlots : 0;
  r.detected = rep.countOf(zeus::FaultOutcome::Status::Detected);
  r.masked = rep.countOf(zeus::FaultOutcome::Status::Masked);
  r.undetected = rep.countOf(zeus::FaultOutcome::Status::Undetected);
  r.coverage = rep.coverage();
  return r;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

void emitJson(const std::string& path, int width, uint64_t cycles,
              const std::vector<RunResult>& runs,
              const CampaignResult& campaign, const OptBenchResult& opt,
              const FarmBenchResult& farm, const CodegenBenchResult& cg,
              double farmVsBatch, double speedupBatch,
              double speedupLevelized) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"schema\": \"zeus-bench-sim-v1\",\n"
      << "  \"build\": " << zeus::buildinfo::renderJson() << ",\n"
      << "  \"design\": \"rippleCarry\",\n"
      << "  \"width\": " << width << ",\n"
      << "  \"cycles\": " << cycles << ",\n"
      << "  \"evaluators\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    out << "    {\"name\": \"" << r.name << "\", \"lanes\": " << r.lanes
        << ", \"evaluated_cycles\": " << r.evaluatedCycles
        << ", \"lane_cycles\": " << r.laneCycles
        << ", \"seconds\": " << r.seconds
        << ", \"cycles_per_sec\": " << r.cyclesPerSec()
        << ", \"checksum\": " << r.checksum << ",\n     \"metrics\": "
        << zeus::metrics::simCountersJson(r.counters) << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"fault_campaign\": {\"faults\": " << campaign.faults
      << ", \"cycles\": " << campaign.cycles
      << ", \"batches\": " << campaign.batches
      << ", \"seconds\": " << campaign.seconds
      << ", \"faults_per_sec\": " << campaign.faultsPerSec()
      << ", \"lane_utilization\": " << campaign.laneUtilization
      << ", \"detected\": " << campaign.detected
      << ", \"masked\": " << campaign.masked
      << ", \"undetected\": " << campaign.undetected
      << ", \"coverage\": " << campaign.coverage << "},\n"
      << "  \"optimization\": {\n"
      << "    \"design\": \"benchtop\",\n"
      << "    \"nodes\": {\"before\": " << opt.nodesBefore
      << ", \"after\": " << opt.nodesAfter << "},\n"
      << "    \"nets\": {\"before\": " << opt.netsBefore
      << ", \"after\": " << opt.netsAfter << "},\n"
      << "    \"folded\": " << opt.folded
      << ", \"removed\": " << opt.removed
      << ", \"dropped\": " << opt.dropped << ",\n"
      << "    \"off\": {\"seconds\": " << opt.off.seconds
      << ", \"cycles_per_sec\": " << opt.off.cyclesPerSec()
      << ", \"checksum\": " << opt.off.checksum << "},\n"
      << "    \"on\": {\"seconds\": " << opt.on.seconds
      << ", \"cycles_per_sec\": " << opt.on.cyclesPerSec()
      << ", \"checksum\": " << opt.on.checksum << "},\n"
      << "    \"speedup_on_vs_off\": " << opt.speedup() << "\n"
      << "  },\n"
      << "  \"farm\": {\n"
      << "    \"lanes\": " << farm.lanes
      << ", \"lanes_per_block\": " << farm.lanesPerBlock
      << ", \"blocks\": " << farm.blocks
      << ", \"cycles_per_lane\": " << farm.cyclesPerLane
      << ", \"host_cores\": " << farm.hostCores << ",\n"
      << "    \"threads\": [\n";
  for (size_t i = 0; i < farm.runs.size(); ++i) {
    const FarmThreadRun& t = farm.runs[i];
    out << "      {\"threads\": " << t.threads
        << ", \"seconds\": " << t.seconds
        << ", \"lane_cycles_per_sec\": " << t.laneCyclesPerSec
        << ", \"checksum\": " << t.checksum << "}"
        << (i + 1 < farm.runs.size() ? "," : "") << "\n";
  }
  std::vector<zeus::histogram::Snapshot> latency;
  latency.push_back(
      zeus::histogram::snapshot(farm.blockUs, "farm.block_us", "us"));
  out << "    ],\n"
      << "    \"oracle_checksum\": " << farm.oracleChecksum << ",\n"
      << "    \"speedup_4_vs_1\": " << farm.speedup4v1() << ",\n"
      << "    \"speedup_vs_batch64\": " << farmVsBatch << "\n"
      << "  },\n";
  const double levelizedCps = runs.size() > 2 ? runs[2].cyclesPerSec() : 0;
  const double batchCps = runs.size() > 3 ? runs[3].cyclesPerSec() : 0;
  out << "  \"codegen\": {\n"
      << "    \"available\": " << (cg.available ? "true" : "false") << ",\n"
      << "    \"error\": \"" << jsonEscape(cg.error) << "\",\n"
      << "    \"opt_level\": " << cg.optLevel
      << ", \"cached_load\": " << (cg.cachedLoad ? "true" : "false")
      << ",\n"
      << "    \"emit_ms\": " << cg.emitMs
      << ", \"compile_ms\": " << cg.compileMs
      << ", \"load_ms\": " << cg.loadMs << ",\n"
      << "    \"scalar\": {\"name\": \"" << cg.scalar.name
      << "\", \"lanes\": " << cg.scalar.lanes
      << ", \"lane_cycles\": " << cg.scalar.laneCycles
      << ", \"seconds\": " << cg.scalar.seconds
      << ", \"cycles_per_sec\": " << cg.scalar.cyclesPerSec()
      << ", \"checksum\": " << cg.scalar.checksum << ",\n     \"metrics\": "
      << zeus::metrics::simCountersJson(cg.scalar.counters) << "},\n"
      << "    \"batch\": {\"name\": \"" << cg.batch.name
      << "\", \"lanes\": " << cg.batch.lanes
      << ", \"lane_cycles\": " << cg.batch.laneCycles
      << ", \"seconds\": " << cg.batch.seconds
      << ", \"cycles_per_sec\": " << cg.batch.cyclesPerSec()
      << ", \"checksum\": " << cg.batch.checksum << ",\n     \"metrics\": "
      << zeus::metrics::simCountersJson(cg.batch.counters) << "},\n"
      << "    \"checksum_equal\": " << (cg.checksumEqual ? "true" : "false")
      << ",\n"
      << "    \"speedup_scalar_vs_levelized\": "
      << (levelizedCps > 0 ? cg.scalar.cyclesPerSec() / levelizedCps : 0)
      << ",\n"
      << "    \"speedup_vs_levelized\": "
      << (levelizedCps > 0 ? cg.batch.cyclesPerSec() / levelizedCps : 0)
      << ",\n"
      << "    \"speedup_vs_batch64\": "
      << (batchCps > 0 ? cg.batch.cyclesPerSec() / batchCps : 0) << "\n"
      << "  },\n"
      << "  \"latency\": "
      << zeus::histogram::renderLatencyBlock(latency, "  ") << ",\n"
      << "  \"speedup_levelized_vs_firing\": " << speedupLevelized << ",\n"
      << "  \"speedup_batch_vs_firing\": " << speedupBatch << "\n"
      << "}\n";
}

// ---------------------------------------------------------------------
// Overhead mode (--overhead): the zero-overhead-when-disabled guard.
// ---------------------------------------------------------------------

/// Raw levelized loop: evaluator + two-phase register latch, nothing
/// else.  This is the uninstrumented wall-clock the facade competes with.
double timeBare(const zeus::SimGraph& g, uint64_t cycles) {
  zeus::LevelizedEvaluator eval(g);
  const zeus::Netlist& nl = g.design->netlist;
  std::vector<zeus::Logic> inputValues(g.denseCount, zeus::Logic::Undef);
  std::vector<char> inputSet(g.denseCount, 0);
  std::vector<zeus::Logic> regValues(g.regNodes.size(), zeus::Logic::Undef);
  uint32_t clk = g.dense(g.design->clk);
  inputValues[clk] = zeus::Logic::One;
  inputSet[clk] = 1;
  uint32_t rset = g.dense(g.design->rset);
  inputValues[rset] = zeus::Logic::Zero;
  inputSet[rset] = 1;
  zeus::CycleSeeds seeds;
  seeds.inputValues = &inputValues;
  seeds.inputSet = &inputSet;
  seeds.regValues = &regValues;
  zeus::CycleResult result;
  const Clock::time_point t0 = Clock::now();
  for (uint64_t i = 0; i < cycles; ++i) {
    eval.evaluate(seeds, result);
    for (size_t k = 0; k < g.regNodes.size(); ++k) {
      const zeus::Node& reg = nl.node(g.regNodes[k]);
      uint32_t in = g.dense(reg.inputs[0]);
      if (result.activeCounts[in] > 0) {
        zeus::Logic v = result.netValues[in];
        regValues[k] = v == zeus::Logic::NoInfl ? zeus::Logic::Undef : v;
      }
    }
  }
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The same per-cycle work through the Simulation facade.  Inputs stay
/// constant (the levelized schedule walks every node regardless), so the
/// measured difference is exactly the facade + instrumentation cost.
double timeFacade(const zeus::SimGraph& g, uint64_t cycles, bool observed) {
  zeus::Simulation::Options opts;
  opts.evaluator = zeus::EvaluatorKind::Levelized;
  opts.profileActivity = observed;
  zeus::Simulation sim(g, opts);
  const Clock::time_point t0 = Clock::now();
  sim.step(cycles);
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int runOverhead(const zeus::SimGraph& g, uint64_t cycles,
                const std::string& outPath) {
  // Best-of-5, interleaved, so scheduler hiccups (or a parallel build on
  // the same machine) cannot decide the comparison either way.
  double bare = 1e99, disabled = 1e99, enabled = 1e99;
  for (int rep = 0; rep < 5; ++rep) {
    zeus::trace::setEnabled(false);
    bare = std::min(bare, timeBare(g, cycles));
    disabled = std::min(disabled, timeFacade(g, cycles, false));
    zeus::trace::setEnabled(true);
    enabled = std::min(enabled, timeFacade(g, cycles, true));
  }
  zeus::trace::setEnabled(false);
  const double disabledOverBare = bare > 0 ? disabled / bare : 0;
  const double enabledOverBare = bare > 0 ? enabled / bare : 0;

  std::ofstream out(outPath);
  out << "{\n"
      << "  \"schema\": \"zeus-bench-overhead-v1\",\n"
      << "  \"cycles\": " << cycles << ",\n"
      << "  \"bare_seconds\": " << bare << ",\n"
      << "  \"disabled_seconds\": " << disabled << ",\n"
      << "  \"enabled_seconds\": " << enabled << ",\n"
      << "  \"disabled_over_bare\": " << disabledOverBare << ",\n"
      << "  \"enabled_over_bare\": " << enabledOverBare << "\n"
      << "}\n";
  std::printf("bare      %.6fs\ndisabled  %.6fs (%.3fx)\nenabled   %.6fs "
              "(%.3fx)\nwrote %s\n",
              bare, disabled, disabledOverBare, enabled, enabledOverBare,
              outPath.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t cycles = 20480;  // multiple of 64: batch checksum is comparable
  int width = 32;
  bool overhead = false;
  std::string outPath;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (!std::strcmp(argv[i], "--cycles")) {
      const char* v = next();
      if (v) cycles = std::strtoull(v, nullptr, 10);
    } else if (!std::strcmp(argv[i], "--width")) {
      const char* v = next();
      if (v) width = std::atoi(v);
    } else if (!std::strcmp(argv[i], "--out")) {
      const char* v = next();
      if (v) outPath = v;
    } else if (!std::strcmp(argv[i], "--overhead")) {
      overhead = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_levelized [--cycles N] [--width W] "
                   "[--out FILE] [--overhead]\n");
      return 2;
    }
  }
  if (outPath.empty()) {
    outPath = overhead ? "BENCH_overhead.json" : "BENCH_sim.json";
  }

  std::string src = std::string(zeus::corpus::kAdders) +
                    "SIGNAL adder: rippleCarry(" + std::to_string(width) +
                    ");\n";
  auto comp = zeus::Compilation::fromSource("bench.zeus", src);
  if (!comp->ok()) {
    std::fprintf(stderr, "%s", comp->diagnosticsText().c_str());
    return 1;
  }
  auto design = comp->elaborate("adder");
  if (!design) return 1;
  zeus::SimGraph g = zeus::buildSimGraph(*design, comp->diags());
  if (g.hasCycle) return 1;

  if (overhead) return runOverhead(g, cycles, outPath);

  std::vector<RunResult> runs;
  runs.push_back(
      runScalar(g, zeus::EvaluatorKind::Naive, "naive", width, cycles));
  runs.push_back(
      runScalar(g, zeus::EvaluatorKind::Firing, "firing", width, cycles));
  runs.push_back(runScalar(g, zeus::EvaluatorKind::Levelized, "levelized",
                           width, cycles));
  runs.push_back(runBatch(g, width, cycles));

  // Identical stimulus must give identical checksums everywhere; a
  // mismatch means an evaluator is wrong, so fail loudly.
  for (const RunResult& r : runs) {
    if (r.laneCycles == cycles && r.checksum != runs[0].checksum) {
      std::fprintf(stderr, "checksum mismatch: %s\n", r.name.c_str());
      return 1;
    }
  }

  // The native codegen backend against the same stimulus; bit-identical
  // checksums are a hard requirement, a missing toolchain is not.
  CodegenBenchResult cg;
  if (!runCodegenBench(g, width, cycles, runs[0].checksum, cg)) return 1;

  // Fault-campaign throughput on the same design: 16 stimulus cycles per
  // fault keeps the smoke run fast while exercising full batches.
  CampaignResult campaign = runCampaign(g, /*cycles=*/16);

  // Optimizer benefit: levelized cycles/sec with the pass pipeline off
  // and on, over a design carrying a provably dead adder cone.
  OptBenchResult opt;
  if (!runOptBench(width, cycles, opt)) return 1;

  // Farm scaling sweep (1/2/4 threads, 4 blocks × 64 lanes) plus the
  // scalar-oracle checksum cross-check.
  FarmBenchResult farm;
  if (!runFarmBench(g, cycles, farm)) return 1;

  const double firing = runs[1].cyclesPerSec();
  const double speedupLevelized =
      firing > 0 ? runs[2].cyclesPerSec() / firing : 0;
  const double speedupBatch =
      firing > 0 ? runs[3].cyclesPerSec() / firing : 0;
  const double batch64 = runs[3].cyclesPerSec();
  const double farmVsBatch =
      batch64 > 0 && !farm.runs.empty()
          ? farm.runs.back().laneCyclesPerSec / batch64
          : 0;
  emitJson(outPath, width, cycles, runs, campaign, opt, farm, cg,
           farmVsBatch, speedupBatch, speedupLevelized);

  for (const RunResult& r : runs) {
    std::printf("%-18s %12.0f cycles/s  (%llu lane-cycles in %.3fs)\n",
                r.name.c_str(), r.cyclesPerSec(),
                static_cast<unsigned long long>(r.laneCycles), r.seconds);
  }
  std::printf("levelized vs firing: %.2fx\n", speedupLevelized);
  std::printf("batch-64  vs firing: %.2fx\n", speedupBatch);
  if (cg.available) {
    const double lvl = runs[2].cyclesPerSec();
    std::printf("%-18s %12.0f cycles/s  (%llu lane-cycles in %.3fs)\n",
                cg.scalar.name.c_str(), cg.scalar.cyclesPerSec(),
                static_cast<unsigned long long>(cg.scalar.laneCycles),
                cg.scalar.seconds);
    std::printf("%-18s %12.0f cycles/s  (%llu lane-cycles in %.3fs)\n",
                cg.batch.name.c_str(), cg.batch.cyclesPerSec(),
                static_cast<unsigned long long>(cg.batch.laneCycles),
                cg.batch.seconds);
    std::printf("compiled  vs levelized: %.2fx scalar, %.2fx batch "
                "(emit %.1fms, compile %.1fms, load %.1fms%s)\n",
                lvl > 0 ? cg.scalar.cyclesPerSec() / lvl : 0,
                lvl > 0 ? cg.batch.cyclesPerSec() / lvl : 0, cg.emitMs,
                cg.compileMs, cg.loadMs,
                cg.cachedLoad ? ", cached" : "");
  }
  for (const FarmThreadRun& t : farm.runs) {
    std::printf("farm %zut            %12.0f lane-cycles/s  (%zu lanes in "
                "%.3fs)\n",
                t.threads, t.laneCyclesPerSec, farm.lanes, t.seconds);
  }
  std::printf("farm 4t vs 1t:       %.2fx (%u host cores)\n",
              farm.speedup4v1(), farm.hostCores);
  std::printf(
      "fault campaign     %12.0f faults/s  (%llu faults, %.0f%% lanes "
      "used, %.1f%% coverage)\n",
      campaign.faultsPerSec(),
      static_cast<unsigned long long>(campaign.faults),
      100.0 * campaign.laneUtilization, 100.0 * campaign.coverage);
  std::printf(
      "optimizer          %12.0f -> %.0f cycles/s (%.2fx; %llu -> %llu "
      "nodes, %llu folded, %llu removed, %llu nets dropped)\n",
      opt.off.cyclesPerSec(), opt.on.cyclesPerSec(), opt.speedup(),
      static_cast<unsigned long long>(opt.nodesBefore),
      static_cast<unsigned long long>(opt.nodesAfter),
      static_cast<unsigned long long>(opt.folded),
      static_cast<unsigned long long>(opt.removed),
      static_cast<unsigned long long>(opt.dropped));
  std::printf("wrote %s\n", outPath.c_str());
  return 0;
}

// E4 — the H-tree (paper §10, Fig. htree): regenerates the linear-area
// figure.  For each leaf count n the solved layout must be a sqrt(n) ×
// sqrt(n) square, i.e. area(n) = n cells — the property the paper
// advertises for this recursive layout ("the well-known H-tree which has
// a linear layout area").  The naive row layout of tree(n) is measured
// alongside as the contrast.
#include <cstdio>

#include "bench/bench_util.h"

namespace zeus::bench {
namespace {

void BM_Htree_LayoutArea(benchmark::State& state) {
  const int leaves = static_cast<int>(state.range(0));
  BuiltDesign b = build(htreeSource(leaves), "a");
  int64_t area = 0;
  for (auto _ : state) {
    LayoutResult lr = solveLayout(*b.design, b.comp->diags());
    area = lr.bounds.area();
    benchmark::DoNotOptimize(lr);
    if (area != leaves) state.SkipWithError("H-tree area is not linear");
    if (lr.bounds.w != lr.bounds.h) state.SkipWithError("not square");
  }
  state.counters["area"] = static_cast<double>(area);
  state.counters["leaves"] = static_cast<double>(leaves);
  state.counters["aspect"] = 1.0;
  state.SetComplexityN(leaves);
}
BENCHMARK(BM_Htree_LayoutArea)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Complexity();

void BM_Tree_LayoutAreaContrast(benchmark::State& state) {
  const int leaves = static_cast<int>(state.range(0));
  BuiltDesign b = build(treeSource(/*recursive=*/true, leaves), "a");
  for (auto _ : state) {
    LayoutResult lr = solveLayout(*b.design, b.comp->diags());
    benchmark::DoNotOptimize(lr);
    state.counters["area"] = static_cast<double>(lr.bounds.area());
    state.counters["aspect"] =
        static_cast<double>(lr.bounds.w) / static_cast<double>(lr.bounds.h);
  }
  state.SetComplexityN(leaves);
}
BENCHMARK(BM_Tree_LayoutAreaContrast)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Arg(1024);

}  // namespace
}  // namespace zeus::bench

BENCHMARK_MAIN();

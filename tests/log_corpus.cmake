# ctest driver: run `zeusc --sim 8 --log` over every built-in corpus
# entry and validate the emitted zeus-log-v1 JSONL (docs/observability.md).
#
#   cmake -DZEUSC=<path-to-zeusc> -DWORKDIR=<scratch dir> -P log_corpus.cmake
#
# Checks, per entry:
#   * zeusc exits 0 and writes the log file;
#   * line 1 is the zeus-log-v1 header with a build stamp
#     (git/compiler/build_type/trace_compiled_out);
#   * every following line is one valid JSON object (string(JSON ...)
#     hard-errors on malformed lines) with the full envelope: v == 1, a
#     monotonically non-decreasing ts_us, a known severity, non-empty
#     subsystem and event names;
#   * the pipeline actually logged: the compile front-end and the sim
#     run both show up.
cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

if(NOT DEFINED ZEUSC)
  message(FATAL_ERROR "pass -DZEUSC=<path to the zeusc binary>")
endif()
if(NOT DEFINED WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

execute_process(COMMAND ${ZEUSC} --list-examples
                OUTPUT_VARIABLE listing
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "zeusc --list-examples failed (rc=${rc})")
endif()

string(REPLACE "\n" ";" lines "${listing}")
set(entries "")
foreach(line IN LISTS lines)
  if(line MATCHES "^([a-z0-9-]+)[ \t]")
    list(APPEND entries "${CMAKE_MATCH_1}")
  endif()
endforeach()
list(LENGTH entries count)
if(count LESS 10)
  message(FATAL_ERROR "expected at least 10 corpus entries, got ${count}: ${entries}")
endif()

foreach(entry IN LISTS entries)
  set(lfile "${WORKDIR}/log_${entry}.jsonl")
  file(REMOVE ${lfile})
  execute_process(COMMAND ${ZEUSC} --example ${entry} --sim 8 --log ${lfile}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "${entry}: zeusc --sim 8 --log exited ${rc}\n${out}\n${err}")
  endif()
  if(NOT EXISTS ${lfile})
    message(FATAL_ERROR "${entry}: ${lfile} was not written")
  endif()

  file(STRINGS ${lfile} loglines)
  list(LENGTH loglines nlines)
  if(nlines LESS 2)
    message(FATAL_ERROR "${entry}: log has ${nlines} line(s), expected header + events")
  endif()

  # Header line: schema + build stamp.
  list(GET loglines 0 header)
  string(JSON schema GET "${header}" "schema")
  if(NOT schema STREQUAL "zeus-log-v1")
    message(FATAL_ERROR "${entry}: header schema '${schema}', expected zeus-log-v1")
  endif()
  foreach(field git compiler build_type trace_compiled_out)
    string(JSON v ERROR_VARIABLE jerr GET "${header}" "build" ${field})
    if(jerr)
      message(FATAL_ERROR "${entry}: header missing build.${field}: ${jerr}")
    endif()
  endforeach()

  # Event lines: full envelope, monotonic timestamps, known severities.
  set(lastts 0)
  set(sawfrontend 0)
  set(sawsim 0)
  math(EXPR last "${nlines} - 1")
  foreach(i RANGE 1 ${last})
    list(GET loglines ${i} eline)
    string(JSON v GET "${eline}" "v")
    if(NOT v EQUAL 1)
      message(FATAL_ERROR "${entry}: line ${i} has v=${v}\n${eline}")
    endif()
    string(JSON ts GET "${eline}" "ts_us")
    if(ts LESS lastts)
      message(FATAL_ERROR
              "${entry}: line ${i} ts_us=${ts} < previous ${lastts}\n${eline}")
    endif()
    set(lastts ${ts})
    string(JSON sev GET "${eline}" "sev")
    if(NOT sev MATCHES "^(debug|info|warn|error)$")
      message(FATAL_ERROR "${entry}: line ${i} bad severity '${sev}'\n${eline}")
    endif()
    string(JSON sub GET "${eline}" "sub")
    string(JSON ev GET "${eline}" "ev")
    if(sub STREQUAL "" OR ev STREQUAL "")
      message(FATAL_ERROR "${entry}: line ${i} empty sub/ev\n${eline}")
    endif()
    if(ev STREQUAL "front-end-done")
      set(sawfrontend 1)
      string(JSON toks GET "${eline}" "fields" "tokens")
      if(toks LESS_EQUAL 0)
        message(FATAL_ERROR "${entry}: front-end-done tokens=${toks}\n${eline}")
      endif()
    endif()
    if(sub STREQUAL "sim" AND ev STREQUAL "run-done")
      set(sawsim 1)
      string(JSON c GET "${eline}" "fields" "cycles")
      if(NOT c EQUAL 8)
        message(FATAL_ERROR "${entry}: sim run-done cycles=${c}, expected 8\n${eline}")
      endif()
    endif()
  endforeach()
  if(NOT sawfrontend)
    message(FATAL_ERROR "${entry}: no compile front-end-done event logged")
  endif()
  if(NOT sawsim)
    message(FATAL_ERROR "${entry}: no sim run-done event logged")
  endif()

  math(EXPR nevents "${nlines} - 1")
  message(STATUS "${entry}: ok (${nevents} event(s))")
endforeach()

message(STATUS "log_corpus: ${count} corpus entries validated")

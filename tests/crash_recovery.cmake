# ctest driver: SIGKILL a fault campaign mid-sweep, resume it from the
# last batch-boundary checkpoint, and require the recovered coverage
# report to be byte-identical to a run that was never interrupted
# (docs/fault-injection.md).
#
#   cmake -DZEUSC=<path-to-zeusc> -DWORKDIR=<scratch dir> -P crash_recovery.cmake
#
# The adders entry at 8 cycles/fault sweeps 344 stuck-ats in 6 batches of
# 63 lanes (48 batch cycles total); --die-at-cycle 20 kills the process
# inside batch 3, after the batch-2 checkpoint has been renamed into
# place atomically.
cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED ZEUSC)
  message(FATAL_ERROR "pass -DZEUSC=<path to the zeusc binary>")
endif()
if(NOT DEFINED WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(straight "${WORKDIR}/crash_recovery_straight.json")
set(recovered "${WORKDIR}/crash_recovery_recovered.json")
set(ckpt "${WORKDIR}/crash_recovery.snap")
file(REMOVE ${straight} ${recovered} ${ckpt})

# 1. The uninterrupted reference run.
execute_process(COMMAND ${ZEUSC} --example adders --sim 8 --fault-campaign
                        --fault-seed 7 --fault-out ${straight}
                OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "straight campaign exited ${rc}\n${out}\n${err}")
endif()

# 2. The same campaign, checkpointing every batch and crashing (SIGKILL,
#    so no destructor or atexit path can help) mid-sweep.
execute_process(COMMAND ${ZEUSC} --example adders --sim 8 --fault-campaign
                        --fault-seed 7 --checkpoint ${ckpt}
                        --checkpoint-every 1 --die-at-cycle 20
                        --fault-out ${recovered}
                OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "--die-at-cycle 20 run exited 0; it was supposed to crash")
endif()
if(EXISTS ${recovered})
  message(FATAL_ERROR "crashed run wrote ${recovered}; the kill came too late")
endif()
if(NOT EXISTS ${ckpt})
  message(FATAL_ERROR "no checkpoint survived the crash at ${ckpt}")
endif()

# 3. Resume from the surviving checkpoint and finish the sweep.
execute_process(COMMAND ${ZEUSC} --example adders --sim 8 --fault-campaign
                        --fault-seed 7 --resume ${ckpt}
                        --fault-out ${recovered}
                OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed campaign exited ${rc}\n${out}\n${err}")
endif()

# 4. Bit-exact recovery: the recovered report matches the straight run.
file(READ ${straight} want)
file(READ ${recovered} got)
if(NOT want STREQUAL got)
  message(FATAL_ERROR
          "recovered coverage report differs from the straight run\n"
          "--- straight ---\n${want}\n--- recovered ---\n${got}")
endif()

# 5. A corrupt checkpoint must be rejected with a structured error, and
#    the failed resume must not clobber the good report.  (The loader's
#    full truncation sweep lives in unit tests and the fuzz corpus; here
#    we check the CLI surface end-to-end.)
set(badckpt "${WORKDIR}/crash_recovery_corrupt.snap")
file(WRITE ${badckpt} "this is not a ZSNP checkpoint")
execute_process(COMMAND ${ZEUSC} --example adders --sim 8 --fault-campaign
                        --fault-seed 7 --resume ${badckpt}
                        --fault-out ${WORKDIR}/crash_recovery_bad.json
                OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "resume from a truncated checkpoint exited 0\n${out}")
endif()
if(NOT err MATCHES "cannot resume")
  message(FATAL_ERROR "truncated-checkpoint error is unstructured:\n${err}")
endif()

# 6. Checkpoints depend on the optimization level: a snapshot written at
#    the default -O1 must not resume at -O0 (the dense state layouts
#    differ), and the error must say so.
set(o1snap "${WORKDIR}/crash_recovery_o1.snap")
file(REMOVE ${o1snap})
execute_process(COMMAND ${ZEUSC} --example adders --sim 8
                        --checkpoint ${o1snap}
                OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "-O1 checkpointed sim exited ${rc}\n${out}\n${err}")
endif()
if(NOT EXISTS ${o1snap})
  message(FATAL_ERROR "no final checkpoint written at ${o1snap}")
endif()
execute_process(COMMAND ${ZEUSC} --example adders --sim 8 -O0
                        --resume ${o1snap}
                OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "-O0 resume of a -O1 checkpoint exited 0\n${out}")
endif()
if(NOT err MATCHES "cannot resume")
  message(FATAL_ERROR "cross-opt-level resume error is unstructured:\n${err}")
endif()
if(NOT err MATCHES "optimization level")
  message(FATAL_ERROR
          "cross-opt-level resume error lacks the -O hint:\n${err}")
endif()
# Matching level: the same checkpoint resumes cleanly.
execute_process(COMMAND ${ZEUSC} --example adders --sim 8
                        --resume ${o1snap}
                OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "-O1 resume of a -O1 checkpoint exited ${rc}\n${err}")
endif()

# 7. The same guard on fault-campaign checkpoints, via the campaign that
#    step 3 left on disk.
execute_process(COMMAND ${ZEUSC} --example adders --sim 8 --fault-campaign
                        --fault-seed 7 -O0 --resume ${ckpt}
                        --fault-out ${WORKDIR}/crash_recovery_o0.json
                OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "-O0 resume of a -O1 campaign checkpoint exited 0\n${out}")
endif()
if(NOT err MATCHES "does not match this campaign")
  message(FATAL_ERROR "cross-opt-level campaign error is unstructured:\n${err}")
endif()
if(NOT err MATCHES "optimization level")
  message(FATAL_ERROR
          "cross-opt-level campaign error lacks the -O hint:\n${err}")
endif()

message(STATUS "crash_recovery: SIGKILL + resume reproduced the straight run byte-for-byte; cross-opt-level resumes rejected")

# ctest driver: run `zeusc --fault-campaign` over every built-in corpus
# entry and validate the zeus-faults-v1 coverage report
# (docs/fault-injection.md).
#
#   cmake -DZEUSC=<path-to-zeusc> -DWORKDIR=<scratch dir> -P fault_corpus.cmake
#
# Checks, per entry:
#   * zeusc exits 0 — every paper program survives a full parallel
#     stuck-at campaign;
#   * the report is valid JSON with version 1, detected + masked +
#     undetected == total_faults, coverage in [0,1], and per-fault
#     records whose status/detector fields are mutually consistent;
#   * across the whole corpus at least one fault was detected and at
#     least one was undetected (the acceptance bar for the campaign
#     machinery itself).
cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

if(NOT DEFINED ZEUSC)
  message(FATAL_ERROR "pass -DZEUSC=<path to the zeusc binary>")
endif()
if(NOT DEFINED WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

execute_process(COMMAND ${ZEUSC} --list-examples
                OUTPUT_VARIABLE listing
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "zeusc --list-examples failed (rc=${rc})")
endif()

string(REPLACE "\n" ";" lines "${listing}")
set(entries "")
foreach(line IN LISTS lines)
  if(line MATCHES "^([a-z0-9-]+)[ \t]")
    list(APPEND entries "${CMAKE_MATCH_1}")
  endif()
endforeach()
list(LENGTH entries count)
if(count LESS 10)
  message(FATAL_ERROR "expected at least 10 corpus entries, got ${count}: ${entries}")
endif()

set(total_detected 0)
set(total_undetected 0)
foreach(entry IN LISTS entries)
  set(ffile "${WORKDIR}/faults_${entry}.json")
  execute_process(COMMAND ${ZEUSC} --example ${entry} --sim 8
                          --fault-campaign --fault-out ${ffile}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "${entry}: zeusc --fault-campaign exited ${rc}\n${out}\n${err}")
  endif()
  if(NOT EXISTS ${ffile})
    message(FATAL_ERROR "${entry}: ${ffile} was not written")
  endif()
  file(READ ${ffile} json)

  string(JSON version GET "${json}" "zeus-faults")
  if(NOT version EQUAL 1)
    message(FATAL_ERROR "${entry}: zeus-faults version ${version}, expected 1")
  endif()
  string(JSON design GET "${json}" "design")
  if(design STREQUAL "")
    message(FATAL_ERROR "${entry}: empty design name")
  endif()
  string(JSON cycles GET "${json}" "cycles")
  if(NOT cycles EQUAL 8)
    message(FATAL_ERROR "${entry}: cycles = ${cycles}, expected 8")
  endif()
  string(JSON interrupted GET "${json}" "interrupted")
  if(NOT interrupted STREQUAL "OFF")
    message(FATAL_ERROR "${entry}: campaign reported interrupted")
  endif()

  # The three classifications partition the fault universe.
  string(JSON total GET "${json}" "total_faults")
  string(JSON detected GET "${json}" "detected")
  string(JSON masked GET "${json}" "masked")
  string(JSON undetected GET "${json}" "undetected")
  math(EXPR sum "${detected} + ${masked} + ${undetected}")
  if(NOT sum EQUAL total)
    message(FATAL_ERROR
            "${entry}: ${detected}+${masked}+${undetected} != ${total}")
  endif()
  if(total EQUAL 0)
    message(FATAL_ERROR "${entry}: empty fault universe")
  endif()

  string(JSON coverage GET "${json}" "coverage")
  if(coverage LESS 0 OR coverage GREATER 1)
    message(FATAL_ERROR "${entry}: coverage ${coverage} outside [0,1]")
  endif()

  # Per-fault records: status vocabulary and detector consistency.
  # string(JSON) re-parses the whole document on every access, so deep
  # validation of multi-thousand-fault arrays is quadratic; spot-check the
  # first 20 records per entry (the aggregate counts above cover the rest).
  string(JSON nfaults LENGTH "${json}" "faults")
  if(NOT nfaults EQUAL total)
    message(FATAL_ERROR "${entry}: faults array ${nfaults} != total ${total}")
  endif()
  set(last 19)
  if(nfaults LESS 20)
    math(EXPR last "${nfaults} - 1")
  endif()
  foreach(i RANGE 0 ${last})
    string(JSON fnet GET "${json}" "faults" ${i} "net")
    string(JSON fkind GET "${json}" "faults" ${i} "kind")
    string(JSON fstatus GET "${json}" "faults" ${i} "status")
    string(JSON fdetector GET "${json}" "faults" ${i} "detector")
    if(fnet STREQUAL "")
      message(FATAL_ERROR "${entry}: fault ${i} has no net")
    endif()
    if(NOT fkind MATCHES "^stuck-at-[01]$")
      message(FATAL_ERROR "${entry}: fault ${i} kind '${fkind}'")
    endif()
    if(fstatus STREQUAL "detected")
      if(fdetector STREQUAL "")
        message(FATAL_ERROR "${entry}: detected fault ${i} has no detector")
      endif()
    elseif(fstatus STREQUAL "masked" OR fstatus STREQUAL "undetected")
      if(NOT fdetector STREQUAL "")
        message(FATAL_ERROR
                "${entry}: ${fstatus} fault ${i} names detector '${fdetector}'")
      endif()
    else()
      message(FATAL_ERROR "${entry}: fault ${i} status '${fstatus}'")
    endif()
  endforeach()

  # detectors: first-detection tallies must account for every detection.
  string(JSON ndet LENGTH "${json}" "detectors")
  set(detsum 0)
  if(ndet GREATER 0)
    math(EXPR dlast "${ndet} - 1")
    foreach(i RANGE 0 ${dlast})
      string(JSON doutput GET "${json}" "detectors" ${i} "output")
      string(JSON dfaults GET "${json}" "detectors" ${i} "faults")
      if(doutput STREQUAL "" OR dfaults LESS_EQUAL 0)
        message(FATAL_ERROR "${entry}: bad detector entry ${i}")
      endif()
      math(EXPR detsum "${detsum} + ${dfaults}")
    endforeach()
  endif()
  if(NOT detsum EQUAL detected)
    message(FATAL_ERROR
            "${entry}: detector tallies ${detsum} != detected ${detected}")
  endif()

  math(EXPR total_detected "${total_detected} + ${detected}")
  math(EXPR total_undetected "${total_undetected} + ${undetected}")
  message(STATUS
          "${entry}: ok (${total} faults, ${detected} detected, coverage ${coverage})")
endforeach()

if(total_detected EQUAL 0)
  message(FATAL_ERROR "no fault anywhere in the corpus was detected")
endif()
if(total_undetected EQUAL 0)
  message(FATAL_ERROR "no fault anywhere in the corpus was undetected")
endif()
message(STATUS "fault_corpus: ${count} corpus entries validated")

# ctest driver: run `zeusc --sim 8 --metrics` over every built-in corpus
# entry and validate the machine-readable output against the
# zeus-metrics-v1 schema (docs/observability.md).
#
#   cmake -DZEUSC=<path-to-zeusc> -DWORKDIR=<scratch dir> -P metrics_corpus.cmake
#
# Checks, per entry:
#   * zeusc exits 0 — the paper's own programs compile, elaborate and
#     simulate 8 cycles without crashing;
#   * the metrics file is valid JSON with version 1, a design name, the
#     compile/resources/sim/activity sections and sane counters
#     (validated with CMake's string(JSON ...) parser);
#   * the simulation ran: node_firings, net_resolutions and epoch_resets
#     are nonzero, and the activity profiler saw every net.
cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

if(NOT DEFINED ZEUSC)
  message(FATAL_ERROR "pass -DZEUSC=<path to the zeusc binary>")
endif()
if(NOT DEFINED WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

execute_process(COMMAND ${ZEUSC} --list-examples
                OUTPUT_VARIABLE listing
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "zeusc --list-examples failed (rc=${rc})")
endif()

# First whitespace-separated token of each line is the entry name.
string(REPLACE "\n" ";" lines "${listing}")
set(entries "")
foreach(line IN LISTS lines)
  if(line MATCHES "^([a-z0-9-]+)[ \t]")
    list(APPEND entries "${CMAKE_MATCH_1}")
  endif()
endforeach()
list(LENGTH entries count)
if(count LESS 10)
  message(FATAL_ERROR "expected at least 10 corpus entries, got ${count}: ${entries}")
endif()

foreach(entry IN LISTS entries)
  set(mfile "${WORKDIR}/metrics_${entry}.json")
  execute_process(COMMAND ${ZEUSC} --example ${entry} --sim 8
                          --metrics ${mfile}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "${entry}: zeusc --sim 8 --metrics exited ${rc}\n${out}\n${err}")
  endif()
  if(NOT EXISTS ${mfile})
    message(FATAL_ERROR "${entry}: ${mfile} was not written")
  endif()
  file(READ ${mfile} json)

  # Schema validation.  string(JSON ...) hard-errors on malformed JSON,
  # absent keys and type mismatches.
  string(JSON version GET "${json}" "zeus-metrics")
  if(NOT version EQUAL 1)
    message(FATAL_ERROR "${entry}: zeus-metrics version ${version}, expected 1")
  endif()
  string(JSON design GET "${json}" "design")
  if(design STREQUAL "")
    message(FATAL_ERROR "${entry}: empty design name")
  endif()

  # compile.phases: an array of {name, category, micros, count} objects.
  string(JSON nphases LENGTH "${json}" "compile" "phases")
  if(nphases GREATER 0)
    math(EXPR last "${nphases} - 1")
    foreach(i RANGE 0 ${last})
      string(JSON pname GET "${json}" "compile" "phases" ${i} "name")
      string(JSON pmicros GET "${json}" "compile" "phases" ${i} "micros")
      string(JSON pcount GET "${json}" "compile" "phases" ${i} "count")
      if(pname STREQUAL "" OR pmicros LESS 0 OR pcount LESS 1)
        message(FATAL_ERROR "${entry}: bad phase entry ${i}\n${json}")
      endif()
    endforeach()
  endif()

  # resources: consumption counters recorded by the limits layer.
  foreach(field source_bytes tokens nets nodes sim_cycles)
    string(JSON v GET "${json}" "resources" ${field})
    if(v LESS 0)
      message(FATAL_ERROR "${entry}: resources.${field} = ${v}")
    endif()
  endforeach()
  string(JSON srcbytes GET "${json}" "resources" "source_bytes")
  if(srcbytes EQUAL 0)
    message(FATAL_ERROR "${entry}: resources.source_bytes is zero")
  endif()

  # sim: the run happened and did real per-cycle work.
  string(JSON ran GET "${json}" "sim" "ran")
  if(NOT ran STREQUAL "ON")
    message(FATAL_ERROR "${entry}: sim.ran = ${ran}")
  endif()
  string(JSON evaluator GET "${json}" "sim" "evaluator")
  if(evaluator STREQUAL "")
    message(FATAL_ERROR "${entry}: empty sim.evaluator")
  endif()
  string(JSON ncycles GET "${json}" "sim" "cycles")
  if(NOT ncycles EQUAL 8)
    message(FATAL_ERROR "${entry}: sim.cycles = ${ncycles}, expected 8")
  endif()
  foreach(field node_firings net_resolutions epoch_resets)
    string(JSON v GET "${json}" "sim" ${field})
    if(v LESS_EQUAL 0)
      message(FATAL_ERROR "${entry}: sim.${field} = ${v} (expected > 0)")
    endif()
  endforeach()
  foreach(field lanes lane_cycles input_events sweeps short_circuit_skips
                contention_checks watchdog_margin_min faults
                contention_faults)
    string(JSON v ERROR_VARIABLE jerr GET "${json}" "sim" ${field})
    if(jerr)
      message(FATAL_ERROR "${entry}: sim missing '${field}': ${jerr}")
    endif()
  endforeach()

  # activity: profiling is implied by --metrics; every net is profiled.
  string(JSON aran GET "${json}" "activity" "ran")
  if(NOT aran STREQUAL "ON")
    message(FATAL_ERROR "${entry}: activity.ran = ${aran}")
  endif()
  string(JSON acycles GET "${json}" "activity" "cycles")
  if(NOT acycles EQUAL 8)
    message(FATAL_ERROR "${entry}: activity.cycles = ${acycles}, expected 8")
  endif()
  string(JSON nprofiled GET "${json}" "activity" "nets_profiled")
  string(JSON nnets GET "${json}" "resources" "nets")
  if(nprofiled EQUAL 0)
    message(FATAL_ERROR "${entry}: activity.nets_profiled is zero")
  endif()
  string(JSON nhot LENGTH "${json}" "activity" "hottest")
  if(nhot GREATER 0)
    math(EXPR last "${nhot} - 1")
    foreach(i RANGE 0 ${last})
      string(JSON hnet GET "${json}" "activity" "hottest" ${i} "net")
      string(JSON htoggles GET "${json}" "activity" "hottest" ${i} "toggles")
      string(JSON hdepth GET "${json}" "activity" "hottest" ${i} "depth")
      if(hnet STREQUAL "" OR htoggles LESS_EQUAL 0 OR hdepth LESS 0)
        message(FATAL_ERROR "${entry}: bad hottest entry ${i}\n${json}")
      endif()
    endforeach()
  endif()
  string(JSON ndeep LENGTH "${json}" "activity" "deepest")
  if(ndeep EQUAL 0)
    message(FATAL_ERROR "${entry}: deepest-cone list is empty")
  endif()

  message(STATUS "${entry}: ok (${nphases} phase(s), ${nprofiled} net(s) profiled)")
endforeach()

message(STATUS "metrics_corpus: ${count} corpus entries validated")

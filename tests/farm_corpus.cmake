# ctest driver: sweep every built-in corpus entry through the multi-core
# simulation farm CLI (`zeusc --farm-threads 2 --lanes 96 --sim 8`) and
# smoke the batch-request mode (docs/simulator.md).
#
#   cmake -DZEUSC=<path-to-zeusc> -DWORKDIR=<scratch dir> -P farm_corpus.cmake
#
# Checks, per entry:
#   * zeusc exits 0 — the paper's own programs run through the farm;
#   * the summary line reports the requested lane/block/thread geometry;
#   * rerunning at 1 thread prints the identical checksum (determinism);
#   * the --metrics report carries evaluator "farm" with lanes 96.
# Then one --serve-batch request file covering an example, an inline
# source and a deliberately bad request must produce a zeus-serve-v1
# response with exactly one failure.
cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

if(NOT DEFINED ZEUSC)
  message(FATAL_ERROR "pass -DZEUSC=<path to the zeusc binary>")
endif()
if(NOT DEFINED WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

execute_process(COMMAND ${ZEUSC} --list-examples
                OUTPUT_VARIABLE listing
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "zeusc --list-examples failed (rc=${rc})")
endif()

string(REPLACE "\n" ";" lines "${listing}")
set(entries "")
foreach(line IN LISTS lines)
  if(line MATCHES "^([a-z0-9-]+)[ \t]")
    list(APPEND entries "${CMAKE_MATCH_1}")
  endif()
endforeach()
list(LENGTH entries count)
if(count LESS 10)
  message(FATAL_ERROR "expected at least 10 corpus entries, got ${count}")
endif()

foreach(entry IN LISTS entries)
  set(mfile "${WORKDIR}/farm_${entry}.json")
  execute_process(COMMAND ${ZEUSC} --example ${entry} --sim 8
                          --farm-threads 2 --lanes 96 --metrics ${mfile}
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${entry}: farm run exited ${rc}\n${out}\n${err}")
  endif()
  if(NOT out MATCHES "farm: 8 cycle\\(s\\) x 96 lane\\(s\\), 2 block\\(s\\) on 2 thread\\(s\\), checksum ([0-9a-f]+)")
    message(FATAL_ERROR "${entry}: missing/garbled farm summary line:\n${out}")
  endif()
  set(checksum2 "${CMAKE_MATCH_1}")

  # Determinism across thread counts: 1 thread, same checksum.
  execute_process(COMMAND ${ZEUSC} --example ${entry} --sim 8
                          --farm-threads 1 --lanes 96
                  OUTPUT_VARIABLE out1
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${entry}: 1-thread farm run exited ${rc}")
  endif()
  if(NOT out1 MATCHES "checksum ([0-9a-f]+)")
    message(FATAL_ERROR "${entry}: no checksum in 1-thread output:\n${out1}")
  endif()
  if(NOT CMAKE_MATCH_1 STREQUAL checksum2)
    message(FATAL_ERROR
            "${entry}: checksum differs across thread counts: "
            "1t=${CMAKE_MATCH_1} 2t=${checksum2}")
  endif()

  # The metrics report must carry the farm counters.
  file(READ ${mfile} json)
  string(JSON evaluator GET "${json}" "sim" "evaluator")
  if(NOT evaluator STREQUAL "farm")
    message(FATAL_ERROR "${entry}: sim.evaluator = '${evaluator}'")
  endif()
  string(JSON nlanes GET "${json}" "sim" "lanes")
  if(NOT nlanes EQUAL 96)
    message(FATAL_ERROR "${entry}: sim.lanes = ${nlanes}, expected 96")
  endif()
  string(JSON firings GET "${json}" "sim" "node_firings")
  if(firings LESS_EQUAL 0)
    message(FATAL_ERROR "${entry}: sim.node_firings = ${firings}")
  endif()

  message(STATUS "${entry}: ok (checksum ${checksum2})")
endforeach()

# --- batch-request mode -------------------------------------------------

set(reqfile "${WORKDIR}/farm_requests.json")
set(respfile "${WORKDIR}/farm_response.json")
file(WRITE ${reqfile} [=[
{"requests": [
  {"id": "corpus", "example": "adders", "cycles": 8, "lanes": 96, "threads": 2},
  {"id": "again",  "example": "adders", "cycles": 8, "lanes": 96, "threads": 1},
  {"id": "broken", "example": "no-such-entry"}
]}
]=])
execute_process(COMMAND ${ZEUSC} --serve-batch ${reqfile}
                        --serve-out ${respfile}
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err
                RESULT_VARIABLE rc)
# One failing request => exit 1, by design.
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "serve-batch exited ${rc}, expected 1\n${out}\n${err}")
endif()
file(READ ${respfile} resp)
string(JSON schema GET "${resp}" "schema")
if(NOT schema STREQUAL "zeus-serve-v1")
  message(FATAL_ERROR "serve-batch schema '${schema}'")
endif()
string(JSON nreq GET "${resp}" "requests")
string(JSON ncompiles GET "${resp}" "compiles")
string(JSON nhits GET "${resp}" "cache_hits")
string(JSON nfail GET "${resp}" "failures")
if(NOT nreq EQUAL 3 OR NOT nfail EQUAL 1)
  message(FATAL_ERROR "serve-batch counts: requests=${nreq} failures=${nfail}")
endif()
# Two requests for one design: exactly one compile and one cache hit.
if(NOT ncompiles EQUAL 1 OR NOT nhits EQUAL 1)
  message(FATAL_ERROR
          "compile cache broken: compiles=${ncompiles} hits=${nhits}")
endif()
string(JSON sum0 GET "${resp}" "results" 0 "checksum")
string(JSON sum1 GET "${resp}" "results" 1 "checksum")
if(NOT sum0 STREQUAL sum1)
  message(FATAL_ERROR "serve checksums differ across thread counts: "
                      "${sum0} vs ${sum1}")
endif()
string(JSON ok2 GET "${resp}" "results" 2 "ok")
if(NOT ok2 STREQUAL "OFF")
  message(FATAL_ERROR "broken request reported ok=${ok2}")
endif()

message(STATUS "farm_corpus: ${count} corpus entries + serve-batch validated")

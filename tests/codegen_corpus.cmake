# ctest driver: differential sweep of the native codegen backend over
# EVERY built-in corpus entry (docs/codegen.md).
#
#   cmake -DZEUSC=<path-to-zeusc> -DWORKDIR=<scratch dir> \
#         -P codegen_corpus.cmake
#
# Per entry and per zeus optimization level (-O0, -O1), the CLI is run
# twice with identical stimulus — once on the levelized interpreter,
# once on the hot-loaded compiled engine — and the stdout (the full
# net/port value table over --sim 8 cycles) must be byte-identical.
# A fallback notice on stderr fails the sweep: once the toolchain probe
# succeeds, every design must actually compile.
#
# Hosts without a C++ toolchain skip with a notice (the probe run falls
# back), matching the GTEST_SKIP behaviour of tests/unit/codegen_test.cpp.
#
# Host compiles use -O0 (ZEUS_CODEGEN_CXXFLAGS): artifact correctness is
# independent of host optimization, and the sweep compiles ~32 designs.
cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED ZEUSC)
  message(FATAL_ERROR "pass -DZEUSC=<path to the zeusc binary>")
endif()
if(NOT DEFINED WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()
set(CACHEDIR "${WORKDIR}/codegen-corpus-cache")

# Toolchain probe: one tiny design through --compiled.  A fallback notice
# here means the host cannot compile at all -> skip the sweep loudly.
execute_process(COMMAND ${CMAKE_COMMAND} -E env ZEUS_CODEGEN_CXXFLAGS=-O0
                        ${ZEUSC} --example mux4 --sim 1 --compiled
                        --codegen-cache-dir ${CACHEDIR}
                OUTPUT_VARIABLE probe_out
                ERROR_VARIABLE probe_err
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "codegen probe run exited ${rc}\n${probe_err}")
endif()
if(probe_err MATCHES "falling back")
  message(STATUS "codegen_corpus: SKIPPED - no host C++ toolchain "
                 "(${probe_err})")
  return()
endif()

execute_process(COMMAND ${ZEUSC} --list-examples
                OUTPUT_VARIABLE listing
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "zeusc --list-examples failed (rc=${rc})")
endif()
string(REPLACE "\n" ";" lines "${listing}")
set(entries "")
foreach(line IN LISTS lines)
  if(line MATCHES "^([a-z0-9-]+)[ \t]")
    list(APPEND entries "${CMAKE_MATCH_1}")
  endif()
endforeach()
list(LENGTH entries count)
if(count LESS 10)
  message(FATAL_ERROR "expected at least 10 corpus entries, got ${count}")
endif()

foreach(entry IN LISTS entries)
  foreach(opt IN ITEMS "-O0" "-O1")
    execute_process(COMMAND ${ZEUSC} --example ${entry} --sim 8
                            --levelized ${opt}
                    OUTPUT_VARIABLE interp_out
                    ERROR_VARIABLE interp_err
                    RESULT_VARIABLE interp_rc)
    execute_process(COMMAND ${CMAKE_COMMAND} -E env
                            ZEUS_CODEGEN_CXXFLAGS=-O0
                            ${ZEUSC} --example ${entry} --sim 8
                            --compiled ${opt}
                            --codegen-cache-dir ${CACHEDIR}
                    OUTPUT_VARIABLE compiled_out
                    ERROR_VARIABLE compiled_err
                    RESULT_VARIABLE compiled_rc)
    if(NOT interp_rc EQUAL compiled_rc)
      message(FATAL_ERROR
              "${entry} ${opt}: exit codes differ: levelized=${interp_rc} "
              "compiled=${compiled_rc}\n${compiled_err}")
    endif()
    if(compiled_err MATCHES "falling back")
      message(FATAL_ERROR
              "${entry} ${opt}: compiled run fell back to the interpreter "
              "despite a working toolchain:\n${compiled_err}")
    endif()
    if(NOT interp_out STREQUAL compiled_out)
      message(FATAL_ERROR
              "${entry} ${opt}: compiled output differs from the "
              "levelized interpreter\n--- levelized ---\n${interp_out}\n"
              "--- compiled ---\n${compiled_out}")
    endif()
    message(STATUS "${entry} ${opt}: ok")
  endforeach()
endforeach()

# Second pass over one entry must hit the on-disk artifact cache (the
# --stats table reports codegen-cache-hits through the metrics counters;
# here we just assert the rerun is identical and leaves the cache alone).
file(GLOB artifacts_before "${CACHEDIR}/zeus-*.so")
list(LENGTH artifacts_before n_before)
execute_process(COMMAND ${CMAKE_COMMAND} -E env ZEUS_CODEGEN_CXXFLAGS=-O0
                        ${ZEUSC} --example mux4 --sim 8 --compiled -O1
                        --codegen-cache-dir ${CACHEDIR}
                RESULT_VARIABLE rc)
file(GLOB artifacts_after "${CACHEDIR}/zeus-*.so")
list(LENGTH artifacts_after n_after)
if(NOT rc EQUAL 0 OR NOT n_before EQUAL n_after)
  message(FATAL_ERROR
          "cache rerun: rc=${rc}, artifacts ${n_before} -> ${n_after} "
          "(expected a pure cache hit)")
endif()

message(STATUS
        "codegen_corpus: ${count} entries x {-O0,-O1} differentially "
        "validated (${n_after} cached artifacts)")

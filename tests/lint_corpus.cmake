# ctest driver: run `zeusc --lint --lint-json` over every built-in corpus
# entry and validate the machine-readable output.
#
#   cmake -DZEUSC=<path-to-zeusc> -P lint_corpus.cmake
#
# Checks, per entry:
#   * zeusc exits 0 — the paper's own programs carry no lint *errors*
#     (warnings and notes are fine) and nothing crashes;
#   * stdout is valid JSON matching the schema in docs/lint.md
#     (validated with CMake's string(JSON ...) parser);
#   * the summary counters agree with the findings array.
cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

if(NOT DEFINED ZEUSC)
  message(FATAL_ERROR "pass -DZEUSC=<path to the zeusc binary>")
endif()

execute_process(COMMAND ${ZEUSC} --list-examples
                OUTPUT_VARIABLE listing
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "zeusc --list-examples failed (rc=${rc})")
endif()

# First whitespace-separated token of each line is the entry name.
string(REPLACE "\n" ";" lines "${listing}")
set(entries "")
foreach(line IN LISTS lines)
  if(line MATCHES "^([a-z0-9-]+)[ \t]")
    list(APPEND entries "${CMAKE_MATCH_1}")
  endif()
endforeach()
list(LENGTH entries count)
if(count LESS 10)
  message(FATAL_ERROR "expected at least 10 corpus entries, got ${count}: ${entries}")
endif()

set(severities "error" "warning" "note")

foreach(entry IN LISTS entries)
  execute_process(COMMAND ${ZEUSC} --example ${entry} --lint --lint-json
                  OUTPUT_VARIABLE json
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "${entry}: zeusc --lint --lint-json exited ${rc} "
            "(lint errors or crash)\n${json}\n${err}")
  endif()

  # Schema validation (docs/lint.md).  string(JSON ...) hard-errors on
  # malformed JSON, absent keys and type mismatches.
  string(JSON version GET "${json}" "zeus-lint")
  if(NOT version EQUAL 1)
    message(FATAL_ERROR "${entry}: zeus-lint version ${version}, expected 1")
  endif()
  string(JSON design GET "${json}" "design")
  if(design STREQUAL "")
    message(FATAL_ERROR "${entry}: empty design name")
  endif()
  string(JSON nerrors GET "${json}" "summary" "errors")
  string(JSON nwarnings GET "${json}" "summary" "warnings")
  string(JSON nnotes GET "${json}" "summary" "notes")
  string(JSON nfindings GET "${json}" "summary" "findings")
  if(NOT nerrors EQUAL 0)
    message(FATAL_ERROR "${entry}: ${nerrors} lint error(s) on a paper example\n${json}")
  endif()
  math(EXPR expected "${nerrors} + ${nwarnings} + ${nnotes}")
  if(NOT nfindings EQUAL expected)
    message(FATAL_ERROR
            "${entry}: summary.findings=${nfindings} but counters sum to ${expected}")
  endif()

  string(JSON len LENGTH "${json}" "findings")
  if(NOT len EQUAL nfindings)
    message(FATAL_ERROR
            "${entry}: findings array length ${len} != summary ${nfindings}")
  endif()
  if(len GREATER 0)
    math(EXPR last "${len} - 1")
    foreach(i RANGE 0 ${last})
      string(JSON rule GET "${json}" "findings" ${i} "rule")
      string(JSON sev GET "${json}" "findings" ${i} "severity")
      string(JSON msg GET "${json}" "findings" ${i} "message")
      string(JSON line GET "${json}" "findings" ${i} "line")
      string(JSON col GET "${json}" "findings" ${i} "col")
      if(NOT sev IN_LIST severities)
        message(FATAL_ERROR "${entry}: finding ${i} has severity '${sev}'")
      endif()
      if(msg STREQUAL "")
        message(FATAL_ERROR "${entry}: finding ${i} has an empty message")
      endif()
      if(line LESS 0 OR col LESS 0)
        message(FATAL_ERROR "${entry}: finding ${i} has negative location")
      endif()
    endforeach()
  endif()

  message(STATUS "${entry}: ok (${nfindings} finding(s), 0 errors)")
endforeach()

message(STATUS "lint_corpus: ${count} corpus entries validated")

// Thin forwarding header: the paper programs live in the library corpus
// (src/corpus/corpus.h) so that examples, benches and the CLI share them.
#pragma once

#include "src/corpus/corpus.h"

namespace zeus::test {
using namespace zeus::corpus;  // kAdders, kBlackjack, ...
}  // namespace zeus::test

// Shared helpers for the Zeus test suite.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/zeus.h"

namespace zeus::test {

/// Compiles a source string and asserts there were no errors.
inline std::unique_ptr<Compilation> compileOk(const std::string& src) {
  auto comp = Compilation::fromSource("test.zeus", src);
  EXPECT_TRUE(comp->ok()) << comp->diagnosticsText();
  return comp;
}

/// Compiles + elaborates, asserting success.
struct Built {
  std::unique_ptr<Compilation> comp;
  std::unique_ptr<Design> design;
};

inline Built buildOk(const std::string& src, const std::string& top) {
  Built b;
  b.comp = Compilation::fromSource("test.zeus", src);
  EXPECT_TRUE(b.comp->ok()) << b.comp->diagnosticsText();
  if (!b.comp->ok()) return b;
  b.design = b.comp->elaborate(top);
  EXPECT_NE(b.design, nullptr) << b.comp->diagnosticsText();
  return b;
}

/// Compiles + elaborates and expects the given diagnostic code.
inline void expectElabError(const std::string& src, const std::string& top,
                            Diag code) {
  auto comp = Compilation::fromSource("test.zeus", src);
  if (comp->ok()) {
    auto design = comp->elaborate(top);
    EXPECT_EQ(design, nullptr) << "elaboration unexpectedly succeeded";
  }
  EXPECT_TRUE(comp->diags().has(code)) << comp->diagnosticsText();
}

}  // namespace zeus::test

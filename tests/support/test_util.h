// Shared helpers for the Zeus test suite.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/core/zeus.h"
#include "src/corpus/corpus.h"

namespace zeus::test {

/// Returns a directly elaboratable source for a corpus entry, appending an
/// instantiation line for the parameterized programs (whose `top` is "").
/// `*top` receives the SIGNAL name to elaborate.
inline std::string corpusSource(const corpus::CorpusEntry& e,
                                std::string* top) {
  std::string source = e.source;
  *top = e.top;
  if (top->empty()) {
    if (std::string(e.name) == "adders") {
      source += "SIGNAL t: rippleCarry(8);\n";
    } else if (std::string(e.name).rfind("tree", 0) == 0) {
      source += "SIGNAL t: tree(8);\n";
    } else if (std::string(e.name) == "htree") {
      source += "SIGNAL t: htree(16);\n";
    } else if (std::string(e.name) == "routing") {
      source += "SIGNAL t: routingnetwork(8);\n";
    } else if (std::string(e.name) == "systolic-stack") {
      source += "SIGNAL t: systolicstack(8);\n";
    } else if (std::string(e.name) == "dictionary") {
      source += "SIGNAL t: dicttree(8);\n";
    } else if (std::string(e.name) == "snake") {
      source += "SIGNAL t: snake(3,4);\n";
    } else if (std::string(e.name) == "sorter") {
      source += "SIGNAL t: sorter(4);\n";
    } else if (std::string(e.name) == "matvec") {
      source += "SIGNAL t: matvec(4);\n";
    } else {
      ADD_FAILURE() << "no instantiation rule for " << e.name;
    }
    *top = "t";
  }
  return source;
}

/// Compiles a source string and asserts there were no errors.
inline std::unique_ptr<Compilation> compileOk(const std::string& src) {
  auto comp = Compilation::fromSource("test.zeus", src);
  EXPECT_TRUE(comp->ok()) << comp->diagnosticsText();
  return comp;
}

/// Compiles + elaborates, asserting success.
struct Built {
  std::unique_ptr<Compilation> comp;
  std::unique_ptr<Design> design;
};

inline Built buildOk(const std::string& src, const std::string& top) {
  Built b;
  b.comp = Compilation::fromSource("test.zeus", src);
  EXPECT_TRUE(b.comp->ok()) << b.comp->diagnosticsText();
  if (!b.comp->ok()) return b;
  b.design = b.comp->elaborate(top);
  EXPECT_NE(b.design, nullptr) << b.comp->diagnosticsText();
  return b;
}

/// Compiles + elaborates and expects the given diagnostic code.
inline void expectElabError(const std::string& src, const std::string& top,
                            Diag code) {
  auto comp = Compilation::fromSource("test.zeus", src);
  if (comp->ok()) {
    auto design = comp->elaborate(top);
    EXPECT_EQ(design, nullptr) << "elaboration unexpectedly succeeded";
  }
  EXPECT_TRUE(comp->diags().has(code)) << comp->diagnosticsText();
}

}  // namespace zeus::test

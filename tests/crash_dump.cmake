# ctest driver: the flight recorder's two dump paths end-to-end
# (docs/observability.md).
#
#   cmake -DZEUSC=<path-to-zeusc> -DWORKDIR=<scratch dir> -P crash_dump.cmake
#
# 1. `--die-at-cycle N --die-signal abort` raises SIGABRT mid-sim; the
#    armed signal handler must write a schema-valid .zeus-crash.json
#    (async-signal-safe path: pre-serialized ring slots only) before the
#    process dies with the signal.
# 2. `--sim-watchdog 1` trips the evaluator watchdog; zeusc exits 11 and
#    writes the same dump from normal context via dumpNow("watchdog").
# 3. The default `--die-signal kill` stays SIGKILL — uncatchable, so NO
#    dump may appear (this is what crash_recovery.cmake relies on).
cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

if(NOT DEFINED ZEUSC)
  message(FATAL_ERROR "pass -DZEUSC=<path to the zeusc binary>")
endif()
if(NOT DEFINED WORKDIR)
  set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

# Shared schema validation for both dump flavours.
function(check_dump file want_reason)
  if(NOT EXISTS ${file})
    message(FATAL_ERROR "no flight-recorder dump at ${file}")
  endif()
  file(READ ${file} json)
  string(JSON schema GET "${json}" "schema")
  if(NOT schema STREQUAL "zeus-crash-v1")
    message(FATAL_ERROR "dump schema '${schema}', expected zeus-crash-v1\n${json}")
  endif()
  string(JSON reason GET "${json}" "reason")
  if(NOT reason STREQUAL "${want_reason}")
    message(FATAL_ERROR "dump reason '${reason}', expected '${want_reason}'\n${json}")
  endif()
  foreach(field git compiler build_type trace_compiled_out)
    string(JSON v ERROR_VARIABLE jerr GET "${json}" "build" ${field})
    if(jerr)
      message(FATAL_ERROR "dump missing build.${field}: ${jerr}\n${json}")
    endif()
  endforeach()
  string(JSON nevents LENGTH "${json}" "events")
  if(nevents LESS 1)
    message(FATAL_ERROR "dump carries no ring events\n${json}")
  endif()
  # Every ring event is a full zeus-log-v1 object.
  math(EXPR last "${nevents} - 1")
  foreach(i RANGE 0 ${last})
    string(JSON v GET "${json}" "events" ${i} "v")
    string(JSON ev GET "${json}" "events" ${i} "ev")
    if(NOT v EQUAL 1 OR ev STREQUAL "")
      message(FATAL_ERROR "dump event ${i} malformed\n${json}")
    endif()
  endforeach()
  string(JSON nspans ERROR_VARIABLE jerr LENGTH "${json}" "open_spans")
  if(jerr)
    message(FATAL_ERROR "dump missing open_spans: ${jerr}\n${json}")
  endif()
endfunction()

# ---------------------------------------------------------------------
# 1. SIGABRT through the async-signal-safe handler.
# ---------------------------------------------------------------------
set(abortdump "${WORKDIR}/crash_dump_abort.json")
file(REMOVE ${abortdump})
execute_process(COMMAND ${ZEUSC} --example adders --sim 8
                        --die-at-cycle 4 --die-signal abort
                        --crash-dump ${abortdump}
                OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "--die-signal abort run exited 0; it was supposed to crash")
endif()
check_dump(${abortdump} "signal")
file(READ ${abortdump} json)
string(JSON sig GET "${json}" "signal")
if(NOT sig EQUAL 6)
  message(FATAL_ERROR "abort dump recorded signal ${sig}, expected 6 (SIGABRT)")
endif()

# ---------------------------------------------------------------------
# 2. Watchdog fault: deliberate exit 11 + dumpNow from normal context.
# ---------------------------------------------------------------------
set(wddump "${WORKDIR}/crash_dump_watchdog.json")
file(REMOVE ${wddump})
execute_process(COMMAND ${ZEUSC} --example adders --sim 4 --sim-watchdog 1
                        --crash-dump ${wddump}
                OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 11)
  message(FATAL_ERROR "--sim-watchdog 1 exited ${rc}, expected 11\n${out}\n${err}")
endif()
check_dump(${wddump} "watchdog")

# ---------------------------------------------------------------------
# 3. Default SIGKILL is uncatchable: no dump.
# ---------------------------------------------------------------------
set(killdump "${WORKDIR}/crash_dump_kill.json")
file(REMOVE ${killdump})
execute_process(COMMAND ${ZEUSC} --example adders --sim 8
                        --die-at-cycle 4 --crash-dump ${killdump}
                OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "--die-at-cycle SIGKILL run exited 0")
endif()
if(EXISTS ${killdump})
  message(FATAL_ERROR "SIGKILL left a dump at ${killdump}; it must be uncatchable")
endif()

message(STATUS "crash_dump: SIGABRT handler + watchdog dumpNow both wrote zeus-crash-v1; SIGKILL left nothing")

# ctest driver: run `zeusc -O1 --opt-stats` over every built-in corpus
# entry and validate the zeus-opt-v1 JSON report (docs/optimizer.md).
#
#   cmake -DZEUSC=<path-to-zeusc> -P transform_corpus.cmake
#
# Checks, per entry:
#   * zeusc exits 0 — the pipeline and its post-pass verifier accept the
#     paper's own programs;
#   * stdout is valid JSON matching the zeus-opt-v1 schema (validated
#     with CMake's string(JSON ...) parser);
#   * the report says ran=true, verified=true, carries the three passes in
#     order, and its totals are consistent (after = before - removed,
#     nets after <= before);
#   * -O0 also exits 0 and reports ran=false with an unchanged node count
#     (the verifier still runs at level 0).
cmake_minimum_required(VERSION 3.19)  # string(JSON ...)

if(NOT DEFINED ZEUSC)
  message(FATAL_ERROR "pass -DZEUSC=<path to the zeusc binary>")
endif()

execute_process(COMMAND ${ZEUSC} --list-examples
                OUTPUT_VARIABLE listing
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "zeusc --list-examples failed (rc=${rc})")
endif()

string(REPLACE "\n" ";" lines "${listing}")
set(entries "")
foreach(line IN LISTS lines)
  if(line MATCHES "^([a-z0-9-]+)[ \t]")
    list(APPEND entries "${CMAKE_MATCH_1}")
  endif()
endforeach()
list(LENGTH entries count)
if(count LESS 10)
  message(FATAL_ERROR "expected at least 10 corpus entries, got ${count}: ${entries}")
endif()

set(total_folded 0)
set(total_removed 0)
set(total_dropped 0)

foreach(entry IN LISTS entries)
  execute_process(COMMAND ${ZEUSC} --example ${entry} -O1 --opt-stats
                  OUTPUT_VARIABLE json
                  ERROR_VARIABLE err
                  RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "${entry}: zeusc -O1 --opt-stats exited ${rc} "
            "(verifier failure or crash)\n${json}\n${err}")
  endif()

  # Schema validation (docs/optimizer.md).  string(JSON ...) hard-errors
  # on malformed JSON, absent keys and type mismatches.
  string(JSON version GET "${json}" "zeus-opt")
  if(NOT version EQUAL 1)
    message(FATAL_ERROR "${entry}: zeus-opt version ${version}, expected 1")
  endif()
  string(JSON design GET "${json}" "design")
  if(design STREQUAL "")
    message(FATAL_ERROR "${entry}: empty design name")
  endif()
  string(JSON level GET "${json}" "level")
  if(NOT level EQUAL 1)
    message(FATAL_ERROR "${entry}: level ${level}, expected 1")
  endif()
  string(JSON ran GET "${json}" "ran")
  string(JSON verified GET "${json}" "verified")
  if(NOT ran STREQUAL "ON")
    message(FATAL_ERROR "${entry}: ran=${ran}, expected true")
  endif()
  if(NOT verified STREQUAL "ON")
    message(FATAL_ERROR "${entry}: verifier rejected the graph\n${json}")
  endif()
  string(JSON nodes_before GET "${json}" "nodes" "before")
  string(JSON nodes_after GET "${json}" "nodes" "after")
  string(JSON nets_before GET "${json}" "nets" "before")
  string(JSON nets_after GET "${json}" "nets" "after")
  if(nodes_after GREATER nodes_before)
    message(FATAL_ERROR "${entry}: node count grew (${nodes_before} -> ${nodes_after})")
  endif()
  if(nets_after GREATER nets_before)
    message(FATAL_ERROR "${entry}: dense net count grew (${nets_before} -> ${nets_after})")
  endif()

  string(JSON npasses LENGTH "${json}" "passes")
  if(NOT npasses EQUAL 3)
    message(FATAL_ERROR "${entry}: expected 3 passes, got ${npasses}")
  endif()
  set(want_passes "const-fold" "dce" "alias-collapse")
  set(removed_sum 0)
  foreach(i RANGE 0 2)
    string(JSON pname GET "${json}" "passes" ${i} "pass")
    list(GET want_passes ${i} want)
    if(NOT pname STREQUAL want)
      message(FATAL_ERROR "${entry}: pass ${i} is '${pname}', expected '${want}'")
    endif()
    string(JSON pfolded GET "${json}" "passes" ${i} "nodes_folded")
    string(JSON premoved GET "${json}" "passes" ${i} "nodes_removed")
    string(JSON pdropped GET "${json}" "passes" ${i} "nets_dropped")
    if(pfolded LESS 0 OR premoved LESS 0 OR pdropped LESS 0)
      message(FATAL_ERROR "${entry}: negative pass counter")
    endif()
    math(EXPR removed_sum "${removed_sum} + ${premoved}")
    math(EXPR total_folded "${total_folded} + ${pfolded}")
    math(EXPR total_removed "${total_removed} + ${premoved}")
    math(EXPR total_dropped "${total_dropped} + ${pdropped}")
  endforeach()
  math(EXPR want_after "${nodes_before} - ${removed_sum}")
  if(NOT nodes_after EQUAL want_after)
    message(FATAL_ERROR
            "${entry}: nodes.after=${nodes_after} but before - removed = ${want_after}")
  endif()

  # -O0 on the same entry: verify-only, nothing touched.
  execute_process(COMMAND ${ZEUSC} --example ${entry} -O0 --opt-stats
                  OUTPUT_VARIABLE json0
                  ERROR_VARIABLE err0
                  RESULT_VARIABLE rc0)
  if(NOT rc0 EQUAL 0)
    message(FATAL_ERROR "${entry}: zeusc -O0 --opt-stats exited ${rc0}\n${err0}")
  endif()
  string(JSON ran0 GET "${json0}" "ran")
  string(JSON verified0 GET "${json0}" "verified")
  string(JSON before0 GET "${json0}" "nodes" "before")
  string(JSON after0 GET "${json0}" "nodes" "after")
  if(ran0 STREQUAL "ON")
    message(FATAL_ERROR "${entry}: -O0 reports ran=true")
  endif()
  if(NOT verified0 STREQUAL "ON")
    message(FATAL_ERROR "${entry}: -O0 verifier rejected the graph\n${json0}")
  endif()
  if(NOT before0 EQUAL after0)
    message(FATAL_ERROR "${entry}: -O0 changed the node count (${before0} -> ${after0})")
  endif()
  if(NOT before0 EQUAL nodes_before)
    message(FATAL_ERROR
            "${entry}: -O0 and -O1 disagree on the input design "
            "(${before0} vs ${nodes_before} nodes)")
  endif()

  message(STATUS "${entry}: ok (${nodes_before} -> ${nodes_after} nodes, "
                 "${nets_before} -> ${nets_after} nets)")
endforeach()

# The corpus as a whole must give the passes real work, or this test
# would silently pass on a pipeline that does nothing.
if(total_folded EQUAL 0 AND total_removed EQUAL 0 AND total_dropped EQUAL 0)
  message(FATAL_ERROR
          "pipeline had no effect on any of ${count} corpus entries")
endif()

message(STATUS "transform_corpus: ${count} corpus entries optimized and verified "
               "(${total_folded} folded, ${total_removed} removed, ${total_dropped} dropped)")

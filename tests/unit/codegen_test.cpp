// Differential tests for the native codegen backend (src/codegen/):
// the hot-loaded compiled engine against the levelized interpreter —
// net values, SimErrors, RANDOM stream position, register trajectories,
// evaluator counters — plus ZSNP snapshot interchange between the two
// engines, the design-hash guard, the on-disk artifact cache and the
// interpreter-fallback rules.
//
// Host compiles run at -O0 (CodegenOptions::cxxflags) to keep the suite
// fast; the generated code is identical modulo host optimization, and
// runtime performance is bench_levelized's job.  Every test that needs
// the host toolchain skips with a notice when none is available.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/codegen/compiled.h"
#include "src/codegen/emit.h"
#include "src/core/batch_sim.h"
#include "src/corpus/corpus.h"
#include "src/sim/snapshot.h"
#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

codegen::CodegenOptions testOptions() {
  codegen::CodegenOptions o;
  o.cacheDir = ::testing::TempDir() + "zeus-codegen-test-cache";
  o.cxxflags = "-O0";
  return o;
}

#define SKIP_WITHOUT_TOOLCHAIN()                                          \
  do {                                                                    \
    if (!codegen::toolchainAvailable(testOptions())) {                    \
      GTEST_SKIP() << "no host C++ toolchain; codegen tests skipped";     \
    }                                                                     \
  } while (0)

std::shared_ptr<const codegen::CompiledDesign> mustLoad(const SimGraph& g,
                                                        uint32_t optLevel) {
  codegen::CodegenOptions opts = testOptions();
  opts.optLevel = optLevel;
  std::string err;
  auto cd = codegen::CompiledDesign::load(g, opts, err);
  EXPECT_NE(cd, nullptr) << err;
  return cd;
}

/// A design exercising everything the compiled engine must reproduce:
/// RANDOM draws, a REG trajectory, and input-dependent multiplex
/// contention (SimErrors).
const char* kResumable = R"(
TYPE t = COMPONENT (IN en, a, b: boolean; OUT o, q: boolean) IS
  SIGNAL r: REG;
  SIGNAL m: multiplex;
BEGIN
  IF en THEN r.in := RANDOM() END;
  IF a THEN m := 1 END;
  IF b THEN m := 0 END;
  o := r.out;
  q := m
END;
SIGNAL top: t;
)";

struct Stimulus {
  Logic en, a, b;
};

std::vector<Stimulus> randomStimulus(int cycles, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Stimulus> s(cycles);
  for (Stimulus& x : s) {
    x.en = logicFromBool(rng() & 1);
    x.a = logicFromBool(rng() & 1);
    x.b = logicFromBool(rng() & 1);
  }
  return s;
}

void drive(Simulation& sim, const Stimulus& s) {
  sim.setInput("en", s.en);
  sim.setInput("a", s.a);
  sim.setInput("b", s.b);
  sim.step();
}

// ---------------------------------------------------------------------
// Corpus differential: interpreter vs compiled, scalar and 64-lane
// batch, on representative corpus entries at zeus -O0 and -O1.  (The
// codegen_corpus ctest sweeps EVERY entry through the CLI; this test
// checks the deep invariants the CLI cannot see.)
// ---------------------------------------------------------------------

void corpusDifferential(const std::string& entryName, int zeusOptLevel) {
  SCOPED_TRACE(entryName + " at -O" + std::to_string(zeusOptLevel));
  const corpus::CorpusEntry* e = corpus::find(entryName);
  ASSERT_NE(e, nullptr);
  std::string top;
  std::string src = corpusSource(*e, &top);
  Built b = buildOk(src, top);
  if (zeusOptLevel > 0) {
    OptOptions oo;
    oo.level = zeusOptLevel;
    OptReport rep = b.comp->optimize(*b.design, oo);
    ASSERT_TRUE(rep.verified) << rep.verifyError;
  }
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  auto cd = mustLoad(g, static_cast<uint32_t>(zeusOptLevel));
  ASSERT_NE(cd, nullptr);

  constexpr size_t kLanes = 16;
  constexpr int kCycles = 12;
  Simulation sInterp(g, EvaluatorKind::Levelized);
  Simulation::Options sopts;
  sopts.evaluator = EvaluatorKind::Compiled;
  sopts.compiled = cd;
  Simulation sCompiled(g, sopts);
  BatchSimulation bInterp(g, kLanes);
  BatchSimulation bCompiled(g, kLanes, cd);
  ASSERT_TRUE(bCompiled.usingCompiled());

  std::mt19937_64 rng(41);
  const Netlist& nl = b.design->netlist;
  for (int cyc = 0; cyc < kCycles; ++cyc) {
    for (const Port& p : b.design->ports) {
      if (p.mode != ast::ParamMode::In) continue;
      uint64_t v = rng();
      sInterp.setInputUint(p.name, v);
      sCompiled.setInputUint(p.name, v);
      for (size_t l = 0; l < kLanes; ++l) {
        uint64_t lv = rng();
        bInterp.setInputUint(l, p.name, lv);
        bCompiled.setInputUint(l, p.name, lv);
      }
    }
    sInterp.step();
    sCompiled.step();
    bInterp.step();
    bCompiled.step();
    // Net-by-net agreement, scalar and every batch lane.
    for (NetId n = 0; n < nl.netCount(); ++n) {
      ASSERT_EQ(sInterp.netValue(n), sCompiled.netValue(n))
          << "scalar net " << nl.net(n).name << " cycle " << cyc;
      for (size_t l = 0; l < kLanes; ++l) {
        ASSERT_EQ(bInterp.netValue(l, n), bCompiled.netValue(l, n))
            << "net " << nl.net(n).name << " lane " << l << " cycle "
            << cyc;
      }
    }
    ASSERT_EQ(sInterp.saveRegisters(), sCompiled.saveRegisters());
    ASSERT_EQ(sInterp.randomState(), sCompiled.randomState());
    for (size_t l = 0; l < kLanes; ++l) {
      ASSERT_EQ(bInterp.randomState(l), bCompiled.randomState(l))
          << "lane " << l;
    }
  }
  // Contention faults and counters match exactly (SimError operator==
  // compares cycle, code, net, message and lane).
  EXPECT_EQ(sInterp.errors(), sCompiled.errors());
  EXPECT_EQ(bInterp.errors(), bCompiled.errors());
  EXPECT_TRUE(sInterp.stats() == sCompiled.stats());
  EXPECT_TRUE(bInterp.stats() == bCompiled.stats());
}

class CodegenCorpus
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(CodegenCorpus, CompiledMatchesInterpreter) {
  SKIP_WITHOUT_TOOLCHAIN();
  corpusDifferential(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Representative, CodegenCorpus,
    ::testing::Combine(::testing::Values("mux4", "blackjack", "ram",
                                         "sorter"),
                       ::testing::Values(0, 1)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name + "_O" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// RANDOM stream + SimErrors on the contention-heavy design.
// ---------------------------------------------------------------------

TEST(Codegen, RandomStreamAndErrorsMatchInterpreter) {
  SKIP_WITHOUT_TOOLCHAIN();
  Built b = buildOk(kResumable, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  auto cd = mustLoad(g, 1);
  ASSERT_NE(cd, nullptr);

  Simulation interp(g, EvaluatorKind::Levelized);
  Simulation::Options sopts;
  sopts.evaluator = EvaluatorKind::Compiled;
  sopts.compiled = cd;
  Simulation compiled(g, sopts);
  interp.setRandomSeed(0xABCDEFull);
  compiled.setRandomSeed(0xABCDEFull);

  std::vector<Stimulus> stim = randomStimulus(32, 7);
  for (const Stimulus& s : stim) {
    drive(interp, s);
    drive(compiled, s);
    ASSERT_EQ(interp.randomState(), compiled.randomState());
    ASSERT_EQ(interp.output("o"), compiled.output("o"));
    ASSERT_EQ(interp.output("q"), compiled.output("q"));
  }
  ASSERT_FALSE(interp.errors().empty()) << "stimulus never contended";
  EXPECT_EQ(interp.errors(), compiled.errors());
}

// ---------------------------------------------------------------------
// Fault-injection overlay: a faulty lane in the compiled engine tracks
// the interpreter's faulty lane exactly.
// ---------------------------------------------------------------------

TEST(Codegen, FaultyLanesMatchInterpreter) {
  SKIP_WITHOUT_TOOLCHAIN();
  Built b = buildOk(kResumable, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  auto cd = mustLoad(g, 1);
  ASSERT_NE(cd, nullptr);

  constexpr size_t kLanes = 8;
  BatchSimulation interp(g, kLanes);
  BatchSimulation compiled(g, kLanes, cd);
  for (auto [lane, kind] :
       {std::pair<size_t, FaultKind>{1, FaultKind::StuckAt0},
        {2, FaultKind::StuckAt1},
        {3, FaultKind::StuckUndef},
        {4, FaultKind::ForcedContention}}) {
    auto f = makeFault(g, kind, "top.m");
    ASSERT_TRUE(f.has_value());
    interp.injectFault(lane, *f);
    compiled.injectFault(lane, *f);
  }
  std::vector<Stimulus> stim = randomStimulus(16, 29);
  const Netlist& nl = b.design->netlist;
  for (int cyc = 0; cyc < 16; ++cyc) {
    for (size_t l = 0; l < kLanes; ++l) {
      interp.setInput(l, "en", stim[cyc].en);
      interp.setInput(l, "a", stim[cyc].a);
      interp.setInput(l, "b", stim[cyc].b);
      compiled.setInput(l, "en", stim[cyc].en);
      compiled.setInput(l, "a", stim[cyc].a);
      compiled.setInput(l, "b", stim[cyc].b);
    }
    interp.step();
    compiled.step();
    for (NetId n = 0; n < nl.netCount(); ++n) {
      for (size_t l = 0; l < kLanes; ++l) {
        ASSERT_EQ(interp.netValue(l, n), compiled.netValue(l, n))
            << "net " << nl.net(n).name << " lane " << l << " cycle "
            << cyc;
      }
    }
  }
  EXPECT_EQ(interp.errors(), compiled.errors());
}

// ---------------------------------------------------------------------
// ZSNP interchange: snapshots cross engine boundaries bit-identically.
// ---------------------------------------------------------------------

TEST(Codegen, SnapshotsInterchangeWithInterpreter) {
  SKIP_WITHOUT_TOOLCHAIN();
  constexpr int kCycles = 24;
  constexpr int kStopAt = 10;
  std::vector<Stimulus> stim = randomStimulus(kCycles, 99);
  Built b = buildOk(kResumable, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  auto cd = mustLoad(g, 1);
  ASSERT_NE(cd, nullptr);
  Simulation::Options copts;
  copts.evaluator = EvaluatorKind::Compiled;
  copts.compiled = cd;

  // The oracle: an uninterrupted interpreter run.
  Simulation straight(g, EvaluatorKind::Levelized);
  for (int c = 0; c < kCycles; ++c) drive(straight, stim[c]);
  ASSERT_FALSE(straight.errors().empty()) << "stimulus never contended";

  // Interpreter -> ZSNP bytes -> compiled engine.
  Simulation first(g, EvaluatorKind::Levelized);
  for (int c = 0; c < kStopAt; ++c) drive(first, stim[c]);
  std::vector<uint8_t> bytes = snapshotToBytes(first.saveSnapshot());
  SimSnapshot snap;
  std::string err;
  ASSERT_TRUE(snapshotFromBytes(bytes.data(), bytes.size(), snap, err))
      << err;
  Simulation resumed(g, copts);
  resumed.restoreSnapshot(snap);
  for (int c = kStopAt; c < kCycles; ++c) drive(resumed, stim[c]);
  EXPECT_EQ(resumed.cycle(), straight.cycle());
  EXPECT_EQ(resumed.errors(), straight.errors());
  EXPECT_EQ(resumed.randomState(), straight.randomState());
  EXPECT_EQ(resumed.saveRegisters(), straight.saveRegisters());
  EXPECT_TRUE(resumed.stats() == straight.stats())
      << "evaluator counters diverged across the engine boundary";

  // Compiled engine -> ZSNP bytes -> interpreter.
  Simulation cfirst(g, copts);
  for (int c = 0; c < kStopAt; ++c) drive(cfirst, stim[c]);
  bytes = snapshotToBytes(cfirst.saveSnapshot());
  ASSERT_TRUE(snapshotFromBytes(bytes.data(), bytes.size(), snap, err))
      << err;
  Simulation back(g, EvaluatorKind::Levelized);
  back.restoreSnapshot(snap);
  for (int c = kStopAt; c < kCycles; ++c) drive(back, stim[c]);
  EXPECT_EQ(back.cycle(), straight.cycle());
  EXPECT_EQ(back.errors(), straight.errors());
  EXPECT_EQ(back.randomState(), straight.randomState());
  EXPECT_EQ(back.saveRegisters(), straight.saveRegisters());
  EXPECT_TRUE(back.stats() == straight.stats());

  // Compiled batch lane -> scalar interpreter.
  BatchSimulation bfirst(g, 4, cd);
  for (int c = 0; c < kStopAt; ++c) {
    for (size_t l = 0; l < bfirst.lanes(); ++l) {
      bfirst.setInput(l, "en", stim[c].en);
      bfirst.setInput(l, "a", stim[c].a);
      bfirst.setInput(l, "b", stim[c].b);
    }
    bfirst.step();
  }
  Simulation cont(g, EvaluatorKind::Levelized);
  cont.restoreSnapshot(bfirst.saveSnapshot(2));
  for (int c = kStopAt; c < kCycles; ++c) drive(cont, stim[c]);
  EXPECT_EQ(cont.saveRegisters(), straight.saveRegisters());
  EXPECT_EQ(cont.randomState(), straight.randomState());
}

TEST(Codegen, SnapshotDesignHashGuardHoldsOnCompiledEngine) {
  SKIP_WITHOUT_TOOLCHAIN();
  Built b = buildOk(kResumable, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  auto cd = mustLoad(g, 1);
  ASSERT_NE(cd, nullptr);
  Simulation::Options copts;
  copts.evaluator = EvaluatorKind::Compiled;
  copts.compiled = cd;
  Simulation compiled(g, copts);

  Built other = buildOk(std::string(kMux4), "m");
  SimGraph og = buildSimGraph(*other.design, other.comp->diags());
  ASSERT_FALSE(og.hasCycle);
  Simulation foreign(og, EvaluatorKind::Levelized);
  foreign.step();
  EXPECT_THROW(compiled.restoreSnapshot(foreign.saveSnapshot()),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Artifact cache + fallback rules.
// ---------------------------------------------------------------------

TEST(Codegen, DiskCacheHitsOnReload) {
  SKIP_WITHOUT_TOOLCHAIN();
  Built b = buildOk(kResumable, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  codegen::CodegenOptions opts = testOptions();
  opts.cacheDir = ::testing::TempDir() + "zeus-codegen-cache-hit-test";
  std::string err;
  std::string artifact;
  {
    auto first = codegen::CompiledDesign::load(g, opts, err);
    ASSERT_NE(first, nullptr) << err;
    artifact = first->artifactPath();
    // Dropping the last reference expires the in-process registry entry,
    // so the next load must go through the on-disk probe.
  }
  auto second = codegen::CompiledDesign::load(g, opts, err);
  ASSERT_NE(second, nullptr) << err;
  EXPECT_TRUE(second->cacheHit());
  EXPECT_EQ(second->artifactPath(), artifact);

  // While a design is live, a third load shares the same object.
  auto third = codegen::CompiledDesign::load(g, opts, err);
  EXPECT_EQ(second.get(), third.get());
}

TEST(Codegen, MissingCompilerFailsStructuredAndSimulationFallsBack) {
  Built b = buildOk(kResumable, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  codegen::CodegenOptions opts = testOptions();
  opts.compiler = "/nonexistent/definitely-not-a-compiler";
  std::string err;
  auto cd = codegen::CompiledDesign::load(g, opts, err);
  EXPECT_EQ(cd, nullptr);
  EXPECT_FALSE(err.empty());

  // EvaluatorKind::Compiled with no loaded design demotes to the
  // levelized interpreter instead of failing.
  Simulation::Options sopts;
  sopts.evaluator = EvaluatorKind::Compiled;
  Simulation sim(g, sopts);
  sim.step(4);
  EXPECT_EQ(sim.metricsCounters().evaluator, "levelized");
}

// ---------------------------------------------------------------------
// Emitter-only checks (no toolchain required).
// ---------------------------------------------------------------------

TEST(Codegen, EmitterIsDeterministic) {
  Built b = buildOk(kResumable, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  codegen::EmitResult one = codegen::emitCompiledCpp(g);
  codegen::EmitResult two = codegen::emitCompiledCpp(g);
  ASSERT_TRUE(one.ok) << one.error;
  EXPECT_EQ(one.source, two.source);
  EXPECT_EQ(one.designHash, two.designHash);
  EXPECT_NE(one.source.find("zeus_compiled_design_v1"), std::string::npos);
}

}  // namespace
}  // namespace zeus::test

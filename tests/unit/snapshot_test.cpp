// Versioned binary checkpoints (src/sim/snapshot.h): byte-exact
// roundtrips, atomic file saves, the design content hash guarding
// restores, and defensive decoding of truncated / corrupt / mismatched
// snapshot files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/sim/snapshot.h"
#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

const char* kContender = R"(
TYPE t = COMPONENT (IN a, b: boolean; OUT o: boolean) IS
  SIGNAL m: multiplex;
  SIGNAL r: REG;
BEGIN
  IF a THEN m := 1 END;
  IF b THEN m := 0 END;
  r.in := m;
  o := r.out
END;
SIGNAL top: t;
)";

SimSnapshot sampleSnapshot(const SimGraph& g) {
  Simulation sim(g, EvaluatorKind::Firing);
  sim.setInput("a", Logic::One);
  sim.setInput("b", Logic::One);  // contention -> SimErrors accumulate
  sim.step(3);
  sim.setInput("b", Logic::Zero);
  return sim.saveSnapshot();
}

TEST(Snapshot, BytesRoundtripExactly) {
  Built b = buildOk(kContender, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  SimSnapshot snap = sampleSnapshot(g);
  ASSERT_FALSE(snap.errors.empty());
  EXPECT_EQ(snap.cycle, 3u);
  EXPECT_NE(snap.designHash, 0u);

  std::vector<uint8_t> bytes = snapshotToBytes(snap);
  SimSnapshot back;
  std::string err;
  ASSERT_TRUE(snapshotFromBytes(bytes.data(), bytes.size(), back, err))
      << err;
  EXPECT_EQ(back.designHash, snap.designHash);
  EXPECT_EQ(back.cycle, snap.cycle);
  EXPECT_EQ(back.rngState, snap.rngState);
  EXPECT_TRUE(back.stats == snap.stats);
  EXPECT_EQ(back.regValues, snap.regValues);
  EXPECT_EQ(back.inputValues, snap.inputValues);
  EXPECT_EQ(back.inputSet, snap.inputSet);
  EXPECT_EQ(back.errors, snap.errors);

  SnapshotKind kind;
  ASSERT_TRUE(snapshotKindOfBytes(bytes.data(), bytes.size(), kind, err));
  EXPECT_EQ(kind, SnapshotKind::SimState);
}

TEST(Snapshot, EveryTruncationFailsCleanly) {
  Built b = buildOk(kContender, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  std::vector<uint8_t> bytes = snapshotToBytes(sampleSnapshot(g));
  for (size_t len = 0; len < bytes.size(); ++len) {
    SimSnapshot out;
    std::string err;
    EXPECT_FALSE(snapshotFromBytes(bytes.data(), len, out, err))
        << "prefix of " << len << " bytes decoded";
    EXPECT_FALSE(err.empty());
  }
}

TEST(Snapshot, CorruptHeadersAreRejected) {
  Built b = buildOk(kContender, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  std::vector<uint8_t> good = snapshotToBytes(sampleSnapshot(g));
  SimSnapshot out;
  std::string err;

  std::vector<uint8_t> badMagic = good;
  badMagic[0] ^= 0xFF;
  EXPECT_FALSE(snapshotFromBytes(badMagic.data(), badMagic.size(), out, err));
  EXPECT_NE(err.find("magic"), std::string::npos) << err;

  std::vector<uint8_t> badVersion = good;
  badVersion[4] = 99;
  EXPECT_FALSE(
      snapshotFromBytes(badVersion.data(), badVersion.size(), out, err));
  EXPECT_NE(err.find("version"), std::string::npos) << err;

  // A campaign checkpoint must not decode as a sim snapshot.
  std::vector<uint8_t> wrongKind = good;
  wrongKind[8] = 1;
  EXPECT_FALSE(
      snapshotFromBytes(wrongKind.data(), wrongKind.size(), out, err));

  // Huge element counts are rejected by the byte-budget check before any
  // allocation happens (no OOM on adversarial input).  The regValues
  // count sits right after the 17-byte header, cycle, rngState and the
  // eight stats words: bytes 97..104.
  std::vector<uint8_t> hugeCount = good;
  for (size_t i = 97; i < 105 && i < hugeCount.size(); ++i) {
    hugeCount[i] = 0xFF;
  }
  EXPECT_FALSE(
      snapshotFromBytes(hugeCount.data(), hugeCount.size(), out, err));
}

TEST(Snapshot, FileSaveLoadAndAtomicity) {
  Built b = buildOk(kContender, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  SimSnapshot snap = sampleSnapshot(g);
  std::string path = testing::TempDir() + "zeus_snapshot_test.snap";
  std::string err;
  ASSERT_TRUE(saveSnapshotFile(path, snap, err)) << err;
  // The .tmp staging file was renamed away, not left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  SimSnapshot back;
  ASSERT_TRUE(loadSnapshotFile(path, back, err)) << err;
  EXPECT_EQ(back.errors, snap.errors);
  EXPECT_FALSE(loadSnapshotFile(path + ".missing", back, err));
  std::remove(path.c_str());
}

TEST(Snapshot, DesignHashGuardsRestore) {
  Built b1 = buildOk(kContender, "top");
  SimGraph g1 = buildSimGraph(*b1.design, b1.comp->diags());
  Built b2 = buildOk(std::string(kAdders) + "SIGNAL adder: rippleCarry(4);\n",
                     "adder");
  SimGraph g2 = buildSimGraph(*b2.design, b2.comp->diags());
  EXPECT_NE(designContentHash(*b1.design), designContentHash(*b2.design));

  SimSnapshot snap = sampleSnapshot(g1);
  Simulation other(g2);
  EXPECT_THROW(other.restoreSnapshot(snap), std::invalid_argument);
  BatchSimulation batch(g2, 2);
  EXPECT_THROW(batch.restoreSnapshot(1, snap), std::invalid_argument);
  // A zero hash means "unchecked" (hand-built snapshots).
  Simulation same(g1);
  snap.designHash = 0;
  same.restoreSnapshot(snap);
  EXPECT_EQ(same.cycle(), snap.cycle);
}

// Checkpoints depend on the optimization level: Design::optFingerprint is
// folded into the content hash at -O1, so a snapshot taken from an
// unoptimized simulation must not restore into an optimized one (nor the
// reverse) — the dense state layouts differ even for the same source.
TEST(Snapshot, OptimizationLevelGuardsRestore) {
  Built b0 = buildOk(kContender, "top");
  SimGraph g0 = buildSimGraph(*b0.design, b0.comp->diags());
  Built b1 = buildOk(kContender, "top");
  OptReport rep = b1.comp->optimize(*b1.design);
  ASSERT_TRUE(rep.verified) << rep.verifyError;
  ASSERT_NE(b1.design->optFingerprint, 0u);
  SimGraph g1 = buildSimGraph(*b1.design, b1.comp->diags());
  EXPECT_NE(designContentHash(*b0.design), designContentHash(*b1.design));

  // -O0 snapshot into -O1 simulation: rejected, scalar and batch alike.
  SimSnapshot snap0 = sampleSnapshot(g0);
  Simulation opt(g1);
  EXPECT_THROW(opt.restoreSnapshot(snap0), std::invalid_argument);
  BatchSimulation batch(g1, 2);
  EXPECT_THROW(batch.restoreSnapshot(1, snap0), std::invalid_argument);

  // -O1 snapshot into -O0 simulation: same rejection.
  SimSnapshot snap1 = sampleSnapshot(g1);
  Simulation plain(g0);
  EXPECT_THROW(plain.restoreSnapshot(snap1), std::invalid_argument);

  // Matching levels keep round-tripping.
  Simulation same(g1);
  same.restoreSnapshot(snap1);
  EXPECT_EQ(same.cycle(), snap1.cycle);
}

TEST(Snapshot, CampaignProgressRoundtrip) {
  CampaignProgress p;
  p.designHash = 0xDEADBEEFu;
  p.cycles = 12;
  p.seed = 99;
  p.lanes = 16;
  p.totalFaults = 3;
  p.nextFault = 2;
  FaultOutcome a;
  a.spec.kind = FaultKind::StuckAt1;
  a.spec.denseNet = 7;
  a.net = "top.m";
  a.status = FaultOutcome::Status::Detected;
  a.firstDetectCycle = 4;
  a.detector = "o[2]";
  a.simErrors = 1;
  FaultOutcome u;
  u.spec.kind = FaultKind::ForcedContention;
  u.net = "CLK";
  p.done = {a, u};

  std::vector<uint8_t> bytes = campaignToBytes(p);
  SnapshotKind kind;
  std::string err;
  ASSERT_TRUE(snapshotKindOfBytes(bytes.data(), bytes.size(), kind, err));
  EXPECT_EQ(kind, SnapshotKind::CampaignProgress);

  CampaignProgress back;
  ASSERT_TRUE(campaignFromBytes(bytes.data(), bytes.size(), back, err))
      << err;
  EXPECT_EQ(back.designHash, p.designHash);
  EXPECT_EQ(back.cycles, p.cycles);
  EXPECT_EQ(back.seed, p.seed);
  EXPECT_EQ(back.lanes, p.lanes);
  EXPECT_EQ(back.totalFaults, p.totalFaults);
  EXPECT_EQ(back.nextFault, p.nextFault);
  ASSERT_EQ(back.done.size(), 2u);
  EXPECT_EQ(back.done[0].net, "top.m");
  EXPECT_EQ(back.done[0].status, FaultOutcome::Status::Detected);
  EXPECT_EQ(back.done[0].firstDetectCycle, 4u);
  EXPECT_EQ(back.done[0].detector, "o[2]");
  EXPECT_EQ(back.done[1].spec.kind, FaultKind::ForcedContention);

  for (size_t len = 0; len < bytes.size(); ++len) {
    CampaignProgress out;
    EXPECT_FALSE(campaignFromBytes(bytes.data(), len, out, err));
  }
  // Internal consistency: done-count must match nextFault.
  p.nextFault = 1;
  std::vector<uint8_t> lying = campaignToBytes(p);
  CampaignProgress out;
  EXPECT_FALSE(campaignFromBytes(lying.data(), lying.size(), out, err));
}

}  // namespace
}  // namespace zeus::test

// The literal examples of §4.7: "Assume we have a component with n formal
// parameters.  Then in a connection statement or function call we need n
// signal expressions ... However the parenthesis structure within the n
// signal expressions is unimportant."
#include <gtest/gtest.h>

#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

// The paper's h: IN a of 5 booleans, OUT b a record of 5 booleans.
const char* kSection47 = R"(
TYPE h = COMPONENT (IN a: ARRAY[1..5] OF boolean;
                    OUT b: COMPONENT (bl,cl,dl,el,fl: boolean)) IS
BEGIN
  b.bl := a[1]; b.cl := a[2]; b.dl := a[3]; b.el := a[4]; b.fl := a[5]
END;

t = COMPONENT (IN p: ARRAY[1..2] OF boolean;
               IN q: ARRAY[1..3] OF boolean;
               OUT r: ARRAY[1..5] OF boolean) IS
  SIGNAL s: h;
BEGIN
  <* first actual (p,q) flattens to 5 bits; second regroups r's bits *>
  s((p,q), (r[1], r[2], r[3], r[4], r[5]))
END;
SIGNAL top: t;
)";

TEST(Section47Examples, ParenthesisStructureIsUnimportant) {
  Built b = buildOk(kSection47, "top");
  ASSERT_NE(b.design, nullptr) << b.comp->diagnosticsText();
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInputUint("p", 0b01);
  sim.setInputUint("q", 0b110);
  sim.step();
  // r = p ++ q = 1,0 ++ 0,1,1
  EXPECT_EQ(sim.outputUint("r"), 0b11001u);
  EXPECT_TRUE(sim.errors().empty());
}

TEST(Section47Examples, SecondConnectionFormWithConstants) {
  // The paper's second correct statement: s((p,(1,1,1)),(...)) — a
  // constant tuple completes the IN actual.
  const char* src = R"(
TYPE h = COMPONENT (IN a: ARRAY[1..5] OF boolean;
                    OUT b: ARRAY[1..5] OF boolean) IS
BEGIN
  b := a
END;
t = COMPONENT (IN p: ARRAY[1..2] OF boolean;
               OUT r: ARRAY[1..5] OF boolean) IS
  SIGNAL s: h;
BEGIN
  s((p, (1,1,1)), r)
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  ASSERT_NE(b.design, nullptr) << b.comp->diagnosticsText();
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInputUint("p", 0b10);
  sim.step();
  EXPECT_EQ(sim.outputUint("r"), 0b11110u);
}

TEST(Section47Examples, WrongTotalWidthRejected) {
  const char* src = R"(
TYPE h = COMPONENT (IN a: ARRAY[1..5] OF boolean;
                    OUT b: ARRAY[1..5] OF boolean) IS
BEGIN
  b := a
END;
t = COMPONENT (IN p: ARRAY[1..2] OF boolean;
               OUT r: ARRAY[1..5] OF boolean) IS
  SIGNAL s: h;
BEGIN
  s((p, (1,1)), r)
END;
SIGNAL top: t;
)";
  expectElabError(src, "top", Diag::WidthMismatch);
}

TEST(Section47Examples, ScoreDenotesAllSubsignals) {
  // §4.1: "In the statement part score denotes the five signals
  // score[1] ... score[5]."
  const char* src = R"(
TYPE t = COMPONENT (IN a: ARRAY[1..5] OF boolean;
                    OUT o: ARRAY[1..5] OF boolean) IS
  SIGNAL score: ARRAY[1..5] OF boolean;
BEGIN
  score := a;
  o := NOT score
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInputUint("a", 0b10110);
  sim.step();
  EXPECT_EQ(sim.outputUint("o"), 0b01001u);
}

TEST(Section47Examples, MatrixDefaultSelectors) {
  // §4.1: matrix[2] is equivalent to matrix[2][1..n].
  const char* src = R"(
TYPE t = COMPONENT (IN a: ARRAY[1..3] OF boolean;
                    OUT o: ARRAY[1..3] OF boolean) IS
  SIGNAL matrix: ARRAY[1..2, 1..3] OF boolean;
BEGIN
  matrix[1] := a;
  matrix[2] := NOT matrix[1];
  o := matrix[2]
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInputUint("a", 0b101);
  sim.step();
  EXPECT_EQ(sim.outputUint("o"), 0b010u);
}

}  // namespace
}  // namespace zeus::test

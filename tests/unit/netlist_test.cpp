// Unit tests for the netlist: alias union-find, driver accounting across
// class merges, and canonicalisation.
#include <gtest/gtest.h>

#include "src/elab/netlist.h"

namespace zeus {
namespace {

TEST(Netlist, AddAndLookup) {
  Netlist nl;
  NetId a = nl.addNet("a", BasicKind::Boolean, {});
  NetId b = nl.addNet("b", BasicKind::Multiplex, {});
  EXPECT_EQ(nl.netCount(), 2u);
  EXPECT_EQ(nl.net(a).name, "a");
  EXPECT_EQ(nl.net(b).kind, BasicKind::Multiplex);
  EXPECT_EQ(nl.find(a), a);
}

TEST(Netlist, UniteMergesDriverCounts) {
  Netlist nl;
  NetId a = nl.addNet("a", BasicKind::Multiplex, {});
  NetId b = nl.addNet("b", BasicKind::Multiplex, {});
  nl.net(a).condDrivers = 2;
  nl.net(b).condDrivers = 1;
  nl.net(b).uncondDrivers = 1;
  NetId root = nl.unite(a, b);
  EXPECT_EQ(nl.find(a), nl.find(b));
  EXPECT_EQ(nl.net(root).condDrivers, 3u);
  EXPECT_EQ(nl.net(root).uncondDrivers, 1u);
  EXPECT_TRUE(nl.net(root).aliasTarget);
}

TEST(Netlist, UniteIsIdempotent) {
  Netlist nl;
  NetId a = nl.addNet("a", BasicKind::Multiplex, {});
  NetId b = nl.addNet("b", BasicKind::Multiplex, {});
  nl.net(a).condDrivers = 1;
  nl.unite(a, b);
  NetId root = nl.unite(b, a);
  EXPECT_EQ(nl.net(root).condDrivers, 1u);  // not double counted
}

TEST(Netlist, TransitiveClasses) {
  Netlist nl;
  std::vector<NetId> nets;
  for (int i = 0; i < 5; ++i) {
    nets.push_back(nl.addNet("n" + std::to_string(i), BasicKind::Multiplex,
                             {}));
  }
  nl.unite(nets[0], nets[1]);
  nl.unite(nets[2], nets[3]);
  nl.unite(nets[1], nets[3]);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(nl.find(nets[i]), nl.find(nets[0]));
  }
  EXPECT_NE(nl.find(nets[4]), nl.find(nets[0]));
}

TEST(Netlist, DriversRegisterUnderRoot) {
  Netlist nl;
  NetId a = nl.addNet("a", BasicKind::Multiplex, {});
  NetId b = nl.addNet("b", BasicKind::Multiplex, {});
  NetId src = nl.addNet("s", BasicKind::Boolean, {});
  Node n;
  n.op = NodeOp::Switch;
  n.inputs = {src, src};
  n.output = a;
  nl.addNode(n);
  nl.unite(a, b);
  Node m;
  m.op = NodeOp::Switch;
  m.inputs = {src, src};
  m.output = b;
  nl.addNode(m);
  nl.canonicalise();
  NetId root = nl.find(a);
  EXPECT_EQ(nl.driversOf(root).size(), 2u);
  // Node outputs are remapped to roots.
  EXPECT_EQ(nl.node(0).output, root);
  EXPECT_EQ(nl.node(1).output, root);
}

TEST(Netlist, CanonicaliseRemapsInputs) {
  Netlist nl;
  NetId a = nl.addNet("a", BasicKind::Multiplex, {});
  NetId b = nl.addNet("b", BasicKind::Multiplex, {});
  NetId out = nl.addNet("o", BasicKind::Boolean, {});
  Node n;
  n.op = NodeOp::Buf;
  n.inputs = {b};
  n.output = out;
  nl.addNode(n);
  nl.unite(a, b);
  nl.canonicalise();
  EXPECT_EQ(nl.node(0).inputs[0], nl.find(a));
}

}  // namespace
}  // namespace zeus

// Unit tests for canonical types (§3.2): parameterized instantiation,
// memoisation, flattening with IN/OUT inheritance, and recursion guards.
#include <gtest/gtest.h>

#include "src/parser/parser.h"
#include "src/sema/checker.h"
#include "src/sema/type_table.h"

namespace zeus {
namespace {

struct Fixture {
  SourceManager sm;
  std::unique_ptr<DiagnosticEngine> diags;
  std::unique_ptr<TypeTable> types;
  ast::Program program;
  CheckedProgram checked;

  explicit Fixture(const std::string& text) {
    BufferId buf = sm.addBuffer("t", text);
    diags = std::make_unique<DiagnosticEngine>(sm);
    types = std::make_unique<TypeTable>(*diags);
    Parser parser(buf, *diags);
    program = parser.parseProgram();
    Checker checker(*diags, *types);
    checked = checker.check(program);
  }

  const Type* named(const std::string& name, std::vector<int64_t> args) {
    return types->instantiateNamed(name, args, *checked.rootEnv, {});
  }
};

TEST(TypeTable, Builtins) {
  Fixture f("CONST x = 1;");
  EXPECT_EQ(f.types->boolean()->basic, BasicKind::Boolean);
  EXPECT_EQ(f.types->boolean()->numBasic, 1u);
  EXPECT_EQ(f.types->multiplex()->basic, BasicKind::Multiplex);
  EXPECT_EQ(f.types->virtualType()->numBasic, 0u);
  const Type* reg = f.types->reg();
  ASSERT_EQ(reg->fields.size(), 2u);
  EXPECT_EQ(reg->fields[0].name, "in");
  EXPECT_EQ(reg->fields[0].mode, ast::ParamMode::In);
  EXPECT_EQ(reg->builtin, BuiltinComponent::Reg);
}

TEST(TypeTable, ArrayBoundsAndWidth) {
  Fixture f("TYPE bo(n) = ARRAY[1..n] OF boolean;");
  const Type* t = f.named("bo", {5});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->kind, Type::Kind::Array);
  EXPECT_EQ(t->lo, 1);
  EXPECT_EQ(t->hi, 5);
  EXPECT_EQ(t->numBasic, 5u);
  EXPECT_EQ(t->name, "ARRAY[1..5] OF boolean");
}

TEST(TypeTable, EmptyArrayAllowed) {
  // ARRAY[0..-1] has zero elements (routing network base case).
  Fixture f("TYPE bo(n) = ARRAY[0..n-1] OF boolean;");
  const Type* t = f.named("bo", {0});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->arrayLen(), 0);
  EXPECT_EQ(t->numBasic, 0u);
}

TEST(TypeTable, MemoisationSharesInstantiations) {
  Fixture f("TYPE bo(n) = ARRAY[1..n] OF boolean;");
  EXPECT_EQ(f.named("bo", {4}), f.named("bo", {4}));
  EXPECT_NE(f.named("bo", {4}), f.named("bo", {5}));
}

TEST(TypeTable, WrongArity) {
  Fixture f("TYPE bo(n) = ARRAY[1..n] OF boolean;");
  EXPECT_EQ(f.named("bo", {}), nullptr);
  EXPECT_TRUE(f.diags->has(Diag::WrongArgumentCount));
}

TEST(TypeTable, UnknownTypeDiagnosed) {
  Fixture f("CONST x = 1;");
  EXPECT_EQ(f.named("nosuch", {}), nullptr);
  EXPECT_TRUE(f.diags->has(Diag::NotAType));
}

TEST(TypeTable, ComponentFieldsAndWidth) {
  Fixture f(R"(
TYPE bus = COMPONENT (r,s: ARRAY[1..3] OF multiplex; u: multiplex);
)");
  const Type* t = f.named("bus", {});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->kind, Type::Kind::Component);
  EXPECT_FALSE(t->hasBody);
  ASSERT_EQ(t->fields.size(), 3u);
  EXPECT_EQ(t->numBasic, 7u);
  EXPECT_NE(t->findField("u"), nullptr);
  EXPECT_EQ(t->findField("nope"), nullptr);
}

TEST(TypeTable, FlattenInheritsModes) {
  Fixture f(R"(
TYPE inner = COMPONENT (IN a: boolean; OUT b: boolean; c: multiplex);
outer = COMPONENT (IN p: inner; q: inner);
)");
  const Type* t = f.named("outer", {});
  ASSERT_NE(t, nullptr);
  std::vector<FlatBit> bits;
  f.types->flatten(*t, ast::ParamMode::InOut, "", bits);
  ASSERT_EQ(bits.size(), 6u);
  // p is IN: explicit a stays In, explicit b stays Out, c inherits In.
  EXPECT_EQ(bits[0].path, ".p.a");
  EXPECT_EQ(bits[0].mode, ast::ParamMode::In);
  EXPECT_EQ(bits[1].mode, ast::ParamMode::Out);
  EXPECT_EQ(bits[2].path, ".p.c");
  EXPECT_EQ(bits[2].mode, ast::ParamMode::In);
  // q is INOUT: a/b keep their own modes, c stays InOut.
  EXPECT_EQ(bits[3].mode, ast::ParamMode::In);
  EXPECT_EQ(bits[5].mode, ast::ParamMode::InOut);
}

TEST(TypeTable, RecursiveInterfaceResolves) {
  // Resolving the interface of a recursive type must terminate: the body
  // is lazy.
  Fixture f(R"(
TYPE tree(n) = COMPONENT (IN in: boolean;
                          OUT leaf: ARRAY[1..n] OF boolean) IS
  SIGNAL left, right: tree(n DIV 2);
BEGIN
  WHEN n > 2 THEN left.in := in OTHERWISE leaf[1] := in END
END;
)");
  const Type* t = f.named("tree", {8});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->numBasic, 9u);
  EXPECT_FALSE(f.diags->hasErrors());
}

TEST(TypeTable, FunctionComponentHasResultType) {
  Fixture f(R"(
TYPE f = COMPONENT (IN a: boolean) : ARRAY[1..2] OF boolean IS
BEGIN RESULT (a, a) END;
)");
  const Type* t = f.named("f", {});
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->isFunction());
  EXPECT_EQ(t->resultType->numBasic, 2u);
}

TEST(TypeTable, MultiParameterTypes) {
  Fixture f("TYPE mat(r, c) = ARRAY[1..r] OF ARRAY[1..c] OF boolean;");
  const Type* t = f.named("mat", {3, 4});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->numBasic, 12u);
  EXPECT_EQ(t->numBasic, 12u);
}

TEST(TypeTable, NestedTypeAliases) {
  Fixture f(R"(
CONST k = 2;
TYPE word = ARRAY[1..4] OF boolean;
pairofwords = ARRAY[1..k] OF word;
)");
  const Type* t = f.named("pairofwords", {});
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->numBasic, 8u);
  EXPECT_EQ(t->elem->numBasic, 4u);
}

}  // namespace
}  // namespace zeus

// Unit tests for the semantics graph build (§8): dense numbering over
// alias classes, consumer/driver edges, topological levels and the
// combinational cycle check.
#include <gtest/gtest.h>

#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

TEST(SimGraph, LevelsFollowGateDepth) {
  const char* src = R"(
TYPE t = COMPONENT (IN a, b: boolean; OUT o: boolean) IS
  SIGNAL w1, w2, w3: boolean;
BEGIN
  w1 := AND(a, b);
  w2 := OR(w1, a);
  w3 := XOR(w2, w1);
  o := w3
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  auto level = [&](const char* name) -> uint32_t {
    for (NetId i = 0; i < b.design->netlist.netCount(); ++i) {
      if (b.design->netlist.net(i).name == name) return g.netLevel[g.dense(i)];
    }
    ADD_FAILURE() << "no net " << name;
    return 0;
  };
  uint32_t l1 = level("top.w1");
  uint32_t l2 = level("top.w2");
  uint32_t l3 = level("top.w3");
  EXPECT_LT(l1, l2);
  EXPECT_LT(l2, l3);
  EXPECT_GE(g.maxLevel, l3);
}

TEST(SimGraph, RegBreaksLevels) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL r: REG;
BEGIN
  r.in := XOR(a, r.out);
  o := r.out
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  ASSERT_EQ(g.regNodes.size(), 1u);
  // The register output is a source: level 0.
  const Node& reg = b.design->netlist.node(g.regNodes[0]);
  EXPECT_EQ(g.netLevel[g.dense(reg.output)], 0u);
  EXPECT_GT(g.netLevel[g.dense(reg.inputs[0])], 0u);
}

TEST(SimGraph, AliasClassesShareDenseIndex) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL m1, m2, m3: multiplex;
BEGIN
  m1 == m2;
  m2 == m3;
  IF a THEN m1 := a END;
  o := m3
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  NetId m1 = kNoNet, m3 = kNoNet;
  for (NetId i = 0; i < b.design->netlist.netCount(); ++i) {
    if (b.design->netlist.net(i).name == "top.m1") m1 = i;
    if (b.design->netlist.net(i).name == "top.m3") m3 = i;
  }
  ASSERT_NE(m1, kNoNet);
  ASSERT_NE(m3, kNoNet);
  EXPECT_EQ(g.dense(m1), g.dense(m3));
  EXPECT_LT(g.denseCount, b.design->netlist.netCount());
}

TEST(SimGraph, SelfLoopDetected) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL x: boolean;
BEGIN
  x := AND(a, x);
  o := x
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  EXPECT_TRUE(g.hasCycle);
  EXPECT_NE(g.cycleDescription.find("top.x"), std::string::npos);
}

TEST(SimGraph, AliasCycleDetected) {
  // A loop created purely through aliasing and switches.
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL m1, m2: multiplex;
BEGIN
  IF a THEN m1 := m2 END;
  m2 == m1;
  o := m1
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  EXPECT_TRUE(g.hasCycle);
}

TEST(SimGraph, SimulationRefusesCyclicDesign) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL x: boolean;
BEGIN
  x := AND(a, x);
  o := x
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  EXPECT_THROW(Simulation sim(g), std::runtime_error);
}

TEST(SimGraph, ConsumerEdgesCountInputOccurrences) {
  // AND(x, x) consumes x twice; both arrivals must be delivered.
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
BEGIN
  o := XOR(a, a)
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("a", Logic::One);
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::Zero);  // x XOR x = 0
  sim.setInput("a", Logic::Undef);
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::Undef);
}

}  // namespace
}  // namespace zeus::test

// Observability layer: trace spans (enable/disable semantics, Chrome
// trace_event JSON shape), lock-free counters, phase-timing aggregation,
// the per-net activity profiler and the zeus-metrics-v1 renderer.
//
// The trace buffer is process-global, so every test here clears it and
// leaves tracing disabled on exit — gtest runs tests in one process.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "src/support/metrics.h"
#include "src/support/trace.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

class TraceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::setEnabled(false);
    trace::clear();
  }
  void TearDown() override {
    trace::setEnabled(false);
    trace::clear();
  }
};

TEST_F(TraceFixture, DisabledSpansRecordNothing) {
  { ZEUS_TRACE_SPAN("off-span", "test"); }
  EXPECT_EQ(trace::eventCount(), 0u);
}

TEST_F(TraceFixture, EnabledSpansRecordNameCategoryAndDuration) {
  trace::setEnabled(true);
  { ZEUS_TRACE_SPAN("my-phase", "test"); }
  ASSERT_EQ(trace::eventCount(), 1u);
  std::vector<trace::Event> events = trace::snapshot();
  EXPECT_STREQ(events[0].name, "my-phase");
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_GT(events[0].startUs, 0u);
  EXPECT_GT(events[0].tid, 0u);
}

TEST_F(TraceFixture, ToggleMidSpanNeverHalfRecords) {
  // A span that starts disabled records nothing even if tracing turns on
  // before it closes (no bogus start timestamp).  A span that starts
  // enabled but is disabled mid-span is dropped too: setEnabled(false)
  // retires the buffer generation, so straddling spans cannot resurrect
  // events into buffers the caller believes are quiescent (the
  // thread-safety contract in src/support/trace.h).
  {
    ZEUS_TRACE_SPAN("started-off", "test");
    trace::setEnabled(true);
  }
  EXPECT_EQ(trace::eventCount(), 0u);
  {
    ZEUS_TRACE_SPAN("started-on", "test");
    trace::setEnabled(false);
  }
  EXPECT_EQ(trace::eventCount(), 0u);
  // A span fully inside one enabled generation records normally.
  trace::setEnabled(true);
  {
    ZEUS_TRACE_SPAN("clean", "test");
    (void)0;
  }
  EXPECT_EQ(trace::eventCount(), 1u);
}

TEST_F(TraceFixture, ChromeJsonShape) {
  trace::setEnabled(true);
  { ZEUS_TRACE_SPAN("alpha", "compile"); }
  { ZEUS_TRACE_SPAN("beta", "sim"); }
  trace::setEnabled(false);
  std::string json = trace::renderChromeJson();

  // The envelope Perfetto requires.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("]}"), std::string::npos) << json;
  // Complete-duration events with the mandatory fields.
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"beta\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"compile\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\":"), std::string::npos) << json;
  // "alpha" opened (and therefore started) before "beta"; snapshot sorts
  // by start time.
  EXPECT_LT(json.find("alpha"), json.find("beta"));
}

TEST_F(TraceFixture, EmptyBufferRendersValidEnvelope) {
  EXPECT_EQ(trace::renderChromeJson(), "{\"traceEvents\":[]}\n");
}

TEST_F(TraceFixture, PhaseTimingsAggregateByNameAndCategory) {
  trace::setEnabled(true);
  { ZEUS_TRACE_SPAN("parse", "compile"); }
  { ZEUS_TRACE_SPAN("parse", "compile"); }
  { ZEUS_TRACE_SPAN("elab", "compile"); }
  trace::setEnabled(false);
  std::vector<metrics::PhaseTiming> timings = metrics::phaseTimings();
  ASSERT_EQ(timings.size(), 2u);
  EXPECT_EQ(timings[0].name, "parse");
  EXPECT_EQ(timings[0].count, 2u);
  EXPECT_EQ(timings[1].name, "elab");
  EXPECT_EQ(timings[1].count, 1u);
}

TEST_F(TraceFixture, CompilePipelineEmitsPhaseSpans) {
  trace::setEnabled(true);
  Built b = buildOk(
      "TYPE t = COMPONENT (IN a: boolean; OUT q: boolean) IS\n"
      "BEGIN q := NOT a END;\nSIGNAL top: t;\n",
      "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g, EvaluatorKind::Levelized);
  sim.step(2);
  trace::setEnabled(false);

  std::vector<std::string> names;
  for (const trace::Event& e : trace::snapshot()) names.push_back(e.name);
  for (const char* want :
       {"lex", "parse", "sema", "elab", "graph-build", "levelize",
        "simulate"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << "missing span '" << want << "'";
  }
}

TEST(MetricsCounter, SumsAcrossThreads) {
  static metrics::Counter counter("test-counter");
  uint64_t before = counter.value();
  counter.add(2);
  std::thread other([] { counter.add(40); });
  other.join();
  EXPECT_EQ(counter.value(), before + 42);
  std::vector<std::pair<std::string, uint64_t>> all =
      metrics::Counter::allValues();
  bool found = false;
  for (const auto& [name, value] : all) {
    if (name == "test-counter") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(MetricsSim, CountersAndActivityFromARealRun) {
  // a toggles every cycle through the register; q = NOT r.out toggles too.
  Built b = buildOk(
      "TYPE t = COMPONENT (IN a: boolean; OUT q: boolean) IS\n"
      "  SIGNAL r: REG;\n"
      "BEGIN r.in := a; q := NOT r.out END;\nSIGNAL top: t;\n",
      "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation::Options opts;
  opts.evaluator = EvaluatorKind::Levelized;
  opts.profileActivity = true;
  Simulation sim(g, opts);
  for (int i = 0; i < 8; ++i) {
    sim.setInput("a", logicFromBool(i % 2));
    sim.step();
  }

  metrics::SimCounters c = sim.metricsCounters();
  EXPECT_TRUE(c.ran);
  EXPECT_EQ(c.evaluator, "levelized");
  EXPECT_EQ(c.cycles, 8u);
  EXPECT_EQ(c.lanes, 1u);
  EXPECT_EQ(c.laneCycles, 8u);
  EXPECT_GT(c.nodeFirings, 0u);
  EXPECT_GT(c.netResolutions, 0u);
  EXPECT_EQ(c.epochResets, 8u);
  EXPECT_EQ(c.watchdogMarginMin, -1);  // levelized has no watchdog
  EXPECT_EQ(c.faults, 0u);

  metrics::ActivityReport a = sim.activityReport();
  EXPECT_TRUE(a.ran);
  EXPECT_EQ(a.cycles, 8u);
  EXPECT_EQ(a.netsProfiled, g.denseCount);
  EXPECT_GT(a.totalToggles, 0u);
  ASSERT_FALSE(a.hottest.empty());
  // Hottest entries carry real toggle counts in descending order.
  for (size_t i = 1; i < a.hottest.size(); ++i) {
    EXPECT_GE(a.hottest[i - 1].toggles, a.hottest[i].toggles);
  }
  ASSERT_FALSE(a.deepest.empty());
  for (size_t i = 1; i < a.deepest.size(); ++i) {
    EXPECT_GE(a.deepest[i - 1].depth, a.deepest[i].depth);
  }
  // The input `a` toggled every profiled cycle boundary (7 boundaries).
  bool sawInput = false;
  for (const metrics::ActivityEntry& e : a.hottest) {
    if (e.toggles == 7) sawInput = true;
  }
  EXPECT_TRUE(sawInput) << "no net toggled on all 7 cycle boundaries";
}

TEST(MetricsSim, ProfilingOffMeansNoActivityReport) {
  Built b = buildOk(
      "TYPE t = COMPONENT (IN a: boolean; OUT q: boolean) IS\n"
      "BEGIN q := NOT a END;\nSIGNAL top: t;\n",
      "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g, EvaluatorKind::Firing);
  sim.step(4);
  metrics::ActivityReport a = sim.activityReport();
  EXPECT_FALSE(a.ran);
  EXPECT_TRUE(a.hottest.empty());
  // The firing evaluator's watchdog margin is tracked regardless.
  metrics::SimCounters c = sim.metricsCounters();
  EXPECT_GE(c.watchdogMarginMin, 0);
}

TEST(MetricsSim, FiringCountersCoverShortCircuitAndResolution) {
  // OR(a, b) with a = 1 lets the firing evaluator short-circuit b's
  // arrival; every net resolves exactly once per cycle.
  Built b = buildOk(
      "TYPE t = COMPONENT (IN a: boolean; IN bb: boolean; OUT q: boolean)\n"
      "IS BEGIN q := OR(a, bb) END;\nSIGNAL top: t;\n",
      "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g, EvaluatorKind::Firing);
  sim.setInput("a", Logic::One);
  sim.setInput("bb", Logic::One);
  sim.step(4);
  metrics::SimCounters c = sim.metricsCounters();
  EXPECT_EQ(c.netResolutions, 4 * g.denseCount);
  EXPECT_EQ(c.epochResets, 4u);
  EXPECT_GT(c.shortCircuitSkips, 0u);
}

TEST(MetricsRender, JsonCarriesEverySection) {
  metrics::MetricsReport r;
  r.design = "demo\"design";
  r.phases.push_back({"parse", "compile", 120, 1});
  r.sim.ran = true;
  r.sim.evaluator = "levelized";
  r.sim.cycles = 3;
  r.sim.nodeFirings = 9;
  r.activity.ran = true;
  r.activity.cycles = 3;
  r.activity.hottest.push_back({"top.q", 2, 1, 0, 4});
  std::string json = r.renderJson();
  EXPECT_NE(json.find("\"zeus-metrics\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"design\": \"demo\\\"design\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"compile\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"resources\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"node_firings\": 9"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hottest\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"top.q\""), std::string::npos) << json;
  // The shared sim renderer keeps the same keys as the report section.
  std::string simJson = metrics::simCountersJson(r.sim);
  EXPECT_NE(simJson.find("\"node_firings\": 9"), std::string::npos);
  EXPECT_NE(simJson.find("\"contention_checks\": 0"), std::string::npos);
}

TEST(MetricsRender, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(metrics::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(metrics::jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

}  // namespace
}  // namespace zeus::test

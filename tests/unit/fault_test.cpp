// Fault injection (src/sim/fault.h): every evaluator applies stuck-at /
// flip / contention overlays identically, the batch engine's golden-lane
// divergence probes see exactly the faulty lanes, and parallel fault
// campaigns classify, checkpoint and resume deterministically.
#include <gtest/gtest.h>

#include <algorithm>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

const char* kNotChain = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL m: boolean;
BEGIN
  m := NOT a;
  o := NOT m
END;
SIGNAL top: t;
)";

const char* kRegBuf = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL r: REG;
BEGIN
  r.in := a;
  o := r.out
END;
SIGNAL top: t;
)";

constexpr EvaluatorKind kAllKinds[] = {
    EvaluatorKind::Firing, EvaluatorKind::Naive, EvaluatorKind::Levelized};

TEST(Fault, MakeFaultResolvesNamesAndRejectsUnknown) {
  Built b = buildOk(kNotChain, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  auto f = makeFault(g, FaultKind::StuckAt1, "top.m");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->kind, FaultKind::StuckAt1);
  EXPECT_FALSE(makeFault(g, FaultKind::StuckAt1, "no.such.net").has_value());
}

TEST(Fault, StuckAtForcesValueOnEveryEvaluator) {
  Built b = buildOk(kNotChain, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  for (EvaluatorKind k : kAllKinds) {
    for (FaultKind fk : {FaultKind::StuckAt0, FaultKind::StuckAt1,
                         FaultKind::StuckUndef}) {
      Simulation sim(g, k);
      sim.injectFault(*makeFault(g, fk, "top.m"));
      sim.setInput("a", Logic::Zero);  // fault-free m would be 1, o = 0
      sim.step();
      Logic wantM = fk == FaultKind::StuckAt0   ? Logic::Zero
                    : fk == FaultKind::StuckAt1 ? Logic::One
                                                : Logic::Undef;
      Logic wantO = fk == FaultKind::StuckAt0   ? Logic::One
                    : fk == FaultKind::StuckAt1 ? Logic::Zero
                                                : Logic::Undef;
      EXPECT_EQ(sim.netValueByName("top.m"), wantM)
          << "evaluator " << static_cast<int>(k);
      // The faulty value propagates through downstream logic.
      EXPECT_EQ(sim.output("o"), wantO) << "evaluator " << static_cast<int>(k);
      EXPECT_TRUE(sim.errors().empty());
    }
  }
}

TEST(Fault, TransientFlipHonoursItsCycleWindow) {
  Built b = buildOk(kNotChain, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  for (EvaluatorKind k : kAllKinds) {
    Simulation sim(g, k);
    sim.injectFault(*makeFault(g, FaultKind::TransientFlip, "top.m",
                               /*fromCycle=*/1, /*toCycle=*/2));
    sim.setInput("a", Logic::Zero);
    sim.step();  // cycle 0: window not open yet
    EXPECT_EQ(sim.output("o"), Logic::Zero);
    sim.step();  // cycle 1: flipped
    EXPECT_EQ(sim.output("o"), Logic::One);
    sim.step();  // cycle 2: still flipped
    EXPECT_EQ(sim.output("o"), Logic::One);
    sim.step();  // cycle 3: window closed
    EXPECT_EQ(sim.output("o"), Logic::Zero);
  }
}

TEST(Fault, ForcedContentionRaisesSimContention) {
  Built b = buildOk(kNotChain, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  for (EvaluatorKind k : kAllKinds) {
    Simulation sim(g, k);
    sim.injectFault(*makeFault(g, FaultKind::ForcedContention, "top.m"));
    sim.setInput("a", Logic::Zero);
    sim.step();
    EXPECT_EQ(sim.netValueByName("top.m"), Logic::Undef);
    ASSERT_FALSE(sim.errors().empty()) << "evaluator " << static_cast<int>(k);
    EXPECT_EQ(sim.errors()[0].code, Diag::SimContention);
  }
}

TEST(Fault, ClearFaultsRestoresGoldenBehaviour) {
  // Golden with a = 0: m = NOT a = 1, o = NOT m = 0.  m stuck-at-0 flips
  // the output to 1.
  Built b = buildOk(kNotChain, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.injectFault(*makeFault(g, FaultKind::StuckAt0, "top.m"));
  sim.setInput("a", Logic::Zero);
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::One);
  // Faults survive reset() by contract...
  sim.reset();
  sim.setInput("a", Logic::Zero);
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::One);
  // ...and only clearFaults() removes them.
  sim.clearFaults();
  sim.reset();
  sim.setInput("a", Logic::Zero);
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::Zero);
}

TEST(Fault, FaultyRegisterStateLatches) {
  // A stuck-at on a register's input net corrupts the latched state, not
  // just the combinational cone.
  Built b = buildOk(kRegBuf, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  for (EvaluatorKind k : kAllKinds) {
    Simulation sim(g, k);
    sim.injectFault(
        *makeFault(g, FaultKind::StuckAt0, "top.r.in", 0, 0));
    sim.setInput("a", Logic::One);
    sim.step();  // faulted cycle: r latches 0 instead of 1
    sim.step();  // fault window over; r re-latches the true input
    std::vector<Logic> regs = sim.saveRegisters();
    ASSERT_EQ(regs.size(), 1u);
    EXPECT_EQ(regs[0], Logic::One);
    // After reset() the window [0,0] re-opens: cycle 0 latches the faulty
    // 0, which r.out exposes during cycle 1.
    sim.reset();
    sim.setInput("a", Logic::One);
    sim.step(2);
    EXPECT_EQ(sim.output("o"), Logic::Zero)
        << "evaluator " << static_cast<int>(k);
  }
}

TEST(Fault, BatchLaneMatchesScalarFaultySimulation) {
  // Lane 1 carries the fault; lane 0 stays golden.  Both must equal the
  // corresponding scalar runs net-for-net on every cycle.
  Built b = buildOk(kNotChain, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  for (FaultKind fk :
       {FaultKind::StuckAt0, FaultKind::StuckAt1, FaultKind::StuckUndef,
        FaultKind::TransientFlip, FaultKind::ForcedContention}) {
    FaultSpec spec = *makeFault(g, fk, "top.m", 1, 2);
    BatchSimulation batch(g, 4);
    batch.injectFault(1, spec);
    Simulation golden(g, EvaluatorKind::Levelized);
    Simulation faulty(g, EvaluatorKind::Levelized);
    faulty.injectFault(spec);
    const Netlist& nl = b.design->netlist;
    for (int cyc = 0; cyc < 4; ++cyc) {
      Logic a = cyc % 2 ? Logic::One : Logic::Zero;
      batch.setInputAll("a", a);
      golden.setInput("a", a);
      faulty.setInput("a", a);
      batch.step();
      golden.step();
      faulty.step();
      for (NetId n = 0; n < nl.netCount(); ++n) {
        ASSERT_EQ(batch.netValue(0, n), golden.netValue(n))
            << nl.net(n).name << " cycle " << cyc;
        ASSERT_EQ(batch.netValue(1, n), faulty.netValue(n))
            << nl.net(n).name << " kind " << faultKindName(fk) << " cycle "
            << cyc;
      }
    }
    // Contention surfaces per lane with the right lane tag.
    if (fk == FaultKind::ForcedContention) {
      ASSERT_FALSE(batch.errors().empty());
      for (const SimError& e : batch.errors()) {
        EXPECT_EQ(e.lane, 1);
        EXPECT_EQ(e.code, Diag::SimContention);
      }
    }
  }
}

TEST(Fault, DivergenceProbesSeeExactlyTheFaultyLanes) {
  Built b = buildOk(kNotChain, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  BatchSimulation batch(g, 8);
  batch.injectFault(3, *makeFault(g, FaultKind::StuckAt1, "top.m"));
  batch.injectFault(5, *makeFault(g, FaultKind::StuckAt0, "top.o"));
  // With a = 0 the golden circuit already has m = 1 and o = 0, so both
  // stuck-ats coincide with the fault-free values: nothing diverges.
  batch.setInputAll("a", Logic::Zero);
  batch.step();
  EXPECT_EQ(batch.divergedLanes(), 0u);
  batch.setInputAll("a", Logic::One);  // golden: m = 0, o = 1
  batch.step();
  uint64_t diverged = batch.divergedLanes();
  EXPECT_TRUE(diverged & (uint64_t{1} << 3));
  EXPECT_TRUE(diverged & (uint64_t{1} << 5));
  EXPECT_FALSE(diverged & (uint64_t{1} << 1));
  // laneDiffMask pinpoints the net.
  std::optional<FaultSpec> fo = makeFault(g, FaultKind::StuckAt1, "top.m");
  ASSERT_TRUE(fo.has_value());
  EXPECT_TRUE(batch.laneDiffMask(g.rootOf[fo->denseNet]) &
              (uint64_t{1} << 3));
}

TEST(Fault, DefaultUniverseCoversEveryDenseNetTwice) {
  Built b = buildOk(kNotChain, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  std::vector<FaultSpec> u = defaultFaultUniverse(g);
  EXPECT_EQ(u.size(), 2 * g.denseCount);
  for (size_t i = 0; i + 1 < u.size(); i += 2) {
    EXPECT_EQ(u[i].kind, FaultKind::StuckAt0);
    EXPECT_EQ(u[i + 1].kind, FaultKind::StuckAt1);
    EXPECT_EQ(u[i].denseNet, u[i + 1].denseNet);
  }
}

TEST(Fault, CampaignOnAddersDetectsAndClassifies) {
  Built b = buildOk(std::string(kAdders) + "SIGNAL adder: rippleCarry(8);\n",
                    "adder");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  FaultCampaignOptions opts;
  opts.cycles = 8;
  FaultCampaignReport r = runFaultCampaign(g, opts);
  EXPECT_EQ(r.faults.size(), 2 * g.denseCount);
  EXPECT_FALSE(r.interrupted);
  uint64_t det = r.countOf(FaultOutcome::Status::Detected);
  uint64_t mask = r.countOf(FaultOutcome::Status::Masked);
  uint64_t undet = r.countOf(FaultOutcome::Status::Undetected);
  EXPECT_EQ(det + mask + undet, r.faults.size());
  // The acceptance bar: at least one detected and one undetected stuck-at
  // (CLK stuck-at-1 can never diverge from the golden always-1 clock).
  EXPECT_GE(det, 1u);
  EXPECT_GE(undet, 1u);
  EXPECT_GT(r.coverage(), 0.0);
  EXPECT_LE(r.coverage(), 1.0);
  for (const FaultOutcome& f : r.faults) {
    if (f.status == FaultOutcome::Status::Detected) {
      EXPECT_FALSE(f.detector.empty()) << f.net;
      EXPECT_LT(f.firstDetectCycle, opts.cycles) << f.net;
    } else {
      EXPECT_TRUE(f.detector.empty()) << f.net;
    }
  }
  std::string json = r.renderJson();
  EXPECT_NE(json.find("\"zeus-faults\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"detectors\""), std::string::npos);
}

TEST(Fault, CampaignIsDeterministicAndResumable) {
  Built b = buildOk(std::string(kAdders) + "SIGNAL adder: rippleCarry(8);\n",
                    "adder");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  FaultCampaignOptions opts;
  opts.cycles = 6;
  opts.lanes = 16;  // many batches, so the checkpoint lands mid-sweep
  opts.checkpointEveryBatches = 1;
  CampaignProgress atBatch2;
  opts.onCheckpoint = [&](const CampaignProgress& p) {
    if (p.nextFault <= 2 * (opts.lanes - 1)) atBatch2 = p;
  };
  FaultCampaignReport straight = runFaultCampaign(g, opts);
  ASSERT_GT(atBatch2.totalFaults, 0u);
  ASSERT_LT(atBatch2.nextFault, atBatch2.totalFaults);

  FaultCampaignOptions resumeOpts;
  resumeOpts.cycles = opts.cycles;
  resumeOpts.lanes = opts.lanes;
  FaultCampaignReport resumed = runFaultCampaign(g, resumeOpts, &atBatch2);
  EXPECT_EQ(straight.renderJson(), resumed.renderJson());

  // Mismatched parameters must be rejected, not silently mis-resumed.
  resumeOpts.cycles = opts.cycles + 1;
  EXPECT_THROW((void)runFaultCampaign(g, resumeOpts, &atBatch2),
               std::invalid_argument);
}

TEST(Fault, CampaignWallClockBudgetInterruptsAtBatchBoundary) {
  Built b = buildOk(std::string(kAdders) + "SIGNAL adder: rippleCarry(8);\n",
                    "adder");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  FaultCampaignOptions opts;
  opts.cycles = 6;
  opts.lanes = 4;
  opts.maxMillis = 1;  // trips almost immediately
  bool checkpointed = false;
  CampaignProgress last;
  opts.onCheckpoint = [&](const CampaignProgress& p) {
    checkpointed = true;
    last = p;
  };
  FaultCampaignReport r = runFaultCampaign(g, opts);
  if (r.interrupted) {
    // The checkpoint hook fired before the early return, and resuming
    // from it completes the sweep with the straight-run classifications.
    EXPECT_TRUE(checkpointed);
    FaultCampaignOptions rest;
    rest.cycles = opts.cycles;
    rest.lanes = opts.lanes;
    FaultCampaignReport full = runFaultCampaign(g, rest, &last);
    FaultCampaignOptions straightOpts;
    straightOpts.cycles = opts.cycles;
    straightOpts.lanes = opts.lanes;
    FaultCampaignReport straight = runFaultCampaign(g, straightOpts);
    EXPECT_EQ(full.renderJson(), straight.renderJson());
  } else {
    // Machine fast enough to finish inside 1ms: nothing to assert beyond
    // a complete classification.
    EXPECT_EQ(r.faults.size(), 2 * g.denseCount);
  }
}

}  // namespace
}  // namespace zeus::test

// Diagnostic-path tests for the resource-guard subsystem (zeus::Limits).
//
// Every limit breach must surface as a *specific* Diag code — these tests
// pin the code per stage so a refactor cannot silently downgrade a guard
// into a crash, a hang or a generic error.
#include <gtest/gtest.h>

#include <string>

#include "src/core/zeus.h"
#include "src/sim/graph.h"
#include "tests/support/test_util.h"

namespace zeus {
namespace {

std::unique_ptr<Compilation> compileWith(const std::string& src,
                                         Limits limits) {
  return Compilation::fromSource("limits.zeus", src, limits);
}

// ---------------------------------------------------------------------------
// Lexer limits
// ---------------------------------------------------------------------------

TEST(Limits, SourceTooLarge) {
  Limits lim;
  lim.maxSourceBytes = 16;
  auto comp = compileWith("CONST x = 1; SIGNAL s: boolean;", lim);
  EXPECT_TRUE(comp->diags().has(Diag::SourceTooLarge));
}

TEST(Limits, TooManyTokens) {
  Limits lim;
  lim.maxTokens = 8;
  auto comp = compileWith("CONST a = 1; CONST b = 2; CONST c = 3;", lim);
  EXPECT_TRUE(comp->diags().has(Diag::TooManyTokens));
}

// ---------------------------------------------------------------------------
// Parser limits
// ---------------------------------------------------------------------------

TEST(Limits, DeeplyNestedParensDiagnosedNotCrashed) {
  // ~10k nested parens used to overflow the recursive-descent stack; the
  // depth guard must turn this into one structured diagnostic.
  std::string src = "CONST x = " + std::string(10000, '(') + "1" +
                    std::string(10000, ')') + ";";
  auto comp = Compilation::fromSource("deep.zeus", src);
  EXPECT_FALSE(comp->ok());
  EXPECT_TRUE(comp->diags().has(Diag::NestingTooDeep));
}

TEST(Limits, DeeplyNestedTypeDiagnosed) {
  std::string src = "TYPE t = ";
  for (int i = 0; i < 10000; ++i) src += "ARRAY[1..2] OF ";
  src += "boolean;";
  auto comp = Compilation::fromSource("deeptype.zeus", src);
  EXPECT_FALSE(comp->ok());
  EXPECT_TRUE(comp->diags().has(Diag::NestingTooDeep));
}

TEST(Limits, DeeplyNestedStatementDiagnosed) {
  std::string src =
      "TYPE c = COMPONENT (IN a: boolean; OUT z: boolean) IS\nBEGIN\n";
  for (int i = 0; i < 5000; ++i) src += "IF 1 = 1 THEN ";
  src += "z := a";
  for (int i = 0; i < 5000; ++i) src += " END";
  src += "\nEND;\nSIGNAL s: c;";
  auto comp = Compilation::fromSource("deepif.zeus", src);
  EXPECT_FALSE(comp->ok());
  EXPECT_TRUE(comp->diags().has(Diag::NestingTooDeep));
}

TEST(Limits, TooManyErrorsGivesUp) {
  Limits lim;
  lim.maxParseErrors = 5;
  std::string src;
  for (int i = 0; i < 50; ++i) {
    src += "CONST c" + std::to_string(i) + " = ;\n";
  }
  auto comp = compileWith(src, lim);
  EXPECT_FALSE(comp->ok());
  EXPECT_TRUE(comp->diags().has(Diag::TooManyErrors));
  // The cap bounds the flood: 5 real errors + 1 TooManyErrors.
  EXPECT_LE(comp->diags().errorCount(), 7u);
}

TEST(Limits, RecoveryReportsIndependentErrors) {
  // Panic-mode recovery must resynchronise after a bad declaration so
  // later independent errors in the same buffer are still reported.
  std::string src =
      "CONST bad1 = ;\n"
      "CONST ok = 4;\n"
      "TYPE bad2 = OF boolean;\n"
      "SIGNAL s: boolean;\n";
  auto comp = Compilation::fromSource("multi.zeus", src);
  EXPECT_FALSE(comp->ok());
  EXPECT_GE(comp->diags().errorCount(), 2u)
      << comp->diagnosticsText();
  // Declarations after the bad ones survived recovery.
  bool sawOk = false, sawSignal = false;
  for (const auto& d : comp->program().decls) {
    if (d->kind == ast::DeclKind::Const && d->name == "ok") sawOk = true;
    if (d->kind == ast::DeclKind::Signal) sawSignal = true;
  }
  EXPECT_TRUE(sawOk);
  EXPECT_TRUE(sawSignal);
}

// ---------------------------------------------------------------------------
// Sema / type-instantiation limits
// ---------------------------------------------------------------------------

TEST(Limits, RunawayTypeRecursionDiagnosed) {
  // Types are lazy (§4.2): the runaway expansion only happens when the
  // top signal's type is demanded, i.e. at elaboration.
  auto comp = Compilation::fromSource(
      "runaway.zeus",
      "TYPE t(n) = ARRAY[1..2] OF t(n+1);\nSIGNAL s: t(1);");
  auto design = comp->ok() ? comp->elaborate("s") : nullptr;
  EXPECT_EQ(design, nullptr);
  EXPECT_TRUE(comp->diags().has(Diag::RecursionTooDeep) ||
              comp->diags().has(Diag::TypeBudgetExceeded))
      << comp->diagnosticsText();
}

// ---------------------------------------------------------------------------
// Elaboration limits
// ---------------------------------------------------------------------------

TEST(Limits, NetBudgetExceeded) {
  Limits lim;
  lim.maxNets = 64;
  auto comp = compileWith(
      "TYPE wide = COMPONENT (IN a: boolean; OUT z: boolean) IS\n"
      "  SIGNAL big: ARRAY[1..1000] OF boolean;\n"
      "BEGIN\n"
      "  big[1] := a;\n"
      "  z := big[1]\n"
      "END;\n"
      "SIGNAL s: wide;",
      lim);
  ASSERT_TRUE(comp->ok()) << comp->diagnosticsText();
  auto design = comp->elaborate("s");
  EXPECT_EQ(design, nullptr);
  EXPECT_TRUE(comp->diags().has(Diag::NetBudgetExceeded))
      << comp->diagnosticsText();
}

TEST(Limits, InstanceBudgetExceeded) {
  Limits lim;
  lim.maxInstances = 8;
  std::string src =
      "TYPE leaf = COMPONENT (IN a: boolean; OUT z: boolean) IS\n"
      "BEGIN z := a END;\n"
      "mid = COMPONENT (IN a: boolean; OUT z: boolean) IS\n"
      "  SIGNAL u: ARRAY[1..4] OF leaf;\n"
      "BEGIN\n"
      "  FOR i := 1 TO 4 DO u[i](a, *) END;\n"
      "  z := u[4].z\n"
      "END;\n"
      "top = COMPONENT (IN a: boolean; OUT z: boolean) IS\n"
      "  SIGNAL m: ARRAY[1..4] OF mid;\n"
      "BEGIN\n"
      "  FOR i := 1 TO 4 DO m[i](a, *) END;\n"
      "  z := m[4].z\n"
      "END;\n"
      "SIGNAL s: top;";
  auto comp = compileWith(src, lim);
  ASSERT_TRUE(comp->ok()) << comp->diagnosticsText();
  auto design = comp->elaborate("s");
  EXPECT_EQ(design, nullptr);
  EXPECT_TRUE(comp->diags().has(Diag::InstanceBudgetExceeded))
      << comp->diagnosticsText();
}

TEST(Limits, ElabStepBudgetExceeded) {
  Limits lim;
  lim.maxElabSteps = 1000;
  std::string src =
      "TYPE c = COMPONENT (IN a: boolean; OUT z: boolean) IS\n"
      "BEGIN\n"
      "  FOR i := 1 TO 2000000000 DO z := a END\n"
      "END;\n"
      "SIGNAL s: c;";
  auto comp = compileWith(src, lim);
  ASSERT_TRUE(comp->ok()) << comp->diagnosticsText();
  auto design = comp->elaborate("s");
  EXPECT_EQ(design, nullptr);
  EXPECT_TRUE(comp->diags().has(Diag::ElabBudgetExceeded))
      << comp->diagnosticsText();
}

TEST(Limits, InstanceRecursionDepthDiagnosed) {
  // A component containing itself recurses without bound; the instance
  // depth guard must cut it off with a structured diagnostic.
  Limits lim;
  lim.maxInstanceDepth = 16;
  std::string src =
      "TYPE ouro = COMPONENT (IN a: boolean; OUT z: boolean) IS\n"
      "  SIGNAL inner: ouro;\n"
      "BEGIN\n"
      "  inner(a, z)\n"
      "END;\n"
      "SIGNAL s: ouro;";
  auto comp = compileWith(src, lim);
  if (comp->ok()) {
    auto design = comp->elaborate("s");
    EXPECT_EQ(design, nullptr);
  }
  EXPECT_TRUE(comp->diags().hasErrors()) << comp->diagnosticsText();
}

// ---------------------------------------------------------------------------
// Simulation limits (runtime faults as structured SimError records)
// ---------------------------------------------------------------------------

const char* kCounterSrc =
    "TYPE toggler = COMPONENT (OUT q: boolean) IS\n"
    "  SIGNAL r: REG;\n"
    "BEGIN\n"
    "  IF RSET THEN r.in := 0\n"
    "  ELSE r.in := NOT(r.out)\n"
    "  END;\n"
    "  q := r.out\n"
    "END;\n"
    "SIGNAL s: toggler;";

TEST(Limits, SimWatchdogFaultRecorded) {
  auto comp = Compilation::fromSource("wd.zeus", kCounterSrc);
  ASSERT_TRUE(comp->ok()) << comp->diagnosticsText();
  auto design = comp->elaborate("s");
  ASSERT_NE(design, nullptr) << comp->diagnosticsText();
  SimGraph graph = buildSimGraph(*design, comp->diags());
  ASSERT_FALSE(graph.hasCycle);

  Simulation::Options opts;
  opts.maxEventsPerCycle = 1;  // absurdly small: must trip, not hang
  Simulation sim(graph, opts);
  sim.step(3);
  bool sawWatchdog = false;
  for (const SimError& e : sim.errors()) {
    if (e.code == Diag::SimWatchdog) sawWatchdog = true;
  }
  EXPECT_TRUE(sawWatchdog);
}

TEST(Limits, SimWallClockStopsLongRuns) {
  auto comp = Compilation::fromSource("wall.zeus", kCounterSrc);
  ASSERT_TRUE(comp->ok()) << comp->diagnosticsText();
  auto design = comp->elaborate("s");
  ASSERT_NE(design, nullptr) << comp->diagnosticsText();
  SimGraph graph = buildSimGraph(*design, comp->diags());

  Simulation::Options opts;
  opts.maxSimMillis = 1;  // ~zero budget: a huge run must stop early
  Simulation sim(graph, opts);
  sim.step(2000000000ull);
  EXPECT_LT(sim.cycle(), 2000000000ull);
  bool sawWallClock = false;
  for (const SimError& e : sim.errors()) {
    if (e.code == Diag::SimWallClock) sawWallClock = true;
  }
  EXPECT_TRUE(sawWallClock);
}

TEST(Limits, ContentionFaultCarriesCode) {
  // Two unconditional drivers on one net pass the *static* rules only when
  // routed through conditionals, so force it dynamically: both branches
  // active in the same cycle.
  const char* src =
      "TYPE clash = COMPONENT (IN a,b: boolean; OUT z: boolean) IS\n"
      "BEGIN\n"
      "  IF a THEN z := 1 END;\n"
      "  IF b THEN z := 0 END\n"
      "END;\n"
      "SIGNAL s: clash;";
  auto comp = Compilation::fromSource("clash.zeus", src);
  ASSERT_TRUE(comp->ok()) << comp->diagnosticsText();
  auto design = comp->elaborate("s");
  ASSERT_NE(design, nullptr) << comp->diagnosticsText();
  SimGraph graph = buildSimGraph(*design, comp->diags());
  ASSERT_FALSE(graph.hasCycle);
  Simulation sim(graph);
  sim.setInput("a", Logic::One);
  sim.setInput("b", Logic::One);
  sim.step();
  bool sawContention = false;
  for (const SimError& e : sim.errors()) {
    if (e.code == Diag::SimContention) sawContention = true;
  }
  EXPECT_TRUE(sawContention) << "errors: " << sim.errors().size();
}

// ---------------------------------------------------------------------------
// ResourceReport end-to-end
// ---------------------------------------------------------------------------

TEST(Limits, ResourceReportPopulatedOnSuccess) {
  auto comp = Compilation::fromSource("ok.zeus", kCounterSrc);
  ASSERT_TRUE(comp->ok()) << comp->diagnosticsText();
  auto design = comp->elaborate("s");
  ASSERT_NE(design, nullptr) << comp->diagnosticsText();
  SimGraph graph = buildSimGraph(*design, comp->diags());
  ASSERT_FALSE(graph.hasCycle);
  Simulation sim(graph);
  sim.setRset(true);
  sim.step();
  sim.setRset(false);
  sim.step(3);
  comp->recordSimulation(sim);

  ResourceReport rep = comp->resourceReport();
  EXPECT_GT(rep.usage.sourceBytes, 0u);
  EXPECT_GT(rep.usage.tokens, 0u);
  EXPECT_GT(rep.usage.parseDepthPeak, 0);
  EXPECT_GT(rep.usage.typesInstantiated, 0u);
  EXPECT_GT(rep.usage.instances, 0u);
  EXPECT_GT(rep.usage.nets, 0u);
  EXPECT_EQ(rep.usage.simCycles, 4u);
  EXPECT_GT(rep.usage.simEvents, 0u);
  EXPECT_EQ(rep.usage.parseErrors, 0u);

  std::string text = rep.render();
  EXPECT_NE(text.find("tokens"), std::string::npos);
  EXPECT_NE(text.find("nets"), std::string::npos);
}

}  // namespace
}  // namespace zeus

// Threaded stress tests for the trace and metrics layers — the data
// races the simulation farm exposed.  Under the ZEUS_SANITIZE=thread
// preset these run with TSan as the referee; in a plain build they still
// verify the epoch semantics (a span straddling clear()/setEnabled(false)
// records nothing) and counter exactness.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/support/metrics.h"
#include "src/support/trace.h"

// TSan serializes every instrumented access; unbounded writer loops on a
// small host would grow the span buffers to millions of events between
// clears and turn each snapshot/render into minutes of work.  Scale the
// stress budget down under TSan — the interleavings it checks show up in
// the first few thousand spans, not the millionth.
#if defined(__SANITIZE_THREAD__)
#define ZEUS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ZEUS_TSAN 1
#endif
#endif
#ifndef ZEUS_TSAN
#define ZEUS_TSAN 0
#endif

namespace zeus::test {
namespace {

constexpr int kObserverIters = ZEUS_TSAN ? 40 : 200;
constexpr uint64_t kMaxSpansPerWriter = ZEUS_TSAN ? 20000 : 2000000;

/// Restores the process-wide trace state so the stress tests cannot leak
/// events into the metrics/phase-timing tests that share this binary.
struct TraceGuard {
  TraceGuard() {
    trace::setEnabled(false);
    trace::clear();
  }
  ~TraceGuard() {
    trace::setEnabled(false);
    trace::clear();
  }
};

TEST(TraceStress, ConcurrentSpansVsSnapshotAndClear) {
  TraceGuard guard;
  trace::setEnabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  // Writers hammer the per-thread buffers with short spans...
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop] {
      for (uint64_t n = 0; n < kMaxSpansPerWriter &&
                           !stop.load(std::memory_order_relaxed);
           ++n) {
        ZEUS_TRACE_SPAN("stress-span", "test");
      }
    });
  }
  // ...while this thread concurrently snapshots, renders and clears the
  // same buffers.  Before the per-buffer mutex, Span::~Span's push_back
  // raced the registry-only iteration here; TSan flags any regression.
  for (int i = 0; i < kObserverIters; ++i) {
    (void)trace::eventCount();
    std::vector<trace::Event> events = trace::snapshot();
    for (const trace::Event& e : events) {
      ASSERT_STREQ(e.name, "stress-span");
    }
    (void)trace::renderChromeJson();
    (void)metrics::phaseTimings();
    if (i % 10 == 0) trace::clear();
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  trace::clear();
  EXPECT_EQ(trace::eventCount(), 0u);
}

TEST(TraceStress, SpanStraddlingClearRecordsNothing) {
  TraceGuard guard;
  trace::setEnabled(true);
  {
    ZEUS_TRACE_SPAN("before-clear", "test");
    (void)0;
  }
  ASSERT_EQ(trace::eventCount(), 1u);

  auto open = std::make_unique<trace::Span>("straddler", "test");
  trace::clear();
  open.reset();  // closes after the clear: must not resurrect
  EXPECT_EQ(trace::eventCount(), 0u);
  EXPECT_TRUE(trace::snapshot().empty());
}

TEST(TraceStress, SpanStraddlingDisableRecordsNothing) {
  TraceGuard guard;
  trace::setEnabled(true);
  auto open = std::make_unique<trace::Span>("straddler", "test");
  trace::setEnabled(false);
  trace::setEnabled(true);  // re-enabling does not revive the span
  open.reset();
  EXPECT_EQ(trace::eventCount(), 0u);

  // A span opened after the re-enable records normally.
  {
    ZEUS_TRACE_SPAN("after-reenable", "test");
    (void)0;
  }
  EXPECT_EQ(trace::eventCount(), 1u);
}

TEST(TraceStress, ConcurrentEnableDisableClear) {
  TraceGuard guard;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&stop] {
      for (uint64_t n = 0; n < kMaxSpansPerWriter &&
                           !stop.load(std::memory_order_relaxed);
           ++n) {
        ZEUS_TRACE_SPAN("toggle-span", "test");
      }
    });
  }
  for (int i = 0; i < kObserverIters; ++i) {
    trace::setEnabled(i % 2 == 0);
    if (i % 7 == 0) trace::clear();
    (void)trace::eventCount();
  }
  trace::setEnabled(false);
  stop.store(true);
  for (std::thread& w : writers) w.join();
}

TEST(TraceStress, PhaseTimingsVsConcurrentClear) {
  // phaseTimings() aggregates a snapshot of the trace buffers; here it
  // races writers AND a dedicated clear() thread.  The aggregation must
  // never see torn events (name/category stay intact) and must not
  // deadlock against clear's registry+buffer lock order.
  TraceGuard guard;
  trace::setEnabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&stop] {
      for (uint64_t n = 0; n < kMaxSpansPerWriter &&
                           !stop.load(std::memory_order_relaxed);
           ++n) {
        ZEUS_TRACE_SPAN("phase-span", "stress");
      }
    });
  }
  std::thread clearer([&stop] {
    while (!stop.load(std::memory_order_relaxed)) trace::clear();
  });
  for (int i = 0; i < kObserverIters; ++i) {
    for (const metrics::PhaseTiming& p : metrics::phaseTimings()) {
      ASSERT_EQ(p.name, "phase-span");
      ASSERT_EQ(p.category, "stress");
      ASSERT_GE(p.count, 1u);
    }
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  clearer.join();
}

TEST(MetricsStress, CounterIsExactAcrossThreads) {
  static metrics::Counter counter("stress-counter");
  const uint64_t before = counter.value();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  // Concurrent readers must see monotonically growing, torn-free sums.
  uint64_t last = before;
  for (int i = 0; i < 100; ++i) {
    uint64_t v = counter.value();
    EXPECT_GE(v, last);
    last = v;
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(counter.value(), before + kThreads * kPerThread);

  bool listed = false;
  for (const auto& [name, value] : metrics::Counter::allValues()) {
    if (name == "stress-counter") {
      listed = true;
      EXPECT_EQ(value, before + kThreads * kPerThread);
    }
  }
  EXPECT_TRUE(listed);
}

}  // namespace
}  // namespace zeus::test

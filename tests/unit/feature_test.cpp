// Feature edge cases: the language corners that the big examples do not
// exercise directly — star widths, octal literals, WITH scoping, nested
// function components, OUT parameters in calls, signal slices, n-ary
// gates, records as parameters, PARALLEL, and NUM corner cases.
#include <gtest/gtest.h>

#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

Simulation makeSim(Built& b) {
  static std::vector<std::unique_ptr<SimGraph>> keepAlive;
  keepAlive.push_back(
      std::make_unique<SimGraph>(buildSimGraph(*b.design, b.comp->diags())));
  return Simulation(*keepAlive.back());
}

TEST(Features, OctalLiteralsInPrograms) {
  const char* src = R"(
CONST width = 10B;  <* octal 10 = 8 *>
TYPE t = COMPONENT (IN a: ARRAY[1..width] OF boolean;
                    OUT o: boolean) IS
BEGIN
  o := a[7B]  <* octal 7 *>
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  ASSERT_NE(b.design, nullptr);
  ASSERT_EQ(b.design->findPort("a")->nets.size(), 8u);
  auto sim = makeSim(b);
  sim.setInputUint("a", 1u << 6);  // bit index 7 (1-based LSB-first)
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::One);
}

TEST(Features, StarWithExplicitWidth) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: ARRAY[1..4] OF boolean) IS
BEGIN
  o := (a, *:2, a)   <* middle two bits left unassigned *>
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInput("a", Logic::One);
  sim.step();
  std::vector<Logic> o = sim.outputBits("o");
  EXPECT_EQ(o[0], Logic::One);
  EXPECT_EQ(o[1], Logic::Undef);
  EXPECT_EQ(o[2], Logic::Undef);
  EXPECT_EQ(o[3], Logic::One);
}

TEST(Features, SignalSlices) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: ARRAY[1..8] OF boolean;
                    OUT lo, hi: ARRAY[1..4] OF boolean) IS
BEGIN
  lo := a[1..4];
  hi := a[5..8]
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInputUint("a", 0xA5);  // 1010 0101
  sim.step();
  EXPECT_EQ(sim.outputUint("lo"), 0x5u);
  EXPECT_EQ(sim.outputUint("hi"), 0xAu);
}

TEST(Features, SliceAssignmentTarget) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: ARRAY[1..2] OF boolean;
                    OUT o: ARRAY[1..4] OF boolean) IS
BEGIN
  o[1..2] := a;
  o[3..4] := (1, 0)
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInputUint("a", 0b10);
  sim.step();
  EXPECT_EQ(sim.outputUint("o"), 0b0110u);
}

TEST(Features, NaryGates) {
  const char* src = R"(
TYPE t = COMPONENT (IN a, b, c, d: boolean; OUT o1, o2: boolean) IS
BEGIN
  o1 := AND(a, b, c, d);
  o2 := NOR(a, b, c, d)
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  for (int v = 0; v < 16; ++v) {
    sim.setInput("a", logicFromBool(v & 1));
    sim.setInput("b", logicFromBool(v & 2));
    sim.setInput("c", logicFromBool(v & 4));
    sim.setInput("d", logicFromBool(v & 8));
    sim.step();
    EXPECT_EQ(sim.output("o1"), logicFromBool(v == 15));
    EXPECT_EQ(sim.output("o2"), logicFromBool(v == 0));
  }
}

TEST(Features, BitwiseGatesOverArrays) {
  // "The operations are performed bit-wise" (§4.1).
  const char* src = R"(
TYPE nib = ARRAY[1..4] OF boolean;
t = COMPONENT (IN a, b: nib; OUT o: nib) IS
BEGIN
  o := AND(a, NOT b)
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInputUint("a", 0b1101);
  sim.setInputUint("b", 0b1010);
  sim.step();
  EXPECT_EQ(sim.outputUint("o"), 0b0101u);
}

TEST(Features, NestedWithStatements) {
  const char* src = R"(
TYPE inner = COMPONENT (IN x: boolean; OUT y: boolean) IS
BEGIN y := x END;
pair = COMPONENT (p, q: inner) IS
BEGIN
END;
t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL g: pair;
BEGIN
  WITH g DO
    WITH p DO x := a END;
    WITH q DO x := p.y; o := y END;
  END
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInput("a", Logic::One);
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::One);
}

TEST(Features, FunctionComponentWithOutParameter) {
  // Table (3) covers OUT parameters in calls: the actual receives the
  // formal's value as a side channel next to the RESULT.
  const char* src = R"(
TYPE addc = COMPONENT (IN a, b: boolean; OUT carry: boolean) : boolean IS
BEGIN
  carry := AND(a, b);
  RESULT XOR(a, b)
END;
t = COMPONENT (IN a, b: boolean; OUT s, c: boolean) IS
BEGIN
  s := addc(a, b, c)
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInput("a", Logic::One);
  sim.setInput("b", Logic::One);
  sim.step();
  EXPECT_EQ(sim.output("s"), Logic::Zero);
  EXPECT_EQ(sim.output("c"), Logic::One);
}

TEST(Features, FunctionCallInsideIfIsUnconditionalHardware) {
  // §3.2: only the use of the result is guarded; the call hardware exists
  // unconditionally.  The RESULT of f is unconditional, so h must be
  // multiplex-assigned only under the IF.
  const char* src = R"(
TYPE f = COMPONENT (IN a: boolean) : boolean IS
BEGIN
  RESULT NOT a
END;
t = COMPONENT (IN a, sel: boolean; OUT o: boolean) IS
  SIGNAL h: multiplex;
BEGIN
  IF sel THEN h := f(a) END;
  IF NOT sel THEN h := a END;
  o := h
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInput("a", Logic::One);
  sim.setInput("sel", Logic::One);
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::Zero);
  sim.setInput("sel", Logic::Zero);
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::One);
  EXPECT_TRUE(sim.errors().empty());
}

TEST(Features, ParameterizedFunctionComponent) {
  const char* src = R"(
TYPE firstof(n) = COMPONENT (IN v: ARRAY[1..n] OF boolean) : boolean IS
BEGIN
  RESULT v[1]
END;
t = COMPONENT (IN a: ARRAY[1..3] OF boolean; OUT o: boolean) IS
BEGIN
  o := firstof[3](a)
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInputUint("a", 0b001);
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::One);
}

TEST(Features, ParallelStatementIsTransparent) {
  const char* src = R"(
TYPE t = COMPONENT (IN a, b: boolean; OUT o1, o2: boolean) IS
BEGIN
  SEQUENTIAL
    PARALLEL o1 := AND(a, b); o2 := OR(a, b) END;
  END
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInput("a", Logic::One);
  sim.setInput("b", Logic::Zero);
  sim.step();
  EXPECT_EQ(sim.output("o1"), Logic::Zero);
  EXPECT_EQ(sim.output("o2"), Logic::One);
}

TEST(Features, ForDownto) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: ARRAY[1..4] OF boolean;
                    OUT o: ARRAY[1..4] OF boolean) IS
BEGIN
  FOR i := 4 DOWNTO 1 DO
    o[i] := a[5-i]
  END
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInputUint("a", 0b0001);
  sim.step();
  EXPECT_EQ(sim.outputUint("o"), 0b1000u);  // reversed
}

TEST(Features, NumIndexOnNarrowAddress) {
  // A 2-bit address over an 8-element array: only elements 0..3 are
  // reachable; the rest must still elaborate without error.
  const char* src = R"(
TYPE t = COMPONENT (IN sel: ARRAY[1..2] OF boolean;
                    IN v: ARRAY[0..7] OF boolean; OUT o: boolean) IS
BEGIN
  o := v[NUM(sel)]
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInputUint("v", 0b00001000);  // element 3 set
  sim.setInputUint("sel", 3);
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::One);
  sim.setInputUint("sel", 2);
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::Zero);
}

TEST(Features, NumIndexUndefinedAddressYieldsUndef) {
  const char* src = R"(
TYPE t = COMPONENT (IN sel: ARRAY[1..2] OF boolean;
                    IN v: ARRAY[0..3] OF boolean; OUT o: boolean) IS
BEGIN
  o := v[NUM(sel)]
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInputUint("v", 0b1111);
  sim.clearInput("sel");
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::Undef);
}

TEST(Features, RecordParameterPassing) {
  const char* src = R"(
TYPE pair = COMPONENT (x: multiplex; y: multiplex);
swap = COMPONENT (a: pair; b: pair) IS
BEGIN
  b.x == a.y;
  b.y == a.x
END;
t = COMPONENT (IN i1, i2: boolean; OUT o1, o2: boolean) IS
  SIGNAL s: swap;
BEGIN
  IF i1 THEN s.a.x := i2 END;
  IF NOT i1 THEN s.a.y := i2 END;
  o1 := s.b.x;
  o2 := s.b.y
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInput("i1", Logic::One);
  sim.setInput("i2", Logic::One);
  sim.step();
  EXPECT_EQ(sim.output("o2"), Logic::One);  // b.y == a.x
  EXPECT_EQ(sim.output("o1"), Logic::Undef);  // a.y undriven (NOINFL->UNDEF)
}

TEST(Features, WholeArrayConnectionDistributes) {
  // §4.3: x(s,t) over an array of components distributes bit groups.
  const char* src = R"(
TYPE inv = COMPONENT (IN a: boolean; OUT b: boolean) IS
BEGIN b := NOT a END;
t = COMPONENT (IN s: ARRAY[1..6] OF boolean;
               OUT r: ARRAY[1..6] OF boolean) IS
  SIGNAL x: ARRAY[1..6] OF inv;
BEGIN
  x(s, r)
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInputUint("s", 0b101010);
  sim.step();
  EXPECT_EQ(sim.outputUint("r"), 0b010101u);
}

TEST(Features, RangeConnectionTarget) {
  const char* src = R"(
TYPE inv = COMPONENT (IN a: boolean; OUT b: boolean) IS
BEGIN b := NOT a END;
t = COMPONENT (IN s: ARRAY[1..4] OF boolean;
               OUT r: ARRAY[1..4] OF boolean) IS
  SIGNAL x: ARRAY[1..8] OF inv;
BEGIN
  x[1..4](s, r);
  FOR i := 5 TO 8 DO
    x[i](0, *)
  END
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInputUint("s", 0b0011);
  sim.step();
  EXPECT_EQ(sim.outputUint("r"), 0b1100u);
}

TEST(Features, MixedStructureAssignmentByWidth) {
  // §4.1: only the number of basic substructures must agree.
  const char* src = R"(
TYPE rec = COMPONENT (p: ARRAY[1..2] OF multiplex; q: multiplex);
t = COMPONENT (IN a: ARRAY[1..3] OF boolean;
               OUT o: ARRAY[1..3] OF boolean) IS
  SIGNAL r: rec;
BEGIN
  r := a;
  o := r
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  auto sim = makeSim(b);
  sim.setInputUint("a", 0b110);
  sim.step();
  EXPECT_EQ(sim.outputUint("o"), 0b110u);
}

}  // namespace
}  // namespace zeus::test

// Latency-histogram unit tests.  The property the farm depends on is
// merge determinism: partitioning the same recordings across any number
// of per-thread histograms and merging in any order must produce
// bit-identical state, so the p50/p90/p99 in BENCH_sim.json and
// zeus-metrics-v1 do not depend on the farm thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/support/histogram.h"

namespace zeus::test {
namespace {

using histogram::bucketOf;
using histogram::bucketUpperBound;
using histogram::Histogram;
using histogram::Snapshot;

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(bucketOf(0), 0u);
  EXPECT_EQ(bucketOf(1), 1u);
  EXPECT_EQ(bucketOf(2), 2u);
  EXPECT_EQ(bucketOf(3), 2u);
  EXPECT_EQ(bucketOf(4), 3u);
  EXPECT_EQ(bucketOf(255), 8u);
  EXPECT_EQ(bucketOf(256), 9u);
  EXPECT_EQ(bucketOf(~uint64_t{0}), 64u);

  EXPECT_EQ(bucketUpperBound(0), 0u);
  EXPECT_EQ(bucketUpperBound(1), 1u);
  EXPECT_EQ(bucketUpperBound(8), 255u);
  EXPECT_EQ(bucketUpperBound(64), ~uint64_t{0});

  // Every bucket's upper bound maps back into that bucket.
  for (size_t b = 0; b < histogram::kBuckets; ++b) {
    EXPECT_EQ(bucketOf(bucketUpperBound(b)), b) << "bucket " << b;
  }
}

TEST(Histogram, RecordAndPercentiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);  // empty: 0, not UB

  // 100 values 1..100: p50 rank 50 -> value 50 lives in bucket 6
  // ([32, 64)), upper bound 63; p99 rank 99 -> bucket 7, bound 127
  // clamped to the recorded max 100.
  for (uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.percentile(50), 63u);
  EXPECT_EQ(h.percentile(99), 100u);
  EXPECT_EQ(h.percentile(100), 100u);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.record(777);
  EXPECT_EQ(h.percentile(50), 777u);  // clamped to max
  EXPECT_EQ(h.percentile(99), 777u);
  EXPECT_EQ(h.max(), 777u);
}

// The farm-determinism property: the same per-block wall times, split
// across 1, 2 and 4 "worker" histograms (the way different thread counts
// partition blocks) and merged, yield bit-identical histograms and
// snapshots — including across different merge orders.
TEST(Histogram, MergeIsThreadCountInvariant) {
  std::vector<uint64_t> samples;
  uint64_t x = 0x2545F4914F6CDD1Dull;
  for (int i = 0; i < 500; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    samples.push_back(x % 100000);  // plausible µs latencies
  }

  auto partitioned = [&](size_t workers) {
    std::vector<Histogram> per(workers);
    for (size_t i = 0; i < samples.size(); ++i) {
      per[i % workers].record(samples[i]);
    }
    Histogram merged;
    for (const Histogram& h : per) merged.merge(h);
    return merged;
  };

  const Histogram h1 = partitioned(1);
  const Histogram h2 = partitioned(2);
  const Histogram h4 = partitioned(4);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h4);

  // Reverse merge order: still identical (commutativity).
  {
    std::vector<Histogram> per(4);
    for (size_t i = 0; i < samples.size(); ++i) {
      per[i % 4].record(samples[i]);
    }
    Histogram rev;
    for (size_t i = per.size(); i-- > 0;) rev.merge(per[i]);
    EXPECT_EQ(rev, h1);
  }

  // Snapshots (what lands in the JSON) are bit-identical too.
  const Snapshot s1 = histogram::snapshot(h1, "t", "us");
  const Snapshot s4 = histogram::snapshot(h4, "t", "us");
  EXPECT_EQ(s1.count, s4.count);
  EXPECT_EQ(s1.sum, s4.sum);
  EXPECT_EQ(s1.max, s4.max);
  EXPECT_EQ(s1.p50, s4.p50);
  EXPECT_EQ(s1.p90, s4.p90);
  EXPECT_EQ(s1.p99, s4.p99);
  EXPECT_EQ(s1.buckets, s4.buckets);
  EXPECT_EQ(histogram::renderJson(s1), histogram::renderJson(s4));
}

TEST(Histogram, SnapshotListsOnlyOccupiedBuckets) {
  Histogram h;
  h.record(0);
  h.record(5);
  h.record(5);
  const Snapshot s = histogram::snapshot(h, "x", "us");
  ASSERT_EQ(s.buckets.size(), 2u);
  EXPECT_EQ(s.buckets[0], (std::pair<uint32_t, uint64_t>{0, 1}));
  EXPECT_EQ(s.buckets[1], (std::pair<uint32_t, uint64_t>{3, 2}));
}

TEST(Histogram, RenderLatencyBlock) {
  EXPECT_EQ(histogram::renderLatencyBlock({}, ""), "{}");
  Histogram h;
  h.record(10);
  const std::string block = histogram::renderLatencyBlock(
      {histogram::snapshot(h, "serve.request_us", "us")}, "");
  EXPECT_NE(block.find("\"serve.request_us\""), std::string::npos);
  EXPECT_NE(block.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(block.find("\"unit\": \"us\""), std::string::npos);
}

}  // namespace
}  // namespace zeus::test

// The optimization pipeline (src/transform/): const-fold / DCE / alias
// collapse against the lint oracle they share, the post-pass graph
// verifier, netlist node removal, and the simDropped/kNoDense contract
// for optimized-away alias classes.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/sim/fault.h"
#include "src/sim/snapshot.h"
#include "src/transform/fold_oracle.h"
#include "src/transform/verify.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

// A live AND plus a constant-foldable OR whose cone never reaches an
// output: fold must turn the OR into CONST 1, DCE must delete it, and
// alias collapse must drop the 'dead' class from the dense numbering.
const char* kDeadwood = R"(
TYPE t = COMPONENT (IN a, b: boolean; OUT y: boolean) IS
  SIGNAL dead: boolean;
BEGIN
  y := AND(a,b);
  dead := OR(a,1)
END;
SIGNAL top: t;
)";

// An IF branch whose condition is constantly 0 (lint: DeadBranch).
const char* kDeadBranch = R"(
TYPE t = COMPONENT (IN a: boolean; OUT y: boolean) IS
  SIGNAL m: multiplex;
BEGIN
  IF 0 THEN m := a END;
  y := OR(m, a)
END;
SIGNAL top: t;
)";

// Two RANDOM sources: sourceNodes ordering is observable (the shared RNG
// stream is drawn in NodeId order), so the verifier must reject swaps.
const char* kTwoRandoms = R"(
TYPE t = COMPONENT (IN a: boolean; OUT x, y: boolean) IS
BEGIN
  x := RANDOM();
  y := RANDOM()
END;
SIGNAL top: t;
)";

size_t countRule(const LintReport& r, LintRule rule) {
  size_t n = 0;
  for (const LintFinding& f : r.findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

LintReport quietLint(const Design& d, const SimGraph& g,
                     DiagnosticEngine& diags) {
  LintOptions opts;
  opts.reportToDiags = false;
  return runLint(d, g, diags, opts);
}

// ---------------------------------------------------------------------
// The lint <-> fold property, across the full corpus: every node the
// oracle proves constant (the superset of lint's ConstantGate/DeadBranch
// findings) is folded, afterwards lint finds no constant gate or dead
// branch at all, and every class that is live after folding keeps its
// dense slot and its full driver set through DCE + alias collapse.
// ---------------------------------------------------------------------

class TransformCorpus
    : public ::testing::TestWithParam<corpus::CorpusEntry> {};

TEST_P(TransformCorpus, FoldRemovesExactlyWhatLintReports) {
  std::string top;
  std::string src = corpusSource(GetParam(), &top);

  Built b0 = buildOk(src, top);
  SimGraph g0 = buildSimGraph(*b0.design, b0.comp->diags());
  ASSERT_FALSE(g0.hasCycle);
  FoldOracle o0(*b0.design, g0);
  LintReport lint0 = quietLint(*b0.design, g0, b0.comp->diags());

  uint64_t foldableKnown = 0;
  for (NodeId ni = 0; ni < b0.design->netlist.nodeCount(); ++ni) {
    const Node& n = b0.design->netlist.node(ni);
    if (FoldOracle::foldable(n.op) &&
        o0.nodeConst[ni] != FoldOracle::kUnknown) {
      ++foldableKnown;
    }
  }

  Built b1 = buildOk(src, top);
  OptReport rep = b1.comp->optimize(*b1.design);
  ASSERT_TRUE(rep.ran);
  ASSERT_TRUE(rep.verified) << rep.verifyError;
  ASSERT_TRUE(b1.comp->ok()) << b1.comp->diagnosticsText();

  // Exactly the oracle-constant foldable nodes were folded, and that set
  // covers every ConstantGate/DeadBranch finding (each names a distinct
  // gate or switch node).
  EXPECT_EQ(rep.totalFolded(), foldableKnown);
  EXPECT_GE(foldableKnown, countRule(lint0, LintRule::ConstantGate) +
                               countRule(lint0, LintRule::DeadBranch));

  // After the pipeline, lint has nothing left to say about constants:
  // no foldable node with a known value survives (the fold fixpoint) and
  // the rules built on the same oracle come back empty.
  SimGraph g1 = buildSimGraph(*b1.design, b1.comp->diags());
  ASSERT_FALSE(g1.hasCycle);
  FoldOracle o1(*b1.design, g1);
  for (NodeId ni = 0; ni < b1.design->netlist.nodeCount(); ++ni) {
    const Node& n = b1.design->netlist.node(ni);
    if (!FoldOracle::foldable(n.op)) continue;
    EXPECT_EQ(o1.nodeConst[ni], FoldOracle::kUnknown)
        << GetParam().name << ": node " << ni << " ("
        << nodeOpName(n.op) << ") still foldable after -O1";
  }
  LintReport lint1 = quietLint(*b1.design, g1, b1.comp->diags());
  EXPECT_EQ(countRule(lint1, LintRule::ConstantGate), 0u) << GetParam().name;
  EXPECT_EQ(countRule(lint1, LintRule::DeadBranch), 0u) << GetParam().name;

  // A design with no ports (the H-tree, layout demos) has no observation
  // boundary; DCE must keep it whole rather than delete the lot — its
  // nets stay probeable and `--metrics` still counts real work.
  if (b1.design->ports.empty()) {
    EXPECT_EQ(rep.totalRemoved(), 0u) << GetParam().name;
    EXPECT_EQ(rep.nodesAfter, rep.nodesBefore) << GetParam().name;
  }
}

TEST_P(TransformCorpus, NothingLiveIsRemoved) {
  std::string top;
  std::string src = corpusSource(GetParam(), &top);

  // Apply the fold pass by hand to a twin design, then recompute
  // liveness: classes live *after* folding are exactly what DCE must
  // preserve (a net feeding only a folded gate legitimately dies with
  // it, so pre-fold liveness would be the wrong yardstick).
  Built bf = buildOk(src, top);
  Netlist& nlf = bf.design->netlist;
  {
    SimGraph gf = buildSimGraph(*bf.design, bf.comp->diags());
    ASSERT_FALSE(gf.hasCycle);
    FoldOracle of(*bf.design, gf);
    for (NodeId ni = 0; ni < nlf.nodeCount(); ++ni) {
      Node& n = nlf.node(ni);
      if (FoldOracle::foldable(n.op) &&
          of.nodeConst[ni] != FoldOracle::kUnknown) {
        n.op = NodeOp::Const;
        n.constVal = static_cast<Logic>(of.nodeConst[ni]);
        n.inputs.clear();
      }
    }
  }
  SimGraph gf = buildSimGraph(*bf.design, bf.comp->diags());
  ASSERT_FALSE(gf.hasCycle);
  FoldOracle of(*bf.design, gf);

  Built b1 = buildOk(src, top);
  OptReport rep = b1.comp->optimize(*b1.design);
  ASSERT_TRUE(rep.verified) << rep.verifyError;
  SimGraph g1 = buildSimGraph(*b1.design, b1.comp->diags());
  ASSERT_FALSE(g1.hasCycle);

  // NetIds are stable across elaborations of the same source, so the
  // folded twin and the optimized design can be compared class by class.
  ASSERT_EQ(nlf.netCount(), b1.design->netlist.netCount());
  for (NetId n = 0; n < nlf.netCount(); ++n) {
    uint32_t dnf = gf.dense(n);
    if (dnf == SimGraph::kNoDense || !of.live[dnf]) continue;
    uint32_t dn1 = g1.dense(n);
    ASSERT_NE(dn1, SimGraph::kNoDense)
        << GetParam().name << ": live class of net '"
        << nlf.net(n).name << "' lost its dense slot";
    EXPECT_EQ(g1.driverStart[dn1 + 1] - g1.driverStart[dn1],
              gf.driverStart[dnf + 1] - gf.driverStart[dnf])
        << GetParam().name << ": live class of net '"
        << nlf.net(n).name << "' lost drivers";
  }
}

std::string entryName(
    const ::testing::TestParamInfo<corpus::CorpusEntry>& i) {
  std::string n = i.param.name;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(All, TransformCorpus,
                         ::testing::ValuesIn(corpus::all()), entryName);

// ---------------------------------------------------------------------
// Pipeline behaviour on hand-written designs
// ---------------------------------------------------------------------

TEST(Transform, DeadConstantConeIsFoldedRemovedAndDropped) {
  Built b = buildOk(kDeadwood, "top");
  OptReport rep = b.comp->optimize(*b.design);
  ASSERT_TRUE(rep.ran);
  ASSERT_TRUE(rep.verified) << rep.verifyError;
  EXPECT_GE(rep.totalFolded(), 1u);   // OR(a,1) -> CONST 1
  EXPECT_GE(rep.totalRemoved(), 1u);  // ... then deleted
  EXPECT_GE(rep.totalDropped(), 1u);  // 'dead' loses its slot
  EXPECT_LT(rep.nodesAfter, rep.nodesBefore);
  EXPECT_LT(rep.denseAfter, rep.denseBefore);
  EXPECT_NE(b.design->optFingerprint, 0u);

  const Netlist& nl = b.design->netlist;
  NetId dead = kNoNet;
  for (NetId n = 0; n < nl.netCount(); ++n) {
    const std::string& name = nl.net(n).name;
    if (name == "dead" ||
        (name.size() >= 5 &&
         name.compare(name.size() - 5, 5, ".dead") == 0)) {
      dead = n;
      break;
    }
  }
  ASSERT_NE(dead, kNoNet);
  EXPECT_TRUE(nl.net(nl.find(dead)).simDropped);

  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  EXPECT_EQ(g.dense(dead), SimGraph::kNoDense);

  // A dropped class has no simulated state: scalar and batch reads yield
  // NOINFL, and the fault universe refuses to target it.
  Simulation sim(g);
  sim.setInput("a", Logic::One);
  sim.setInput("b", Logic::One);
  sim.step();
  EXPECT_EQ(sim.netValue(dead), Logic::NoInfl);
  EXPECT_EQ(sim.output("y"), Logic::One);
  BatchSimulation batch(g, 2);
  batch.setInput(0, "a", Logic::One);
  batch.setInput(0, "b", Logic::One);
  batch.step();
  EXPECT_EQ(batch.netValue(0, dead), Logic::NoInfl);
  EXPECT_EQ(
      makeFault(g, FaultKind::StuckAt1, nl.net(nl.find(dead)).name),
      std::nullopt);
}

TEST(Transform, DeadBranchSwitchIsFolded) {
  Built b = buildOk(kDeadBranch, "top");
  SimGraph g0 = buildSimGraph(*b.design, b.comp->diags());
  LintReport lint0 = quietLint(*b.design, g0, b.comp->diags());
  EXPECT_GE(countRule(lint0, LintRule::DeadBranch), 1u);

  OptReport rep = b.comp->optimize(*b.design);
  ASSERT_TRUE(rep.verified) << rep.verifyError;
  EXPECT_GE(rep.totalFolded(), 1u);
  SimGraph g1 = buildSimGraph(*b.design, b.comp->diags());
  for (const Node& n : b.design->netlist.nodes()) {
    EXPECT_NE(n.op, NodeOp::Switch) << "dead IF branch survived -O1";
  }
  // Output semantics unchanged: m has no active driver and reads UNDEF
  // (§8), so y = OR(UNDEF, a) — One when a=1 (the 1 decides the OR),
  // UNDEF when a=0.  Exactly what the unoptimized design computes.
  Simulation sim(g1);
  sim.setInput("a", Logic::One);
  sim.step();
  EXPECT_EQ(sim.output("y"), Logic::One);
  sim.setInput("a", Logic::Zero);
  sim.step();
  EXPECT_EQ(sim.output("y"), Logic::Undef);
}

// The corpus H-tree is pure wiring: its OUT port is an alias class over
// empty leaf components, so the DCE keep rules reach no node at all.
// Deleting the design whole would be "correct" against the port-level
// observation model and useless against every other one (--metrics,
// waves, activity profiling, layout) — DCE must back off and keep it.
TEST(Transform, PureWiringDesignIsKeptWhole) {
  const corpus::CorpusEntry* htree = nullptr;
  for (const auto& e : corpus::all()) {
    if (std::string(e.name) == "htree") htree = &e;
  }
  ASSERT_NE(htree, nullptr);
  std::string top;
  std::string src = corpusSource(*htree, &top);
  Built b = buildOk(src, top);
  OptReport rep = b.comp->optimize(*b.design);
  ASSERT_TRUE(rep.ran);
  ASSERT_TRUE(rep.verified) << rep.verifyError;
  EXPECT_GT(rep.nodesBefore, 0u);
  EXPECT_EQ(rep.totalRemoved(), 0u);
  EXPECT_EQ(rep.nodesAfter, rep.nodesBefore);

  // And the optimized graph still does per-cycle work — metrics_corpus
  // counts on node_firings > 0 for every corpus entry.
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  Simulation sim(g);
  sim.setInput("in", Logic::One);
  sim.step(2);
  EXPECT_GT(sim.metricsCounters().nodeFirings, 0u);
}

TEST(Transform, LevelZeroVerifiesWithoutTouchingTheDesign) {
  Built b = buildOk(kDeadwood, "top");
  size_t nodesBefore = b.design->netlist.nodeCount();
  OptOptions opts;
  opts.level = 0;
  OptReport rep = b.comp->optimize(*b.design, opts);
  EXPECT_FALSE(rep.ran);
  EXPECT_TRUE(rep.verified) << rep.verifyError;
  EXPECT_EQ(rep.nodesAfter, nodesBefore);
  EXPECT_EQ(b.design->netlist.nodeCount(), nodesBefore);
  EXPECT_EQ(b.design->optFingerprint, 0u);  // -O0 keeps the seed hash
  EXPECT_TRUE(rep.passes.empty());
}

TEST(Transform, FingerprintSplitsTheContentHashByLevel) {
  Built b0 = buildOk(kDeadwood, "top");
  Built b1 = buildOk(kDeadwood, "top");
  OptReport rep = b1.comp->optimize(*b1.design);
  ASSERT_TRUE(rep.verified);
  EXPECT_EQ(b0.design->optFingerprint, 0u);
  EXPECT_NE(b1.design->optFingerprint, 0u);
  EXPECT_NE(designContentHash(*b0.design), designContentHash(*b1.design));

  // Same level, same effect -> same hash: checkpoints stay resumable.
  Built b2 = buildOk(kDeadwood, "top");
  OptReport rep2 = b2.comp->optimize(*b2.design);
  ASSERT_TRUE(rep2.verified);
  EXPECT_EQ(designContentHash(*b1.design), designContentHash(*b2.design));
}

TEST(Transform, OptStatsJsonSchema) {
  Built b = buildOk(kDeadwood, "top");
  OptReport rep = b.comp->optimize(*b.design);
  std::string json = rep.renderJson("top");
  EXPECT_NE(json.find("\"zeus-opt\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"design\": \"top\""), std::string::npos);
  EXPECT_NE(json.find("\"level\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"verified\": true"), std::string::npos);
  EXPECT_NE(json.find("\"pass\": \"const-fold\""), std::string::npos);
  EXPECT_NE(json.find("\"pass\": \"dce\""), std::string::npos);
  EXPECT_NE(json.find("\"pass\": \"alias-collapse\""), std::string::npos);
  EXPECT_EQ(json.find("\"verify_error\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Netlist::removeNodes
// ---------------------------------------------------------------------

TEST(Transform, RemoveNodesCompactsStablyAndRebuildsDrivers) {
  Built b = buildOk(kDeadwood, "top");
  Netlist& nl = b.design->netlist;
  size_t before = nl.nodeCount();
  ASSERT_GE(before, 2u);

  // Keeping everything is the identity.
  std::vector<Node> orig = nl.nodes();
  nl.removeNodes(std::vector<char>(before, 1));
  ASSERT_EQ(nl.nodeCount(), before);

  // Drop the first node only: the survivors keep their relative order,
  // and the per-root driver lists are rebuilt to match.
  std::vector<char> keep(before, 1);
  keep[0] = 0;
  NetId out0 = nl.find(orig[0].output);
  size_t drivers0 = nl.driversOf(out0).size();
  nl.removeNodes(keep);
  ASSERT_EQ(nl.nodeCount(), before - 1);
  for (NodeId i = 0; i < nl.nodeCount(); ++i) {
    EXPECT_EQ(nl.node(i).op, orig[i + 1].op);
    EXPECT_EQ(nl.node(i).output, orig[i + 1].output);
  }
  EXPECT_EQ(nl.driversOf(out0).size(), drivers0 - 1);
  for (NetId root = 0; root < nl.netCount(); ++root) {
    if (nl.find(root) != root) continue;
    for (NodeId d : nl.driversOf(root)) {
      ASSERT_LT(d, nl.nodeCount());
      EXPECT_EQ(nl.find(nl.node(d).output), root);
    }
  }
}

// ---------------------------------------------------------------------
// The post-pass verifier
// ---------------------------------------------------------------------

TEST(Verifier, AcceptsEveryCorpusGraph) {
  for (const corpus::CorpusEntry& e : corpus::all()) {
    std::string top;
    std::string src = corpusSource(e, &top);
    Built b = buildOk(src, top);
    SimGraph g = buildSimGraph(*b.design, b.comp->diags());
    ASSERT_FALSE(g.hasCycle);
    EXPECT_EQ(verifyGraph(*b.design, g), "") << e.name;
  }
}

TEST(Verifier, RejectsTamperedGraphs) {
  Built b = buildOk(kDeadwood, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  ASSERT_EQ(verifyGraph(*b.design, g), "");

  {  // NetInfo out of sync with the netlist
    SimGraph h = g;
    h.nets[0].multiDriven = !h.nets[0].multiDriven;
    EXPECT_NE(verifyGraph(*b.design, h), "");
  }
  {  // a referenced class stripped of its dense slot
    SimGraph h = g;
    h.denseOf[h.rootOf[0]] = SimGraph::kNoDense;
    EXPECT_NE(verifyGraph(*b.design, h), "");
  }
  {  // a driver edge rewired to the wrong node
    SimGraph h = g;
    ASSERT_FALSE(h.driverNodes.empty());
    h.driverNodes[0] = static_cast<NodeId>(
        (h.driverNodes[0] + 1) % b.design->netlist.nodeCount());
    EXPECT_NE(verifyGraph(*b.design, h), "");
  }
  {  // stale level labelling
    SimGraph h = g;
    h.maxLevel += 1;
    EXPECT_NE(verifyGraph(*b.design, h), "");
  }
  {  // a node leaking out of the topoOrder partition
    SimGraph h = g;
    ASSERT_FALSE(h.topoOrder.empty());
    h.topoOrder.pop_back();
    EXPECT_NE(verifyGraph(*b.design, h), "");
  }
}

TEST(Verifier, RejectsReorderedRandomSources) {
  Built b = buildOk(kTwoRandoms, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  ASSERT_GE(g.sourceNodes.size(), 2u);
  ASSERT_EQ(verifyGraph(*b.design, g), "");
  SimGraph h = g;
  std::swap(h.sourceNodes[0], h.sourceNodes[1]);
  EXPECT_NE(verifyGraph(*b.design, h), "")
      << "RNG stream order (sourceNodes in NodeId order) not enforced";
}

TEST(Verifier, FailureIsReportedAsInternalError) {
  // Force the pipeline's own verify step to fail by corrupting the
  // netlist<->graph agreement *after* optimization would normally leave
  // them consistent: run at level 0 against a hand-corrupted net flag.
  Built b = buildOk(kDeadwood, "top");
  // Mark a referenced class dropped; buildSimGraph still gives it a slot
  // (it is referenced), so the graph stays sound — instead corrupt via
  // the drivers: unite two nets behind the graph's back.
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_EQ(verifyGraph(*b.design, g), "");
  b.design->netlist.unite(0, 1);
  EXPECT_NE(verifyGraph(*b.design, g), "");
}

}  // namespace
}  // namespace zeus::test

// E9: the static type rules of §4.7, cell by cell.
//
// Tables (1) and (2) of the paper and the assignment-counting rules are
// exercised with minimal programs; each illegal cell must produce its
// dedicated diagnostic, each legal cell must elaborate cleanly.
#include <gtest/gtest.h>

#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

std::string wrap(const std::string& body, const std::string& decls = "") {
  return "TYPE t = COMPONENT (IN i1, i2: boolean; OUT o1, o2: boolean) IS\n" +
         decls + "BEGIN\n" + body + "\nEND;\nSIGNAL top: t;\n";
}

// ---------------------------------------------------------------------
// Unconditional assignment: all four boolean/multiplex combinations are
// legal, but no second assignment may follow.
// ---------------------------------------------------------------------

TEST(TypeRules, UncondBooleanFromBoolean) {
  buildOk(wrap("o1 := i1; o2 := i2"), "top");
}

TEST(TypeRules, UncondBooleanFromMultiplex) {
  buildOk(wrap("o1 := m; o2 := 0; IF i1 THEN m := i2 END",
               "SIGNAL m: multiplex;\n"),
          "top");
}

TEST(TypeRules, UncondMultiplexFromBoolean) {
  buildOk(wrap("m := i1; o1 := m; o2 := 0", "SIGNAL m: multiplex;\n"),
          "top");
}

TEST(TypeRules, UncondMultiplexFromMultiplexIllegal) {
  // "If both x and y are signals of type multiplex then the assignment
  // x := y is illegal.  x == y has to be used instead."
  expectElabError(wrap("IF i1 THEN m1 := i2 END; m2 := m1; o1 := m2; o2 := 0",
                       "SIGNAL m1, m2: multiplex;\n"),
                  "top", Diag::MultiplexToMultiplexAssign);
}

TEST(TypeRules, DoubleUnconditionalAssignmentIllegal) {
  // Prevents direct power-ground connections: x := 1; x := 0.
  expectElabError(wrap("o1 := 1; o1 := 0; o2 := 0"), "top",
                  Diag::MultipleUnconditionalAssignment);
}

TEST(TypeRules, ConditionalPlusUnconditionalIllegal) {
  expectElabError(
      wrap("o1 := 1; IF i1 THEN o1 := 0 END; o2 := 0"), "top",
      Diag::ConditionalAndUnconditionalAssignment);
}

TEST(TypeRules, UnconditionalPlusConditionalIllegal) {
  expectElabError(
      wrap("IF i1 THEN o1 := 0 END; o1 := 1; o2 := 0"), "top",
      Diag::ConditionalAndUnconditionalAssignment);
}

// ---------------------------------------------------------------------
// Conditional assignment, table (1): illegal into plain boolean, legal
// into multiplex; exception 1 for child IN and formal OUT parameters.
// ---------------------------------------------------------------------

TEST(TypeRules, CondToLocalBooleanIllegal) {
  expectElabError(
      wrap("IF i1 THEN b := i2 END; o1 := b; o2 := 0",
           "SIGNAL b: boolean;\n"),
      "top", Diag::ConditionalAssignToBoolean);
}

TEST(TypeRules, CondToMultiplexLegal) {
  buildOk(wrap("IF i1 THEN m := i2 END; IF NOT i1 THEN m := 0 END;"
               "o1 := m; o2 := 0",
               "SIGNAL m: multiplex;\n"),
          "top");
}

TEST(TypeRules, CondToFormalOutLegal) {
  // Exception 1: o1 is a formal OUT parameter.
  buildOk(wrap("IF i1 THEN o1 := i2 END; o2 := 0"), "top");
}

TEST(TypeRules, CondToChildInLegal) {
  // Exception 1: r.in is an IN parameter of an instantiated component.
  buildOk(wrap("IF i1 THEN r.in := i2 END; o1 := r.out; o2 := 0",
               "SIGNAL r: REG;\n"),
          "top");
}

// ---------------------------------------------------------------------
// Aliasing, table (2).
// ---------------------------------------------------------------------

TEST(TypeRules, AliasMultiplexMultiplexLegal) {
  buildOk(wrap("m1 == m2; IF i1 THEN m1 := i2 END; o1 := m2; o2 := 0",
               "SIGNAL m1, m2: multiplex;\n"),
          "top");
}

TEST(TypeRules, AliasBooleanBooleanIllegal) {
  expectElabError(wrap("o1 == o2"), "top", Diag::AliasOfBooleans);
}

TEST(TypeRules, AliasMultiplexWithChildInLegal) {
  // Exception 1: REG.in is boolean but an IN parameter of an instance.
  buildOk(wrap("IF i1 THEN m := i2 END; r.in == m; o1 := r.out; o2 := 0",
               "SIGNAL m: multiplex; r: REG;\n"),
          "top");
}

TEST(TypeRules, AliasMultiplexWithPlainBooleanIllegal) {
  expectElabError(wrap("b == m; o1 := b; o2 := 0",
                       "SIGNAL b: boolean; m: multiplex;\n"),
                  "top", Diag::AliasBooleanNotException);
}

TEST(TypeRules, AliasInsideIfIllegal) {
  expectElabError(wrap("IF i1 THEN m1 == m2 END; o1 := 0; o2 := 0",
                       "SIGNAL m1, m2: multiplex;\n"),
                  "top", Diag::AliasInsideConditional);
}

TEST(TypeRules, AliasedBooleanThenUnconditionalAssignIllegal) {
  // "If a signal of type boolean is assigned with == then it may not
  // unconditionally be assigned with :=".
  expectElabError(
      wrap("r.in == m; r.in := i1; o1 := r.out; o2 := 0",
           "SIGNAL m: multiplex; r: REG;\n"),
      "top", Diag::AliasBooleanNotException);
}

// ---------------------------------------------------------------------
// Parameter direction rules.
// ---------------------------------------------------------------------

TEST(TypeRules, AssignToFormalInIllegal) {
  expectElabError(wrap("i1 := i2; o1 := 0; o2 := 0"), "top",
                  Diag::AssignToInParameter);
}

TEST(TypeRules, AssignToChildOutIllegal) {
  expectElabError(wrap("r.out := i1; r.in := i2; o1 := 0; o2 := 0",
                       "SIGNAL r: REG;\n"),
                  "top", Diag::AssignToOutOfInstance);
}

TEST(TypeRules, AssignToClkIllegal) {
  expectElabError(wrap("CLK := i1; o1 := 0; o2 := 0"), "top",
                  Diag::AssignToInParameter);
}

TEST(TypeRules, UnstructuredInMustBeBoolean) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: multiplex; OUT b: boolean) IS
BEGIN
  b := a
END;
SIGNAL top: t;
)";
  expectElabError(src, "top", Diag::UnstructuredInOutMustBeBoolean);
}

TEST(TypeRules, BasicInOutMustBeMultiplex) {
  const char* src = R"(
TYPE t = COMPONENT (a: boolean; OUT b: boolean) IS
BEGIN
  b := 0
END;
SIGNAL top: t;
)";
  expectElabError(src, "top", Diag::InOutBasicMustBeMultiplex);
}

// ---------------------------------------------------------------------
// Width discipline.
// ---------------------------------------------------------------------

TEST(TypeRules, WidthMismatchDiagnosed) {
  expectElabError(
      wrap("v := (i1, i2); o1 := 0; o2 := 0",
           "SIGNAL v: ARRAY[1..3] OF boolean;\n"),
      "top", Diag::WidthMismatch);
}

TEST(TypeRules, StructuredAssignSameWidthDifferentShape) {
  // Same number of basic substructures is sufficient (§4.1).
  buildOk(wrap("v := (i1, i2, i1, i2); o1 := v[1].x; o2 := v[2].y",
               "TYPE pair = COMPONENT (x, y: multiplex);\n"
               "SIGNAL v: ARRAY[1..2] OF pair;\n"),
          "top");
}

TEST(TypeRules, GateArityMismatch) {
  expectElabError(wrap("o1 := XOR(i1, v); o2 := 0",
                       "SIGNAL v: ARRAY[1..2] OF boolean;\n"),
                  "top", Diag::WidthMismatch);
}

// ---------------------------------------------------------------------
// Conditions and loops.
// ---------------------------------------------------------------------

TEST(TypeRules, ConditionMustBeSingleBit) {
  expectElabError(wrap("IF v THEN o1 := 1 END; o2 := 0; v := (i1,i2)",
                       "SIGNAL v: ARRAY[1..2] OF boolean;\n"),
                  "top", Diag::ConditionNotSingleBit);
}

TEST(TypeRules, CombinationalLoopDetected) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL x, y: boolean;
BEGIN
  x := AND(a, y);
  y := OR(a, x);
  b := y
END;
SIGNAL top: t;
)";
  auto comp = Compilation::fromSource("test.zeus", src);
  ASSERT_TRUE(comp->ok()) << comp->diagnosticsText();
  auto design = comp->elaborate("top");
  ASSERT_NE(design, nullptr);
  SimGraph g = buildSimGraph(*design, comp->diags());
  EXPECT_TRUE(g.hasCycle);
  EXPECT_TRUE(comp->diags().has(Diag::CombinationalLoop));
}

TEST(TypeRules, LoopThroughRegisterAllowed) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL r: REG;
BEGIN
  r.in := XOR(a, r.out);
  b := r.out
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  EXPECT_FALSE(g.hasCycle) << b.comp->diagnosticsText();
}

// ---------------------------------------------------------------------
// Scoping and declarations.
// ---------------------------------------------------------------------

TEST(TypeRules, DuplicateSignalDiagnosed) {
  expectElabError(wrap("o1 := 0; o2 := 0",
                       "SIGNAL x: boolean; x: multiplex;\n"),
                  "top", Diag::DuplicateDeclaration);
}

TEST(TypeRules, FunctionTypeAsSignalIllegal) {
  const char* src = R"(
TYPE f = COMPONENT (IN a: boolean) : boolean IS BEGIN RESULT a END;
t = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL g: f;
BEGIN
  b := a; g.a := a
END;
SIGNAL top: t;
)";
  expectElabError(src, "top", Diag::FunctionUsedAsSignal);
}

TEST(TypeRules, ResultOutsideFunctionIllegal) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT b: boolean) IS
BEGIN
  b := a;
  RESULT a
END;
SIGNAL top: t;
)";
  auto comp = Compilation::fromSource("test.zeus", src);
  EXPECT_TRUE(comp->diags().has(Diag::ResultOutsideFunction));
}

TEST(TypeRules, ConnectionRepeatedIllegal) {
  const char* src = R"(
TYPE inner = COMPONENT (IN a: boolean; OUT b: boolean) IS
BEGIN b := a END;
t = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL x: inner;
BEGIN
  x(a, b);
  x(a, b)
END;
SIGNAL top: t;
)";
  expectElabError(src, "top", Diag::ConnectionRepeated);
}

TEST(TypeRules, ConnectionArityIllegal) {
  const char* src = R"(
TYPE inner = COMPONENT (IN a: boolean; OUT b: boolean) IS
BEGIN b := a END;
t = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL x: inner;
BEGIN
  x(a)
END;
SIGNAL top: t;
)";
  expectElabError(src, "top", Diag::BadConnectionShape);
}

TEST(TypeRules, ConnectionOnRecordIllegal) {
  const char* src = R"(
TYPE rec = COMPONENT (a: multiplex; b: multiplex);
t = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL x: rec;
BEGIN
  b := a;
  x(a, b)
END;
SIGNAL top: t;
)";
  expectElabError(src, "top", Diag::ConnectionOnNonComponent);
}

TEST(TypeRules, UnusedPortWarned) {
  const char* src = R"(
TYPE inner = COMPONENT (IN a: boolean; OUT b, c: boolean) IS
BEGIN b := a; c := a END;
t = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL x: inner;
BEGIN
  x.a := a;
  b := x.b
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  ASSERT_NE(b.design, nullptr);
  EXPECT_TRUE(b.comp->diags().has(Diag::UnusedPort));
}

TEST(TypeRules, StrictUnusedPortsIsAnError) {
  const char* src = R"(
TYPE inner = COMPONENT (IN a: boolean; OUT b, c: boolean) IS
BEGIN b := a; c := a END;
t = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL x: inner;
BEGIN
  x.a := a;
  b := x.b
END;
SIGNAL top: t;
)";
  auto comp = Compilation::fromSource("test.zeus", src);
  ASSERT_TRUE(comp->ok());
  Elaborator::Options opts;
  opts.strictUnusedPorts = true;
  auto design = comp->elaborate("top", opts);
  EXPECT_EQ(design, nullptr);
  EXPECT_TRUE(comp->diags().has(Diag::UnusedPort));
}

TEST(TypeRules, ClosedPortNotWarned) {
  const char* src = R"(
TYPE inner = COMPONENT (IN a: boolean; OUT b, c: boolean) IS
BEGIN b := a; c := a END;
t = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL x: inner;
BEGIN
  x(a, b, *);
  b == *
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  ASSERT_NE(b.design, nullptr);
  EXPECT_FALSE(b.comp->diags().has(Diag::UnusedPort))
      << b.comp->diagnosticsText();
}

TEST(TypeRules, SignalBeforeTypeDiagnosed) {
  const char* src = R"(
SIGNAL x: boolean;
TYPE t = COMPONENT (IN a: boolean; OUT b: boolean) IS BEGIN b := a END;
SIGNAL top: t;
)";
  auto comp = Compilation::fromSource("test.zeus", src);
  EXPECT_TRUE(comp->diags().has(Diag::SignalAfterOtherDecls));
}

TEST(TypeRules, UsesListBlocksOuterTypes) {
  const char* src = R"(
CONST k = 4;
TYPE bo = ARRAY[1..k] OF boolean;
t = COMPONENT (IN a: boolean; OUT b: boolean) IS USES k;
  SIGNAL v: bo;
BEGIN
  b := a
END;
SIGNAL top: t;
)";
  auto comp = Compilation::fromSource("test.zeus", src);
  auto design = comp->ok() ? comp->elaborate("top") : nullptr;
  EXPECT_EQ(design, nullptr);
  EXPECT_TRUE(comp->diags().has(Diag::NotAType))
      << comp->diagnosticsText();
}

TEST(TypeRules, UsesListAdmitsListedNames) {
  const char* src = R"(
CONST k = 4;
TYPE bo = ARRAY[1..k] OF boolean;
t = COMPONENT (IN a: boolean; OUT b: boolean) IS USES k, bo;
  SIGNAL v: bo;
BEGIN
  v := (a, a, a, a);
  b := v[2]
END;
SIGNAL top: t;
)";
  buildOk(src, "top");
}

TEST(TypeRules, EmptyUsesListBlocksEverything) {
  const char* src = R"(
CONST k = 4;
TYPE t = COMPONENT (IN a: boolean; OUT b: boolean) IS USES ;
  SIGNAL v: ARRAY[1..k] OF boolean;
BEGIN
  b := a
END;
SIGNAL top: t;
)";
  auto comp = Compilation::fromSource("test.zeus", src);
  auto design = comp->ok() ? comp->elaborate("top") : nullptr;
  EXPECT_EQ(design, nullptr);
}

TEST(TypeRules, PredefinedTypesPervasiveDespiteUses) {
  // REG and boolean are pervasive and need no uses entry.
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT b: boolean) IS USES ;
  SIGNAL r: REG;
BEGIN
  r.in := a;
  b := r.out
END;
SIGNAL top: t;
)";
  buildOk(src, "top");
}

}  // namespace
}  // namespace zeus::test

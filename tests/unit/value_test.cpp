// Unit tests for the four-valued gate semantics (§8) — the single source
// of truth shared by both evaluators and the constant folder.
#include <gtest/gtest.h>

#include "src/sim/value.h"

namespace zeus {
namespace {

constexpr Logic O = Logic::Zero;
constexpr Logic I = Logic::One;
constexpr Logic X = Logic::Undef;
constexpr Logic Z = Logic::NoInfl;

Logic gate(NodeOp op, std::initializer_list<Logic> in) {
  std::vector<Logic> v(in);
  return evalGate(op, v);
}

TEST(GateSemantics, And) {
  EXPECT_EQ(gate(NodeOp::And, {I, I}), I);
  EXPECT_EQ(gate(NodeOp::And, {I, O}), O);
  EXPECT_EQ(gate(NodeOp::And, {X, O}), O);  // 0 dominates
  EXPECT_EQ(gate(NodeOp::And, {X, I}), X);
  EXPECT_EQ(gate(NodeOp::And, {Z, O}), O);  // NOINFL behaves as UNDEF
  EXPECT_EQ(gate(NodeOp::And, {Z, I}), X);
  EXPECT_EQ(gate(NodeOp::And, {I, I, I, I}), I);
  EXPECT_EQ(gate(NodeOp::And, {I, I, O, I}), O);
}

TEST(GateSemantics, Or) {
  EXPECT_EQ(gate(NodeOp::Or, {O, O}), O);
  EXPECT_EQ(gate(NodeOp::Or, {O, I}), I);
  EXPECT_EQ(gate(NodeOp::Or, {X, I}), I);  // 1 dominates
  EXPECT_EQ(gate(NodeOp::Or, {X, O}), X);
  EXPECT_EQ(gate(NodeOp::Or, {Z, Z}), X);
}

TEST(GateSemantics, NandNor) {
  EXPECT_EQ(gate(NodeOp::Nand, {I, I}), O);
  EXPECT_EQ(gate(NodeOp::Nand, {O, X}), I);
  EXPECT_EQ(gate(NodeOp::Nand, {X, I}), X);
  EXPECT_EQ(gate(NodeOp::Nor, {O, O}), I);
  EXPECT_EQ(gate(NodeOp::Nor, {I, X}), O);
  EXPECT_EQ(gate(NodeOp::Nor, {X, O}), X);
}

TEST(GateSemantics, XorNeedsAllDefined) {
  EXPECT_EQ(gate(NodeOp::Xor, {I, O}), I);
  EXPECT_EQ(gate(NodeOp::Xor, {I, I}), O);
  EXPECT_EQ(gate(NodeOp::Xor, {X, O}), X);
  EXPECT_EQ(gate(NodeOp::Xor, {X, I}), X);  // no short circuit for XOR
  EXPECT_EQ(gate(NodeOp::Xor, {I, I, I}), I);  // parity
}

TEST(GateSemantics, Not) {
  EXPECT_EQ(gate(NodeOp::Not, {O}), I);
  EXPECT_EQ(gate(NodeOp::Not, {I}), O);
  EXPECT_EQ(gate(NodeOp::Not, {X}), X);
  EXPECT_EQ(gate(NodeOp::Not, {Z}), X);
}

TEST(GateSemantics, Equal) {
  std::vector<Logic> a{I, O, I};
  std::vector<Logic> b{I, O, I};
  EXPECT_EQ(evalEqual(a, b), I);
  b[1] = I;
  EXPECT_EQ(evalEqual(a, b), O);
  b[1] = X;
  EXPECT_EQ(evalEqual(a, b), X);  // undecided pair, rest equal
  a[0] = O;  // defined mismatch elsewhere decides 0 despite the UNDEF
  EXPECT_EQ(evalEqual(a, b), O);
}

TEST(GateSemantics, Switch) {
  EXPECT_EQ(evalSwitch(O, I), Z);  // cond 0 -> no influence
  EXPECT_EQ(evalSwitch(I, I), I);
  EXPECT_EQ(evalSwitch(I, Z), Z);  // data passes through raw
  EXPECT_EQ(evalSwitch(X, I), X);  // undefined condition
  EXPECT_EQ(evalSwitch(Z, O), X);  // disconnected condition (§8)
}

TEST(GateSemantics, Resolution) {
  Resolution r;
  EXPECT_EQ(r.value, Z);
  r.add(Z);
  EXPECT_EQ(r.value, Z);
  EXPECT_EQ(r.activeCount, 0);
  r.add(I);
  EXPECT_EQ(r.value, I);
  EXPECT_FALSE(r.collision());
  r.add(Z);  // NOINFL overruled
  EXPECT_EQ(r.value, I);
  r.add(I);  // second active assignment — collision, even if equal
  EXPECT_EQ(r.value, X);
  EXPECT_TRUE(r.collision());
}

TEST(GateSemantics, ResolutionUndefDominates) {
  Resolution r;
  r.add(X);
  EXPECT_EQ(r.value, X);
  EXPECT_EQ(r.activeCount, 1);
}

TEST(GateSemantics, ShortCircuitFiring) {
  GateCounters c;
  Logic out = X;
  c.add(O);
  EXPECT_TRUE(gateCanFire(NodeOp::And, c, 4, out));
  EXPECT_EQ(out, O);
  EXPECT_TRUE(gateCanFire(NodeOp::Nand, c, 4, out));
  EXPECT_EQ(out, I);
  GateCounters c2;
  c2.add(I);
  EXPECT_FALSE(gateCanFire(NodeOp::And, c2, 2, out));
  c2.add(I);
  EXPECT_TRUE(gateCanFire(NodeOp::And, c2, 2, out));
  EXPECT_EQ(out, I);
  GateCounters c3;
  c3.add(X);
  EXPECT_FALSE(gateCanFire(NodeOp::Or, c3, 2, out));
  c3.add(O);
  EXPECT_TRUE(gateCanFire(NodeOp::Or, c3, 2, out));
  EXPECT_EQ(out, X);
}

}  // namespace
}  // namespace zeus

// Unit tests for the scanner (paper §2).
#include <gtest/gtest.h>

#include <cstdint>

#include "src/lexer/lexer.h"

namespace zeus {
namespace {

struct LexResult {
  SourceManager sm;
  std::unique_ptr<DiagnosticEngine> diags;
  std::vector<Token> tokens;
};

LexResult lex(const std::string& text) {
  LexResult r;
  BufferId buf = r.sm.addBuffer("t", text);
  r.diags = std::make_unique<DiagnosticEngine>(r.sm);
  Lexer lexer(buf, *r.diags);
  r.tokens = lexer.tokenize();
  return r;
}

std::vector<Tok> kinds(const LexResult& r) {
  std::vector<Tok> out;
  for (const Token& t : r.tokens) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInput) {
  LexResult r = lex("");
  EXPECT_EQ(kinds(r), std::vector<Tok>{Tok::Eof});
}

TEST(Lexer, Identifiers) {
  LexResult r = lex("abc a1b2 Zeus");
  ASSERT_EQ(r.tokens.size(), 4u);
  EXPECT_EQ(r.tokens[0].kind, Tok::Ident);
  EXPECT_EQ(r.tokens[0].text, "abc");
  EXPECT_EQ(r.tokens[1].text, "a1b2");
  EXPECT_EQ(r.tokens[2].text, "Zeus");
}

TEST(Lexer, KeywordsAreExactUppercase) {
  LexResult r = lex("BEGIN begin Begin END");
  EXPECT_EQ(r.tokens[0].kind, Tok::KwBEGIN);
  EXPECT_EQ(r.tokens[1].kind, Tok::Ident);
  EXPECT_EQ(r.tokens[2].kind, Tok::Ident);
  EXPECT_EQ(r.tokens[3].kind, Tok::KwEND);
}

TEST(Lexer, AllKeywordsRecognised) {
  const char* kws =
      "AND ARRAY BEGIN BIN BOTTOM CLK COMPONENT CONST DIV DO DOWNTO ELSE "
      "ELSIF END FOR IF IN IS LEFT MOD NOT NUM OF OR ORDER OTHERWISE "
      "OTHERWISEWHEN OUT PARALLEL RSET RESULT RIGHT SEQUENTIAL SEQUENTIALLY "
      "SIGNAL THEN TO TOP TYPE USES WHEN WITH";
  LexResult r = lex(kws);
  for (size_t i = 0; i + 1 < r.tokens.size(); ++i) {
    EXPECT_NE(r.tokens[i].kind, Tok::Ident)
        << "not a keyword: " << r.tokens[i].text;
  }
}

TEST(Lexer, DecimalNumbers) {
  LexResult r = lex("0 7 1023 9007");
  EXPECT_EQ(r.tokens[0].number, 0);
  EXPECT_EQ(r.tokens[1].number, 7);
  EXPECT_EQ(r.tokens[2].number, 1023);
  EXPECT_EQ(r.tokens[3].number, 9007);
}

TEST(Lexer, OctalNumbers) {
  LexResult r = lex("7B 10b 777B");
  EXPECT_EQ(r.tokens[0].number, 7);
  EXPECT_EQ(r.tokens[1].number, 8);
  EXPECT_EQ(r.tokens[2].number, 511);
}

TEST(Lexer, InvalidOctalDigitDiagnosed) {
  LexResult r = lex("9B");
  EXPECT_TRUE(r.diags->has(Diag::InvalidOctalDigit));
}

TEST(Lexer, HugeNumberDiagnosed) {
  LexResult r = lex("99999999999999999999999999");
  EXPECT_TRUE(r.diags->has(Diag::NumberTooLarge));
}

TEST(Lexer, Int64MaxParses) {
  // INT64_MAX itself must lex without tripping the overflow check.
  LexResult r = lex("9223372036854775807");
  ASSERT_EQ(r.tokens[0].kind, Tok::Number);
  EXPECT_EQ(r.tokens[0].number, INT64_MAX);
  EXPECT_FALSE(r.diags->hasErrors());
}

TEST(Lexer, Int64MaxPlusOneDiagnosed) {
  // One past INT64_MAX must be a structured NumberTooLarge, not wraparound.
  LexResult r = lex("9223372036854775808");
  EXPECT_EQ(r.tokens[0].kind, Tok::Error);
  EXPECT_TRUE(r.diags->has(Diag::NumberTooLarge));
}

TEST(Lexer, OctalInt64Boundary) {
  // INT64_MAX in octal is 7 followed by twenty 7s.
  LexResult r = lex("777777777777777777777B");
  ASSERT_EQ(r.tokens[0].kind, Tok::Number);
  EXPECT_EQ(r.tokens[0].number, INT64_MAX);
  EXPECT_FALSE(r.diags->hasErrors());

  LexResult over = lex("1000000000000000000000B");
  EXPECT_EQ(over.tokens[0].kind, Tok::Error);
  EXPECT_TRUE(over.diags->has(Diag::NumberTooLarge));
}

TEST(Lexer, TwoCharSymbols) {
  LexResult r = lex(":= == <= >= <> ..");
  std::vector<Tok> expect{Tok::Assign, Tok::Alias,   Tok::LessEq,
                          Tok::GreaterEq, Tok::NotEqual, Tok::Range,
                          Tok::Eof};
  EXPECT_EQ(kinds(r), expect);
}

TEST(Lexer, SingleCharSymbols) {
  LexResult r = lex("+ - ( ) [ ] { } . , ; : < > = *");
  std::vector<Tok> expect{
      Tok::Plus,  Tok::Minus,    Tok::LParen, Tok::RParen, Tok::LBracket,
      Tok::RBracket, Tok::LBrace, Tok::RBrace, Tok::Dot,    Tok::Comma,
      Tok::Semicolon, Tok::Colon, Tok::Less,   Tok::Greater, Tok::Equal,
      Tok::Star,  Tok::Eof};
  EXPECT_EQ(kinds(r), expect);
}

TEST(Lexer, CommentsSkipped) {
  LexResult r = lex("a <* comment *> b");
  ASSERT_EQ(r.tokens.size(), 3u);
  EXPECT_EQ(r.tokens[0].text, "a");
  EXPECT_EQ(r.tokens[1].text, "b");
}

TEST(Lexer, NestedComments) {
  LexResult r = lex("a <* outer <* inner *> still out *> b");
  ASSERT_EQ(r.tokens.size(), 3u);
  EXPECT_EQ(r.tokens[1].text, "b");
  EXPECT_FALSE(r.diags->hasErrors());
}

TEST(Lexer, UnterminatedCommentDiagnosed) {
  LexResult r = lex("a <* never closed");
  EXPECT_TRUE(r.diags->has(Diag::UnterminatedComment));
}

TEST(Lexer, CommentDelimsVersusComparison) {
  // "a < b" must not start a comment.
  LexResult r = lex("a < b");
  ASSERT_EQ(r.tokens.size(), 4u);
  EXPECT_EQ(r.tokens[1].kind, Tok::Less);
}

TEST(Lexer, StarVsCommentClose) {
  LexResult r = lex("a * b");
  EXPECT_EQ(r.tokens[1].kind, Tok::Star);
}

TEST(Lexer, InvalidCharacterDiagnosed) {
  LexResult r = lex("a @ b");
  EXPECT_TRUE(r.diags->has(Diag::InvalidCharacter));
}

TEST(Lexer, LocationsAreAccurate) {
  LexResult r = lex("a\n  bc");
  LineCol lc = r.sm.expand(r.tokens[1].loc);
  EXPECT_EQ(lc.line, 2u);
  EXPECT_EQ(lc.col, 3u);
}

TEST(Lexer, DotDotVersusDotIdent) {
  LexResult r = lex("x[1..4] y.f");
  std::vector<Tok> expect{Tok::Ident, Tok::LBracket, Tok::Number, Tok::Range,
                          Tok::Number, Tok::RBracket, Tok::Ident, Tok::Dot,
                          Tok::Ident, Tok::Eof};
  EXPECT_EQ(kinds(r), expect);
}

}  // namespace
}  // namespace zeus

// Property test: the firing evaluator (event-driven, short-circuit) and
// the naive fixpoint evaluator produce bit-identical results on randomly
// generated Zeus programs across many cycles and random inputs.
//
// The generator builds legal programs by construction: locals are only
// defined from already-available signals, so no combinational loops occur;
// conditional assignments target multiplex signals or register inputs.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

struct RandomProgram {
  std::string source;
  int numInputs;
  int numOutputs;
};

RandomProgram generate(uint64_t seed, int size) {
  std::mt19937_64 rng(seed);
  auto pick = [&](int n) { return static_cast<int>(rng() % n); };

  const int numInputs = 2 + pick(4);
  std::ostringstream os;
  os << "TYPE t = COMPONENT (IN ";
  for (int i = 0; i < numInputs; ++i) {
    if (i) os << ",";
    os << "i" << i;
  }
  os << ": boolean; OUT o0, o1: boolean) IS\n";

  // Available signal expressions (always defined single-bit reads).
  std::vector<std::string> avail;
  for (int i = 0; i < numInputs; ++i) avail.push_back("i" + std::to_string(i));

  std::ostringstream decls;
  std::ostringstream body;
  int locals = 0, regs = 0, muxes = 0;
  auto any = [&]() { return avail[pick(static_cast<int>(avail.size()))]; };

  for (int step = 0; step < size; ++step) {
    switch (pick(5)) {
      case 0: {  // gate into a fresh local
        std::string name = "w" + std::to_string(locals++);
        decls << "SIGNAL " << name << ": boolean;\n";
        const char* ops[] = {"AND", "OR", "NAND", "NOR", "XOR", "EQUAL"};
        const char* op = ops[pick(6)];
        body << name << " := " << op << "(" << any() << "," << any()
             << ");\n";
        avail.push_back(name);
        break;
      }
      case 1: {  // NOT
        std::string name = "w" + std::to_string(locals++);
        decls << "SIGNAL " << name << ": boolean;\n";
        body << name << " := NOT " << any() << ";\n";
        avail.push_back(name);
        break;
      }
      case 2: {  // register
        std::string name = "r" + std::to_string(regs++);
        decls << "SIGNAL " << name << ": REG;\n";
        body << name << ".in := " << any() << ";\n";
        avail.push_back(name + ".out");
        break;
      }
      case 3: {  // conditionally driven multiplex with else branch
        std::string name = "m" + std::to_string(muxes++);
        decls << "SIGNAL " << name << ": multiplex;\n";
        std::string c = any();
        body << "IF " << c << " THEN " << name << " := " << any()
             << " ELSE " << name << " := " << any() << " END;\n";
        avail.push_back(name);
        break;
      }
      case 4: {  // conditionally loaded register (keeps value otherwise)
        std::string name = "r" + std::to_string(regs++);
        decls << "SIGNAL " << name << ": REG;\n";
        body << "IF " << any() << " THEN " << name << ".in := " << any()
             << " END;\n";
        avail.push_back(name + ".out");
        break;
      }
    }
  }
  body << "o0 := " << any() << ";\n";
  body << "o1 := " << any() << ";\n";

  os << decls.str() << "BEGIN\n" << body.str() << "END;\nSIGNAL top: t;\n";
  return {os.str(), numInputs, 2};
}

class EvaluatorEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvaluatorEquivalence, FiringMatchesNaive) {
  const uint64_t seed = GetParam();
  RandomProgram prog = generate(seed, 30);
  Built b = buildOk(prog.source, "top");
  ASSERT_NE(b.design, nullptr) << prog.source;
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);

  Simulation fire(g, EvaluatorKind::Firing);
  Simulation naive(g, EvaluatorKind::Naive);
  std::mt19937_64 rng(seed ^ 0xABCDEF);
  for (int cyc = 0; cyc < 20; ++cyc) {
    for (int i = 0; i < prog.numInputs; ++i) {
      // Mix defined and undefined inputs.
      int v = static_cast<int>(rng() % 3);
      Logic l = v == 0 ? Logic::Zero : v == 1 ? Logic::One : Logic::Undef;
      fire.setInput("i" + std::to_string(i), l);
      naive.setInput("i" + std::to_string(i), l);
    }
    fire.step();
    naive.step();
    ASSERT_EQ(fire.output("o0"), naive.output("o0"))
        << "cycle " << cyc << " seed " << seed << "\n" << prog.source;
    ASSERT_EQ(fire.output("o1"), naive.output("o1"))
        << "cycle " << cyc << " seed " << seed;
    // Every net of the design must agree, not just the outputs.
    for (NetId n = 0; n < b.design->netlist.netCount(); n += 7) {
      ASSERT_EQ(fire.netValue(n), naive.netValue(n))
          << "net " << b.design->netlist.net(n).name << " cycle " << cyc
          << " seed " << seed;
    }
  }
  EXPECT_EQ(fire.errors().size(), naive.errors().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorEquivalence,
                         ::testing::Range<uint64_t>(1, 26));

TEST(EvaluatorProperty, FiringDoesLessWorkOnDeepCircuits) {
  // A deep AND chain where input 0 kills everything: the firing evaluator
  // short-circuits, the naive evaluator sweeps to the full depth.
  std::ostringstream os;
  os << "TYPE t = COMPONENT (IN a, b: boolean; OUT o: boolean) IS\n";
  const int kDepth = 64;
  for (int i = 0; i < kDepth; ++i)
    os << "SIGNAL w" << i << ": boolean;\n";
  os << "BEGIN\n";
  os << "w0 := AND(a, b);\n";
  for (int i = 1; i < kDepth; ++i)
    os << "w" << i << " := AND(w" << (i - 1) << ", b);\n";
  os << "o := w" << (kDepth - 1) << ";\nEND;\nSIGNAL top: t;\n";

  Built b = buildOk(os.str(), "top");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation fire(g, EvaluatorKind::Firing);
  Simulation naive(g, EvaluatorKind::Naive);
  for (Simulation* s : {&fire, &naive}) {
    s->setInput("a", Logic::Zero);
    s->setInput("b", Logic::One);
    s->step();
    EXPECT_EQ(s->output("o"), Logic::Zero);
  }
  // Naive pays one full sweep per level of depth.
  EXPECT_GT(naive.stats().sweeps, static_cast<uint64_t>(kDepth / 2));
  EXPECT_EQ(fire.stats().sweeps, 0u);
  EXPECT_LT(fire.stats().nodeFirings, naive.stats().nodeFirings / 4);
}

}  // namespace
}  // namespace zeus::test

// Robustness: the frontend must never crash — random inputs produce
// diagnostics, not undefined behaviour; lazy instantiation prunes unused
// hardware exactly as §4.2 promises.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "src/parser/parser.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

TEST(Robustness, ParserSurvivesRandomBytes) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string junk;
    size_t len = rng() % 400;
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(' ' + rng() % 95));
    }
    auto comp = Compilation::fromSource("junk.zeus", junk);
    // Must terminate without crashing; ok() may be anything.
    (void)comp->ok();
  }
}

TEST(Robustness, ParserSurvivesRandomTokenSoup) {
  const char* tokens[] = {
      "TYPE", "COMPONENT", "BEGIN", "END", "SIGNAL", "CONST", "IF", "THEN",
      "ELSE", "FOR", "TO", "DO", "WHEN", "OTHERWISE", "WITH", "RESULT",
      "ARRAY", "OF", "IN", "OUT", "USES", "SEQUENTIAL", "PARALLEL", "(", ")",
      "[", "]", "{", "}", ":=", "==", "..", ";", ",", ":", "=", "*", "+",
      "-", "a", "b", "t", "boolean", "multiplex", "REG", "1", "2", "0",
      "BIN", "NUM", "AND", "OR", "NOT", "CLK", "RSET",
  };
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup;
    size_t len = rng() % 120;
    for (size_t i = 0; i < len; ++i) {
      soup += tokens[rng() % (sizeof(tokens) / sizeof(tokens[0]))];
      soup += ' ';
    }
    auto comp = Compilation::fromSource("soup.zeus", soup);
    (void)comp->ok();
  }
}

TEST(Robustness, ElaboratorSurvivesMutatedPrograms) {
  // Take a valid program and delete random spans: the pipeline must
  // produce diagnostics or succeed, never crash.
  const std::string base = R"(
TYPE inner = COMPONENT (IN a: boolean; OUT b: boolean) IS
BEGIN b := NOT a END;
t(n) = COMPONENT (IN a: ARRAY[1..n] OF boolean;
                  OUT o: ARRAY[1..n] OF boolean) IS
  SIGNAL x: ARRAY[1..n] OF inner;
  SIGNAL m: multiplex;
BEGIN
  x(a, o);
  IF a[1] THEN m := a[2] END;
  o[1] == *
END;
SIGNAL top: t(4);
)";
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = base;
    size_t cut = rng() % mutated.size();
    size_t len = 1 + rng() % 25;
    mutated.erase(cut, len);
    auto comp = Compilation::fromSource("mut.zeus", mutated);
    if (comp->ok()) {
      auto design = comp->elaborate("top");
      (void)design;
    }
  }
}

TEST(Robustness, UnusedComponentsAreNeverGenerated) {
  // §4.2: "this hardware is only generated if it is used in connection or
  // assignment statements later on".
  const char* withUnused = R"(
TYPE big = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL r: ARRAY[1..100] OF REG;
BEGIN
  FOR i := 1 TO 100 DO r[i].in := a END;
  b := r[100].out
END;
t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL unusedgiant: big;
BEGIN
  o := NOT a
END;
SIGNAL top: t;
)";
  Built b = buildOk(withUnused, "top");
  ASSERT_NE(b.design, nullptr);
  // Only the NOT gate and port wiring; the 100-register giant is pruned.
  EXPECT_LT(b.design->netlist.nodeCount(), 10u);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  EXPECT_EQ(g.regNodes.size(), 0u);
}

TEST(Robustness, RecursiveBaseCaseSignalsPruned) {
  // The routing-network idiom: the WHEN base case never touches the
  // recursive signals, so elaboration terminates and generates nothing
  // for them.
  const char* src = R"(
TYPE rec(n) = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL child: rec(n DIV 2);
BEGIN
  WHEN n <= 1 THEN
    b := a
  OTHERWISE
    child.a := a;
    b := child.b
  END
END;
SIGNAL top: rec(8);
)";
  Built b = buildOk(src, "top");
  ASSERT_NE(b.design, nullptr);
  // Depth log2(8)=3 of materialised children, then the chain stops.
  std::string tree;
  std::function<void(const InstanceData&, int)> walk =
      [&](const InstanceData& inst, int depth) {
        tree += std::string(depth, '.') + inst.path + "\n";
        for (const auto& [name, m] : inst.members) {
          if (m.obj.kind == ObjKind::Instance && m.obj.inst) {
            walk(*m.obj.inst, depth + 1);
          }
        }
      };
  walk(*b.design->top, 0);
  EXPECT_NE(tree.find("top.child.child.child\n"), std::string::npos);
  EXPECT_EQ(tree.find("child.child.child.child"), std::string::npos);
}

TEST(Robustness, RunawayRecursionDiagnosed) {
  // A recursive type whose guard never terminates must hit the depth
  // limit with a diagnostic, not a stack overflow.
  const char* src = R"(
TYPE rec(n) = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL child: rec(n + 1);
BEGIN
  child.a := a;
  b := child.b
END;
SIGNAL top: rec(1);
)";
  expectElabError(src, "top", Diag::RecursionTooDeep);
}

TEST(Robustness, DeepButBoundedRecursionWorks) {
  const char* src = R"(
TYPE chain(n) = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL child: chain(n - 1);
  SIGNAL r: REG;
BEGIN
  WHEN n = 0 THEN
    b := a
  OTHERWISE
    r.in := a;
    child.a := r.out;
    b := child.b
  END
END;
SIGNAL top: chain(100);
)";
  Built b = buildOk(src, "top");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  EXPECT_EQ(g.regNodes.size(), 100u);
  // The pipeline delays by 100 cycles.
  Simulation sim(g);
  sim.setInput("a", Logic::One);
  sim.step(100);
  EXPECT_EQ(sim.output("b"), Logic::Undef);
  sim.step();
  EXPECT_EQ(sim.output("b"), Logic::One);
}

TEST(Robustness, BatchSimErrorsAreDeterministicallyOrdered) {
  // Contract on BatchSimulation::errors(): records are sorted by
  // (cycle, lane, net name), independent of evaluation order — consumers
  // diff error logs across runs and engines.
  const char* src = R"(
TYPE t = COMPONENT (IN a, b: boolean; OUT o, p: boolean) IS
  SIGNAL m: multiplex;
  SIGNAL n: multiplex;
BEGIN
  IF a THEN m := 1 END;
  IF b THEN m := 0 END;
  IF a THEN n := 0 END;
  IF b THEN n := 1 END;
  o := m;
  p := n
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  BatchSimulation batch(g, 8);
  // Odd lanes contend on both nets every cycle; even lanes stay clean.
  for (size_t l = 0; l < batch.lanes(); ++l) {
    batch.setInput(l, "a", logicFromBool(l % 2));
    batch.setInput(l, "b", logicFromBool(l % 2));
  }
  batch.step(3);
  const std::vector<SimError>& errs = batch.errors();
  // 3 cycles x 4 contending lanes x 2 nets.
  ASSERT_EQ(errs.size(), 24u);
  for (size_t i = 1; i < errs.size(); ++i) {
    auto key = [](const SimError& e) {
      return std::tuple(e.cycle, e.lane, e.netName);
    };
    EXPECT_LT(key(errs[i - 1]), key(errs[i]))
        << "errors out of order at index " << i;
  }
  for (const SimError& e : errs) {
    EXPECT_EQ(e.lane % 2, 1) << "clean lane reported an error";
  }
}

}  // namespace
}  // namespace zeus::test

// Structural property tests: randomly generated programs that use the
// *structural* half of the language — arrays, records, component
// instantiation with connection statements, aliasing, NUM indexing and
// replication — must elaborate deterministically and simulate identically
// under both evaluators.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

struct Gen {
  std::mt19937_64 rng;
  explicit Gen(uint64_t seed) : rng(seed) {}
  int pick(int n) { return static_cast<int>(rng() % n); }
};

/// Builds a random but legal-by-construction structural program.
std::string generate(uint64_t seed) {
  Gen g(seed);
  std::ostringstream os;
  const int width = 2 + g.pick(3);  // element array width

  os << "TYPE word = ARRAY[1.." << width << "] OF boolean;\n";
  // A small combinational element used through connections.
  os << "elem = COMPONENT (IN a: word; OUT b: word) IS\n"
     << "BEGIN\n";
  switch (g.pick(3)) {
    case 0: os << "  b := NOT a\n"; break;
    case 1: os << "  b := AND(a, NOT a)\n"; break;  // constant zeros
    default: os << "  b := a\n"; break;
  }
  os << "END;\n";

  // A registered element.
  os << "delayed = COMPONENT (IN a: word; OUT b: word) IS\n"
     << "  SIGNAL r: ARRAY[1.." << width << "] OF REG;\n"
     << "BEGIN\n  r.in := a;\n  b := r.out\nEND;\n";

  const int lanes = 2 + g.pick(3);
  os << "t = COMPONENT (IN din: ARRAY[1.." << lanes << "] OF word; "
     << "IN sel: ARRAY[1..2] OF boolean; OUT dout: word) IS\n";
  os << "  SIGNAL stage1: ARRAY[1.." << lanes << "] OF elem;\n";
  os << "  SIGNAL stage2: ARRAY[1.." << lanes << "] OF delayed;\n";
  os << "  SIGNAL mid: ARRAY[1.." << lanes << "] OF word;\n";
  os << "  SIGNAL bus: ARRAY[1.." << width << "] OF multiplex;\n";
  os << "BEGIN\n";
  // Connection over the whole arrays (bit distribution).
  os << "  stage1(din, mid);\n";
  os << "  FOR i := 1 TO " << lanes << " DO\n"
     << "    stage2[i](mid[i], *)\n"
     << "  END;\n";
  // A NUM-selected read of the delayed outputs onto a multiplex bus.
  os << "  bus := stage2[NUM(sel)].b;\n";
  os << "  dout := bus;\n";
  os << "END;\n";
  os << "SIGNAL top: t;\n";
  return os.str();
}

class StructuralEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StructuralEquivalence, FiringMatchesNaive) {
  const uint64_t seed = GetParam();
  std::string source = generate(seed);
  Built b = buildOk(source, "top");
  ASSERT_NE(b.design, nullptr) << source;
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);

  Simulation fire(g, EvaluatorKind::Firing);
  Simulation naive(g, EvaluatorKind::Naive);
  std::mt19937_64 rng(seed * 31 + 1);
  const Port* din = b.design->findPort("din");
  ASSERT_NE(din, nullptr);
  for (int cyc = 0; cyc < 10; ++cyc) {
    std::vector<Logic> bits(din->nets.size());
    for (Logic& bit : bits) {
      int v = static_cast<int>(rng() % 4);
      bit = v == 0   ? Logic::Zero
            : v == 1 ? Logic::One
            : v == 2 ? Logic::Undef
                     : Logic::Zero;
    }
    fire.setInput("din", bits);
    naive.setInput("din", bits);
    uint64_t sel = rng() % 4;
    fire.setInputUint("sel", sel);
    naive.setInputUint("sel", sel);
    fire.step();
    naive.step();
    for (NetId n = 0; n < b.design->netlist.netCount(); ++n) {
      ASSERT_EQ(fire.netValue(n), naive.netValue(n))
          << "seed " << seed << " cycle " << cyc << " net "
          << b.design->netlist.net(n).name << "\n" << source;
    }
  }
}

TEST_P(StructuralEquivalence, ElaborationIsDeterministic) {
  const uint64_t seed = GetParam();
  std::string source = generate(seed);
  Built a = buildOk(source, "top");
  Built b = buildOk(source, "top");
  ASSERT_NE(a.design, nullptr);
  ASSERT_NE(b.design, nullptr);
  ASSERT_EQ(a.design->netlist.netCount(), b.design->netlist.netCount());
  ASSERT_EQ(a.design->netlist.nodeCount(), b.design->netlist.nodeCount());
  for (NetId i = 0; i < a.design->netlist.netCount(); ++i) {
    EXPECT_EQ(a.design->netlist.net(i).name, b.design->netlist.net(i).name);
    EXPECT_EQ(a.design->netlist.find(i), b.design->netlist.find(i));
  }
  for (NodeId i = 0; i < a.design->netlist.nodeCount(); ++i) {
    EXPECT_EQ(a.design->netlist.node(i).op, b.design->netlist.node(i).op);
    EXPECT_EQ(a.design->netlist.node(i).inputs,
              b.design->netlist.node(i).inputs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructuralEquivalence,
                         ::testing::Range<uint64_t>(100, 115));

TEST(StructuralProperty, NumWriteFanoutMatchesAcrossEvaluators) {
  // Guarded NUM *writes* (demux) with both evaluators, sweeping the
  // address including unreachable ones.
  const char* src = R"(
TYPE t = COMPONENT (IN sel: ARRAY[1..3] OF boolean; IN v: boolean;
                    IN we: boolean;
                    OUT q: ARRAY[0..5] OF boolean) IS
  SIGNAL r: ARRAY[0..5] OF REG;
BEGIN
  IF we THEN
    r[NUM(sel)].in := v
  END;
  FOR i := 0 TO 5 DO q[i] := r[i].out END
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation fire(g, EvaluatorKind::Firing);
  Simulation naive(g, EvaluatorKind::Naive);
  for (Simulation* sim : {&fire, &naive}) {
    sim->setInput("we", Logic::One);
    for (uint64_t a = 0; a < 8; ++a) {  // 6 and 7 address nothing
      sim->setInputUint("sel", a);
      sim->setInput("v", logicFromBool(a % 2));
      sim->step();
    }
  }
  std::vector<Logic> f = fire.outputBits("q");
  std::vector<Logic> n = naive.outputBits("q");
  EXPECT_EQ(f, n);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(f[i], logicFromBool(i % 2)) << i;
  }
}

}  // namespace
}  // namespace zeus::test

// Diagnostic coverage sweep: one minimal program per diagnostic code that
// earlier suites do not already pin down, asserted by code rather than by
// message text.
#include <gtest/gtest.h>

#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

struct Case {
  const char* label;
  const char* source;
  const char* top;  ///< empty: frontend-only check
  Diag expect;
};

const Case kCases[] = {
    {"num_address_too_wide",
     R"(TYPE t = COMPONENT (IN sel: ARRAY[1..31] OF boolean;
                            IN v: ARRAY[0..3] OF boolean;
                            OUT o: boolean) IS
BEGIN o := v[NUM(sel)] END;
SIGNAL top: t;)",
     "top", Diag::NumIndexNotConstantWidth},

    {"function_wrong_arity",
     R"(TYPE f = COMPONENT (IN a: boolean) : boolean IS
BEGIN RESULT a END;
t = COMPONENT (IN a: boolean; OUT o: boolean) IS
BEGIN o := f(a, a) END;
SIGNAL top: t;)",
     "top", Diag::WrongArgumentCount},

    {"equal_needs_two",
     R"(TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
BEGIN o := EQUAL(a) END;
SIGNAL top: t;)",
     "top", Diag::WrongArgumentCount},

    {"calling_non_function",
     R"(TYPE c = COMPONENT (IN a: boolean; OUT b: boolean) IS
BEGIN b := a END;
t = COMPONENT (IN a: boolean; OUT o: boolean) IS
BEGIN o := c(a) END;
SIGNAL top: t;)",
     "top", Diag::NotAFunctionComponent},

    {"unknown_function",
     R"(TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
BEGIN o := mystery(a) END;
SIGNAL top: t;)",
     "top", Diag::UnknownIdentifier},

    {"unknown_signal",
     R"(TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
BEGIN o := nothere END;
SIGNAL top: t;)",
     "top", Diag::UnknownIdentifier},

    {"unknown_field",
     R"(TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL r: REG;
BEGIN r.in := a; o := r.bogus END;
SIGNAL top: t;)",
     "top", Diag::UnknownIdentifier},

    {"index_out_of_range",
     R"(TYPE t = COMPONENT (IN v: ARRAY[1..4] OF boolean; OUT o: boolean) IS
BEGIN o := v[9] END;
SIGNAL top: t;)",
     "top", Diag::IndexOutOfRange},

    {"record_with_result_type",
     R"(TYPE r = COMPONENT (a: multiplex) : boolean;
t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL x: r;
BEGIN o := a END;
SIGNAL top: t;)",
     "top", Diag::RecordTypeHasBody},

    {"unknown_top",
     R"(TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
BEGIN o := a END;
SIGNAL top: t;)",
     "nosuch", Diag::UnknownIdentifier},

    {"top_is_wire",
     R"(SIGNAL top: boolean;)", "top", Diag::NotAComponentType},

    {"top_is_record",
     R"(TYPE r = COMPONENT (a: multiplex);
SIGNAL top: r;)",
     "top", Diag::NotAComponentType},

    {"division_by_zero_in_type",
     R"(TYPE t(n) = COMPONENT (IN a: ARRAY[1..8 DIV n] OF boolean;
                              OUT o: boolean) IS
BEGIN o := a[1] END;
SIGNAL top: t(0);)",
     "top", Diag::DivisionByZero},

    {"number_as_wide_signal",
     R"(TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
BEGIN o := 5 END;
SIGNAL top: t;)",
     "top", Diag::WidthMismatch},

    {"star_in_gate",
     R"(TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
BEGIN o := AND(a, *) END;
SIGNAL top: t;)",
     "top", Diag::ExpectedExpression},

    {"two_flexible_stars",
     R"(TYPE t = COMPONENT (IN a: boolean; OUT o: ARRAY[1..4] OF boolean) IS
BEGIN o := (*, a, *) END;
SIGNAL top: t;)",
     "top", Diag::WidthMismatch},

    {"with_on_num",
     R"(TYPE inner = COMPONENT (IN a: boolean; OUT b: boolean) IS
BEGIN b := a END;
t = COMPONENT (IN sel: ARRAY[1..2] OF boolean; IN a: boolean;
               OUT o: boolean) IS
  SIGNAL x: ARRAY[0..3] OF inner;
BEGIN
  FOR i := 0 TO 3 DO x[i](a, *) END;
  WITH x[NUM(sel)] DO o := b END
END;
SIGNAL top: t;)",
     "top", Diag::UnexpectedToken},

    {"connection_via_num",
     R"(TYPE inner = COMPONENT (IN a: boolean; OUT b: boolean) IS
BEGIN b := a END;
t = COMPONENT (IN sel: ARRAY[1..2] OF boolean; IN a: boolean;
               OUT o: boolean) IS
  SIGNAL x: ARRAY[0..3] OF inner;
BEGIN
  x[NUM(sel)](a, o)
END;
SIGNAL top: t;)",
     "top", Diag::ConnectionOnNonComponent},

    {"in_and_out_substructure",
     R"(TYPE inner = COMPONENT (OUT x: boolean);
t = COMPONENT (IN p: inner; OUT o: boolean) IS
BEGIN o := p.x END;
SIGNAL top: t;)",
     "top", Diag::SubstructureInAndOut},

    {"operators_on_signals",
     R"(TYPE t = COMPONENT (IN a, b: boolean; OUT o: boolean) IS
BEGIN o := a + b END;
SIGNAL top: t;)",
     "top", Diag::NotAConstant},
};

class DiagSweep : public ::testing::TestWithParam<Case> {};

TEST_P(DiagSweep, ProducesExpectedCode) {
  const Case& c = GetParam();
  auto comp = Compilation::fromSource(std::string(c.label) + ".zeus",
                                      c.source);
  if (comp->ok() && c.top[0] != '\0') {
    auto design = comp->elaborate(c.top);
    EXPECT_EQ(design, nullptr) << c.label << " unexpectedly elaborated";
  }
  EXPECT_TRUE(comp->diags().has(c.expect))
      << c.label << "\n" << comp->diagnosticsText();
}

std::string nameOf(const ::testing::TestParamInfo<Case>& i) {
  return i.param.label;
}

INSTANTIATE_TEST_SUITE_P(Codes, DiagSweep, ::testing::ValuesIn(kCases),
                         nameOf);

}  // namespace
}  // namespace zeus::test

// Unit tests for the batch-request mode (src/core/batch_serve.h): the
// strict JSON request parser, the content-hash compile cache, per-request
// error isolation and the zeus-serve-v1 response shape.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "src/core/batch_serve.h"

namespace zeus::test {
namespace {

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(Serve, MalformedJsonYieldsStructuredError) {
  ServeStats stats;
  for (const char* bad :
       {"", "{", "not json", "{\"requests\": 3}", "[1,2]",
        "{\"requests\": [{\"id\": \"x\", \"cycles\": -1}]}",
        "{\"requests\": [\"nope\"]}"}) {
    std::string resp = runServeBatch(bad, ServeOptions{}, &stats);
    EXPECT_TRUE(contains(resp, "zeus-serve-v1")) << bad;
    EXPECT_TRUE(contains(resp, "\"error\"")) << bad;
    EXPECT_GE(stats.failures, 1u) << bad;
  }
}

TEST(Serve, RequestsShareOneCompilePerDesign) {
  const std::string req = R"({"requests": [
    {"id": "r1", "example": "adders", "cycles": 4, "lanes": 8},
    {"id": "r2", "example": "adders", "cycles": 4, "lanes": 8, "threads": 2},
    {"id": "r3", "example": "mux4", "cycles": 2, "lanes": 4}
  ]})";
  ServeStats stats;
  std::string resp = runServeBatch(req, ServeOptions{}, &stats);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_EQ(stats.compiles, 2u);   // adders once, mux4 once
  EXPECT_EQ(stats.cacheHits, 1u);  // r2 reuses r1's design
  EXPECT_TRUE(contains(resp, "\"id\": \"r1\", \"ok\": true"));
  EXPECT_TRUE(contains(resp, "\"cache\": \"hit\""));
}

TEST(Serve, DeterministicChecksumAcrossThreadCounts) {
  const std::string req = R"({"requests": [
    {"id": "a", "example": "adders", "cycles": 6, "lanes": 96, "threads": 1},
    {"id": "b", "example": "adders", "cycles": 6, "lanes": 96, "threads": 4}
  ]})";
  ServeStats stats;
  std::string resp = runServeBatch(req, ServeOptions{}, &stats);
  ASSERT_EQ(stats.failures, 0u) << resp;
  // Both rows must print the same checksum token.
  const std::string key = "\"checksum\": ";
  size_t p1 = resp.find(key);
  ASSERT_NE(p1, std::string::npos);
  size_t p2 = resp.find(key, p1 + 1);
  ASSERT_NE(p2, std::string::npos);
  EXPECT_EQ(resp.substr(p1, resp.find(',', p1) - p1),
            resp.substr(p2, resp.find(',', p2) - p2));
}

TEST(Serve, BadRequestsDoNotPoisonGoodOnes) {
  const std::string req = R"({"requests": [
    {"id": "good", "example": "mux4", "cycles": 2},
    {"id": "unknown", "example": "no-such-example"},
    {"id": "nosource", "cycles": 2},
    {"id": "both", "example": "mux4", "source": "x", "top": "t"},
    {"id": "badopt", "example": "mux4", "opt": 9}
  ]})";
  ServeStats stats;
  std::string resp = runServeBatch(req, ServeOptions{}, &stats);
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.failures, 4u);
  EXPECT_TRUE(contains(resp, "\"id\": \"good\", \"ok\": true"));
  EXPECT_TRUE(contains(resp, "unknown example"));
}

TEST(Serve, ResponseCarriesBuildLatencyAndCounterDeltas) {
  const std::string req = R"({"requests": [
    {"id": "r1", "example": "adders", "cycles": 4, "lanes": 8},
    {"id": "r2", "example": "adders", "cycles": 4, "lanes": 8}
  ]})";
  ServeStats stats;
  std::string resp = runServeBatch(req, ServeOptions{}, &stats);
  ASSERT_EQ(stats.failures, 0u) << resp;

  // Build-info stamp: attributable artifacts (satellite of PR 8).
  EXPECT_TRUE(contains(resp, "\"build\": {\"git\": "));

  // Per-request wall time and counter DELTAS — r1 compiled, r2 hit the
  // cache, and each row reports only its own work, not process totals.
  EXPECT_TRUE(contains(resp, "\"latency_us\": "));
  EXPECT_TRUE(contains(resp, "\"serve-compiles\": 1"));
  EXPECT_TRUE(contains(resp, "\"serve-cache-hits\": 1"));
  // Every row's serve-requests delta is exactly 1 (never cumulative).
  size_t rows = 0;
  for (size_t at = resp.find("\"serve-requests\": ");
       at != std::string::npos;
       at = resp.find("\"serve-requests\": ", at + 1)) {
    ++rows;
    EXPECT_EQ(resp[at + 18], '1');
    EXPECT_FALSE(std::isdigit(static_cast<unsigned char>(resp[at + 19])));
  }
  EXPECT_EQ(rows, 2u);

  // Batch-level latency histograms.
  EXPECT_TRUE(contains(resp, "\"latency\": "));
  EXPECT_TRUE(contains(resp, "\"serve.request_us\""));
  EXPECT_TRUE(contains(resp, "\"serve.cache_hit_us\""));
  EXPECT_TRUE(contains(resp, "\"serve.cache_miss_us\""));

  // Stats mirror the response: 2 requests recorded, 1 hit, 1 miss.
  EXPECT_EQ(stats.requestUs.count(), 2u);
  EXPECT_EQ(stats.cacheHitUs.count(), 1u);
  EXPECT_EQ(stats.cacheMissUs.count(), 1u);
}

TEST(Serve, InlineSourceCompilesAndFailsGracefully) {
  const std::string req = R"({"requests": [
    {"id": "broken", "source": "THIS IS NOT ZEUS", "top": "t", "cycles": 2}
  ]})";
  ServeStats stats;
  std::string resp = runServeBatch(req, ServeOptions{}, &stats);
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_TRUE(contains(resp, "\"ok\": false"));
  EXPECT_TRUE(contains(resp, "compile failed"));
}

}  // namespace
}  // namespace zeus::test

// Unit tests for the layout language (§6): geometry transforms, directions
// of separation, orientation changes, boundary pins and the solver.
#include <gtest/gtest.h>

#include "src/layout/geometry.h"
#include "src/layout/render.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

TEST(Geometry, DirectionNames) {
  EXPECT_EQ(directionFromName("lefttoright"), Direction::LeftToRight);
  EXPECT_EQ(directionFromName("toptobottom"), Direction::TopToBottom);
  EXPECT_EQ(directionFromName("bottomlefttotopright"),
            Direction::BottomLeftToTopRight);
  EXPECT_EQ(directionFromName("nope"), std::nullopt);
  for (Direction d :
       {Direction::TopToBottom, Direction::BottomToTop,
        Direction::LeftToRight, Direction::RightToLeft,
        Direction::TopLeftToBottomRight, Direction::BottomRightToTopLeft,
        Direction::TopRightToBottomLeft, Direction::BottomLeftToTopRight}) {
    EXPECT_EQ(directionFromName(directionName(d)), d);
  }
}

TEST(Geometry, OrientationNames) {
  EXPECT_EQ(orientationFromName(""), Orientation::Identity);
  EXPECT_EQ(orientationFromName("rotate90"), Orientation::Rotate90);
  EXPECT_EQ(orientationFromName("flip135"), Orientation::Flip135);
  EXPECT_EQ(orientationFromName("spin"), std::nullopt);
}

TEST(Geometry, OrientedSize) {
  int64_t w, h;
  orientedSize(Orientation::Rotate90, 3, 5, w, h);
  EXPECT_EQ(w, 5);
  EXPECT_EQ(h, 3);
  orientedSize(Orientation::Rotate180, 3, 5, w, h);
  EXPECT_EQ(w, 3);
  EXPECT_EQ(h, 5);
  orientedSize(Orientation::Flip45, 3, 5, w, h);
  EXPECT_EQ(w, 5);
  EXPECT_EQ(h, 3);
}

TEST(Geometry, OrientRectRoundTripRotate) {
  // rotate90 four times is the identity.
  Rect r{1, 0, 2, 1};
  int64_t w = 4, h = 3;
  Rect cur = r;
  int64_t cw = w, ch = h;
  for (int i = 0; i < 4; ++i) {
    cur = orientRect(Orientation::Rotate90, cur, cw, ch);
    std::swap(cw, ch);
  }
  EXPECT_EQ(cur, r);
}

TEST(Geometry, FlipsAreInvolutions) {
  Rect r{1, 2, 2, 1};
  for (Orientation o : {Orientation::Flip0, Orientation::Flip90,
                        Orientation::Flip45, Orientation::Flip135,
                        Orientation::Rotate180}) {
    int64_t w = 5, h = 4;
    int64_t ow, oh;
    orientedSize(o, w, h, ow, oh);
    Rect once = orientRect(o, r, w, h);
    Rect twice = orientRect(o, once, ow, oh);
    EXPECT_EQ(twice, r) << orientationName(o);
  }
}

TEST(Geometry, RectOverlap) {
  Rect a{0, 0, 2, 2};
  Rect b{1, 1, 2, 2};
  Rect c{2, 0, 1, 1};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));  // touching edges do not overlap
}

// ---- solver ----

const char* kCellPair = R"(
TYPE cell = COMPONENT (IN a: boolean; OUT b: boolean) IS
BEGIN b := a END;
t = COMPONENT (IN a: boolean; OUT b: boolean)
  { BOTTOM a; b } IS
  SIGNAL x, y: cell;
  { ORDER %DIR% x; y END }
BEGIN
  x(a, y.a);
  y.b == *;
  b := x.b
END;
SIGNAL top: t;
)";

std::string withDir(const std::string& dir) {
  std::string s = kCellPair;
  s.replace(s.find("%DIR%"), 5, dir);
  return s;
}

TEST(LayoutSolver, LeftToRight) {
  Built b = buildOk(withDir("lefttoright"), "top");
  LayoutResult lr = solveLayout(*b.design, b.comp->diags());
  const PlacedInstance* x = lr.find("top.x");
  const PlacedInstance* y = lr.find("top.y");
  ASSERT_NE(x, nullptr);
  ASSERT_NE(y, nullptr);
  // "x1 is left of x2": the right edge of x is not right of y's left edge.
  EXPECT_LE(x->rect.right(), y->rect.x);
  EXPECT_EQ(lr.bounds.w, 2);
  EXPECT_EQ(lr.bounds.h, 1);
}

TEST(LayoutSolver, RightToLeft) {
  Built b = buildOk(withDir("righttoleft"), "top");
  LayoutResult lr = solveLayout(*b.design, b.comp->diags());
  EXPECT_LE(lr.find("top.y")->rect.right(), lr.find("top.x")->rect.x);
}

TEST(LayoutSolver, TopToBottom) {
  Built b = buildOk(withDir("toptobottom"), "top");
  LayoutResult lr = solveLayout(*b.design, b.comp->diags());
  EXPECT_LE(lr.find("top.x")->rect.bottom(), lr.find("top.y")->rect.y);
  EXPECT_EQ(lr.bounds.w, 1);
  EXPECT_EQ(lr.bounds.h, 2);
}

TEST(LayoutSolver, Diagonal) {
  Built b = buildOk(withDir("toplefttobottomright"), "top");
  LayoutResult lr = solveLayout(*b.design, b.comp->diags());
  const Rect& x = lr.find("top.x")->rect;
  const Rect& y = lr.find("top.y")->rect;
  EXPECT_LE(x.right(), y.x);
  EXPECT_LE(x.bottom(), y.y);
  EXPECT_EQ(lr.bounds.w, 2);
  EXPECT_EQ(lr.bounds.h, 2);
}

TEST(LayoutSolver, BoundaryPinsRecorded) {
  Built b = buildOk(withDir("lefttoright"), "top");
  LayoutResult lr = solveLayout(*b.design, b.comp->diags());
  auto it = lr.pinsByInstance.find("top");
  ASSERT_NE(it, lr.pinsByInstance.end());
  ASSERT_EQ(it->second.size(), 2u);
  EXPECT_EQ(it->second[0].name, "a");
  EXPECT_EQ(it->second[0].side, ast::BoundarySide::Bottom);
  EXPECT_EQ(it->second[1].name, "b");
}

TEST(LayoutSolver, UnknownDirectionDiagnosed) {
  Built b = buildOk(withDir("sideways"), "top");
  (void)solveLayout(*b.design, b.comp->diags());
  EXPECT_TRUE(b.comp->diags().has(Diag::LayoutUnknownDirection));
}

TEST(LayoutSolver, AsciiRendererDrawsCells) {
  Built b = buildOk(withDir("lefttoright"), "top");
  LayoutResult lr = solveLayout(*b.design, b.comp->diags());
  std::string art = renderAscii(lr);
  EXPECT_NE(art.find("ll"), std::string::npos);  // two 'cell' cells
}

TEST(LayoutSolver, SvgRendererEmitsRects) {
  Built b = buildOk(withDir("lefttoright"), "top");
  LayoutResult lr = solveLayout(*b.design, b.comp->diags());
  std::string svg = renderSvg(lr);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("top.x"), std::string::npos);
  EXPECT_NE(svg.find("top.y"), std::string::npos);
}

TEST(LayoutSolver, OrientationSwapsChildDims) {
  const char* src = R"(
TYPE cell = COMPONENT (IN a: boolean; OUT b: boolean) IS
BEGIN b := a END;
wide = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL p, q: cell;
  { ORDER lefttoright p; q END }
BEGIN
  p(a, q.a); b := q.b
END;
t = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL w: wide;
  { ORDER lefttoright rotate90 w END }
BEGIN
  w(a, b)
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  LayoutResult lr = solveLayout(*b.design, b.comp->diags());
  // `wide` is 2x1; rotated it becomes 1x2.
  EXPECT_EQ(lr.bounds.w, 1);
  EXPECT_EQ(lr.bounds.h, 2);
  // Its two cells must sit at distinct vertical positions.
  const Rect& p = lr.find("top.w.p")->rect;
  const Rect& q = lr.find("top.w.q")->rect;
  EXPECT_NE(p.y, q.y);
  EXPECT_EQ(p.x, q.x);
}

}  // namespace
}  // namespace zeus::test

// Semantics of aliasing at simulation time: aliased classes resolve as
// one signal, registers behind aliases keep on no-influence, and
// connection statements inside IF are properly guarded (§8 rule b).
#include <gtest/gtest.h>

#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

TEST(AliasSemantics, RegisterInputThroughAliasedBus) {
  // A tri-state bus aliased straight into REG.in: when no driver is
  // active the register keeps its value; when one fires it loads.
  const char* src = R"(
TYPE t = COMPONENT (IN wa, wb, da, db: boolean; OUT q: boolean) IS
  SIGNAL bus: multiplex;
         r: REG;
BEGIN
  IF wa THEN bus := da END;
  IF wb THEN bus := db END;
  r.in == bus;
  q := r.out
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  ASSERT_NE(b.design, nullptr) << b.comp->diagnosticsText();
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  auto set = [&](int wa, int wb, int da, int db) {
    sim.setInput("wa", logicFromBool(wa));
    sim.setInput("wb", logicFromBool(wb));
    sim.setInput("da", logicFromBool(da));
    sim.setInput("db", logicFromBool(db));
    sim.step();
  };
  set(1, 0, 1, 0);  // load 1 through driver a
  set(0, 0, 0, 0);  // bus floats: register keeps
  EXPECT_EQ(sim.output("q"), Logic::One);
  set(0, 0, 0, 0);
  EXPECT_EQ(sim.output("q"), Logic::One);
  set(0, 1, 0, 0);  // load 0 through driver b
  set(0, 0, 1, 1);
  EXPECT_EQ(sim.output("q"), Logic::Zero);
  EXPECT_TRUE(sim.errors().empty());
  set(1, 1, 1, 0);  // both drivers: runtime check fires
  EXPECT_FALSE(sim.errors().empty());
}

TEST(AliasSemantics, AliasChainActsAsOneSignal) {
  const char* src = R"(
TYPE t = COMPONENT (IN en, d: boolean; OUT o1, o2, o3: boolean) IS
  SIGNAL m1, m2, m3: multiplex;
BEGIN
  m1 == m2;
  m3 == m2;
  IF en THEN m2 := d END;
  o1 := m1; o2 := m2; o3 := m3
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("en", Logic::One);
  sim.setInput("d", Logic::One);
  sim.step();
  EXPECT_EQ(sim.output("o1"), Logic::One);
  EXPECT_EQ(sim.output("o2"), Logic::One);
  EXPECT_EQ(sim.output("o3"), Logic::One);
  sim.setInput("en", Logic::Zero);
  sim.step();
  // Undriven class: boolean observers convert NOINFL to UNDEF.
  EXPECT_EQ(sim.output("o1"), Logic::Undef);
  EXPECT_EQ(sim.output("o3"), Logic::Undef);
}

TEST(AliasSemantics, ConnectionInsideIfIsGuarded) {
  // §8 rule b: a connection inside IF is rewritten to guarded
  // assignments.  The inner component's IN param is driven only when the
  // guard holds; its OUT drives the actual conditionally.
  const char* src = R"(
TYPE inv = COMPONENT (IN a: boolean; OUT b: boolean) IS
BEGIN b := NOT a END;
t = COMPONENT (IN en, d: boolean; OUT o: boolean) IS
  SIGNAL x: inv;
         res: multiplex;
BEGIN
  IF en THEN x(d, res) END;
  o := res
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  ASSERT_NE(b.design, nullptr) << b.comp->diagnosticsText();
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("en", Logic::One);
  sim.setInput("d", Logic::Zero);
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::One);
  sim.setInput("en", Logic::Zero);
  sim.step();
  // Guard off: res receives no influence, observed as UNDEF.
  EXPECT_EQ(sim.output("o"), Logic::Undef);
  EXPECT_TRUE(sim.errors().empty());
}

TEST(AliasSemantics, InoutPortChainsAcrossLevels) {
  // htree-style: INOUT multiplex ports aliased up two levels of
  // hierarchy, driven at the bottom, observed at the top.
  const char* src = R"(
TYPE leaf = COMPONENT (IN en, d: boolean; bus: multiplex) IS
BEGIN
  IF en THEN bus := d END
END;
mid = COMPONENT (IN en, d: boolean; bus: multiplex) IS
  SIGNAL l: leaf;
BEGIN
  l(en, d, *);
  bus == l.bus
END;
t = COMPONENT (IN en, d: boolean; OUT o: boolean) IS
  SIGNAL m: mid;
BEGIN
  m.en := en; m.d := d;
  o := m.bus
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  ASSERT_NE(b.design, nullptr) << b.comp->diagnosticsText();
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("en", Logic::One);
  sim.setInput("d", Logic::One);
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::One);
  sim.setInput("d", Logic::Zero);
  sim.step();
  EXPECT_EQ(sim.output("o"), Logic::Zero);
}

}  // namespace
}  // namespace zeus::test

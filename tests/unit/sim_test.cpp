// Unit tests for the simulation layer: register semantics (§5), runtime
// checks, RANDOM, the wave recorder, and evaluator statistics.
#include <gtest/gtest.h>

#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

const char* kRegPipe = R"(
TYPE t = COMPONENT (IN a: boolean; IN load: boolean; OUT b: boolean) IS
  SIGNAL r: REG;
BEGIN
  IF load THEN r.in := a END;
  b := r.out
END;
SIGNAL top: t;
)";

TEST(Registers, InitiallyUndef) {
  Built b = buildOk(kRegPipe, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("a", Logic::One);
  sim.setInput("load", Logic::Zero);
  sim.step();
  EXPECT_EQ(sim.output("b"), Logic::Undef);
}

TEST(Registers, LoadAndHold) {
  Built b = buildOk(kRegPipe, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("a", Logic::One);
  sim.setInput("load", Logic::One);
  sim.step();
  sim.setInput("load", Logic::Zero);
  sim.setInput("a", Logic::Zero);
  sim.step();
  EXPECT_EQ(sim.output("b"), Logic::One);  // value loaded last cycle
  sim.step(5);
  EXPECT_EQ(sim.output("b"), Logic::One);  // held while load = 0 (§5.1)
  sim.setInput("load", Logic::One);
  sim.step();
  sim.step();
  EXPECT_EQ(sim.output("b"), Logic::Zero);
}

TEST(Registers, OutReflectsPreviousCycleDuringWrite) {
  Built b = buildOk(kRegPipe, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("a", Logic::One);
  sim.setInput("load", Logic::One);
  sim.step();
  sim.setInput("a", Logic::Zero);
  sim.evaluateOnly();  // same cycle: write 0, read old 1
  EXPECT_EQ(sim.output("b"), Logic::One);
}

TEST(Registers, ShiftChainDelaysByOneCyclePerStage) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL r: ARRAY[1..3] OF REG;
BEGIN
  r[1].in := a;
  r[2].in := r[1].out;
  r[3].in := r[2].out;
  b := r[3].out
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  std::vector<Logic> seen;
  for (int i = 0; i < 8; ++i) {
    sim.setInput("a", logicFromBool(i == 0));  // single pulse
    sim.step();
    seen.push_back(sim.output("b"));
  }
  // The pulse injected in cycle 0 appears at b during cycle 3.
  EXPECT_EQ(seen[2], Logic::Undef);
  EXPECT_EQ(seen[3], Logic::One);
  EXPECT_EQ(seen[4], Logic::Zero);
}

TEST(RuntimeChecks, DoubleDriveReported) {
  const char* src = R"(
TYPE t = COMPONENT (IN a, b: boolean; OUT o: boolean) IS
  SIGNAL m: multiplex;
BEGIN
  IF a THEN m := 1 END;
  IF b THEN m := 0 END;
  o := m
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("a", Logic::One);
  sim.setInput("b", Logic::Zero);
  sim.step();
  EXPECT_TRUE(sim.errors().empty());
  EXPECT_EQ(sim.output("o"), Logic::One);
  // Both switches active: the paper's "burning transistors" guard fires.
  sim.setInput("b", Logic::One);
  sim.step();
  ASSERT_FALSE(sim.errors().empty());
  EXPECT_EQ(sim.errors()[0].cycle, 1u);
  EXPECT_EQ(sim.output("o"), Logic::Undef);
}

TEST(RuntimeChecks, NoDriveReadsNoInfluenceConvertedAtBooleanPort) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL m: multiplex;
BEGIN
  IF a THEN m := 1 END;
  o := m
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("a", Logic::Zero);
  sim.step();
  // m itself resolves to NOINFL; the boolean port observes UNDEF.
  EXPECT_EQ(sim.output("o"), Logic::Undef);
  EXPECT_TRUE(sim.errors().empty());
}

TEST(Random, DeterministicUnderSeed) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
BEGIN
  o := AND(a, RANDOM())
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  auto run = [&](uint64_t seed) {
    Simulation sim(g);
    sim.setRandomSeed(seed);
    sim.setInput("a", Logic::One);
    std::vector<Logic> out;
    for (int i = 0; i < 16; ++i) {
      sim.step();
      out.push_back(sim.output("o"));
    }
    return out;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // astronomically unlikely to collide
}

TEST(Wave, RecordsAndRenders) {
  Built b = buildOk(kRegPipe, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  WaveRecorder wave(sim);
  wave.watchPort("a");
  wave.watchPort("b");
  sim.setInput("load", Logic::One);
  for (int i = 0; i < 4; ++i) {
    sim.setInput("a", logicFromBool(i % 2));
    sim.step();
    wave.sample();
  }
  EXPECT_EQ(wave.sampleCount(), 4u);
  std::string table = wave.renderTable();
  EXPECT_NE(table.find("a"), std::string::npos);
  EXPECT_NE(table.find("0 1 0 1"), std::string::npos);
  std::string vcd = wave.renderVcd();
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(vcd.find("#3"), std::string::npos);
}

TEST(Stats, FiringCountsWork) {
  Built b = buildOk(kRegPipe, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("a", Logic::One);
  sim.setInput("load", Logic::One);
  sim.resetStats();
  sim.step(10);
  EXPECT_GT(sim.stats().nodeFirings, 0u);
  sim.resetStats();
  EXPECT_EQ(sim.stats().nodeFirings, 0u);
}

TEST(Simulation, PortErrors) {
  Built b = buildOk(kRegPipe, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  EXPECT_THROW(sim.setInput("nosuch", Logic::One), std::invalid_argument);
  EXPECT_THROW((void)sim.output("nosuch"), std::invalid_argument);
  EXPECT_THROW(sim.setInput("a", {Logic::One, Logic::Zero}),
               std::invalid_argument);
}

TEST(Simulation, ResetClearsState) {
  Built b = buildOk(kRegPipe, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("a", Logic::One);
  sim.setInput("load", Logic::One);
  sim.step(3);
  EXPECT_EQ(sim.cycle(), 3u);
  sim.reset();
  EXPECT_EQ(sim.cycle(), 0u);
  sim.setInput("a", Logic::Zero);
  sim.setInput("load", Logic::Zero);
  sim.step();
  EXPECT_EQ(sim.output("b"), Logic::Undef);  // register back to UNDEF
}

TEST(Simulation, RegisterSnapshotRoundTrip) {
  Built b = buildOk(kRegPipe, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("a", Logic::One);
  sim.setInput("load", Logic::One);
  sim.step();
  std::vector<Logic> snapshot = sim.saveRegisters();
  // Clobber the register, then restore.
  sim.setInput("a", Logic::Zero);
  sim.step(3);
  sim.step();
  EXPECT_EQ(sim.output("b"), Logic::Zero);
  sim.restoreRegisters(snapshot);
  sim.setInput("load", Logic::Zero);
  sim.step();
  EXPECT_EQ(sim.output("b"), Logic::One);
  EXPECT_THROW(sim.restoreRegisters({}), std::invalid_argument);
}

// The routing network's ports are 80 bits wide.  setInputUint must zero
// bits above 63 (a shift by >= 64 is undefined behaviour, not zero — the
// sanitize build catches regressions), and outputUint must refuse a
// value that cannot fit a uint64_t instead of corrupting it.
TEST(Simulation, WidePortUintAccessors) {
  const corpus::CorpusEntry* routing = nullptr;
  for (const auto& e : corpus::all()) {
    if (std::string(e.name) == "routing") routing = &e;
  }
  ASSERT_NE(routing, nullptr);
  std::string top;
  Built b = buildOk(corpusSource(*routing, &top), top);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);

  Simulation sim(g);
  sim.setInputUint("input", ~uint64_t{0});
  sim.step();
  std::vector<Logic> out = sim.outputBits("output");
  ASSERT_GT(out.size(), 64u);
  size_t ones = 0;
  for (Logic v : out) ones += v == Logic::One;
  EXPECT_EQ(ones, 64u);  // bits 64.. were seeded Zero, not garbage

  // All 80 bits One: the value genuinely doesn't fit a uint64_t.
  sim.setInput("input", std::vector<Logic>(out.size(), Logic::One));
  sim.step();
  EXPECT_EQ(sim.outputUint("output"), std::nullopt);

  BatchSimulation batch(g, 2);
  batch.setInputUint(0, "input", ~uint64_t{0});
  batch.step();
  std::vector<Logic> bout = batch.outputBits(0, "output");
  ones = 0;
  for (Logic v : bout) ones += v == Logic::One;
  EXPECT_EQ(ones, 64u);
  batch.setInput(0, "input", std::vector<Logic>(bout.size(), Logic::One));
  batch.step();
  EXPECT_EQ(batch.outputUint(0, "output"), std::nullopt);
}

}  // namespace
}  // namespace zeus::test

// Unit tests for compile-time constant evaluation (paper §3.1).
#include <gtest/gtest.h>

#include "src/parser/parser.h"
#include "src/sema/const_eval.h"

namespace zeus {
namespace {

struct Fixture {
  SourceManager sm;
  std::unique_ptr<DiagnosticEngine> diags;
  Env env;

  Fixture() {
    sm.addBuffer("dummy", "");
    diags = std::make_unique<DiagnosticEngine>(sm);
  }

  std::optional<ConstVal> eval(const std::string& text) {
    BufferId buf = sm.addBuffer("e", text);
    Parser parser(buf, *diags);
    auto e = parser.parseExpression();
    ConstEval ce(*diags);
    return ce.eval(*e, env);
  }

  std::optional<int64_t> num(const std::string& text) {
    auto v = eval(text);
    if (!v || !v->isNumber) return std::nullopt;
    return v->num;
  }
};

TEST(ConstEval, Arithmetic) {
  Fixture f;
  EXPECT_EQ(f.num("1 + 2 * 3"), 7);
  EXPECT_EQ(f.num("10 - 4"), 6);
  EXPECT_EQ(f.num("-5"), -5);
  EXPECT_EQ(f.num("2 * 2 * 2 * 2"), 16);
}

TEST(ConstEval, ModulaDivMod) {
  Fixture f;
  // Modula-2 DIV/MOD are floor division.
  EXPECT_EQ(f.num("7 DIV 2"), 3);
  EXPECT_EQ(f.num("7 MOD 2"), 1);
  EXPECT_EQ(f.num("-7 DIV 2"), -4);
  EXPECT_EQ(f.num("-7 MOD 2"), 1);
  EXPECT_EQ(f.num("7 DIV -2"), -4);
}

TEST(ConstEval, DivisionByZeroDiagnosed) {
  Fixture f;
  EXPECT_EQ(f.num("1 DIV 0"), std::nullopt);
  EXPECT_TRUE(f.diags->has(Diag::DivisionByZero));
}

TEST(ConstEval, Relations) {
  Fixture f;
  EXPECT_EQ(f.num("3 < 4"), 1);
  EXPECT_EQ(f.num("3 > 4"), 0);
  EXPECT_EQ(f.num("3 <= 3"), 1);
  EXPECT_EQ(f.num("3 >= 4"), 0);
  EXPECT_EQ(f.num("3 = 3"), 1);
  EXPECT_EQ(f.num("3 <> 3"), 0);
}

TEST(ConstEval, BooleanOperators) {
  Fixture f;
  EXPECT_EQ(f.num("1 AND 0"), 0);
  EXPECT_EQ(f.num("1 OR 0"), 1);
  EXPECT_EQ(f.num("NOT 0"), 1);
  EXPECT_EQ(f.num("NOT 7"), 0);
}

TEST(ConstEval, PredefinedFunctions) {
  Fixture f;
  EXPECT_EQ(f.num("odd(3)"), 1);
  EXPECT_EQ(f.num("odd(4)"), 0);
  EXPECT_EQ(f.num("odd(-3)"), 1);
  EXPECT_EQ(f.num("min(3,1,2)"), 1);
  EXPECT_EQ(f.num("max(3,1,2)"), 3);
}

TEST(ConstEval, NamedConstantsAndLoopVars) {
  Fixture f;
  f.env.defineConst("n", ConstVal::ofNumber(8));
  f.env.defineLoopVar("i", 3);
  EXPECT_EQ(f.num("n DIV 2"), 4);
  EXPECT_EQ(f.num("2*i - 1"), 5);
}

TEST(ConstEval, SignalConstants) {
  Fixture f;
  auto v = f.eval("(0,1,0)");
  ASSERT_TRUE(v.has_value());
  ASSERT_FALSE(v->isNumber);
  std::vector<Logic> bits = v->sig.flatten();
  std::vector<Logic> expect{Logic::Zero, Logic::One, Logic::Zero};
  EXPECT_EQ(bits, expect);
}

TEST(ConstEval, NestedSignalConstants) {
  Fixture f;
  auto v = f.eval("((0,1),(1,0),(0,0))");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->sig.flatten().size(), 6u);
  EXPECT_EQ(v->sig.elems.size(), 3u);
}

TEST(ConstEval, UndefAndNoinfl) {
  Fixture f;
  auto v = f.eval("(UNDEF,NOINFL)");
  ASSERT_TRUE(v.has_value());
  std::vector<Logic> expect{Logic::Undef, Logic::NoInfl};
  EXPECT_EQ(v->sig.flatten(), expect);
}

TEST(ConstEval, BinLsbFirst) {
  Fixture f;
  auto v = f.eval("BIN(10,5)");
  ASSERT_TRUE(v.has_value());
  // 10 = 01010b, index 1 = LSB.
  std::vector<Logic> expect{Logic::Zero, Logic::One, Logic::Zero,
                            Logic::One, Logic::Zero};
  EXPECT_EQ(v->sig.flatten(), expect);
}

TEST(ConstEval, BinNegativeWidthDiagnosed) {
  Fixture f;
  EXPECT_FALSE(f.eval("BIN(1, -1)").has_value());
  EXPECT_TRUE(f.diags->has(Diag::BadArrayBounds));
}

TEST(ConstEval, IndexingSignalConstants) {
  Fixture f;
  f.env.defineLoopVar("i", 2);
  auto v = f.eval("((0,0),(0,1),(1,0))[i]");
  ASSERT_TRUE(v.has_value());
  std::vector<Logic> expect{Logic::Zero, Logic::One};
  EXPECT_EQ(v->sig.flatten(), expect);
}

TEST(ConstEval, IndexOutOfRangeDiagnosed) {
  Fixture f;
  EXPECT_FALSE(f.eval("((0,0),(0,1))[3]").has_value());
  EXPECT_TRUE(f.diags->has(Diag::IndexOutOfRange));
}

TEST(ConstEval, SliceOfSignalConstant) {
  Fixture f;
  auto v = f.eval("(1,0,1,0)[2..3]");
  ASSERT_TRUE(v.has_value());
  std::vector<Logic> expect{Logic::Zero, Logic::One};
  EXPECT_EQ(v->sig.flatten(), expect);
}

TEST(ConstEval, UnknownNameDiagnosed) {
  Fixture f;
  EXPECT_FALSE(f.eval("nosuch + 1").has_value());
  EXPECT_TRUE(f.diags->has(Diag::NotAConstant));
}

TEST(ConstEval, SignalConstantWhereNumberExpected) {
  Fixture f;
  ConstEval ce(*f.diags);
  BufferId buf = f.sm.addBuffer("e", "(0,1)");
  Parser parser(buf, *f.diags);
  auto e = parser.parseExpression();
  EXPECT_EQ(ce.evalNumber(*e, f.env), std::nullopt);
  EXPECT_TRUE(f.diags->has(Diag::NotAConstant));
}

TEST(ConstEval, UsesListRestrictsLookup) {
  Fixture f;
  f.env.defineConst("visible", ConstVal::ofNumber(1));
  f.env.defineConst("hidden", ConstVal::ofNumber(2));
  Env inner(&f.env);
  inner.restrictUses({"visible"});
  ConstEval ce(*f.diags);
  BufferId buf = f.sm.addBuffer("e", "visible");
  Parser p1(buf, *f.diags);
  auto e1 = p1.parseExpression();
  EXPECT_TRUE(ce.eval(*e1, inner).has_value());
  BufferId buf2 = f.sm.addBuffer("e2", "hidden");
  Parser p2(buf2, *f.diags);
  auto e2 = p2.parseExpression();
  EXPECT_FALSE(ce.eval(*e2, inner).has_value());
}

}  // namespace
}  // namespace zeus

// Round-trip property: the AST dumper emits valid Zeus source — parsing
// its output yields an identical tree (dump∘parse is idempotent) for
// every program in the corpus.  This pins down both the printer and the
// parser against each other.
#include <gtest/gtest.h>

#include "src/ast/printer.h"
#include "src/corpus/corpus.h"
#include "src/parser/parser.h"

namespace zeus {
namespace {

class Roundtrip : public ::testing::TestWithParam<corpus::CorpusEntry> {};

TEST_P(Roundtrip, DumpParseDump) {
  const corpus::CorpusEntry& entry = GetParam();

  SourceManager sm;
  BufferId buf1 = sm.addBuffer("orig", entry.source);
  DiagnosticEngine diags(sm);
  Parser p1(buf1, diags);
  ast::Program prog1 = p1.parseProgram();
  ASSERT_FALSE(diags.hasErrors()) << entry.name << "\n" << diags.renderAll();

  std::string printed = ast::dump(prog1);
  BufferId buf2 = sm.addBuffer("printed", printed);
  Parser p2(buf2, diags);
  ast::Program prog2 = p2.parseProgram();
  ASSERT_FALSE(diags.hasErrors())
      << entry.name << ": printed form failed to parse\n"
      << diags.renderAll() << "\n--- printed ---\n" << printed;

  EXPECT_EQ(printed, ast::dump(prog2)) << entry.name;
}

std::string nameOf(const ::testing::TestParamInfo<corpus::CorpusEntry>& i) {
  std::string n = i.param.name;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(Corpus, Roundtrip,
                         ::testing::ValuesIn(corpus::all()), nameOf);

}  // namespace
}  // namespace zeus

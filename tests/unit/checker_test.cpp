// Unit tests for the pre-elaboration checker and the diagnostic engine.
#include <gtest/gtest.h>

#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

TEST(Checker, DuplicateTopLevelNames) {
  auto comp = Compilation::fromSource("t.zeus", R"(
CONST a = 1;
CONST a = 2;
)");
  EXPECT_TRUE(comp->diags().has(Diag::DuplicateDeclaration));
}

TEST(Checker, DuplicateTypeAndConst) {
  auto comp = Compilation::fromSource("t.zeus", R"(
CONST a = 1;
TYPE a = ARRAY[1..2] OF boolean;
)");
  EXPECT_TRUE(comp->diags().has(Diag::DuplicateDeclaration));
}

TEST(Checker, AliasInsideNestedIfCaught) {
  auto comp = Compilation::fromSource("t.zeus", R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL m1, m2: multiplex;
BEGIN
  IF a THEN
    FOR i := 1 TO 2 DO
      m1 == m2
    END
  END;
  o := a
END;
SIGNAL top: t;
)");
  EXPECT_TRUE(comp->diags().has(Diag::AliasInsideConditional));
}

TEST(Checker, AliasInWhenIsAllowed) {
  // WHEN is compile-time generation, not a conditional statement.
  auto comp = Compilation::fromSource("t.zeus", R"(
TYPE t(n) = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL m1, m2: multiplex;
BEGIN
  WHEN n > 1 THEN m1 == m2 END;
  IF a THEN m1 := a END;
  o := m2
END;
SIGNAL top: t(2);
)");
  EXPECT_FALSE(comp->diags().has(Diag::AliasInsideConditional))
      << comp->diagnosticsText();
}

TEST(Checker, ResultInNestedIfOfFunctionOk) {
  auto comp = Compilation::fromSource("t.zeus", R"(
TYPE f = COMPONENT (IN a, b: boolean) : boolean IS
BEGIN
  IF a THEN RESULT b END;
  IF NOT a THEN RESULT NOT b END
END;
t = COMPONENT (IN a, b: boolean; OUT o: boolean) IS
BEGIN
  o := f(a, b)
END;
SIGNAL top: t;
)");
  EXPECT_FALSE(comp->diags().has(Diag::ResultOutsideFunction))
      << comp->diagnosticsText();
  auto design = comp->elaborate("top");
  EXPECT_NE(design, nullptr) << comp->diagnosticsText();
}

TEST(Checker, NestedComponentTypesChecked) {
  // RESULT misuse inside a nested type declaration is caught statically.
  auto comp = Compilation::fromSource("t.zeus", R"(
TYPE outer = COMPONENT (IN a: boolean; OUT o: boolean) IS
  TYPE inner = COMPONENT (IN x: boolean; OUT y: boolean) IS
  BEGIN
    RESULT x
  END;
  SIGNAL g: inner;
BEGIN
  g.x := a;
  o := g.y
END;
SIGNAL top: outer;
)");
  EXPECT_TRUE(comp->diags().has(Diag::ResultOutsideFunction));
}

TEST(Diagnostics, RenderingIncludesPosition) {
  auto comp = Compilation::fromSource("file.zeus", "CONST a = ;\n");
  std::string text = comp->diagnosticsText();
  EXPECT_NE(text.find("file.zeus:1:"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
}

TEST(Diagnostics, CountsAndClear) {
  SourceManager sm;
  DiagnosticEngine diags(sm);
  EXPECT_FALSE(diags.hasErrors());
  diags.warning(Diag::UnusedPort, {}, "w");
  EXPECT_FALSE(diags.hasErrors());
  diags.error(Diag::Internal, {}, "e");
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_EQ(diags.errorCount(), 1u);
  EXPECT_EQ(diags.all().size(), 2u);
  diags.clear();
  EXPECT_FALSE(diags.hasErrors());
  EXPECT_TRUE(diags.all().empty());
}

TEST(Diagnostics, SourceManagerDescribe) {
  SourceManager sm;
  BufferId buf = sm.addBuffer("x.zeus", "ab\ncd\nef");
  EXPECT_EQ(sm.describe({buf, 0}), "x.zeus:1:1");
  EXPECT_EQ(sm.describe({buf, 3}), "x.zeus:2:1");
  EXPECT_EQ(sm.describe({buf, 7}), "x.zeus:3:2");
  EXPECT_EQ(sm.describe({}), "<unknown>");
}

}  // namespace
}  // namespace zeus::test

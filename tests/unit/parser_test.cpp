// Unit tests for the parser (paper §7): tree shapes are asserted through
// the s-expression dumper.
#include <gtest/gtest.h>

#include "src/ast/printer.h"
#include "src/parser/parser.h"

namespace zeus {
namespace {

struct P {
  SourceManager sm;
  std::unique_ptr<DiagnosticEngine> diags;
  std::unique_ptr<Parser> parser;

  explicit P(const std::string& text) {
    BufferId buf = sm.addBuffer("t", text);
    diags = std::make_unique<DiagnosticEngine>(sm);
    parser = std::make_unique<Parser>(buf, *diags);
  }
};

std::string expr(const std::string& text) {
  P p(text);
  auto e = p.parser->parseExpression();
  EXPECT_FALSE(p.diags->hasErrors()) << p.diags->renderAll();
  return ast::dump(*e);
}

std::string stmt(const std::string& text) {
  P p(text);
  auto s = p.parser->parseStatement();
  EXPECT_FALSE(p.diags->hasErrors()) << p.diags->renderAll();
  return ast::dump(*s);
}

std::string type(const std::string& text) {
  P p(text);
  auto t = p.parser->parseType();
  EXPECT_FALSE(p.diags->hasErrors()) << p.diags->renderAll();
  return ast::dump(*t);
}

// ---- expressions ----

TEST(Parser, ConstPrecedence) {
  EXPECT_EQ(expr("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(expr("2 * n - 1"), "((2 * n) - 1)");
  EXPECT_EQ(expr("i MOD 2 <> 0"), "((i MOD 2) <> 0)");
  EXPECT_EQ(expr("a OR b AND c"), "(a OR (b AND c))");
  EXPECT_EQ(expr("i DIV 2"), "(i DIV 2)");
}

TEST(Parser, UnaryBindsFactor) {
  EXPECT_EQ(expr("-1 + 2"), "((- 1) + 2)");
  EXPECT_EQ(expr("NOT a"), "(NOT a)");
}

TEST(Parser, ParenthesesGroup) {
  EXPECT_EQ(expr("(1 + 2) * 3"), "((1 + 2) * 3)");
}

TEST(Parser, SignalPaths) {
  EXPECT_EQ(expr("h1.cout"), "h1.cout");
  EXPECT_EQ(expr("se[i DIV 2].in.contents[1]"),
            "se[(i DIV 2)].in.contents[1]");
  EXPECT_EQ(expr("x[2..7]"), "x[2..7]");
  EXPECT_EQ(expr("m[i,j]"), "m[i][j]");
  EXPECT_EQ(expr("ram[NUM(a)].out"), "ram[NUM(a)].out");
}

TEST(Parser, Tuples) {
  EXPECT_EQ(expr("(0,1,0)"), "(0,1,0)");
  EXPECT_EQ(expr("((0,0),(0,1))"), "((0,0),(0,1))");
  // One-element parentheses are grouping, not tuples.
  EXPECT_EQ(expr("(a)"), "a");
}

TEST(Parser, Calls) {
  EXPECT_EQ(expr("XOR(a,b)"), "XOR(a,b)");
  EXPECT_EQ(expr("AND(NOT g,h)"), "AND((NOT g),h)");
  EXPECT_EQ(expr("plus[n](a,b)"), "plus[n](a,b)");
  EXPECT_EQ(expr("BIN(10,5)"), "BIN(10,5)");
  EXPECT_EQ(expr("EQUAL(a,bit2[i])"), "EQUAL(a,bit2[i])");
}

TEST(Parser, StarForms) {
  EXPECT_EQ(expr("*"), "*");
  EXPECT_EQ(expr("( *, a)"), "(*,a)");
}

TEST(Parser, PredefinedSignals) {
  EXPECT_EQ(expr("CLK"), "CLK");
  EXPECT_EQ(expr("RSET"), "RSET");
}

// ---- statements ----

TEST(Parser, Assignment) {
  EXPECT_EQ(stmt("s := XOR(a,b)"), "s := XOR(a,b)");
  EXPECT_EQ(stmt("out == leaf.out"), "out == leaf.out");
  EXPECT_EQ(stmt("x.b := *"), "x.b := *");
}

TEST(Parser, Connection) {
  EXPECT_EQ(stmt("h1(a,b,*,h2.a)"), "h1(a,b,*,h2.a)");
  EXPECT_EQ(stmt("x[1..10](s,t)"), "x[1..10](s,t)");
}

TEST(Parser, IfElsifElse) {
  EXPECT_EQ(stmt("IF a THEN x := b ELSIF c THEN x := d ELSE x := e END"),
            "IF a THEN x := b ELSIF c THEN x := d ELSE x := e END");
}

TEST(Parser, Replication) {
  EXPECT_EQ(stmt("FOR i := 1 TO 4 DO a.in[i] := b[i] END"),
            "FOR i := 1 TO 4 DO a.in[i] := b[i] END");
  EXPECT_EQ(stmt("FOR i := 4 DOWNTO 1 DO x[i] := y END"),
            "FOR i := 4 DOWNTO 1 DO x[i] := y END");
}

TEST(Parser, CondGeneration) {
  EXPECT_EQ(stmt("WHEN n = 2 THEN a := b OTHERWISE c := d END"),
            "WHEN (n = 2) THEN a := b OTHERWISE c := d END");
  EXPECT_EQ(
      stmt("WHEN n = 1 THEN a := b OTHERWISEWHEN n = 2 THEN c := d END"),
      "WHEN (n = 1) THEN a := b OTHERWISEWHEN (n = 2) THEN c := d END");
}

TEST(Parser, SequentialParallelWith) {
  EXPECT_EQ(stmt("SEQUENTIAL a := b; c := d END"),
            "SEQUENTIAL a := b; c := d END");
  EXPECT_EQ(stmt("PARALLEL a := b END"), "PARALLEL a := b END");
  EXPECT_EQ(stmt("WITH g[1] DO x := x1 END"), "WITH g[1] DO x := x1 END");
}

TEST(Parser, Result) {
  EXPECT_EQ(stmt("RESULT AND(NOT g,h)"), "RESULT AND((NOT g),h)");
}

// ---- types ----

TEST(Parser, ArrayTypes) {
  EXPECT_EQ(type("ARRAY[1..4] OF boolean"), "ARRAY[1..4] OF boolean");
  EXPECT_EQ(type("ARRAY[1..n,1..n] OF virtual"),
            "ARRAY[1..n] OF ARRAY[1..n] OF virtual");
}

TEST(Parser, NamedTypesWithArgs) {
  EXPECT_EQ(type("bo(4)"), "bo(4)");
  EXPECT_EQ(type("tree(n DIV 2)"), "tree((n DIV 2))");
}

TEST(Parser, RecordComponentType) {
  EXPECT_EQ(type("COMPONENT (r,s,t:bo(3); u:boolean)"),
            "COMPONENT(r,s,t:bo(3); u:boolean)");
}

TEST(Parser, ComponentWithBody) {
  std::string out = type(
      "COMPONENT (IN a,b: boolean; OUT s: boolean) IS BEGIN s := "
      "XOR(a,b) END");
  EXPECT_EQ(out,
            "COMPONENT(IN a,b:boolean; OUT s:boolean) IS BEGIN s := "
            "XOR(a,b) END");
}

TEST(Parser, FunctionComponent) {
  std::string out =
      type("COMPONENT (IN a: boolean) : boolean IS BEGIN RESULT a END");
  EXPECT_EQ(out, "COMPONENT(IN a:boolean):boolean IS BEGIN RESULT a END");
}

TEST(Parser, UsesList) {
  std::string out =
      type("COMPONENT () IS USES k, bo; BEGIN END");
  EXPECT_EQ(out, "COMPONENT() IS USES k,bo; BEGIN  END");
}

TEST(Parser, LayoutBlocks) {
  std::string out = type(
      "COMPONENT (IN a: boolean) { BOTTOM a } IS "
      "{ ORDER lefttoright x; flip90 y END } BEGIN END");
  EXPECT_NE(out.find("{BOTTOM a}"), std::string::npos);
  EXPECT_NE(out.find("ORDER lefttoright x; flip90 y END"),
            std::string::npos);
}

// ---- whole programs and errors ----

TEST(Parser, ProgramDeclarations) {
  P p("CONST n = 4; TYPE bo = ARRAY[1..n] OF boolean; SIGNAL x: bo;");
  ast::Program prog = p.parser->parseProgram();
  EXPECT_FALSE(p.diags->hasErrors());
  ASSERT_EQ(prog.decls.size(), 3u);
  EXPECT_EQ(prog.decls[0]->kind, ast::DeclKind::Const);
  EXPECT_EQ(prog.decls[1]->kind, ast::DeclKind::Type);
  EXPECT_EQ(prog.decls[2]->kind, ast::DeclKind::Signal);
}

TEST(Parser, MultipleDeclsPerKeyword) {
  P p("CONST a = 1; b = 2; c = a + b;");
  ast::Program prog = p.parser->parseProgram();
  EXPECT_EQ(prog.decls.size(), 3u);
}

TEST(Parser, ErrorRecovery) {
  P p("CONST a = ; TYPE t = boolean; SIGNAL s: t;");
  ast::Program prog = p.parser->parseProgram();
  EXPECT_TRUE(p.diags->hasErrors());
  // The parser must still deliver the later declarations.
  EXPECT_GE(prog.decls.size(), 2u);
}

TEST(Parser, MissingEndDiagnosed) {
  P p("TYPE t = COMPONENT (IN a: boolean) IS BEGIN a := b ;");
  (void)p.parser->parseProgram();
  EXPECT_TRUE(p.diags->has(Diag::ExpectedToken));
}

TEST(Parser, ReplacementInLayout) {
  std::string out = type(
      "COMPONENT () IS SIGNAL v: virtual; { v = black } BEGIN END");
  EXPECT_NE(out.find("v = black"), std::string::npos);
}

TEST(Parser, LayoutWhenAndFor) {
  std::string out = type(
      "COMPONENT () IS SIGNAL m: ARRAY[1..2] OF virtual; "
      "{ FOR i := 1 TO 2 DO WHEN odd(i) THEN m[i] = black "
      "OTHERWISE m[i] = white END; END } BEGIN END");
  EXPECT_NE(out.find("FOR i := 1 TO 2 DO"), std::string::npos);
  EXPECT_NE(out.find("WHEN odd(i) THEN m[i] = black OTHERWISE m[i] = white"),
            std::string::npos);
}

}  // namespace
}  // namespace zeus

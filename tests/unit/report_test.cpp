// Unit tests for the design-report utilities.
#include <gtest/gtest.h>

#include "src/core/report.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

const char* kCounter = R"(
TYPE counter = COMPONENT (IN en: boolean; OUT q: ARRAY[1..2] OF boolean) IS
  SIGNAL r: ARRAY[1..2] OF REG;
BEGIN
  IF en THEN
    r[1].in := NOT r[1].out;
    r[2].in := XOR(r[2].out, r[1].out)
  END;
  q[1] := r[1].out;
  q[2] := r[2].out
END;
SIGNAL top: counter;
)";

TEST(Report, StatsCountNodeKinds) {
  Built b = buildOk(kCounter, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  DesignStats s = computeStats(*b.design, g);
  EXPECT_EQ(s.registers, 2u);
  EXPECT_EQ(s.switches, 2u);  // two guarded assignments
  EXPECT_GE(s.gates, 2u);     // NOT + XOR
  EXPECT_GE(s.buffers, 2u);   // q wiring
  EXPECT_EQ(s.instances, 3u);  // top + two REGs
  EXPECT_GT(s.depth, 0u);
  std::string text = renderStats(s);
  EXPECT_NE(text.find("registers: 2"), std::string::npos);
  EXPECT_NE(text.find("REG: 2"), std::string::npos);
}

TEST(Report, DotExportShape) {
  Built b = buildOk(kCounter, "top");
  std::string dot = exportDot(*b.design);
  EXPECT_NE(dot.find("digraph zeus"), std::string::npos);
  EXPECT_NE(dot.find("REG"), std::string::npos);
  EXPECT_NE(dot.find("SWITCH"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.find("trunc"), std::string::npos);
}

TEST(Report, DotExportTruncates) {
  Built b = buildOk(kCounter, "top");
  std::string dot = exportDot(*b.design, /*maxNodes=*/2);
  EXPECT_NE(dot.find("more nodes"), std::string::npos);
}

TEST(Report, InstanceTree) {
  Built b = buildOk(kCounter, "top");
  std::string tree = renderInstanceTree(*b.design);
  EXPECT_NE(tree.find("top: counter"), std::string::npos);
  EXPECT_NE(tree.find("  top.r[1]: REG"), std::string::npos);
  EXPECT_NE(tree.find("  top.r[2]: REG"), std::string::npos);
}

TEST(Report, InstanceTreeMarksFunctionCalls) {
  const char* src = R"(
TYPE f = COMPONENT (IN a: boolean) : boolean IS
BEGIN RESULT NOT a END;
t = COMPONENT (IN a: boolean; OUT o: boolean) IS
BEGIN
  o := f(a)
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  std::string tree = renderInstanceTree(*b.design);
  EXPECT_NE(tree.find("(function call)"), std::string::npos);
}

}  // namespace
}  // namespace zeus::test

// Unit tests for the static lint pass (src/analysis/lint.h): one fixture
// per rule, a clean design with zero findings, the JSON rendering, a
// corpus-wide zero-errors sweep, and the differential guarantee that every
// "certain" contention finding actually raises SimContention under the
// firing evaluator.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/corpus/corpus.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

/// Lints a fixture through the public Compilation entry point.
LintReport lintOf(Built& b, const LintOptions& opts = {}) {
  return b.comp->lint(*b.design, opts);
}

size_t countRule(const LintReport& r, LintRule rule) {
  return static_cast<size_t>(
      std::count_if(r.findings.begin(), r.findings.end(),
                    [&](const LintFinding& f) { return f.rule == rule; }));
}

const LintFinding* findRule(const LintReport& r, LintRule rule) {
  for (const LintFinding& f : r.findings)
    if (f.rule == rule) return &f;
  return nullptr;
}

// Two unconditional constant drivers joined into one alias class by '=='.
// Each ':=' is legal when elaborated; the union is the §4.7 violation the
// elaborator misses and the lint pass must catch statically.
const char* kCertainContention = R"(
TYPE t = COMPONENT (OUT o: boolean) IS
  SIGNAL x, y: multiplex;
BEGIN
  x := 1;
  y := 0;
  x == y;
  o := x
END;
SIGNAL top: t;
)";

TEST(Lint, CertainContentionAcrossAliasClass) {
  Built b = buildOk(kCertainContention, "top");
  LintReport r = lintOf(b);
  ASSERT_EQ(countRule(r, LintRule::MultiplexContention), 1u)
      << r.renderText(b.comp->sources());
  const LintFinding* f = findRule(r, LintRule::MultiplexContention);
  EXPECT_EQ(f->severity, Severity::Error);
  EXPECT_TRUE(f->certain);
  EXPECT_TRUE(r.hasErrors());
  // Mirrored into the ordinary diagnostics stream with a stable code.
  EXPECT_TRUE(b.comp->diags().has(Diag::LintContention));
}

TEST(Lint, CertainContentionRaisesSimContention) {
  // Differential check: a finding marked `certain` is a promise that the
  // firing evaluator reports SimContention on every cycle.  Break the
  // classifier and this test fails.
  Built b = buildOk(kCertainContention, "top");
  LintReport r = lintOf(b, LintOptions{.reportToDiags = false});
  const LintFinding* f = findRule(r, LintRule::MultiplexContention);
  ASSERT_NE(f, nullptr);
  ASSERT_TRUE(f->certain);

  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  Simulation sim(g);
  for (const Port& p : b.design->ports) {
    if (p.mode == ast::ParamMode::In)
      sim.setInput(p.name, std::vector<Logic>(p.nets.size(), Logic::Zero));
  }
  sim.step(2);
  bool sawContention = false;
  for (const SimError& e : sim.errors())
    if (e.code == Diag::SimContention) sawContention = true;
  EXPECT_TRUE(sawContention)
      << "lint claimed certain contention but the simulator never "
         "raised SimContention";
}

TEST(Lint, PossibleContentionSharedGuard) {
  // Two conditional drivers behind the *same* IF condition fire together
  // whenever it holds — statically a warning, not an error, because the
  // condition may never hold at runtime.
  const char* src = R"(
TYPE t = COMPONENT (IN a, b, d: boolean; OUT o: boolean) IS
  SIGNAL m: multiplex;
BEGIN
  IF a THEN m := d END;
  IF a THEN m := NOT d END;
  IF b THEN m := d END;
  o := m
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  LintReport r = lintOf(b);
  const LintFinding* f = findRule(r, LintRule::MultiplexContention);
  ASSERT_NE(f, nullptr) << r.renderText(b.comp->sources());
  EXPECT_EQ(f->severity, Severity::Warning);
  EXPECT_FALSE(f->certain);
  EXPECT_FALSE(r.hasErrors());
}

TEST(Lint, DistinctGuardsNotFlagged) {
  // Drivers behind distinct conditions are the §8 multiplex idiom; the
  // pass must not cry wolf on the standard pattern.
  const char* src = R"(
TYPE t = COMPONENT (IN a, b, d: boolean; OUT o: boolean) IS
  SIGNAL m: multiplex;
BEGIN
  IF a THEN m := d END;
  IF b THEN m := NOT d END;
  o := m
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  LintReport r = lintOf(b);
  EXPECT_EQ(countRule(r, LintRule::MultiplexContention), 0u)
      << r.renderText(b.comp->sources());
}

// One fixture exercising the dead/undriven-hardware family: 'u' is read
// but never driven, 'dead' drives nothing reaching an output, the IF 0
// branch never fires, and register r's input cone stays NOINFL forever.
const char* kDeadHardware = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o, q: boolean) IS
  SIGNAL u: boolean;
  SIGNAL dead: boolean;
  SIGNAL r: REG;
BEGIN
  o := AND(a, u);
  dead := NOT a;
  IF 0 THEN r.in := a END;
  q := r.out
END;
SIGNAL top: t;
)";

TEST(Lint, UndrivenNetReadByGate) {
  Built b = buildOk(kDeadHardware, "top");
  LintReport r = lintOf(b);
  const LintFinding* f = findRule(r, LintRule::UndrivenNet);
  ASSERT_NE(f, nullptr) << r.renderText(b.comp->sources());
  EXPECT_EQ(f->severity, Severity::Warning);
  EXPECT_NE(f->net.find("u"), std::string::npos);
  EXPECT_TRUE(b.comp->diags().has(Diag::LintUndrivenNet));
}

TEST(Lint, UnreadNetCone) {
  Built b = buildOk(kDeadHardware, "top");
  LintReport r = lintOf(b);
  const LintFinding* f = findRule(r, LintRule::UnreadNet);
  ASSERT_NE(f, nullptr) << r.renderText(b.comp->sources());
  EXPECT_NE(f->net.find("dead"), std::string::npos);
}

TEST(Lint, DeadBranchConstantFalseCondition) {
  Built b = buildOk(kDeadHardware, "top");
  LintReport r = lintOf(b);
  const LintFinding* f = findRule(r, LintRule::DeadBranch);
  ASSERT_NE(f, nullptr) << r.renderText(b.comp->sources());
  EXPECT_EQ(f->severity, Severity::Warning);
}

TEST(Lint, ConstantRegisterNeverDefined) {
  Built b = buildOk(kDeadHardware, "top");
  LintReport r = lintOf(b);
  const LintFinding* f = findRule(r, LintRule::ConstantRegister);
  ASSERT_NE(f, nullptr) << r.renderText(b.comp->sources());
}

TEST(Lint, ConstantGateFolds) {
  // AND with a constant-0 input folds regardless of the other input.
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL z: boolean;
BEGIN
  z := AND(a, 0);
  o := OR(z, a)
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  LintReport r = lintOf(b);
  const LintFinding* f = findRule(r, LintRule::ConstantGate);
  ASSERT_NE(f, nullptr) << r.renderText(b.comp->sources());
  EXPECT_EQ(f->severity, Severity::Note);
  EXPECT_NE(f->message.find("0"), std::string::npos);
}

TEST(Lint, DeepLogicThreshold) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT p: boolean) IS
BEGIN
  p := NOT(NOT(NOT a))
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  LintReport deep = lintOf(b, LintOptions{.maxDepth = 1});
  EXPECT_EQ(countRule(deep, LintRule::DeepLogic), 1u)
      << deep.renderText(b.comp->sources());
  LintReport fine = lintOf(b, LintOptions{.maxDepth = 16});
  EXPECT_EQ(countRule(fine, LintRule::DeepLogic), 0u);
}

TEST(Lint, FanoutHotspotThreshold) {
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: ARRAY[1..3] OF boolean) IS
  SIGNAL z: boolean;
BEGIN
  z := NOT a;
  o[1] := NOT z;
  o[2] := AND(z, a);
  o[3] := OR(z, a)
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  LintReport hot = lintOf(b, LintOptions{.maxFanout = 2});
  const LintFinding* f = findRule(hot, LintRule::FanoutHotspot);
  ASSERT_NE(f, nullptr) << hot.renderText(b.comp->sources());
  EXPECT_NE(f->net.find("z"), std::string::npos);
  LintReport cold = lintOf(b, LintOptions{.maxFanout = 64});
  EXPECT_EQ(countRule(cold, LintRule::FanoutHotspot), 0u);
}

TEST(Lint, CleanDesignZeroFindings) {
  const char* src = R"(
TYPE halfadder = COMPONENT (IN a, b: boolean;
                            OUT sum, carry: boolean) IS
BEGIN
  sum := XOR(a, b);
  carry := AND(a, b)
END;
SIGNAL top: halfadder;
)";
  Built b = buildOk(src, "top");
  LintReport r = lintOf(b);
  EXPECT_TRUE(r.clean()) << r.renderText(b.comp->sources());
  EXPECT_EQ(r.errors + r.warnings + r.notes, 0u);
}

TEST(Lint, JsonRendersSchemaFields) {
  Built b = buildOk(kCertainContention, "top");
  LintReport r = lintOf(b, LintOptions{.reportToDiags = false});
  std::string json = r.renderJson(b.comp->sources(), "top");
  EXPECT_NE(json.find("\"zeus-lint\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"design\": \"top\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"multiplex-contention\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"certain\": true"), std::string::npos);
  EXPECT_NE(json.find("\"summary\""), std::string::npos);
}

TEST(Lint, TextRenderSummaryLine) {
  Built b = buildOk(kDeadHardware, "top");
  LintReport r = lintOf(b, LintOptions{.reportToDiags = false});
  std::string text = r.renderText(b.comp->sources());
  EXPECT_NE(text.find("lint:"), std::string::npos) << text;
  EXPECT_NE(text.find("[undriven-net]"), std::string::npos) << text;
}

TEST(Lint, CyclicGraphYieldsEmptyReport) {
  // Combinational loops are already a hard error from buildSimGraph; the
  // lint entry point must not double-report or crash on them.
  const char* src = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL x, y: boolean;
BEGIN
  x := NOT y;
  y := NOT x;
  o := AND(x, a)
END;
SIGNAL top: t;
)";
  Built b = buildOk(src, "top");
  LintReport r = b.comp->lint(*b.design);
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(b.comp->diags().has(Diag::CombinationalLoop));
}

// ---------------------------------------------------------------------
// Corpus sweep: the paper's own programs must lint without errors (notes
// and warnings are acceptable; a lint *error* is a §4.7/§8 violation).

std::string instantiatedCorpus(const corpus::CorpusEntry& e,
                               std::string* top) {
  std::string source = e.source;
  *top = e.top;
  if (top->empty()) {
    if (std::string(e.name) == "adders") {
      source += "SIGNAL t: rippleCarry(8);\n";
    } else if (std::string(e.name).rfind("tree", 0) == 0) {
      source += "SIGNAL t: tree(8);\n";
    } else if (std::string(e.name) == "htree") {
      source += "SIGNAL t: htree(16);\n";
    } else if (std::string(e.name) == "routing") {
      source += "SIGNAL t: routingnetwork(8);\n";
    } else if (std::string(e.name) == "systolic-stack") {
      source += "SIGNAL t: systolicstack(8);\n";
    } else if (std::string(e.name) == "dictionary") {
      source += "SIGNAL t: dicttree(8);\n";
    } else if (std::string(e.name) == "snake") {
      source += "SIGNAL t: snake(3,4);\n";
    } else if (std::string(e.name) == "sorter") {
      source += "SIGNAL t: sorter(4);\n";
    } else if (std::string(e.name) == "matvec") {
      source += "SIGNAL t: matvec(4);\n";
    } else {
      ADD_FAILURE() << "no instantiation rule for " << e.name;
    }
    *top = "t";
  }
  return source;
}

class LintCorpus : public ::testing::TestWithParam<corpus::CorpusEntry> {};

TEST_P(LintCorpus, PaperExamplesLintWithoutErrors) {
  const corpus::CorpusEntry& e = GetParam();
  std::string top;
  std::string source = instantiatedCorpus(e, &top);
  auto comp = Compilation::fromSource(std::string(e.name) + ".zeus", source);
  ASSERT_TRUE(comp->ok()) << comp->diagnosticsText();
  auto design = comp->elaborate(top);
  ASSERT_NE(design, nullptr) << comp->diagnosticsText();
  LintReport r = comp->lint(*design);
  EXPECT_FALSE(r.hasErrors())
      << e.name << ":\n" << r.renderText(comp->sources());
  // Certainty is reserved for contention findings.
  for (const LintFinding& f : r.findings) {
    if (f.rule != LintRule::MultiplexContention) {
      EXPECT_FALSE(f.certain);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEntries, LintCorpus, ::testing::ValuesIn(corpus::all()),
    [](const ::testing::TestParamInfo<corpus::CorpusEntry>& info) {
      std::string n = info.param.name;
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

}  // namespace
}  // namespace zeus::test

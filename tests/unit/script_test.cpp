// Unit tests for the testbench script runner (zeusc --script).
#include <gtest/gtest.h>

#include "src/core/script.h"
#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

struct Rig {
  Built built;
  SimGraph graph;
  Simulation sim;

  explicit Rig(const std::string& src, const std::string& top)
      : built(buildOk(src, top)),
        graph(buildSimGraph(*built.design, built.comp->diags())),
        sim(graph) {}
};

std::string adder4() {
  return std::string(corpus::kAdders) + "SIGNAL adder: rippleCarry(4);\n";
}

TEST(Script, DrivesAndChecksAnAdder) {
  Rig rig(adder4(), "adder");
  ScriptResult r = runScript(rig.sim, R"(
# add two numbers
set a 9
set b 5
set cin 0
step
expect s 14
expect cout 0
set cin 1
step
expect s 15
set a 15
set b 1
set cin 0
step
expect s 0
expect cout 1
)");
  EXPECT_TRUE(r.ok) << r.log;
  EXPECT_EQ(r.expectationsChecked, 5);
}

TEST(Script, FailedExpectationStops) {
  Rig rig(adder4(), "adder");
  ScriptResult r = runScript(rig.sim, R"(
set a 1
set b 1
set cin 0
step
expect s 3
expect cout 1
)");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failedLine, 6);
  EXPECT_EQ(r.expectationsChecked, 1);  // stopped at the first failure
  EXPECT_NE(r.log.find("expected s = 3, got 2"), std::string::npos);
}

TEST(Script, UndefinedHandling) {
  Rig rig(adder4(), "adder");
  ScriptResult r = runScript(rig.sim, R"(
setx a
set b 0b0000
set cin 0
step
expectx s
clear b
step
expectx s
)");
  EXPECT_TRUE(r.ok) << r.log;
}

TEST(Script, ResetAndPrint) {
  Rig rig(std::string(corpus::kBlackjack), "bj");
  ScriptResult r = runScript(rig.sim, R"(
set ycard 0
set value 0
reset 1
step 2
expect hit 1
print hit
)");
  EXPECT_TRUE(r.ok) << r.log;
  EXPECT_NE(r.log.find("hit = 1"), std::string::npos);
}

TEST(Script, ErrorsAreDiagnosed) {
  Rig rig(adder4(), "adder");
  EXPECT_FALSE(runScript(rig.sim, "set a\n").ok);
  EXPECT_FALSE(runScript(rig.sim, "set a notanumber\n").ok);
  EXPECT_FALSE(runScript(rig.sim, "set nosuch 1\n").ok);
  EXPECT_FALSE(runScript(rig.sim, "frobnicate\n").ok);
  ScriptResult r = runScript(rig.sim, "expect nosuch 0\n");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failedLine, 1);
}

TEST(Script, BinaryLiteralsAndComments) {
  Rig rig(adder4(), "adder");
  ScriptResult r = runScript(rig.sim, R"(
set a 0b1010   # ten
set b 0b0101   # five
set cin 0
step
expect s 0b1111
)");
  EXPECT_TRUE(r.ok) << r.log;
}

}  // namespace
}  // namespace zeus::test

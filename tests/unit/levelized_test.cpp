// Unit tests for the levelized evaluator, the 64-lane batch facade and
// the simulator fixes that rode along with them: reset() restores the
// RANDOM stream, a watchdog-tripped cycle neither latches registers nor
// counts, and net lookup by name goes through the Netlist index.
#include <gtest/gtest.h>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

const char* kRandomReg = R"(
TYPE t = COMPONENT (IN en: boolean; OUT o: boolean) IS
  SIGNAL r: REG;
BEGIN
  IF en THEN r.in := RANDOM() END;
  o := r.out
END;
SIGNAL top: t;
)";

const char* kRegBuf = R"(
TYPE t = COMPONENT (IN a: boolean; OUT o: boolean) IS
  SIGNAL r: REG;
BEGIN
  r.in := a;
  o := r.out
END;
SIGNAL top: t;
)";

const char* kTwoDriverMux = R"(
TYPE t = COMPONENT (IN a, b: boolean; OUT o: boolean) IS
  SIGNAL m: multiplex;
BEGIN
  IF a THEN m := 1 END;
  IF b THEN m := 0 END;
  o := m
END;
SIGNAL top: t;
)";

TEST(LanePlanes, BroadcastSetGetRoundtrip) {
  for (Logic v : {Logic::Zero, Logic::One, Logic::Undef, Logic::NoInfl}) {
    LanePlanes all = lanesBroadcast(v, ~uint64_t{0});
    for (uint32_t lane : {0u, 1u, 31u, 63u}) {
      EXPECT_EQ(laneValue(all, lane), v);
    }
    LanePlanes one;
    laneSet(one, 7, v);
    EXPECT_EQ(laneValue(one, 7), v);
    EXPECT_EQ(laneValue(one, 8), Logic::NoInfl);  // untouched lanes
  }
}

// Satellite fix: Simulation::reset() restores the RANDOM stream, so a
// reset simulation replays exactly like a freshly constructed one.
TEST(SimulationReset, RestoresRandomStream) {
  Built b = buildOk(kRandomReg, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  for (EvaluatorKind kind : {EvaluatorKind::Firing, EvaluatorKind::Naive,
                             EvaluatorKind::Levelized}) {
    Simulation sim(g, kind);
    auto record = [&] {
      sim.setInput("en", Logic::One);
      std::vector<Logic> out;
      for (int i = 0; i < 48; ++i) {
        sim.step();
        out.push_back(sim.output("o"));
      }
      return out;
    };
    std::vector<Logic> first = record();
    sim.reset();
    std::vector<Logic> second = record();
    EXPECT_EQ(first, second) << "evaluator " << static_cast<int>(kind);
    // The stream must actually vary, or the test proves nothing.
    EXPECT_NE(first, std::vector<Logic>(first.size(), first[0]));
  }
}

// Satellite fix: a cycle aborted by the firing watchdog must not latch
// its (unreliable) net values into registers, and must not be counted.
TEST(Watchdog, TrippedCycleDoesNotLatchOrCount) {
  Built b = buildOk(kRegBuf, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation::Options opts;
  opts.evaluator = EvaluatorKind::Firing;
  opts.maxEventsPerCycle = 1;  // trips on the very first propagation
  Simulation sim(g, opts);
  sim.setInput("a", Logic::One);
  sim.restoreRegisters({Logic::Zero});
  sim.step(4);
  ASSERT_FALSE(sim.errors().empty());
  EXPECT_EQ(sim.errors()[0].code, Diag::SimWatchdog);
  EXPECT_EQ(sim.cycle(), 0u) << "aborted cycles must not count";
  EXPECT_EQ(sim.saveRegisters(), std::vector<Logic>{Logic::Zero})
      << "aborted cycles must not latch";
}

// Satellite fix: netValueByName uses the Netlist name index.
TEST(Netlist, FindByNameIndex) {
  Built b = buildOk(std::string(kAdders) + "SIGNAL adder: rippleCarry(8);\n",
                    "adder");
  const Netlist& nl = b.design->netlist;
  for (NetId i = 0; i < nl.netCount(); ++i) {
    NetId f = nl.findByName(nl.net(i).name);
    ASSERT_NE(f, kNoNet) << nl.net(i).name;
    EXPECT_EQ(nl.net(f).name, nl.net(i).name);
  }
  EXPECT_EQ(nl.findByName("no.such.net"), kNoNet);
}

TEST(Simulation, NetValueByNameAgreesWithNetValue) {
  Built b = buildOk(kRegBuf, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g, EvaluatorKind::Levelized);
  sim.setInput("a", Logic::One);
  sim.step();
  const Netlist& nl = b.design->netlist;
  for (NetId i = 0; i < nl.netCount(); ++i) {
    EXPECT_EQ(sim.netValueByName(nl.net(i).name), sim.netValue(i))
        << nl.net(i).name;
  }
  EXPECT_THROW((void)sim.netValueByName("no.such.net"), std::invalid_argument);
}

// Multiplex contention (§8 at-most-one-driver) is detected per lane.
TEST(Batch, PerLaneContention) {
  Built b = buildOk(kTwoDriverMux, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  BatchSimulation batch(g, 4);
  // lane 0: neither driver; lane 1: m := 1; lane 2: m := 0; lane 3: both.
  const Logic a[4] = {Logic::Zero, Logic::One, Logic::Zero, Logic::One};
  const Logic bb[4] = {Logic::Zero, Logic::Zero, Logic::One, Logic::One};
  for (size_t l = 0; l < 4; ++l) {
    batch.setInput(l, "a", a[l]);
    batch.setInput(l, "b", bb[l]);
  }
  batch.step();
  EXPECT_EQ(batch.output(0, "o"), Logic::Undef);  // NOINFL observed as UNDEF
  EXPECT_EQ(batch.output(1, "o"), Logic::One);
  EXPECT_EQ(batch.output(2, "o"), Logic::Zero);
  EXPECT_EQ(batch.output(3, "o"), Logic::Undef);  // burned
  ASSERT_EQ(batch.errors().size(), 1u);
  EXPECT_EQ(batch.errors()[0].code, Diag::SimContention);
  EXPECT_EQ(batch.errors()[0].lane, 3);
}

// Lane L of a batch draws the same RANDOM sequence as a scalar run with
// the same seed.
TEST(Batch, RandomStreamsMatchScalarPerLane) {
  Built b = buildOk(kRandomReg, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  constexpr size_t kLanes = 8;
  BatchSimulation batch(g, kLanes);
  batch.setInputAll("en", Logic::One);
  std::vector<Simulation> refs;
  refs.reserve(kLanes);
  for (size_t l = 0; l < kLanes; ++l) {
    batch.setRandomSeed(l, 1000 + l);
    refs.emplace_back(g, EvaluatorKind::Firing);
    refs[l].setRandomSeed(1000 + l);
    refs[l].setInput("en", Logic::One);
  }
  for (int cyc = 0; cyc < 32; ++cyc) {
    batch.step();
    for (size_t l = 0; l < kLanes; ++l) {
      refs[l].step();
      ASSERT_EQ(batch.output(l, "o"), refs[l].output("o"))
          << "lane " << l << " cycle " << cyc;
    }
  }
}

TEST(Batch, LaneAndSizeValidation) {
  Built b = buildOk(kRegBuf, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  EXPECT_THROW(BatchSimulation(g, 0), std::invalid_argument);
  EXPECT_THROW(BatchSimulation(g, 65), std::invalid_argument);
  BatchSimulation batch(g, 2);
  EXPECT_THROW(batch.setInput(2, "a", Logic::One), std::invalid_argument);
  EXPECT_THROW(batch.setRandomSeed(63, 1), std::invalid_argument);
}

}  // namespace
}  // namespace zeus::test
